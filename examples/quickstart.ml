(* Quickstart: stand up a realm on the simulated network, log a user in,
   and make an authenticated, sealed request to a file server.

     dune exec examples/quickstart.exe

   The public API used here is the whole story: Sim.* for the world,
   Kerberos.Kdb/Kdc for the realm, Kerberos.Client for the user side,
   Services.Fileserver for an application. *)

open Kerberos

let () =
  (* 1. A world: an event engine and a network. *)
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine in

  (* 2. Three machines. *)
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let workstation = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let server_host = Sim.Host.create ~name:"fs" ~ips:[ Sim.Addr.of_quad 10 0 0 20 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; workstation; server_host ];

  (* 3. A realm: principal database and KDC. Pick a protocol profile —
     Profile.v4, Profile.v5_draft3 or Profile.hardened. *)
  let profile = Profile.v4 in
  let db = Kdb.create () in
  let rng = Util.Rng.create 42L in
  Kdb.add_service db (Principal.tgs ~realm:"EXAMPLE") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm:"EXAMPLE" "alice") ~password:"not.a.dict.word";
  let fileserv = Principal.service ~realm:"EXAMPLE" "fileserv" ~host:"fs" in
  let fileserv_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fileserv_key;
  let kdc = Kdc.create ~realm:"EXAMPLE" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();

  (* 4. An application server. *)
  let fs =
    Services.Fileserver.install net server_host ~profile ~principal:fileserv
      ~key:fileserv_key ~port:600
  in
  Services.Fileserver.write_file fs ~owner:"alice@EXAMPLE" ~path:"/readme"
    (Bytes.of_string "hello from the file server");

  (* 5. The client side: login -> service ticket -> AP exchange -> sealed
     request. Everything is continuation-passing over the simulation. *)
  let alice =
    Client.create net workstation ~profile
      ~kdcs:[ ("EXAMPLE", Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm:"EXAMPLE" "alice")
  in
  Client.login alice ~password:"not.a.dict.word" (function
    | Error e -> failwith ("login: " ^ e)
    | Ok _tgt ->
        Client.get_ticket alice ~service:fileserv (function
          | Error e -> failwith ("ticket: " ^ e)
          | Ok creds ->
              Client.ap_exchange alice creds ~dst:(Sim.Host.primary_ip server_host)
                ~dport:600 (function
                | Error e -> failwith ("ap: " ^ e)
                | Ok channel ->
                    Client.call_priv alice channel (Bytes.of_string "READ /readme")
                      ~k:(function
                      | Error e -> failwith ("priv: " ^ e)
                      | Ok data ->
                          Printf.printf "alice read: %s\n" (Bytes.to_string data)))));

  (* 6. Run the world. *)
  Sim.Engine.run engine;
  Printf.printf "done in %.3f simulated seconds\n" (Sim.Engine.now engine);

  (* 7. The run was observed: every exchange left spans, events and
     metrics in the network's collector (clocked on simulation time, so a
     rerun dumps byte-identical telemetry). *)
  let tel = Sim.Net.telemetry net in
  print_newline ();
  print_string (Telemetry.Collector.metrics_text tel);
  let jsonl = Telemetry.Collector.trace_jsonl tel in
  let oc = open_out "quickstart_trace.jsonl" in
  output_string oc jsonl;
  close_out oc;
  Printf.printf "\ntrace: %d events written to quickstart_trace.jsonl\n"
    (Telemetry.Trace.length (Telemetry.Collector.trace tel))
