(* attacklab: run one named attack against one profile, with optional
   packet-level narration — an exploration tool for the reproduction.

     dune exec bin/attacklab.exe -- list
     dune exec bin/attacklab.exe -- run e6 --profile v5
     dune exec bin/attacklab.exe -- run e8b -p hardened

   Exit status: 0 = the profile defended, 1 = the attack broke through —
   so the lab can sit in scripts. *)

open Kerberos

let profile_of_string = function
  | "v4" -> Ok Profile.v4
  | "v5" | "v5-draft3" -> Ok Profile.v5_draft3
  | "hardened" -> Ok Profile.hardened
  | s -> Error (`Msg ("unknown profile " ^ s ^ " (v4|v5|hardened)"))

type entry = {
  key : string;
  title : string;
  run : Profile.t -> Attacks.Outcome.t;
}

let catalogue =
  [ { key = "e1"; title = "live authenticator replay";
      run = (fun p -> Attacks.Replay_auth.outcome (Attacks.Replay_auth.run ~profile:p ())) };
    { key = "e2"; title = "time-service spoof + stale authenticator";
      run = (fun p -> Attacks.Clock_spoof.outcome (Attacks.Clock_spoof.run ~profile:p ())) };
    { key = "e2b"; title = "time/auth bootstrap circularity";
      run = (fun p -> Attacks.Time_bootstrap.outcome (Attacks.Time_bootstrap.run ~profile:p ())) };
    { key = "e3"; title = "offline password guessing (eavesdrop)";
      run =
        (fun p ->
          Attacks.Password_guess.outcome
            (Attacks.Password_guess.run ~n_users:10 ~dictionary_head:250 ~profile:p ())) };
    { key = "e4"; title = "active AS_REP harvesting";
      run =
        (fun p ->
          Attacks.Ticket_harvest.outcome
            (Attacks.Ticket_harvest.run ~n_users:10 ~dictionary_head:250 ~profile:p ())) };
    { key = "e5"; title = "trojaned login";
      run = (fun p -> Attacks.Login_trojan.outcome (Attacks.Login_trojan.run ~profile:p ())) };
    { key = "e6"; title = "CBC prefix chosen-plaintext on KRB_PRIV";
      run = (fun p -> Attacks.Cpa_prefix.outcome (Attacks.Cpa_prefix.run ~profile:p ())) };
    { key = "e6b"; title = "PCBC block-swap modification";
      run = (fun p -> Attacks.Pcbc_swap.outcome (Attacks.Pcbc_swap.run ~profile:p ())) };
    { key = "e7"; title = "cross-session replay";
      run = (fun p -> Attacks.Cross_session.outcome (Attacks.Cross_session.run ~profile:p ())) };
    { key = "e8a"; title = "post-auth connection hijack";
      run = (fun p -> Attacks.Hijack.outcome (Attacks.Hijack.run ~profile:p ())) };
    { key = "e8b"; title = "Morris ISN spoof + stolen authenticator";
      run =
        (fun p ->
          Attacks.Morris_isn.outcome
            (Attacks.Morris_isn.run ~isn:Sim.Tcpish.Predictable ~profile:p ())) };
    { key = "e9"; title = "transit forgery / origin-less forwarding";
      run = (fun p -> Attacks.Realm_spoof.outcome (Attacks.Realm_spoof.run ~profile:p ())) };
    { key = "e10"; title = "CRC-32 cut-and-paste (ENC-TKT-IN-SKEY)";
      run = (fun p -> Attacks.Cut_paste.outcome (Attacks.Cut_paste.run ~profile:p ())) };
    { key = "e10b"; title = "ticket substitution in KDC replies";
      run = (fun p -> Attacks.Ticket_sub.outcome (Attacks.Ticket_sub.run ~profile:p ())) };
    { key = "e11"; title = "REUSE-SKEY redirect";
      run = (fun p -> Attacks.Reuse_skey.outcome (Attacks.Reuse_skey.run ~profile:p ())) };
    { key = "e12b"; title = "KRB_SAFE substitution";
      run = (fun p -> Attacks.Safe_forge.outcome (Attacks.Safe_forge.run ~profile:p ())) };
    { key = "e16"; title = "credential-cache theft";
      run =
        (fun p ->
          Attacks.Cache_theft.outcome (Attacks.Cache_theft.run ~multi_user:true ~profile:p ())) };
    { key = "e17"; title = "host srvtab key theft";
      run =
        (fun p ->
          Attacks.Host_key_theft.outcome
            (Attacks.Host_key_theft.run
               ~use_encbox:(p.Profile.name = "hardened")
               ~profile:p ())) };
    { key = "e18"; title = "diskless paging key leak";
      run =
        (fun p ->
          Attacks.Paging_leak.outcome
            (Attacks.Paging_leak.run
               ~pinned_memory:(p.Profile.name = "hardened")
               ~profile:p ())) } ]

let list_cmd () =
  List.iter (fun e -> Printf.printf "%-5s %s\n" e.key e.title) catalogue

let run_cmd name profile_name opsview =
  match profile_of_string profile_name with
  | Error (`Msg m) ->
      prerr_endline m;
      exit 2
  | Ok profile -> (
      match List.find_opt (fun e -> e.key = name) catalogue with
      | None ->
          Printf.eprintf "unknown attack %s (try `attacklab list`)\n" name;
          exit 2
      | Some e ->
          (* A collector of our own, so the report covers exactly this run. *)
          let tel = Telemetry.Collector.fresh_default () in
          Printf.printf "%s vs %s:\n" e.title profile.Profile.name;
          let o = e.run profile in
          Printf.printf "  %s — %s\n" (Attacks.Outcome.label o) (Attacks.Outcome.detail o);
          if opsview then
            Printf.printf "\nOperator view:\n%s"
              (Telemetry.Opsview.report (Telemetry.Collector.ops tel));
          if Attacks.Outcome.is_broken o then exit 1)

open Cmdliner

let () =
  let list_t = Term.(const list_cmd $ const ()) in
  let attack_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK")
  in
  let profile_arg =
    Arg.(value & opt string "v4" & info [ "profile"; "p" ] ~docv:"PROFILE")
  in
  let opsview_arg =
    Arg.(
      value & flag
      & info [ "opsview"; "o" ]
          ~doc:"also print what the operator's telemetry showed during the run")
  in
  let run_t = Term.(const run_cmd $ attack_arg $ profile_arg $ opsview_arg) in
  let info_ =
    Cmd.info "attacklab" ~doc:"run one attack from the paper against one protocol profile"
  in
  let cmds =
    [ Cmd.v (Cmd.info "list" ~doc:"list attacks") list_t;
      Cmd.v (Cmd.info "run" ~doc:"run an attack") run_t ]
  in
  exit (Cmd.eval (Cmd.group ~default:list_t info_ cmds))
