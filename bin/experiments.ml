(* The experiment runner: regenerates every table of EXPERIMENTS.md.

   `experiments matrix`   — the attack x profile matrix (the headline table)
   `experiments e1`       — replay window sweep
   `experiments e3`       — password-crack sweep
   `experiments e13`      — discrete-log crack times and modexp costs
   `experiments e14`      — protocol overheads
   `experiments e15`      — encryption-box invariants
   `experiments all`      — everything *)

let yn = function true -> "yes" | false -> "no"

let print_matrix () =
  print_endline "== Attack x profile matrix (the paper's findings, reproduced) ==";
  print_endline "";
  let rows = Expframework.Matrix.run_all () in
  Expframework.Table.print ~header:Expframework.Matrix.header
    (Expframework.Matrix.to_cells rows);
  print_endline "";
  print_endline "Details:";
  List.iter
    (fun r ->
      Printf.printf "  %-4s %s  [%s]\n" r.Expframework.Matrix.id
        r.Expframework.Matrix.attack r.Expframework.Matrix.section;
      List.iter
        (fun (p, o) ->
          Printf.printf "       %-10s %-9s %s\n" p (Attacks.Outcome.label o)
            (Attacks.Outcome.detail o))
        r.Expframework.Matrix.outcomes)
    rows;
  (* Sanity: compare against the expected shape. *)
  let mismatches =
    List.concat_map
      (fun (id, shape) ->
        match Expframework.Matrix.run_row id rows with
        | None -> [ id ^ ": missing" ]
        | Some r ->
            List.concat
              (List.map2
                 (fun (p, o) expected ->
                   if Attacks.Outcome.is_broken o = expected then []
                   else [ Printf.sprintf "%s/%s: got %s" id p (Attacks.Outcome.label o) ])
                 r.outcomes shape))
      Expframework.Matrix.expected_shape
  in
  if mismatches = [] then
    print_endline "\nShape check: all outcomes match the paper's claims."
  else begin
    print_endline "\nShape check FAILED:";
    List.iter (fun m -> print_endline ("  " ^ m)) mismatches
  end

let print_e1 () =
  print_endline "== E1: authenticator replay vs. skew window (V4, no cache) ==";
  Expframework.Table.print
    ~header:[ "skew window (s)"; "replay delay (s)"; "replay accepted" ]
    (List.map
       (fun (skew, delay, ok) ->
         [ Printf.sprintf "%.0f" skew; Printf.sprintf "%.0f" delay; yn ok ])
       (Expframework.Sweeps.replay_window_sweep ()))

let print_e3 () =
  print_endline "== E3: offline cracking of recorded login dialogs ==";
  Expframework.Table.print
    ~header:[ "profile"; "users"; "weak"; "replies recorded"; "cracked" ]
    (List.map
       (fun (p, n, weak, rec_, cracked) ->
         [ p; string_of_int n; string_of_int weak; string_of_int rec_;
           string_of_int cracked ])
       (Expframework.Sweeps.crack_sweep ()))

let print_e13 () =
  print_endline "== E13a: discrete-log attacks on small exponential-exchange moduli ==";
  Expframework.Table.print
    ~header:[ "modulus bits"; "algorithm"; "cpu seconds"; "exponent recovered" ]
    (List.map
       (fun (b, alg, t, ok) ->
         [ string_of_int b; alg; Printf.sprintf "%.3f" t; yn ok ])
       (Expframework.Sweeps.dlog_sweep ()));
  print_endline "";
  print_endline "== E13b: cost of one modular exponentiation (the defender's side) ==";
  Expframework.Table.print ~header:[ "modulus bits"; "cpu seconds / modexp" ]
    (List.map
       (fun (b, t) -> [ string_of_int b; Printf.sprintf "%.5f" t ])
       (Expframework.Sweeps.modexp_cost ()))

let print_e14 () =
  print_endline "== E14: protocol overheads per profile ==";
  Expframework.Table.print
    ~header:
      [ "profile"; "messages/session"; "messages/AP exchange";
        "cache entries after 25 auths"; "authenticated datagrams" ]
    (List.map
       (fun (p, total, ap, cache, dg) ->
         [ p; string_of_int total; string_of_int ap; string_of_int cache; yn dg ])
       (Expframework.Sweeps.overhead ()))

let print_validation () =
  print_endline "== Message-confusion analysis (SECURITY VALIDATION section) ==";
  List.iter
    (fun kind ->
      Format.printf "%a@." Expframework.Confusion_check.pp_matrix
        (Expframework.Confusion_check.run kind))
    [ Wire.Encoding.V4_adhoc; Wire.Encoding.Der_typed ];
  print_endline
    "Every V4 pair above is an analysis obligation a human must re-discharge\n\
     at every protocol change; the typed encoding discharges them all,\n\
     structurally, forever (recommendation b)."

let print_e15 () =
  print_endline "== E15: encryption-box design criteria ==";
  Expframework.Table.print ~header:[ "criterion"; "holds" ]
    (List.map (fun (c, ok) -> [ c; yn ok ]) (Expframework.Hardware_check.run ()))

(* What the operator's console showed while the attacks ran: each scenario
   gets a fresh default collector, so the report covers exactly that run. *)
let print_opsview () =
  print_endline "== Operator view: the telemetry the attacks left behind ==";
  let show title run =
    let tel = Telemetry.Collector.fresh_default () in
    run ();
    Printf.printf "\n-- %s --\n%s" title
      (Telemetry.Opsview.report (Telemetry.Collector.ops tel))
  in
  show "E4 ticket harvest, v4 (no preauth: every ask is served)" (fun () ->
      ignore
        (Attacks.Ticket_harvest.run ~n_users:10 ~dictionary_head:250
           ~profile:Kerberos.Profile.v4 ()));
  show "E4 ticket harvest, v4 + rate limit 5/min (the paper's partial fix)"
    (fun () ->
      ignore
        (Attacks.Ticket_harvest.run ~n_users:10 ~dictionary_head:250 ~rate_limit:5
           ~profile:Kerberos.Profile.v4 ()));
  show "E4 ticket harvest, hardened (preauth: rejects pile up instead)" (fun () ->
      ignore
        (Attacks.Ticket_harvest.run ~n_users:10 ~dictionary_head:250
           ~profile:Kerberos.Profile.hardened ()));
  show "E1 authenticator replay, v4 (no replay cache: zero replay hits — \
        the attack succeeds invisibly)" (fun () ->
      ignore (Attacks.Replay_auth.run ~profile:Kerberos.Profile.v4 ()));
  (* The cache V4 specified but never implemented: with it, the replay
     shows up on the console. *)
  let v4_cached =
    { Kerberos.Profile.v4 with
      Kerberos.Profile.name = "v4+cache";
      ap_auth = Kerberos.Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  show "E1 authenticator replay, v4 + replay cache (the hit is recorded)"
    (fun () -> ignore (Attacks.Replay_auth.run ~profile:v4_cached ()));
  ignore (Telemetry.Collector.fresh_default ())

(* The chaos runbook: each seed runs twice — once for the verdict, once to
   prove the fault plane is deterministic (byte-identical trace dumps).
   Exit nonzero on any safety violation or divergence, so CI can gate on
   it. *)
let print_chaos fault_seed seeds =
  print_endline "== Chaos: quickstart workload under randomized fault schedules ==";
  print_newline ();
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add fault_seed (Int64.of_int i) in
    let r = Expframework.Chaos.run ~fault_seed:seed () in
    let r2 = Expframework.Chaos.run ~fault_seed:seed () in
    print_string (Expframework.Chaos.summary r);
    let identical = String.equal r.Expframework.Chaos.trace r2.Expframework.Chaos.trace in
    Printf.printf "  determinism: %s\n\n"
      (if identical then
         Printf.sprintf "re-run produced a byte-identical trace (%d bytes)"
           (String.length r.Expframework.Chaos.trace)
       else "RE-RUN DIVERGED");
    if not identical then incr failures;
    if Expframework.Chaos.safety_violations r <> [] then incr failures
  done;
  ignore (Telemetry.Collector.fresh_default ());
  if !failures = 0 then
    Printf.printf "chaos: %d seed(s), all safety invariants held, all traces deterministic\n"
      seeds
  else begin
    Printf.printf "chaos: FAILURES in %d seed(s)\n" !failures;
    exit 1
  end

(* The session-fuzz runbook: generated operation schedules at randomized
   MTUs, invariant-checked, with periodic determinism double-runs and a
   mutation check proving the harness catches a planted bug. Exit
   nonzero on any violation, so CI gates on it. *)
let print_session_fuzz seed seeds schedules =
  print_endline
    "== Session fuzz: generated op schedules at randomized path MTUs ==";
  print_newline ();
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed (Int64.of_int i) in
    let c = Expframework.Session_fuzz.campaign ~schedules ~seed () in
    print_string (Expframework.Session_fuzz.campaign_summary c);
    if not (Expframework.Session_fuzz.ok c) then incr failures
  done;
  let caught = Expframework.Session_fuzz.mutation_caught () in
  Printf.printf "  mutation check (replay cache off + duplicated AP datagrams): %s\n"
    (if caught then "caught" else "MISSED");
  if not caught then incr failures;
  ignore (Telemetry.Collector.fresh_default ());
  if !failures = 0 then
    Printf.printf
      "session-fuzz: %d seed(s) x %d schedules, all invariants held\n" seeds
      schedules
  else begin
    Printf.printf "session-fuzz: FAILURES in %d seed(s)\n" !failures;
    exit 1
  end

(* The disaster-recovery drill: crash-equivalence against a golden twin,
   torn/bit-flipped WAL tails, anti-entropy reconciliation, graceful
   degradation. Exit nonzero on any violated invariant, so CI gates on
   it. *)
let print_recovery seed seeds =
  print_endline "== Recovery: crash, torn logs, reconciliation, degradation ==";
  print_newline ();
  let failures = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = Int64.add seed (Int64.of_int i) in
    let r = Expframework.Recovery.run ~seed in
    print_string (Expframework.Recovery.summary r);
    print_newline ();
    if Expframework.Recovery.violations r <> [] then incr failures
  done;
  ignore (Telemetry.Collector.fresh_default ());
  if !failures = 0 then
    Printf.printf "recovery: %d seed(s), all recovery invariants held\n" seeds
  else begin
    Printf.printf "recovery: FAILURES in %d seed(s)\n" !failures;
    exit 1
  end

(* The capacity-planning run: stand up an N-user realm behind a sharded
   KDC pool, drive open-loop traffic, and persist the ablation suite
   (credential cache on/off, shard sweep) to BENCH_load.json. *)
let load_json_path = "BENCH_load.json"

let print_load users shards kdcs active requests services seed lightweight
    lazy_users quick =
  let cfg =
    { Workloads.Loadgen.default with
      Workloads.Loadgen.users; shards; kdcs; active_clients = active;
      requests_per_client = requests; services; seed = Int64.of_int seed;
      lightweight; lazy_users }
  in
  Printf.printf
    "== Load: %d users%s, %d shards, %d KDCs, %d services; %d active clients \
     x %d requests%s ==\n\n"
    users
    (if lazy_users then " (lazy)" else "")
    shards kdcs services active requests
    (if lightweight then "; lightweight telemetry" else "");
  if quick then begin
    (* One main run, no ablation suite, no JSON — for sizing a campaign
       before paying for the full suite. *)
    let blocks0 = Crypto.Des.blocks_performed () in
    let r, t = Workloads.Loadgen.run_timed cfg in
    let blocks = Crypto.Des.blocks_performed () - blocks0 in
    Printf.printf
      "quick: %d completed, %d errors; setup %.2fs, run %.2fs; %d sim events \
       => %.0f sim events / wall second (%d DES blocks, %.1f per event)\n"
      r.Workloads.Loadgen.completed r.Workloads.Loadgen.errors
      t.Workloads.Loadgen.setup_seconds t.Workloads.Loadgen.run_seconds
      t.Workloads.Loadgen.events t.Workloads.Loadgen.events_per_second blocks
      (float_of_int blocks /. float_of_int (max 1 t.Workloads.Loadgen.events));
    exit 0
  end;
  let started = Sys.time () in
  let suite = Workloads.Loadgen.run_suite cfg in
  let cpu = Sys.time () -. started in
  let row (label : string) (r : Workloads.Loadgen.report) =
    [ label;
      (if r.Workloads.Loadgen.r_config.Workloads.Loadgen.ccache then "on" else "off");
      string_of_int r.Workloads.Loadgen.as_requests;
      string_of_int r.Workloads.Loadgen.tgs_requests;
      string_of_int r.Workloads.Loadgen.completed;
      string_of_int r.Workloads.Loadgen.errors;
      Printf.sprintf "%.0f/%.0f"
        (r.Workloads.Loadgen.tgs_latency.Workloads.Loadgen.p50 *. 1000.)
        (r.Workloads.Loadgen.tgs_latency.Workloads.Loadgen.p99 *. 1000.);
      Printf.sprintf "%.0f/%.0f"
        (r.Workloads.Loadgen.ap_latency.Workloads.Loadgen.p50 *. 1000.)
        (r.Workloads.Loadgen.ap_latency.Workloads.Loadgen.p99 *. 1000.);
      Printf.sprintf "%.0f" r.Workloads.Loadgen.throughput ]
  in
  Expframework.Table.print
    ~header:
      [ "run"; "ccache"; "AS_REQ"; "TGS_REQ"; "completed"; "errors";
        "tgs p50/p99 (ms)"; "ap p50/p99 (ms)"; "req/sim-s" ]
    [ row "main" suite.Workloads.Loadgen.main;
      row "cache-off" suite.Workloads.Loadgen.cache_off ];
  let reduction = Workloads.Loadgen.tgs_reduction suite in
  Printf.printf
    "\nsteady-state TGS reduction from the credential cache: %.1fx %s\n"
    reduction
    (if reduction >= 10.0 then "(claim held: >= 10x)"
     else "(below the 10x claim at this traffic mix)");
  print_endline "\nShard ablation (reduced traffic):";
  Expframework.Table.print
    ~header:
      [ "shards"; "entry balance (max/mean)"; "lookup balance";
        "per-shard lookups" ]
    (List.map
       (fun (r : Workloads.Loadgen.report) ->
         [ string_of_int (Array.length r.Workloads.Loadgen.shard_lookups);
           Printf.sprintf "%.2f" (Workloads.Loadgen.shard_balance r);
           Printf.sprintf "%.2f" (Workloads.Loadgen.lookup_balance r);
           String.concat " "
             (Array.to_list
                (Array.map string_of_int r.Workloads.Loadgen.shard_lookups)) ])
       suite.Workloads.Loadgen.shard_ablation);
  print_endline
    "(entry balance = how evenly FNV-1a spread the population; lookup\n\
    \ balance follows the traffic, which concentrates on the TGS's own\n\
    \ entry and the popular services — hot keys no hash partition spreads)";
  let mt = suite.Workloads.Loadgen.main_timing in
  Printf.printf
    "\nmain run wall clock: setup %.2fs, run %.2fs; %d sim events => %.0f \
     sim events / wall second\n"
    mt.Workloads.Loadgen.setup_seconds mt.Workloads.Loadgen.run_seconds
    mt.Workloads.Loadgen.events mt.Workloads.Loadgen.events_per_second;
  print_endline "\nFast-path ablation (identical reduced traffic per cell):";
  Expframework.Table.print
    ~header:
      [ "cell"; "DES schedule cache"; "lightweight telemetry"; "setup (s)";
        "run (s)"; "events/wall-s" ]
    (List.map
       (fun (p : Workloads.Loadgen.perf_row) ->
         [ p.Workloads.Loadgen.p_label;
           (if p.Workloads.Loadgen.p_schedule_cache then "on" else "off");
           (if p.Workloads.Loadgen.p_lightweight then "on" else "off");
           Printf.sprintf "%.2f"
             p.Workloads.Loadgen.p_timing.Workloads.Loadgen.setup_seconds;
           Printf.sprintf "%.2f"
             p.Workloads.Loadgen.p_timing.Workloads.Loadgen.run_seconds;
           Printf.sprintf "%.0f"
             p.Workloads.Loadgen.p_timing.Workloads.Loadgen.events_per_second ])
       suite.Workloads.Loadgen.perf);
  Printf.printf "fast path over baseline: %.2fx sim events / wall second\n"
    (Workloads.Loadgen.fast_path_speedup suite);
  let json =
    match Workloads.Loadgen.suite_to_json suite with
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj
          (fields
          @ [ ( "wall",
                Telemetry.Json.Obj
                  [ ("suite_cpu_seconds", Telemetry.Json.Float cpu);
                    ( "sim_events_per_wall_second",
                      Telemetry.Json.Float mt.Workloads.Loadgen.events_per_second
                    ) ] ) ])
    | j -> j
  in
  let oc = open_out load_json_path in
  output_string oc (Telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nmachine-readable results: %s (%.1f cpu seconds)\n"
    (Filename.concat (Sys.getcwd ()) load_json_path)
    cpu

(* The blended attack campaign: hide the paper's attacks inside benign
   load, attach the detection plane, score against ground truth, persist
   BENCH_detect.json. Exits nonzero unless at least three attack classes
   clear detection rate >= 0.9 at false-positive rate <= 0.01, so CI can
   gate on detector quality. *)
let detect_json_path = "BENCH_detect.json"

(* V4 plus the two fixes the rules lean on: preauthentication (so a
   guesser's wrong keys are visible as failures) and the replay cache V4
   specified but never shipped (so a replayed authenticator is an event,
   not a silent success). Address binding stays on, as in V4. *)
let detect_profile =
  { Kerberos.Profile.v4 with
    Kerberos.Profile.name = "v4+preauth+cache";
    preauth = true;
    ap_auth = Kerberos.Profile.Timestamp { skew = 300.0; replay_cache = true } }

let detect_floor_classes (score : Telemetry.Detect.score) =
  List.filter
    (fun (c : Telemetry.Detect.class_score) ->
      c.Telemetry.Detect.cs_detection_rate >= 0.9
      && c.Telemetry.Detect.cs_false_positive_rate <= 0.01)
    score.Telemetry.Detect.sc_classes

let print_campaign_score (score : Telemetry.Detect.score) =
  Expframework.Table.print
    ~header:
      [ "attack class"; "attackers"; "detected"; "rate"; "FPR"; "mean TTD (s)";
        "max TTD (s)" ]
    (List.map
       (fun (c : Telemetry.Detect.class_score) ->
         [ c.Telemetry.Detect.cs_class;
           string_of_int c.Telemetry.Detect.cs_attackers;
           string_of_int c.Telemetry.Detect.cs_detected;
           Printf.sprintf "%.2f" c.Telemetry.Detect.cs_detection_rate;
           Printf.sprintf "%.4f" c.Telemetry.Detect.cs_false_positive_rate;
           (if c.Telemetry.Detect.cs_detected = 0 then "-"
            else Printf.sprintf "%.1f" c.Telemetry.Detect.cs_mean_ttd);
           (if c.Telemetry.Detect.cs_detected = 0 then "-"
            else Printf.sprintf "%.1f" c.Telemetry.Detect.cs_max_ttd) ])
       score.Telemetry.Detect.sc_classes);
  Printf.printf
    "\nbenign subjects: %d, flagged by any rule: %d (overall FPR %.4f); %d alerts\n"
    score.Telemetry.Detect.sc_benign score.Telemetry.Detect.sc_benign_flagged
    score.Telemetry.Detect.sc_false_positive_rate score.Telemetry.Detect.sc_alerts

let print_detect users active requests seed quick =
  let cfg, mix, policy =
    if quick then
      (* runtest-sized: a few hundred clients, an earlier campaign start
         and a shorter warm-up so the whole thing fits in seconds. *)
      let cfg =
        { Workloads.Loadgen.default with
          Workloads.Loadgen.users = min users 2_000; shards = 4; kdcs = 2;
          active_clients = min active 300; requests_per_client = min requests 30;
          think_time = 1.0; ramp = 10.0; seed = Int64.of_int seed;
          profile = detect_profile; lightweight = true; lazy_users = true }
      in
      ( cfg,
        { Workloads.Attack_mix.default_mix with
          Workloads.Attack_mix.start = 25.0; stagger = 1.0; guess_tries = 20 },
        Some
          { Telemetry.Detect.default_policy with
            Telemetry.Detect.warmup = 20.0; epoch = 10.0;
            max_lifetime = cfg.Workloads.Loadgen.lifetime } )
    else
      ( { Workloads.Loadgen.default with
          Workloads.Loadgen.users; shards = 8; kdcs = 4; active_clients = active;
          requests_per_client = requests; think_time = 2.0; ramp = 30.0;
          seed = Int64.of_int seed; profile = detect_profile; lightweight = true;
          lazy_users = true },
        Workloads.Attack_mix.default_mix,
        None )
  in
  Printf.printf
    "== Detect: %d-user realm, %d active clients x %d requests; %d guessers, \
     %d harvesters, %d replayers, %d forgers hidden in the mix ==\n\n"
    cfg.Workloads.Loadgen.users cfg.Workloads.Loadgen.active_clients
    cfg.Workloads.Loadgen.requests_per_client mix.Workloads.Attack_mix.guessers
    mix.Workloads.Attack_mix.harvesters mix.Workloads.Attack_mix.replayers
    mix.Workloads.Attack_mix.forgers;
  let det, campaign = Workloads.Loadgen.run_campaign ?policy ~mix cfg in
  print_string (Telemetry.Detect.report det);
  print_newline ();
  print_campaign_score campaign.Workloads.Loadgen.ca_score;
  let json = Telemetry.Json.to_string (Workloads.Loadgen.campaign_to_json campaign) in
  let failures = ref 0 in
  if quick then begin
    (* Determinism: the same seed must serialize to the same bytes. *)
    let _, campaign2 = Workloads.Loadgen.run_campaign ?policy ~mix cfg in
    let json2 =
      Telemetry.Json.to_string (Workloads.Loadgen.campaign_to_json campaign2)
    in
    if String.equal json json2 then
      Printf.printf "\ndeterminism: re-run produced byte-identical campaign JSON (%d bytes)\n"
        (String.length json)
    else begin
      print_endline "\ndeterminism: RE-RUN DIVERGED";
      incr failures
    end
  end
  else begin
    let oc = open_out detect_json_path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nmachine-readable results: %s\n"
      (Filename.concat (Sys.getcwd ()) detect_json_path)
  end;
  let good = detect_floor_classes campaign.Workloads.Loadgen.ca_score in
  Printf.printf
    "detection floor: %d/%d classes at rate >= 0.9 with FPR <= 0.01 (need >= 3)\n"
    (List.length good)
    (List.length campaign.Workloads.Loadgen.ca_score.Telemetry.Detect.sc_classes);
  if List.length good < 3 then incr failures;
  if !failures > 0 then begin
    print_endline "detect: FAILED";
    exit 1
  end

(* The replication campaign: one service goes viral. Three same-seed runs
   (calm baseline, spike through the primary alone, spike against a
   WAL-shipped replica pool with a crash + rejoin mid-storm) and the
   floors BENCH_replication.json commits to: overload visible without
   replicas, p99 TGS flat (<= 1.2x calm) and the pool balanced (max/mean
   <= 1.5) with them, replica state converged at quiesce. *)
let replication_json_path = "BENCH_replication.json"

let print_viral_rows (s : Workloads.Loadgen.viral_suite) =
  let open Workloads.Loadgen in
  Expframework.Table.print
    ~header:
      [ "run"; "completed"; "errors"; "tgs"; "tgs p50 (s)"; "tgs p99 (s)";
        "shard bal"; "unit bal"; "shipped"; "max lag"; "converged" ]
    (List.map
       (fun r ->
         [ r.vr_label; string_of_int r.vr_completed; string_of_int r.vr_errors;
           string_of_int r.vr_tgs_requests;
           Printf.sprintf "%.4f" r.vr_tgs_latency.p50;
           Printf.sprintf "%.4f" r.vr_tgs_latency.p99;
           Printf.sprintf "%.2f" r.vr_shard_lookup_balance;
           Printf.sprintf "%.2f" r.vr_unit_balance;
           string_of_int r.vr_shipped_records;
           string_of_int r.vr_max_lag_seen;
           string_of_bool r.vr_converged ])
       [ s.vs_calm; s.vs_unreplicated; s.vs_replicated ]);
  Printf.printf
    "\np99 TGS vs calm: %.2fx unreplicated, %.2fx replicated; pool reads: %s\n"
    (viral_overload_ratio s) (viral_p99_ratio s)
    (String.concat ", "
       (List.map
          (fun (n, c) -> Printf.sprintf "%s=%d" n c)
          s.vs_replicated.vr_unit_reads))

let print_replicate seed quick =
  let open Workloads.Loadgen in
  let v =
    let dv = default_viral in
    let base = { dv.v_base with seed = Int64.of_int seed } in
    if quick then { dv with v_base = base }
    else
      { dv with
        v_base =
          { base with users = 2_000; active_clients = 200;
            requests_per_client = 25 };
        v_replicas = 4; v_spike_clients = 300; v_spike_requests = 60;
        v_spike_think = 0.1 }
  in
  Printf.printf
    "== Replicate: %d users, %d shards; service app%02d goes viral at t=%gs \
     (%d cache-less clients x %d requests); %d read replicas, ship every \
     %gs, max lag %d ==\n\n"
    v.v_base.users v.v_base.shards v.v_spike_service v.v_spike_at
    v.v_spike_clients v.v_spike_requests v.v_replicas v.v_ship_every
    v.v_max_lag;
  let s = run_viral v in
  print_viral_rows s;
  let json = Telemetry.Json.to_string (viral_suite_to_json s) in
  let failures = ref 0 in
  if quick then begin
    let s2 = run_viral v in
    let json2 = Telemetry.Json.to_string (viral_suite_to_json s2) in
    if String.equal json json2 then
      Printf.printf
        "\ndeterminism: re-run produced byte-identical suite JSON (%d bytes)\n"
        (String.length json)
    else begin
      print_endline "\ndeterminism: RE-RUN DIVERGED";
      incr failures
    end
  end
  else begin
    let oc = open_out replication_json_path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nmachine-readable results: %s\n"
      (Filename.concat (Sys.getcwd ()) replication_json_path)
  end;
  let floor_fails = viral_floor_failures s in
  List.iter (fun f -> Printf.printf "floor: %s\n" f) floor_fails;
  if floor_fails <> [] then incr failures;
  if !failures > 0 then begin
    print_endline "replicate: FAILED";
    exit 1
  end
  else print_endline "replicate: all floors hold"

let overload_json_path = "BENCH_overload.json"

let print_overload_rows (s : Workloads.Loadgen.overload_suite) =
  let open Workloads.Loadgen in
  Expframework.Table.print
    ~header:
      [ "run"; "base/s"; "post/s"; "final/s"; "recover"; "busy"; "brownout";
        "deadline"; "errors"; "silent" ]
    (List.map
       (fun r ->
         [ r.or_label;
           Printf.sprintf "%.1f" r.or_goodput_baseline;
           Printf.sprintf "%.1f" r.or_goodput_post;
           Printf.sprintf "%.1f" r.or_goodput_final;
           (match r.or_recovery_s with
           | Some x -> Printf.sprintf "%.1fs" x
           | None -> "never");
           string_of_int r.or_busy_rejections;
           string_of_int r.or_brownout_sheds;
           string_of_int r.or_deadline_sheds;
           string_of_int r.or_errors;
           string_of_int r.or_silent_drops ])
       [ s.os_calm; s.os_naive; s.os_controlled ])

let print_overload seed quick =
  let open Workloads.Loadgen in
  let o =
    let d = default_overload in
    { d with o_base = { d.o_base with seed = Int64.of_int seed } }
  in
  Printf.printf
    "== Overload: %d calm clients (think %gs) vs a %d-client login storm \
     at t=%gs (%d logins each, think %gs); %d KDCs, service time %gs, \
     queue limit %d, brownout at %d; naive retries=%d vs budget=%d + \
     breaker(%d, %gs) + retry-after + deadline %gs ==\n\n"
    o.o_base.active_clients o.o_base.think_time o.o_spike_clients o.o_spike_at
    o.o_spike_requests o.o_spike_think o.o_base.kdcs o.o_service_time
    o.o_queue_limit o.o_brownout_at o.o_retries o.o_retry_budget
    o.o_breaker_threshold o.o_breaker_cooldown o.o_deadline;
  let s = run_overload o in
  print_overload_rows s;
  let json = Telemetry.Json.to_string (overload_suite_to_json s) in
  let failures = ref 0 in
  if quick then begin
    let s2 = run_overload o in
    let json2 = Telemetry.Json.to_string (overload_suite_to_json s2) in
    if String.equal json json2 then
      Printf.printf
        "\ndeterminism: re-run produced byte-identical suite JSON (%d bytes)\n"
        (String.length json)
    else begin
      print_endline "\ndeterminism: RE-RUN DIVERGED";
      incr failures
    end
  end
  else begin
    let oc = open_out overload_json_path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nmachine-readable results: %s\n"
      (Filename.concat (Sys.getcwd ()) overload_json_path)
  end;
  let floor_fails = overload_floor_failures s in
  List.iter (fun f -> Printf.printf "floor: %s\n" f) floor_fails;
  if floor_fails <> [] then incr failures;
  if !failures > 0 then begin
    print_endline "overload: FAILED";
    exit 1
  end
  else print_endline "overload: all floors hold"

let run_all () =
  print_matrix ();
  print_endline "";
  print_e1 ();
  print_endline "";
  print_e3 ();
  print_endline "";
  print_e13 ();
  print_endline "";
  print_e14 ();
  print_endline "";
  print_e15 ();
  print_endline "";
  print_validation ()

open Cmdliner

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let chaos_cmd =
  let fault_seed =
    Arg.(
      value
      & opt int64 1L
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"First fault-schedule seed.")
  in
  let seeds =
    Arg.(
      value
      & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the quickstart workload under seeded fault injection and check \
          the safety invariants (each seed is run twice to prove trace \
          determinism; exits nonzero on violation)")
    Term.(const print_chaos $ fault_seed $ seeds)

let recovery_cmd =
  let seed =
    Arg.(
      value
      & opt int64 1L
      & info [ "seed" ] ~docv:"SEED" ~doc:"First drill seed.")
  in
  let seeds =
    Arg.(
      value
      & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:
         "Run the disaster-recovery drill: KDC crash + checkpoint/WAL \
          recovery checked byte-for-byte against an uncrashed twin, torn \
          and bit-flipped log tails, replica reconciliation, and client \
          degradation (exits nonzero on violation)")
    Term.(const print_recovery $ seed $ seeds)

let session_fuzz_cmd =
  let seed =
    Arg.(
      value
      & opt int64 1L
      & info [ "seed" ] ~docv:"SEED" ~doc:"First campaign seed.")
  in
  let seeds =
    Arg.(
      value
      & opt int 2
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")
  in
  let schedules =
    Arg.(
      value
      & opt int 100
      & info [ "schedules" ] ~docv:"N"
          ~doc:"Generated operation schedules per seed.")
  in
  Cmd.v
    (Cmd.info "session-fuzz"
       ~doc:
         "Property-based session fuzzing of the transport plane: generated \
          connect/login/read/crash/partition schedules at randomized path \
          MTUs, checked against the session invariants, with determinism \
          double-runs and a mutation check (exits nonzero on violation)")
    Term.(const print_session_fuzz $ seed $ seeds $ schedules)

let load_cmd =
  let opt_int name ~default ~doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let d = Workloads.Loadgen.default in
  let users = opt_int "users" ~default:d.Workloads.Loadgen.users ~doc:"Principals registered in the realm." in
  let shards = opt_int "shards" ~default:d.Workloads.Loadgen.shards ~doc:"Database shard count." in
  let kdcs = opt_int "kdcs" ~default:d.Workloads.Loadgen.kdcs ~doc:"KDC pool size." in
  let active = opt_int "active" ~default:d.Workloads.Loadgen.active_clients ~doc:"Clients driving traffic." in
  let requests = opt_int "requests" ~default:d.Workloads.Loadgen.requests_per_client ~doc:"Requests per client." in
  let services = opt_int "services" ~default:d.Workloads.Loadgen.services ~doc:"Distinct application services." in
  let seed = opt_int "seed" ~default:(Int64.to_int d.Workloads.Loadgen.seed) ~doc:"Workload seed." in
  let lightweight =
    Arg.(
      value & flag
      & info [ "lightweight" ]
          ~doc:
            "Counters-and-histograms telemetry only (no trace machinery) — \
             the million-user fast path.")
  in
  let lazy_users =
    Arg.(
      value & flag
      & info [ "lazy" ]
          ~doc:
            "Materialize principals at first authentication instead of \
             registering the whole realm up front.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Run only the main configuration (no ablation suite, no \
             BENCH_load.json) and print its timing.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Capacity planning: drive open-loop AS/TGS/AP traffic against a \
          sharded KDC pool and write the ablation suite (credential cache \
          on/off, shard sweep, fast-path timing cells) to BENCH_load.json")
    Term.(
      const print_load $ users $ shards $ kdcs $ active $ requests $ services
      $ seed $ lightweight $ lazy_users $ quick)

let detect_cmd =
  let opt_int name ~default ~doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let users = opt_int "users" ~default:100_000 ~doc:"Principals in the realm." in
  let active = opt_int "active" ~default:2_000 ~doc:"Benign clients driving traffic." in
  let requests = opt_int "requests" ~default:60 ~doc:"Requests per benign client." in
  let seed = opt_int "seed" ~default:0xdefec7 ~doc:"Campaign seed." in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Runtest-sized campaign, run twice to assert byte-identical \
             JSON; no BENCH_detect.json.")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Blended attack campaign: hide password guessing, ticket \
          harvesting, authenticator replay and forged tickets inside \
          benign load, score the detection plane against ground truth, \
          and write BENCH_detect.json (exits nonzero unless >= 3 attack \
          classes clear detection rate >= 0.9 at FPR <= 0.01)")
    Term.(const print_detect $ users $ active $ requests $ seed $ quick)

let replicate_cmd =
  let seed =
    Arg.(
      value
      & opt int (Int64.to_int Workloads.Loadgen.default_viral.v_base.seed)
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Runtest-sized campaign, run twice to assert byte-identical \
             JSON; no BENCH_replication.json.")
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:
         "One service goes viral: same-seed calm / primary-only / \
          replicated runs of a TGS read spike against WAL-shipped read \
          replicas, with a replica crash + rejoin mid-storm; writes \
          BENCH_replication.json and exits nonzero unless p99 stays flat, \
          the pool balances, and the replicas converge")
    Term.(const print_replicate $ seed $ quick)

let overload_cmd =
  let seed =
    Arg.(
      value
      & opt int (Int64.to_int Workloads.Loadgen.default_overload.o_base.seed)
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Runtest-sized campaign, run twice to assert byte-identical \
             JSON; no BENCH_overload.json.")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Metastable failure: same-seed calm / naive / controlled runs of \
          a login storm against the KDC pool. Naive fixed-retry clients \
          push goodput into a collapse that outlives the spike; admission \
          control + retry budgets + circuit breakers + retry-after + \
          deadlines recover it within bounded sim-seconds; writes \
          BENCH_overload.json and exits nonzero unless the floors hold")
    Term.(const print_overload $ seed $ quick)

let () =
  let default = Term.(const run_all $ const ()) in
  let info =
    Cmd.info "experiments"
      ~doc:
        "Reproduce the experiments from 'Limitations of the Kerberos \
         Authentication System' (Bellovin & Merritt, 1991)"
  in
  let cmds =
    [ cmd_of "matrix" "attack x profile matrix" print_matrix;
      cmd_of "e1" "replay window sweep" print_e1;
      cmd_of "e3" "password crack sweep" print_e3;
      cmd_of "e13" "discrete log sweep" print_e13;
      cmd_of "e14" "protocol overheads" print_e14;
      cmd_of "e15" "encryption box invariants" print_e15;
      cmd_of "validation" "message-confusion matrices" print_validation;
      cmd_of "opsview" "operator view of the attacks" print_opsview;
      chaos_cmd;
      session_fuzz_cmd;
      recovery_cmd;
      load_cmd;
      detect_cmd;
      replicate_cmd;
      overload_cmd;
      cmd_of "all" "run everything" run_all ]
  in
  let names = List.map Cmd.name cmds in
  let catalog = List.map fst Expframework.Catalog.experiments_subcommands in
  if names <> catalog then begin
    prerr_endline
      "experiments: subcommand list diverges from Expframework.Catalog \
       (update lib/expframework/catalog.ml and the docs)";
    exit 2
  end;
  exit (Cmd.eval (Cmd.group ~default info cmds))
