(* Decoder hardening: a corpus of real protocol packets is recorded off a
   live quickstart exchange, then 10,000 seeded byte-mutants of it (bit
   flips, truncations, extensions, splices) are pushed through every
   wire-facing decoder. The invariant is absolute: hostile bytes yield
   [Error] (or [None]), never an exception — the paper's adversary owns
   the network, so every raise reachable from a payload is a remote crash
   of the KDC or a server. *)

open Kerberos

let quad = Sim.Addr.of_quad

(* ------------------------------------------------------------------ *)
(* Corpus: every packet of a full login/ticket/AP/priv exchange, for    *)
(* both wire encodings.                                                 *)
(* ------------------------------------------------------------------ *)

let record_quickstart profile =
  let realm = "FUZZ" in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 9 0 1 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 9 0 2 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 9 0 10 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; fs_host; ws ];
  let corpus = ref [] in
  Sim.Net.add_tap net (fun pkt ->
      corpus := Bytes.copy pkt.Sim.Packet.payload :: !corpus);
  let rng = Util.Rng.create 0xF0CC5EEDL in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"fuzz.pw";
  Kdc.install net kdc_host (Kdc.create ~realm ~profile ~lifetime:28800.0 db) ();
  let fsrv =
    Services.Fileserver.install net fs_host ~profile ~principal:fileserv
      ~key:fs_key ~port:600
  in
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:"/readme"
    (Bytes.of_string "fuzz seed file");
  let c =
    Client.create ~seed:0xF1L net ws ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  let done_ = ref false in
  Client.login c ~password:"fuzz.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket c ~service:fileserv (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip fs_host)
            ~dport:600 (fun r ->
              let chan = Result.get_ok r in
              Client.call_priv c chan (Bytes.of_string "READ /readme")
                ~k:(fun r ->
                  ignore (Result.get_ok r);
                  done_ := true))));
  Sim.Engine.run eng;
  assert !done_;
  !corpus

let corpus =
  lazy
    (Array.of_list
       (record_quickstart Profile.v4 @ record_quickstart Profile.v5_draft3))

(* ------------------------------------------------------------------ *)
(* Mutation engine (seeded, deterministic)                              *)
(* ------------------------------------------------------------------ *)

let mutate rng b =
  let b = Bytes.copy b in
  let n = Bytes.length b in
  match Util.Rng.int rng 5 with
  | 0 when n > 0 ->
      (* flip one bit *)
      let i = Util.Rng.int rng n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Util.Rng.int rng 8)));
      b
  | 1 when n > 0 ->
      (* truncate *)
      Bytes.sub b 0 (Util.Rng.int rng n)
  | 2 ->
      (* extend with junk *)
      Bytes.cat b (Util.Rng.bytes rng (1 + Util.Rng.int rng 16))
  | 3 when n > 0 ->
      (* splice a random run *)
      let i = Util.Rng.int rng n in
      let len = min (n - i) (1 + Util.Rng.int rng 8) in
      Bytes.blit (Util.Rng.bytes rng len) 0 b i len;
      b
  | _ when n > 1 ->
      (* double mutation: flip then truncate *)
      let i = Util.Rng.int rng n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
      Bytes.sub b 0 (1 + Util.Rng.int rng (n - 1))
  | _ -> b

(* A server-side session per priv mode, for the sealed-message openers. *)
let session_for profile =
  let rng = Util.Rng.create 0x5E55L in
  Session.make ~profile ~rng ~role:Session.Server_side
    ~key:(Crypto.Des.random_key rng) ~own_addr:(quad 10 9 0 2)
    ~peer_addr:(quad 10 9 0 10) ~send_seq:0 ~recv_seq:0

let sessions =
  lazy (List.map session_for [ Profile.v4; Profile.v5_draft3; Profile.hardened ])

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)
(* ------------------------------------------------------------------ *)

let mutants = 10_000

let fuzz_decoders_never_raise () =
  let corpus = Lazy.force corpus in
  let sessions = Lazy.force sessions in
  Alcotest.(check bool) "corpus recorded" true (Array.length corpus >= 10);
  let rng = Util.Rng.create 0xFADEDL in
  let oks = ref 0 and errors = ref 0 in
  let feed name f =
    match f () with
    | Ok _ -> incr oks
    | Error _ -> incr errors
    | exception e ->
        Alcotest.failf "%s raised %s — remote crash reachable from the wire"
          name (Printexc.to_string e)
  in
  for i = 1 to mutants do
    let m = mutate rng corpus.(Util.Rng.int rng (Array.length corpus)) in
    feed
      (Printf.sprintf "decode_result/v4-adhoc (mutant %d)" i)
      (fun () -> Wire.Encoding.decode_result Wire.Encoding.V4_adhoc m);
    feed
      (Printf.sprintf "decode_result/der-typed (mutant %d)" i)
      (fun () -> Wire.Encoding.decode_result Wire.Encoding.Der_typed m);
    feed
      (Printf.sprintf "frames/unwrap (mutant %d)" i)
      (fun () ->
        match Frames.unwrap m with Some _ -> Ok () | None -> Error ());
    List.iter
      (fun s ->
        feed
          (Printf.sprintf "krb_priv/%s (mutant %d)" s.Session.profile.Profile.name i)
          (fun () -> Krb_priv.open_ s ~now:0.0 m);
        feed
          (Printf.sprintf "krb_safe/%s (mutant %d)" s.Session.profile.Profile.name i)
          (fun () -> Krb_safe.open_ s ~now:0.0 m))
      sessions
  done;
  (* The sweep must actually have exercised both verdicts. *)
  Alcotest.(check bool) "some mutants decoded" true (!oks > 0);
  Alcotest.(check bool) "some mutants rejected" true (!errors > 0)

(* A recursion bomb must bounce off the nesting limit, not the native
   stack: 200 nested lists is far past the 64-level bound and far short
   of what would overflow, so getting [Error] back proves the limit (not
   luck) stopped it. *)
let depth_bomb_is_rejected () =
  let rec nest v n = if n = 0 then v else nest (Wire.Encoding.List [ v ]) (n - 1) in
  let bomb = nest (Wire.Encoding.Int 7L) 200 in
  List.iter
    (fun kind ->
      let b = Wire.Encoding.encode kind bomb in
      match Wire.Encoding.decode_result kind b with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "%s accepted a 200-level nesting bomb"
            (Wire.Encoding.show_kind kind))
    [ Wire.Encoding.V4_adhoc; Wire.Encoding.Der_typed ];
  (* ...while legitimate nesting is untouched. *)
  let sane = nest (Wire.Encoding.Int 7L) 10 in
  List.iter
    (fun kind ->
      match Wire.Encoding.decode_result kind (Wire.Encoding.encode kind sane) with
      | Ok v -> Alcotest.(check bool) "roundtrip" true (v = sane)
      | Error e -> Alcotest.failf "10 levels rejected: %s" e)
    [ Wire.Encoding.V4_adhoc; Wire.Encoding.Der_typed ]

let oversized_is_rejected_up_front () =
  (* Just over the 1 MiB bound: rejected by length before any parsing. *)
  let huge = Bytes.make ((1 lsl 20) + 1) '\x03' in
  List.iter
    (fun kind ->
      match Wire.Encoding.decode_result kind huge with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversized message accepted")
    [ Wire.Encoding.V4_adhoc; Wire.Encoding.Der_typed ]

let ragged_ciphertext_is_garbled () =
  (* Lengths that are not a whole number of DES blocks — exactly what a
     fault-plane truncation produces — must come back [Garbled], not as
     an [Invalid_argument] escape from the block modes. *)
  let sessions = Lazy.force sessions in
  List.iter
    (fun s ->
      List.iter
        (fun len ->
          let ct = Bytes.make len '\x5a' in
          (match Krb_priv.open_ s ~now:0.0 ct with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "ragged ciphertext accepted");
          match Krb_safe.open_ s ~now:0.0 ct with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "ragged safe message accepted")
        [ 0; 1; 7; 9; 15; 63 ])
    sessions

let () =
  Alcotest.run "wire-fuzz"
    [ ( "fuzz",
        [ Alcotest.test_case
            (Printf.sprintf "%d mutants, zero uncaught exceptions" mutants)
            `Quick fuzz_decoders_never_raise;
          Alcotest.test_case "depth bomb rejected" `Quick depth_bomb_is_rejected;
          Alcotest.test_case "oversized input rejected" `Quick
            oversized_is_rejected_up_front;
          Alcotest.test_case "ragged ciphertext garbled" `Quick
            ragged_ciphertext_is_garbled ] ) ]
