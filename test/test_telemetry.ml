(* The telemetry subsystem: registry semantics, trace ring + JSONL round
   trip, span lifecycle (including the engine's leak settling), the
   operator view, determinism of full-protocol traces, and a schema smoke
   test over the exports a short KDC exchange produces. *)

open Kerberos
module T = Telemetry

let realm = "ATHENA"

(* --- metrics registry ---------------------------------------------- *)

let counters_and_gauges () =
  let m = T.Metrics.create () in
  let c = T.Metrics.counter m "reqs" in
  Alcotest.(check int) "fresh counter" 0 (T.Metrics.value c);
  T.Metrics.incr c;
  T.Metrics.add c 4;
  Alcotest.(check int) "incr+add" 5 (T.Metrics.value c);
  let c' = T.Metrics.counter m "reqs" in
  T.Metrics.incr c';
  Alcotest.(check int) "get-or-create shares state" 6 (T.Metrics.value c);
  let g = T.Metrics.gauge m "depth" in
  T.Metrics.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (T.Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"reqs\" is a counter, not a gauge") (fun () ->
      ignore (T.Metrics.gauge m "reqs"))

let histogram_buckets () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram ~buckets:[| 0.01; 0.1; 1.0 |] m "lat" in
  (* Boundary values land in the bucket whose bound they equal (le). *)
  List.iter (T.Metrics.observe h) [ 0.01; 0.02; 0.1; 0.5; 1.0; 7.0 ];
  Alcotest.(check (array int)) "bucket counts" [| 1; 2; 2; 1 |]
    (T.Metrics.bucket_counts h);
  Alcotest.(check int) "count" 6 (T.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 8.63 (T.Metrics.hist_sum h);
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds must be strictly increasing")
    (fun () -> ignore (T.Metrics.histogram ~buckets:[| 1.0; 1.0 |] m "bad"))

let fresh_names () =
  let m = T.Metrics.create () in
  Alcotest.(check string) "unused base" "kdc.x" (T.Metrics.fresh_name m "kdc.x");
  ignore (T.Metrics.counter m "kdc.x");
  let n2 = T.Metrics.fresh_name m "kdc.x" in
  Alcotest.(check string) "first suffix" "kdc.x#2" n2;
  ignore (T.Metrics.counter m n2);
  Alcotest.(check string) "second suffix" "kdc.x#3" (T.Metrics.fresh_name m "kdc.x")

(* --- json ----------------------------------------------------------- *)

let json_round_trip () =
  let v =
    T.Json.Obj
      [ ("s", T.Json.Str "a\"b\\c\nd\te\x01");
        ("n", T.Json.Int (-42));
        ("f", T.Json.Float 0.005);
        ("l", T.Json.List [ T.Json.Bool true; T.Json.Null ]) ]
  in
  let s = T.Json.to_string v in
  (match T.Json.of_string s with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v' ->
      Alcotest.(check string) "round trip reprints identically" s
        (T.Json.to_string v'));
  (match T.Json.of_string "{\"a\":1,}" with
  | Ok _ -> Alcotest.fail "trailing comma accepted"
  | Error _ -> ());
  Alcotest.(check string) "nan has no JSON spelling" "null"
    (T.Json.to_string (T.Json.Float Float.nan))

(* --- trace ring ----------------------------------------------------- *)

let ev time kind = { T.Trace.time; severity = T.Trace.Info; component = "test";
                     kind; attrs = [ ("k", "v") ] }

let trace_ring_and_filter () =
  let tr = T.Trace.create ~capacity:3 () in
  List.iter (fun i -> T.Trace.record tr (ev (float_of_int i) "e")) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capacity bounds the ring" 3 (T.Trace.length tr);
  Alcotest.(check int) "overflow counted" 2 (T.Trace.dropped tr);
  Alcotest.(check (list (float 0.0))) "oldest evicted first" [ 3.0; 4.0; 5.0 ]
    (List.map (fun e -> e.T.Trace.time) (T.Trace.events tr));
  let tr = T.Trace.create () in
  T.Trace.set_level tr T.Trace.Warn;
  T.Trace.record tr (ev 0.0 "quiet");
  T.Trace.record tr { (ev 1.0 "loud") with T.Trace.severity = T.Trace.Error };
  Alcotest.(check int) "below-level filtered" 1 (T.Trace.length tr)

let jsonl_round_trip () =
  let tr = T.Trace.create () in
  T.Trace.record tr (ev 0.25 "span.begin");
  T.Trace.record tr
    { T.Trace.time = 1.0; severity = T.Trace.Warn; component = "kdc";
      kind = "odd attrs"; attrs = [ ("msg", "line\nbreak \"quoted\"") ] };
  let dump = T.Trace.to_jsonl tr in
  match T.Trace.of_jsonl dump with
  | Error e -> Alcotest.failf "of_jsonl: %s" e
  | Ok evs ->
      Alcotest.(check int) "all lines back" 2 (List.length evs);
      let tr' = T.Trace.create () in
      List.iter (T.Trace.record tr') evs;
      Alcotest.(check string) "dump(parse(dump)) = dump" dump (T.Trace.to_jsonl tr')

(* --- span lifecycle -------------------------------------------------- *)

let span_lifecycle () =
  let tel = T.Collector.create () in
  let clock = ref 0.0 in
  T.Collector.set_clock tel (fun () -> !clock);
  let outer = T.Collector.span_begin tel ~component:"c" "outer" in
  let inner =
    T.Collector.with_context tel outer (fun () ->
        T.Collector.span_begin tel ~component:"c" "inner")
  in
  Alcotest.(check (option int)) "context parents" (Some outer.T.Span.id)
    inner.T.Span.parent;
  Alcotest.(check int) "both open" 2 (T.Collector.open_span_count tel);
  clock := 0.5;
  T.Collector.span_finish tel inner;
  T.Collector.span_finish tel ~outcome:"replay-detected" inner;
  Alcotest.(check string) "second finish is a no-op" "ok" inner.T.Span.outcome;
  Alcotest.(check (option (float 0.0))) "duration from sim clock" (Some 0.5)
    (T.Span.duration inner);
  let m = T.Collector.metrics tel in
  Alcotest.(check int) "duration observed once" 1
    (T.Metrics.hist_count (T.Metrics.histogram m "span.inner.seconds"));
  T.Collector.span_abandon tel outer;
  Alcotest.(check string) "abandoned outcome" "abandoned" outer.T.Span.outcome;
  Alcotest.(check int) "none open" 0 (T.Collector.open_span_count tel)

let engine_settles_leaked_spans () =
  let eng = Sim.Engine.create () in
  let tel = T.Collector.create () in
  T.Collector.set_clock tel (fun () -> Sim.Engine.now eng);
  Sim.Engine.attach_telemetry eng tel;
  let leaked = T.Collector.span_begin tel ~component:"c" "leaky" in
  Sim.Engine.schedule_after eng 1.0 (fun () -> ());
  Sim.Engine.run eng;
  Alcotest.(check int) "run settles open spans" 0 (T.Collector.open_span_count tel);
  Alcotest.(check string) "leak is explicit, not silent" "abandoned"
    leaked.T.Span.outcome;
  Alcotest.(check bool) "a Warn trace event names it" true
    (List.exists
       (fun e -> e.T.Trace.kind = "span.abandoned" && e.T.Trace.severity = T.Trace.Warn)
       (T.Trace.events (T.Collector.trace tel)));
  (* Strict mode turns the leak into a failure naming the span. *)
  let eng = Sim.Engine.create () in
  let tel = T.Collector.create () in
  Sim.Engine.attach_telemetry eng tel;
  ignore (T.Collector.span_begin tel ~component:"c" "strict-leak");
  (match Sim.Engine.run ~strict_spans:true eng with
  | () -> Alcotest.fail "strict run should raise on a leaked span"
  | exception Failure msg ->
      Alcotest.(check bool) "failure names the span" true
        (Astring.String.is_infix ~affix:"strict-leak" msg));
  (* A span closed by a scheduled event leaks nothing, strict or not. *)
  let eng = Sim.Engine.create () in
  let tel = T.Collector.create () in
  T.Collector.set_clock tel (fun () -> Sim.Engine.now eng);
  Sim.Engine.attach_telemetry eng tel;
  let s = T.Collector.span_begin tel ~component:"c" "closed-later" in
  Sim.Engine.schedule_after eng 2.0 (fun () -> T.Collector.span_finish tel s);
  Sim.Engine.run ~strict_spans:true eng;
  Alcotest.(check string) "closed normally" "ok" s.T.Span.outcome

(* --- operator view --------------------------------------------------- *)

let opsview_tracking () =
  let o = T.Opsview.create () in
  for i = 1 to 40 do
    T.Opsview.record_as_req o ~src:"10.0.0.66" ~time:(float_of_int i)
      ~outcome:(if i mod 2 = 0 then "ok" else "preauth-reject")
  done;
  T.Opsview.record_as_req o ~src:"10.0.0.10" ~time:5.0 ~outcome:"ok";
  Alcotest.(check int) "per-source count" 40 (T.Opsview.as_req_count o ~src:"10.0.0.66");
  Alcotest.(check bool) "hammering source flagged" true
    (T.Opsview.suspicious o ~src:"10.0.0.66");
  Alcotest.(check bool) "quiet source not flagged" false
    (T.Opsview.suspicious o ~src:"10.0.0.10");
  T.Opsview.record_replay o ~component:"ap.mail";
  T.Opsview.record_replay o ~component:"ap.mail";
  Alcotest.(check int) "replay hits" 2 (T.Opsview.replay_hits o ~component:"ap.mail");
  let report = T.Opsview.report o in
  Alcotest.(check bool) "report flags the source" true
    (Astring.String.is_infix ~affix:"suspicious" report);
  Alcotest.(check bool) "report lists replay hits" true
    (Astring.String.is_infix ~affix:"ap.mail" report)

(* --- a short KDC exchange: spans, schema, determinism, regressions --- *)

type world = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  tel : T.Collector.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  ws : Sim.Host.t;
  svc_host : Sim.Host.t;
  svc : Principal.t;
}

let mk_world ?(profile = Profile.v4) ?rate_limit () =
  let eng = Sim.Engine.create () in
  let tel = T.Collector.create () in
  let net = Sim.Net.create ~telemetry:tel eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let svc_host = Sim.Host.create ~name:"svc" ~ips:[ Sim.Addr.of_quad 10 0 0 20 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; svc_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 5150L in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pw";
  let svc = Principal.service ~realm "fileserv" ~host:"svc" in
  let key = Crypto.Des.random_key rng in
  Kdb.add_service db svc ~key;
  let kdc = Kdc.create ?rate_limit ~telemetry:tel ~realm ~profile ~lifetime:3600.0 db in
  Kdc.install net kdc_host kdc ();
  let (_ : Apserver.t) =
    Apserver.install net svc_host ~profile ~principal:svc ~key ~port:600
      ~handler:(fun _session ~client:_ _data -> Some (Bytes.of_string "OK")) ()
  in
  { eng; net; tel; kdc; kdc_host; ws; svc_host; svc }

(* AS -> TGS -> AP -> one sealed call, fully traced. *)
let full_exchange w =
  let kdcs = [ (realm, Sim.Host.primary_ip w.kdc_host) ] in
  let client =
    Client.create w.net w.ws ~profile:Profile.v4 ~kdcs (Principal.user ~realm "pat")
  in
  let done_ = ref false in
  Client.login client ~password:"pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket client ~service:w.svc (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip w.svc_host)
            ~dport:600 (fun r ->
              let chan = Result.get_ok r in
              Client.call_priv client chan (Bytes.of_string "PING") ~k:(fun r ->
                  ignore (Result.get_ok r);
                  done_ := true))));
  Sim.Engine.run ~strict_spans:true w.eng;
  Alcotest.(check bool) "exchange completed" true !done_

let nested_spans () =
  let w = mk_world () in
  full_exchange w;
  (* Reconstruct nesting depth from the span.begin events. *)
  let depth = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if e.T.Trace.kind = "span.begin" then begin
        let attr k = List.assoc_opt k e.T.Trace.attrs in
        let id = Option.get (attr "span") in
        let d =
          match attr "parent" with
          | None -> 1
          | Some p -> 1 + (try Hashtbl.find depth p with Not_found -> 0)
        in
        Hashtbl.replace depth id d
      end)
    (T.Trace.events (T.Collector.trace w.tel));
  let max_depth = Hashtbl.fold (fun _ d acc -> max d acc) depth 0 in
  Alcotest.(check bool)
    (Printf.sprintf "span nesting reaches 4 (got %d)" max_depth)
    true (max_depth >= 4);
  (* The chain the quickstart documents: exchange -> packet -> kdc -> packet. *)
  let names = [ "client.as_exchange"; "net.packet"; "kdc.as_req"; "kdc.tgs_req";
                "client.tgs_exchange"; "client.ap_exchange"; "ap.req"; "ap.priv" ] in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true
        (List.exists
           (fun e ->
             e.T.Trace.kind = "span.begin"
             && List.assoc_opt "name" e.T.Trace.attrs = Some n)
           (T.Trace.events (T.Collector.trace w.tel))))
    names

let deterministic_dumps () =
  let run () =
    let w = mk_world () in
    full_exchange w;
    (T.Collector.trace_jsonl w.tel, T.Collector.metrics_text w.tel)
  in
  let t1, m1 = run () in
  let t2, m2 = run () in
  Alcotest.(check string) "trace dumps byte-identical" t1 t2;
  Alcotest.(check string) "metrics dumps byte-identical" m1 m2;
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000)

(* The documented export schema, validated over a real exchange. *)
let export_schema () =
  let w = mk_world () in
  full_exchange w;
  (* Every trace line is an object with time/severity/component/kind/attrs. *)
  (match T.Trace.of_jsonl (T.Collector.trace_jsonl w.tel) with
  | Error e -> Alcotest.failf "trace JSONL does not parse: %s" e
  | Ok evs ->
      Alcotest.(check bool) "trace has events" true (List.length evs > 10));
  let json = T.Collector.metrics_json w.tel in
  let reparsed =
    match T.Json.of_string (T.Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  let fields = match reparsed with T.Json.Obj f -> f | _ -> Alcotest.fail "not an object" in
  Alcotest.(check bool) "metrics export is non-empty" true (List.length fields > 5);
  List.iter
    (fun (name, v) ->
      match Option.bind (T.Json.member "type" v) T.Json.to_str with
      | Some "counter" ->
          if Option.bind (T.Json.member "value" v) T.Json.to_int = None then
            Alcotest.failf "counter %s lacks an int value" name
      | Some "gauge" ->
          if Option.bind (T.Json.member "value" v) T.Json.to_float = None then
            Alcotest.failf "gauge %s lacks a float value" name
      | Some "histogram" ->
          List.iter
            (fun f ->
              if T.Json.member f v = None then
                Alcotest.failf "histogram %s lacks %s" name f)
            [ "count"; "sum"; "min"; "max"; "buckets" ]
      | _ -> Alcotest.failf "metric %s has no recognized type" name)
    fields;
  (* The acceptance-level contents: KDC counters and a latency histogram. *)
  let mem n = List.mem_assoc n fields in
  Alcotest.(check bool) "KDC counters exported" true
    (mem ("kdc." ^ realm ^ ".as_requests_served"));
  Alcotest.(check bool) "span histogram exported" true
    (mem "span.kdc.as_req.seconds")

(* --- regressions: the migrated KDC counters ------------------------- *)

let kdc_counter_regression () =
  (* as_requests_served counts successful AS exchanges. *)
  let w = mk_world () in
  full_exchange w;
  Alcotest.(check int) "one AS request served" 1 (Kdc.as_requests_served w.kdc);
  Alcotest.(check int) "no preauth rejections" 0 (Kdc.preauth_rejections w.kdc);
  Alcotest.(check int) "no rate limiting" 0 (Kdc.rate_limited_requests w.kdc);
  (* A preauth KDC facing a client that sends no preauth data. *)
  let w = mk_world ~profile:{ Profile.v4 with Profile.name = "v4p"; preauth = true } () in
  let kdcs = [ (realm, Sim.Host.primary_ip w.kdc_host) ] in
  let client =
    Client.create w.net w.ws ~profile:Profile.v4 ~kdcs (Principal.user ~realm "pat")
  in
  let failed = ref false in
  Client.login client ~password:"pw" (fun r -> failed := Result.is_error r);
  Sim.Engine.run w.eng;
  Alcotest.(check bool) "login refused" true !failed;
  Alcotest.(check int) "preauth rejection counted" 1 (Kdc.preauth_rejections w.kdc);
  Alcotest.(check int) "nothing served" 0 (Kdc.as_requests_served w.kdc);
  (* A rate-limited KDC under repeated login attempts from one source. *)
  let w = mk_world ~rate_limit:2 () in
  let kdcs = [ (realm, Sim.Host.primary_ip w.kdc_host) ] in
  let outcomes = ref [] in
  for i = 1 to 4 do
    let client =
      Client.create ~seed:(Int64.of_int i) w.net w.ws ~profile:Profile.v4 ~kdcs
        (Principal.user ~realm "pat")
    in
    Client.login client ~password:"pw" (fun r ->
        outcomes := Result.is_ok r :: !outcomes)
  done;
  Sim.Engine.run w.eng;
  Alcotest.(check int) "two logins served" 2 (Kdc.as_requests_served w.kdc);
  Alcotest.(check int) "two rate-limited" 2 (Kdc.rate_limited_requests w.kdc);
  Alcotest.(check int) "all four answered" 4 (List.length !outcomes);
  (* The operator view saw the same story. *)
  let o = T.Collector.ops w.tel in
  Alcotest.(check int) "opsview counted the source" 4
    (T.Opsview.as_req_count o ~src:"10.0.0.10");
  Alcotest.(check bool) "rate-limited source is suspicious" true
    (T.Opsview.suspicious o ~src:"10.0.0.10")

let replay_cache_stats () =
  let c = Replay_cache.create ~horizon:600.0 () in
  let blob = Bytes.of_string "auth-1" in
  Alcotest.(check bool) "fresh" true
    (Replay_cache.check_and_insert c ~now:0.0 blob = Replay_cache.Fresh);
  Alcotest.(check bool) "replayed" true
    (Replay_cache.check_and_insert c ~now:1.0 blob = Replay_cache.Replayed);
  ignore (Replay_cache.check_and_insert c ~now:2.0 (Bytes.of_string "auth-2"));
  Alcotest.(check int) "inserts" 2 (Replay_cache.inserts c);
  Alcotest.(check int) "hits" 1 (Replay_cache.hits c)

let () =
  Alcotest.run "telemetry"
    [ ( "metrics",
        [ Alcotest.test_case "counters and gauges" `Quick counters_and_gauges;
          Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
          Alcotest.test_case "fresh names" `Quick fresh_names ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick json_round_trip ] );
      ( "trace",
        [ Alcotest.test_case "ring and severity filter" `Quick trace_ring_and_filter;
          Alcotest.test_case "jsonl round trip" `Quick jsonl_round_trip ] );
      ( "spans",
        [ Alcotest.test_case "lifecycle" `Quick span_lifecycle;
          Alcotest.test_case "engine settles leaks" `Quick engine_settles_leaked_spans ] );
      ( "opsview",
        [ Alcotest.test_case "source tracking" `Quick opsview_tracking ] );
      ( "protocol",
        [ Alcotest.test_case "nested spans" `Quick nested_spans;
          Alcotest.test_case "deterministic dumps" `Quick deterministic_dumps;
          Alcotest.test_case "export schema" `Quick export_schema;
          Alcotest.test_case "kdc counter regression" `Quick kdc_counter_regression;
          Alcotest.test_case "replay cache stats" `Quick replay_cache_stats ] ) ]
