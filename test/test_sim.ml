(* Tests for the wire encodings, the event engine, the network, the mini
   transport, and the time service. *)

open Sim

(* ------------------------------------------------------------------ *)
(* Wire encodings                                                      *)
(* ------------------------------------------------------------------ *)

let gen_value =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ map (fun s -> Wire.Encoding.Str s) (string_size (int_range 0 20));
            map (fun s -> Wire.Encoding.Raw (Bytes.of_string s)) (string_size (int_range 0 20));
            map (fun i -> Wire.Encoding.Int (Int64.of_int i)) int ]
      in
      if n = 0 then leaf
      else
        frequency
          [ (3, leaf);
            (1, map (fun l -> Wire.Encoding.List l) (list_size (int_range 0 4) (self (n / 2))));
            (* Message-type tags ride in DER context tags, capped at 30. *)
            (1, map2 (fun t v -> Wire.Encoding.Tagged (abs t mod 31, v)) int (self (n / 2))) ])

let rec strip_tags = function
  | Wire.Encoding.Tagged (_, v) -> strip_tags v
  | Wire.Encoding.List l -> Wire.Encoding.List (List.map strip_tags l)
  | v -> v

let encoding_roundtrip kind normalize =
  QCheck.Test.make ~name:("roundtrip " ^ Wire.Encoding.show_kind kind) ~count:500
    (QCheck.make gen_value) (fun v ->
      let decoded = Wire.Encoding.decode kind (Wire.Encoding.encode kind v) in
      decoded = normalize v)

let tag_discipline () =
  let open Wire.Encoding in
  let v = Tagged (7, List [ Str "ticket"; Int 1L ]) in
  (* Der: checked. *)
  let der = decode Der_typed (encode Der_typed v) in
  Alcotest.(check bool) "der accepts right tag" true
    (expect_tag Der_typed 7 der = List [ Str "ticket"; Int 1L ]);
  Alcotest.(check bool) "der rejects wrong tag" true
    (match expect_tag Der_typed 8 der with
    | exception Wire.Codec.Decode_error _ -> true
    | _ -> false);
  (* V4: the tag has evaporated; anything passes — the paper's complaint. *)
  let v4 = decode V4_adhoc (encode V4_adhoc v) in
  Alcotest.(check bool) "v4 cannot check" true
    (expect_tag V4_adhoc 8 v4 = List [ Str "ticket"; Int 1L ])

let cross_context_confusion () =
  (* A "ticket" and an "authenticator" with coincident field shapes encode
     identically under V4 and distinctly under Der. *)
  let open Wire.Encoding in
  let ticket = Tagged (1, List [ Str "rlogin"; Str "pat"; Int 42L ]) in
  let authenticator = Tagged (2, List [ Str "rlogin"; Str "pat"; Int 42L ]) in
  Alcotest.(check bool) "v4 confusable" true
    (Bytes.equal (encode V4_adhoc ticket) (encode V4_adhoc authenticator));
  Alcotest.(check bool) "der distinguishes" false
    (Bytes.equal (encode Der_typed ticket) (encode Der_typed authenticator))

(* --- the DER codec itself --- *)

let der_known_vectors () =
  let check name expected v =
    Alcotest.(check string) name expected (Util.Bytesutil.to_hex (Wire.Der.encode v))
  in
  check "INTEGER 0" "020100" (Wire.Der.Integer 0L);
  check "INTEGER 127" "02017f" (Wire.Der.Integer 127L);
  check "INTEGER 128" "02020080" (Wire.Der.Integer 128L);
  check "INTEGER -1" "0201ff" (Wire.Der.Integer (-1L));
  check "INTEGER -129" "0202ff7f" (Wire.Der.Integer (-129L));
  check "BOOLEAN true" "0101ff" (Wire.Der.Boolean true);
  check "empty OCTET STRING" "0400" (Wire.Der.Octets Bytes.empty);
  check "UTF8 'hi'" "0c026869" (Wire.Der.Utf8 "hi");
  check "SEQUENCE of two" "3006020101020102"
    (Wire.Der.Sequence [ Wire.Der.Integer 1L; Wire.Der.Integer 2L ]);
  check "[5] INTEGER 1" "a503020101" (Wire.Der.Context (5, Wire.Der.Integer 1L));
  (* long-form length: 130-byte octet string *)
  let long = Wire.Der.encode (Wire.Der.Octets (Bytes.make 130 '\x00')) in
  Alcotest.(check string) "long form header" "048182"
    (Util.Bytesutil.to_hex (Bytes.sub long 0 3))

let der_rejects_malformed () =
  let reject name hex_input =
    match Wire.Der.decode (Util.Bytesutil.of_hex hex_input) with
    | exception Wire.Codec.Decode_error _ -> ()
    | _ -> Alcotest.failf "%s: malformed input accepted" name
  in
  reject "non-minimal integer" "02020001";
  reject "non-minimal length" "04810548656c6c6f" |> ignore;
  reject "boolean bad value" "010142";
  reject "truncated content" "0405abcd";
  reject "trailing garbage" "020101ff";
  reject "indefinite length" "30800000";
  reject "unknown tag" "1f03616263"

let der_truncation_detected =
  (* "it is no longer possible for an attacker to truncate a message" —
     any block-aligned truncation of a DER message fails to parse. *)
  QCheck.Test.make ~name:"der detects truncation" ~count:300
    (QCheck.make gen_value) (fun v ->
      let b = Wire.Encoding.encode Wire.Encoding.Der_typed v in
      let n = Bytes.length b in
      QCheck.assume (n > 1);
      let cut = 1 + ((n - 1) / 2) in
      match Wire.Encoding.decode Wire.Encoding.Der_typed (Bytes.sub b 0 cut) with
      | exception Wire.Codec.Decode_error _ -> true
      | _ -> false)

let der_roundtrip_prop =
  let gen_der =
    let open QCheck.Gen in
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ map (fun b -> Wire.Der.Boolean b) bool;
              map (fun i -> Wire.Der.Integer (Int64.of_int i)) int;
              map (fun s -> Wire.Der.Octets (Bytes.of_string s)) (string_size (int_range 0 40));
              map (fun s -> Wire.Der.Utf8 s) (string_size ~gen:printable (int_range 0 40)) ]
        in
        if n = 0 then leaf
        else
          frequency
            [ (3, leaf);
              (1, map (fun l -> Wire.Der.Sequence l) (list_size (int_range 0 4) (self (n / 2))));
              (1, map2 (fun t v -> Wire.Der.Context (t, v)) (int_range 0 30) (self (n / 2))) ])
  in
  QCheck.Test.make ~name:"der roundtrip" ~count:500 (QCheck.make gen_der) (fun v ->
      Wire.Der.decode (Wire.Der.encode v) = v)

let suite_encoding =
  [ QCheck_alcotest.to_alcotest (encoding_roundtrip Wire.Encoding.Der_typed (fun v -> v));
    QCheck_alcotest.to_alcotest (encoding_roundtrip Wire.Encoding.V4_adhoc strip_tags);
    Alcotest.test_case "tag discipline" `Quick tag_discipline;
    Alcotest.test_case "cross-context confusion" `Quick cross_context_confusion;
    Alcotest.test_case "der known vectors" `Quick der_known_vectors;
    Alcotest.test_case "der rejects malformed" `Quick der_rejects_malformed;
    QCheck_alcotest.to_alcotest der_truncation_detected;
    QCheck_alcotest.to_alcotest der_roundtrip_prop ]

(* --- the low-level codec --- *)

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"codec writer/reader roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xff)
        (pair (int_bound 0xffff) (int_bound 0xffffffff))
        (string_of_size (QCheck.Gen.int_range 0 60))
        int)
    (fun (a, (b, c), s, i) ->
      let w = Wire.Codec.Writer.create () in
      Wire.Codec.Writer.u8 w a;
      Wire.Codec.Writer.u16 w b;
      Wire.Codec.Writer.u32 w c;
      Wire.Codec.Writer.lstring w s;
      Wire.Codec.Writer.i64 w (Int64.of_int i);
      let r = Wire.Codec.Reader.of_bytes (Wire.Codec.Writer.contents w) in
      let a' = Wire.Codec.Reader.u8 r in
      let b' = Wire.Codec.Reader.u16 r in
      let c' = Wire.Codec.Reader.u32 r in
      let s' = Wire.Codec.Reader.lstring r in
      let i' = Wire.Codec.Reader.i64 r in
      Wire.Codec.Reader.expect_end r;
      a = a' && b = b' && c = c' && s = s' && Int64.of_int i = i')

let codec_rejects_overrun () =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.u32 w 1000;
  (* Length prefix claims 1000 bytes; only 3 follow. *)
  Wire.Codec.Writer.raw w (Bytes.of_string "abc");
  let r = Wire.Codec.Reader.of_bytes (Wire.Codec.Writer.contents w) in
  match Wire.Codec.Reader.lbytes r with
  | exception Wire.Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "overrun accepted"

let suite_codec =
  [ QCheck_alcotest.to_alcotest codec_roundtrip_prop;
    Alcotest.test_case "length overrun rejected" `Quick codec_rejects_overrun ]

(* ------------------------------------------------------------------ *)
(* Heap and engine                                                     *)
(* ------------------------------------------------------------------ *)

let heap_sorts =
  QCheck.Test.make ~name:"heap drains in order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort Int.compare xs)

let engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~at:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule eng ~at:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule eng ~at:2.0 (fun () -> log := "c" :: !log);
  (* same-time events fire in scheduling order *)
  Engine.run eng;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Engine.now eng)

let engine_cascade () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick n = if n > 0 then Engine.schedule_after eng 1.0 (fun () -> incr count; tick (n - 1)) in
  tick 10;
  Engine.run eng;
  Alcotest.(check int) "all fired" 10 !count;
  Alcotest.(check (float 1e-9)) "time advanced" 10.0 (Engine.now eng)

let engine_run_until () =
  let eng = Engine.create () in
  let fired = ref 0 in
  List.iter (fun t -> Engine.schedule eng ~at:t (fun () -> incr fired)) [ 1.0; 2.0; 3.0 ];
  Engine.run_until eng 2.5;
  Alcotest.(check int) "two fired" 2 !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending eng);
  Alcotest.(check (float 1e-9)) "clock at limit" 2.5 (Engine.now eng)

let engine_random_order =
  QCheck.Test.make ~name:"events fire in time order under random schedules" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_bound 1000))
    (fun times ->
      let eng = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          let at = float_of_int t /. 10.0 in
          Engine.schedule eng ~at (fun () -> fired := at :: !fired))
        times;
      Engine.run eng;
      let got = List.rev !fired in
      got = List.sort compare got && List.length got = List.length times)

let suite_engine =
  [ QCheck_alcotest.to_alcotest heap_sorts;
    Alcotest.test_case "event ordering" `Quick engine_ordering;
    Alcotest.test_case "cascading events" `Quick engine_cascade;
    Alcotest.test_case "run_until" `Quick engine_run_until;
    QCheck_alcotest.to_alcotest engine_random_order ]

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let mk_net () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let a = Host.create ~name:"alpha" ~ips:[ Addr.of_quad 10 0 0 1 ] () in
  let b = Host.create ~name:"beta" ~ips:[ Addr.of_quad 10 0 0 2 ] () in
  Net.attach net a;
  Net.attach net b;
  (eng, net, a, b)

let net_delivery () =
  let eng, net, a, b = mk_net () in
  let got = ref None in
  Net.listen net b ~port:100 (fun pkt -> got := Some pkt.Packet.payload);
  Net.send net ~sport:5000 ~dst:(Host.primary_ip b) ~dport:100 a (Bytes.of_string "hello");
  Engine.run eng;
  Alcotest.(check (option string)) "delivered" (Some "hello") (Option.map Bytes.to_string !got)

let net_source_forgery_rejected () =
  let _, net, a, b = mk_net () in
  Alcotest.check_raises "honest hosts cannot forge" (Invalid_argument "Net.send: source address not owned by sending host")
    (fun () ->
      Net.send net ~src:(Host.primary_ip b) ~sport:1 ~dst:(Host.primary_ip b) ~dport:1 a Bytes.empty)

let net_interceptor () =
  let eng, net, a, b = mk_net () in
  let got = ref [] in
  Net.listen net b ~port:100 (fun pkt -> got := Bytes.to_string pkt.Packet.payload :: !got);
  Net.set_interceptor net (fun pkt ->
      if Bytes.to_string pkt.Packet.payload = "drop-me" then Net.Drop
      else if Bytes.to_string pkt.Packet.payload = "twist-me" then
        Net.Replace [ { pkt with Packet.payload = Bytes.of_string "twisted" } ]
      else Net.Deliver);
  let send s = Net.send net ~sport:5000 ~dst:(Host.primary_ip b) ~dport:100 a (Bytes.of_string s) in
  send "drop-me";
  send "twist-me";
  send "fine";
  Engine.run eng;
  Alcotest.(check (list string)) "interception" [ "twisted"; "fine" ] (List.rev !got)

let net_adversary_spoof () =
  let eng, net, _, b = mk_net () in
  let adv = Adversary.attach net in
  let from = ref None in
  Net.listen net b ~port:100 (fun pkt -> from := Some pkt.Packet.src);
  Adversary.spoof adv ~src:(Addr.of_quad 192 168 9 9) ~sport:7 ~dst:(Host.primary_ip b) ~dport:100
    (Bytes.of_string "boo");
  Engine.run eng;
  Alcotest.(check (option string)) "spoofed source accepted" (Some "192.168.9.9")
    (Option.map Addr.to_string !from)

let net_tap_capture () =
  let eng, net, a, b = mk_net () in
  let adv = Adversary.attach net in
  Adversary.start_tap adv;
  Net.listen net b ~port:100 ignore;
  Net.send net ~sport:1 ~dst:(Host.primary_ip b) ~dport:100 a (Bytes.of_string "x");
  Net.send net ~sport:1 ~dst:(Host.primary_ip b) ~dport:100 a (Bytes.of_string "y");
  Engine.run eng;
  Alcotest.(check int) "captured both" 2 (List.length (Adversary.captured adv))

let rpc_roundtrip () =
  let eng, net, a, b = mk_net () in
  Net.listen net b ~port:100 (fun pkt ->
      Net.send net ~sport:100 ~dst:pkt.Packet.src ~dport:pkt.Packet.sport b
        (Bytes.of_string ("re:" ^ Bytes.to_string pkt.Packet.payload)));
  let reply = ref "" and timed_out = ref false in
  Rpc.call net a ~dst:(Host.primary_ip b) ~dport:100 (Bytes.of_string "ping")
    ~on_reply:(fun pkt -> reply := Bytes.to_string pkt.Packet.payload)
    ~on_timeout:(fun () -> timed_out := true);
  Engine.run eng;
  Alcotest.(check string) "reply" "re:ping" !reply;
  Alcotest.(check bool) "no timeout" false !timed_out

let rpc_timeout_and_retry () =
  let eng, net, a, b = mk_net () in
  (* Server drops the first request, answers the second: a legitimate
     retransmission, the situation that trips authenticator caches. *)
  let seen = ref 0 in
  Net.listen net b ~port:100 (fun pkt ->
      incr seen;
      if !seen >= 2 then
        Net.send net ~sport:100 ~dst:pkt.Packet.src ~dport:pkt.Packet.sport b (Bytes.of_string "ok"));
  let replies = ref 0 and timeouts = ref 0 in
  Rpc.call net a ~timeout:0.5 ~retries:3 ~dst:(Host.primary_ip b) ~dport:100
    (Bytes.of_string "req")
    ~on_reply:(fun _ -> incr replies)
    ~on_timeout:(fun () -> incr timeouts);
  Engine.run eng;
  Alcotest.(check int) "one reply" 1 !replies;
  Alcotest.(check int) "no timeout" 0 !timeouts;
  Alcotest.(check int) "retransmitted" 2 !seen

(* Backoff under overload: the retransmit schedule is exponential with
   seeded jitter — attempt [i] waits [min max_timeout (timeout *
   backoff^i)] scaled by a factor in [1 +- jitter]. The interceptor
   timestamps each send before network latency, so the gaps measure the
   client's own schedule. *)
let rpc_backoff_jitter_bounds () =
  let eng, net, a, b = mk_net () in
  let sends = ref [] in
  Net.set_interceptor net (fun pkt ->
      if pkt.Packet.dport = 100 then sends := Engine.now eng :: !sends;
      (* Swallow every request: only timeouts drive the schedule. *)
      Net.Drop);
  let timeouts = ref 0 in
  Rpc.call net a ~timeout:1.0 ~retries:4 ~backoff:2.0 ~max_timeout:4.0
    ~jitter:0.1 ~dst:(Host.primary_ip b) ~dport:100 (Bytes.of_string "req")
    ~on_reply:(fun _ -> Alcotest.fail "dropped request cannot be answered")
    ~on_timeout:(fun () -> incr timeouts);
  Engine.run eng;
  Alcotest.(check int) "one timeout" 1 !timeouts;
  let times = List.rev !sends in
  Alcotest.(check int) "retries + 1 transmissions" 5 (List.length times);
  (* Nominal waits 1, 2, 4, 4 (the last capped by max_timeout), each
     jittered by at most 10%. *)
  let nominal = [ 1.0; 2.0; 4.0; 4.0 ] in
  List.iteri
    (fun i (prev, next) ->
      let base = List.nth nominal i in
      let gap = next -. prev in
      Alcotest.(check bool)
        (Printf.sprintf "gap %d within jitter bounds (%.3fs vs %.1fs)" i gap
           base)
        true
        (gap >= base *. 0.9 -. 1e-9 && gap <= base *. 1.1 +. 1e-9))
    (List.combine
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times))

(* The busy-KDC failover race: the first exchange times out, the caller
   fails over, and only then does the overloaded server answer. The
   late reply lands on the abandoned call's (unregistered) ephemeral
   port and dies there — it must not resurrect the finished call — and
   a duplicate of the healthy server's reply is suppressed by the
   one-shot finish. *)
let rpc_late_reply_after_failover_suppressed () =
  let eng, net, a, b = mk_net () in
  (* Port 100: the busy KDC — answers 5 s after the request, long after
     the caller gave up. *)
  Net.listen net b ~port:100 (fun pkt ->
      Engine.schedule_after eng 5.0 (fun () ->
          Net.send net ~sport:100 ~dst:pkt.Packet.src ~dport:pkt.Packet.sport b
            (Bytes.of_string "late")));
  (* Port 101: the failover target — answers immediately, twice (the
     duplicate-prone network the paper's retransmission note worries
     about). *)
  Net.listen net b ~port:101 (fun pkt ->
      for _ = 1 to 2 do
        Net.send net ~sport:101 ~dst:pkt.Packet.src ~dport:pkt.Packet.sport b
          (Bytes.of_string "ok")
      done);
  let first_replies = ref 0 and second_replies = ref 0 in
  let timeouts = ref 0 in
  Rpc.call net a ~timeout:1.0 ~retries:0 ~jitter:0.0 ~dst:(Host.primary_ip b)
    ~dport:100 (Bytes.of_string "req")
    ~on_reply:(fun _ -> incr first_replies)
    ~on_timeout:(fun () ->
      incr timeouts;
      Rpc.call net a ~timeout:1.0 ~retries:0 ~jitter:0.0
        ~dst:(Host.primary_ip b) ~dport:101 (Bytes.of_string "req")
        ~on_reply:(fun _ -> incr second_replies)
        ~on_timeout:(fun () -> Alcotest.fail "failover target answered"));
  Engine.run eng;
  (* The engine drains past t = 5: the busy KDC's answer has been sent
     and dropped by the time these run. *)
  Alcotest.(check int) "abandoned call saw the timeout" 1 !timeouts;
  Alcotest.(check int) "late reply did not resurrect it" 0 !first_replies;
  Alcotest.(check int) "duplicate reply suppressed after failover" 1
    !second_replies

(* When the retry envelope is spent the call stops transmitting: exactly
   [retries + 1] copies leave the host, then one timeout, and the engine
   goes quiet — no hidden retransmission keeps hammering the server. *)
let rpc_retries_stop_when_spent () =
  let eng, net, a, b = mk_net () in
  let sends = ref 0 in
  Net.set_interceptor net (fun pkt ->
      if pkt.Packet.dport = 100 then incr sends;
      Net.Drop);
  let timeouts = ref 0 in
  Rpc.call net a ~timeout:1.0 ~retries:2 ~backoff:2.0 ~jitter:0.0
    ~dst:(Host.primary_ip b) ~dport:100 (Bytes.of_string "req")
    ~on_reply:(fun _ -> Alcotest.fail "dropped request cannot be answered")
    ~on_timeout:(fun () -> incr timeouts);
  Engine.run eng;
  Alcotest.(check int) "exactly retries + 1 transmissions" 3 !sends;
  Alcotest.(check int) "exactly one timeout" 1 !timeouts;
  (* 1 + 2 + 4 seconds of (unjittered) waiting, then nothing. *)
  Alcotest.(check (float 1e-9)) "engine quiet after the envelope" 7.0
    (Engine.now eng)

let multihomed_addresses () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let m = Host.create ~name:"gateway" ~ips:[ Addr.of_quad 10 0 0 9; Addr.of_quad 10 1 0 9 ] () in
  let b = Host.create ~name:"beta" ~ips:[ Addr.of_quad 10 0 0 2 ] () in
  Net.attach net m;
  Net.attach net b;
  let from = ref [] in
  Net.listen net b ~port:100 (fun pkt -> from := Addr.to_string pkt.Packet.src :: !from);
  Net.send net ~src:(Addr.of_quad 10 0 0 9) ~sport:1 ~dst:(Host.primary_ip b) ~dport:100 m Bytes.empty;
  Net.send net ~src:(Addr.of_quad 10 1 0 9) ~sport:1 ~dst:(Host.primary_ip b) ~dport:100 m Bytes.empty;
  Engine.run eng;
  Alcotest.(check (list string)) "both addresses usable" [ "10.0.0.9"; "10.1.0.9" ] (List.rev !from)

let net_storm_invariants =
  (* Under a randomly-dropping interceptor, exactly the undropped packets
     arrive, in order, unduplicated. *)
  QCheck.Test.make ~name:"delivery invariants under random drops" ~count:100
    QCheck.(pair (int_range 0 60) (int_bound 1000))
    (fun (n, seed) ->
      let eng, net, a, b = mk_net () in
      ignore eng;
      let drop_rng = Util.Rng.create (Int64.of_int (seed + 1)) in
      let dropped = ref 0 in
      Net.set_interceptor net (fun _ ->
          if Util.Rng.int drop_rng 4 = 0 then begin
            incr dropped;
            Net.Drop
          end
          else Net.Deliver);
      let got = ref [] in
      Net.listen net b ~port:100 (fun pkt ->
          got := Bytes.to_string pkt.Packet.payload :: !got);
      for i = 0 to n - 1 do
        Net.send net ~sport:1 ~dst:(Host.primary_ip b) ~dport:100 a
          (Bytes.of_string (string_of_int i))
      done;
      Engine.run eng;
      let got = List.rev_map int_of_string !got in
      List.length got = n - !dropped && got = List.sort compare got)

let suite_net =
  [ QCheck_alcotest.to_alcotest net_storm_invariants;
    Alcotest.test_case "delivery" `Quick net_delivery;
    Alcotest.test_case "source forgery rejected for honest hosts" `Quick net_source_forgery_rejected;
    Alcotest.test_case "interceptor" `Quick net_interceptor;
    Alcotest.test_case "adversary spoof" `Quick net_adversary_spoof;
    Alcotest.test_case "tap capture" `Quick net_tap_capture;
    Alcotest.test_case "rpc roundtrip" `Quick rpc_roundtrip;
    Alcotest.test_case "rpc retransmission" `Quick rpc_timeout_and_retry;
    Alcotest.test_case "rpc backoff jitter within seeded bounds" `Quick
      rpc_backoff_jitter_bounds;
    Alcotest.test_case "rpc late reply after failover suppressed" `Quick
      rpc_late_reply_after_failover_suppressed;
    Alcotest.test_case "rpc retries stop when spent" `Quick
      rpc_retries_stop_when_spent;
    Alcotest.test_case "multi-homed hosts" `Quick multihomed_addresses ]

(* ------------------------------------------------------------------ *)
(* Host clocks and caches                                              *)
(* ------------------------------------------------------------------ *)

let clock_model () =
  let h = Host.create ~clock_offset:10.0 ~clock_drift:0.001 ~name:"h" ~ips:[ 1 ] () in
  Alcotest.(check (float 1e-9)) "offset+drift" 110.1 (Host.local_time h ~real:100.0);
  Host.set_clock h ~real:100.0 ~reading:50.0;
  Alcotest.(check (float 1e-9)) "after sync" 50.0 (Host.local_time h ~real:100.0)

let cache_model () =
  let ws = Host.create ~name:"ws" ~ips:[ 1 ] () in
  let mu = Host.create ~security:Host.Multi_user ~name:"mu" ~ips:[ 2 ] () in
  Host.cache_put ws "tgt" (Bytes.of_string "secret");
  Host.cache_put mu "tgt" (Bytes.of_string "secret");
  Alcotest.(check bool) "workstation cache unreadable" true (Host.steal_cache ws = None);
  (match Host.steal_cache mu with
  | Some [ ("tgt", _) ] -> ()
  | _ -> Alcotest.fail "multi-user cache should leak");
  Host.cache_wipe ws;
  Alcotest.(check bool) "wiped" true (Host.cache_get ws "tgt" = None)

let suite_host =
  [ Alcotest.test_case "clock model" `Quick clock_model;
    Alcotest.test_case "credential cache" `Quick cache_model ]

(* ------------------------------------------------------------------ *)
(* Tcpish                                                              *)
(* ------------------------------------------------------------------ *)

let tcp_handshake_and_data () =
  let eng, net, a, b = mk_net () in
  let server_got = ref [] and client_got = ref [] in
  Tcpish.listen net b ~port:513
    ~on_accept:(fun conn ->
      Tcpish.on_data conn (fun data ->
          server_got := Bytes.to_string data :: !server_got;
          Tcpish.send conn (Bytes.of_string "pong")))
    ();
  ignore
    (Tcpish.connect net a ~dst:(Host.primary_ip b) ~dport:513
       ~on_connected:(fun conn ->
         Tcpish.on_data conn (fun data ->
             client_got := Bytes.to_string data :: !client_got);
         Tcpish.send conn (Bytes.of_string "ping");
         Tcpish.send conn (Bytes.of_string "ping2"))
       ());
  Engine.run eng;
  Alcotest.(check (list string)) "server got" [ "ping"; "ping2" ] (List.rev !server_got);
  Alcotest.(check (list string)) "client got" [ "pong"; "pong" ] (List.rev !client_got)

let tcp_predictable_isn () =
  let eng = Engine.create () in
  let net = Net.create eng in
  Engine.schedule eng ~at:100.0 (fun () ->
      let predicted = Tcpish.predict_isn net Tcpish.Predictable in
      Alcotest.(check int) "predictable" (64 * 100) predicted);
  Engine.run eng

let tcp_out_of_window_dropped () =
  let eng, net, a, b = mk_net () in
  let server_got = ref [] in
  let server_conn = ref None in
  Tcpish.listen net b ~port:513
    ~on_accept:(fun conn ->
      server_conn := Some conn;
      Tcpish.on_data conn (fun d -> server_got := Bytes.to_string d :: !server_got))
    ();
  ignore
    (Tcpish.connect net a ~dst:(Host.primary_ip b) ~dport:513
       ~on_connected:(fun conn -> Tcpish.send conn (Bytes.of_string "real"))
       ());
  Engine.run eng;
  (* Inject a segment with a wrong sequence number at the server. *)
  let adv = Adversary.attach net in
  let bogus =
    Tcpish.encode_segment
      { Tcpish.syn = false; ack = false; fin = false; rst = false; seq = 999999;
        ackno = 0; body = Bytes.of_string "fake" }
  in
  Adversary.spoof adv ~src:(Host.primary_ip a) ~sport:33001 ~dst:(Host.primary_ip b) ~dport:513 bogus;
  Engine.run eng;
  Alcotest.(check (list string)) "only real data" [ "real" ] (List.rev !server_got)

let suite_tcp =
  [ Alcotest.test_case "handshake and data" `Quick tcp_handshake_and_data;
    Alcotest.test_case "predictable isn" `Quick tcp_predictable_isn;
    Alcotest.test_case "wrong seq dropped" `Quick tcp_out_of_window_dropped ]

(* ------------------------------------------------------------------ *)
(* Time service                                                        *)
(* ------------------------------------------------------------------ *)

let time_sync () =
  let eng, net, a, b = mk_net () in
  b.Host.clock_offset <- 500.0;
  Timesvc.install_server net b ();
  let done_ = ref false in
  Timesvc.sync net a ~server:(Host.primary_ip b) ~on_done:(fun () -> done_ := true) ();
  Engine.run eng;
  Alcotest.(check bool) "synced" true !done_;
  let real = Engine.now eng in
  Alcotest.(check (float 0.1)) "clock follows server"
    (Host.local_time b ~real) (Host.local_time a ~real)

let time_spoof () =
  (* The adversary rewrites the reply: the victim believes an arbitrary
     time. No cryptography required — the protocol is unauthenticated. *)
  let eng, net, a, b = mk_net () in
  Timesvc.install_server net b ();
  let adv = Adversary.attach net in
  Adversary.intercept adv (fun pkt ->
      if pkt.Packet.sport = Timesvc.default_port then begin
        let w = Wire.Codec.Writer.create () in
        Wire.Codec.Writer.i64 w (Int64.bits_of_float 12345.0);
        Net.Replace [ { pkt with Packet.payload = Wire.Codec.Writer.contents w } ]
      end
      else Net.Deliver);
  Timesvc.sync net a ~server:(Host.primary_ip b) ~on_done:ignore ();
  Engine.run eng;
  (* The clock keeps ticking after capture; allow the elapsed sim time. *)
  Alcotest.(check (float 2.0)) "victim clock captured" 12345.0
    (Host.local_time a ~real:(Engine.now eng))

let time_spoof_detected_with_mac () =
  let eng, net, a, b = mk_net () in
  let key = Bytes.of_string "shared-time-key" in
  Timesvc.install_authenticated_server net b ~key ();
  let adv = Adversary.attach net in
  Adversary.intercept adv (fun pkt ->
      if pkt.Packet.sport = Timesvc.default_port then begin
        (* Tamper with the reading; the MAC no longer matches. *)
        let p = Bytes.copy pkt.Packet.payload in
        Bytes.set_int64_be p 0 (Int64.bits_of_float 12345.0);
        Net.Replace [ { pkt with Packet.payload = p } ]
      end
      else Net.Deliver);
  let verdict = ref None in
  Timesvc.sync_authenticated net a ~key ~server:(Host.primary_ip b)
    ~on_done:(fun ok -> verdict := Some ok) ();
  Engine.run eng;
  Alcotest.(check (option bool)) "forgery detected" (Some false) !verdict;
  Alcotest.(check (float 0.5)) "clock untouched" (Engine.now eng)
    (Host.local_time a ~real:(Engine.now eng))

let suite_time =
  [ Alcotest.test_case "sync" `Quick time_sync;
    Alcotest.test_case "spoofable when unauthenticated" `Quick time_spoof;
    Alcotest.test_case "mac detects spoof" `Quick time_spoof_detected_with_mac ]

let () =
  Alcotest.run "sim"
    [ ("encoding", suite_encoding); ("codec", suite_codec);
      ("engine", suite_engine); ("net", suite_net);
      ("host", suite_host); ("tcpish", suite_tcp); ("timesvc", suite_time) ]
