(* The scale-out plane: the client credential cache (reuse, expiry, and the
   paper's stolen-cache caveat) and the load generator (determinism,
   validation, and the shape of what BENCH_load.json is built from). *)

open Kerberos

let realm = "ATHENA"
let pat = Principal.user ~realm "pat"

(* A multi-user machine attached to the testbed — the kind of host whose
   credential cache the paper worries about. *)
let shared_host bed =
  let h =
    Sim.Host.create ~security:Sim.Host.Multi_user ~name:"timeshare"
      ~ips:[ Sim.Addr.of_quad 10 0 0 40 ] ()
  in
  Sim.Net.attach bed.Attacks.Testbed.net h;
  h

let make_client ?password ?(ccache = false) ~seed bed host =
  Client.create ~seed ?password ~ccache bed.Attacks.Testbed.net host
    ~profile:bed.Attacks.Testbed.profile
    ~kdcs:[ (realm, Attacks.Testbed.kdc_addr bed) ]
    pat

(* ------------------------------------------------------------------ *)
(* Credential cache: reuse before expiry                               *)
(* ------------------------------------------------------------------ *)

let ccache_reuse () =
  let bed = Attacks.Testbed.make ~profile:Profile.v4 () in
  let ws = shared_host bed in
  let c = make_client ~seed:21L ~password:bed.victim_password ~ccache:true bed ws in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/notes"
    (Bytes.of_string "grocery list");
  Client.login c ~password:bed.victim_password (fun r ->
      ignore (Attacks.Testbed.expect "login" r));
  Attacks.Testbed.run bed;
  let first = ref None and second = ref None and read = ref None in
  Client.get_ticket c ~service:bed.file_principal (fun r ->
      first := Some (Attacks.Testbed.expect "first ticket" r);
      Client.get_ticket c ~service:bed.file_principal (fun r ->
          let creds = Attacks.Testbed.expect "second ticket" r in
          second := Some creds;
          (* The cached ticket is not just equal — it still works. *)
          Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip bed.file_host)
            ~dport:bed.file_port (fun r ->
              let chan = Attacks.Testbed.expect "ap" r in
              Client.call_priv c chan (Bytes.of_string "READ /u/pat/notes")
                ~k:(fun r -> read := Some (Attacks.Testbed.expect "read" r)))));
  Attacks.Testbed.run bed;
  Alcotest.(check int) "one TGS round trip" 1 (Client.ccache_misses c);
  Alcotest.(check int) "one cache hit" 1 (Client.ccache_hits c);
  (match (!first, !second) with
  | Some a, Some b ->
      Alcotest.(check bool) "same ticket reused" true (Bytes.equal a.Client.ticket b.Client.ticket)
  | _ -> Alcotest.fail "tickets missing");
  Alcotest.(check (option string)) "cached ticket authenticates"
    (Some "grocery list")
    (Option.map Bytes.to_string !read);
  (* Logout wipes the service-ticket cache along with the TGT. *)
  Client.logout c;
  Alcotest.(check bool) "host cache wiped" true
    (match Sim.Host.steal_cache ws with None | Some [] -> true | Some _ -> false)

(* A client created without [~ccache:true] keeps the old behaviour: every
   request is a TGS round trip and the counters stay at zero. *)
let ccache_off_is_inert () =
  let bed = Attacks.Testbed.make ~profile:Profile.v4 () in
  let ws = shared_host bed in
  let c = make_client ~seed:22L ~password:bed.victim_password bed ws in
  Client.login c ~password:bed.victim_password (fun r ->
      ignore (Attacks.Testbed.expect "login" r));
  Attacks.Testbed.run bed;
  let done_ = ref 0 in
  Client.get_ticket c ~service:bed.file_principal (fun r ->
      ignore (Attacks.Testbed.expect "t1" r);
      incr done_;
      Client.get_ticket c ~service:bed.file_principal (fun r ->
          ignore (Attacks.Testbed.expect "t2" r);
          incr done_));
  Attacks.Testbed.run bed;
  Alcotest.(check int) "both requests completed" 2 !done_;
  Alcotest.(check int) "no hits" 0 (Client.ccache_hits c);
  Alcotest.(check int) "no misses counted" 0 (Client.ccache_misses c)

(* ------------------------------------------------------------------ *)
(* Credential cache: re-fetch after expiry                             *)
(* ------------------------------------------------------------------ *)

let ccache_expiry () =
  let bed = Attacks.Testbed.make ~profile:Profile.v4 () in
  let ws = shared_host bed in
  let c = make_client ~seed:23L ~password:bed.victim_password ~ccache:true bed ws in
  Client.login c ~password:bed.victim_password (fun r ->
      ignore (Attacks.Testbed.expect "login" r));
  Attacks.Testbed.run bed;
  let early = ref None in
  Client.get_ticket c ~service:bed.file_principal (fun r ->
      early := Some (Attacks.Testbed.expect "first ticket" r));
  Attacks.Testbed.run bed;
  (* The testbed KDC issues 8-hour tickets; outlive them. *)
  Attacks.Testbed.run_for bed (8.0 *. 3600.0 +. 120.0);
  let late = ref None in
  Client.get_ticket c ~service:bed.file_principal (fun r ->
      late := Some (Attacks.Testbed.expect "ticket after expiry" r));
  Attacks.Testbed.run bed;
  Alcotest.(check int) "no stale hit" 0 (Client.ccache_hits c);
  Alcotest.(check int) "two TGS round trips" 2 (Client.ccache_misses c);
  match (!early, !late) with
  | Some a, Some b ->
      Alcotest.(check bool) "fresh ticket issued" true
        (b.Client.issued_at > a.Client.issued_at)
  | _ -> Alcotest.fail "tickets missing"

(* ------------------------------------------------------------------ *)
(* The paper's caveat: a stolen cache replays until expiry             *)
(* ------------------------------------------------------------------ *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let stolen_ccache_replays () =
  let bed = Attacks.Testbed.make ~profile:Profile.v4 () in
  let ws = shared_host bed in
  let victim = make_client ~seed:24L ~password:bed.victim_password ~ccache:true bed ws in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/thesis"
    (Bytes.of_string "draft chapter 3");
  Client.login victim ~password:bed.victim_password (fun r ->
      ignore (Attacks.Testbed.expect "login" r);
      Client.get_ticket victim ~service:bed.file_principal (fun r ->
          ignore (Attacks.Testbed.expect "ticket" r)));
  Attacks.Testbed.run bed;
  (* The co-resident thief reads the host cache: the service ticket the
     ccache parked there is usable as-is — "an intruder who is able to
     read these files can use these until they expire". *)
  let entries =
    match Sim.Host.steal_cache ws with
    | None | Some [] -> Alcotest.fail "nothing stealable on a multi-user host"
    | Some entries -> entries
  in
  let svc_blob =
    match List.find_opt (fun (label, _) -> has_prefix "svc:" label) entries with
    | Some (_, blob) -> blob
    | None -> Alcotest.fail "service ticket not parked in the host cache"
  in
  let creds = Client.creds_of_bytes svc_blob in
  let thief = make_client ~seed:25L bed ws in
  let loot = ref None in
  Client.ap_exchange thief creds ~dst:(Sim.Host.primary_ip bed.file_host)
    ~dport:bed.file_port (fun r ->
      let chan = Attacks.Testbed.expect "stolen-ticket AP" r in
      Client.call_priv thief chan (Bytes.of_string "READ /u/pat/thesis")
        ~k:(fun r -> loot := Some (Attacks.Testbed.expect "stolen read" r)));
  Attacks.Testbed.run bed;
  Alcotest.(check (option string)) "victim's file read with stolen ticket"
    (Some "draft chapter 3")
    (Option.map Bytes.to_string !loot)

(* A raw wire replay of a captured AP_REQ, for contrast: the cacheless v4
   server accepts it inside the skew window; a server with a replay cache
   catches it and counts the hit. (Neither helps against the stolen-cache
   exchange above, which builds a fresh authenticator.) *)
let wire_replay profile =
  let bed = Attacks.Testbed.make ~profile () in
  Attacks.Testbed.victim_mail_session bed ();
  Attacks.Testbed.run bed;
  let srv = Services.Mailserver.apserver bed.mail in
  let honest = Apserver.sessions_established srv in
  let ap_reqs =
    Sim.Adversary.capture_matching bed.adv (fun p ->
        p.Sim.Packet.dport = bed.mail_port
        &&
        match Frames.unwrap p.Sim.Packet.payload with
        | Some (k, _) -> k = Frames.ap_req
        | None -> false)
  in
  (match ap_reqs with
  | [] -> Alcotest.fail "no AP_REQ captured"
  | pkt :: _ ->
      Sim.Engine.schedule_after bed.eng 1.0 (fun () ->
          Sim.Adversary.spoof bed.adv ~src:(Attacks.Testbed.victim_addr bed)
            ~sport:45000 ~dst:(Sim.Host.primary_ip bed.mail_host)
            ~dport:bed.mail_port pkt.Sim.Packet.payload));
  Attacks.Testbed.run bed;
  (Apserver.sessions_established srv > honest, Apserver.replay_hits srv)

let wire_replay_vs_cache () =
  let accepted, hits = wire_replay Profile.v4 in
  Alcotest.(check bool) "cacheless server replays" true accepted;
  Alcotest.(check int) "no cache, no hits" 0 hits;
  let cached_profile =
    { Profile.v4 with
      Profile.name = "v4c";
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  let accepted, hits = wire_replay cached_profile in
  Alcotest.(check bool) "replay cache rejects" false accepted;
  Alcotest.(check bool) "hit counted" true (hits >= 1)

(* ------------------------------------------------------------------ *)
(* Loadgen: determinism and shape                                      *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  { Workloads.Loadgen.default with
    Workloads.Loadgen.users = 120;
    shards = 2;
    kdcs = 2;
    services = 4;
    active_clients = 12;
    requests_per_client = 10 }

let loadgen_deterministic () =
  let a = Workloads.Loadgen.run small_cfg in
  let b = Workloads.Loadgen.run small_cfg in
  Alcotest.(check string) "same seed, byte-identical export"
    (Telemetry.Json.to_string (Workloads.Loadgen.report_to_json a))
    (Telemetry.Json.to_string (Workloads.Loadgen.report_to_json b))

let loadgen_report_shape () =
  let r = Workloads.Loadgen.run small_cfg in
  Alcotest.(check int) "every request completed" 120 r.Workloads.Loadgen.completed;
  Alcotest.(check int) "no errors" 0 r.Workloads.Loadgen.errors;
  Alcotest.(check int) "one AS exchange per active client" 12
    r.Workloads.Loadgen.as_requests;
  Alcotest.(check int) "shard_lookups matches shard count" 2
    (Array.length r.Workloads.Loadgen.shard_lookups);
  Alcotest.(check bool) "shards saw traffic" true
    (Array.for_all (fun n -> n > 0) r.Workloads.Loadgen.shard_lookups);
  Alcotest.(check int) "every principal landed in a shard"
    (120 + 4 + 1)  (* users + services + the TGS itself *)
    (Array.fold_left ( + ) 0 r.Workloads.Loadgen.shard_entries);
  (* The cache holds TGS traffic below one exchange per request. *)
  Alcotest.(check bool) "cache bit" true
    (r.Workloads.Loadgen.tgs_requests < 12 * 10);
  Alcotest.(check int) "hits + misses = cacheable requests" (12 * 10)
    (r.Workloads.Loadgen.ccache_hits + r.Workloads.Loadgen.ccache_misses)

let loadgen_rejects_nonsense () =
  let raises cfg =
    match Workloads.Loadgen.run cfg with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero users" true
    (raises { small_cfg with Workloads.Loadgen.users = 0 });
  Alcotest.(check bool) "more active than registered" true
    (raises { small_cfg with Workloads.Loadgen.active_clients = 1000 });
  Alcotest.(check bool) "zero shards" true
    (raises { small_cfg with Workloads.Loadgen.shards = 0 })

let () =
  Alcotest.run "load"
    [ ("ccache",
       [ Alcotest.test_case "reuse before expiry" `Quick ccache_reuse;
         Alcotest.test_case "off by default" `Quick ccache_off_is_inert;
         Alcotest.test_case "re-fetch after expiry" `Quick ccache_expiry ]);
      ("theft",
       [ Alcotest.test_case "stolen cache replays" `Quick stolen_ccache_replays;
         Alcotest.test_case "wire replay vs replay cache" `Quick wire_replay_vs_cache ]);
      ("loadgen",
       [ Alcotest.test_case "deterministic" `Quick loadgen_deterministic;
         Alcotest.test_case "report shape" `Quick loadgen_report_shape;
         Alcotest.test_case "config validation" `Quick loadgen_rejects_nonsense ]) ]
