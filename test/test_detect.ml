(* The detection plane: interpolated registry quantiles, configurable
   Opsview thresholds, EWMA warm-up edge cases, each anomaly rule against
   a hand-built labelled event stream with known detection and
   false-positive rates, alert folding, and determinism of the blended
   attack campaign (two runs at one seed must serialize identically). *)

open Kerberos
module T = Telemetry

(* --- interpolated quantiles (Metrics) -------------------------------- *)

let quantiles () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram ~buckets:[| 10.0; 20.0; 30.0 |] m "q" in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0 (T.Metrics.quantile h 0.5);
  (* 10 samples spread 1..10 land in the first bucket (0, 10]: the median
     rank is 5 of 10, interpolated halfway up the bucket. *)
  for i = 1 to 10 do
    T.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50 interpolates" 5.0 (T.Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 10.0 (T.Metrics.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (T.Metrics.quantile h 0.0);
  (* Push one sample beyond the last bound: the tail bucket interpolates
     toward the observed max, not infinity. *)
  T.Metrics.observe h 95.0;
  let p99 = T.Metrics.quantile h 0.99 in
  Alcotest.(check bool) "overflow bucket stays finite" true (p99 <= 95.0);
  (* A single observation answers every quantile with itself. *)
  let one = T.Metrics.histogram ~buckets:[| 10.0 |] m "one" in
  T.Metrics.observe one 4.0;
  Alcotest.(check (float 1e-9)) "single sample p50" 4.0 (T.Metrics.quantile one 0.5);
  Alcotest.(check (float 1e-9)) "single sample p99" 4.0 (T.Metrics.quantile one 0.99)

let quantiles_in_export () =
  let m = T.Metrics.create () in
  let h = T.Metrics.histogram ~buckets:[| 1.0 |] m "lat" in
  T.Metrics.observe h 0.5;
  let s = T.Json.to_string (T.Metrics.to_json m) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " exported") true (Astring.String.is_infix ~affix:k s))
    [ "\"p50\""; "\"p95\""; "\"p99\"" ];
  Alcotest.(check bool) "text export carries quantiles" true
    (Astring.String.is_infix ~affix:"p95=" (T.Metrics.to_text m))

(* --- Opsview policy --------------------------------------------------- *)

let opsview_policy () =
  let strict = { T.Opsview.default_policy with T.Opsview.sus_preauth_rejects = 0 } in
  let feed o =
    T.Opsview.record_as_req o ~src:"10.0.0.9" ~time:1.0 ~outcome:"preauth-reject"
  in
  let o1 = T.Opsview.create () in
  feed o1;
  Alcotest.(check bool) "default tolerates 1 reject" false
    (T.Opsview.suspicious o1 ~src:"10.0.0.9");
  let o2 = T.Opsview.create ~policy:strict () in
  feed o2;
  Alcotest.(check bool) "strict policy flags 1 reject" true
    (T.Opsview.suspicious o2 ~src:"10.0.0.9");
  (* set_policy re-judges already-recorded traffic at read time. *)
  T.Opsview.set_policy o1 strict;
  Alcotest.(check bool) "set_policy re-judges" true
    (T.Opsview.suspicious o1 ~src:"10.0.0.9");
  Alcotest.(check (float 0.0)) "accessor round-trips" 0.0
    (float_of_int (T.Opsview.policy o1).T.Opsview.sus_preauth_rejects)

(* --- synthetic event streams ------------------------------------------ *)

let ev ?(component = "kdc") ~time ~kind attrs =
  { T.Trace.time; severity = T.Trace.Info; component; kind; attrs }

let as_req ~time ~src ~client ~outcome =
  ev ~time ~kind:"auth.as_req"
    [ ("src", src); ("client", client); ("outcome", outcome) ]

let ap_req ~time ~src ~outcome =
  ev ~component:"apserver" ~time ~kind:"auth.ap_req"
    [ ("src", src); ("service", "app00"); ("frame", "ap.req"); ("outcome", outcome) ]

let validated ~time ~src ~lifetime ~addr =
  ev ~component:"apserver" ~time ~kind:"ticket.validated"
    [ ("src", src); ("client", "u1@R"); ("service", "s@R");
      ("lifetime", Printf.sprintf "%g" lifetime); ("issued_at", "0");
      ("addr", addr) ]

(* A small policy so tests stay readable: warm up for 10 s, 5 s epochs. *)
let test_policy =
  { T.Detect.default_policy with
    T.Detect.warmup = 10.0; epoch = 5.0; burst_floor = 6; preauth_run = 3;
    harvest_min_clients = 5; max_lifetime = 3600.0 }

let warmup_and_baseline () =
  let d = T.Detect.create ~policy:test_policy () in
  (* A flood entirely inside the warm-up window must train, not alert. *)
  for i = 0 to 19 do
    T.Detect.observe d
      (as_req ~time:(0.1 *. float_of_int i) ~src:"10.0.0.1" ~client:"u1@R"
         ~outcome:"ok")
  done;
  Alcotest.(check int) "no alerts during warm-up" 0 (T.Detect.alert_count d);
  Alcotest.(check int) "events counted" 20 (T.Detect.observed d);
  (* Baselines: a source that spoke has one; silence is zero. *)
  T.Detect.observe d (as_req ~time:12.0 ~src:"10.0.0.1" ~client:"u1@R" ~outcome:"ok");
  Alcotest.(check bool) "active source learned a baseline" true
    (T.Detect.baseline d ~subject:"src:10.0.0.1" > 0.0);
  Alcotest.(check (float 0.0)) "zero-traffic principal baseline" 0.0
    (T.Detect.baseline d ~subject:"principal:ghost@R");
  Alcotest.(check (float 0.0)) "unknown subject kind" 0.0
    (T.Detect.baseline d ~subject:"nonsense");
  (* The zero-baseline subject still trips the absolute burst floor. *)
  for i = 0 to 9 do
    T.Detect.observe d
      (as_req ~time:(20.0 +. (0.1 *. float_of_int i)) ~src:"10.9.9.9"
         ~client:"ghost@R" ~outcome:"ok")
  done;
  Alcotest.(check bool) "cold subject bursts past the floor" true
    (T.Detect.first_alert d ~subject:"principal:ghost@R" ~rules:[ "as-burst" ]
    <> None)

let preauth_run_rule () =
  let d = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d (as_req ~time:0.0 ~src:"10.0.0.2" ~client:"u2@R" ~outcome:"ok");
  (* Two failures, an ok (run resets), then three straight failures with a
     rate-limit in between (which must NOT reset the run). *)
  let t = ref 15.0 in
  let step outcome =
    T.Detect.observe d (as_req ~time:!t ~src:"10.0.0.2" ~client:"u2@R" ~outcome);
    t := !t +. 0.5
  in
  step "preauth-reject";
  step "preauth-failed";
  step "ok";
  Alcotest.(check int) "run reset by success" 0 (T.Detect.alert_count d);
  step "preauth-reject";
  step "rate-limited";
  step "preauth-reject";
  step "preauth-failed";
  Alcotest.(check bool) "dictionary run detected" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.2" ~rules:[ "preauth-run" ]
    <> None)

let harvest_rule () =
  let d = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d (as_req ~time:0.0 ~src:"10.0.0.3" ~client:"u0@R" ~outcome:"ok");
  (* Five distinct principals, no follow-up: the harvest signature. *)
  for i = 1 to 5 do
    T.Detect.observe d
      (as_req ~time:(14.0 +. float_of_int i) ~src:"10.0.0.3"
         ~client:(Printf.sprintf "u%d@R" i) ~outcome:"ok")
  done;
  Alcotest.(check bool) "harvester flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.3" ~rules:[ "harvest" ] <> None);
  (* The same spread WITH follow-up traffic is a busy multi-user gateway,
     not a harvester. *)
  let d2 = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d2 (as_req ~time:0.0 ~src:"10.0.0.4" ~client:"u0@R" ~outcome:"ok");
  for i = 1 to 5 do
    T.Detect.observe d2
      (as_req ~time:(14.0 +. float_of_int i) ~src:"10.0.0.4"
         ~client:(Printf.sprintf "u%d@R" i) ~outcome:"ok");
    T.Detect.observe d2 (ap_req ~time:(14.2 +. float_of_int i) ~src:"10.0.0.4" ~outcome:"ok")
  done;
  Alcotest.(check bool) "gateway not flagged" true
    (T.Detect.first_alert d2 ~subject:"src:10.0.0.4" ~rules:[ "harvest" ] = None)

let shape_rules () =
  let d = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d (as_req ~time:0.0 ~src:"10.0.0.5" ~client:"u1@R" ~outcome:"ok");
  (* Replay-cache hit: one is enough by default. *)
  T.Detect.observe d (ap_req ~time:15.0 ~src:"10.0.0.5" ~outcome:"replay-detected");
  Alcotest.(check bool) "replay hit flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.5" ~rules:[ "replay" ] <> None);
  (* Over-lifetime ticket: the golden-ticket shape. *)
  T.Detect.observe d (validated ~time:16.0 ~src:"10.0.0.6" ~lifetime:86400.0 ~addr:"bound");
  Alcotest.(check bool) "forged lifetime flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.6" ~rules:[ "forged-ticket" ]
    <> None);
  (* Address-free ticket in an address-binding realm. *)
  T.Detect.observe d (validated ~time:17.0 ~src:"10.0.0.7" ~lifetime:600.0 ~addr:"none");
  Alcotest.(check bool) "address-free ticket flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.7" ~rules:[ "forged-ticket" ]
    <> None);
  (* An in-policy, address-bound ticket is fine. *)
  T.Detect.observe d (validated ~time:18.0 ~src:"10.0.0.8" ~lifetime:600.0 ~addr:"bound");
  Alcotest.(check bool) "legitimate ticket not flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.8" ~rules:[ "forged-ticket" ]
    = None);
  (* Checksum anomalies need two hits (one could be line noise). *)
  T.Detect.observe d (ap_req ~time:19.0 ~src:"10.0.0.9" ~outcome:"bad-checksum");
  Alcotest.(check bool) "one checksum failure tolerated" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.9" ~rules:[ "checksum-anomaly" ]
    = None);
  T.Detect.observe d (ap_req ~time:19.5 ~src:"10.0.0.9" ~outcome:"bad-integrity");
  Alcotest.(check bool) "second checksum failure flagged" true
    (T.Detect.first_alert d ~subject:"src:10.0.0.9" ~rules:[ "checksum-anomaly" ]
    <> None)

let alert_folding () =
  let d = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d (as_req ~time:0.0 ~src:"10.0.0.1" ~client:"u1@R" ~outcome:"ok");
  for i = 0 to 4 do
    T.Detect.observe d
      (ap_req ~time:(15.0 +. float_of_int i) ~src:"10.0.0.1"
         ~outcome:"replay-detected")
  done;
  Alcotest.(check int) "five firings, one alert" 1 (T.Detect.alert_count d);
  match T.Detect.alerts d with
  | [ a ] ->
      Alcotest.(check int) "firings folded" 5 a.T.Detect.al_count;
      Alcotest.(check (float 0.0)) "first firing time kept" 15.0 a.T.Detect.al_time
  | l -> Alcotest.failf "expected exactly one alert, got %d" (List.length l)

(* A labelled stream with known ground truth: two attackers detected, one
   attacker invisible (its class's rules never fire), one benign subject
   deliberately tripped — so every rate the scorer reports is checkable
   by hand. *)
let scoring () =
  let d = T.Detect.create ~policy:test_policy () in
  T.Detect.observe d (as_req ~time:0.0 ~src:"10.0.0.1" ~client:"u1@R" ~outcome:"ok");
  (* Attacker A: dictionary run at t=20 (detected, TTD 1.0 from the third
     consecutive failure at 21.0). *)
  List.iter
    (fun (t, o) ->
      T.Detect.observe d (as_req ~time:t ~src:"10.8.0.1" ~client:"uA@R" ~outcome:o))
    [ (20.0, "preauth-reject"); (20.5, "preauth-failed"); (21.0, "preauth-reject") ];
  (* Attacker B: replay hit at t=30 (detected, TTD 0). *)
  T.Detect.observe d (ap_req ~time:30.0 ~src:"10.8.0.2" ~outcome:"replay-detected");
  (* Attacker C: a guesser whose traffic never reached the KDC — no
     events, undetectable by construction. *)
  (* Benign D flagged by a replay hit: one false positive. *)
  T.Detect.observe d (ap_req ~time:31.0 ~src:"10.0.0.4" ~outcome:"replay-detected");
  let labels =
    [ { T.Detect.lb_class = "password_guess"; lb_subject = "src:10.8.0.1";
        lb_start = 20.0 };
      { T.Detect.lb_class = "password_guess"; lb_subject = "src:10.8.0.3";
        lb_start = 20.0 };
      { T.Detect.lb_class = "replay_auth"; lb_subject = "src:10.8.0.2";
        lb_start = 30.0 } ]
  in
  let benign = [ "src:10.0.0.1"; "src:10.0.0.4"; "principal:u1@R" ] in
  let s = T.Detect.score d ~labels ~benign in
  let find cls =
    List.find (fun c -> c.T.Detect.cs_class = cls) s.T.Detect.sc_classes
  in
  let pg = find "password_guess" in
  Alcotest.(check int) "guessers labelled" 2 pg.T.Detect.cs_attackers;
  Alcotest.(check int) "one guesser detected" 1 pg.T.Detect.cs_detected;
  Alcotest.(check (float 1e-9)) "guess detection rate" 0.5 pg.T.Detect.cs_detection_rate;
  Alcotest.(check (float 1e-9)) "guess TTD" 1.0 pg.T.Detect.cs_mean_ttd;
  Alcotest.(check int) "no benign tripped guess rules" 0 pg.T.Detect.cs_benign_flagged;
  let rp = find "replay_auth" in
  Alcotest.(check (float 1e-9)) "replay detection rate" 1.0 rp.T.Detect.cs_detection_rate;
  (* The deliberate benign replay hit: 1 of 3 benign subjects, counted
     both per-class and overall. *)
  Alcotest.(check int) "benign replay FP" 1 rp.T.Detect.cs_benign_flagged;
  Alcotest.(check (float 1e-9)) "overall FPR" (1.0 /. 3.0)
    s.T.Detect.sc_false_positive_rate;
  Alcotest.(check int) "overall flagged" 1 s.T.Detect.sc_benign_flagged;
  (* JSON export mirrors the record. *)
  let js = T.Json.to_string (T.Detect.score_to_json s) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in score json") true
        (Astring.String.is_infix ~affix:k js))
    [ "\"password_guess\""; "\"replay_auth\""; "\"detection_rate\"";
      "\"false_positive_rate\""; "\"mean_ttd\"" ]

(* --- the campaign end to end ------------------------------------------ *)

let campaign_profile =
  { Profile.v4 with
    Profile.name = "v4+preauth+cache";
    preauth = true;
    ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let campaign_cfg =
  { Workloads.Loadgen.default with
    Workloads.Loadgen.users = 800; shards = 2; kdcs = 2; services = 4;
    active_clients = 120; requests_per_client = 15; think_time = 1.0;
    ramp = 8.0; seed = 0xD7EC7L; profile = campaign_profile;
    lightweight = true; lazy_users = true }

let campaign_mix =
  { Workloads.Attack_mix.default_mix with
    Workloads.Attack_mix.guessers = 2; guess_tries = 12; harvesters = 2;
    harvest_targets = 12; replayers = 2; forgers = 2; start = 16.0;
    stagger = 1.0 }

let campaign_policy =
  { T.Detect.default_policy with
    T.Detect.warmup = 12.0; epoch = 6.0;
    max_lifetime = campaign_cfg.Workloads.Loadgen.lifetime }

let campaign_detects () =
  let _, c =
    Workloads.Loadgen.run_campaign ~policy:campaign_policy ~mix:campaign_mix
      campaign_cfg
  in
  Alcotest.(check bool) "detector consumed events" true
    (c.Workloads.Loadgen.ca_events > 0);
  Alcotest.(check int) "all four classes labelled" 4
    (List.length c.Workloads.Loadgen.ca_score.T.Detect.sc_classes);
  let floor =
    List.filter
      (fun (cs : T.Detect.class_score) ->
        cs.T.Detect.cs_detection_rate >= 0.9
        && cs.T.Detect.cs_false_positive_rate <= 0.01)
      c.Workloads.Loadgen.ca_score.T.Detect.sc_classes
  in
  Alcotest.(check bool) "at least 3 classes over the floor" true
    (List.length floor >= 3);
  Alcotest.(check bool) "benign population scored" true
    (c.Workloads.Loadgen.ca_score.T.Detect.sc_benign > 0)

let campaign_deterministic () =
  let run () =
    T.Json.to_string
      (Workloads.Loadgen.campaign_to_json
         (snd
            (Workloads.Loadgen.run_campaign ~policy:campaign_policy
               ~mix:campaign_mix campaign_cfg)))
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "same seed, same campaign bytes" a b;
  let c =
    T.Json.to_string
      (Workloads.Loadgen.campaign_to_json
         (snd
            (Workloads.Loadgen.run_campaign ~policy:campaign_policy
               ~mix:campaign_mix
               { campaign_cfg with Workloads.Loadgen.seed = 0x5EEDL })))
  in
  Alcotest.(check bool) "different seed, different bytes" false (String.equal a c)

let () =
  Alcotest.run "detect"
    [ ( "metrics",
        [ Alcotest.test_case "interpolated quantiles" `Quick quantiles;
          Alcotest.test_case "quantiles exported" `Quick quantiles_in_export ] );
      ( "opsview",
        [ Alcotest.test_case "configurable policy" `Quick opsview_policy ] );
      ( "rules",
        [ Alcotest.test_case "warm-up and baselines" `Quick warmup_and_baseline;
          Alcotest.test_case "preauth run" `Quick preauth_run_rule;
          Alcotest.test_case "harvest" `Quick harvest_rule;
          Alcotest.test_case "ticket shape and replay" `Quick shape_rules;
          Alcotest.test_case "alert folding" `Quick alert_folding ] );
      ( "scoring",
        [ Alcotest.test_case "labelled synthetic stream" `Quick scoring ] );
      ( "campaign",
        [ Alcotest.test_case "blended campaign detects" `Quick campaign_detects;
          Alcotest.test_case "byte-identical at a seed" `Quick
            campaign_deterministic ] ) ]
