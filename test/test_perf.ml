(* The fast-path equivalence suite: every cheap path must be observationally
   identical to the expensive path it replaces. The DES schedule cache must
   be invisible to ciphertext; a session must schedule its key exactly once
   no matter how many messages it seals; the heap's bulk insert must pop in
   the same order as one-at-a-time pushes; and a lazily materialized realm
   must serve byte-identical traffic to an eagerly registered one. *)

let realm = "ATHENA"

let with_schedule_cache enabled f =
  let prev = Crypto.Des.schedule_cache_enabled () in
  Crypto.Des.set_schedule_cache enabled;
  Fun.protect ~finally:(fun () -> Crypto.Des.set_schedule_cache prev) f

(* ------------------------------------------------------------------ *)
(* DES schedule cache: invisible to every sealed byte                  *)
(* ------------------------------------------------------------------ *)

let key = Crypto.Des.fix_parity (Bytes.of_string "perfkey!")

let seal_with_cache enabled scheme =
  with_schedule_cache enabled (fun () ->
      let rng = Util.Rng.create 77L in
      let sealed =
        Kerberos.Seal.seal scheme rng ~key (Bytes.of_string "TKT pat@ATHENA")
      in
      let opened = Kerberos.Seal.open_ scheme ~key sealed in
      (sealed, opened))

let cache_transparent_seal () =
  List.iter
    (fun (label, scheme) ->
      let s_off, o_off = seal_with_cache false scheme in
      let s_on, o_on = seal_with_cache true scheme in
      Alcotest.(check bool)
        (label ^ ": ciphertext identical")
        true (Bytes.equal s_off s_on);
      match (o_off, o_on) with
      | Ok a, Ok b ->
          Alcotest.(check bool) (label ^ ": plaintext identical") true
            (Bytes.equal a b)
      | _ -> Alcotest.fail (label ^ ": open failed"))
    [ ("pcbc", Kerberos.Seal.Pcbc_raw);
      ("cbc+crc", Kerberos.Seal.Cbc_confounder Crypto.Checksum.Crc32);
      ("cbc+md4", Kerberos.Seal.Cbc_confounder Crypto.Checksum.Md4) ]

(* The strongest form: an entire KDC workload (AS, TGS, AP, priv traffic)
   reports byte-identically with the cache on and off. *)
let cache_transparent_load () =
  let cfg =
    { Workloads.Loadgen.default with
      Workloads.Loadgen.users = 60; shards = 2; kdcs = 2;
      active_clients = 12; requests_per_client = 5; seed = 99L }
  in
  let report enabled =
    with_schedule_cache enabled (fun () ->
        Telemetry.Json.to_string
          (Workloads.Loadgen.report_to_json (Workloads.Loadgen.run cfg)))
  in
  Alcotest.(check string) "whole-realm report identical" (report false)
    (report true)

(* ------------------------------------------------------------------ *)
(* Session: the key is scheduled once, not once per message            *)
(* ------------------------------------------------------------------ *)

let session role ~seed =
  let a = Sim.Addr.of_quad 10 0 0 1 and b = Sim.Addr.of_quad 10 0 0 2 in
  let own, peer =
    match role with
    | Kerberos.Session.Client_side -> (a, b)
    | Kerberos.Session.Server_side -> (b, a)
  in
  Kerberos.Session.make ~profile:Kerberos.Profile.v4
    ~rng:(Util.Rng.create seed) ~role ~key ~own_addr:own ~peer_addr:peer
    ~send_seq:0 ~recv_seq:0

let session_schedules_once () =
  (* With the cache off, every [Des.schedule_cached] call would show up in
     the process-wide counter — so a constant count across N messages
     proves the session carries its scheduled key. *)
  with_schedule_cache false (fun () ->
      let c = session Kerberos.Session.Client_side ~seed:5L in
      let s = session Kerberos.Session.Server_side ~seed:6L in
      let before = Crypto.Des.schedules_performed () in
      for i = 1 to 25 do
        let now = float_of_int i in
        let sealed =
          Kerberos.Krb_priv.seal c ~now (Bytes.of_string "tob or not tob")
        in
        match Kerberos.Krb_priv.open_ s ~now sealed with
        | Ok _ -> ()
        | Error e ->
            Alcotest.fail ("priv open: " ^ Kerberos.Krb_priv.error_to_string e)
      done;
      Alcotest.(check int) "no per-message key schedules" 0
        (Crypto.Des.schedules_performed () - before))

(* ------------------------------------------------------------------ *)
(* Heap: ordering and the bulk-insert fast path                        *)
(* ------------------------------------------------------------------ *)

(* The engine's event shape: ordered by (time, seq), a total order. *)
let cmp (t1, s1) (t2, s2) =
  match compare (t1 : float) t2 with 0 -> compare (s1 : int) s2 | c -> c

let drain h =
  let rec go acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

(* Times drawn from a small pool so ties are common — ties are exactly
   where heap order bugs hide. *)
let events =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (t, s) -> Printf.sprintf "(%g,%d)" t s) l))
    QCheck.Gen.(
      list_size (int_bound 200)
        (map2 (fun t s -> (float_of_int t /. 4.0, s)) (int_bound 12) int))

let heap_pops_sorted =
  QCheck.Test.make ~name:"heap pops in (time,seq) order" ~count:200 events
    (fun l ->
      let h = Sim.Heap.create ~cmp in
      List.iter (Sim.Heap.push h) l;
      let popped = drain h in
      popped = List.stable_sort cmp l)

let push_many_equiv =
  QCheck.Test.make ~name:"push_many = repeated push" ~count:200
    (QCheck.pair events events) (fun (prefix, batch) ->
      let one = Sim.Heap.create ~cmp and bulk = Sim.Heap.create ~cmp in
      List.iter (Sim.Heap.push one) prefix;
      List.iter (Sim.Heap.push bulk) prefix;
      List.iter (Sim.Heap.push one) batch;
      Sim.Heap.push_many bulk batch;
      Sim.Heap.size one = Sim.Heap.size bulk && drain one = drain bulk)

(* ------------------------------------------------------------------ *)
(* Lazy materialization: same realm, same bytes, fewer registrations   *)
(* ------------------------------------------------------------------ *)

let user_at = Workloads.Passwords.user_at ~seed:4269L ~weak_fraction:0.4

let user_at_is_index_pure () =
  (* Derivation depends on (seed, index) alone — the registrar, the lazy
     provider, and the client can each derive user [i] independently. *)
  let a = user_at 17 and b = user_at 17 in
  Alcotest.(check string) "same name" a.Workloads.Passwords.name
    b.Workloads.Passwords.name;
  Alcotest.(check string) "same password" a.Workloads.Passwords.password
    b.Workloads.Passwords.password;
  let other = Workloads.Passwords.user_at ~seed:4270L ~weak_fraction:0.4 17 in
  Alcotest.(check bool) "seed matters" false
    (String.equal a.Workloads.Passwords.password
       other.Workloads.Passwords.password);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Passwords.user_at: negative index") (fun () ->
      ignore (user_at (-1)))

let kdb_lazy_provider () =
  let db = Kerberos.Kdb.create ~shards:4 () in
  let u i = Kerberos.Principal.user ~realm (user_at i).Workloads.Passwords.name in
  Kerberos.Kdb.set_lazy_provider db (fun name ->
      match Kerberos.Principal.of_string name with
      | { Kerberos.Principal.name = n; instance = ""; realm = r }
        when r = realm && String.length n > 1 && n.[0] = 'u' -> (
          match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
          | Some i when i >= 0 ->
              Some
                { Kerberos.Kdb.key =
                    Crypto.Str2key.derive (user_at i).Workloads.Passwords.password;
                  kind = Kerberos.Kdb.User }
          | _ -> None)
      | _ -> None
      | exception Invalid_argument _ -> None)
  ;
  Alcotest.(check int) "nothing materialized yet" 0
    (Kerberos.Kdb.lazy_materialized db);
  let e1 = Kerberos.Kdb.lookup db (u 3) in
  Alcotest.(check bool) "lookup materializes" true (e1 <> None);
  Alcotest.(check int) "memoized once" 1 (Kerberos.Kdb.lazy_materialized db);
  let e2 = Kerberos.Kdb.lookup db (u 3) in
  Alcotest.(check bool) "second lookup identical" true (e1 = e2);
  Alcotest.(check int) "still one entry" 1 (Kerberos.Kdb.lazy_materialized db);
  (* A real registration — a password change — supersedes the memo. *)
  Kerberos.Kdb.add_user db (u 3) ~password:"NewSecret99";
  (match Kerberos.Kdb.lookup db (u 3) with
  | Some e ->
      Alcotest.(check bool) "registration wins over memo" true
        (Bytes.equal e.Kerberos.Kdb.key (Crypto.Str2key.derive "NewSecret99"))
  | None -> Alcotest.fail "registered user vanished");
  Alcotest.(check bool) "unknown principal still misses" true
    (Kerberos.Kdb.lookup db (Kerberos.Principal.user ~realm "mallory") = None)

let lazy_matches_eager () =
  let cfg =
    { Workloads.Loadgen.default with
      Workloads.Loadgen.users = 300; shards = 4; kdcs = 2;
      active_clients = 40; requests_per_client = 6; seed = 4269L }
  in
  let eager = Workloads.Loadgen.run cfg in
  let lazy_r =
    Workloads.Loadgen.run { cfg with Workloads.Loadgen.lazy_users = true }
  in
  (* Everything the traffic can observe must match; only the registered
     population (shard_entries) legitimately differs — that is the point. *)
  let masked =
    { eager with
      Workloads.Loadgen.r_config = lazy_r.Workloads.Loadgen.r_config;
      shard_entries = lazy_r.Workloads.Loadgen.shard_entries }
  in
  Alcotest.(check bool) "reports identical up to registration" true
    (masked = lazy_r);
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check bool) "lazy registers fewer principals" true
    (total lazy_r.Workloads.Loadgen.shard_entries
    < total eager.Workloads.Loadgen.shard_entries);
  Alcotest.(check bool) "but at least the touched ones" true
    (total lazy_r.Workloads.Loadgen.shard_entries > 0)

let () =
  Alcotest.run "perf"
    [ ( "schedule-cache",
        [ Alcotest.test_case "seal transparent" `Quick cache_transparent_seal;
          Alcotest.test_case "load transparent" `Quick cache_transparent_load;
          Alcotest.test_case "session schedules once" `Quick
            session_schedules_once ] );
      ( "heap",
        [ QCheck_alcotest.to_alcotest heap_pops_sorted;
          QCheck_alcotest.to_alcotest push_many_equiv ] );
      ( "lazy-users",
        [ Alcotest.test_case "user_at index-pure" `Quick user_at_is_index_pure;
          Alcotest.test_case "kdb provider" `Quick kdb_lazy_provider;
          Alcotest.test_case "lazy = eager" `Quick lazy_matches_eager ] ) ]
