(* The durability & recovery plane: WAL framing and its torn/corrupt
   tails, checkpoint truncation, crash recovery at the database and KDC
   layers, replay-cache pruning at load, anti-entropy reconciliation of
   diverged replicas, kprop under flapping partitions, and the client's
   degraded fallback when every KDC is dark. *)

open Kerberos

let realm = "REC"
let quad = Sim.Addr.of_quad
let profile = Profile.v5_draft3

let key_rng = Util.Rng.create 0x52454354L
let fixed_key = Crypto.Des.random_key key_rng

(* ------------------------------------------------------------------ *)
(* WAL framing                                                         *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [ { Kdb.Wal.w_shard = 0; w_version = 1;
      w_op = Kdb.Wal.Put ("pat@REC", { Kdb.key = fixed_key; kind = Kdb.User }) };
    { Kdb.Wal.w_shard = 2; w_version = 1;
      w_op = Kdb.Wal.Put ("rlogin.ws@REC", { Kdb.key = fixed_key; kind = Kdb.Service }) };
    { Kdb.Wal.w_shard = 0; w_version = 2;
      w_op = Kdb.Wal.Swap (Bytes.of_string "not-a-real-dump, opaque to the log") };
    { Kdb.Wal.w_shard = 1; w_version = 1;
      w_op = Kdb.Wal.Put ("krbtgt.REC@REC", { Kdb.key = fixed_key; kind = Kdb.Cross_realm }) } ]

let wal_of records =
  let w = Kdb.Wal.create () in
  List.iter (Kdb.Wal.append w) records;
  w

let wal_roundtrip () =
  let w = wal_of sample_records in
  Alcotest.(check int) "length" 4 (Kdb.Wal.length w);
  Alcotest.(check int) "appended" 4 (Kdb.Wal.appended w);
  let records, discarded = Kdb.Wal.replay (Kdb.Wal.contents w) in
  Alcotest.(check int) "no bytes discarded" 0 discarded;
  Alcotest.(check bool) "records survive the roundtrip" true
    (records = sample_records);
  let empty, d0 = Kdb.Wal.replay Bytes.empty in
  Alcotest.(check bool) "empty log replays empty" true (empty = [] && d0 = 0)

(* Cut the image at every possible byte boundary: replay must always
   return an exact record prefix and account for every discarded byte —
   and never, at any cut, raise. *)
let wal_torn_at_every_boundary () =
  let w = wal_of sample_records in
  let image = Kdb.Wal.contents w in
  let n = Bytes.length image in
  for cut = 0 to n - 1 do
    let torn = Bytes.sub image 0 cut in
    let records, discarded = Kdb.Wal.replay torn in
    let k = List.length records in
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d: prefix of the original" cut)
      true
      (k <= 4
      && records = List.filteri (fun i _ -> i < k) sample_records);
    (* Every byte of the torn image is either inside a replayed frame or
       counted as discarded. *)
    let replayed_bytes = cut - discarded in
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d: bytes accounted for" cut)
      true
      (replayed_bytes >= 0 && replayed_bytes <= cut)
  done

(* Flip each byte in turn: the CRC must catch the damaged frame and
   truncate there. A flip can only ever shorten the prefix, never alter
   a record that still replays. *)
let wal_bitflip_every_byte () =
  let w = wal_of sample_records in
  let image = Kdb.Wal.contents w in
  for pos = 0 to Bytes.length image - 1 do
    let mutated = Bytes.copy image in
    Bytes.set mutated pos
      (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x40));
    let records, _ = Kdb.Wal.replay mutated in
    let k = List.length records in
    Alcotest.(check bool)
      (Printf.sprintf "flip at %d: surviving prefix is genuine" pos)
      true
      (k <= 4 && records = List.filteri (fun i _ -> i < k) sample_records)
  done

let wal_truncate_after_checkpoint () =
  let w = wal_of sample_records in
  (* A checkpoint at versions [1; 1; 1] covers everything but shard 0's
     version-2 swap. *)
  Kdb.Wal.truncate_after_checkpoint w ~versions:[| 1; 1; 1 |];
  Alcotest.(check int) "only the newer record survives" 1 (Kdb.Wal.length w);
  (match Kdb.Wal.records w with
  | [ { Kdb.Wal.w_shard = 0; w_version = 2; _ } ] -> ()
  | _ -> Alcotest.fail "wrong record survived truncation");
  Alcotest.(check int) "lifetime appends unaffected" 4 (Kdb.Wal.appended w)

let suite_wal =
  [ Alcotest.test_case "roundtrip" `Quick wal_roundtrip;
    Alcotest.test_case "torn at every boundary" `Quick wal_torn_at_every_boundary;
    Alcotest.test_case "bit-flip at every byte" `Quick wal_bitflip_every_byte;
    Alcotest.test_case "truncate after checkpoint" `Quick
      wal_truncate_after_checkpoint ]

(* ------------------------------------------------------------------ *)
(* Database-level crash recovery                                       *)
(* ------------------------------------------------------------------ *)

let populate db n =
  for i = 0 to n - 1 do
    if i mod 4 = 3 then
      Kdb.add_service db
        (Principal.service ~realm (Printf.sprintf "svc%d" i) ~host:"h")
        ~key:fixed_key
    else
      Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
        ~password:(Printf.sprintf "pw%d" i)
  done

let kdb_recovery_equivalence () =
  let db = Kdb.create ~shards:4 () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:fixed_key;
  Kdb.enable_durability db;
  populate db 9;
  let checkpoint, wal = Option.get (Kdb.disk_image db) in
  let r = Kdb.recover ~checkpoint ~wal in
  Alcotest.(check int) "nothing discarded" 0 r.Kdb.discarded_bytes;
  Alcotest.(check int) "all mutations applied" 9 r.Kdb.applied;
  Alcotest.(check bool) "digests identical" true
    (Kdb.digests r.Kdb.recovered = Kdb.digests db);
  Alcotest.(check bool) "version vectors identical" true
    (Kdb.version_vector r.Kdb.recovered = Kdb.version_vector db);
  Alcotest.(check int) "size identical" (Kdb.size db) (Kdb.size r.Kdb.recovered);
  (* And a key actually decrypts: look one principal up in both. *)
  let p = Principal.user ~realm "u0" in
  Alcotest.(check bool) "entry survives byte-for-byte" true
    (match (Kdb.lookup db p, Kdb.lookup r.Kdb.recovered p) with
    | Some a, Some b -> a = b
    | _ -> false)

let kdb_recovery_is_idempotent () =
  (* Records the checkpoint already covers are skipped, so replaying a log
     that overlaps the checkpoint is harmless. *)
  let db = Kdb.create ~shards:2 () in
  Kdb.enable_durability db;
  populate db 6;
  let _, wal = Option.get (Kdb.disk_image db) in
  Kdb.checkpoint db;
  let checkpoint, _ = Option.get (Kdb.disk_image db) in
  (* New checkpoint + the old (now fully covered) log. *)
  let r = Kdb.recover ~checkpoint ~wal in
  Alcotest.(check int) "everything skipped" 6 r.Kdb.skipped;
  Alcotest.(check int) "nothing applied" 0 r.Kdb.applied;
  Alcotest.(check bool) "state unchanged" true
    (Kdb.digests r.Kdb.recovered = Kdb.digests db)

let kdb_auto_checkpoint () =
  let db = Kdb.create ~shards:2 () in
  Kdb.enable_durability ~checkpoint_every:3 db;
  Alcotest.(check int) "initial checkpoint" 1 (Kdb.checkpoints_taken db);
  populate db 7;
  (* 7 mutations at a cadence of 3: checkpoints after the 3rd and 6th. *)
  Alcotest.(check int) "auto checkpoints fired" 3 (Kdb.checkpoints_taken db);
  Alcotest.(check int) "log holds only the tail" 1
    (Kdb.Wal.length (Option.get (Kdb.wal db)));
  let checkpoint, wal = Option.get (Kdb.disk_image db) in
  let r = Kdb.recover ~checkpoint ~wal in
  Alcotest.(check int) "tail replays" 1 r.Kdb.applied;
  Alcotest.(check bool) "recovered state exact" true
    (Kdb.digests r.Kdb.recovered = Kdb.digests db)

let kdb_restore_in_place () =
  let db = Kdb.create ~shards:4 () in
  Kdb.enable_durability db;
  populate db 5;
  let digests = Kdb.digests db in
  let checkpoint, wal = Option.get (Kdb.disk_image db) in
  Kdb.wipe db;
  Alcotest.(check int) "wipe empties the database" 0 (Kdb.size db);
  Alcotest.(check bool) "wipe drops durable state" false (Kdb.durable db);
  Kdb.restore db (Kdb.recover ~checkpoint ~wal);
  Alcotest.(check bool) "restore rebuilds in place" true (Kdb.digests db = digests)

let suite_kdb =
  [ Alcotest.test_case "recovery equivalence" `Quick kdb_recovery_equivalence;
    Alcotest.test_case "recovery is idempotent" `Quick kdb_recovery_is_idempotent;
    Alcotest.test_case "auto checkpoint cadence" `Quick kdb_auto_checkpoint;
    Alcotest.test_case "wipe + restore in place" `Quick kdb_restore_in_place ]

(* ------------------------------------------------------------------ *)
(* Replay-cache pruning at load (regression)                           *)
(* ------------------------------------------------------------------ *)

let replay_cache_prunes_expired_on_load () =
  let c = Replay_cache.create ~horizon:600.0 () in
  ignore (Replay_cache.check_and_insert c ~now:0.0 (Bytes.of_string "old-auth"));
  ignore (Replay_cache.check_and_insert c ~now:500.0 (Bytes.of_string "new-auth"));
  let snapshot = Replay_cache.to_bytes c in
  (* The clock advanced past the first entry's expiry while the server
     was down: a naive load would resurrect dead weight. *)
  let c' = Replay_cache.of_bytes ~now:700.0 snapshot in
  Alcotest.(check int) "expired entry pruned at load" 1 (Replay_cache.size c');
  Alcotest.(check bool) "live entry still replays" true
    (Replay_cache.check_and_insert c' ~now:700.0 (Bytes.of_string "new-auth")
    = Replay_cache.Replayed);
  Alcotest.(check bool) "expired authenticator is fresh again (timestamp check owns it now)"
    true
    (Replay_cache.check_and_insert c' ~now:700.0 (Bytes.of_string "old-auth")
    = Replay_cache.Fresh);
  (* Without [~now] the load is faithful (the historical behaviour). *)
  let c_all = Replay_cache.of_bytes snapshot in
  Alcotest.(check int) "plain load keeps everything" 2 (Replay_cache.size c_all)

let suite_replay_cache =
  [ Alcotest.test_case "expired entries pruned at load" `Quick
      replay_cache_prunes_expired_on_load ]

(* ------------------------------------------------------------------ *)
(* KDC crash + restart over the network                                *)
(* ------------------------------------------------------------------ *)

let mk_realm () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 0 10 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws ];
  let db = Kdb.create ~shards:4 () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:fixed_key;
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  Kdb.add_service db fileserv ~key:fixed_key;
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pat.pw";
  (eng, net, kdc_host, ws, db, fileserv)

let kdc_crash_restart () =
  let eng, net, kdc_host, ws, db, fileserv = mk_realm () in
  let kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 db in
  Kdc.enable_durability kdc;
  Kdc.install net kdc_host kdc ();
  Alcotest.(check bool) "running after install" true (Kdc.running kdc);
  let kdcs = [ (realm, Sim.Host.primary_ip kdc_host) ] in
  let mk_client seed =
    Client.create ~seed ~kdc_timeout:0.3 net ws ~profile ~kdcs
      (Principal.user ~realm "pat")
  in
  (* Phase 1: a login and a mutation that lives only in the WAL. *)
  let before = ref None in
  let c1 = mk_client 1L in
  Client.login c1 ~password:"pat.pw" (fun r -> before := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "login before crash" (Some true) !before;
  Kdb.add_user db (Principal.user ~realm "newbie") ~password:"newbie.pw";
  (* Crash: the port goes dark and the in-memory database is gone. *)
  Kdc.crash kdc;
  Alcotest.(check bool) "not running after crash" false (Kdc.running kdc);
  Alcotest.(check int) "database wiped by the crash" 0 (Kdb.size db);
  Alcotest.(check bool) "port dark" false
    (Sim.Net.listening net (Sim.Host.primary_ip kdc_host) ~port:Kdc.default_port);
  let during = ref None in
  let c2 = mk_client 2L in
  Client.login c2 ~password:"pat.pw" (fun r -> during := Some r);
  Sim.Engine.run eng;
  (match !during with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "login served by a crashed KDC"
  | None -> Alcotest.fail "login against crashed KDC stalled");
  (* Restart: checkpoint + WAL replay bring every principal back,
     including the WAL-only one. *)
  Kdc.restart kdc;
  Alcotest.(check bool) "running after restart" true (Kdc.running kdc);
  Alcotest.(check int) "one recovery counted" 1 (Kdc.recoveries kdc);
  (match Kdc.last_recovery kdc with
  | None -> Alcotest.fail "no recovery info recorded"
  | Some ri ->
      Alcotest.(check int) "the WAL-only mutation replayed" 1 ri.Kdc.wal_applied;
      Alcotest.(check int) "clean image, nothing discarded" 0
        ri.Kdc.wal_discarded_bytes);
  let after_pat = ref None and after_newbie = ref None in
  let c3 = mk_client 3L in
  Client.login c3 ~password:"pat.pw" (fun r ->
      after_pat := Some (Result.is_ok r);
      Client.get_ticket c3 ~service:fileserv (fun r ->
          after_pat := Some (Result.is_ok r)));
  let c4 =
    Client.create ~seed:4L ~kdc_timeout:0.3 net ws ~profile ~kdcs
      (Principal.user ~realm "newbie")
  in
  Client.login c4 ~password:"newbie.pw" (fun r ->
      after_newbie := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "checkpointed principal serves" (Some true)
    !after_pat;
  Alcotest.(check (option bool)) "WAL-only principal serves" (Some true)
    !after_newbie;
  (* A second crash/restart cycle keeps working (recovery re-arms
     durability). *)
  Kdc.crash kdc;
  Kdc.restart kdc;
  Alcotest.(check int) "second recovery counted" 2 (Kdc.recoveries kdc);
  let again = ref None in
  let c5 = mk_client 5L in
  Client.login c5 ~password:"pat.pw" (fun r -> again := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "still serving after second cycle" (Some true)
    !again

let kdc_crash_without_durability_loses_the_realm () =
  let eng, net, kdc_host, ws, db, _ = mk_realm () in
  let kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  Kdc.crash kdc;
  Kdc.restart kdc;
  (* The paper's single point of failure, reproduced: no WAL, no realm. *)
  Alcotest.(check int) "database empty after cold restart" 0 (Kdb.size db);
  let r = ref None in
  let c =
    Client.create ~seed:9L ~kdc_timeout:0.3 net ws ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  Client.login c ~password:"pat.pw" (fun x -> r := Some x);
  Sim.Engine.run eng;
  (match !r with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "a cold-started KDC somehow authenticated pat")

let suite_kdc =
  [ Alcotest.test_case "crash + restart recovers the realm" `Quick
      kdc_crash_restart;
    Alcotest.test_case "crash without durability loses the realm" `Quick
      kdc_crash_without_durability_loses_the_realm ]

(* ------------------------------------------------------------------ *)
(* Kprop under flapping partitions; reconciliation                     *)
(* ------------------------------------------------------------------ *)

let kpropd_key = Crypto.Des.random_key key_rng

(* Deterministic replica contents: building twice yields identical
   databases — entries, version vectors and digests alike — exactly the
   state two replicas share before a partition diverges them. *)
let build_replica_db () =
  let db = Kdb.create ~shards:4 () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:fixed_key;
  Kdb.add_user db (Principal.user ~realm "kadmin") ~password:"admin.pw";
  Kdb.add_service db (Principal.service ~realm "kprop" ~host:"kdc-b")
    ~key:kpropd_key;
  populate db 8;
  db

let mk_replication () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let master_host = Sim.Host.create ~name:"kdc-a" ~ips:[ quad 10 2 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kdc-b" ~ips:[ quad 10 2 0 2 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host ];
  let db = build_replica_db () in
  let admin_p = Principal.user ~realm "kadmin" in
  let kpropd_p = Principal.service ~realm "kprop" ~host:"kdc-b" in
  Kdc.install net master_host (Kdc.create ~realm ~profile ~lifetime:28800.0 db) ();
  (eng, net, master_host, slave_host, db, admin_p, kpropd_p, kpropd_key)

let channel_to_slave eng net master_host slave_host admin_p kpropd_p =
  let admin =
    Client.create ~seed:7L net master_host ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip master_host) ]
      admin_p
  in
  let chan = ref None in
  Client.login admin ~password:"admin.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_p (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r -> chan := Some (Result.get_ok r))));
  Sim.Engine.run eng;
  (admin, Option.get !chan)

(* Three partition/heal flaps while a propagation retries: the push must
   land exactly once, converge the databases, and spend no more sends
   than its attempt budget. *)
let kprop_converges_through_flapping_partition () =
  let eng, net, master_host, slave_host, db, admin_p, kpropd_p, kpropd_key =
    mk_replication ()
  in
  let slave_db = Kdb.create ~shards:4 () in
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_p
      ~key:kpropd_key ~port:754 ~master:admin_p ~slave_db
  in
  let admin, chan =
    channel_to_slave eng net master_host slave_host admin_p kpropd_p
  in
  (* Count pushes on the wire: each attempt sends exactly one datagram to
     the kpropd port. *)
  let pushes_sent = ref 0 in
  Sim.Net.add_tap net (fun pkt ->
      if pkt.Sim.Packet.dport = 754 then incr pushes_sent);
  (* The weather: three half-open windows, each slamming shut again —
     partitioned during [t0, t0+0.4), [t0+0.8, t0+1.2), [t0+1.6, t0+2.0). *)
  let t0 = Sim.Engine.now eng in
  let plane = Sim.Faults.create () in
  let a = [ Sim.Host.primary_ip master_host ]
  and b = [ Sim.Host.primary_ip slave_host ] in
  Sim.Faults.partition plane ~a ~b ~from:t0 ~until:(t0 +. 0.4) ();
  Sim.Faults.partition plane ~a ~b ~from:(t0 +. 0.8) ~until:(t0 +. 1.2) ();
  Sim.Faults.partition plane ~a ~b ~from:(t0 +. 1.6) ~until:(t0 +. 2.0) ();
  Sim.Net.attach_faults net plane;
  let attempts = 8 in
  let result = ref None in
  Services.Kprop.propagate_with_retry ~attempts ~deadline:0.3 ~pause:0.25 admin
    chan ~db ~k:(fun r -> result := Some r);
  Sim.Engine.run eng;
  (match !result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "never converged: %s" e
  | None -> Alcotest.fail "retry loop stalled");
  Alcotest.(check bool) "the flaps actually dropped traffic" true
    (Sim.Faults.count plane Sim.Faults.Partition >= 1);
  Alcotest.(check int) "exactly one push installed" 1
    (Services.Kprop.propagations_received kpropd);
  Alcotest.(check bool) "databases converged" true
    (Kdb.digests db = Kdb.digests slave_db);
  Alcotest.(check bool)
    (Printf.sprintf "retries bounded by the budget (%d sent <= %d)" !pushes_sent
       attempts)
    true
    (!pushes_sent <= attempts)

let reconcile_diverged_replicas () =
  let eng, net, master_host, slave_host, db, admin_p, kpropd_p, kpropd_key =
    mk_replication ()
  in
  (* The replica starts as an exact copy (same entries, same version
     vector — what a pre-partition pair shares)... *)
  let slave_db = build_replica_db () in
  Alcotest.(check bool) "replicas start identical" true
    (Kdb.digests db = Kdb.digests slave_db
    && Kdb.version_vector db = Kdb.version_vector slave_db);
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_p
      ~key:kpropd_key ~port:754 ~master:admin_p ~slave_db
  in
  (* ...then a partition lets both sides take writes: ours gains alice,
     theirs gains bob and re-keys u0 twice (a higher version for u0's
     shard, so the peer wins it). *)
  Kdb.add_user db (Principal.user ~realm "alice") ~password:"alice.pw";
  Kdb.add_user slave_db (Principal.user ~realm "bob") ~password:"bob.pw";
  Kdb.add_user slave_db (Principal.user ~realm "u0") ~password:"pw0.b";
  Kdb.add_user slave_db (Principal.user ~realm "u0") ~password:"pw0.c";
  Alcotest.(check bool) "replicas diverged" false
    (Kdb.digests db = Kdb.digests slave_db);
  let admin, chan =
    channel_to_slave eng net master_host slave_host admin_p kpropd_p
  in
  let result = ref None in
  Services.Kprop.reconcile ~deadline:5.0 admin chan ~db ~k:(fun r ->
      result := Some r);
  Sim.Engine.run eng;
  (match !result with
  | Some (Ok r) ->
      Alcotest.(check int) "all shards examined" 4 r.Services.Kprop.examined;
      Alcotest.(check bool) "pulled the shards the peer won" true
        (r.Services.Kprop.pulled >= 1);
      Alcotest.(check bool) "pushed the shards we won" true
        (r.Services.Kprop.pushed >= 1);
      Alcotest.(check int) "daemon counted our pushes"
        r.Services.Kprop.pushed
        (Services.Kprop.reconciliations kpropd)
  | Some (Error e) -> Alcotest.failf "reconcile failed: %s" e
  | None -> Alcotest.fail "reconcile stalled");
  Alcotest.(check bool) "digests converged" true
    (Kdb.digests db = Kdb.digests slave_db);
  Alcotest.(check bool) "version vectors converged" true
    (Kdb.version_vector db = Kdb.version_vector slave_db);
  (* Deterministic LWW: u0's shard adopted the peer's third password. *)
  let u0 = Principal.user ~realm "u0" in
  Alcotest.(check bool) "higher version won u0" true
    (Kdb.lookup db u0 = Kdb.lookup slave_db u0);
  (* Reconciling twice is a no-op. *)
  let again = ref None in
  Services.Kprop.reconcile ~deadline:5.0 admin chan ~db ~k:(fun r ->
      again := Some r);
  Sim.Engine.run eng;
  (match !again with
  | Some (Ok r) ->
      Alcotest.(check int) "second pass pulls nothing" 0 r.Services.Kprop.pulled;
      Alcotest.(check int) "second pass pushes nothing" 0 r.Services.Kprop.pushed
  | _ -> Alcotest.fail "second reconcile failed")

let suite_kprop =
  [ Alcotest.test_case "convergence through 3 partition flaps" `Quick
      kprop_converges_through_flapping_partition;
    Alcotest.test_case "reconcile diverged replicas" `Quick
      reconcile_diverged_replicas ]

(* ------------------------------------------------------------------ *)
(* Client degradation                                                  *)
(* ------------------------------------------------------------------ *)

let degraded_fallback_when_kdcs_dark () =
  let eng, net, kdc_host, ws, db, fileserv = mk_realm () in
  let printer = Principal.service ~realm "printer" ~host:"pr" in
  Kdb.add_service db printer ~key:fixed_key;
  let kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 db in
  Kdc.enable_durability kdc;
  Kdc.install net kdc_host kdc ();
  let c =
    Client.create ~seed:11L ~kdc_timeout:0.3 net ws ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  let live = ref None in
  Client.login c ~password:"pat.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket_ex c ~service:fileserv (fun r -> live := Some r));
  Sim.Engine.run eng;
  (match !live with
  | Some (Ok (_, Client.From_kdc)) -> ()
  | _ -> Alcotest.fail "live ticket fetch did not come from the KDC");
  Kdc.crash kdc;
  (* Dark KDC, warm wallet: the cached fileserv ticket serves, marked
     Degraded. A service never fetched has nothing to fall back on. *)
  let dark = ref None and cold = ref None in
  Client.get_ticket_ex c ~service:fileserv (fun r -> dark := Some r);
  Client.get_ticket_ex c ~service:printer (fun r -> cold := Some r);
  Sim.Engine.run eng;
  (match !dark with
  | Some (Ok (creds, Client.Degraded)) ->
      Alcotest.(check bool) "degraded creds are the cached ones" true
        (match !live with
        | Some (Ok (orig, _)) -> creds = orig
        | _ -> false)
  | _ -> Alcotest.fail "warm-wallet request did not degrade");
  (match !cold with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "cold request should surface the timeout");
  Alcotest.(check int) "one degraded fallback counted" 1
    (Client.degraded_fallbacks c);
  (* The KDC returns; the next request is served live again. *)
  Kdc.restart kdc;
  let relit = ref None in
  Client.get_ticket_ex c ~service:fileserv (fun r -> relit := Some r);
  Sim.Engine.run eng;
  (match !relit with
  | Some (Ok (_, Client.From_kdc)) -> ()
  | _ -> Alcotest.fail "post-restart request not served live");
  Alcotest.(check int) "no further fallbacks" 1 (Client.degraded_fallbacks c)

let suite_degraded =
  [ Alcotest.test_case "degraded fallback when every KDC is dark" `Quick
      degraded_fallback_when_kdcs_dark ]

let () =
  Alcotest.run "recovery"
    [ ("wal", suite_wal);
      ("kdb-recovery", suite_kdb);
      ("replay-cache", suite_replay_cache);
      ("kdc-crash-restart", suite_kdc);
      ("kprop", suite_kprop);
      ("degraded-client", suite_degraded) ]
