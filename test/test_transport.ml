(* The bytes-faithful transport plane: 4-byte length-prefixed framing
   reassembled across many MTU-sized segments under reordering and
   duplication, a length prefix torn across segment boundaries, honest
   datagram truncation at the MTU choke point (delivered short, rejected
   by the hardened decoders, counted), and the quickstart workload forced
   through the RESPONSE-TOO-BIG -> framed-TCP fallback end to end —
   byte-identically across two runs at one seed. *)

open Kerberos

let quad = Sim.Addr.of_quad

let counter tel name =
  Telemetry.Metrics.value
    (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel) name)

let mk_net ?(seed = 0xF4AEL) () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed ~telemetry:tel eng in
  let a = Sim.Host.create ~name:"alpha" ~ips:[ quad 10 0 0 1 ] () in
  let b = Sim.Host.create ~name:"beta" ~ips:[ quad 10 0 0 2 ] () in
  Sim.Net.attach net a;
  Sim.Net.attach net b;
  (tel, eng, net, a, b)

(* ------------------------------------------------------------------ *)
(* Framing reassembly                                                  *)
(* ------------------------------------------------------------------ *)

(* One framed message chopped into a dozen segments by the MTU, with the
   fault plane reordering and duplicating segments underneath: the
   receiver's on_message must yield the message once, byte-identical,
   and a second message on the same stream must arrive intact after it
   (the frame boundary survives the churn). *)
let framed_across_segments () =
  let tel, eng, net, a, b = mk_net () in
  Sim.Net.set_mtu net (Some 100);
  let rng = Util.Rng.create 0x5E6E17L in
  let msg1 = Util.Rng.bytes rng 1000 in
  let msg2 = Util.Rng.bytes rng 333 in
  let got = ref [] in
  Sim.Tcpish.listen net b ~port:750
    ~on_accept:(fun conn ->
      Sim.Tcpish.on_message conn (fun m -> got := Bytes.copy m :: !got))
    ();
  let plane = Sim.Faults.create ~seed:0x0DDL () in
  ignore
  @@ Sim.Tcpish.connect net a ~dst:(Sim.Host.primary_ip b) ~dport:750
       ~on_connected:(fun conn ->
         (* Faults start after the handshake: from here every segment may
            be doubled and one in three is held back to arrive late. *)
         Sim.Faults.add_duplicate plane ~p:0.5 ();
         Sim.Faults.add_reorder plane ~hold:0.05 ~p:0.3 ();
         Sim.Net.attach_faults net plane;
         Sim.Tcpish.send_message conn msg1;
         Sim.Tcpish.send_message conn msg2)
       ();
  Sim.Engine.run eng;
  (match List.rev !got with
  | [ m1; m2 ] ->
      Alcotest.(check bool) "first message byte-identical" true
        (Bytes.equal m1 msg1);
      Alcotest.(check bool) "second message byte-identical" true
        (Bytes.equal m2 msg2)
  | l -> Alcotest.failf "expected 2 messages, got %d" (List.length l));
  Alcotest.(check bool) "the plane actually interfered" true
    (Sim.Faults.count plane Sim.Faults.Duplicate
     + Sim.Faults.count plane Sim.Faults.Reorder
     > 0);
  Alcotest.(check bool) "out-of-order segments were buffered" true
    (counter tel "tcpish.ooo_buffered" > 0)

(* MTU 16 leaves 3 stream bytes per segment (13 go to the segment
   header), so the 4-byte length prefix itself is torn across the first
   two segments. The framer must buffer the partial prefix and still
   deliver the message byte-identically. *)
let torn_length_prefix () =
  let _tel, eng, net, a, b = mk_net () in
  Sim.Net.set_mtu net (Some 16);
  let msg = Bytes.of_string "torn-prefix payload" in
  let got = ref [] in
  Sim.Tcpish.listen net b ~port:750
    ~on_accept:(fun conn ->
      Sim.Tcpish.on_message conn (fun m -> got := Bytes.copy m :: !got))
    ();
  ignore
  @@ Sim.Tcpish.connect net a ~dst:(Sim.Host.primary_ip b) ~dport:750
       ~on_connected:(fun conn -> Sim.Tcpish.send_message conn msg)
       ();
  Sim.Engine.run eng;
  match !got with
  | [ m ] ->
      Alcotest.(check bool) "reassembled through 3-byte segments" true
        (Bytes.equal m msg)
  | l -> Alcotest.failf "expected 1 message, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Honest truncation                                                   *)
(* ------------------------------------------------------------------ *)

(* A datagram above the path MTU is delivered short — exactly MTU bytes,
   a prefix of the original — and the loss is counted. The truncated
   prefix of a real encoded message must then fail to decode: short
   reads surface as a clean rejection, never as a different message. *)
let truncation_delivered_short_and_rejected () =
  let tel, eng, net, a, b = mk_net () in
  Sim.Net.set_mtu net (Some 64);
  let profile = Profile.v5_draft3 in
  let encoded =
    Messages.encode_msg profile ~tag:Messages.tag_err
      (Messages.err_to_value
         { Messages.e_code = Messages.err_generic;
           e_text = String.make 150 'x' })
  in
  Alcotest.(check bool) "test message exceeds the MTU" true
    (Bytes.length encoded > 64);
  let got = ref None in
  Sim.Net.listen net b ~port:99 (fun pkt ->
      got := Some (Bytes.copy pkt.Sim.Packet.payload));
  Sim.Net.send net ~sport:5000 ~dst:(Sim.Host.primary_ip b) ~dport:99 a encoded;
  Sim.Engine.run eng;
  (match !got with
  | None -> Alcotest.fail "truncated datagram was not delivered at all"
  | Some short ->
      Alcotest.(check int) "delivered exactly MTU bytes" 64 (Bytes.length short);
      Alcotest.(check bool) "delivered bytes are a prefix of the original" true
        (Bytes.equal short (Bytes.sub encoded 0 64));
      let rejected =
        match Messages.decode_msg profile ~tag:Messages.tag_err short with
        | _ -> false
        | exception _ -> true
      in
      Alcotest.(check bool) "hardened decoder rejects the stub" true rejected);
  Alcotest.(check int) "net.packets.truncated" 1
    (counter tel "net.packets.truncated");
  Alcotest.(check int) "net.dropped.truncated" 1
    (counter tel "net.dropped.truncated")

(* ------------------------------------------------------------------ *)
(* RESPONSE-TOO-BIG fallback, end to end                               *)
(* ------------------------------------------------------------------ *)

(* The quickstart realm with the path MTU pinned below the largest
   AS/TGS reply: login, TGS, AP exchange and a sealed read of a blob
   far above the MTU must all complete — the KDC exchanges retried over
   the stream after the server's explicit refusal, the AP channel
   upgraded for the oversized sealed reply. Returns the full telemetry
   trace so the caller can compare two runs byte for byte. *)
let quickstart_under_mtu () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x7E57L ~telemetry:tel eng in
  Sim.Net.set_mtu net (Some 200);
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 2 0 1 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 2 0 2 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 2 0 3 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; fs_host; ws ];
  let profile = Profile.v5_draft3 in
  let rng = Util.Rng.create 0xC4FEL in
  let db = Kdb.create () in
  Kdb.add_service db
    (Principal.tgs ~realm:"TPORT")
    ~key:(Crypto.Des.random_key rng);
  let user = Principal.user ~realm:"TPORT" "u" in
  Kdb.add_user db user ~password:"pw.u";
  let fileserv = Principal.service ~realm:"TPORT" "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  let kdc = Kdc.create ~realm:"TPORT" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  let fsrv =
    Services.Fileserver.install net fs_host ~profile ~principal:fileserv
      ~key:fs_key ~port:600
  in
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:"/blob"
    (Bytes.make 1200 'b');
  let c =
    Client.create ~seed:0xB0BL ~password:"pw.u" net ws ~profile
      ~kdcs:[ ("TPORT", Sim.Host.primary_ip kdc_host) ]
      user
  in
  let read = ref None in
  Client.login c ~password:"pw.u" (function
    | Error e -> Alcotest.failf "login under MTU: %s" e
    | Ok _ ->
        Client.get_ticket c ~service:fileserv (function
          | Error e -> Alcotest.failf "TGS under MTU: %s" e
          | Ok creds ->
              Client.ap_exchange c creds ~deadline:10.0
                ~dst:(Sim.Host.primary_ip fs_host) ~dport:600 (function
                | Error e -> Alcotest.failf "AP under MTU: %s" e
                | Ok chan ->
                    Client.call_priv c chan ~deadline:10.0
                      (Bytes.of_string "READ /blob") ~k:(fun r ->
                        read := Some r))));
  Sim.Engine.run eng;
  (match !read with
  | Some (Ok data) ->
      Alcotest.(check int) "blob read whole over the fallback" 1200
        (Bytes.length data)
  | Some (Error e) -> Alcotest.failf "sealed read under MTU: %s" e
  | None -> Alcotest.fail "pipeline never completed");
  (tel, Telemetry.Collector.trace_jsonl tel)

let response_too_big_fallback () =
  let tel, _ = quickstart_under_mtu () in
  Alcotest.(check bool) "transport.fallback.response_too_big > 0" true
    (counter tel "transport.fallback.response_too_big" > 0);
  Alcotest.(check bool) "the stream leg actually carried calls" true
    (counter tel "transport.tcp.calls" > 0);
  Alcotest.(check int) "no datagram was honestly truncated" 0
    (counter tel "net.packets.truncated")

let fallback_deterministic () =
  let _, trace1 = quickstart_under_mtu () in
  let _, trace2 = quickstart_under_mtu () in
  Alcotest.(check bool) "two runs at one seed trace byte-identically" true
    (String.equal trace1 trace2)

(* ------------------------------------------------------------------ *)
(* Deadline across the fallback                                        *)
(* ------------------------------------------------------------------ *)

(* A server whose datagram endpoint answers RESPONSE-TOO-BIG instantly
   and whose stream endpoint accepts the connection but never replies:
   every call is forced into the fallback, where only the deadline can
   end it. *)
let refusal = Bytes.of_string "TOO-BIG"

let stalling_server net host ~port =
  Sim.Net.listen net host ~port (fun pkt ->
      Sim.Net.send net host ~sport:port ~dst:pkt.Sim.Packet.src
        ~dport:pkt.Sim.Packet.sport refusal);
  Sim.Tcpish.listen net host ~port:(Sim.Transport.tcp_port port)
    ~on_accept:(fun conn -> Sim.Tcpish.on_message conn (fun _ -> ()))
    ()

let classify b =
  if Bytes.equal b refusal then Sim.Transport.Response_too_big
  else Sim.Transport.Accept

(* The caller's deadline expires while the stream fallback is waiting:
   the fallback's timer must be clamped to what the datagram leg left of
   the budget, so on_timeout fires at the deadline — not a full
   tcp_timeout after the fallback began (the pre-clamp regression, which
   overshot to refusal-RTT + 2.0 s). *)
let deadline_expires_mid_fallback () =
  let tel, eng, net, a, b = mk_net () in
  stalling_server net b ~port:750;
  let fired = ref None in
  Sim.Transport.call net a ~timeout:1.0 ~retries:0 ~tcp_timeout:2.0
    ~deadline:0.5 ~classify ~dst:(Sim.Host.primary_ip b) ~dport:750
    (Bytes.of_string "req")
    ~on_reply:(fun _ -> Alcotest.fail "stalled server cannot reply")
    ~on_timeout:(fun () -> fired := Some (Sim.Engine.now eng));
  Sim.Engine.run eng;
  (match !fired with
  | None -> Alcotest.fail "call never timed out"
  | Some at ->
      Alcotest.(check bool)
        (Printf.sprintf "on_timeout at the deadline, not tcp_timeout (%.3fs)" at)
        true
        (at >= 0.5 && at < 0.6));
  Alcotest.(check bool) "the fallback was entered" true
    (counter tel "transport.fallback.response_too_big" > 0)

(* A fallback entered with the deadline already spent must fail
   immediately — counted, without opening a connection. *)
let deadline_spent_before_fallback () =
  let tel, eng, net, a, b = mk_net () in
  stalling_server net b ~port:750;
  let fired = ref false in
  Sim.Transport.call net a ~timeout:1.0 ~retries:0 ~tcp_timeout:2.0
    ~deadline:0.0 ~classify ~dst:(Sim.Host.primary_ip b) ~dport:750
    (Bytes.of_string "req")
    ~on_reply:(fun _ -> Alcotest.fail "stalled server cannot reply")
    ~on_timeout:(fun () -> fired := true);
  Sim.Engine.run eng;
  Alcotest.(check bool) "on_timeout fired" true !fired;
  Alcotest.(check bool) "exhaustion counted" true
    (counter tel "transport.deadline_exhausted" > 0);
  Alcotest.(check int) "no stream call was made" 0
    (counter tel "transport.tcp.calls")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "transport"
    [ ( "framing",
        [ Alcotest.test_case "reassembly across segments under churn" `Quick
            framed_across_segments;
          Alcotest.test_case "torn length prefix" `Quick torn_length_prefix ] );
      ( "truncation",
        [ Alcotest.test_case "delivered short, rejected, counted" `Quick
            truncation_delivered_short_and_rejected ] );
      ( "fallback",
        [ Alcotest.test_case "response-too-big forces the stream" `Quick
            response_too_big_fallback;
          Alcotest.test_case "deadline expires mid-fallback" `Quick
            deadline_expires_mid_fallback;
          Alcotest.test_case "deadline spent before fallback" `Quick
            deadline_spent_before_fallback;
          Alcotest.test_case "byte-identical at one seed" `Quick
            fallback_deterministic ] ) ]
