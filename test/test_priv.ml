(* Unit and property tests for the session layer: KRB_PRIV in all three
   wire formats, KRB_SAFE, sequence numbers vs timestamps, and message
   serialization. *)

open Kerberos

let mk_pair (profile : Profile.t) =
  let rng = Util.Rng.create 0x5AFEL in
  let key = Crypto.Des.random_key rng in
  let a_addr = Sim.Addr.of_quad 10 0 0 1 and b_addr = Sim.Addr.of_quad 10 0 0 2 in
  let seq_a = 100 and seq_b = 500 in
  let client =
    Session.make ~profile ~rng:(Util.Rng.create 1L) ~role:Session.Client_side ~key
      ~own_addr:a_addr ~peer_addr:b_addr ~send_seq:seq_a ~recv_seq:seq_b
  in
  let server =
    Session.make ~profile ~rng:(Util.Rng.create 2L) ~role:Session.Server_side ~key
      ~own_addr:b_addr ~peer_addr:a_addr ~send_seq:seq_b ~recv_seq:seq_a
  in
  (client, server)

let profiles = [ Profile.v4; Profile.v5_draft3; Profile.hardened ]

let priv_roundtrip () =
  List.iter
    (fun profile ->
      let client, server = mk_pair profile in
      List.iter
        (fun msg ->
          let ct = Krb_priv.seal client ~now:1000.0 (Bytes.of_string msg) in
          match Krb_priv.open_ server ~now:1000.5 ct with
          | Ok data ->
              Alcotest.(check string) (profile.Profile.name ^ " roundtrip") msg
                (Bytes.to_string data)
          | Error e ->
              Alcotest.failf "%s: %s" profile.Profile.name (Krb_priv.error_to_string e))
        [ "a"; "hello world"; String.make 200 'x'; "" ])
    profiles

let priv_bidirectional () =
  List.iter
    (fun profile ->
      let client, server = mk_pair profile in
      let c1 = Krb_priv.seal client ~now:1.0 (Bytes.of_string "req") in
      (match Krb_priv.open_ server ~now:1.0 c1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "server open: %s" (Krb_priv.error_to_string e));
      let s1 = Krb_priv.seal server ~now:1.1 (Bytes.of_string "resp") in
      match Krb_priv.open_ client ~now:1.1 s1 with
      | Ok data -> Alcotest.(check string) "resp" "resp" (Bytes.to_string data)
      | Error e -> Alcotest.failf "client open: %s" (Krb_priv.error_to_string e))
    profiles

let priv_direction_enforced () =
  List.iter
    (fun profile ->
      let client, _server = mk_pair profile in
      let ct = Krb_priv.seal client ~now:1.0 (Bytes.of_string "to server") in
      (* The sender itself must not accept its own message (wrong direction):
         "timestamp + direction" exists exactly for this. *)
      match Krb_priv.open_ client ~now:1.0 ct with
      | Ok _ -> Alcotest.failf "%s: reflected message accepted" profile.Profile.name
      | Error _ -> ())
    profiles

let priv_replay_within_session () =
  (* Timestamp profiles: the per-session cache rejects an exact replay. *)
  let client, server = mk_pair Profile.v5_draft3 in
  let ct = Krb_priv.seal client ~now:1.0 (Bytes.of_string "once") in
  (match Krb_priv.open_ server ~now:1.0 ct with Ok _ -> () | Error _ -> Alcotest.fail "first");
  (match Krb_priv.open_ server ~now:1.5 ct with
  | Error Krb_priv.Replay -> ()
  | Ok _ -> Alcotest.fail "replay accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Krb_priv.error_to_string e))

let priv_stale_timestamp () =
  let client, server = mk_pair Profile.v4 in
  let ct = Krb_priv.seal client ~now:1000.0 (Bytes.of_string "old") in
  match Krb_priv.open_ server ~now:(1000.0 +. Krb_priv.skew +. 60.0) ct with
  | Error (Krb_priv.Stale _) -> ()
  | Ok _ -> Alcotest.fail "stale accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Krb_priv.error_to_string e)

let priv_sequence_detects_deletion () =
  (* "This mechanism also provides the ability to detect deleted messages,
     by watching for gaps in sequence number utilization." *)
  let client, server = mk_pair Profile.hardened in
  let m1 = Krb_priv.seal client ~now:1.0 (Bytes.of_string "one") in
  let m2 = Krb_priv.seal client ~now:1.1 (Bytes.of_string "two") in
  let m3 = Krb_priv.seal client ~now:1.2 (Bytes.of_string "three") in
  ignore m2;
  (* m1 delivered; m2 deleted by the adversary; m3 arrives. *)
  (match Krb_priv.open_ server ~now:1.0 m1 with Ok _ -> () | Error _ -> Alcotest.fail "m1");
  match Krb_priv.open_ server ~now:1.2 m3 with
  | Error Krb_priv.Garbled ->
      () (* IV chaining: the gap breaks the chain, detected as garbling *)
  | Error (Krb_priv.Out_of_sequence _) -> ()
  | Ok _ -> Alcotest.fail "deletion not detected"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_priv.error_to_string e)

let priv_sequence_detects_reorder () =
  let profile =
    { Profile.v5_draft3 with
      Profile.name = "v5+seq"; priv_replay = Profile.Priv_sequence }
  in
  let client, server = mk_pair profile in
  let m1 = Krb_priv.seal client ~now:1.0 (Bytes.of_string "one") in
  let m2 = Krb_priv.seal client ~now:1.1 (Bytes.of_string "two") in
  (match Krb_priv.open_ server ~now:1.1 m2 with
  | Error (Krb_priv.Out_of_sequence { expected = 100; got = 101 }) -> ()
  | Ok _ -> Alcotest.fail "reorder accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_priv.error_to_string e));
  match Krb_priv.open_ server ~now:1.1 m1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "m1 after reorder: %s" (Krb_priv.error_to_string e)

let priv_tamper_detected_hardened () =
  let client, server = mk_pair Profile.hardened in
  let ct = Krb_priv.seal client ~now:1.0 (Bytes.of_string "do not touch this data") in
  Bytes.set ct 3 (Char.chr (Char.code (Bytes.get ct 3) lxor 0x40));
  match Krb_priv.open_ server ~now:1.0 ct with
  | Error Krb_priv.Garbled -> ()
  | Ok _ -> Alcotest.fail "tampering accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_priv.error_to_string e)

let priv_prop_roundtrip =
  QCheck.Test.make ~name:"priv roundtrip (all profiles, random payloads)" ~count:150
    QCheck.(pair (int_bound 2) (string_of_size (QCheck.Gen.int_range 0 300)))
    (fun (pidx, payload) ->
      let profile = List.nth profiles pidx in
      let client, server = mk_pair profile in
      let ct = Krb_priv.seal client ~now:10.0 (Bytes.of_string payload) in
      match Krb_priv.open_ server ~now:10.0 ct with
      | Ok data -> Bytes.to_string data = payload
      | Error _ -> false)

let suite_priv =
  [ Alcotest.test_case "roundtrip" `Quick priv_roundtrip;
    Alcotest.test_case "bidirectional" `Quick priv_bidirectional;
    Alcotest.test_case "direction enforced" `Quick priv_direction_enforced;
    Alcotest.test_case "in-session replay rejected" `Quick priv_replay_within_session;
    Alcotest.test_case "stale timestamp rejected" `Quick priv_stale_timestamp;
    Alcotest.test_case "sequence numbers detect deletion" `Quick priv_sequence_detects_deletion;
    Alcotest.test_case "sequence numbers detect reorder" `Quick priv_sequence_detects_reorder;
    Alcotest.test_case "hardened tamper detection" `Quick priv_tamper_detected_hardened;
    QCheck_alcotest.to_alcotest priv_prop_roundtrip ]

(* ------------------------------------------------------------------ *)
(* KRB_SAFE                                                            *)
(* ------------------------------------------------------------------ *)

let safe_roundtrip () =
  List.iter
    (fun profile ->
      let client, server = mk_pair profile in
      let msg = Krb_safe.seal client ~now:5.0 (Bytes.of_string "public but protected") in
      match Krb_safe.open_ server ~now:5.0 msg with
      | Ok data ->
          Alcotest.(check string) (profile.Profile.name) "public but protected"
            (Bytes.to_string data)
      | Error e -> Alcotest.failf "%s: %s" profile.Profile.name (Krb_safe.error_to_string e))
    profiles

let safe_naive_tamper_detected () =
  (* Bit-flipping without fixing the CRC is caught even by CRC-32. *)
  let client, server = mk_pair Profile.v4 in
  let msg = Krb_safe.seal client ~now:5.0 (Bytes.of_string "genuine message body") in
  Bytes.set msg 6 'X';
  match Krb_safe.open_ server ~now:5.0 msg with
  | Error Krb_safe.Bad_checksum -> ()
  | Ok _ -> Alcotest.fail "naive tamper accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_safe.error_to_string e)

let safe_replay_rejected () =
  let client, server = mk_pair Profile.v5_draft3 in
  let msg = Krb_safe.seal client ~now:5.0 (Bytes.of_string "once only") in
  (match Krb_safe.open_ server ~now:5.0 msg with Ok _ -> () | Error _ -> Alcotest.fail "first");
  match Krb_safe.open_ server ~now:5.1 msg with
  | Error Krb_safe.Replay -> ()
  | Ok _ -> Alcotest.fail "replay accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_safe.error_to_string e)

let safe_sequence_mode () =
  (* Sequence-numbered KRB_SAFE rejects reorder and replay without any
     timestamp cache. *)
  let client, server = mk_pair Profile.hardened in
  let m1 = Krb_safe.seal client ~now:1.0 (Bytes.of_string "one") in
  let m2 = Krb_safe.seal client ~now:1.1 (Bytes.of_string "two") in
  (match Krb_safe.open_ server ~now:1.1 m2 with
  | Error Krb_safe.Out_of_sequence -> ()
  | Ok _ -> Alcotest.fail "reorder accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_safe.error_to_string e));
  (match Krb_safe.open_ server ~now:1.1 m1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "m1: %s" (Krb_safe.error_to_string e));
  match Krb_safe.open_ server ~now:1.2 m1 with
  | Error Krb_safe.Out_of_sequence -> () (* replay = stale sequence number *)
  | Ok _ -> Alcotest.fail "replay accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Krb_safe.error_to_string e)

let safe_prop_roundtrip =
  QCheck.Test.make ~name:"safe roundtrip (random payloads)" ~count:150
    QCheck.(pair (int_bound 2) (string_of_size (QCheck.Gen.int_range 0 200)))
    (fun (pidx, payload) ->
      let profile = List.nth profiles pidx in
      let client, server = mk_pair profile in
      let msg = Krb_safe.seal client ~now:3.0 (Bytes.of_string payload) in
      match Krb_safe.open_ server ~now:3.0 msg with
      | Ok data -> Bytes.to_string data = payload
      | Error _ -> false)

let suite_safe =
  [ Alcotest.test_case "roundtrip" `Quick safe_roundtrip;
    Alcotest.test_case "naive tamper detected" `Quick safe_naive_tamper_detected;
    Alcotest.test_case "replay rejected" `Quick safe_replay_rejected;
    Alcotest.test_case "sequence mode" `Quick safe_sequence_mode;
    QCheck_alcotest.to_alcotest safe_prop_roundtrip ]

(* ------------------------------------------------------------------ *)
(* Message serialization properties                                    *)
(* ------------------------------------------------------------------ *)

let gen_principal =
  QCheck.Gen.(
    oneof
      [ map (fun a -> Principal.user ~realm:"R" (Printf.sprintf "u%d" a)) (int_bound 999);
        map
          (fun a -> Principal.service ~realm:"R" (Printf.sprintf "s%d" a) ~host:"h")
          (int_bound 999) ])

let gen_ticket =
  QCheck.Gen.(
    map2
      (fun (srv, cl) (addr, fwd) ->
        { Messages.server = srv; client = cl;
          addr = (if addr then Some (Sim.Addr.of_quad 10 0 0 9) else None);
          issued_at = 1234.5; lifetime = 3600.0; session_key = Bytes.make 8 'k';
          forwarded = fwd; dup_skey = false; transited = [ "A"; "B" ] })
      (pair gen_principal gen_principal)
      (pair bool bool))

let ticket_roundtrip_prop kind =
  QCheck.Test.make
    ~name:("ticket roundtrip " ^ Wire.Encoding.show_kind kind)
    ~count:200 (QCheck.make gen_ticket) (fun t ->
      let b = Wire.Encoding.encode kind (Messages.ticket_to_value t) in
      Messages.ticket_of_value (Wire.Encoding.decode kind b) = t)

let gen_auth =
  QCheck.Gen.(
    map3
      (fun cl (c1, c2) (seq, sub) ->
        { Messages.a_client = cl; a_addr = Sim.Addr.of_quad 1 2 3 4; a_timestamp = 99.0;
          a_req_cksum = (if c1 then Some (Bytes.make 4 'c') else None);
          a_ticket_cksum = (if c2 then Some (Bytes.make 16 'd') else None);
          a_service = None;
          a_seq_init = (if seq then Some 42 else None);
          a_subkey_part = (if sub then Some (Bytes.make 8 's') else None) })
      gen_principal (pair bool bool) (pair bool bool))

let auth_roundtrip_prop kind =
  QCheck.Test.make
    ~name:("authenticator roundtrip " ^ Wire.Encoding.show_kind kind)
    ~count:200 (QCheck.make gen_auth) (fun a ->
      let b = Wire.Encoding.encode kind (Messages.authenticator_to_value a) in
      Messages.authenticator_of_value (Wire.Encoding.decode kind b) = a)

let seal_msg_roundtrip_prop =
  QCheck.Test.make ~name:"seal_msg/open_msg roundtrip" ~count:150
    QCheck.(pair (int_bound 2) (make gen_ticket))
    (fun (pidx, t) ->
      let profile = List.nth profiles pidx in
      let rng = Util.Rng.create 9L in
      let key = Crypto.Des.random_key rng in
      let sealed =
        Messages.seal_msg profile rng ~key ~tag:Messages.tag_ticket
          (Messages.ticket_to_value t)
      in
      match Messages.open_msg profile ~key ~tag:Messages.tag_ticket sealed with
      | Ok v -> Messages.ticket_of_value v = t
      | Error _ -> false)

let wrong_key_rejected_prop =
  QCheck.Test.make ~name:"open_msg under the wrong key fails" ~count:100
    QCheck.(pair (int_bound 2) (make gen_ticket))
    (fun (pidx, t) ->
      let profile = List.nth profiles pidx in
      let rng = Util.Rng.create 10L in
      let key = Crypto.Des.random_key rng in
      let wrong = Crypto.Des.random_key rng in
      let sealed =
        Messages.seal_msg profile rng ~key ~tag:Messages.tag_ticket
          (Messages.ticket_to_value t)
      in
      match Messages.open_msg profile ~key:wrong ~tag:Messages.tag_ticket sealed with
      | Error _ -> true
      | Ok v -> ( match Messages.ticket_of_value v with _ -> false | exception _ -> true))

let suite_messages =
  [ QCheck_alcotest.to_alcotest (ticket_roundtrip_prop Wire.Encoding.V4_adhoc);
    QCheck_alcotest.to_alcotest (ticket_roundtrip_prop Wire.Encoding.Der_typed);
    QCheck_alcotest.to_alcotest (auth_roundtrip_prop Wire.Encoding.V4_adhoc);
    QCheck_alcotest.to_alcotest (auth_roundtrip_prop Wire.Encoding.Der_typed);
    QCheck_alcotest.to_alcotest seal_msg_roundtrip_prop;
    QCheck_alcotest.to_alcotest wrong_key_rejected_prop ]

(* ------------------------------------------------------------------ *)
(* Replay cache                                                        *)
(* ------------------------------------------------------------------ *)

let cache_basics () =
  let c = Replay_cache.create ~horizon:10.0 () in
  let b1 = Bytes.of_string "auth-1" and b2 = Bytes.of_string "auth-2" in
  Alcotest.(check bool) "fresh" true (Replay_cache.check_and_insert c ~now:0.0 b1 = Replay_cache.Fresh);
  Alcotest.(check bool) "replayed" true
    (Replay_cache.check_and_insert c ~now:1.0 b1 = Replay_cache.Replayed);
  Alcotest.(check bool) "other fresh" true
    (Replay_cache.check_and_insert c ~now:1.0 b2 = Replay_cache.Fresh);
  Alcotest.(check int) "two live" 2 (Replay_cache.size c);
  (* After the horizon the entry expires: the timestamp check takes over. *)
  Alcotest.(check bool) "expired -> fresh again" true
    (Replay_cache.check_and_insert c ~now:30.0 b1 = Replay_cache.Fresh);
  Replay_cache.purge c ~now:100.0;
  Alcotest.(check int) "purged" 0 (Replay_cache.size c)

let cache_prop =
  QCheck.Test.make ~name:"cache never accepts a live duplicate" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_bound 10))
    (fun ids ->
      let c = Replay_cache.create ~horizon:1000.0 () in
      let seen = Hashtbl.create 8 in
      List.for_all
        (fun id ->
          let b = Bytes.of_string (string_of_int id) in
          let verdict = Replay_cache.check_and_insert c ~now:1.0 b in
          let expected =
            if Hashtbl.mem seen id then Replay_cache.Replayed else Replay_cache.Fresh
          in
          Hashtbl.replace seen id ();
          verdict = expected)
        ids)

let cache_no_conflation_prop =
  (* The cache must key on the raw authenticator bytes, never on a digest of
     them: two distinct blobs — however similar — must each be Fresh on
     first sight and must not evict or shadow one another. (The old digest
     keying meant a checksum collision silently conflated two distinct
     authenticators.) *)
  QCheck.Test.make ~name:"distinct blobs are never conflated" ~count:300
    QCheck.(pair (bytes_of_size (Gen.int_range 0 64)) (bytes_of_size (Gen.int_range 0 64)))
    (fun (b1, b2) ->
      QCheck.assume (not (Bytes.equal b1 b2));
      let c = Replay_cache.create ~horizon:100.0 () in
      Replay_cache.check_and_insert c ~now:0.0 b1 = Replay_cache.Fresh
      && Replay_cache.check_and_insert c ~now:1.0 b2 = Replay_cache.Fresh
      && Replay_cache.check_and_insert c ~now:2.0 b1 = Replay_cache.Replayed
      && Replay_cache.check_and_insert c ~now:3.0 b2 = Replay_cache.Replayed
      && Replay_cache.size c = 2)

let cache_mutation_safe () =
  (* The caller may reuse its buffer after the call; the cache must have
     captured the contents, not the reference. *)
  let c = Replay_cache.create ~horizon:100.0 () in
  let b = Bytes.of_string "authenticator-A" in
  Alcotest.(check bool) "first" true
    (Replay_cache.check_and_insert c ~now:0.0 b = Replay_cache.Fresh);
  Bytes.set b 14 'B';
  Alcotest.(check bool) "mutated buffer is a different authenticator" true
    (Replay_cache.check_and_insert c ~now:1.0 b = Replay_cache.Fresh);
  Alcotest.(check bool) "original contents still remembered" true
    (Replay_cache.check_and_insert c ~now:2.0 (Bytes.of_string "authenticator-A")
     = Replay_cache.Replayed)

let suite_cache =
  [ Alcotest.test_case "basics" `Quick cache_basics;
    QCheck_alcotest.to_alcotest cache_prop;
    QCheck_alcotest.to_alcotest cache_no_conflation_prop;
    Alcotest.test_case "buffer mutation safety" `Quick cache_mutation_safe ]

let () =
  Alcotest.run "priv-safe"
    [ ("krb_priv", suite_priv); ("krb_safe", suite_safe);
      ("messages", suite_messages); ("replay_cache", suite_cache) ]
