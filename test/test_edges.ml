(* Edge-case battery: argument validation and malformed-input behaviour of
   the lower layers, the stuff production users hit first. *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* --- Modes --- *)

let mode_argument_checks () =
  let k = Crypto.Des.schedule (Util.Bytesutil.of_hex "133457799bbcdff1") in
  Alcotest.(check bool) "ecb rejects ragged input" true
    (raises_invalid (fun () -> Crypto.Mode.ecb_encrypt k (Bytes.make 13 'x')));
  Alcotest.(check bool) "cbc rejects short iv" true
    (raises_invalid (fun () ->
         Crypto.Mode.cbc_encrypt k ~iv:(Bytes.make 4 'i') (Bytes.make 16 'x')));
  Alcotest.(check bool) "pcbc rejects ragged input" true
    (raises_invalid (fun () ->
         Crypto.Mode.pcbc_decrypt k ~iv:Crypto.Mode.zero_iv (Bytes.make 9 'x')));
  Alcotest.(check (option string)) "unpad rejects empty" None
    (Option.map Bytes.to_string (Crypto.Mode.unpad Bytes.empty));
  (* Forged padding byte out of range *)
  let bad = Bytes.make 8 '\x00' in
  Bytes.set bad 7 '\x0b';
  Alcotest.(check bool) "unpad rejects pad > block" true (Crypto.Mode.unpad bad = None)

let des_argument_checks () =
  Alcotest.(check bool) "key must be 8 bytes" true
    (raises_invalid (fun () -> Crypto.Des.schedule (Bytes.make 7 'k')));
  let k = Crypto.Des.schedule (Bytes.make 8 'k') in
  Alcotest.(check bool) "block must be 8 bytes" true
    (raises_invalid (fun () -> Crypto.Des.encrypt_block k (Bytes.make 9 'b')))

(* --- Seal --- *)

let seal_cross_scheme () =
  (* A PCBC-sealed blob opened as CBC+checksum fails cleanly, and vice
     versa. *)
  let rng = Util.Rng.create 3L in
  let key = Crypto.Des.random_key rng in
  let data = Bytes.of_string "cross scheme confusion test payload" in
  let a = Kerberos.Seal.seal Kerberos.Seal.Pcbc_raw rng ~key data in
  (match Kerberos.Seal.open_ (Kerberos.Seal.Cbc_confounder Crypto.Checksum.Md4) ~key a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pcbc blob opened as cbc+md4");
  let b =
    Kerberos.Seal.seal (Kerberos.Seal.Cbc_confounder Crypto.Checksum.Md4) rng ~key data
  in
  match Kerberos.Seal.open_ Kerberos.Seal.Pcbc_raw ~key b with
  | Error _ -> ()
  | Ok plain ->
      (* PCBC has no integrity: opening may "succeed" with garbage — it must
         at least not reproduce the plaintext. *)
      Alcotest.(check bool) "no silent plaintext recovery" false (Bytes.equal plain data)

let seal_truncation () =
  let rng = Util.Rng.create 4L in
  let key = Crypto.Des.random_key rng in
  let blob =
    Kerberos.Seal.seal (Kerberos.Seal.Cbc_confounder Crypto.Checksum.Md4) rng ~key
      (Bytes.of_string "soon to be truncated, which must not go unnoticed")
  in
  let cut = Bytes.sub blob 0 (Bytes.length blob - 8) in
  match Kerberos.Seal.open_ (Kerberos.Seal.Cbc_confounder Crypto.Checksum.Md4) ~key cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated sealed blob accepted"

(* --- Principal --- *)

let principal_roundtrip =
  QCheck.Test.make ~name:"principal string roundtrip" ~count:300
    QCheck.(pair (pair small_nat small_nat) bool)
    (fun ((a, b), svc) ->
      let p =
        if svc then
          Kerberos.Principal.service ~realm:"SOME.REALM" (Printf.sprintf "s%d" a)
            ~host:(Printf.sprintf "host%d" b)
        else Kerberos.Principal.user ~realm:"SOME.REALM" (Printf.sprintf "u%d" a)
      in
      Kerberos.Principal.equal p
        (Kerberos.Principal.of_string (Kerberos.Principal.to_string p)))

let principal_rejects () =
  Alcotest.(check bool) "empty name" true
    (raises_invalid (fun () -> Kerberos.Principal.user ~realm:"R" ""));
  Alcotest.(check bool) "dotted name" true
    (raises_invalid (fun () -> Kerberos.Principal.user ~realm:"R" "a.b"));
  Alcotest.(check bool) "at-sign in name" true
    (raises_invalid (fun () -> Kerberos.Principal.user ~realm:"R" "a@b"));
  Alcotest.(check bool) "of_string needs a realm" true
    (raises_invalid (fun () -> Kerberos.Principal.of_string "no-realm-here"))

(* --- Addr --- *)

let addr_checks () =
  Alcotest.(check string) "render" "10.0.0.1"
    (Sim.Addr.to_string (Sim.Addr.of_quad 10 0 0 1));
  Alcotest.(check bool) "byte range enforced" true
    (raises_invalid (fun () -> Sim.Addr.of_quad 256 0 0 1));
  Alcotest.(check bool) "negative rejected" true
    (raises_invalid (fun () -> Sim.Addr.of_quad 10 (-1) 0 1))

(* --- Tcpish segment codec --- *)

let segment_roundtrip =
  QCheck.Test.make ~name:"tcpish segment roundtrip" ~count:300
    QCheck.(
      pair
        (triple bool bool bool)
        (triple (int_bound 0x7FFFFFFF) (int_bound 0x7FFFFFFF)
           (string_of_size (QCheck.Gen.int_range 0 80))))
    (fun ((syn, ack, fin), (seq, ackno, body)) ->
      let seg =
        { Sim.Tcpish.syn; ack; fin; rst = syn && ack; seq; ackno;
          body = Bytes.of_string body }
      in
      match Sim.Tcpish.decode_segment (Sim.Tcpish.encode_segment seg) with
      | Some back -> back = seg
      | None -> false)

let segment_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Sim.Tcpish.decode_segment Bytes.empty = None);
  Alcotest.(check bool) "truncated" true
    (Sim.Tcpish.decode_segment (Bytes.of_string "\x01\x00\x00") = None)

(* --- Engine --- *)

let engine_rejects_past () =
  let eng = Sim.Engine.create () in
  Sim.Engine.schedule eng ~at:5.0 ignore;
  Sim.Engine.run eng;
  Alcotest.(check bool) "past scheduling rejected" true
    (raises_invalid (fun () -> Sim.Engine.schedule eng ~at:1.0 ignore))

(* --- Bignum --- *)

let bignum_edges () =
  let open Crypto.Bignum in
  Alcotest.(check bool) "of_int rejects negatives" true
    (raises_invalid (fun () -> of_int (-1)));
  Alcotest.(check bool) "sub refuses negatives" true
    (raises_invalid (fun () -> sub one two));
  (match divmod one zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero");
  Alcotest.(check bool) "to_bytes size check" true
    (raises_invalid (fun () -> to_bytes_be ~size:1 (of_int 70000)));
  Alcotest.(check string) "zero prints" "0" (to_hex zero);
  Alcotest.(check (option int)) "to_int of zero" (Some 0) (to_int_opt zero)

let () =
  Alcotest.run "edges"
    [ ( "crypto",
        [ Alcotest.test_case "mode arguments" `Quick mode_argument_checks;
          Alcotest.test_case "des arguments" `Quick des_argument_checks;
          Alcotest.test_case "seal cross-scheme" `Quick seal_cross_scheme;
          Alcotest.test_case "seal truncation" `Quick seal_truncation;
          Alcotest.test_case "bignum edges" `Quick bignum_edges ] );
      ( "identifiers",
        [ QCheck_alcotest.to_alcotest principal_roundtrip;
          Alcotest.test_case "principal rejects" `Quick principal_rejects;
          Alcotest.test_case "addr" `Quick addr_checks ] );
      ( "transport",
        [ QCheck_alcotest.to_alcotest segment_roundtrip;
          Alcotest.test_case "segment garbage" `Quick segment_rejects_garbage;
          Alcotest.test_case "engine past events" `Quick engine_rejects_past ] ) ]
