(* Master/slave KDC replication: the kprop push, serving logins from the
   slave, refreshing after a password change, and refusing rogue pushes. *)

open Kerberos

let realm = "ATHENA"

let replication_flow () =
  let profile = Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 0 0 3 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 0 10 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host; ws ];
  let rng = Util.Rng.create 0x4b50L in
  (* Master database: realm key, a user, the master's own principal, and
     the slave's kpropd service. *)
  let master_db = Kdb.create () in
  Kdb.add_service master_db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user master_db (Principal.user ~realm "pat") ~password:"first.pw";
  let master_principal = Principal.user ~realm "kadmin" in
  Kdb.add_user master_db master_principal ~password:"master.host.pw";
  let kpropd_principal = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpropd_principal ~key:kpropd_key;
  let master_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 master_db in
  Kdc.install net master_host master_kdc ();
  (* Slave: an empty database and a kpropd accepting only the master. *)
  let slave_db = Kdb.create () in
  let slave_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 slave_db in
  Kdc.install net slave_host slave_kdc ();
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_principal
      ~key:kpropd_key ~port:754 ~master:master_principal ~slave_db
  in
  let kdcs_master = [ (realm, Sim.Host.primary_ip master_host) ] in
  let kdcs_slave = [ (realm, Sim.Host.primary_ip slave_host) ] in
  (* Before propagation the slave knows nobody. *)
  let early = ref None in
  let c_early =
    Client.create ~seed:1L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c_early ~password:"first.pw" (fun r -> early := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "slave empty before push" (Some false) !early;
  (* The master pushes. *)
  let admin =
    Client.create ~seed:2L net master_host ~profile ~kdcs:kdcs_master master_principal
  in
  let pushed = ref None in
  Client.login admin ~password:"master.host.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
                  pushed := Some r))));
  Sim.Engine.run eng;
  (match !pushed with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "push failed: %s" e
  | None -> Alcotest.fail "push stalled");
  Alcotest.(check int) "one propagation" 1 (Services.Kprop.propagations_received kpropd);
  Alcotest.(check int) "databases equal" (Kdb.size master_db) (Kdb.size slave_db);
  (* Now pat can log in against the slave. *)
  let late = ref None in
  let c_late =
    Client.create ~seed:3L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c_late ~password:"first.pw" (fun r -> late := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "slave serves after push" (Some true) !late;
  (* Password changes at the master reach the slave on the next push. *)
  Kdb.add_user master_db (Principal.user ~realm "pat") ~password:"second.pw";
  let repushed = ref None in
  Client.get_ticket admin ~service:kpropd_principal (fun r ->
      let creds = Result.get_ok r in
      Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host) ~dport:754
        (fun r ->
          let chan = Result.get_ok r in
          Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
              repushed := Some r)));
  Sim.Engine.run eng;
  (match !repushed with Some (Ok ()) -> () | _ -> Alcotest.fail "second push failed");
  let old_pw = ref None and new_pw = ref None in
  let c2 =
    Client.create ~seed:4L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c2 ~password:"first.pw" (fun r ->
      old_pw := Some (Result.is_ok r);
      Client.login c2 ~password:"second.pw" (fun r -> new_pw := Some (Result.is_ok r)));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "old password gone from slave" (Some false) !old_pw;
  Alcotest.(check (option bool)) "new password live on slave" (Some true) !new_pw;
  (* A rogue push from an ordinary user is refused. *)
  Kdb.add_user master_db (Principal.user ~realm "robin") ~password:"robin.pw";
  (* robin needs to be known to the slave too (it is, after the pushes? no —
     robin was added after; push again first). For the rogue test, use the
     already-replicated pat account. *)
  let rogue = ref None in
  let evil_db = Kdb.create () in
  Kdb.add_user evil_db (Principal.user ~realm "pat") ~password:"attacker-chosen";
  let c_pat =
    Client.create ~seed:5L net ws ~profile ~kdcs:kdcs_master (Principal.user ~realm "pat")
  in
  Client.login c_pat ~password:"second.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket c_pat ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange c_pat creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate c_pat chan ~db:evil_db ~k:(fun r ->
                  rogue := Some r))));
  Sim.Engine.run eng;
  (match !rogue with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "rogue push accepted"
  | None -> Alcotest.fail "rogue push stalled");
  Alcotest.(check int) "refusal counted" 1 (Services.Kprop.pushes_refused kpropd)

(* ------------------------------------------------------------------ *)
(* Sharded propagation: one shard at a time, atomically.               *)
(* ------------------------------------------------------------------ *)

let shard_propagation_flow () =
  let profile = Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 0 0 3 ] () in
  let odd_host = Sim.Host.create ~name:"kerberos-3" ~ips:[ quad 10 0 0 4 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host; odd_host ];
  let rng = Util.Rng.create 0x5D4BL in
  let master_db = Kdb.create ~shards:2 () in
  Kdb.add_service master_db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  for i = 0 to 11 do
    Kdb.add_user master_db (Principal.user ~realm (Printf.sprintf "u%d" i))
      ~password:(Printf.sprintf "pw%d" i)
  done;
  let master_principal = Principal.user ~realm "kadmin" in
  Kdb.add_user master_db master_principal ~password:"master.host.pw";
  let kpropd_principal = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpropd_principal ~key:kpropd_key;
  let odd_principal = Principal.service ~realm "kprop" ~host:"kerberos-3" in
  let odd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db odd_principal ~key:odd_key;
  let master_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 master_db in
  Kdc.install net master_host master_kdc ();
  (* A slave partitioned like the master, and one partitioned differently. *)
  let slave_db = Kdb.create ~shards:2 () in
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_principal
      ~key:kpropd_key ~port:754 ~master:master_principal ~slave_db
  in
  let odd_db = Kdb.create ~shards:3 () in
  let odd_kpropd =
    Services.Kprop.install_slave net odd_host ~profile ~principal:odd_principal
      ~key:odd_key ~port:754 ~master:master_principal ~slave_db:odd_db
  in
  let admin =
    Client.create ~seed:7L net master_host ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip master_host) ]
      master_principal
  in
  let pushed = ref None in
  Client.login admin ~password:"master.host.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate_shards admin chan ~db:master_db ~k:(fun r ->
                  pushed := Some r))));
  Sim.Engine.run eng;
  (match !pushed with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "shard push failed: %s" e
  | None -> Alcotest.fail "shard push stalled");
  Alcotest.(check int) "one push per shard" 2
    (Services.Kprop.shard_propagations_received kpropd);
  Alcotest.(check int) "no full-database push" 0
    (Services.Kprop.propagations_received kpropd);
  Alcotest.(check int) "databases equal" (Kdb.size master_db) (Kdb.size slave_db);
  List.iter
    (fun p ->
      match (Kdb.lookup master_db p, Kdb.lookup slave_db p) with
      | Some a, Some b when a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
        -> ()
      | _ -> Alcotest.failf "entry mismatch for %s" (Principal.to_string p))
    (Kdb.principals master_db);
  (* The differently-partitioned slave refuses rather than scattering
     entries into the wrong shards. *)
  let refused = ref None in
  Client.get_ticket admin ~service:odd_principal (fun r ->
      let creds = Result.get_ok r in
      Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip odd_host) ~dport:754
        (fun r ->
          let chan = Result.get_ok r in
          Services.Kprop.propagate_shards admin chan ~db:master_db ~k:(fun r ->
              refused := Some r)));
  Sim.Engine.run eng;
  (match !refused with
  | Some (Error e) ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the mismatch (%s)" e)
        true
        (Astring.String.is_infix ~affix:"mismatch" e)
  | Some (Ok ()) -> Alcotest.fail "mismatched shard count accepted"
  | None -> Alcotest.fail "mismatched push stalled");
  Alcotest.(check int) "nothing installed on the odd slave" 0 (Kdb.size odd_db);
  Alcotest.(check int) "no shard pushes counted" 0
    (Services.Kprop.shard_propagations_received odd_kpropd)

(* replace_shard_from_bytes is all-or-nothing: a truncated or misrouted
   blob leaves the previous shard contents fully in place — the regression
   for the old reset-then-refill replace_from, which destroyed the slave's
   data before the refill could fail. *)
let shard_atomicity () =
  let db = Kdb.create ~shards:2 () in
  for i = 0 to 19 do
    Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
      ~password:(Printf.sprintf "pw%d" i)
  done;
  let in_shard_1 = List.filter (fun p -> Kdb.shard_of db p = 1) (Kdb.principals db) in
  Alcotest.(check bool) "shard 1 populated" true (in_shard_1 <> []);
  let intact label =
    List.iter
      (fun p ->
        match Kdb.lookup db p with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: lost %s" label (Principal.to_string p))
      in_shard_1
  in
  let good = Kdb.shard_to_bytes db 1 in
  (* Truncated mid-entry: must raise and change nothing. *)
  (match Kdb.replace_shard_from_bytes db 1 (Bytes.sub good 0 (Bytes.length good - 3)) with
  | exception Wire.Codec.Decode_error _ -> ()
  | () -> Alcotest.fail "truncated shard blob accepted");
  intact "after truncated push";
  (* A well-formed blob whose entries belong in another shard: same deal. *)
  (match Kdb.replace_shard_from_bytes db 1 (Kdb.shard_to_bytes db 0) with
  | exception Wire.Codec.Decode_error _ -> ()
  | () -> Alcotest.fail "misrouted shard blob accepted");
  intact "after misrouted push";
  (* And the good blob still installs cleanly. *)
  let size_before = Kdb.size db in
  Kdb.replace_shard_from_bytes db 1 good;
  intact "after clean push";
  Alcotest.(check int) "size unchanged by idempotent push" size_before (Kdb.size db)

let kdb_roundtrip =
  QCheck.Test.make ~name:"kdb serialization roundtrip" ~count:100
    QCheck.(int_range 0 20)
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int (n + 1)) in
      let db = Kdb.create () in
      for i = 0 to n - 1 do
        if i mod 2 = 0 then
          Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
            ~password:(Printf.sprintf "pw%d" i)
        else
          Kdb.add_service db
            (Principal.service ~realm (Printf.sprintf "s%d" i) ~host:"h")
            ~key:(Crypto.Des.random_key rng)
      done;
      let back = Kdb.of_bytes (Kdb.to_bytes db) in
      Kdb.size back = Kdb.size db
      && List.for_all
           (fun p ->
             match (Kdb.lookup db p, Kdb.lookup back p) with
             | Some a, Some b -> a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
             | _ -> false)
           (Kdb.principals db))

let kdb_reshard =
  QCheck.Test.make ~name:"replace_from re-partitions across shard counts" ~count:60
    QCheck.(triple (int_range 0 30) (int_range 1 8) (int_range 1 8))
    (fun (n, s1, s2) ->
      let rng = Util.Rng.create (Int64.of_int ((n * 64) + (s1 * 8) + s2 + 1)) in
      let src = Kdb.create ~shards:s1 () in
      for i = 0 to n - 1 do
        if i mod 2 = 0 then
          Kdb.add_user src (Principal.user ~realm (Printf.sprintf "u%d" i))
            ~password:(Printf.sprintf "pw%d" i)
        else
          Kdb.add_service src
            (Principal.service ~realm (Printf.sprintf "s%d" i) ~host:"h")
            ~key:(Crypto.Des.random_key rng)
      done;
      let dst = Kdb.create ~shards:s2 () in
      let stale = Principal.user ~realm "stale" in
      Kdb.add_user dst stale ~password:"gone.after.swap";
      Kdb.replace_from dst src;
      Kdb.shard_count dst = s2
      && Kdb.size dst = Kdb.size src
      && Option.is_none (Kdb.lookup dst stale)
      && List.for_all
           (fun p ->
             match (Kdb.lookup src p, Kdb.lookup dst p) with
             | Some a, Some b ->
                 a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
             | _ -> false)
           (Kdb.principals src))

(* ------------------------------------------------------------------ *)
(* Replay-cache stress: a busy server's worth of authenticators.       *)
(* ------------------------------------------------------------------ *)

let cache_stress () =
  (* 50k inserts with simulated time advancing 10 ms per request and a 50 s
     horizon, so ~5000 entries are live at any instant and entries expire
     continuously under the insert load. Verdicts are checked against the
     specification (live duplicate -> Replayed, expired or new -> Fresh),
     and the wall clock bounds the implementation to sub-quadratic: the old
     purge-on-insert scan (O(live) per insert, ~250M entry visits for this
     workload) blows far past the budget, while the heap implementation
     finishes in well under a second. *)
  let n = 50_000 in
  let horizon = 50.0 in
  let c = Replay_cache.create ~horizon in
  let blob i = Bytes.of_string (Printf.sprintf "authenticator-%08d" i) in
  let started = Sys.time () in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 0.01 in
    (match Replay_cache.check_and_insert c ~now (blob i) with
    | Replay_cache.Fresh -> ()
    | Replay_cache.Replayed -> Alcotest.failf "new blob %d reported Replayed" i);
    (* Every third request replays a recent authenticator (well inside the
       horizon): must be caught. *)
    if i mod 3 = 0 && i > 10 then begin
      match Replay_cache.check_and_insert c ~now (blob (i - 10)) with
      | Replay_cache.Replayed -> ()
      | Replay_cache.Fresh -> Alcotest.failf "live duplicate %d accepted" (i - 10)
    end;
    (* Every 97th request replays one from beyond the horizon (60 s ago):
       the entry has expired, so the timestamp check is the only defence
       and the cache must report Fresh. *)
    if i mod 97 = 0 && i > 6000 then begin
      match Replay_cache.check_and_insert c ~now (blob (i - 6000)) with
      | Replay_cache.Fresh -> ()
      | Replay_cache.Replayed -> Alcotest.failf "expired blob %d still cached" (i - 6000)
    end
  done;
  let elapsed = Sys.time () -. started in
  (* Live window is horizon / 0.01 = 5000 fresh entries, plus the re-inserted
     expired ones still inside their new horizon. *)
  let live = Replay_cache.size c in
  Alcotest.(check bool)
    (Printf.sprintf "live entries bounded by window (got %d)" live)
    true
    (live >= 5000 && live <= 5200);
  Alcotest.(check bool)
    (Printf.sprintf "sub-quadratic runtime (%.2fs cpu)" elapsed)
    true (elapsed < 5.0)

let () =
  Alcotest.run "replication"
    [ ("kprop",
       [ Alcotest.test_case "master/slave flow" `Quick replication_flow;
         Alcotest.test_case "shard-by-shard propagation" `Quick shard_propagation_flow ]);
      ("kdb",
       [ Alcotest.test_case "atomic shard swap" `Quick shard_atomicity;
         QCheck_alcotest.to_alcotest kdb_roundtrip;
         QCheck_alcotest.to_alcotest kdb_reshard ]);
      ("replay_cache_stress",
       [ Alcotest.test_case "50k inserts with expiry" `Quick cache_stress ]) ]
