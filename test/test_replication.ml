(* Master/slave KDC replication: the kprop push, serving logins from the
   slave, refreshing after a password change, and refusing rogue pushes. *)

open Kerberos

let realm = "ATHENA"

let replication_flow () =
  let profile = Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 0 0 3 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 0 10 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host; ws ];
  let rng = Util.Rng.create 0x4b50L in
  (* Master database: realm key, a user, the master's own principal, and
     the slave's kpropd service. *)
  let master_db = Kdb.create () in
  Kdb.add_service master_db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user master_db (Principal.user ~realm "pat") ~password:"first.pw";
  let master_principal = Principal.user ~realm "kadmin" in
  Kdb.add_user master_db master_principal ~password:"master.host.pw";
  let kpropd_principal = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpropd_principal ~key:kpropd_key;
  let master_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 master_db in
  Kdc.install net master_host master_kdc ();
  (* Slave: an empty database and a kpropd accepting only the master. *)
  let slave_db = Kdb.create () in
  let slave_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 slave_db in
  Kdc.install net slave_host slave_kdc ();
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_principal
      ~key:kpropd_key ~port:754 ~master:master_principal ~slave_db
  in
  let kdcs_master = [ (realm, Sim.Host.primary_ip master_host) ] in
  let kdcs_slave = [ (realm, Sim.Host.primary_ip slave_host) ] in
  (* Before propagation the slave knows nobody. *)
  let early = ref None in
  let c_early =
    Client.create ~seed:1L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c_early ~password:"first.pw" (fun r -> early := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "slave empty before push" (Some false) !early;
  (* The master pushes. *)
  let admin =
    Client.create ~seed:2L net master_host ~profile ~kdcs:kdcs_master master_principal
  in
  let pushed = ref None in
  Client.login admin ~password:"master.host.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
                  pushed := Some r))));
  Sim.Engine.run eng;
  (match !pushed with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "push failed: %s" e
  | None -> Alcotest.fail "push stalled");
  Alcotest.(check int) "one propagation" 1 (Services.Kprop.propagations_received kpropd);
  Alcotest.(check int) "databases equal" (Kdb.size master_db) (Kdb.size slave_db);
  (* Now pat can log in against the slave. *)
  let late = ref None in
  let c_late =
    Client.create ~seed:3L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c_late ~password:"first.pw" (fun r -> late := Some (Result.is_ok r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "slave serves after push" (Some true) !late;
  (* Password changes at the master reach the slave on the next push. *)
  Kdb.add_user master_db (Principal.user ~realm "pat") ~password:"second.pw";
  let repushed = ref None in
  Client.get_ticket admin ~service:kpropd_principal (fun r ->
      let creds = Result.get_ok r in
      Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host) ~dport:754
        (fun r ->
          let chan = Result.get_ok r in
          Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
              repushed := Some r)));
  Sim.Engine.run eng;
  (match !repushed with Some (Ok ()) -> () | _ -> Alcotest.fail "second push failed");
  let old_pw = ref None and new_pw = ref None in
  let c2 =
    Client.create ~seed:4L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat")
  in
  Client.login c2 ~password:"first.pw" (fun r ->
      old_pw := Some (Result.is_ok r);
      Client.login c2 ~password:"second.pw" (fun r -> new_pw := Some (Result.is_ok r)));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "old password gone from slave" (Some false) !old_pw;
  Alcotest.(check (option bool)) "new password live on slave" (Some true) !new_pw;
  (* A rogue push from an ordinary user is refused. *)
  Kdb.add_user master_db (Principal.user ~realm "robin") ~password:"robin.pw";
  (* robin needs to be known to the slave too (it is, after the pushes? no —
     robin was added after; push again first). For the rogue test, use the
     already-replicated pat account. *)
  let rogue = ref None in
  let evil_db = Kdb.create () in
  Kdb.add_user evil_db (Principal.user ~realm "pat") ~password:"attacker-chosen";
  let c_pat =
    Client.create ~seed:5L net ws ~profile ~kdcs:kdcs_master (Principal.user ~realm "pat")
  in
  Client.login c_pat ~password:"second.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket c_pat ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange c_pat creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate c_pat chan ~db:evil_db ~k:(fun r ->
                  rogue := Some r))));
  Sim.Engine.run eng;
  (match !rogue with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "rogue push accepted"
  | None -> Alcotest.fail "rogue push stalled");
  Alcotest.(check int) "refusal counted" 1 (Services.Kprop.pushes_refused kpropd)

(* ------------------------------------------------------------------ *)
(* Sharded propagation: one shard at a time, atomically.               *)
(* ------------------------------------------------------------------ *)

let shard_propagation_flow () =
  let profile = Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 0 0 3 ] () in
  let odd_host = Sim.Host.create ~name:"kerberos-3" ~ips:[ quad 10 0 0 4 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host; odd_host ];
  let rng = Util.Rng.create 0x5D4BL in
  let master_db = Kdb.create ~shards:2 () in
  Kdb.add_service master_db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  for i = 0 to 11 do
    Kdb.add_user master_db (Principal.user ~realm (Printf.sprintf "u%d" i))
      ~password:(Printf.sprintf "pw%d" i)
  done;
  let master_principal = Principal.user ~realm "kadmin" in
  Kdb.add_user master_db master_principal ~password:"master.host.pw";
  let kpropd_principal = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpropd_principal ~key:kpropd_key;
  let odd_principal = Principal.service ~realm "kprop" ~host:"kerberos-3" in
  let odd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db odd_principal ~key:odd_key;
  let master_kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 master_db in
  Kdc.install net master_host master_kdc ();
  (* A slave partitioned like the master, and one partitioned differently. *)
  let slave_db = Kdb.create ~shards:2 () in
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_principal
      ~key:kpropd_key ~port:754 ~master:master_principal ~slave_db
  in
  let odd_db = Kdb.create ~shards:3 () in
  let odd_kpropd =
    Services.Kprop.install_slave net odd_host ~profile ~principal:odd_principal
      ~key:odd_key ~port:754 ~master:master_principal ~slave_db:odd_db
  in
  let admin =
    Client.create ~seed:7L net master_host ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip master_host) ]
      master_principal
  in
  let pushed = ref None in
  Client.login admin ~password:"master.host.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate_shards admin chan ~db:master_db ~k:(fun r ->
                  pushed := Some r))));
  Sim.Engine.run eng;
  (match !pushed with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "shard push failed: %s" e
  | None -> Alcotest.fail "shard push stalled");
  Alcotest.(check int) "one push per shard" 2
    (Services.Kprop.shard_propagations_received kpropd);
  Alcotest.(check int) "no full-database push" 0
    (Services.Kprop.propagations_received kpropd);
  Alcotest.(check int) "databases equal" (Kdb.size master_db) (Kdb.size slave_db);
  List.iter
    (fun p ->
      match (Kdb.lookup master_db p, Kdb.lookup slave_db p) with
      | Some a, Some b when a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
        -> ()
      | _ -> Alcotest.failf "entry mismatch for %s" (Principal.to_string p))
    (Kdb.principals master_db);
  (* The differently-partitioned slave refuses rather than scattering
     entries into the wrong shards. *)
  let refused = ref None in
  Client.get_ticket admin ~service:odd_principal (fun r ->
      let creds = Result.get_ok r in
      Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip odd_host) ~dport:754
        (fun r ->
          let chan = Result.get_ok r in
          Services.Kprop.propagate_shards admin chan ~db:master_db ~k:(fun r ->
              refused := Some r)));
  Sim.Engine.run eng;
  (match !refused with
  | Some (Error e) ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the mismatch (%s)" e)
        true
        (Astring.String.is_infix ~affix:"mismatch" e)
  | Some (Ok ()) -> Alcotest.fail "mismatched shard count accepted"
  | None -> Alcotest.fail "mismatched push stalled");
  Alcotest.(check int) "nothing installed on the odd slave" 0 (Kdb.size odd_db);
  Alcotest.(check int) "no shard pushes counted" 0
    (Services.Kprop.shard_propagations_received odd_kpropd)

(* replace_shard_from_bytes is all-or-nothing: a truncated or misrouted
   blob leaves the previous shard contents fully in place — the regression
   for the old reset-then-refill replace_from, which destroyed the slave's
   data before the refill could fail. *)
let shard_atomicity () =
  let db = Kdb.create ~shards:2 () in
  for i = 0 to 19 do
    Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
      ~password:(Printf.sprintf "pw%d" i)
  done;
  let in_shard_1 = List.filter (fun p -> Kdb.shard_of db p = 1) (Kdb.principals db) in
  Alcotest.(check bool) "shard 1 populated" true (in_shard_1 <> []);
  let intact label =
    List.iter
      (fun p ->
        match Kdb.lookup db p with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: lost %s" label (Principal.to_string p))
      in_shard_1
  in
  let good = Kdb.shard_to_bytes db 1 in
  (* Truncated mid-entry: must raise and change nothing. *)
  (match Kdb.replace_shard_from_bytes db 1 (Bytes.sub good 0 (Bytes.length good - 3)) with
  | exception Wire.Codec.Decode_error _ -> ()
  | () -> Alcotest.fail "truncated shard blob accepted");
  intact "after truncated push";
  (* A well-formed blob whose entries belong in another shard: same deal. *)
  (match Kdb.replace_shard_from_bytes db 1 (Kdb.shard_to_bytes db 0) with
  | exception Wire.Codec.Decode_error _ -> ()
  | () -> Alcotest.fail "misrouted shard blob accepted");
  intact "after misrouted push";
  (* And the good blob still installs cleanly. *)
  let size_before = Kdb.size db in
  Kdb.replace_shard_from_bytes db 1 good;
  intact "after clean push";
  Alcotest.(check int) "size unchanged by idempotent push" size_before (Kdb.size db)

let kdb_roundtrip =
  QCheck.Test.make ~name:"kdb serialization roundtrip" ~count:100
    QCheck.(int_range 0 20)
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int (n + 1)) in
      let db = Kdb.create () in
      for i = 0 to n - 1 do
        if i mod 2 = 0 then
          Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
            ~password:(Printf.sprintf "pw%d" i)
        else
          Kdb.add_service db
            (Principal.service ~realm (Printf.sprintf "s%d" i) ~host:"h")
            ~key:(Crypto.Des.random_key rng)
      done;
      let back = Kdb.of_bytes (Kdb.to_bytes db) in
      Kdb.size back = Kdb.size db
      && List.for_all
           (fun p ->
             match (Kdb.lookup db p, Kdb.lookup back p) with
             | Some a, Some b -> a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
             | _ -> false)
           (Kdb.principals db))

let kdb_reshard =
  QCheck.Test.make ~name:"replace_from re-partitions across shard counts" ~count:60
    QCheck.(triple (int_range 0 30) (int_range 1 8) (int_range 1 8))
    (fun (n, s1, s2) ->
      let rng = Util.Rng.create (Int64.of_int ((n * 64) + (s1 * 8) + s2 + 1)) in
      let src = Kdb.create ~shards:s1 () in
      for i = 0 to n - 1 do
        if i mod 2 = 0 then
          Kdb.add_user src (Principal.user ~realm (Printf.sprintf "u%d" i))
            ~password:(Printf.sprintf "pw%d" i)
        else
          Kdb.add_service src
            (Principal.service ~realm (Printf.sprintf "s%d" i) ~host:"h")
            ~key:(Crypto.Des.random_key rng)
      done;
      let dst = Kdb.create ~shards:s2 () in
      let stale = Principal.user ~realm "stale" in
      Kdb.add_user dst stale ~password:"gone.after.swap";
      Kdb.replace_from dst src;
      Kdb.shard_count dst = s2
      && Kdb.size dst = Kdb.size src
      && Option.is_none (Kdb.lookup dst stale)
      && List.for_all
           (fun p ->
             match (Kdb.lookup src p, Kdb.lookup dst p) with
             | Some a, Some b ->
                 a.Kdb.kind = b.Kdb.kind && Bytes.equal a.Kdb.key b.Kdb.key
             | _ -> false)
           (Kdb.principals src))

(* ------------------------------------------------------------------ *)
(* WAL-shipped read replicas: apply-before-ack, torn shipments,        *)
(* bounded-lag routing, crash/rejoin convergence, determinism.         *)
(* ------------------------------------------------------------------ *)

let user i = Principal.user ~realm (Printf.sprintf "u%d" i)

let primary_with ?(shards = 4) ?(checkpoint_every = 0) n =
  let db = Kdb.create ~shards () in
  for i = 0 to n - 1 do
    Kdb.add_user db (user i) ~password:(Printf.sprintf "pw%d" i)
  done;
  Kdb.enable_durability ~checkpoint_every db;
  db

let converged db r =
  Kdb.version_vector (Kdb.replica_db r) = Kdb.version_vector db
  && Kdb.digests (Kdb.replica_db r) = Kdb.digests db

(* The ack (applied LSN) only moves when the record's effect is visible
   in the replica's database: writes made after the last shipping round
   are neither visible nor acked, and one round makes them both at
   once. *)
let apply_before_ack () =
  let db = primary_with 8 in
  let r = Kdb.attach_replica db ~name:"r0" in
  Alcotest.(check int) "bootstrap acks the full log" (Kdb.head_lsn db)
    (Kdb.replica_applied_lsn r);
  Kdb.add_user db (user 100) ~password:"pw100";
  Kdb.add_user db (user 101) ~password:"pw101";
  Alcotest.(check int) "unshipped writes leave the replica lagging" 2
    (Kdb.replica_lag db r);
  Alcotest.(check (option reject)) "unacked record is not visible"
    None
    (Kdb.lookup (Kdb.replica_db r) (user 100));
  let applied = Kdb.ship_to_replica r in
  Alcotest.(check int) "one round applies both records" 2 applied;
  Alcotest.(check int) "ack caught up to head" (Kdb.head_lsn db)
    (Kdb.replica_applied_lsn r);
  Alcotest.(check bool) "acked record is visible" true
    (Kdb.lookup (Kdb.replica_db r) (user 100) <> None
    && Kdb.lookup (Kdb.replica_db r) (user 101) <> None);
  Alcotest.(check bool) "replica converged" true (converged db r)

(* A shipment torn mid-frame replays to the clean prefix — LSNs strictly
   increasing, trailing garbage discarded, never an exception. *)
let torn_shipment () =
  let db = primary_with 6 in
  let wal = Option.get (Kdb.wal db) in
  let base = Kdb.Wal.head_lsn wal in
  for i = 200 to 204 do
    Kdb.add_user db (user i) ~password:(Printf.sprintf "pw%d" i)
  done;
  let blob = Kdb.Wal.ship_since wal ~lsn:base in
  let whole, none = Kdb.Wal.replay_shipment blob in
  Alcotest.(check int) "intact shipment: all five records" 5 (List.length whole);
  Alcotest.(check int) "intact shipment: nothing discarded" 0 none;
  let lsns = List.map fst whole in
  Alcotest.(check bool) "LSNs strictly increasing" true
    (List.sort_uniq compare lsns = lsns && List.sort compare lsns = lsns);
  (* Tear inside the last frame. *)
  let torn = Bytes.sub blob 0 (Bytes.length blob - 7) in
  let prefix, discarded = Kdb.Wal.replay_shipment torn in
  Alcotest.(check int) "torn tail: clean prefix of four" 4 (List.length prefix);
  Alcotest.(check bool) "torn tail: remainder discarded" true (discarded > 0);
  (* Bit-flip mid-frame: CRC stops replay at the flip, cleanly. *)
  let flipped = Bytes.copy blob in
  let off = Bytes.length blob / 2 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0x40));
  let p2, d2 = Kdb.Wal.replay_shipment flipped in
  Alcotest.(check bool) "bit flip: strict prefix survives" true
    (List.length p2 < 5 && d2 > 0);
  List.iter2
    (fun (la, _) (lb, _) -> Alcotest.(check int) "prefix LSNs match" la lb)
    (List.filteri (fun i _ -> i < List.length p2) whole)
    p2

(* Bounded-lag routing: an ordinary read uses a replica only within
   max_lag; a fresh read (the AS client-key path) only within
   fresh_floor — otherwise the primary serves and the fallback is
   counted. *)
let bounded_lag_routing () =
  let db = primary_with ~shards:1 4 in
  let router =
    Replication.create ~service_time:0.001 ~max_lag:2 ~fresh_floor:0 db
  in
  let r = Kdb.attach_replica db ~name:"r0" in
  Replication.add_replica router r;
  let read ?fresh p = fst (Replication.read router ~now:0.0 ?fresh p) in
  (* In sync: the replica (idle, same queue) is eligible; with both
     queues empty the tie breaks to the first unit, the primary — so
     issue two reads and expect one each. *)
  ignore (read (user 0));
  ignore (read (user 1));
  Alcotest.(check (list (pair string int)))
    "tie-break then queue-balance" [ ("primary", 1); ("r0", 1) ]
    (Replication.unit_reads router);
  (* Three writes push the lag past max_lag = 2: ordinary reads must
     fall back to the primary. *)
  for i = 300 to 302 do
    Kdb.add_user db (user i) ~password:"pw"
  done;
  Alcotest.(check int) "lag beyond bound" 3 (Kdb.replica_lag db r);
  ignore (read (user 0));
  Alcotest.(check int) "stale fallback counted" 1
    (Replication.stale_fallbacks router);
  Alcotest.(check (list (pair string int)))
    "over-lag read pinned to primary" [ ("primary", 2); ("r0", 1) ]
    (Replication.unit_reads router);
  (* One shipping round brings lag to 0; reads spread again. *)
  ignore (Replication.ship_all router);
  ignore (read (user 300));
  Alcotest.(check (list (pair string int)))
    "replica eligible again after shipping" [ ("primary", 2); ("r0", 2) ]
    (Replication.unit_reads router);
  (* Fresh reads tolerate no lag at all (fresh_floor = 0). *)
  Kdb.add_user db (user 303) ~password:"pw";
  ignore (read ~fresh:true (user 0));
  Alcotest.(check int) "fresh fallback counted" 1
    (Replication.fresh_fallbacks router);
  ignore (Replication.ship_all router);
  ignore (read ~fresh:true (user 0));
  Alcotest.(check int) "fresh read uses a caught-up replica" 1
    (Replication.fresh_fallbacks router)

(* Self-tuning ship cadence under a bursty write schedule: the trigger
   ships only when some replica's lag reaches [fraction] of [max_lag],
   so as long as the burst size per check interval stays under the
   remaining headroom, bounded-staleness routing never observes
   lag >= max_lag — no read ever falls back to the primary for
   staleness — and quiet checks ship nothing. *)
let self_tuning_cadence () =
  let db = primary_with ~shards:1 8 in
  let max_lag = 8 in
  let router = Replication.create ~service_time:0.001 ~max_lag db in
  let r = Kdb.attach_replica db ~name:"r0" in
  Replication.add_replica router r;
  Alcotest.(check int) "router exposes its staleness bound" max_lag
    (Replication.staleness_bound router);
  let rng = Util.Rng.create 0xcadc3L in
  let ships = ref 0 and checks_shipping = ref 0 and next = ref 1000 in
  let worst = ref 0 in
  (* 200 check intervals; each carries a write burst of 0..4 records —
     sometimes silence, sometimes half the threshold at once. The
     trigger fraction is 2/8, so headroom between a passing check and
     the bound is 6 records > any single burst. *)
  for _ = 1 to 200 do
    let burst = Util.Rng.int rng 5 in
    for _ = 1 to burst do
      Kdb.add_user db (user !next) ~password:"pw";
      incr next
    done;
    (* Routing decisions observe the lag as it stands when the read
       lands, before this check's shipping round. *)
    if Kdb.replica_lag db r > !worst then worst := Kdb.replica_lag db r;
    ignore (Replication.read router ~now:0.0 (user 0));
    let shipped = Replication.ship_if_lagged ~fraction:0.25 router in
    ships := !ships + shipped;
    if shipped > 0 then incr checks_shipping
  done;
  Alcotest.(check bool)
    (Printf.sprintf "lag stays strictly inside the bound (worst %d)" !worst)
    true (!worst < max_lag);
  Alcotest.(check int) "no read ever fell back for staleness" 0
    (Replication.stale_fallbacks router);
  (* fraction 0.0 is the fixed-cadence daemon: ships unconditionally,
     leaving the replica fully converged. *)
  ignore (Replication.ship_if_lagged ~fraction:0.0 router);
  Alcotest.(check int) "fraction 0.0 ships on every check" 0
    (Kdb.replica_lag db r);
  Alcotest.(check bool)
    (Printf.sprintf "quiet checks ship nothing (%d/200 shipped)"
       !checks_shipping)
    true
    (!checks_shipping < 200 && !checks_shipping > 0)

(* Replay-cache flood: a capped cache holds its memory bound under a
   flood of distinct authenticators — evicting the soonest-to-expire
   entry, counting every eviction — while a replay of a {e recent}
   authenticator (well inside the horizon, still resident) is caught. *)
let replay_cache_flood () =
  let cap = 1000 in
  let evictions = ref 0 in
  let c =
    Replay_cache.create ~cap ~on_evict:(fun () -> incr evictions)
      ~horizon:600.0 ()
  in
  let blob i = Bytes.of_string (Printf.sprintf "flood-%08d" i) in
  let n = 5000 in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 0.001 in
    (match Replay_cache.check_and_insert c ~now (blob i) with
    | Replay_cache.Fresh -> ()
    | Replay_cache.Replayed -> Alcotest.failf "distinct blob %d reported Replayed" i);
    Alcotest.(check bool) "size never exceeds cap" true
      (Replay_cache.size c <= cap);
    (* A recent authenticator — inside the cap window, not yet evicted —
       must still be rejected mid-flood. *)
    if i mod 50 = 0 && i > 100 then
      match Replay_cache.check_and_insert c ~now (blob (i - 100)) with
      | Replay_cache.Replayed -> ()
      | Replay_cache.Fresh ->
          Alcotest.failf "recent duplicate %d accepted mid-flood" (i - 100)
  done;
  Alcotest.(check int) "cache ends exactly at cap" cap (Replay_cache.size c);
  (* Every displaced entry is accounted: inserts minus live = evicted.
     The mid-flood duplicates are hits, not inserts, so the arithmetic
     is exact. *)
  Alcotest.(check int) "every eviction counted" (n - cap)
    (Replay_cache.evicted c);
  Alcotest.(check int) "eviction hook fired once per eviction" (n - cap)
    !evictions;
  (* With all entries live (horizon 600 s >> 5 s of flood), eviction
     order is soonest-to-expire = oldest surviving: the resident window
     is exactly the newest [cap] blobs. *)
  (match Replay_cache.check_and_insert c ~now:5.0 (blob (n - cap)) with
  | Replay_cache.Replayed -> ()
  | Replay_cache.Fresh -> Alcotest.fail "oldest resident entry was evicted early");
  match Replay_cache.check_and_insert c ~now:5.0 (blob (n - cap - 2)) with
  | Replay_cache.Fresh -> ()
  | Replay_cache.Replayed -> Alcotest.fail "evicted entry still resident"

(* Crash and rejoin: the reconcile pull restores byte-identical shards
   (digest + version-vector equality), including when the primary has
   checkpointed past the replica's cursor in the meantime. *)
let crash_rejoin_convergence () =
  (* checkpoint_every 4: the log truncates often, so the crashed
     replica's cursor falls behind first_retained_lsn and rejoin must go
     through the reconcile install, not a log tail. *)
  let db = primary_with ~checkpoint_every:4 10 in
  let r = Kdb.attach_replica db ~name:"r0" in
  ignore (Kdb.ship_to_replica r);
  Alcotest.(check bool) "in sync before the crash" true (converged db r);
  Kdb.replica_crash r;
  Alcotest.(check bool) "crash marks the replica down" false (Kdb.replica_live r);
  Alcotest.(check int) "crash wipes the image" 0 (Kdb.size (Kdb.replica_db r));
  for i = 400 to 409 do
    Kdb.add_user db (user i) ~password:(Printf.sprintf "pw%d" i)
  done;
  let pulled = Kdb.replica_rejoin r in
  Alcotest.(check bool) "rejoin pulls diverged shards" true (pulled > 0);
  Alcotest.(check bool) "rejoin marks the replica live" true (Kdb.replica_live r);
  Alcotest.(check bool) "digests and version vectors equal" true (converged db r);
  Alcotest.(check int) "cursor reset to head" (Kdb.head_lsn db)
    (Kdb.replica_applied_lsn r);
  (* And the shipped path still works on top of the rejoin. *)
  Kdb.add_user db (user 410) ~password:"pw410";
  ignore (Kdb.ship_to_replica r);
  Alcotest.(check bool) "still converged after post-rejoin shipping" true
    (converged db r)

(* A replica so far behind that the log no longer reaches it catches up
   via checkpoint + tail (counted), and converges. *)
let catchup_after_truncation () =
  let db = primary_with ~checkpoint_every:3 6 in
  let r = Kdb.attach_replica db ~name:"r0" in
  let catchups_before = Kdb.replica_catchups r in
  (* 9 writes = three checkpoints: the retained tail starts far past the
     replica's ack. *)
  for i = 500 to 508 do
    Kdb.add_user db (user i) ~password:(Printf.sprintf "pw%d" i)
  done;
  let wal = Option.get (Kdb.wal db) in
  Alcotest.(check bool) "gap: ack is behind the retained log" true
    (Kdb.replica_applied_lsn r + 1 < Kdb.Wal.first_retained_lsn wal);
  ignore (Kdb.ship_to_replica r);
  Alcotest.(check int) "catch-up taken, not a tail ship"
    (catchups_before + 1) (Kdb.replica_catchups r);
  Alcotest.(check bool) "converged after catch-up" true (converged db r);
  Alcotest.(check int) "ack at head" (Kdb.head_lsn db) (Kdb.replica_applied_lsn r)

(* Routing is a deterministic function of the read sequence: two
   identically-built pools given the same reads in the same order serve
   them from the same units with the same delays. *)
let routing_determinism () =
  let build () =
    let db = primary_with ~shards:4 40 in
    let router = Replication.create ~service_time:0.002 ~max_lag:8 db in
    Replication.add_replica router (Kdb.attach_replica db ~name:"r0");
    Replication.add_replica router (Kdb.attach_replica db ~name:"r1");
    router
  in
  let drive router =
    List.init 200 (fun i ->
        let now = 0.01 *. float_of_int i in
        let _, delay = Replication.read router ~now (user (i * 7 mod 40)) in
        delay)
  in
  let a = build () and b = build () in
  let da = drive a and db_ = drive b in
  Alcotest.(check (list (float 0.0))) "identical delay sequences" da db_;
  Alcotest.(check (list (pair string int))) "identical unit loads"
    (Replication.unit_reads a) (Replication.unit_reads b);
  Alcotest.(check bool) "work actually spread beyond the primary" true
    (List.for_all (fun (_, c) -> c > 0) (Replication.unit_reads a))

(* ------------------------------------------------------------------ *)
(* Replay-cache stress: a busy server's worth of authenticators.       *)
(* ------------------------------------------------------------------ *)

let cache_stress () =
  (* 50k inserts with simulated time advancing 10 ms per request and a 50 s
     horizon, so ~5000 entries are live at any instant and entries expire
     continuously under the insert load. Verdicts are checked against the
     specification (live duplicate -> Replayed, expired or new -> Fresh),
     and the wall clock bounds the implementation to sub-quadratic: the old
     purge-on-insert scan (O(live) per insert, ~250M entry visits for this
     workload) blows far past the budget, while the heap implementation
     finishes in well under a second. *)
  let n = 50_000 in
  let horizon = 50.0 in
  let c = Replay_cache.create ~horizon () in
  let blob i = Bytes.of_string (Printf.sprintf "authenticator-%08d" i) in
  let started = Sys.time () in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 0.01 in
    (match Replay_cache.check_and_insert c ~now (blob i) with
    | Replay_cache.Fresh -> ()
    | Replay_cache.Replayed -> Alcotest.failf "new blob %d reported Replayed" i);
    (* Every third request replays a recent authenticator (well inside the
       horizon): must be caught. *)
    if i mod 3 = 0 && i > 10 then begin
      match Replay_cache.check_and_insert c ~now (blob (i - 10)) with
      | Replay_cache.Replayed -> ()
      | Replay_cache.Fresh -> Alcotest.failf "live duplicate %d accepted" (i - 10)
    end;
    (* Every 97th request replays one from beyond the horizon (60 s ago):
       the entry has expired, so the timestamp check is the only defence
       and the cache must report Fresh. *)
    if i mod 97 = 0 && i > 6000 then begin
      match Replay_cache.check_and_insert c ~now (blob (i - 6000)) with
      | Replay_cache.Fresh -> ()
      | Replay_cache.Replayed -> Alcotest.failf "expired blob %d still cached" (i - 6000)
    end
  done;
  let elapsed = Sys.time () -. started in
  (* Live window is horizon / 0.01 = 5000 fresh entries, plus the re-inserted
     expired ones still inside their new horizon. *)
  let live = Replay_cache.size c in
  Alcotest.(check bool)
    (Printf.sprintf "live entries bounded by window (got %d)" live)
    true
    (live >= 5000 && live <= 5200);
  Alcotest.(check bool)
    (Printf.sprintf "sub-quadratic runtime (%.2fs cpu)" elapsed)
    true (elapsed < 5.0)

let () =
  Alcotest.run "replication"
    [ ("kprop",
       [ Alcotest.test_case "master/slave flow" `Quick replication_flow;
         Alcotest.test_case "shard-by-shard propagation" `Quick shard_propagation_flow ]);
      ("kdb",
       [ Alcotest.test_case "atomic shard swap" `Quick shard_atomicity;
         QCheck_alcotest.to_alcotest kdb_roundtrip;
         QCheck_alcotest.to_alcotest kdb_reshard ]);
      ("replicas",
       [ Alcotest.test_case "apply before ack" `Quick apply_before_ack;
         Alcotest.test_case "torn shipment truncates cleanly" `Quick torn_shipment;
         Alcotest.test_case "bounded-lag and fresh routing" `Quick bounded_lag_routing;
         Alcotest.test_case "self-tuning ship cadence under bursts" `Quick
           self_tuning_cadence;
         Alcotest.test_case "crash/rejoin convergence" `Quick crash_rejoin_convergence;
         Alcotest.test_case "catch-up across log truncation" `Quick
           catchup_after_truncation;
         Alcotest.test_case "routing determinism" `Quick routing_determinism ]);
      ("replay_cache_stress",
       [ Alcotest.test_case "50k inserts with expiry" `Quick cache_stress;
         Alcotest.test_case "capped cache bounded under flood" `Quick
           replay_cache_flood ]) ]
