(* The fault-injection plane and the recovery machinery built around it:
   seeded fault rules and their determinism, the Net integration (drop
   reasons, zero-overhead inert planes), Rpc retry/backoff and its
   late-reply races, Tcpish under duplication and reordering, KDC
   failover and re-login on expiry, application-server crash/restart
   with volatile vs. persistent replay caches, kprop re-propagation
   through a healed partition, and the chaos soak. *)

open Kerberos

let quad = Sim.Addr.of_quad

let mk_net ?telemetry () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ?telemetry eng in
  let a = Sim.Host.create ~name:"alpha" ~ips:[ quad 10 0 0 1 ] () in
  let b = Sim.Host.create ~name:"beta" ~ips:[ quad 10 0 0 2 ] () in
  Sim.Net.attach net a;
  Sim.Net.attach net b;
  (eng, net, a, b)

let send net host ~dst s =
  Sim.Net.send net ~sport:5000 ~dst ~dport:100 host (Bytes.of_string s)

(* ------------------------------------------------------------------ *)
(* The plane itself                                                    *)
(* ------------------------------------------------------------------ *)

let loss_drops_everything () =
  let eng, net, a, b = mk_net () in
  let got = ref 0 in
  Sim.Net.listen net b ~port:100 (fun _ -> incr got);
  let plane = Sim.Faults.create () in
  Sim.Faults.add_loss plane ~p:1.0 ();
  Sim.Net.attach_faults net plane;
  for i = 1 to 5 do
    send net a ~dst:(Sim.Host.primary_ip b) (string_of_int i)
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "five losses counted" 5
    (Sim.Faults.count plane Sim.Faults.Loss)

let duplicate_delivers_copy () =
  let eng, net, a, b = mk_net () in
  let got = ref [] in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      got := (Sim.Engine.now eng, Bytes.to_string pkt.Sim.Packet.payload) :: !got);
  let plane = Sim.Faults.create () in
  Sim.Faults.add_duplicate plane ~copy_delay:0.01 ~p:1.0 ();
  Sim.Net.attach_faults net plane;
  send net a ~dst:(Sim.Host.primary_ip b) "once";
  Sim.Engine.run eng;
  (match List.rev !got with
  | [ (t1, p1); (t2, p2) ] ->
      Alcotest.(check string) "original" "once" p1;
      Alcotest.(check string) "copy" "once" p2;
      Alcotest.(check (float 1e-9)) "copy lags by copy_delay" 0.01 (t2 -. t1)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l));
  Alcotest.(check int) "one duplication counted" 1
    (Sim.Faults.count plane Sim.Faults.Duplicate)

let bitdiff x y =
  let n = ref 0 in
  Bytes.iteri
    (fun i c ->
      let d = Char.code c lxor Char.code (Bytes.get y i) in
      for b = 0 to 7 do
        if d land (1 lsl b) <> 0 then incr n
      done)
    x;
  !n

let corrupt_flips_one_bit () =
  let eng, net, a, b = mk_net () in
  let got = ref None in
  Sim.Net.listen net b ~port:100 (fun pkt -> got := Some pkt.Sim.Packet.payload);
  let plane = Sim.Faults.create () in
  Sim.Faults.add_corrupt plane ~p:1.0 ();
  Sim.Net.attach_faults net plane;
  let original = Bytes.of_string "hello, fault plane" in
  Sim.Net.send net ~sport:5000 ~dst:(Sim.Host.primary_ip b) ~dport:100 a original;
  Sim.Engine.run eng;
  (match !got with
  | None -> Alcotest.fail "corrupted packet should still arrive"
  | Some p ->
      Alcotest.(check int) "same length" (Bytes.length original) (Bytes.length p);
      Alcotest.(check int) "exactly one bit flipped" 1 (bitdiff original p));
  Alcotest.(check int) "counted" 1 (Sim.Faults.count plane Sim.Faults.Corrupt)

let jitter_adds_delay () =
  let eng, net, a, b = mk_net () in
  let arrivals = ref [] in
  Sim.Net.listen net b ~port:100 (fun _ ->
      arrivals := Sim.Engine.now eng :: !arrivals);
  send net a ~dst:(Sim.Host.primary_ip b) "plain";
  let plane = Sim.Faults.create () in
  Sim.Engine.schedule eng ~at:1.0 (fun () ->
      Sim.Faults.add_jitter plane ~max_delay:0.05 ();
      Sim.Net.attach_faults net plane;
      send net a ~dst:(Sim.Host.primary_ip b) "jittered");
  Sim.Engine.run eng;
  (match List.rev !arrivals with
  | [ t_plain; t_jittered ] ->
      (* Base latency cancels: anything past it is the injected jitter. *)
      Alcotest.(check bool) "jittered packet is no earlier" true
        (t_jittered -. 1.0 >= t_plain)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l));
  Alcotest.(check int) "counted" 1 (Sim.Faults.count plane Sim.Faults.Jitter)

let reorder_lets_later_overtake () =
  let eng, net, a, b = mk_net () in
  let got = ref [] in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      got := Bytes.to_string pkt.Sim.Packet.payload :: !got);
  let plane = Sim.Faults.create () in
  (* The hold-back rule is live only for the first send. *)
  Sim.Faults.add_reorder plane ~hold:0.1 ~from:0.0 ~until:0.01 ~p:1.0 ();
  Sim.Net.attach_faults net plane;
  send net a ~dst:(Sim.Host.primary_ip b) "first";
  Sim.Engine.schedule eng ~at:0.02 (fun () ->
      send net a ~dst:(Sim.Host.primary_ip b) "second");
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "second overtakes first" [ "second"; "first" ]
    (List.rev !got);
  Alcotest.(check int) "one reorder counted" 1
    (Sim.Faults.count plane Sim.Faults.Reorder)

let partition_cuts_until_heal () =
  let eng, net, a, b = mk_net () in
  let got = ref [] in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      got := Bytes.to_string pkt.Sim.Packet.payload :: !got);
  let plane = Sim.Faults.create () in
  Sim.Faults.partition plane ~a:[ Sim.Host.primary_ip a ]
    ~b:[ Sim.Host.primary_ip b ] ();
  Sim.Net.attach_faults net plane;
  send net a ~dst:(Sim.Host.primary_ip b) "cut";
  Sim.Engine.schedule eng ~at:1.0 (fun () ->
      Sim.Faults.heal plane ~now:(Sim.Engine.now eng));
  Sim.Engine.schedule eng ~at:2.0 (fun () ->
      send net a ~dst:(Sim.Host.primary_ip b) "joined");
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "only post-heal traffic" [ "joined" ]
    (List.rev !got);
  Alcotest.(check int) "one partition drop" 1
    (Sim.Faults.count plane Sim.Faults.Partition)

let crash_window_silences_host () =
  let eng, net, a, b = mk_net () in
  let got = ref [] in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      got := Bytes.to_string pkt.Sim.Packet.payload :: !got);
  let plane = Sim.Faults.create () in
  Sim.Faults.crash_host plane (Sim.Host.primary_ip b) ~from:1.0 ~until:2.0 ();
  Sim.Net.attach_faults net plane;
  List.iter
    (fun (at, s) ->
      Sim.Engine.schedule eng ~at (fun () ->
          send net a ~dst:(Sim.Host.primary_ip b) s))
    [ (0.5, "early"); (1.5, "during"); (2.5, "late") ];
  Sim.Engine.schedule eng ~at:1.5 (fun () ->
      Alcotest.(check bool) "host down mid-window" false
        (Sim.Faults.host_up plane ~now:(Sim.Engine.now eng)
           (Sim.Host.primary_ip b)));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "window swallowed the middle send"
    [ "early"; "late" ] (List.rev !got);
  Alcotest.(check int) "one outage drop" 1
    (Sim.Faults.count plane Sim.Faults.Host_down)

let clock_step_applies () =
  let eng = Sim.Engine.create () in
  let h = Sim.Host.create ~name:"h" ~ips:[ quad 10 0 0 7 ] () in
  let plane = Sim.Faults.create () in
  Sim.Faults.clock_step plane eng h ~at:1.0 ~delta:42.0;
  Sim.Engine.run eng;
  Alcotest.(check (float 1e-9)) "clock stepped" 142.0
    (Sim.Host.local_time h ~real:100.0);
  Alcotest.(check int) "counted" 1 (Sim.Faults.count plane Sim.Faults.Clock_step)

let plan_is_deterministic () =
  let mk () =
    let p = Sim.Faults.create ~seed:7L () in
    Sim.Faults.add_loss p ~p:0.4 ();
    Sim.Faults.add_duplicate p ~p:0.3 ();
    Sim.Faults.add_corrupt p ~p:0.2 ();
    p
  in
  let packets =
    List.init 60 (fun i ->
        { Sim.Packet.src = quad 10 0 0 1; sport = 1000 + i; dst = quad 10 0 0 2;
          dport = 100; payload = Bytes.of_string (Printf.sprintf "pkt-%d" i);
          uid = i })
  in
  let verdicts plane =
    List.map (fun pkt -> Sim.Faults.plan plane ~now:0.5 pkt) packets
  in
  let a = verdicts (mk ()) and b = verdicts (mk ()) in
  Alcotest.(check bool) "same seed, same verdict stream" true (a = b);
  Alcotest.(check bool) "stream is non-trivial" true
    (List.exists (fun v -> v <> Sim.Faults.Pass) a
    && List.exists (fun v -> v = Sim.Faults.Pass) a)

(* An attached-but-empty plane must be invisible: same session, byte-
   identical telemetry trace — the behavioural half of the <=1% overhead
   budget that BENCH_faults.json tracks. *)
let inert_plane_changes_nothing () =
  let session_trace plane =
    let tel = Telemetry.Collector.fresh_default () in
    let bed = Attacks.Testbed.make ~profile:Profile.v4 () in
    (match plane with
    | Some p -> Sim.Net.attach_faults bed.Attacks.Testbed.net p
    | None -> ());
    Attacks.Testbed.victim_mail_session bed ();
    Attacks.Testbed.run bed;
    Telemetry.Collector.trace_jsonl tel
  in
  let plain = session_trace None in
  let inert = session_trace (Some (Sim.Faults.create ())) in
  Alcotest.(check bool) "trace is non-trivial" true (String.length plain > 1000);
  Alcotest.(check bool) "byte-identical with inert plane" true
    (String.equal plain inert);
  ignore (Telemetry.Collector.fresh_default ())

let suite_plane =
  [ Alcotest.test_case "loss" `Quick loss_drops_everything;
    Alcotest.test_case "duplicate" `Quick duplicate_delivers_copy;
    Alcotest.test_case "corrupt" `Quick corrupt_flips_one_bit;
    Alcotest.test_case "jitter" `Quick jitter_adds_delay;
    Alcotest.test_case "reorder" `Quick reorder_lets_later_overtake;
    Alcotest.test_case "partition + heal" `Quick partition_cuts_until_heal;
    Alcotest.test_case "host crash window" `Quick crash_window_silences_host;
    Alcotest.test_case "clock step" `Quick clock_step_applies;
    Alcotest.test_case "plan determinism" `Quick plan_is_deterministic;
    Alcotest.test_case "inert plane changes nothing" `Quick
      inert_plane_changes_nothing ]

(* ------------------------------------------------------------------ *)
(* Net and Rpc plumbing                                                *)
(* ------------------------------------------------------------------ *)

let dropped_reason_counter () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng, net, a, b = mk_net ~telemetry:tel () in
  (* Nobody listens on port 9: the drop must be visible per-reason. *)
  Sim.Net.send net ~sport:1 ~dst:(Sim.Host.primary_ip b) ~dport:9 a
    (Bytes.of_string "void");
  Sim.Engine.run eng;
  let v name =
    Telemetry.Metrics.value
      (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel) name)
  in
  Alcotest.(check int) "per-reason counter" 1 (v "net.dropped.no-listener");
  Alcotest.(check int) "total drop counter" 1 (v "net.packets.dropped");
  ignore (Telemetry.Collector.fresh_default ())

let reply_from net b pkt s =
  Sim.Net.send net ~sport:100 ~dst:pkt.Sim.Packet.src ~dport:pkt.Sim.Packet.sport
    b (Bytes.of_string s)

(* A duplicated reply (the fault plane's specialty) must fire on_reply
   exactly once; the second copy finds the ephemeral port closed. *)
let rpc_duplicate_reply_suppressed () =
  let eng, net, a, b = mk_net () in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      reply_from net b pkt "first";
      reply_from net b pkt "second");
  let sport = ref 0 in
  Sim.Net.add_tap net (fun pkt ->
      if pkt.Sim.Packet.dport = 100 then sport := pkt.Sim.Packet.sport);
  let replies = ref [] and timeouts = ref 0 in
  Sim.Rpc.call net a ~dst:(Sim.Host.primary_ip b) ~dport:100 (Bytes.of_string "q")
    ~on_reply:(fun pkt ->
      replies := Bytes.to_string pkt.Sim.Packet.payload :: !replies)
    ~on_timeout:(fun () -> incr timeouts);
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "exactly one reply" [ "first" ] !replies;
  Alcotest.(check int) "no timeout" 0 !timeouts;
  Alcotest.(check bool) "ephemeral listener torn down" false
    (Sim.Net.listening net (Sim.Host.primary_ip a) ~port:!sport)

(* Regression: a reply that arrives after the final timeout has fired
   must not invoke on_reply, and must not leak the listener. *)
let rpc_late_reply_after_timeout () =
  let eng, net, a, b = mk_net () in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      Sim.Engine.schedule_after eng 0.5 (fun () -> reply_from net b pkt "too late"));
  let sport = ref 0 in
  Sim.Net.add_tap net (fun pkt ->
      if pkt.Sim.Packet.dport = 100 then sport := pkt.Sim.Packet.sport);
  let replied = ref 0 and timed_out = ref 0 in
  Sim.Rpc.call net a ~timeout:0.1 ~jitter:0.0 ~dst:(Sim.Host.primary_ip b)
    ~dport:100 (Bytes.of_string "q")
    ~on_reply:(fun _ -> incr replied)
    ~on_timeout:(fun () -> incr timed_out);
  Sim.Engine.run eng;
  Alcotest.(check int) "late reply ignored" 0 !replied;
  Alcotest.(check int) "one timeout" 1 !timed_out;
  Alcotest.(check bool) "listener gone after timeout" false
    (Sim.Net.listening net (Sim.Host.primary_ip a) ~port:!sport)

let rpc_exponential_backoff () =
  let eng, net, a, b = mk_net () in
  let seen = ref [] in
  Sim.Net.listen net b ~port:100 (fun pkt ->
      seen := Sim.Engine.now eng :: !seen;
      (* Answer only the third transmission. *)
      if List.length !seen = 3 then reply_from net b pkt "ok");
  let reply = ref None and timed_out = ref 0 in
  Sim.Rpc.call net a ~timeout:0.1 ~retries:3 ~backoff:2.0 ~jitter:0.0
    ~dst:(Sim.Host.primary_ip b) ~dport:100 (Bytes.of_string "q")
    ~on_reply:(fun pkt -> reply := Some (Bytes.to_string pkt.Sim.Packet.payload))
    ~on_timeout:(fun () -> incr timed_out);
  Sim.Engine.run eng;
  Alcotest.(check (option string)) "third transmission answered" (Some "ok")
    !reply;
  Alcotest.(check int) "no timeout" 0 !timed_out;
  (* Retransmissions at t, t+0.1, t+0.1+0.2: doubling intervals. *)
  (match List.rev_map (fun t -> t -. 0.005) !seen with
  | [ t1; t2; t3 ] ->
      Alcotest.(check (float 1e-6)) "first at once" 0.0 t1;
      Alcotest.(check (float 1e-6)) "second after timeout" 0.1 t2;
      Alcotest.(check (float 1e-6)) "third after doubled timeout" 0.3 t3
  | l -> Alcotest.failf "expected 3 transmissions, got %d" (List.length l))

let engine_settle_abandons_open_spans () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let _net = Sim.Net.create ~telemetry:tel eng in
  Sim.Engine.schedule eng ~at:1.0 (fun () ->
      ignore (Telemetry.Collector.span_begin tel ~component:"test" "orphan"));
  Sim.Engine.schedule eng ~at:10.0 (fun () -> ());
  Sim.Engine.run_until eng 5.0;
  Alcotest.(check int) "run_until leaves the span open" 1
    (Telemetry.Collector.open_span_count tel);
  Sim.Engine.settle eng;
  Alcotest.(check int) "settle closes it" 0
    (Telemetry.Collector.open_span_count tel);
  Sim.Engine.run eng;
  Alcotest.(check int) "drained run stays settled" 0
    (Telemetry.Collector.open_span_count tel);
  ignore (Telemetry.Collector.fresh_default ())

let suite_net =
  [ Alcotest.test_case "per-reason drop counters" `Quick dropped_reason_counter;
    Alcotest.test_case "rpc duplicate reply suppressed" `Quick
      rpc_duplicate_reply_suppressed;
    Alcotest.test_case "rpc late reply after timeout" `Quick
      rpc_late_reply_after_timeout;
    Alcotest.test_case "rpc exponential backoff" `Quick rpc_exponential_backoff;
    Alcotest.test_case "engine settle" `Quick engine_settle_abandons_open_spans ]

(* ------------------------------------------------------------------ *)
(* Tcpish under the plane                                              *)
(* ------------------------------------------------------------------ *)

let tcp_server net b ~server_got ~server_conn =
  Sim.Tcpish.listen net b ~port:513
    ~on_accept:(fun conn ->
      server_conn := Some conn;
      Sim.Tcpish.on_data conn (fun d ->
          server_got := Bytes.to_string d :: !server_got))
    ()

let tcp_duplicate_segment_dropped () =
  let eng, net, a, b = mk_net () in
  let server_got = ref [] and server_conn = ref None in
  tcp_server net b ~server_got ~server_conn;
  let plane = Sim.Faults.create () in
  ignore
  @@ Sim.Tcpish.connect net a ~dst:(Sim.Host.primary_ip b) ~dport:513
       ~on_connected:(fun conn ->
         (* Faults start after the handshake: every segment now doubled. *)
         Sim.Faults.add_duplicate plane ~p:1.0 ();
         Sim.Net.attach_faults net plane;
         Sim.Tcpish.send conn (Bytes.of_string "data"))
       ();
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "payload delivered once" [ "data" ]
    (List.rev !server_got);
  (match !server_conn with
  | Some conn ->
      Alcotest.(check int) "bytes_received counts the copy zero times" 4
        (Sim.Tcpish.bytes_received conn)
  | None -> Alcotest.fail "handshake failed");
  Alcotest.(check bool) "duplicates were injected" true
    (Sim.Faults.count plane Sim.Faults.Duplicate >= 1)

let tcp_reordered_segment_dropped () =
  let eng, net, a, b = mk_net () in
  let server_got = ref [] and server_conn = ref None in
  tcp_server net b ~server_got ~server_conn;
  let plane = Sim.Faults.create () in
  ignore
  @@ Sim.Tcpish.connect net a ~dst:(Sim.Host.primary_ip b) ~dport:513
       ~on_connected:(fun conn ->
         let now = Sim.Engine.now eng in
         (* Hold back only the first data segment; the second overtakes it
            and arrives out of order. *)
         Sim.Faults.add_reorder plane ~hold:0.1 ~from:now ~until:(now +. 0.01)
           ~p:1.0 ();
         Sim.Net.attach_faults net plane;
         Sim.Tcpish.send conn (Bytes.of_string "aa");
         Sim.Engine.schedule_after eng 0.02 (fun () ->
             Sim.Tcpish.send conn (Bytes.of_string "bb")))
       ();
  Sim.Engine.run eng;
  (* "bb" arrived first with a future sequence number: buffered for
     reassembly, then delivered in order once "aa" lands — the stream
     sees both, in sequence, with the byte accounting intact. *)
  Alcotest.(check (list string)) "in-order reassembly" [ "aa"; "bb" ]
    (List.rev !server_got);
  (match !server_conn with
  | Some conn ->
      Alcotest.(check int) "bytes_received counts both" 4
        (Sim.Tcpish.bytes_received conn)
  | None -> Alcotest.fail "handshake failed");
  Alcotest.(check int) "one reorder" 1 (Sim.Faults.count plane Sim.Faults.Reorder)

let suite_tcpish =
  [ Alcotest.test_case "duplicate segment dropped" `Quick
      tcp_duplicate_segment_dropped;
    Alcotest.test_case "reordered segment dropped" `Quick
      tcp_reordered_segment_dropped ]

(* ------------------------------------------------------------------ *)
(* Kerberos-level recovery                                             *)
(* ------------------------------------------------------------------ *)

let cache_profile =
  { Profile.v5_draft3 with
    Profile.name = "v5d3+cache";
    ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let realm = "R"

(* One realm with a master and a slave serving a replica database. *)
let mk_realm ?(profile = Profile.v5_draft3) ?(lifetime = 28800.0) () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let master = Sim.Host.create ~name:"kdc-master" ~ips:[ quad 10 3 0 1 ] () in
  let slave = Sim.Host.create ~name:"kdc-slave" ~ips:[ quad 10 3 0 2 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 3 0 9 ] () in
  List.iter (Sim.Net.attach net) [ master; slave; ws ];
  let rng = Util.Rng.create 0xFA11L in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pat.pw";
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  Kdb.add_service db fileserv ~key:(Crypto.Des.random_key rng);
  Kdc.install net master (Kdc.create ~realm ~profile ~lifetime db) ();
  Kdc.install net slave
    (Kdc.create ~realm ~profile ~lifetime (Kdb.of_bytes (Kdb.to_bytes db)))
    ();
  (eng, net, master, slave, ws, fileserv)

let kdc_failover_to_slave () =
  let eng, net, master, slave, ws, _ = mk_realm () in
  (* The master is dead from the start; only failover can serve pat. *)
  let plane = Sim.Faults.create () in
  Sim.Faults.crash_host plane (Sim.Host.primary_ip master) ();
  Sim.Net.attach_faults net plane;
  let c =
    Client.create ~seed:3L ~kdc_timeout:0.2 net ws ~profile:Profile.v5_draft3
      ~kdcs:
        [ (realm, Sim.Host.primary_ip master);
          (realm, Sim.Host.primary_ip slave) ]
      (Principal.user ~realm "pat")
  in
  let got = ref None in
  Client.login c ~password:"pat.pw" (fun r -> got := Some r);
  Sim.Engine.run eng;
  (match !got with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "login failed despite live slave: %s" e
  | None -> Alcotest.fail "login stalled");
  let failed_over =
    List.exists
      (function
        | Sim.Net.Note (_, msg) ->
            Astring.String.is_infix ~affix:"failing over" msg
        | _ -> false)
      (Sim.Net.events net)
  in
  Alcotest.(check bool) "failover note recorded" true failed_over

let relogin_on_tgt_expiry () =
  let eng, net, master, _, ws, fileserv = mk_realm ~lifetime:2.0 () in
  let c =
    Client.create ~seed:4L ~password:"pat.pw" net ws ~profile:Profile.v5_draft3
      ~kdcs:[ (realm, Sim.Host.primary_ip master) ]
      (Principal.user ~realm "pat")
  in
  let first = ref None and second = ref None in
  Client.login c ~password:"pat.pw" (fun r -> first := Some (Result.is_ok r));
  (* Long after the 2-second TGT died: get_ticket must re-login itself. *)
  Sim.Engine.schedule eng ~at:5.0 (fun () ->
      Client.get_ticket c ~service:fileserv (fun r -> second := Some r));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "initial login" (Some true) !first;
  (match !second with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "ticket after expiry failed: %s" e
  | None -> Alcotest.fail "get_ticket stalled");
  (match Client.tgt c with
  | Some tgt ->
      Alcotest.(check bool) "TGT was re-acquired" true
        (tgt.Client.issued_at >= 4.9)
  | None -> Alcotest.fail "no TGT after re-login")

(* The paper's operational gap, both ways: a server restarting with a
   volatile replay cache re-admits a captured authenticator still inside
   the skew window; a persistent cache rejects it. *)
let restart_replay ~persist =
  ignore (Telemetry.Collector.fresh_default ());
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 1 0 1 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 1 0 2 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 1 0 3 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; fs_host; ws ];
  let rng = Util.Rng.create 0x5EEDL in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pat.pw";
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  Kdc.install net kdc_host
    (Kdc.create ~realm ~profile:cache_profile ~lifetime:28800.0 db)
    ();
  let fsrv =
    Services.Fileserver.install net fs_host
      ~config:{ Apserver.default_config with persist_replay_cache = persist }
      ~profile:cache_profile ~principal:fileserv ~key:fs_key ~port:600
  in
  let apsrv = Services.Fileserver.apserver fsrv in
  let adv = Sim.Adversary.attach net in
  Sim.Adversary.start_tap adv;
  let c =
    Client.create ~seed:9L net ws ~profile:cache_profile
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  let up = ref false in
  Client.login c ~password:"pat.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket c ~service:fileserv (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip fs_host)
            ~dport:600 (fun r ->
              ignore (Result.get_ok r);
              up := true)));
  Sim.Engine.run eng;
  Alcotest.(check bool) "honest session up" true !up;
  Alcotest.(check int) "one session before the crash" 1
    (Apserver.sessions_established apsrv);
  let ap_req =
    match
      Sim.Adversary.capture_matching adv (fun p ->
          p.Sim.Packet.dport = 600
          &&
          match Frames.unwrap p.Sim.Packet.payload with
          | Some (k, _) -> k = Frames.ap_req
          | None -> false)
    with
    | pkt :: _ -> pkt
    | [] -> Alcotest.fail "no AP_REQ captured"
  in
  Apserver.crash apsrv;
  Apserver.restart apsrv;
  let cache_after_restart = Apserver.replay_cache_size apsrv in
  Sim.Adversary.replay adv ap_req;
  Sim.Engine.run eng;
  let r =
    ( Apserver.sessions_established apsrv,
      Apserver.replay_hits apsrv,
      cache_after_restart )
  in
  ignore (Telemetry.Collector.fresh_default ());
  r

let volatile_restart_admits_replay () =
  let sessions, _, cache = restart_replay ~persist:false in
  Alcotest.(check int) "restart emptied the cache" 0 cache;
  Alcotest.(check int) "replay minted a second session" 2 sessions

let persistent_restart_rejects_replay () =
  let sessions, hits, cache = restart_replay ~persist:true in
  Alcotest.(check bool) "cache restored across restart" true (cache >= 1);
  Alcotest.(check int) "still exactly one session" 1 sessions;
  Alcotest.(check bool) "replay recorded as a hit" true (hits >= 1)

let replay_cache_serialization_roundtrip () =
  let c = Replay_cache.create ~horizon:600.0 () in
  for i = 0 to 9 do
    ignore
      (Replay_cache.check_and_insert c ~now:(float_of_int i)
         (Bytes.of_string (Printf.sprintf "auth-%d" i)))
  done;
  let c' = Replay_cache.of_bytes (Replay_cache.to_bytes c) in
  Alcotest.(check int) "size survives" (Replay_cache.size c)
    (Replay_cache.size c');
  Alcotest.(check bool) "known authenticator still replayed" true
    (Replay_cache.check_and_insert c' ~now:10.0 (Bytes.of_string "auth-3")
    = Replay_cache.Replayed);
  Alcotest.(check bool) "fresh authenticator still fresh" true
    (Replay_cache.check_and_insert c' ~now:10.0 (Bytes.of_string "auth-99")
    = Replay_cache.Fresh);
  (* Expiries survive the roundtrip: everything inserted before the
     snapshot ages out on schedule, the post-restore entry lives on. *)
  Replay_cache.purge c' ~now:609.5;
  Alcotest.(check int) "old entries purged on schedule" 1 (Replay_cache.size c')

let kprop_retries_through_partition () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 2 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 2 0 2 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host ];
  let rng = Util.Rng.create 0x4B51L in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  let admin_p = Principal.user ~realm "kadmin" in
  Kdb.add_user db admin_p ~password:"admin.pw";
  let kpropd_p = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service db kpropd_p ~key:kpropd_key;
  Kdc.install net master_host
    (Kdc.create ~realm ~profile:Profile.v5_draft3 ~lifetime:28800.0 db)
    ();
  let slave_db = Kdb.create () in
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile:Profile.v5_draft3
      ~principal:kpropd_p ~key:kpropd_key ~port:754 ~master:admin_p ~slave_db
  in
  let admin =
    Client.create ~seed:2L net master_host ~profile:Profile.v5_draft3
      ~kdcs:[ (realm, Sim.Host.primary_ip master_host) ]
      admin_p
  in
  let chan_ref = ref None in
  Client.login admin ~password:"admin.pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_p (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r -> chan_ref := Some (Result.get_ok r))));
  Sim.Engine.run eng;
  let chan = Option.get !chan_ref in
  (* The wire to the slave goes dark just as the push starts. *)
  let plane = Sim.Faults.create () in
  Sim.Faults.partition plane
    ~a:[ Sim.Host.primary_ip master_host ]
    ~b:[ Sim.Host.primary_ip slave_host ]
    ();
  Sim.Net.attach_faults net plane;
  let t0 = Sim.Engine.now eng in
  Sim.Engine.schedule eng ~at:(t0 +. 1.3) (fun () ->
      Sim.Faults.heal plane ~now:(Sim.Engine.now eng));
  let result = ref None in
  Services.Kprop.propagate_with_retry ~attempts:4 ~deadline:0.5 ~pause:0.5 admin
    chan ~db ~k:(fun r -> result := Some r);
  Sim.Engine.run eng;
  (match !result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "propagation failed after heal: %s" e
  | None -> Alcotest.fail "propagation stalled");
  Alcotest.(check bool) "the partition did drop traffic" true
    (Sim.Faults.count plane Sim.Faults.Partition >= 1);
  Alcotest.(check int) "slave refreshed exactly once" 1
    (Services.Kprop.propagations_received kpropd);
  Alcotest.(check int) "databases converged" (Kdb.size db) (Kdb.size slave_db)

let suite_recovery =
  [ Alcotest.test_case "KDC failover to slave" `Quick kdc_failover_to_slave;
    Alcotest.test_case "re-login on TGT expiry" `Quick relogin_on_tgt_expiry;
    Alcotest.test_case "volatile restart admits replay" `Quick
      volatile_restart_admits_replay;
    Alcotest.test_case "persistent restart rejects replay" `Quick
      persistent_restart_rejects_replay;
    Alcotest.test_case "replay cache serialization" `Quick
      replay_cache_serialization_roundtrip;
    Alcotest.test_case "kprop retry through partition" `Quick
      kprop_retries_through_partition ]

(* ------------------------------------------------------------------ *)
(* The chaos soak                                                      *)
(* ------------------------------------------------------------------ *)

let chaos_soak () =
  for seed = 1 to 10 do
    let r = Expframework.Chaos.run ~fault_seed:(Int64.of_int seed) () in
    match Expframework.Chaos.safety_violations r with
    | [] -> ()
    | vs ->
        Alcotest.failf "seed %d: %d violations: %s" seed (List.length vs)
          (String.concat "; " vs)
  done;
  ignore (Telemetry.Collector.fresh_default ())

let chaos_deterministic () =
  let a = Expframework.Chaos.run ~fault_seed:5L () in
  let b = Expframework.Chaos.run ~fault_seed:5L () in
  Alcotest.(check bool) "traces byte-identical across runs" true
    (String.equal a.Expframework.Chaos.trace b.Expframework.Chaos.trace);
  Alcotest.(check bool) "the run actually injected faults" true
    (a.Expframework.Chaos.fault_counts <> []);
  ignore (Telemetry.Collector.fresh_default ())

let suite_chaos =
  [ Alcotest.test_case "10-seed soak holds all invariants" `Quick chaos_soak;
    Alcotest.test_case "identical seed, identical trace" `Quick
      chaos_deterministic ]

let () =
  Alcotest.run "faults"
    [ ("plane", suite_plane); ("net", suite_net); ("tcpish", suite_tcpish);
      ("recovery", suite_recovery); ("chaos", suite_chaos) ]
