(* The overload-control plane, unit by unit: KDC admission control
   (busy + retry-after, class thresholds, brownout, deadline shedding at
   the queue head, suspect demotion) and client storm hygiene (circuit
   breaker state machine, retry-budget exhaustion, honored retry-after
   hints). The metastable-failure campaign itself lives in
   `experiments overload` / bench --overload-smoke; these tests pin the
   mechanisms it composes. *)

open Kerberos

let realm = "ATHENA"
let quad = Sim.Addr.of_quad

(* Pa_preauth on every AS_REQ: the "expensive work" shape brownout sheds
   first. *)
let preauth_profile =
  { Profile.v5_draft3 with Profile.name = "v5-draft3+preauth"; preauth = true }

type bed = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  profile : Profile.t;
}

(* A KDC under admission control, [n_users] principals (pw "pw<i>"), one
   registered service. Per-test knobs pick the queue geometry; the
   service clock is deliberately slow so tests can park requests in the
   queue and probe the policy at known depths. *)
let mk ?(profile = Profile.v5_draft3) ~admission ?(n_users = 16) () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 0 0 1 ] () in
  Sim.Net.attach net kdc_host;
  let db = Kdb.create () in
  let rng = Util.Rng.create 0x0eadL in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_service db
    (Principal.service ~realm "fs" ~host:"h")
    ~key:(Crypto.Des.random_key rng);
  for i = 0 to n_users - 1 do
    Kdb.add_user db
      (Principal.user ~realm (Printf.sprintf "u%d" i))
      ~password:(Printf.sprintf "pw%d" i)
  done;
  let kdc = Kdc.create ~realm ~profile ~lifetime:3600.0 ~admission db in
  Kdc.install net kdc_host kdc ();
  { eng; net; kdc; kdc_host; profile }

let fs = Principal.service ~realm "fs" ~host:"h"

(* One workstation per client so each has its own source address — the
   suspect tracker keys on it. *)
let ws b i =
  let h =
    Sim.Host.create ~name:(Printf.sprintf "ws%d" i) ~ips:[ quad 10 0 1 i ] ()
  in
  Sim.Net.attach b.net h;
  h

let plain_client ?(timeout = 30.0) b i =
  Client.create ~seed:(Int64.of_int (100 + i)) ~kdc_timeout:timeout
    ~kdc_retries:0 b.net (ws b i) ~profile:b.profile
    ~kdcs:[ (realm, Sim.Host.primary_ip b.kdc_host) ]
    (Principal.user ~realm (Printf.sprintf "u%d" i))

let pw i = Printf.sprintf "pw%d" i

let is_busy_error e = Astring.String.is_infix ~affix:"busy" e

(* The accounting identity every test closes with: nothing vanishes. *)
let check_no_silent_drops b =
  Alcotest.(check int) "no silent drops"
    (Kdc.admission_arrived b.kdc)
    (Kdc.admission_processed b.kdc + Kdc.busy_rejections b.kdc
    + Kdc.brownout_sheds b.kdc + Kdc.deadline_sheds b.kdc
    + Kdc.admission_queue_depth b.kdc);
  Alcotest.(check int) "queue drained" 0 (Kdc.admission_queue_depth b.kdc)

(* ------------------------------------------------------------------ *)
(* KDC admission                                                       *)
(* ------------------------------------------------------------------ *)

(* The retry-after hint survives its trip through the error text. *)
let busy_text_roundtrip () =
  Alcotest.(check (option (float 1e-9)))
    "hint round-trips" (Some 0.25)
    (Messages.retry_after_of_text (Messages.busy_text ~retry_after:0.25));
  Alcotest.(check (option (float 1e-9)))
    "ordinary error text carries no hint" None
    (Messages.retry_after_of_text "no such principal")

(* Past the queue bound a login is answered KRB_ERR_BUSY with a
   parseable retry-after — counted, never silently dropped. *)
let busy_shed_with_hint () =
  let b =
    mk
      ~admission:
        { Kdc.queue_limit = 4; base_service_time = 1.0; brownout_at = 0;
          suspect_rate = max_int; classes = true }
      ()
  in
  (* Norm threshold is 3/4 of 4 = 3: of ten simultaneous logins, one is
     in service, three queue, six shed (the in-service request has left
     the queue, so depth counts the waiters only). *)
  let oks = ref 0 and busy = ref [] in
  for i = 0 to 9 do
    let c = plain_client b i in
    Client.login c ~password:(pw i) (function
      | Ok _ -> incr oks
      | Error e -> busy := e :: !busy)
  done;
  Sim.Engine.run b.eng;
  Alcotest.(check int) "one serving + three queued served" 4 !oks;
  Alcotest.(check int) "six shed" 6 (List.length !busy);
  Alcotest.(check int) "sheds counted" 6 (Kdc.busy_rejections b.kdc);
  List.iter
    (fun e ->
      Alcotest.(check bool) "error names the condition" true (is_busy_error e);
      match Messages.retry_after_of_text e with
      | Some hint ->
          Alcotest.(check bool)
            (Printf.sprintf "hint positive and clamped (%.3f)" hint)
            true
            (hint > 0.0 && hint <= 30.0)
      | None -> Alcotest.failf "busy error carries no retry-after: %S" e)
    !busy;
  check_no_silent_drops b

(* Strict-priority classes: at a depth where a fresh AS_REQ sheds, a TGS
   exchange from a TGT holder still queues — renewals stay alive. *)
let class_thresholds () =
  let b =
    mk
      ~admission:
        { Kdc.queue_limit = 8; base_service_time = 1.0; brownout_at = 0;
          suspect_rate = max_int; classes = true }
      ()
  in
  (* Client 0 logs in while the queue is empty. *)
  let holder = plain_client b 0 in
  let tgt = ref false in
  Client.login holder ~password:(pw 0) (fun r -> tgt := Result.is_ok r);
  Sim.Engine.run b.eng;
  Alcotest.(check bool) "TGT acquired" true !tgt;
  (* The first run drains every scheduled timer, so rebase on the
     engine's clock. Seven fresh logins put one in service and six in
     the queue — the Norm threshold (6 = 3/4 of 8); an eighth sheds; the
     TGT holder's TGS request rides the High class into the two slots
     the Norm class cannot use. *)
  let t0 = Sim.Engine.now b.eng in
  let oks = ref 0 and shed = ref [] and ticket = ref None in
  for i = 1 to 7 do
    let c = plain_client b i in
    Sim.Engine.schedule b.eng ~at:(t0 +. 10.0) (fun () ->
        Client.login c ~password:(pw i) (function
          | Ok _ -> incr oks
          | Error e -> shed := e :: !shed))
  done;
  Sim.Engine.schedule b.eng ~at:(t0 +. 10.1) (fun () ->
      let c = plain_client b 8 in
      Client.login c ~password:(pw 8) (function
        | Ok _ -> incr oks
        | Error e -> shed := e :: !shed);
      Client.get_ticket holder ~service:fs (fun r -> ticket := Some r));
  Sim.Engine.run b.eng;
  Alcotest.(check int) "seven fresh logins served" 7 !oks;
  Alcotest.(check int) "the eighth shed" 1 (List.length !shed);
  Alcotest.(check bool) "shed as busy" true (is_busy_error (List.hd !shed));
  (match !ticket with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "TGS under pressure failed: %s" e
  | None -> Alcotest.fail "TGS under pressure stalled");
  check_no_silent_drops b

(* Brownout: when the queue is merely deep (not full), expensive work —
   a preauth-carrying AS_REQ — sheds while cheap TGS work still
   queues. *)
let brownout_sheds_expensive () =
  let b =
    mk ~profile:preauth_profile
      ~admission:
        { Kdc.queue_limit = 16; base_service_time = 1.0; brownout_at = 2;
          suspect_rate = max_int; classes = true }
      ()
  in
  let holder = plain_client b 0 in
  let tgt = ref false in
  Client.login holder ~password:(pw 0) (fun r -> tgt := Result.is_ok r);
  Sim.Engine.run b.eng;
  Alcotest.(check bool) "TGT acquired before the rush" true !tgt;
  (* Three TGS requests put one in service and two in the queue —
     exactly brownout_at = 2, far below every class threshold. *)
  let t0 = Sim.Engine.now b.eng in
  let tickets = ref 0 and login_err = ref None in
  Sim.Engine.schedule b.eng ~at:(t0 +. 10.0) (fun () ->
      for _ = 1 to 3 do
        Client.get_ticket holder ~service:fs (fun r ->
            if Result.is_ok r then incr tickets)
      done);
  Sim.Engine.schedule b.eng ~at:(t0 +. 10.1) (fun () ->
      (* Depth 2 >= brownout_at: the preauth login sheds... *)
      let c = plain_client b 1 in
      Client.login c ~password:(pw 1) (function
        | Ok _ -> ()
        | Error e -> login_err := Some e);
      (* ...while a fourth (cheap) TGS request queues behind the
         others. *)
      Client.get_ticket holder ~service:fs (fun r ->
          if Result.is_ok r then incr tickets));
  Sim.Engine.run b.eng;
  Alcotest.(check int) "cheap TGS work all served" 4 !tickets;
  (match !login_err with
  | Some e ->
      Alcotest.(check bool) "expensive login shed as busy" true (is_busy_error e)
  | None -> Alcotest.fail "expensive login was not shed");
  Alcotest.(check int) "brownout counted" 1 (Kdc.brownout_sheds b.kdc);
  Alcotest.(check int) "no hard busy sheds" 0 (Kdc.busy_rejections b.kdc);
  check_no_silent_drops b

(* Deadline propagation: a queued request whose caller has given up is
   shed at the queue head — traced and counted, with no reply sent. *)
let deadline_shed_at_head () =
  let b =
    mk
      ~admission:
        { Kdc.queue_limit = 8; base_service_time = 2.0; brownout_at = 0;
          suspect_rate = max_int; classes = true }
      ()
  in
  (* Client 0's login occupies the server for 2 s. Client 1 stamps a 1 s
     deadline: by the time the drain loop reaches its request the caller
     has moved on, so the KDC sheds it instead of doing dead work. *)
  let first = ref None and second = ref None in
  let c0 = plain_client b 0 in
  Client.login c0 ~password:(pw 0) (fun r -> first := Some r);
  Sim.Engine.schedule b.eng ~at:0.05 (fun () ->
      let c1 =
        Client.create ~seed:201L ~kdc_timeout:1.0 ~kdc_retries:0
          ~kdc_deadline:1.0 b.net (ws b 1) ~profile:b.profile
          ~kdcs:[ (realm, Sim.Host.primary_ip b.kdc_host) ]
          (Principal.user ~realm "u1")
      in
      Client.login c1 ~password:(pw 1) (fun r -> second := Some r));
  Sim.Engine.run b.eng;
  (match !first with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "head-of-line login should succeed");
  (match !second with
  | Some (Error e) ->
      Alcotest.(check bool)
        (Printf.sprintf "caller saw its deadline (%S)" e)
        true
        (Astring.String.is_infix ~affix:"deadline" e
        || Astring.String.is_infix ~affix:"timeout" e)
  | Some (Ok _) -> Alcotest.fail "dead request was answered"
  | None -> Alcotest.fail "deadline login stalled");
  Alcotest.(check int) "shed at the head, counted" 1 (Kdc.deadline_sheds b.kdc);
  Alcotest.(check int) "only the live request was processed" 1
    (Kdc.admission_processed b.kdc);
  check_no_silent_drops b

(* Suspect demotion: a source hammering past [suspect_rate] is demoted
   to the low class (1/4 of the queue) — not refused outright — while a
   polite source keeps its full Norm share. *)
let suspect_demoted_not_refused () =
  let b =
    mk
      ~admission:
        { Kdc.queue_limit = 40; base_service_time = 1.0; brownout_at = 0;
          suspect_rate = 10; classes = true }
      ()
  in
  let hammer_ok = ref 0 and hammer_busy = ref 0 in
  let hammer = plain_client b 0 in
  (* Twelve logins from one address inside a tenth of a second: arrival
     11 crosses the rate but still fits the Low class (depth 9 < 10 =
     40 / 4 — demotion is not refusal); arrival 12 finds the Low share
     full and sheds. *)
  for j = 0 to 11 do
    Sim.Engine.schedule b.eng
      ~at:(0.01 *. float_of_int j)
      (fun () ->
        Client.login hammer ~password:(pw 0) (function
          | Ok _ -> incr hammer_ok
          | Error e ->
              Alcotest.(check bool) "demoted shed is busy" true (is_busy_error e);
              incr hammer_busy))
  done;
  (* The polite source arrives once after the burst: Norm class, depth
     10 < 30 — admitted despite the flood. *)
  let polite = ref None in
  let c1 = plain_client b 1 in
  Sim.Engine.schedule b.eng ~at:0.5 (fun () ->
      Client.login c1 ~password:(pw 1) (fun r -> polite := Some r));
  Sim.Engine.run b.eng;
  Alcotest.(check int) "eleven hammer logins served" 11 !hammer_ok;
  Alcotest.(check int) "suspect overflow shed" 1 !hammer_busy;
  (match !polite with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "polite source must ride the Norm class through");
  check_no_silent_drops b

(* ------------------------------------------------------------------ *)
(* Client storm hygiene                                                *)
(* ------------------------------------------------------------------ *)

(* Count the datagrams the client actually puts on the wire toward the
   KDC port. *)
let count_kdc_sends net counter =
  Sim.Net.set_interceptor net (fun pkt ->
      if pkt.Sim.Packet.dport = Kdc.default_port then incr counter;
      Sim.Net.Deliver)

(* The breaker's full state machine against one dead, then resurrected,
   KDC: closed -> (threshold consecutive timeouts) -> open (requests
   fail without sending) -> half-open probe -> failure re-trips
   immediately -> second probe succeeds -> closed. *)
let breaker_state_machine () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 0 0 1 ] () in
  let wsh = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 1 1 ] () in
  Sim.Net.attach net kdc_host;
  Sim.Net.attach net wsh;
  let db = Kdb.create () in
  let rng = Util.Rng.create 0xb4ea3L in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "u0") ~password:"pw0";
  let kdc =
    Kdc.create ~realm ~profile:Profile.v5_draft3 ~lifetime:3600.0 db
  in
  (* Not installed yet: the KDC address is dark until t = 18. *)
  let sends = ref 0 in
  count_kdc_sends net sends;
  let c =
    Client.create ~seed:301L ~kdc_timeout:1.0 ~kdc_retries:0
      ~breaker_threshold:2 ~breaker_cooldown:5.0 net wsh
      ~profile:Profile.v5_draft3
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "u0")
  in
  let results = ref [] in
  let login_at t =
    Sim.Engine.schedule eng ~at:t (fun () ->
        Client.login c ~password:"pw0" (fun r ->
            results := (t, r, !sends, Client.breaker_trips c) :: !results))
  in
  login_at 0.0;  (* timeout 1: one consecutive failure *)
  login_at 2.0;  (* timeout 2: trips the breaker (open until ~8) *)
  login_at 4.0;  (* open: fails instantly, nothing sent *)
  login_at 10.0; (* half-open probe: sent, times out, re-trips at once *)
  login_at 12.0; (* re-tripped (open until ~16): nothing sent *)
  Sim.Engine.schedule eng ~at:18.0 (fun () -> Kdc.install net kdc_host kdc ());
  login_at 20.0; (* half-open probe against a live KDC: closes *)
  login_at 22.0; (* closed: ordinary exchange *)
  Sim.Engine.run eng;
  let at t =
    match List.find_opt (fun (t', _, _, _) -> t' = t) !results with
    | Some (_, r, s, trips) -> (r, s, trips)
    | None -> Alcotest.failf "login at t=%.0f never resolved" t
  in
  let expect_err t fragment sends_now trips_now =
    let r, s, trips = at t in
    (match r with
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "t=%.0f error %S mentions %S" t e fragment)
          true
          (Astring.String.is_infix ~affix:fragment e)
    | Ok _ -> Alcotest.failf "t=%.0f unexpectedly succeeded" t);
    Alcotest.(check int) (Printf.sprintf "t=%.0f wire sends" t) sends_now s;
    Alcotest.(check int) (Printf.sprintf "t=%.0f trips" t) trips_now trips
  in
  expect_err 0.0 "timeout" 1 0;
  expect_err 2.0 "timeout" 2 1;          (* second failure trips *)
  expect_err 4.0 "circuit-open" 2 1;     (* open: no packet left the host *)
  expect_err 10.0 "timeout" 3 2;         (* probe sent; failure re-trips *)
  expect_err 12.0 "circuit-open" 3 2;
  (match at 20.0 with
  | Ok _, s, trips ->
      Alcotest.(check int) "probe success closes after one wire send" 4 s;
      Alcotest.(check int) "no further trips" 2 trips
  | Error e, _, _ -> Alcotest.failf "t=20 probe against live KDC failed: %s" e);
  (match at 22.0 with
  | Ok _, _, trips -> Alcotest.(check int) "breaker stays closed" 2 trips
  | Error e, _, _ -> Alcotest.failf "t=22 with closed breaker failed: %s" e)

(* Retry-budget exhaustion: with every KDC dark and a two-token bucket,
   the failover walk charges one token per hop and stops when the bucket
   is dry — three addresses tried, the fourth never contacted. *)
let budget_exhaustion_stops_failover () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let wsh = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 1 1 ] () in
  Sim.Net.attach net wsh;
  let kdcs =
    List.init 4 (fun i ->
        let h =
          Sim.Host.create ~name:(Printf.sprintf "kdc%d" i)
            ~ips:[ quad 10 0 0 (i + 1) ] ()
        in
        Sim.Net.attach net h;
        (realm, Sim.Host.primary_ip h))
  in
  let sends = ref 0 in
  count_kdc_sends net sends;
  let c =
    Client.create ~seed:401L ~kdc_timeout:1.0 ~kdc_retries:0 ~retry_budget:2
      net wsh ~profile:Profile.v5_draft3 ~kdcs
      (Principal.user ~realm "u0")
  in
  let result = ref None in
  Client.login c ~password:"pw0" (fun r -> result := Some r);
  Sim.Engine.run eng;
  (match !result with
  | Some (Error e) ->
      Alcotest.(check bool)
        (Printf.sprintf "failure names the dry budget (%S)" e)
        true
        (Astring.String.is_infix ~affix:"budget" e)
  | Some (Ok _) -> Alcotest.fail "no KDC exists to answer"
  | None -> Alcotest.fail "login stalled");
  Alcotest.(check int) "first address free, two budgeted hops" 3 !sends;
  Alcotest.(check int) "exhaustion counted" 1 (Client.budget_exhausted c);
  Alcotest.(check (float 1e-9)) "bucket empty" 0.0 (Client.retry_tokens c)

(* Honoring retry-after: a busy answer becomes a scheduled retry after
   the KDC's own hint, the retry succeeds once the queue drains, and the
   success refills the spent token. *)
let honored_hint_then_refill () =
  let b =
    mk
      ~admission:
        { Kdc.queue_limit = 4; base_service_time = 0.5; brownout_at = 0;
          suspect_rate = max_int; classes = true }
      ()
  in
  (* Four naive logins: one in service, three queued — the Norm
     threshold (3). *)
  let fill_ok = ref 0 in
  for i = 0 to 3 do
    let c = plain_client ~timeout:5.0 b i in
    Client.login c ~password:(pw i) (fun r ->
        if Result.is_ok r then incr fill_ok)
  done;
  (* The hygienic client arrives at depth 3: busy, waits the hinted
     interval, retries into an empty queue. *)
  let result = ref None in
  Sim.Engine.schedule b.eng ~at:0.05 (fun () ->
      let c =
        Client.create ~seed:501L ~kdc_timeout:5.0 ~kdc_retries:0
          ~retry_budget:4 ~honor_retry_after:true b.net (ws b 9)
          ~profile:b.profile
          ~kdcs:[ (realm, Sim.Host.primary_ip b.kdc_host) ]
          (Principal.user ~realm "u9")
      in
      Client.login c ~password:(pw 9) (fun r -> result := Some r);
      Sim.Engine.schedule b.eng ~at:30.0 (fun () ->
          Alcotest.(check int) "one busy answer received" 1
            (Client.busy_received c);
          Alcotest.(check (float 1e-9)) "success refilled the spent token" 4.0
            (Client.retry_tokens c)));
  Sim.Engine.run b.eng;
  Alcotest.(check int) "queue fillers all served" 4 !fill_ok;
  (match !result with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "hint-honoring login failed: %s" e
  | None -> Alcotest.fail "hint-honoring login stalled");
  Alcotest.(check int) "exactly one busy shed at the KDC" 1
    (Kdc.busy_rejections b.kdc);
  check_no_silent_drops b

let () =
  Alcotest.run "overload"
    [ ( "admission",
        [ Alcotest.test_case "busy text round-trip" `Quick busy_text_roundtrip;
          Alcotest.test_case "busy shed carries a hint" `Quick
            busy_shed_with_hint;
          Alcotest.test_case "class thresholds" `Quick class_thresholds;
          Alcotest.test_case "brownout sheds expensive work" `Quick
            brownout_sheds_expensive;
          Alcotest.test_case "deadline shed at the queue head" `Quick
            deadline_shed_at_head;
          Alcotest.test_case "suspect demoted, not refused" `Quick
            suspect_demoted_not_refused ] );
      ( "hygiene",
        [ Alcotest.test_case "breaker state machine" `Quick
            breaker_state_machine;
          Alcotest.test_case "budget exhaustion stops failover" `Quick
            budget_exhaustion_stops_failover;
          Alcotest.test_case "honored retry-after then refill" `Quick
            honored_hint_then_refill ] ) ]
