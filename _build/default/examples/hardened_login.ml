(* Everything the paper recommends, in one login: preauthentication,
   exponential key exchange, a hand-held authenticator, challenge/response
   to the service, a negotiated true session key — and the host-side
   encryption box and networked keystore from the hardware section.

     dune exec examples/hardened_login.exe *)

open Kerberos

let () =
  let profile = Profile.hardened in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine in
  let quad = Sim.Addr.of_quad in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 0 10 ] () in
  let store_host = Sim.Host.create ~name:"keysafe" ~ips:[ quad 10 0 0 30 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; store_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 7L in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm:"ATHENA" "pat") ~password:"pat.secret.9";
  let ks_principal = Principal.service ~realm:"ATHENA" "keystore" ~host:"keysafe" in
  let ks_key = Crypto.Des.random_key rng in
  Kdb.add_service db ks_principal ~key:ks_key;
  let kdc = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  let keystore =
    Hardened.Keystore.install net store_host ~profile ~principal:ks_principal
      ~key:ks_key ~port:751
  in

  (* The user's hand-held device, enrolled offline. The login program never
     sees the password at all in this flow. *)
  let device = Hardened.Handheld.enroll ~password:"pat.secret.9" in

  let pat =
    Client.create net ws ~profile
      ~kdcs:[ ("ATHENA", Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Client.login pat ~handheld:(Hardened.Handheld.respond device) ~password:"pat.secret.9"
    (function
    | Error e -> failwith ("login: " ^ e)
    | Ok _ ->
        Printf.printf "login ok: preauth + DH + {R}Kc wrapping; device used %d time(s)\n"
          (Hardened.Handheld.responses_issued device);
        Client.get_ticket pat ~service:ks_principal (function
          | Error e -> failwith ("ticket: " ^ e)
          | Ok creds ->
              Client.ap_exchange pat creds ~dst:(Sim.Host.primary_ip store_host)
                ~dport:751 (function
                | Error e -> failwith ("ap: " ^ e)
                | Ok chan ->
                    print_endline
                      "challenge/response AP exchange done; true session key negotiated";
                    (* Park a secondary instance key in the keystore, fetched
                       from its random-number service — the paper's answer to
                       workstations being "not particularly good sources of
                       random keys". *)
                    Hardened.Keystore.fresh_key pat chan ~k:(function
                      | Error e -> failwith e
                      | Ok new_key ->
                          Printf.printf "keystore minted an instance key: %s\n"
                            (Util.Bytesutil.to_hex new_key);
                          Hardened.Keystore.put pat chan ~label:"pat.email" new_key
                            ~k:(function
                            | Error e -> failwith e
                            | Ok () ->
                                Hardened.Keystore.get pat chan ~label:"pat.email"
                                  ~k:(function
                                  | Error e -> failwith e
                                  | Ok back ->
                                      Printf.printf
                                        "fetched it back over KRB_PRIV: %s\n"
                                        (Util.Bytesutil.to_hex back)))))));
  Sim.Engine.run engine;
  Printf.printf "keystore now holds %d blob(s)\n" (Hardened.Keystore.stored_count keystore);

  (* The encryption box, host side: absorb a reply without ever exposing
     the session key to host memory. *)
  print_endline "";
  print_endline "encryption-box invariants (E15):";
  List.iter
    (fun (c, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") c)
    (Expframework.Hardware_check.run ())
