(* Ticket forwarding, the paper's way: no flag bits, just a secure copy of
   the credentials — and a demonstration of why V4's address-bound tickets
   made forwarding need "a special-purpose ticket-forwarder ... of
   necessity awkward".

     dune exec examples/forwarding.exe *)

open Kerberos

let run_for profile_label (profile : Profile.t) =
  Printf.printf "--- %s ---\n" profile_label;
  let bed = Attacks.Testbed.make ~profile () in
  let dest = Sim.Host.create ~name:"devbox" ~ips:[ Sim.Addr.of_quad 10 0 0 70 ] () in
  Sim.Net.attach bed.net dest;
  let fwd_principal = Principal.service ~realm:"ATHENA" "fwd" ~host:"devbox" in
  let fwd_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db fwd_principal ~key:fwd_key;
  let _daemon =
    Services.Forwarder.install bed.net dest ~profile ~principal:fwd_principal
      ~key:fwd_key ~port:754
  in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/todo"
    (Bytes.of_string "finish the build");
  (* pat, on the workstation, ships the TGT to devbox over KRB_PRIV. *)
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      let tgt = Attacks.Testbed.expect "login" r in
      Client.get_ticket bed.victim ~service:fwd_principal (fun r ->
          let creds = Attacks.Testbed.expect "ticket" r in
          Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip dest)
            ~dport:754 (fun r ->
              let chan = Attacks.Testbed.expect "ap" r in
              Services.Forwarder.forward_credentials bed.victim chan tgt
                ~k:(fun r -> ignore (Attacks.Testbed.expect "forward" r)))));
  Attacks.Testbed.run bed;
  print_endline "credentials shipped to devbox over an authenticated, sealed channel";
  (* A session on devbox picks them up and tries to work. *)
  let pat_principal = Principal.user ~realm:"ATHENA" "pat" in
  match Services.Forwarder.pick_up dest ~principal:pat_principal with
  | None -> print_endline "nothing arrived?"
  | Some moved ->
      let remote = Client.create ~seed:81L bed.net dest ~profile
          ~kdcs:[ ("ATHENA", Attacks.Testbed.kdc_addr bed) ] pat_principal
      in
      Client.adopt_tgt remote moved;
      let outcome = ref "stalled" in
      Client.get_ticket remote ~service:bed.file_principal (fun r ->
          match r with
          | Error e -> outcome := "refused at the TGS: " ^ e
          | Ok svc ->
              Client.ap_exchange remote svc ~dst:(Sim.Host.primary_ip bed.file_host)
                ~dport:bed.file_port (fun r ->
                  match r with
                  | Error e -> outcome := "refused at the server: " ^ e
                  | Ok chan ->
                      Client.call_priv remote chan (Bytes.of_string "READ /u/pat/todo")
                        ~k:(fun r ->
                          match r with
                          | Ok data ->
                              outcome :=
                                Printf.sprintf "worked from devbox: read %S"
                                  (Bytes.to_string data)
                          | Error e -> outcome := "priv failed: " ^ e)));
      Attacks.Testbed.run bed;
      Printf.printf "using the forwarded TGT from devbox: %s\n\n" !outcome

let () =
  print_endline "Forwarding credentials between hosts (Scope of Tickets):";
  print_endline "";
  run_for "V4 (tickets bound to the originating address)" Profile.v4;
  run_for "V5-draft3 (no address in tickets)"
    { Profile.v5_draft3 with Profile.allow_forwarding = false };
  print_endline
    "The V5 case needed no forwarded flag, no new protocol: \"all that is\n\
     necessary ... is a secure mechanism for copying the multi-session key\n\
     to the new host.\" The V4 case shows why the address binding had to go."
