(* The paper's signature scenario, narrated: "an intruder may simply watch
   for a mail-checking session ... A number of valuable tickets would be
   exposed by such a session."

     dune exec examples/mail_replay.exe

   Runs the mail-check + replay attack against V4 (succeeds) and against
   the hardened challenge/response profile (fails), printing what the
   adversary saw and did. *)

open Kerberos

let narrate profile_name (r : Attacks.Replay_auth.result) =
  Printf.printf "--- %s ---\n" profile_name;
  Printf.printf "victim's mail-check session completed: %d honest session(s)\n"
    r.honest_sessions;
  Printf.printf "adversary captured the AP_REQ off the wire and replayed it %.0fs later\n"
    r.replay_delay;
  Printf.printf "server skew window: %.0f s\n" r.skew;
  if r.accepted then
    Printf.printf
      "=> the mail server accepted the replay: %d sessions now attributed to the victim\n\n"
      r.total_sessions
  else Printf.printf "=> the replay was rejected\n\n"

let () =
  print_endline "E1: replay of a live authenticator from a mail-check session";
  print_endline "";
  narrate "Kerberos V4 (timestamps, no replay cache)"
    (Attacks.Replay_auth.run ~profile:Profile.v4 ());
  narrate "V4 + server-side replay cache"
    (Attacks.Replay_auth.run
       ~profile:
         { Profile.v4 with
           Profile.name = "v4+cache";
           ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
       ());
  narrate "hardened (challenge/response, recommendation a)"
    (Attacks.Replay_auth.run ~profile:Profile.hardened ());
  print_endline
    "The paper's conclusion: caching live authenticators helps, but\n\
     challenge/response removes the replay window altogether — at the cost\n\
     of an extra message pair and per-connection server state."
