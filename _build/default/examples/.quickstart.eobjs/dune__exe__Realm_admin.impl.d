examples/realm_admin.ml: Client Crypto Kdb Kdc Kerberos List Principal Printf Profile Result Services Sim Util
