examples/password_crack.ml: Attacks Kerberos List Printf Profile
