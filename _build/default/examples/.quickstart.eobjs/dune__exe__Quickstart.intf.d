examples/quickstart.mli:
