examples/cross_realm.ml: Apserver Attacks Bytes Client Crypto Kdb Kdc Kerberos List Principal Printf Profile Sim Util
