examples/hardened_login.ml: Client Crypto Expframework Hardened Kdb Kdc Kerberos List Principal Printf Profile Sim Util
