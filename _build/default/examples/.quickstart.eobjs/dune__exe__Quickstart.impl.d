examples/quickstart.ml: Bytes Client Crypto Kdb Kdc Kerberos List Principal Printf Profile Services Sim Util
