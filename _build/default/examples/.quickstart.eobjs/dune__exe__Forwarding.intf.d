examples/forwarding.mli:
