examples/mail_replay.mli:
