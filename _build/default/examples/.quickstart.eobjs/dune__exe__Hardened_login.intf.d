examples/hardened_login.mli:
