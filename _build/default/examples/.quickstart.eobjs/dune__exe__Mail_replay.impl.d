examples/mail_replay.ml: Attacks Kerberos Printf Profile
