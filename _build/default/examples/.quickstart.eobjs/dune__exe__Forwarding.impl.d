examples/forwarding.ml: Attacks Bytes Client Crypto Kdb Kerberos Principal Printf Profile Services Sim
