examples/cross_realm.mli:
