examples/password_crack.mli:
