examples/realm_admin.mli:
