(* The wiretapper's dictionary attack (E3): record a population's login
   dialogs, then crack them offline — "the network equivalent of
   /etc/passwd".

     dune exec examples/password_crack.exe *)

open Kerberos

let report name (r : Attacks.Password_guess.result) =
  Printf.printf "--- %s ---\n" name;
  Printf.printf "population: %d users (%d chose weak passwords)\n" r.population
    r.weak_users;
  Printf.printf "login replies recorded off the wire: %d\n" r.replies_recorded;
  Printf.printf "dictionary entries tested: %d\n" r.guesses_tried;
  (match r.cracked with
  | [] -> print_endline "passwords recovered: none"
  | l ->
      Printf.printf "passwords recovered: %d\n" (List.length l);
      List.iter (fun (u, pw) -> Printf.printf "  %-6s -> %S\n" u pw) l);
  print_endline ""

let () =
  print_endline "E3: offline password guessing from recorded AS exchanges";
  print_endline "";
  report "Kerberos V4"
    (Attacks.Password_guess.run ~n_users:20 ~weak_fraction:0.5 ~dictionary_head:250
       ~profile:Profile.v4 ());
  report "hardened (exponential key exchange, recommendation h)"
    (Attacks.Password_guess.run ~n_users:20 ~weak_fraction:0.5 ~dictionary_head:250
       ~profile:Profile.hardened ());
  print_endline
    "With the DH layer a passive wiretapper cannot confirm guesses: the\n\
     reply is sealed under a key mixing Kc with the exchange secret. An\n\
     ACTIVE attacker can still ask the KDC directly (see E4 / ticket\n\
     harvesting) — which is why the paper also wants preauthentication."
