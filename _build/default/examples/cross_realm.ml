(* Inter-realm authentication (and its fragility): a user of realm ATHENA
   reaches a database service in realm LEAF through the intermediate realm
   ENG, hierarchically. Then the compromised intermediate forges a path.

     dune exec examples/cross_realm.exe *)

open Kerberos

let () =
  let profile = Profile.v5_draft3 in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create engine in
  let quad = Sim.Addr.of_quad in
  let mk name ip = Sim.Host.create ~name ~ips:[ ip ] () in
  let kdc_a = mk "kdc-athena" (quad 10 0 0 1) in
  let kdc_e = mk "kdc-eng" (quad 10 1 0 1) in
  let kdc_l = mk "kdc-leaf" (quad 10 2 0 1) in
  let ws = mk "ws" (quad 10 0 0 10) in
  let srv = mk "leafdb" (quad 10 2 0 20) in
  List.iter (Sim.Net.attach net) [ kdc_a; kdc_e; kdc_l; ws; srv ];
  let rng = Util.Rng.create 99L in
  let db_a = Kdb.create () and db_e = Kdb.create () and db_l = Kdb.create () in
  List.iter
    (fun (db, realm) ->
      Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng))
    [ (db_a, "ATHENA"); (db_e, "ENG"); (db_l, "LEAF") ];
  Kdb.add_user db_a (Principal.user ~realm:"ATHENA" "pat") ~password:"pw.of.pat";
  (* Cross-realm keys along the hierarchy: ATHENA<->ENG, ENG<->LEAF. *)
  let k_ae = Crypto.Des.random_key rng and k_el = Crypto.Des.random_key rng in
  Kdb.add_cross_realm db_a (Principal.cross_realm_tgs ~local:"ATHENA" ~remote:"ENG") ~key:k_ae;
  Kdb.add_cross_realm db_e (Principal.cross_realm_tgs ~local:"ATHENA" ~remote:"ENG") ~key:k_ae;
  Kdb.add_cross_realm db_e (Principal.cross_realm_tgs ~local:"ENG" ~remote:"LEAF") ~key:k_el;
  Kdb.add_cross_realm db_l (Principal.cross_realm_tgs ~local:"ENG" ~remote:"LEAF") ~key:k_el;
  let svc = Principal.service ~realm:"LEAF" "db" ~host:"leafdb" in
  let svc_key = Crypto.Des.random_key rng in
  Kdb.add_service db_l svc ~key:svc_key;
  let kdc_athena = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:3600.0 db_a in
  let kdc_eng = Kdc.create ~realm:"ENG" ~profile ~lifetime:3600.0 db_e in
  let kdc_leaf = Kdc.create ~realm:"LEAF" ~profile ~lifetime:3600.0 db_l in
  (* Static routing tables — the paper asks where these come from and how
     they could be authenticated; here they are just config. *)
  Kdc.add_realm_route kdc_athena ~remote:"LEAF" ~next_hop:"ENG";
  Kdc.add_realm_route kdc_athena ~remote:"ENG" ~next_hop:"ENG";
  Kdc.add_realm_route kdc_eng ~remote:"LEAF" ~next_hop:"LEAF";
  Kdc.install net kdc_a kdc_athena ();
  Kdc.install net kdc_e kdc_eng ();
  Kdc.install net kdc_l kdc_leaf ();
  let _ap =
    Apserver.install net srv ~profile
      ~config:{ Apserver.default_config with trusted_transit = [ "ATHENA"; "ENG" ] }
      ~principal:svc ~key:svc_key ~port:700
      ~handler:(fun _ ~client data ->
        Some
          (Bytes.of_string
             (Printf.sprintf "row for %s: %s" (Principal.to_string client)
                (Bytes.to_string data))))
      ()
  in
  let pat =
    Client.create net ws ~profile
      ~kdcs:
        [ ("ATHENA", Sim.Host.primary_ip kdc_a); ("ENG", Sim.Host.primary_ip kdc_e);
          ("LEAF", Sim.Host.primary_ip kdc_l) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Client.login pat ~password:"pw.of.pat" (function
    | Error e -> failwith e
    | Ok _ ->
        print_endline "pat@ATHENA logged in; asking for db@LEAF (two TGS hops away)";
        Client.get_ticket pat ~service:svc (function
          | Error e -> failwith ("cross-realm ticket: " ^ e)
          | Ok creds ->
              print_endline "ticket obtained via ATHENA -> ENG -> LEAF referrals";
              Client.ap_exchange pat creds ~dst:(Sim.Host.primary_ip srv) ~dport:700
                (function
                | Error e -> failwith ("ap: " ^ e)
                | Ok chan ->
                    Client.call_priv pat chan (Bytes.of_string "SELECT 1") ~k:(function
                      | Error e -> failwith e
                      | Ok data -> Printf.printf "reply: %s\n" (Bytes.to_string data)))));
  Sim.Engine.run engine;
  print_endline "";
  print_endline "Now the dark side: ENG is compromised (E9).";
  let r = Attacks.Realm_spoof.run ~profile () in
  Printf.printf "transit forgery accepted by a server trusting only ATHENA: %b\n"
    r.transit_forgery_accepted;
  Printf.printf "same forgery with key-based transit verification at the KDC: %b\n"
    r.transit_forgery_with_verification
