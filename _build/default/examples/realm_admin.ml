(* Running a realm, not just using one: a master KDC, a slave KDC kept
   fresh by kprop, and a kpasswd service enforcing the password policy the
   paper's guessing attacks motivate.

     dune exec examples/realm_admin.exe *)

open Kerberos

let realm = "ATHENA"

let () =
  let profile = Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let master_host = Sim.Host.create ~name:"kerberos-1" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kerberos-2" ~ips:[ quad 10 0 0 3 ] () in
  let adm_host = Sim.Host.create ~name:"adm" ~ips:[ quad 10 0 0 5 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 0 0 10 ] () in
  List.iter (Sim.Net.attach net) [ master_host; slave_host; adm_host; ws ];
  let rng = Util.Rng.create 2026L in
  let master_db = Kdb.create () in
  Kdb.add_service master_db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user master_db (Principal.user ~realm "pat") ~password:"purple"; (* oh no *)
  let admin_p = Principal.user ~realm "kadmin" in
  Kdb.add_user master_db admin_p ~password:"kadmin.secret.1";
  let kpropd_p = Principal.service ~realm "kprop" ~host:"kerberos-2" in
  let kpropd_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpropd_p ~key:kpropd_key;
  let kpw_p = Principal.service ~realm "kpasswd" ~host:"adm" in
  let kpw_key = Crypto.Des.random_key rng in
  Kdb.add_service master_db kpw_p ~key:kpw_key;
  let master = Kdc.create ~realm ~profile ~lifetime:28800.0 master_db in
  Kdc.install net master_host master ();
  let slave_db = Kdb.create () in
  let slave = Kdc.create ~realm ~profile ~lifetime:28800.0 slave_db in
  Kdc.install net slave_host slave ();
  let kpropd =
    Services.Kprop.install_slave net slave_host ~profile ~principal:kpropd_p
      ~key:kpropd_key ~port:754 ~master:admin_p ~slave_db
  in
  let kpw =
    Services.Kpasswd.install net adm_host ~profile ~principal:kpw_p ~key:kpw_key
      ~port:464 ~db:master_db
  in
  let kdcs_master = [ (realm, Sim.Host.primary_ip master_host) ] in
  let kdcs_slave = [ (realm, Sim.Host.primary_ip slave_host) ] in
  (* 1. Propagate the database so the slave can serve. *)
  let admin = Client.create ~seed:1L net master_host ~profile ~kdcs:kdcs_master admin_p in
  Client.login admin ~password:"kadmin.secret.1" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket admin ~service:kpropd_p (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host)
            ~dport:754 (fun r ->
              let chan = Result.get_ok r in
              Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
                  ignore (Result.get_ok r);
                  Printf.printf "kprop: pushed %d principals to the slave\n"
                    (Kdb.size slave_db)))));
  Sim.Engine.run eng;
  (* 2. pat logs in against the slave (the master could be down). *)
  let pat = Client.create ~seed:2L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat") in
  Client.login pat ~password:"purple" (fun r ->
      ignore (Result.get_ok r);
      print_endline "pat authenticated against the SLAVE KDC");
  Sim.Engine.run eng;
  (* 3. pat's password is a dictionary word; the kpasswd policy forces a
     better one (the "unless forced to" of the paper's empirics). *)
  let pat_m = Client.create ~seed:3L net ws ~profile ~kdcs:kdcs_master (Principal.user ~realm "pat") in
  Client.login pat_m ~password:"purple" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket pat_m ~service:kpw_p (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange pat_m creds ~dst:(Sim.Host.primary_ip adm_host) ~dport:464
            (fun r ->
              let chan = Result.get_ok r in
              Services.Kpasswd.change_password pat_m chan ~new_password:"purple2"
                ~k:(fun r ->
                  (match r with
                  | Error e -> Printf.printf "kpasswd refused 'purple2': %s\n" e
                  | Ok () -> print_endline "?! policy let a decorated word through");
                  Services.Kpasswd.change_password pat_m chan
                    ~new_password:"brass.kettle.41" ~k:(fun r ->
                      ignore (Result.get_ok r);
                      print_endline "kpasswd accepted 'brass.kettle.41'")))));
  Sim.Engine.run eng;
  (* 4. Push again so the slave learns the new key. *)
  Client.get_ticket admin ~service:kpropd_p (fun r ->
      let creds = Result.get_ok r in
      Client.ap_exchange admin creds ~dst:(Sim.Host.primary_ip slave_host) ~dport:754
        (fun r ->
          let chan = Result.get_ok r in
          Services.Kprop.propagate admin chan ~db:master_db ~k:(fun r ->
              ignore (Result.get_ok r);
              print_endline "kprop: second push (new key now on the slave)")));
  Sim.Engine.run eng;
  let check = Client.create ~seed:4L net ws ~profile ~kdcs:kdcs_slave (Principal.user ~realm "pat") in
  Client.login check ~password:"brass.kettle.41" (fun r ->
      match r with
      | Ok _ -> print_endline "pat's NEW password works against the slave"
      | Error e -> Printf.printf "unexpected: %s\n" e);
  Sim.Engine.run eng;
  Printf.printf "propagations received: %d; password changes: %d applied, %d refused\n"
    (Services.Kprop.propagations_received kpropd)
    (Services.Kpasswd.changes_applied kpw)
    (Services.Kpasswd.changes_refused kpw)
