(* A narrated run of one complete Kerberos conversation on the simulator:
   login (AS), ticket acquisition (TGS), authentication to a file server
   (AP), and a sealed request — with the full packet trace printed. *)

open Kerberos

let () =
  let profile =
    match Sys.argv with
    | [| _; "v4" |] | [| _ |] -> Profile.v4
    | [| _; "v5" |] -> Profile.v5_draft3
    | [| _; "hardened" |] -> Profile.hardened
    | _ ->
        prerr_endline "usage: kdc_demo [v4|v5|hardened]";
        exit 2
  in
  Printf.printf "Profile: %s\n\n" profile.Profile.name;
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws-pat" ~ips:[ quad 10 0 0 10 ] () in
  let fs = Sim.Host.create ~name:"fs1" ~ips:[ quad 10 0 0 21 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; fs ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 2025L in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm:"ATHENA" "pat") ~password:"quietly9.flows";
  let fsp = Principal.service ~realm:"ATHENA" "fileserv" ~host:"fs1" in
  let fsk = Crypto.Des.random_key rng in
  Kdb.add_service db fsp ~key:fsk;
  let kdc = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  let file = Services.Fileserver.install net fs ~profile ~principal:fsp ~key:fsk ~port:600 in
  Services.Fileserver.write_file file ~owner:"pat@ATHENA" ~path:"/u/pat/notes"
    (Bytes.of_string "remember the milk");
  let client =
    Client.create net ws ~profile
      ~kdcs:[ ("ATHENA", Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Sim.Net.note net "pat types their password at the workstation";
  Client.login client ~password:"quietly9.flows" (fun r ->
      match r with
      | Error e -> Printf.printf "login failed: %s\n" e
      | Ok _ ->
          Sim.Net.note net "TGT obtained; asking the TGS for a file-server ticket";
          Client.get_ticket client ~service:fsp (fun r ->
              match r with
              | Error e -> Printf.printf "ticket failed: %s\n" e
              | Ok creds ->
                  Sim.Net.note net "service ticket in hand; authenticating to fs1";
                  Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip fs)
                    ~dport:600 (fun r ->
                      match r with
                      | Error e -> Printf.printf "AP exchange failed: %s\n" e
                      | Ok chan ->
                          Sim.Net.note net "session up; sealed READ request";
                          Client.call_priv client chan
                            (Bytes.of_string "READ /u/pat/notes") ~k:(fun r ->
                              match r with
                              | Ok data ->
                                  Sim.Net.note net
                                    (Printf.sprintf "file contents received: %S"
                                       (Bytes.to_string data))
                              | Error e -> Printf.printf "priv failed: %s\n" e))));
  Sim.Engine.run eng;
  print_endline "Packet trace:";
  List.iter
    (fun ev -> Format.printf "  %a@." Sim.Net.pp_event ev)
    (Sim.Net.events net)
