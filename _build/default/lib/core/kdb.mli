(** The KDC's principal database. "Kerberos is secure if and only if it can
    protect other clients and servers, beginning only with the premise that
    these client and server keys are secret." This module holds those keys.

    The database is itself an experiment surface: the paper notes that
    without preauthentication "the Kerberos equivalent of /etc/passwd must
    be treated as public" — the database contents are what the
    password-guessing attacks try to reconstruct. *)

type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

type t

val create : unit -> t
val add_user : t -> Principal.t -> password:string -> unit
(** Stores the password-derived key (the KDC never keeps the password). *)

val add_service : t -> Principal.t -> key:bytes -> unit
val add_cross_realm : t -> Principal.t -> key:bytes -> unit
val lookup : t -> Principal.t -> entry option
val principals : t -> Principal.t list

val to_bytes : t -> bytes
(** Serialize the whole database — the payload of master→slave propagation
    (and precisely the blob whose theft equals total compromise, which is
    why kprop runs over [KRB_PRIV] and the master "must [have] strong
    physical security"). *)

val of_bytes : bytes -> t
(** @raise Wire.Codec.Decode_error *)

val replace_from : t -> t -> unit
(** [replace_from dst src] atomically swaps [dst]'s contents for [src]'s —
    the slave side of a propagation. *)

val size : t -> int

