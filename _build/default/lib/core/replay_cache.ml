type t = { horizon : float; entries : (string, float) Hashtbl.t }

let create ~horizon = { horizon; entries = Hashtbl.create 64 }

type verdict = Fresh | Replayed

let purge t ~now =
  let stale =
    Hashtbl.fold (fun k exp acc -> if exp < now then k :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

let check_and_insert t ~now blob =
  purge t ~now;
  let key = Crypto.Md4.hex_digest blob in
  match Hashtbl.find_opt t.entries key with
  | Some _ -> Replayed
  | None ->
      Hashtbl.replace t.entries key (now +. t.horizon);
      Fresh

let size t = Hashtbl.length t.entries
