type scheme = Pcbc_raw | Cbc_confounder of Crypto.Checksum.kind

let of_profile (p : Profile.t) =
  match p.encoding with
  | Wire.Encoding.V4_adhoc -> Pcbc_raw
  | Wire.Encoding.Der_typed -> Cbc_confounder p.checksum

let seal scheme rng ~key plaintext =
  let k = Crypto.Des.schedule (Crypto.Des.fix_parity key) in
  match scheme with
  | Pcbc_raw ->
      let buf = Crypto.Mode.pad plaintext in
      Crypto.Mode.pcbc_encrypt_into k ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
      buf
  | Cbc_confounder kind ->
      let confounder = Util.Rng.bytes rng 8 in
      let cksum_size = Crypto.Checksum.size kind in
      (* Checksum is computed over the message with the checksum field
         zeroed, then spliced in. *)
      let body =
        Bytes.concat Bytes.empty [ confounder; Bytes.make cksum_size '\000'; plaintext ]
      in
      let cksum = Crypto.Checksum.compute kind ~key body in
      Bytes.blit cksum 0 body 8 cksum_size;
      let buf = Crypto.Mode.pad body in
      Crypto.Mode.cbc_encrypt_into k ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
      buf

let open_ scheme ~key ciphertext =
  let k = Crypto.Des.schedule (Crypto.Des.fix_parity key) in
  if Bytes.length ciphertext = 0 || Bytes.length ciphertext mod 8 <> 0 then
    Error "not a ciphertext"
  else
    match scheme with
    | Pcbc_raw -> (
        let plain = Bytes.create (Bytes.length ciphertext) in
        Crypto.Mode.pcbc_decrypt_into k ~iv:Crypto.Mode.zero_iv ~src:ciphertext ~dst:plain;
        match Crypto.Mode.unpad plain with
        | Some b -> Ok b
        | None -> Error "bad padding")
    | Cbc_confounder kind -> (
        let plain = Bytes.create (Bytes.length ciphertext) in
        Crypto.Mode.cbc_decrypt_into k ~iv:Crypto.Mode.zero_iv ~src:ciphertext ~dst:plain;
        match Crypto.Mode.unpad plain with
        | None -> Error "bad padding"
        | Some body ->
            let cksum_size = Crypto.Checksum.size kind in
            if Bytes.length body < 8 + cksum_size then Error "too short"
            else begin
              let expect = Bytes.sub body 8 cksum_size in
              let zeroed = Bytes.copy body in
              Bytes.fill zeroed 8 cksum_size '\000';
              if Crypto.Checksum.verify kind ~key zeroed ~expect then
                Ok (Bytes.sub body (8 + cksum_size) (Bytes.length body - 8 - cksum_size))
              else Error "checksum mismatch"
            end)
