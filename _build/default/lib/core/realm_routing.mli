(** Hierarchical realm routing.

    "Realms will normally be configured in a hierarchical fashion ...
    Moving up the tree, towards the root, is an obvious answer for leaf
    nodes; however, each parent node would need complete knowledge of its
    entire subtree's realms in order to determine how to pass the request
    downwards."

    Realm names are dotted, child-first ("CS.MIT", parent "MIT"). The
    next-hop computation makes the paper's observation concrete: routing
    {e up} needs only the local name; routing {e down} needs the parent to
    already know the descendant — an unknown grandchild is unroutable
    ([None]), and learning about it requires exactly the out-of-band,
    hard-to-authenticate configuration the paper worries about. *)

val parent : string -> string option
(** ["CS.MIT"] -> [Some "MIT"]; a root (no dot) has no parent. *)

val ancestors : string -> string list
(** ["A.B.C"] -> [["B.C"; "C"]]. *)

val is_descendant : string -> of_:string -> bool

val next_hop : local:string -> target:string -> known:string list -> string option
(** The neighbor to refer a request for [target] to. Up-moves need no
    knowledge; down-moves return the child of [local] on the path to
    [target] only if that child is in [known]. [None] = unroutable. *)

val configure : Kdc.t -> known:string list -> targets:string list -> unit
(** Fill the KDC's static route table from the hierarchy, one entry per
    reachable target. *)
