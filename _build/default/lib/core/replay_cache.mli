(** A cache of recently seen authenticators.

    The original Kerberos design "required such caching, though this was
    never implemented"; the paper discusses why multi-process UNIX servers
    found it awkward. Here the cache is a module servers may or may not be
    configured with (the V4 profile runs without one, faithfully). Entries
    expire after the clock-skew horizon — outside it, the timestamp check
    itself rejects the authenticator. *)

type t

val create : horizon:float -> t

type verdict = Fresh | Replayed

val check_and_insert : t -> now:float -> bytes -> verdict
(** Keyed by a digest of the authenticator ciphertext. [Fresh] inserts. *)

val size : t -> int
(** Live entries (after purging), the server-state cost measured in E14. *)

val purge : t -> now:float -> unit
