(** Protocol-variant profiles.

    Every knob the paper discusses is gathered here, so each experiment
    reads "run attack A against profile P". Three named instances:

    - {!v4} — Kerberos Version 4 as shipped: PCBC encryption, ad-hoc
      encodings, timestamp authenticators with no replay cache (caching
      "was never implemented"), tickets bound to one address, no
      preauthentication, no forwarding or options;
    - {!v5_draft3} — the Version 5 Draft 3 the appendix analyzes: CBC with
      confounder, typed (ASN.1-style) encodings, CRC-32 checksums,
      [ENC-TKT-IN-SKEY] and [REUSE-SKEY] options, forwardable tickets,
      still no preauthentication;
    - {!hardened} — every change the paper recommends, switched on. *)

type ap_auth =
  | Timestamp of { skew : float; replay_cache : bool }
      (** accept authenticators within [skew] seconds of the server clock *)
  | Challenge_response
      (** recommendation (a): server issues an encrypted nonce instead of
          trusting clocks *)

type login_method =
  | Password  (** AS_REP sealed under the password-derived key *)
  | Handheld_challenge
      (** recommendation (c): AS_REP sealed under [{R}Kc] for a fresh [R] *)
  | Dh_protected
      (** recommendation (h): an exponential-key-exchange layer on top *)
  | Handheld_dh
      (** recommendations (c) and (h) composed: the reply is sealed under a
          key mixing [{R}Kc] with the exponential secret — trojan-proof and
          eavesdropper-proof at once *)

type priv_mode =
  | Pcbc_v4  (** length-prefixed data, PCBC, zero IV *)
  | Cbc_v5_draft  (** data-first layout, CBC, fixed public IV *)
  | Cbc_iv_chain
      (** recommendation (d): per-session IV evolving across messages, MD4
          integrity inside *)

type priv_replay =
  | Priv_timestamp  (** per-message timestamps + a cache of recent ones *)
  | Priv_sequence  (** sequence numbers negotiated at AP exchange *)

type t = {
  name : string;
  encoding : Wire.Encoding.kind;
  checksum : Crypto.Checksum.kind;
  ap_auth : ap_auth;
  login : login_method;
  preauth : bool;  (** recommendation (g) *)
  addr_in_ticket : bool;
  negotiate_session_key : bool;  (** recommendation (e) *)
  priv_mode : priv_mode;
  priv_replay : priv_replay;
  allow_enc_tkt_in_skey : bool;
  allow_reuse_skey : bool;
  allow_forwarding : bool;
  ticket_checksum_in_authenticator : bool;
      (** appendix recommendation (c): tie the authenticator to its ticket *)
  ticket_inside_sealed_rep : bool;
      (** the other half of appendix recommendation (c): "the encrypted
          part of KRB_AS_REP and KRB_TGS_REP should contain collision-proof
          checksums of the tickets". V4 and the drafts carry the ticket
          outside any integrity protection — an adversary can substitute a
          different ticket in the reply, a denial of service the client
          cannot detect until it tries to use the ticket. *)
  ticket_lifetime : float;
  dh_group_bits : int;  (** modulus size when [login = Dh_protected] *)
}

val v4 : t
val v5_draft3 : t
val hardened : t
val all : t list
val pp : Format.formatter -> t -> unit
