(** Kerberos principals: the three-tuple (primary name, instance, realm).

    "If the principal is a user ... the primary name is the login identifier
    ... For a service, the service name is used as the primary name and the
    machine name is used as the instance, i.e., rlogin.myhost." *)

type t = { name : string; instance : string; realm : string }

val user : ?realm:string -> string -> t
val service : ?realm:string -> string -> host:string -> t
val tgs : realm:string -> t
(** The ticket-granting server of a realm. *)

val cross_realm_tgs : local:string -> remote:string -> t
(** [krbtgt.REMOTE@LOCAL]: the principal a local TGS uses to sign tickets
    destined for a neighboring realm's TGS. *)

val to_string : t -> string
(** [name.instance@REALM]. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_value : t -> Wire.Encoding.value
val of_value : Wire.Encoding.value -> t
(** @raise Wire.Codec.Decode_error *)
