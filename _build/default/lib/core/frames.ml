let ap_req = 0
let challenge = 1
let challenge_resp = 2
let ap_ok = 3
let priv = 4
let safe = 5
let error = 6

let wrap kind payload =
  let out = Bytes.create (1 + Bytes.length payload) in
  Bytes.set out 0 (Char.chr kind);
  Bytes.blit payload 0 out 1 (Bytes.length payload);
  out

let unwrap b =
  if Bytes.length b = 0 then None
  else Some (Char.code (Bytes.get b 0), Bytes.sub b 1 (Bytes.length b - 1))
