type ap_auth =
  | Timestamp of { skew : float; replay_cache : bool }
  | Challenge_response

type login_method = Password | Handheld_challenge | Dh_protected | Handheld_dh

type priv_mode = Pcbc_v4 | Cbc_v5_draft | Cbc_iv_chain

type priv_replay = Priv_timestamp | Priv_sequence

type t = {
  name : string;
  encoding : Wire.Encoding.kind;
  checksum : Crypto.Checksum.kind;
  ap_auth : ap_auth;
  login : login_method;
  preauth : bool;
  addr_in_ticket : bool;
  negotiate_session_key : bool;
  priv_mode : priv_mode;
  priv_replay : priv_replay;
  allow_enc_tkt_in_skey : bool;
  allow_reuse_skey : bool;
  allow_forwarding : bool;
  ticket_checksum_in_authenticator : bool;
  ticket_inside_sealed_rep : bool;
  ticket_lifetime : float;
  dh_group_bits : int;
}

let five_minutes = 300.0

let v4 =
  { name = "v4";
    encoding = Wire.Encoding.V4_adhoc;
    checksum = Crypto.Checksum.Crc32;
    ap_auth = Timestamp { skew = five_minutes; replay_cache = false };
    login = Password;
    preauth = false;
    addr_in_ticket = true;
    negotiate_session_key = false;
    priv_mode = Pcbc_v4;
    priv_replay = Priv_timestamp;
    allow_enc_tkt_in_skey = false;
    allow_reuse_skey = false;
    allow_forwarding = false;
    ticket_checksum_in_authenticator = false;
    ticket_inside_sealed_rep = false;
    ticket_lifetime = 8.0 *. 3600.0;
    dh_group_bits = 0 }

let v5_draft3 =
  { v4 with
    name = "v5-draft3";
    encoding = Wire.Encoding.Der_typed;
    checksum = Crypto.Checksum.Crc32;
    priv_mode = Cbc_v5_draft;
    addr_in_ticket = false;
    allow_enc_tkt_in_skey = true;
    allow_reuse_skey = true;
    allow_forwarding = true }

let hardened =
  { name = "hardened";
    encoding = Wire.Encoding.Der_typed;
    checksum = Crypto.Checksum.Md4;
    ap_auth = Challenge_response;
    login = Handheld_dh;
    preauth = true;
    addr_in_ticket = false;
    negotiate_session_key = true;
    priv_mode = Cbc_iv_chain;
    priv_replay = Priv_sequence;
    allow_enc_tkt_in_skey = false;
    allow_reuse_skey = false;
    allow_forwarding = false;
    ticket_checksum_in_authenticator = true;
    ticket_inside_sealed_rep = true;
    ticket_lifetime = 8.0 *. 3600.0;
    dh_group_bits = 127 }

let all = [ v4; v5_draft3; hardened ]

let pp ppf t = Format.pp_print_string ppf t.name
