(** KRB_PRIV: confidential application messages under the session key.

    Three wire layouts, selected by [Profile.priv_mode]:

    - [Pcbc_v4] — V4's format: {e leading} data length, then data,
      millisecond time, host address, timestamp+direction; PCBC, zero IV.
      The leading length "disrupts the prefix-based attack".
    - [Cbc_v5_draft] — the Draft 2/3 shape the paper attacks: the data
      comes {e first}, followed by (timestamp, direction, address); CBC
      under a fixed public IV. Because CBC prefixes of encryptions are
      encryptions of prefixes, a server that can be made to encrypt chosen
      data (a mail or file server) can be turned into an oracle producing
      valid ciphertexts for attacker-chosen messages.
    - [Cbc_iv_chain] — recommendation (d): a per-direction IV that evolves
      across messages (chaining over the whole session) plus an MD4
      integrity check inside. A cut-and-pasted prefix decrypts under the
      wrong IV and fails the check; message deletion is also detectable.

    Replay protection within the session follows [Profile.priv_replay]:
    timestamps plus a per-session cache, or sequence numbers. *)

type error =
  | Garbled  (** decryption or parse failure *)
  | Bad_direction
  | Bad_address
  | Stale of float  (** timestamp outside the skew window *)
  | Replay
  | Out_of_sequence of { expected : int; got : int }

val error_to_string : error -> string

val seal : Session.t -> now:float -> bytes -> bytes
(** [seal session ~now data]: [now] is the sender's local clock. Advances
    the session's send state (sequence number / IV). *)

val open_ : Session.t -> now:float -> bytes -> (bytes, error) result
(** Advances receive state on success. *)

val skew : float
(** Acceptance window for timestamps (matches the authenticator skew). *)
