let parent realm =
  match String.index_opt realm '.' with
  | None -> None
  | Some i -> Some (String.sub realm (i + 1) (String.length realm - i - 1))

let rec ancestors realm =
  match parent realm with None -> [] | Some p -> p :: ancestors p

let is_descendant realm ~of_ =
  realm <> of_ && List.mem of_ (ancestors realm)

(* The child of [local] lying on the path down to [target]: the unique
   realm whose parent is [local] and of which [target] is a descendant (or
   which is the target itself). *)
let child_toward ~local ~target ~known =
  List.find_opt
    (fun r ->
      parent r = Some local && (r = target || is_descendant target ~of_:r))
    known

let next_hop ~local ~target ~known =
  if target = local then None
  else if is_descendant target ~of_:local then child_toward ~local ~target ~known
  else
    (* Target is not below us: climb. The root with no parent cannot climb;
       if it also cannot find a child, the request is unroutable. *)
    match parent local with
    | Some p -> Some p
    | None -> child_toward ~local ~target ~known

let configure kdc ~known ~targets =
  let local = Kdc.realm kdc in
  List.iter
    (fun target ->
      if target <> local then
        match next_hop ~local ~target ~known with
        | Some hop -> Kdc.add_realm_route kdc ~remote:target ~next_hop:hop
        | None -> ())
    targets
