(** KRB_SAFE: integrity-protected (but cleartext) application messages.

    The checksum is computed over the message and enciphered under the
    session key. The paper's warning applies verbatim: "encrypting a
    checksum provides very little protection; if the checksum is not
    collision-proof and the data is public, an adversary can ... replace
    the data with another message with the same checksum." With the
    profile's checksum set to CRC-32, {!open_} accepts forgeries produced
    by {!Crypto.Crc32.forge}; with MD4 it does not. *)

type error = Bad_checksum | Stale of float | Replay | Out_of_sequence | Malformed

val error_to_string : error -> string

val seal : Session.t -> now:float -> bytes -> bytes
val open_ : Session.t -> now:float -> bytes -> (bytes, error) result
