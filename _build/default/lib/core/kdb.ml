type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 32

let add t principal entry = Hashtbl.replace t (Principal.to_string principal) entry

let add_user t principal ~password =
  add t principal { key = Crypto.Str2key.derive password; kind = User }

let add_service t principal ~key = add t principal { key; kind = Service }
let add_cross_realm t principal ~key = add t principal { key; kind = Cross_realm }

let lookup t principal = Hashtbl.find_opt t (Principal.to_string principal)

let principals t =
  Hashtbl.fold (fun name _ acc -> Principal.of_string name :: acc) t []
  |> List.sort Principal.compare

let kind_code = function User -> 0 | Service -> 1 | Cross_realm -> 2

let kind_of_code = function
  | 0 -> User
  | 1 -> Service
  | 2 -> Cross_realm
  | _ -> Wire.Codec.fail "kdb: unknown principal kind"

let to_bytes t =
  let w = Wire.Codec.Writer.create () in
  let entries =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Wire.Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun (name, e) ->
      Wire.Codec.Writer.lstring w name;
      Wire.Codec.Writer.u8 w (kind_code e.kind);
      Wire.Codec.Writer.lbytes w e.key)
    entries;
  Wire.Codec.Writer.contents w

let of_bytes b =
  let r = Wire.Codec.Reader.of_bytes b in
  let n = Wire.Codec.Reader.u32 r in
  let t = create () in
  for _ = 1 to n do
    let name = Wire.Codec.Reader.lstring r in
    let kind = kind_of_code (Wire.Codec.Reader.u8 r) in
    let key = Wire.Codec.Reader.lbytes r in
    Hashtbl.replace t name { key; kind }
  done;
  Wire.Codec.Reader.expect_end r;
  t

let replace_from dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let size t = Hashtbl.length t
