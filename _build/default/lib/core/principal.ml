type t = { name : string; instance : string; realm : string }

let default_realm = "ATHENA.MIT.EDU"

(* Primary names must be dot-free (the name/instance separator); instances
   may contain dots — host names and realm names legitimately do. *)
let make name instance realm =
  if name = "" || String.contains name '.' || String.contains name '@' then
    invalid_arg (Printf.sprintf "Principal: bad name %S" name);
  if String.contains instance '@' then
    invalid_arg (Printf.sprintf "Principal: bad instance %S" instance);
  { name; instance; realm }

let user ?(realm = default_realm) name = make name "" realm
let service ?(realm = default_realm) name ~host = make name host realm
let tgs ~realm = make "krbtgt" realm realm
let cross_realm_tgs ~local ~remote = { name = "krbtgt"; instance = remote; realm = local }

let to_string t =
  if t.instance = "" then Printf.sprintf "%s@%s" t.name t.realm
  else Printf.sprintf "%s.%s@%s" t.name t.instance t.realm

let of_string s =
  match String.index_opt s '@' with
  | None -> invalid_arg "Principal.of_string: missing realm"
  | Some at ->
      let left = String.sub s 0 at in
      let realm = String.sub s (at + 1) (String.length s - at - 1) in
      (match String.index_opt left '.' with
      | None -> make left "" realm
      | Some dot ->
          let name = String.sub left 0 dot in
          let instance = String.sub left (dot + 1) (String.length left - dot - 1) in
          { name; instance; realm })

let equal a b = a.name = b.name && a.instance = b.instance && a.realm = b.realm
let compare = Stdlib.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_value t =
  Wire.Encoding.List [ Str t.name; Str t.instance; Str t.realm ]

let of_value v =
  let open Wire.Encoding in
  match get_list v with
  | [ n; i; r ] -> { name = get_str n; instance = get_str i; realm = get_str r }
  | _ -> Wire.Codec.fail "principal: wrong arity"
