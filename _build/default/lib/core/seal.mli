(** The encryption layer, separated from the protocol proper — the paper's
    recommendation (d): "mechanisms such as random initial vectors (in place
    of confounders), block chaining and message authentication codes should
    be left to a separate encryption layer, whose information-hiding
    requirements are clearly explicated."

    Two schemes:
    - {!Pcbc_raw}: Kerberos V4's layer — PCBC under a zero IV, no integrity
      beyond what the caller's parser happens to notice;
    - {!Cbc_confounder}: the V5 drafts' layer — a random confounder block
      followed by a checksum sealed inside the encryption (CBC, fixed IV).
      With a CRC-32 checksum this is the Draft 3 configuration; with MD4 it
      is the hardened one. *)

type scheme = Pcbc_raw | Cbc_confounder of Crypto.Checksum.kind

val of_profile : Profile.t -> scheme

val seal : scheme -> Util.Rng.t -> key:bytes -> bytes -> bytes
(** [seal scheme rng ~key plaintext]. *)

val open_ : scheme -> key:bytes -> bytes -> (bytes, string) result
(** Decrypt and (for {!Cbc_confounder}) verify the sealed checksum. A
    [Pcbc_raw] opening never fails here — V4 has no integrity check at this
    layer; garbage is detected, if at all, by the caller's parser. *)
