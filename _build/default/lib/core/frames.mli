(** One-byte transport framing for application-service ports, so a server
    can tell a fresh AP_REQ from traffic belonging to an established
    session. (Cleartext framing — the adversary can read and forge it,
    which several attacks rely on.) *)

val ap_req : int
val challenge : int
val challenge_resp : int
val ap_ok : int
val priv : int
val safe : int
val error : int

val wrap : int -> bytes -> bytes
val unwrap : bytes -> (int * bytes) option
