lib/core/seal.mli: Crypto Profile Util
