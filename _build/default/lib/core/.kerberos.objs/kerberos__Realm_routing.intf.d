lib/core/realm_routing.mli: Kdc
