lib/core/session.mli: Profile Replay_cache Sim Util
