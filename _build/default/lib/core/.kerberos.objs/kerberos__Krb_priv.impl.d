lib/core/krb_priv.ml: Bytes Crypto Float Int64 Printf Profile Replay_cache Result Session Sim Util Wire
