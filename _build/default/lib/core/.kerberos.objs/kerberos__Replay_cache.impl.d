lib/core/replay_cache.ml: Bytes Float Hashtbl Sim
