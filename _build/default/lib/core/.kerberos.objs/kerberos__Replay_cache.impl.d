lib/core/replay_cache.ml: Crypto Hashtbl List
