lib/core/kdb.mli: Principal
