lib/core/client.mli: Messages Principal Profile Session Sim Util
