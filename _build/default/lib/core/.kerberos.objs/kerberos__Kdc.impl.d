lib/core/kdc.ml: Bytes Crypto Float Hashtbl Kdb List Messages Option Principal Profile Replay_cache Result Sim Util Wire
