lib/core/client.ml: Bytes Crypto Frames Fun Int64 Kdc Krb_priv Krb_safe List Messages Option Principal Profile Result Session Sim Util Wire
