lib/core/frames.ml: Bytes Char
