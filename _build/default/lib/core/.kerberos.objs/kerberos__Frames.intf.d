lib/core/frames.mli:
