lib/core/krb_safe.mli: Session
