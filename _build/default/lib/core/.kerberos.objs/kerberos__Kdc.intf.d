lib/core/kdc.mli: Kdb Profile Sim
