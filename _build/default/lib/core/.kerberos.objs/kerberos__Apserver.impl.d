lib/core/apserver.ml: Ap_check Bytes Frames Hashtbl Int64 Krb_priv Krb_safe Messages Option Principal Printf Profile Queue Replay_cache Session Sim Util Wire
