lib/core/ap_check.mli: Messages Principal Profile Replay_cache Sim
