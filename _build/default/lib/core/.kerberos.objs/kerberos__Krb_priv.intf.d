lib/core/krb_priv.mli: Session
