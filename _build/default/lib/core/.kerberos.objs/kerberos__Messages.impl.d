lib/core/messages.ml: Int64 List Principal Printf Profile Seal Sim Wire
