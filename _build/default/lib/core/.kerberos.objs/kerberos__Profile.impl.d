lib/core/profile.ml: Crypto Format Wire
