lib/core/principal.mli: Format Wire
