lib/core/principal.ml: Format Printf Stdlib String Wire
