lib/core/messages.mli: Principal Profile Sim Util Wire
