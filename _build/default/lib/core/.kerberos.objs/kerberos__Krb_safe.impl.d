lib/core/krb_safe.ml: Crypto Float Int64 Krb_priv Printf Profile Replay_cache Session Util Wire
