lib/core/apserver.mli: Principal Profile Session Sim
