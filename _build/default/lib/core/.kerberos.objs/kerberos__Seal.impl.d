lib/core/seal.ml: Bytes Crypto Profile Util Wire
