lib/core/profile.mli: Crypto Format Wire
