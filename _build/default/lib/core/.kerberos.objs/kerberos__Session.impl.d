lib/core/session.ml: Bytes Crypto Profile Replay_cache Sim Util
