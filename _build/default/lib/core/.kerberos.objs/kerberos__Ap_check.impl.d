lib/core/ap_check.ml: Crypto Float Krb_priv List Messages Principal Printf Profile Replay_cache Sim Wire
