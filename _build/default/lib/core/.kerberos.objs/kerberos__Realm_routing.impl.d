lib/core/realm_routing.ml: Kdc List String
