lib/core/kdb.ml: Crypto Hashtbl List Principal Wire
