(** Key-derivation helpers for the paper's fixes.

    - {!negotiate_session_key} implements recommendation (e): "the actual
      session key could be formed by an exclusive-or of the multisession key
      associated with the ticket, a randomly-generated field in the
      authenticator, and a similar field in the reply message."
    - {!tag_key} implements the encryption-box rule that "keys should be
      tagged with their purpose": deriving a purpose-separated key prevents,
      e.g., the login key from being misused to decrypt a ticket-granting
      ticket. *)

val negotiate_session_key : multi:bytes -> client_part:bytes -> server_part:bytes -> bytes
(** XOR of the three 8-byte values, parity-fixed. *)

val tag_key : tag:string -> bytes -> bytes
(** [tag_key ~tag k] derives a DES key bound to [tag] (MD4 of tag || key,
    truncated, parity-fixed). Distinct tags give independent keys. *)
