let negotiate_session_key ~multi ~client_part ~server_part =
  if Bytes.length multi <> 8 || Bytes.length client_part <> 8 || Bytes.length server_part <> 8
  then invalid_arg "Prf.negotiate_session_key: parts must be 8 bytes";
  Des.fix_parity
    (Util.Bytesutil.xor multi (Util.Bytesutil.xor client_part server_part))

let tag_key ~tag k =
  let material = Bytes.concat Bytes.empty [ Bytes.of_string tag; Bytes.of_string "\x00"; k ] in
  Des.fix_parity (Bytes.sub (Md4.digest material) 0 8)
