(** The Data Encryption Standard (FIPS 46), the cipher Kerberos V4 and the
    V5 drafts are built on.

    Blocks and keys are 8 bytes. The implementation is a straightforward
    table-driven Feistel network; it is validated in the test suite against
    the classic NBS known-answer vectors. *)

type key
(** A scheduled key (the 16 48-bit subkeys). *)

val block_size : int
(** 8. *)

val schedule : bytes -> key
(** [schedule k] expands an 8-byte key. Parity bits (the low bit of each
    byte) are ignored, as in the standard.
    @raise Invalid_argument if [k] is not 8 bytes. *)

val key_bytes : key -> bytes
(** The original 8-byte key material (with its parity bits untouched). *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block k b] enciphers one 8-byte block. *)

val decrypt_block : key -> bytes -> bytes
(** [decrypt_block k b] deciphers one 8-byte block. *)

val fix_parity : bytes -> bytes
(** [fix_parity k] returns a copy with each byte's low bit set to give odd
    parity, the DES key convention. *)

val is_weak : bytes -> bool
(** True for the four weak and twelve semi-weak DES keys (after parity
    fixing). The simulated KDC rejects these when generating session keys. *)

val random_key : Util.Rng.t -> bytes
(** A fresh parity-fixed, non-weak key. *)
