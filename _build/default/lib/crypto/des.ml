(* Tables are copied from FIPS 46-3; bit positions are 1-based from the most
   significant bit, as in the standard. *)

let initial_permutation =
  [| 58; 50; 42; 34; 26; 18; 10; 2;
     60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6;
     64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1;
     59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5;
     63; 55; 47; 39; 31; 23; 15; 7 |]

let final_permutation =
  [| 40; 8; 48; 16; 56; 24; 64; 32;
     39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30;
     37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28;
     35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26;
     33; 1; 41;  9; 49; 17; 57; 25 |]

let expansion =
  [| 32;  1;  2;  3;  4;  5;
      4;  5;  6;  7;  8;  9;
      8;  9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17;
     16; 17; 18; 19; 20; 21;
     20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29;
     28; 29; 30; 31; 32;  1 |]

let p_permutation =
  [| 16;  7; 20; 21;
     29; 12; 28; 17;
      1; 15; 23; 26;
      5; 18; 31; 10;
      2;  8; 24; 14;
     32; 27;  3;  9;
     19; 13; 30;  6;
     22; 11;  4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17;  9;
      1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27;
     19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;
      7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29;
     21; 13;  5; 28; 20; 12;  4 |]

let pc2 =
  [| 14; 17; 11; 24;  1;  5;
      3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8;
     16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55;
     30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53;
     46; 42; 50; 36; 29; 32 |]

let rotations = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [| (* S1 *)
     [| 14;  4; 13;  1;  2; 15; 11;  8;  3; 10;  6; 12;  5;  9;  0;  7;
         0; 15;  7;  4; 14;  2; 13;  1; 10;  6; 12; 11;  9;  5;  3;  8;
         4;  1; 14;  8; 13;  6;  2; 11; 15; 12;  9;  7;  3; 10;  5;  0;
        15; 12;  8;  2;  4;  9;  1;  7;  5; 11;  3; 14; 10;  0;  6; 13 |];
     (* S2 *)
     [| 15;  1;  8; 14;  6; 11;  3;  4;  9;  7;  2; 13; 12;  0;  5; 10;
         3; 13;  4;  7; 15;  2;  8; 14; 12;  0;  1; 10;  6;  9; 11;  5;
         0; 14;  7; 11; 10;  4; 13;  1;  5;  8; 12;  6;  9;  3;  2; 15;
        13;  8; 10;  1;  3; 15;  4;  2; 11;  6;  7; 12;  0;  5; 14;  9 |];
     (* S3 *)
     [| 10;  0;  9; 14;  6;  3; 15;  5;  1; 13; 12;  7; 11;  4;  2;  8;
        13;  7;  0;  9;  3;  4;  6; 10;  2;  8;  5; 14; 12; 11; 15;  1;
        13;  6;  4;  9;  8; 15;  3;  0; 11;  1;  2; 12;  5; 10; 14;  7;
         1; 10; 13;  0;  6;  9;  8;  7;  4; 15; 14;  3; 11;  5;  2; 12 |];
     (* S4 *)
     [|  7; 13; 14;  3;  0;  6;  9; 10;  1;  2;  8;  5; 11; 12;  4; 15;
        13;  8; 11;  5;  6; 15;  0;  3;  4;  7;  2; 12;  1; 10; 14;  9;
        10;  6;  9;  0; 12; 11;  7; 13; 15;  1;  3; 14;  5;  2;  8;  4;
         3; 15;  0;  6; 10;  1; 13;  8;  9;  4;  5; 11; 12;  7;  2; 14 |];
     (* S5 *)
     [|  2; 12;  4;  1;  7; 10; 11;  6;  8;  5;  3; 15; 13;  0; 14;  9;
        14; 11;  2; 12;  4;  7; 13;  1;  5;  0; 15; 10;  3;  9;  8;  6;
         4;  2;  1; 11; 10; 13;  7;  8; 15;  9; 12;  5;  6;  3;  0; 14;
        11;  8; 12;  7;  1; 14;  2; 13;  6; 15;  0;  9; 10;  4;  5;  3 |];
     (* S6 *)
     [| 12;  1; 10; 15;  9;  2;  6;  8;  0; 13;  3;  4; 14;  7;  5; 11;
        10; 15;  4;  2;  7; 12;  9;  5;  6;  1; 13; 14;  0; 11;  3;  8;
         9; 14; 15;  5;  2;  8; 12;  3;  7;  0;  4; 10;  1; 13; 11;  6;
         4;  3;  2; 12;  9;  5; 15; 10; 11; 14;  1;  7;  6;  0;  8; 13 |];
     (* S7 *)
     [|  4; 11;  2; 14; 15;  0;  8; 13;  3; 12;  9;  7;  5; 10;  6;  1;
        13;  0; 11;  7;  4;  9;  1; 10; 14;  3;  5; 12;  2; 15;  8;  6;
         1;  4; 11; 13; 12;  3;  7; 14; 10; 15;  6;  8;  0;  5;  9;  2;
         6; 11; 13;  8;  1;  4; 10;  7;  9;  5;  0; 15; 14;  2;  3; 12 |];
     (* S8 *)
     [| 13;  2;  8;  4;  6; 15; 11;  1; 10;  9;  3; 14;  5;  0; 12;  7;
         1; 15; 13;  8; 10;  3;  7;  4; 12;  5;  6; 11;  0; 14;  9;  2;
         7; 11;  4;  1;  9; 12; 14;  2;  0;  6; 10; 13; 15;  3;  5;  8;
         2;  1; 14;  7;  4; 10;  8; 13; 15; 12;  9;  0;  3;  5;  6; 11 |] |]

(* [permute table width x]: [x] holds a [width]-bit value right-aligned; the
   result has [Array.length table] bits, where output bit i (1-based from the
   MSB) is input bit [table.(i-1)]. *)
let permute table width x =
  let out_width = Array.length table in
  let out = ref 0L in
  for i = 0 to out_width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical x (width - table.(i))) 1L in
    out := Int64.logor (Int64.shift_left !out 1) bit
  done;
  !out

type key = { subkeys : int64 array; raw : bytes }

let block_size = 8

let rotl28 x n =
  let mask = 0xFFFFFFFL in
  Int64.logand
    (Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (28 - n)))
    mask

let schedule k =
  if Bytes.length k <> 8 then invalid_arg "Des.schedule: key must be 8 bytes";
  let k64 = Bytes.get_int64_be k 0 in
  let cd = permute pc1 64 k64 in
  let c = ref (Int64.logand (Int64.shift_right_logical cd 28) 0xFFFFFFFL) in
  let d = ref (Int64.logand cd 0xFFFFFFFL) in
  let subkeys =
    Array.map
      (fun rot ->
        c := rotl28 !c rot;
        d := rotl28 !d rot;
        let merged = Int64.logor (Int64.shift_left !c 28) !d in
        permute pc2 56 merged)
      rotations
  in
  { subkeys; raw = Bytes.copy k }

let key_bytes k = Bytes.copy k.raw

let f_function r subkey =
  let e = Int64.logxor (permute expansion 32 r) subkey in
  let out = ref 0L in
  for box = 0 to 7 do
    let six = Int64.to_int (Int64.logand (Int64.shift_right_logical e ((7 - box) * 6)) 0x3FL) in
    let row = ((six lsr 4) land 2) lor (six land 1) in
    let col = (six lsr 1) land 0xF in
    let s = sboxes.(box).((row * 16) + col) in
    out := Int64.logor (Int64.shift_left !out 4) (Int64.of_int s)
  done;
  permute p_permutation 32 !out

let crypt_block subkey_order key block =
  if Bytes.length block <> 8 then invalid_arg "Des: block must be 8 bytes";
  let b = Bytes.get_int64_be block 0 in
  let ip = permute initial_permutation 64 b in
  let l = ref (Int64.shift_right_logical ip 32) in
  let r = ref (Int64.logand ip 0xFFFFFFFFL) in
  for i = 0 to 15 do
    let sk = key.subkeys.(subkey_order i) in
    let next_r = Int64.logand (Int64.logxor !l (f_function !r sk)) 0xFFFFFFFFL in
    l := !r;
    r := next_r
  done;
  (* Pre-output block is R16 L16 (the halves are swapped). *)
  let preout = Int64.logor (Int64.shift_left !r 32) !l in
  let out = Bytes.create 8 in
  Bytes.set_int64_be out 0 (permute final_permutation 64 preout);
  out

let encrypt_block key block = crypt_block (fun i -> i) key block
let decrypt_block key block = crypt_block (fun i -> 15 - i) key block

let fix_parity k =
  let out = Bytes.copy k in
  for i = 0 to Bytes.length out - 1 do
    let c = Char.code (Bytes.get out i) in
    let ones = ref 0 in
    for bit = 1 to 7 do
      if (c lsr bit) land 1 = 1 then incr ones
    done;
    (* Odd parity: low bit completes an odd popcount. *)
    let low = if !ones mod 2 = 0 then 1 else 0 in
    Bytes.set out i (Char.chr ((c land 0xFE) lor low))
  done;
  out

let weak_keys =
  List.map Util.Bytesutil.of_hex
    [ "0101010101010101"; "fefefefefefefefe"; "e0e0e0e0f1f1f1f1";
      "1f1f1f1f0e0e0e0e";
      (* semi-weak pairs *)
      "011f011f010e010e"; "1f011f010e010e01"; "01e001e001f101f1";
      "e001e001f101f101"; "01fe01fe01fe01fe"; "fe01fe01fe01fe01";
      "1fe01fe00ef10ef1"; "e01fe01ff10ef10e"; "1ffe1ffe0efe0efe";
      "fe1ffe1ffe0efe0e"; "e0fee0fef1fef1fe"; "fee0fee0fef1fef1" ]

let is_weak k =
  let k = fix_parity k in
  List.exists (fun w -> Bytes.equal w k) weak_keys

let rec random_key rng =
  let k = fix_parity (Util.Rng.bytes rng 8) in
  if is_weak k then random_key rng else k
