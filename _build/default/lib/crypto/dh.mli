(** Exponential key exchange (Diffie–Hellman 1976), the paper's proposed
    "additional layer of encryption" for the login dialog, preventing a
    passive wiretapper from accumulating password-guessing material.

    Groups range from deliberately-tiny moduli (crackable by {!Dlog}, making
    the LaMacchia–Odlyzko point that "exchanging small numbers is quite
    insecure") up to Mersenne-prime moduli of 521+ bits ("using large ones
    is expensive in computation time" — measured in the benchmark suite). *)

type group = { p : Bignum.t; g : Bignum.t; name : string }

val toy_group : bits:int -> group
(** A small group for the crack-time sweep. Supported sizes:
    16, 20, 24, 28, 31, 36 and 40 bits (primes hardcoded and checked in the
    test suite). @raise Invalid_argument otherwise. *)

val mersenne_group : exponent:int -> group
(** The group modulo the Mersenne prime [2^exponent - 1], generator 7.
    Supported exponents: 61, 89, 107, 127, 521, 607. *)

val group : bits:int -> group
(** Dispatch: a toy group for toy sizes, a Mersenne group when [bits] is a
    supported Mersenne exponent. *)

type keypair = { secret : Bignum.t; public : Bignum.t }

val generate : Util.Rng.t -> group -> keypair
val shared_secret : group -> keypair -> Bignum.t -> Bignum.t
(** [shared_secret grp kp their_public]. *)

val secret_to_key : group -> Bignum.t -> bytes
(** Hash the shared secret down to a parity-fixed DES key. *)
