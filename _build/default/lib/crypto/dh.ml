type group = { p : Bignum.t; g : Bignum.t; name : string }

(* Small primes chosen with a small generator of a large subgroup; their
   primality is asserted by the test suite via Miller-Rabin. *)
let toy_primes =
  [ (16, 0xFFF1); (* 65521 *)
    (20, 0xFFFFD); (* 1048573 *)
    (24, 0xFFFFFD); (* 16777213 *)
    (28, 0xFFFFFC7); (* 2^28 - 57 *)
    (31, 0x7FFFFFFF); (* 2^31 - 1, Mersenne *)
    (36, 0xFFFFFFFFB); (* 2^36 - 5 *)
    (40, 0xFFFFFFFFA9) (* 2^40 - 87 *) ]

let toy_group ~bits =
  match List.assoc_opt bits toy_primes with
  | None -> invalid_arg "Dh.toy_group: unsupported size"
  | Some p ->
      { p = Bignum.of_int p; g = Bignum.of_int 7; name = Printf.sprintf "toy-%db" bits }

let mersenne_exponents = [ 61; 89; 107; 127; 521; 607 ]

let mersenne_group ~exponent =
  if not (List.mem exponent mersenne_exponents) then
    invalid_arg "Dh.mersenne_group: unsupported exponent";
  let p = Bignum.sub (Bignum.shift_left Bignum.one exponent) Bignum.one in
  { p; g = Bignum.of_int 7; name = Printf.sprintf "mersenne-%d" exponent }

let group ~bits =
  if List.mem_assoc bits toy_primes then toy_group ~bits
  else if List.mem bits mersenne_exponents then mersenne_group ~exponent:bits
  else invalid_arg "Dh.group: unsupported size"

type keypair = { secret : Bignum.t; public : Bignum.t }

let generate rng grp =
  (* secret in [2, p-2] *)
  let bound = Bignum.sub grp.p (Bignum.of_int 3) in
  let secret = Bignum.add (Bignum.random_below rng bound) Bignum.two in
  { secret; public = Bignum.mod_pow ~base:grp.g ~exp:secret ~modulus:grp.p }

let shared_secret grp kp their_public =
  Bignum.mod_pow ~base:their_public ~exp:kp.secret ~modulus:grp.p

let secret_to_key grp secret =
  let size = (Bignum.num_bits grp.p + 7) / 8 in
  let raw = Bignum.to_bytes_be ~size secret in
  let h = Md4.digest raw in
  Des.fix_parity (Bytes.sub h 0 8)
