(** Discrete-logarithm attacks for the small-modulus sweep (E13).

    LaMacchia and Odlyzko "demonstrated that exchanging small numbers is
    quite insecure"; we make the same point with generic-group algorithms
    (their index-calculus attack on 192/224-bit primes is out of scope for a
    reproduction — baby-step/giant-step and Pollard rho already crack the
    toy groups in milliseconds-to-seconds, which is the shape that matters). *)

val baby_step_giant_step : Dh.group -> target:Bignum.t -> Bignum.t option
(** [baby_step_giant_step grp ~target] finds x with g^x = target (mod p),
    using O(sqrt p) time and memory. *)

val pollard_rho : ?max_iters:int -> Util.Rng.t -> Dh.group -> target:Bignum.t -> Bignum.t option
(** O(sqrt p) time, O(1) memory. May fail (returns [None]) on unlucky
    cycles or when the group order has awkward factors; callers retry. *)

val kangaroo : ?max_iters:int -> Dh.group -> target:Bignum.t -> max_exp:int -> Bignum.t option
(** Pollard's lambda ("kangaroo") method: finds x with g^x = target when
    x is known to lie in [0, max_exp], in O(sqrt max_exp) time regardless
    of how large the modulus is. The cautionary corollary for implementers
    tempted to shrink secret exponents to cut the E13b cost: the attack
    scales with the {e exponent} range, not the modulus. *)
