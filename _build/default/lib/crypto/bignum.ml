(* Little-endian limbs in base 2^26. 26-bit limbs keep every intermediate of
   schoolbook multiplication (limb*limb + carry + acc <= 2^52 + 2^53) well
   inside OCaml's 63-bit native ints. The zero value is the empty array;
   all values are kept normalized (no leading zero limbs). *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2

let is_zero (a : t) = Array.length a = 0

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * limb_bits) + width top

let to_int_opt (a : t) =
  if num_bits a > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end

let compare (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Stdlib.compare na nb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (na - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  let n = max na nb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < na then a.(i) else 0) + (if i < nb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let borrow = ref 0 in
  for i = 0 to na - 1 do
    let d = a.(i) - (if i < nb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then zero
  else begin
    let out = Array.make (na + nb) 0 in
    for i = 0 to na - 1 do
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        let v = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + nb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left (a : t) bits : t =
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    let out = Array.make (na + limb_shift + 1) 0 in
    for i = 0 to na - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) bits : t =
  if bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    if limb_shift >= na then zero
    else begin
      let n = na - limb_shift in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= na then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* Binary long division: O(bits * limbs), fine at the 512-bit scale this
   repository needs. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let nbits = num_bits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = nbits - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let rem a b = snd (divmod a b)

let mod_mul a b ~modulus = rem (mul a b) modulus

let mod_pow ~base ~exp ~modulus =
  if equal modulus one then zero
  else begin
    let result = ref one in
    let b = ref (rem base modulus) in
    let n = num_bits exp in
    for i = 0 to n - 1 do
      if bit exp i then result := mod_mul !result !b ~modulus;
      if i < n - 1 then b := mod_mul !b !b ~modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let of_hex s =
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' | ' ' -> -1
        | _ -> invalid_arg "Bignum.of_hex"
      in
      if d >= 0 then v := add (shift_left !v 4) (of_int d))
    s;
  !v

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let nibbles = (num_bits a + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / limb_bits and off = (i * 4) mod limb_bits in
      let v =
        (a.(limb) lsr off)
        lor (if off > limb_bits - 4 && limb + 1 < Array.length a then a.(limb + 1) lsl (limb_bits - off) else 0)
      in
      Buffer.add_char buf "0123456789abcdef".[v land 0xf]
    done;
    (* strip leading zero nibble if the bit count wasn't a nibble multiple *)
    let s = Buffer.contents buf in
    let start = ref 0 in
    while !start < String.length s - 1 && s.[!start] = '0' do incr start done;
    String.sub s !start (String.length s - !start)
  end

let of_bytes_be b =
  let v = ref zero in
  Bytes.iter (fun c -> v := add (shift_left !v 8) (of_int (Char.code c))) b;
  !v

let to_bytes_be ?size (a : t) =
  let needed = (num_bits a + 7) / 8 in
  let size = match size with None -> max needed 1 | Some s -> s in
  if needed > size then invalid_arg "Bignum.to_bytes_be: value too large";
  let out = Bytes.make size '\000' in
  let v = ref a in
  let i = ref (size - 1) in
  while not (is_zero !v) do
    (match to_int_opt (rem !v (of_int 256)) with
    | Some b -> Bytes.set out !i (Char.chr b)
    | None -> assert false);
    v := shift_right !v 8;
    decr i
  done;
  out

let random rng ~bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = Util.Rng.bytes rng nbytes in
    (* Mask excess high bits. *)
    let excess = (nbytes * 8) - bits in
    if excess > 0 then
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr excess)));
    of_bytes_be b
  end

let rec random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let candidate = random rng ~bits:(num_bits bound) in
  if compare candidate bound < 0 then candidate else random_below rng bound

let is_probable_prime ?(rounds = 20) rng n =
  if compare n two < 0 then false
  else if compare n (of_int 4) < 0 then true (* 2 and 3 *)
  else if not (bit n 0) then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let n_minus_1 = sub n one in
    let s = ref 0 in
    let d = ref n_minus_1 in
    while not (bit !d 0) do
      d := shift_right !d 1;
      incr s
    done;
    let witness a =
      let x = ref (mod_pow ~base:a ~exp:!d ~modulus:n) in
      if equal !x one || equal !x n_minus_1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !s - 1 do
             x := mod_mul !x !x ~modulus:n;
             if equal !x n_minus_1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec trial k =
      if k = 0 then true
      else
        let a = add two (random_below rng (sub n (of_int 3))) in
        if witness a then false else trial (k - 1)
    in
    trial rounds
  end

let pp ppf a = Format.fprintf ppf "0x%s" (to_hex a)
