(* Little-endian limbs in base 2^26. 26-bit limbs keep every intermediate of
   schoolbook multiplication (limb*limb + carry + acc <= 2^52 + 2^53) well
   inside OCaml's 63-bit native ints. The zero value is the empty array;
   all values are kept normalized (no leading zero limbs). *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2

let is_zero (a : t) = Array.length a = 0

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * limb_bits) + width top

let to_int_opt (a : t) =
  if num_bits a > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end

let compare (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Stdlib.compare na nb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (na - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  let n = max na nb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < na then a.(i) else 0) + (if i < nb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let borrow = ref 0 in
  for i = 0 to na - 1 do
    let d = a.(i) - (if i < nb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then zero
  else begin
    let out = Array.make (na + nb) 0 in
    for i = 0 to na - 1 do
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        let v = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + nb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left (a : t) bits : t =
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    let out = Array.make (na + limb_shift + 1) 0 in
    for i = 0 to na - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) bits : t =
  if bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let na = Array.length a in
    if limb_shift >= na then zero
    else begin
      let n = na - limb_shift in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= na then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* Limb-wise schoolbook division (Knuth TAOCP vol. 2, Algorithm D): O(limbs
   of quotient * limbs of divisor), versus O(bits * limbs) for the binary
   long division it replaced — the difference between a 521-bit modular
   reduction costing ~1000 limb passes and ~20. All intermediates fit the
   63-bit native int: two-limb numerators and limb*limb products stay under
   2^53. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let nb = Array.length b in
    if nb = 1 then begin
      (* Short division by a single limb. *)
      let d = b.(0) in
      let na = Array.length a in
      let q = Array.make na 0 in
      let r = ref 0 in
      for i = na - 1 downto 0 do
        let cur = (!r lsl limb_bits) lor a.(i) in
        q.(i) <- cur / d;
        r := cur mod d
      done;
      (normalize q, normalize [| !r |])
    end
    else begin
      (* D1: normalize so the divisor's top limb has its high bit set; the
         quotient-digit estimate from the top two limbs is then off by at
         most 2. *)
      let width v =
        let rec go v = if v = 0 then 0 else 1 + go (v lsr 1) in
        go v
      in
      let shift = limb_bits - width b.(nb - 1) in
      let v = if shift = 0 then b else shift_left b shift in
      let na = Array.length a in
      let u = Array.make (na + 2) 0 in
      let a' = shift_left a shift in
      Array.blit a' 0 u 0 (Array.length a');
      let m = na - nb in
      let q = Array.make (m + 1) 0 in
      let vtop = v.(nb - 1) and vsec = v.(nb - 2) in
      for j = m downto 0 do
        (* D3: estimate the quotient digit from the top two limbs, then
           correct it with the third. *)
        let num = (u.(j + nb) lsl limb_bits) lor u.(j + nb - 1) in
        let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
        let adjusting = ref true in
        while !adjusting do
          if
            !qhat >= limb_base
            || !qhat * vsec > (!rhat lsl limb_bits) lor u.(j + nb - 2)
          then begin
            decr qhat;
            rhat := !rhat + vtop;
            if !rhat >= limb_base then adjusting := false
          end
          else adjusting := false
        done;
        (* D4: multiply and subtract. *)
        let carry = ref 0 and borrow = ref 0 in
        for i = 0 to nb - 1 do
          let p = (!qhat * v.(i)) + !carry in
          carry := p lsr limb_bits;
          let d = u.(i + j) - (p land limb_mask) - !borrow in
          if d < 0 then begin
            u.(i + j) <- d + limb_base;
            borrow := 1
          end
          else begin
            u.(i + j) <- d;
            borrow := 0
          end
        done;
        let d = u.(j + nb) - !carry - !borrow in
        u.(j + nb) <- d land limb_mask;
        if d >= 0 then q.(j) <- !qhat
        else begin
          (* D6: the estimate was one too high; add the divisor back. *)
          q.(j) <- !qhat - 1;
          let c = ref 0 in
          for i = 0 to nb - 1 do
            let s = u.(i + j) + v.(i) + !c in
            u.(i + j) <- s land limb_mask;
            c := s lsr limb_bits
          done;
          u.(j + nb) <- (u.(j + nb) + !c) land limb_mask
        end
      done;
      let r = normalize (Array.sub u 0 nb) in
      (normalize q, if shift = 0 then r else shift_right r shift)
    end
  end

let rem a b = snd (divmod a b)

let mod_mul a b ~modulus = rem (mul a b) modulus

(* Sliding-window exponentiation, 4-bit windows: precompute the eight odd
   powers b^1, b^3, ..., b^15 and consume the exponent MSB-first, squaring
   per bit and multiplying once per window — about 1.2 multiplies per
   exponent bit instead of the 1.5 of square-and-multiply. *)
let mod_pow ~base ~exp ~modulus =
  if equal modulus one then zero
  else begin
    let n = num_bits exp in
    if n = 0 then one
    else begin
      let b = rem base modulus in
      let b2 = mod_mul b b ~modulus in
      let odd_pows = Array.make 8 b in
      for i = 1 to 7 do
        odd_pows.(i) <- mod_mul odd_pows.(i - 1) b2 ~modulus
      done;
      let result = ref one in
      let i = ref (n - 1) in
      while !i >= 0 do
        if not (bit exp !i) then begin
          result := mod_mul !result !result ~modulus;
          decr i
        end
        else begin
          (* Window [l, i]: at most 4 bits, ending on a set bit so the
             window value is odd. *)
          let l = ref (max 0 (!i - 3)) in
          while not (bit exp !l) do incr l done;
          let v = ref 0 in
          for j = !i downto !l do
            v := (!v lsl 1) lor (if bit exp j then 1 else 0)
          done;
          for _ = !l to !i do
            result := mod_mul !result !result ~modulus
          done;
          result := mod_mul !result odd_pows.(!v lsr 1) ~modulus;
          i := !l - 1
        end
      done;
      !result
    end
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let of_hex s =
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' | ' ' -> -1
        | _ -> invalid_arg "Bignum.of_hex"
      in
      if d >= 0 then v := add (shift_left !v 4) (of_int d))
    s;
  !v

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let nibbles = (num_bits a + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / limb_bits and off = (i * 4) mod limb_bits in
      let v =
        (a.(limb) lsr off)
        lor (if off > limb_bits - 4 && limb + 1 < Array.length a then a.(limb + 1) lsl (limb_bits - off) else 0)
      in
      Buffer.add_char buf "0123456789abcdef".[v land 0xf]
    done;
    (* strip leading zero nibble if the bit count wasn't a nibble multiple *)
    let s = Buffer.contents buf in
    let start = ref 0 in
    while !start < String.length s - 1 && s.[!start] = '0' do incr start done;
    String.sub s !start (String.length s - !start)
  end

let of_bytes_be b =
  let v = ref zero in
  Bytes.iter (fun c -> v := add (shift_left !v 8) (of_int (Char.code c))) b;
  !v

let to_bytes_be ?size (a : t) =
  let needed = (num_bits a + 7) / 8 in
  let size = match size with None -> max needed 1 | Some s -> s in
  if needed > size then invalid_arg "Bignum.to_bytes_be: value too large";
  let out = Bytes.make size '\000' in
  let v = ref a in
  let i = ref (size - 1) in
  while not (is_zero !v) do
    (match to_int_opt (rem !v (of_int 256)) with
    | Some b -> Bytes.set out !i (Char.chr b)
    | None -> assert false);
    v := shift_right !v 8;
    decr i
  done;
  out

let random rng ~bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = Util.Rng.bytes rng nbytes in
    (* Mask excess high bits. *)
    let excess = (nbytes * 8) - bits in
    if excess > 0 then
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr excess)));
    of_bytes_be b
  end

let rec random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let candidate = random rng ~bits:(num_bits bound) in
  if compare candidate bound < 0 then candidate else random_below rng bound

let is_probable_prime ?(rounds = 20) rng n =
  if compare n two < 0 then false
  else if compare n (of_int 4) < 0 then true (* 2 and 3 *)
  else if not (bit n 0) then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let n_minus_1 = sub n one in
    let s = ref 0 in
    let d = ref n_minus_1 in
    while not (bit !d 0) do
      d := shift_right !d 1;
      incr s
    done;
    let witness a =
      let x = ref (mod_pow ~base:a ~exp:!d ~modulus:n) in
      if equal !x one || equal !x n_minus_1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !s - 1 do
             x := mod_mul !x !x ~modulus:n;
             if equal !x n_minus_1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec trial k =
      if k = 0 then true
      else
        let a = add two (random_below rng (sub n (of_int 3))) in
        if witness a then false else trial (k - 1)
    in
    trial rounds
  end

let pp ppf a = Format.fprintf ppf "0x%s" (to_hex a)
