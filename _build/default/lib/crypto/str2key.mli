(** Password-to-key derivation, Kerberos V4 style.

    "The client key Kc is derived from a non-invertible transform of the
    user's typed password." The transform is public — which is exactly what
    makes the paper's offline password-guessing attack work: anyone can run
    candidate passwords through [derive] and test the result against a
    recorded [AS_REP]. *)

val derive : string -> bytes
(** [derive password] fan-folds the password into 56 bits, fixes parity,
    then runs a DES-CBC checksum of the password under that key (the V4
    recipe's shape). The result is a parity-fixed, non-weak DES key. *)
