(* Shape of the MIT V4 string_to_key: fan-fold the password into 8 bytes,
   reversing the bits of alternate chunks, fix parity, then CBC-checksum the
   password under that key and fix parity again. *)

let reverse_7bits c =
  let r = ref 0 in
  for i = 0 to 6 do
    if (c lsr i) land 1 = 1 then r := !r lor (1 lsl (6 - i))
  done;
  !r

let fanfold password =
  let acc = Array.make 8 0 in
  let n = String.length password in
  let nchunks = (n + 7) / 8 in
  for chunk = 0 to nchunks - 1 do
    let forward = chunk mod 2 = 0 in
    for j = 0 to 7 do
      let pos = (chunk * 8) + j in
      if pos < n then begin
        let c = Char.code password.[pos] land 0x7f in
        let idx = if forward then j else 7 - j in
        let v = if forward then c else reverse_7bits c in
        acc.(idx) <- acc.(idx) lxor v
      end
    done
  done;
  (* Left-shift each 7-bit value into the high bits; parity bit is low. *)
  Bytes.init 8 (fun i -> Char.chr ((acc.(i) lsl 1) land 0xff))

let derive password =
  let base = Des.fix_parity (fanfold password) in
  let key = Des.schedule base in
  let data = Mode.pad (Bytes.of_string password) in
  let ct = Mode.cbc_encrypt key ~iv:base data in
  let last = Bytes.sub ct (Bytes.length ct - 8) 8 in
  let candidate = Des.fix_parity last in
  if Des.is_weak candidate then
    (* V4 corrects weak keys by toggling a byte. *)
    Des.fix_parity (Util.Bytesutil.xor candidate (Util.Bytesutil.of_hex "00000000000000f0"))
  else candidate
