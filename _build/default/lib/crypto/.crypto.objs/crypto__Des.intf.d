lib/crypto/des.mli: Util
