lib/crypto/str2key.ml: Array Bytes Char Des Mode String Util
