lib/crypto/dh.mli: Bignum Util
