lib/crypto/prf.ml: Bytes Des Md4 Util
