lib/crypto/md4.mli:
