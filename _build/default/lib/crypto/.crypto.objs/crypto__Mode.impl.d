lib/crypto/mode.ml: Bytes Char Des
