lib/crypto/dlog.mli: Bignum Dh Util
