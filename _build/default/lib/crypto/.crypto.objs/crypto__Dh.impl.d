lib/crypto/dh.ml: Bignum Bytes Des List Md4 Printf
