lib/crypto/checksum.mli: Format
