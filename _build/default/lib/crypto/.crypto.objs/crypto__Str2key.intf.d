lib/crypto/str2key.mli:
