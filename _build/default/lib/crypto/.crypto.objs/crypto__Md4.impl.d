lib/crypto/md4.ml: Array Bytes Des Int32 Int64 List Mode Util
