lib/crypto/prf.mli:
