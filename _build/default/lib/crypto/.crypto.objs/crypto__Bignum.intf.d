lib/crypto/bignum.mli: Format Util
