lib/crypto/dlog.ml: Bignum Dh Hashtbl Util
