lib/crypto/mode.mli: Des
