lib/crypto/checksum.ml: Crc32 Format Md4 Util
