let baby_step_giant_step grp ~target =
  let open Bignum in
  let p = grp.Dh.p and g = grp.Dh.g in
  let order = sub p one in
  (* m = ceil(sqrt(p)) via integer Newton-ish doubling on num_bits *)
  let m =
    let approx = shift_left one ((num_bits p + 1) / 2) in
    approx
  in
  let m_int = match to_int_opt m with Some v -> v | None -> invalid_arg "bsgs: modulus too large" in
  let table = Hashtbl.create (2 * m_int) in
  (* Baby steps: g^j *)
  let acc = ref one in
  for j = 0 to m_int - 1 do
    if not (Hashtbl.mem table (to_hex !acc)) then Hashtbl.add table (to_hex !acc) j;
    acc := mod_mul !acc g ~modulus:p
  done;
  (* Giant steps: target * (g^-m)^i where g^-m = g^(order - m) *)
  let g_inv_m = mod_pow ~base:g ~exp:(sub order (rem m order)) ~modulus:p in
  let gamma = ref (rem target p) in
  let found = ref None in
  (try
     for i = 0 to m_int - 1 do
       (match Hashtbl.find_opt table (to_hex !gamma) with
       | Some j ->
           let x = rem (add (mul (of_int i) m) (of_int j)) order in
           found := Some x;
           raise Exit
       | None -> ());
       gamma := mod_mul !gamma g_inv_m ~modulus:p
     done
   with Exit -> ());
  !found

(* Pollard's lambda: a tame kangaroo hops from g^max_exp leaving a trap at
   its final landing spot; a wild kangaroo starting from the target hops
   with the same pseudorandom strides and, if the exponent is in range,
   lands in the trap with constant probability per pass. Strides are powers
   of two keyed on the group element, mean ~sqrt(max_exp). *)
let kangaroo ?(max_iters = 10_000_000) grp ~target ~max_exp =
  let open Bignum in
  let p = grp.Dh.p and g = grp.Dh.g in
  if max_exp <= 0 then None
  else begin
    let h = rem target p in
    (* Stride set: k powers of two with mean around sqrt(max_exp)/2. *)
    let k =
      let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
      max 2 (bits max_exp / 2 + 1)
    in
    let stride x =
      let sel = match to_int_opt (rem x (of_int k)) with Some v -> v | None -> 0 in
      1 lsl sel
    in
    let hops = 4 * (1 lsl (k - 1)) in
    (* Tame kangaroo from g^max_exp. *)
    let tame = ref (mod_pow ~base:g ~exp:(of_int max_exp) ~modulus:p) in
    let tame_dist = ref 0 in
    for _ = 1 to hops do
      let s = stride !tame in
      tame := mod_mul !tame (mod_pow ~base:g ~exp:(of_int s) ~modulus:p) ~modulus:p;
      tame_dist := !tame_dist + s
    done;
    let trap = !tame and trap_dist = !tame_dist in
    (* Wild kangaroo from the target. *)
    let wild = ref h in
    let wild_dist = ref 0 in
    let result = ref None in
    (try
       for _ = 1 to max_iters do
         if equal !wild trap then begin
           (* g^(x + wild_dist) = g^(max_exp + trap_dist) *)
           let x = max_exp + trap_dist - !wild_dist in
           if
             x >= 0
             && equal (mod_pow ~base:g ~exp:(of_int x) ~modulus:p) h
           then result := Some (of_int x);
           raise Exit
         end;
         if !wild_dist > max_exp + trap_dist then raise Exit;
         let s = stride !wild in
         wild := mod_mul !wild (mod_pow ~base:g ~exp:(of_int s) ~modulus:p) ~modulus:p;
         wild_dist := !wild_dist + s
       done
     with Exit -> ());
    !result
  end

(* Pollard rho with Floyd cycle detection. Exponent bookkeeping is done in
   native ints modulo n = p - 1, which restricts this function to moduli
   under 62 bits -- exactly the crackable regime it exists to demonstrate. *)
let pollard_rho ?(max_iters = 200_000_000) rng grp ~target =
  let open Bignum in
  let p = grp.Dh.p and g = grp.Dh.g in
  let n =
    match to_int_opt (sub p one) with
    | Some v -> v
    | None -> invalid_arg "pollard_rho: modulus too large for the toy solver"
  in
  let h = rem target p in
  if is_zero h then None
  else begin
    let step (x, a, b) =
      (* Partition by a cheap residue of the group element. *)
      let sel = match to_int_opt (rem x (of_int 3)) with Some v -> v | None -> 0 in
      match sel with
      | 0 -> (mod_mul x g ~modulus:p, (a + 1) mod n, b)
      | 1 -> (mod_mul x h ~modulus:p, a, (b + 1) mod n)
      | _ -> (mod_mul x x ~modulus:p, a * 2 mod n, b * 2 mod n)
    in
    let rec egcd a b = if b = 0 then (a, 1, 0) else
      let d, x, y = egcd b (a mod b) in
      (d, y, x - (a / b * y))
    in
    let solve a1 b1 a2 b2 =
      (* a1 + b1*x = a2 + b2*x (mod n)  =>  (b1 - b2) x = a2 - a1 (mod n) *)
      let bd = ((b1 - b2) mod n + n) mod n in
      let ad = ((a2 - a1) mod n + n) mod n in
      if bd = 0 then None
      else begin
        let d, inv, _ = egcd bd n in
        if ad mod d <> 0 then None
        else begin
          let n' = n / d in
          let x0 = ((ad / d * inv) mod n' + n') mod n' in
          (* Up to d candidates x0 + k*n'; cap the scan. *)
          let rec try_k k =
            if k >= d || k > 4096 then None
            else
              let x = x0 + (k * n') in
              if equal (mod_pow ~base:g ~exp:(of_int x) ~modulus:p) h then Some (of_int x)
              else try_k (k + 1)
          in
          try_k 0
        end
      end
    in
    (* Randomized start: x = g^a0 * h^b0 *)
    let a0 = Util.Rng.int rng n and b0 = 1 + Util.Rng.int rng (n - 1) in
    let x0 =
      mod_mul
        (mod_pow ~base:g ~exp:(of_int a0) ~modulus:p)
        (mod_pow ~base:h ~exp:(of_int b0) ~modulus:p)
        ~modulus:p
    in
    let tortoise = ref (x0, a0, b0) and hare = ref (step (x0, a0, b0)) in
    let result = ref None in
    (try
       for _ = 1 to max_iters do
         let tx, _, _ = !tortoise and hx, _, _ = !hare in
         if equal tx hx then begin
           let _, a1, b1 = !tortoise and _, a2, b2 = !hare in
           result := solve a1 b1 a2 b2;
           raise Exit
         end;
         tortoise := step !tortoise;
         hare := step (step !hare)
       done
     with Exit -> ());
    !result
  end
