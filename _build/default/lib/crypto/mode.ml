let block = Des.block_size

let pad b =
  let n = Bytes.length b in
  let padlen = block - (n mod block) in
  let out = Bytes.create (n + padlen) in
  Bytes.blit b 0 out 0 n;
  Bytes.fill out n padlen (Char.chr padlen);
  out

let unpad b =
  let n = Bytes.length b in
  if n = 0 || n mod block <> 0 then None
  else
    let padlen = Char.code (Bytes.get b (n - 1)) in
    if padlen < 1 || padlen > block || padlen > n then None
    else
      let ok = ref true in
      for i = n - padlen to n - 1 do
        if Char.code (Bytes.get b i) <> padlen then ok := false
      done;
      if !ok then Some (Bytes.sub b 0 (n - padlen)) else None

let check_blocks name b =
  if Bytes.length b mod block <> 0 then
    invalid_arg (name ^ ": input not a multiple of the block size")

let check_iv iv =
  if Bytes.length iv <> block then invalid_arg "Mode: IV must be 8 bytes"

let map_blocks f b =
  let n = Bytes.length b in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    Bytes.blit (f (Bytes.sub b !i block)) 0 out !i block;
    i := !i + block
  done;
  out

let ecb_encrypt key b =
  check_blocks "ecb_encrypt" b;
  map_blocks (Des.encrypt_block key) b

let ecb_decrypt key b =
  check_blocks "ecb_decrypt" b;
  map_blocks (Des.decrypt_block key) b

let cbc_encrypt key ~iv b =
  check_blocks "cbc_encrypt" b;
  check_iv iv;
  let n = Bytes.length b in
  let out = Bytes.create n in
  let prev = ref iv in
  let i = ref 0 in
  while !i < n do
    let p = Bytes.sub b !i block in
    let c = Des.encrypt_block key (Util.Bytesutil.xor p !prev) in
    Bytes.blit c 0 out !i block;
    prev := c;
    i := !i + block
  done;
  out

let cbc_decrypt key ~iv b =
  check_blocks "cbc_decrypt" b;
  check_iv iv;
  let n = Bytes.length b in
  let out = Bytes.create n in
  let prev = ref iv in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.sub b !i block in
    let p = Util.Bytesutil.xor (Des.decrypt_block key c) !prev in
    Bytes.blit p 0 out !i block;
    prev := c;
    i := !i + block
  done;
  out

(* PCBC: C_i = E(P_i xor P_{i-1} xor C_{i-1}), seeding P_0 xor C_0 with the
   IV. Kerberos V4's "propagating" mode. *)
let pcbc_encrypt key ~iv b =
  check_blocks "pcbc_encrypt" b;
  check_iv iv;
  let n = Bytes.length b in
  let out = Bytes.create n in
  let feed = ref iv in
  let i = ref 0 in
  while !i < n do
    let p = Bytes.sub b !i block in
    let c = Des.encrypt_block key (Util.Bytesutil.xor p !feed) in
    Bytes.blit c 0 out !i block;
    feed := Util.Bytesutil.xor p c;
    i := !i + block
  done;
  out

let pcbc_decrypt key ~iv b =
  check_blocks "pcbc_decrypt" b;
  check_iv iv;
  let n = Bytes.length b in
  let out = Bytes.create n in
  let feed = ref iv in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.sub b !i block in
    let p = Util.Bytesutil.xor (Des.decrypt_block key c) !feed in
    Bytes.blit p 0 out !i block;
    feed := Util.Bytesutil.xor p c;
    i := !i + block
  done;
  out

let zero_iv = Bytes.make block '\000'
