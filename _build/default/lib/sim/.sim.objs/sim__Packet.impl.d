lib/sim/packet.ml: Addr Bytes Format
