lib/sim/addr.ml: Format Int Printf
