lib/sim/host.mli: Addr
