lib/sim/adversary.mli: Addr Net Packet
