lib/sim/net.ml: Addr Engine Format Hashtbl Host List Packet Printf Util
