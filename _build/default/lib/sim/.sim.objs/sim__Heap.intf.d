lib/sim/heap.mli:
