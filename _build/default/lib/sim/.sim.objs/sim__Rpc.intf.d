lib/sim/rpc.mli: Addr Host Net Packet
