lib/sim/adversary.ml: List Net Packet
