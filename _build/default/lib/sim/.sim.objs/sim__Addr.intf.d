lib/sim/addr.mli: Format
