lib/sim/tcpish.mli: Addr Host Net
