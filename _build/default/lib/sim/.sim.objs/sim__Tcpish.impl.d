lib/sim/tcpish.ml: Addr Bytes Hashtbl Host Net Packet Util Wire
