lib/sim/engine.ml: Float Heap Int
