lib/sim/rpc.ml: Engine Net
