lib/sim/net.mli: Addr Engine Format Host Packet Util
