lib/sim/host.ml: Addr List
