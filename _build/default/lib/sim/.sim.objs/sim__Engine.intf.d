lib/sim/engine.mli:
