lib/sim/packet.mli: Addr Format
