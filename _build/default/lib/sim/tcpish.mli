(** A miniature connection-oriented transport, enough to reproduce two of
    the paper's points:

    - Morris's 1985 attack: with a {e predictable} initial sequence number,
      an off-path attacker can complete a handshake and speak one half of a
      "preauthenticated" connection without seeing any responses — and in a
      Kerberos world, "his attack would still work if accompanied by a
      stolen live authenticator";
    - connection hijacking: "an attacker can always wait until the
      connection is set up and authenticated, and then take it over",
      making the network address in the ticket worthless.

    Segments are accepted iff their sequence number is exactly the next
    expected one; there is no retransmission (the simulated network is
    reliable unless the adversary interferes). *)

type isn_mode =
  | Predictable  (** old-BSD style: a coarse function of wall-clock time *)
  | Random_isn  (** drawn from the network RNG *)

type conn

val listen :
  Net.t -> Host.t -> port:int -> ?isn:isn_mode -> on_accept:(conn -> unit) -> unit -> unit
(** Accept connections on [port]. [on_accept] fires when the handshake
    completes; the server cannot tell a spoofed handshake from a real one. *)

val connect :
  Net.t ->
  Host.t ->
  ?src:Addr.t ->
  ?isn:isn_mode ->
  dst:Addr.t ->
  dport:int ->
  on_connected:(conn -> unit) ->
  unit ->
  unit

val send : conn -> bytes -> unit
val on_data : conn -> (bytes -> unit) -> unit
val close : conn -> unit

val peer : conn -> Addr.t * int
(** The address the connection {e appears} to come from — what an
    address-checking server trusts. *)

val local : conn -> Addr.t * int
val bytes_received : conn -> int
val bytes_sent : conn -> int

val predict_isn : Net.t -> isn_mode -> int
(** The attacker's computation: for [Predictable] this equals the ISN the
    target will choose right now; for [Random_isn] it is a blind guess. *)

(** Raw segment forging, for attack code. *)

type segment = { syn : bool; ack : bool; fin : bool; seq : int; ackno : int; body : bytes }

val encode_segment : segment -> bytes
val decode_segment : bytes -> segment option
