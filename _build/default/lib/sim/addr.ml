type t = int

let of_quad a b c d =
  let byte v = if v < 0 || v > 255 then invalid_arg "Addr.of_quad" else v in
  (byte a lsl 24) lor (byte b lsl 16) lor (byte c lsl 8) lor byte d

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal = Int.equal
let compare = Int.compare
