(** Datagrams carried by the simulated network. *)

type t = {
  src : Addr.t;
  sport : int;
  dst : Addr.t;
  dport : int;
  payload : bytes;
  uid : int;  (** unique per send, for tracing *)
}

val pp : Format.formatter -> t -> unit
