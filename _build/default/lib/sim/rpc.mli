(** Request/response helper over the datagram network: sends a request from
    an ephemeral port and hands the first reply to the continuation.
    UDP-shaped — the client retransmits on timeout, which is the behaviour
    that complicates server-side authenticator caching in the paper. *)

val call :
  Net.t ->
  Host.t ->
  ?src:Addr.t ->
  ?timeout:float ->
  ?retries:int ->
  dst:Addr.t ->
  dport:int ->
  bytes ->
  on_reply:(Packet.t -> unit) ->
  on_timeout:(unit -> unit) ->
  unit
