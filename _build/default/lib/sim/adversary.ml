type t = { network : Net.t; mutable seen : Packet.t list (* reverse order *) }

let attach network = { network; seen = [] }
let net t = t.network

let start_tap t = Net.add_tap t.network (fun pkt -> t.seen <- pkt :: t.seen)

let captured t = List.rev t.seen

let capture_matching t pred = List.filter pred (captured t)

let intercept t fn = Net.set_interceptor t.network fn
let stop_intercepting t = Net.clear_interceptor t.network

let spoof t ~src ~sport ~dst ~dport payload =
  Net.inject t.network { Packet.src; sport; dst; dport; payload; uid = 0 }

let replay t pkt = Net.inject t.network pkt

let replay_to t pkt ~dst ~dport =
  Net.inject t.network { pkt with Packet.dst; dport }
