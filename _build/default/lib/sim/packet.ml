type t = {
  src : Addr.t;
  sport : int;
  dst : Addr.t;
  dport : int;
  payload : bytes;
  uid : int;
}

let pp ppf t =
  Format.fprintf ppf "#%d %a:%d -> %a:%d (%d bytes)" t.uid Addr.pp t.src t.sport
    Addr.pp t.dst t.dport (Bytes.length t.payload)
