type event = { time : float; seq : int; fn : unit -> unit }

type t = { heap : event Heap.t; mutable clock : float; mutable next_seq : int }

let cmp a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create () = { heap = Heap.create ~cmp; clock = 0.0; next_seq = 0 }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  Heap.push t.heap { time = at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let schedule_after t delay fn = schedule t ~at:(t.clock +. delay) fn

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      ev.fn ();
      true

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | Some ev when ev.time <= limit -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < limit then t.clock <- limit

let pending t = Heap.size t.heap
