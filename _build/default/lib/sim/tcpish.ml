type isn_mode = Predictable | Random_isn

type segment = { syn : bool; ack : bool; fin : bool; seq : int; ackno : int; body : bytes }

let encode_segment s =
  let w = Wire.Codec.Writer.create () in
  let flags =
    (if s.syn then 1 else 0) lor (if s.ack then 2 else 0) lor if s.fin then 4 else 0
  in
  Wire.Codec.Writer.u8 w flags;
  Wire.Codec.Writer.u32 w s.seq;
  Wire.Codec.Writer.u32 w s.ackno;
  Wire.Codec.Writer.lbytes w s.body;
  Wire.Codec.Writer.contents w

let decode_segment b =
  match
    let r = Wire.Codec.Reader.of_bytes b in
    let flags = Wire.Codec.Reader.u8 r in
    let seq = Wire.Codec.Reader.u32 r in
    let ackno = Wire.Codec.Reader.u32 r in
    let body = Wire.Codec.Reader.lbytes r in
    Wire.Codec.Reader.expect_end r;
    { syn = flags land 1 <> 0; ack = flags land 2 <> 0; fin = flags land 4 <> 0;
      seq; ackno; body }
  with
  | s -> Some s
  | exception Wire.Codec.Decode_error _ -> None

let predict_isn net = function
  | Predictable ->
      (* Old-BSD shape: a coarse, clock-derived counter. Anyone who knows
         the time knows the ISN. *)
      (64 * int_of_float (Net.now net)) land 0x7FFFFFFF
  | Random_isn -> Util.Rng.int (Net.rng net) 0x40000000

type conn = {
  net : Net.t;
  host : Host.t;
  local_addr : Addr.t;
  local_port : int;
  peer_addr : Addr.t;
  peer_port : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable established : bool;
  mutable closed : bool;
  mutable data_cb : bytes -> unit;
  mutable sent : int;
  mutable received : int;
}

let peer c = (c.peer_addr, c.peer_port)
let local c = (c.local_addr, c.local_port)
let bytes_received c = c.received
let bytes_sent c = c.sent

let transmit c seg =
  Net.send c.net ~src:c.local_addr ~sport:c.local_port ~dst:c.peer_addr
    ~dport:c.peer_port c.host (encode_segment seg)

let send c body =
  if c.closed then invalid_arg "Tcpish.send: connection closed";
  transmit c { syn = false; ack = false; fin = false; seq = c.snd_nxt; ackno = c.rcv_nxt; body };
  c.snd_nxt <- (c.snd_nxt + Bytes.length body) land 0x7FFFFFFF;
  c.sent <- c.sent + Bytes.length body

let on_data c fn = c.data_cb <- fn

let close c =
  if not c.closed then begin
    transmit c { syn = false; ack = false; fin = true; seq = c.snd_nxt; ackno = c.rcv_nxt; body = Bytes.empty };
    c.closed <- true
  end

(* Shared inbound segment handling once established. *)
let handle_established c seg =
  if seg.fin then c.closed <- true
  else if Bytes.length seg.body > 0 then
    if seg.seq = c.rcv_nxt then begin
      c.rcv_nxt <- (c.rcv_nxt + Bytes.length seg.body) land 0x7FFFFFFF;
      c.received <- c.received + Bytes.length seg.body;
      c.data_cb seg.body
    end
    else Net.note c.net "tcpish: out-of-window segment dropped"

let listen net host ~port ?(isn = Random_isn) ~on_accept () =
  (* Connection table keyed by the apparent peer. *)
  let conns : (Addr.t * int, conn * bool ref (* handshake done *)) Hashtbl.t =
    Hashtbl.create 8
  in
  Net.listen net host ~port (fun pkt ->
      match decode_segment pkt.Packet.payload with
      | None -> Net.note net "tcpish: malformed segment"
      | Some seg -> (
          let key = (pkt.Packet.src, pkt.Packet.sport) in
          match Hashtbl.find_opt conns key with
          | None ->
              if seg.syn && not seg.ack then begin
                let c =
                  { net; host; local_addr = pkt.Packet.dst; local_port = port;
                    peer_addr = pkt.Packet.src; peer_port = pkt.Packet.sport;
                    snd_nxt = predict_isn net isn; rcv_nxt = (seg.seq + 1) land 0x7FFFFFFF;
                    established = false; closed = false; data_cb = ignore;
                    sent = 0; received = 0 }
                in
                Hashtbl.replace conns key (c, ref false);
                (* SYN+ACK *)
                transmit c
                  { syn = true; ack = true; fin = false; seq = c.snd_nxt;
                    ackno = c.rcv_nxt; body = Bytes.empty };
                c.snd_nxt <- (c.snd_nxt + 1) land 0x7FFFFFFF
              end
          | Some (c, done_) ->
              if (not !done_) && seg.ack && not seg.syn then begin
                (* Final ACK of the handshake: the server checks that the
                   client echoes its ISN — the only proof of return-path
                   reachability, and exactly what Morris predicted. *)
                if seg.ackno = c.snd_nxt then begin
                  done_ := true;
                  c.established <- true;
                  on_accept c;
                  (* the ACK segment may itself carry data *)
                  handle_established c seg
                end
                else Net.note net "tcpish: bad handshake ack"
              end
              else if !done_ then handle_established c seg))

let connect net host ?src ?(isn = Random_isn) ~dst ~dport ~on_connected () =
  let sport = Net.ephemeral_port net in
  let local_addr = match src with None -> Host.primary_ip host | Some a -> a in
  let c =
    { net; host; local_addr; local_port = sport; peer_addr = dst; peer_port = dport;
      snd_nxt = predict_isn net isn; rcv_nxt = 0; established = false; closed = false;
      data_cb = ignore; sent = 0; received = 0 }
  in
  Net.listen net host ~port:sport (fun pkt ->
      match decode_segment pkt.Packet.payload with
      | None -> ()
      | Some seg ->
          if (not c.established) && seg.syn && seg.ack then begin
            (* snd_nxt already counts the SYN we sent. *)
            if seg.ackno = c.snd_nxt then begin
              c.rcv_nxt <- (seg.seq + 1) land 0x7FFFFFFF;
              c.established <- true;
              transmit c
                { syn = false; ack = true; fin = false; seq = c.snd_nxt;
                  ackno = c.rcv_nxt; body = Bytes.empty };
              on_connected c
            end
          end
          else if c.established then handle_established c seg);
  (* SYN *)
  transmit c { syn = true; ack = false; fin = false; seq = c.snd_nxt; ackno = 0; body = Bytes.empty };
  c.snd_nxt <- (c.snd_nxt + 1) land 0x7FFFFFFF
