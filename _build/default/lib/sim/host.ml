type security = Workstation | Multi_user

type t = {
  name : string;
  ips : Addr.t list;
  security : security;
  mutable clock_offset : float;
  clock_drift : float;
  mutable cache : (string * bytes) list;
  mutable logged_in : bool;
  mutable on_cache_write : (string -> bytes -> unit) option;
}

let create ?(security = Workstation) ?(clock_offset = 0.0) ?(clock_drift = 0.0)
    ~name ~ips () =
  if ips = [] then invalid_arg "Host.create: a host needs at least one address";
  { name; ips; security; clock_offset; clock_drift; cache = []; logged_in = false;
    on_cache_write = None }

let primary_ip t = List.hd t.ips

let local_time t ~real = real +. t.clock_offset +. (t.clock_drift *. real)

let set_clock t ~real ~reading =
  t.clock_offset <- reading -. real -. (t.clock_drift *. real)

let cache_put t key v =
  t.cache <- (key, v) :: List.remove_assoc key t.cache;
  (* Diskless workstations page their memory to a server: every cache
     write may cross the network in the clear. *)
  match t.on_cache_write with None -> () | Some page -> page key v

let cache_get t key = List.assoc_opt key t.cache

let cache_wipe t =
  t.cache <- [];
  t.logged_in <- false

let steal_cache t =
  match t.security with Multi_user -> Some t.cache | Workstation -> None
