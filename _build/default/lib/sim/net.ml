type decision = Deliver | Drop | Replace of Packet.t list

type event =
  | Sent of float * Packet.t
  | Delivered of float * Packet.t
  | Dropped of float * Packet.t * string
  | Note of float * string

type t = {
  eng : Engine.t;
  latency : float;
  rng : Util.Rng.t;
  hosts : (Addr.t, Host.t) Hashtbl.t;
  ports : (Addr.t * int, Packet.t -> unit) Hashtbl.t;
  mutable taps : (Packet.t -> unit) list;
  mutable interceptor : (Packet.t -> decision) option;
  mutable next_uid : int;
  mutable next_port : int;
  mutable trace : event list;  (** reverse chronological *)
}

let create ?(latency = 0.005) ?(seed = 1L) eng =
  { eng; latency; rng = Util.Rng.create seed; hosts = Hashtbl.create 16;
    ports = Hashtbl.create 64; taps = []; interceptor = None; next_uid = 0;
    next_port = 33000; trace = [] }

let engine t = t.eng
let now t = Engine.now t.eng
let rng t = t.rng

let record t ev = t.trace <- ev :: t.trace
let note t msg = record t (Note (now t, msg))
let events t = List.rev t.trace

let attach t host =
  List.iter
    (fun ip ->
      if Hashtbl.mem t.hosts ip then
        invalid_arg (Printf.sprintf "Net.attach: address %s already in use" (Addr.to_string ip));
      Hashtbl.replace t.hosts ip host)
    host.Host.ips

let host_of_addr t addr = Hashtbl.find_opt t.hosts addr

let local_time t host = Host.local_time host ~real:(now t)

let listen t host ~port fn =
  List.iter (fun ip -> Hashtbl.replace t.ports (ip, port) fn) host.Host.ips

let unlisten t host ~port =
  List.iter (fun ip -> Hashtbl.remove t.ports (ip, port)) host.Host.ips

let ephemeral_port t =
  t.next_port <- t.next_port + 1;
  t.next_port

let deliver t pkt =
  Engine.schedule_after t.eng t.latency (fun () ->
      match Hashtbl.find_opt t.ports (pkt.Packet.dst, pkt.Packet.dport) with
      | Some fn ->
          record t (Delivered (now t, pkt));
          fn pkt
      | None -> record t (Dropped (now t, pkt, "no listener")))

let transmit t pkt =
  record t (Sent (now t, pkt));
  List.iter (fun tap -> tap pkt) t.taps;
  match t.interceptor with
  | None -> deliver t pkt
  | Some f -> (
      match f pkt with
      | Deliver -> deliver t pkt
      | Drop -> record t (Dropped (now t, pkt, "intercepted"))
      | Replace pkts ->
          record t (Dropped (now t, pkt, "replaced in flight"));
          List.iter (deliver t) pkts)

let send t ?src ~sport ~dst ~dport host payload =
  let src = match src with None -> Host.primary_ip host | Some s -> s in
  if not (List.exists (Addr.equal src) host.Host.ips) then
    invalid_arg "Net.send: source address not owned by sending host";
  t.next_uid <- t.next_uid + 1;
  transmit t { Packet.src; sport; dst; dport; payload; uid = t.next_uid }

let inject t pkt =
  t.next_uid <- t.next_uid + 1;
  let pkt = { pkt with Packet.uid = t.next_uid } in
  record t (Sent (now t, pkt));
  List.iter (fun tap -> tap pkt) t.taps;
  deliver t pkt

let add_tap t fn = t.taps <- t.taps @ [ fn ]
let set_interceptor t fn = t.interceptor <- Some fn
let clear_interceptor t = t.interceptor <- None

let pp_event ppf = function
  | Sent (ts, p) -> Format.fprintf ppf "[%8.4f] send    %a" ts Packet.pp p
  | Delivered (ts, p) -> Format.fprintf ppf "[%8.4f] deliver %a" ts Packet.pp p
  | Dropped (ts, p, why) -> Format.fprintf ppf "[%8.4f] drop    %a (%s)" ts Packet.pp p why
  | Note (ts, msg) -> Format.fprintf ppf "[%8.4f] note    %s" ts msg
