(** Network addresses: IPv4-shaped 32-bit values. Kerberos V4 binds tickets
    to these; the paper argues the binding buys nothing. *)

type t = int

val of_quad : int -> int -> int -> int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
