(** A simulated machine.

    The model carries the environmental facts the paper's analysis turns on:
    - a local clock with offset and drift (authenticator validation depends
      on "machines' clocks being roughly synchronized");
    - a credential cache, which on a {e multi-user} host is readable by a
      co-resident attacker while sessions are live, but on a single-user
      workstation is wiped at logout ("Kerberos attempts to wipe out old
      keys at logoff time");
    - possibly several addresses (multi-homed hosts, for which V4's
      address-bound tickets "cannot live with this limitation"). *)

type security = Workstation | Multi_user

type t = {
  name : string;
  ips : Addr.t list;
  security : security;
  mutable clock_offset : float;  (** seconds added to true (engine) time *)
  clock_drift : float;  (** fractional rate error, e.g. 1e-5 *)
  mutable cache : (string * bytes) list;  (** credential cache *)
  mutable logged_in : bool;
  mutable on_cache_write : (string -> bytes -> unit) option;
      (** paging hook: on a diskless workstation, "/tmp exists on a file
          server" and "there is no guarantee that shared memory is not
          paged; if this entails network traffic, an intruder can capture
          these keys". When set, every cache write is also handed to this
          function (which the scenario wires to a cleartext page-out). *)
}

val create :
  ?security:security ->
  ?clock_offset:float ->
  ?clock_drift:float ->
  name:string ->
  ips:Addr.t list ->
  unit ->
  t

val primary_ip : t -> Addr.t

val local_time : t -> real:float -> float
(** What this host's clock reads when true time is [real]. *)

val set_clock : t -> real:float -> reading:float -> unit
(** Adjust [clock_offset] so the host's clock shows [reading] at [real]
    — what a (possibly spoofed) time-protocol synchronization does. *)

val cache_put : t -> string -> bytes -> unit
val cache_get : t -> string -> bytes option
val cache_wipe : t -> unit
(** Logout on a workstation: keys are destroyed. *)

val steal_cache : t -> (string * bytes) list option
(** What a co-resident attacker can read: [Some cache] on a multi-user host
    with live sessions, [None] on a workstation (no remote access, and keys
    are wiped when the user leaves). *)
