let call net host ?src ?(timeout = 1.0) ?(retries = 0) ~dst ~dport payload
    ~on_reply ~on_timeout =
  let sport = Net.ephemeral_port net in
  let answered = ref false in
  Net.listen net host ~port:sport (fun pkt ->
      if not !answered then begin
        answered := true;
        Net.unlisten net host ~port:sport;
        on_reply pkt
      end);
  let rec attempt remaining =
    Net.send net ?src ~sport ~dst ~dport host payload;
    Engine.schedule_after (Net.engine net) timeout (fun () ->
        if not !answered then
          if remaining > 0 then attempt (remaining - 1)
          else begin
            Net.unlisten net host ~port:sport;
            on_timeout ()
          end)
  in
  attempt retries
