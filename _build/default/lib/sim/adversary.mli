(** The Dolev-Yao attacker: a convenient façade over the network hooks.

    One adversary per network is enough for every experiment; it records
    all traffic it has seen ([captured]) so attack code can hunt for
    tickets, authenticators and login dialogs after the fact, exactly as
    the paper's intruder "would have everything in place before the
    ticket-capture was attempted". *)

type t

val attach : Net.t -> t
val net : t -> Net.t

val start_tap : t -> unit
(** Begin recording all packets. *)

val captured : t -> Packet.t list
(** Everything seen so far, chronological. *)

val capture_matching : t -> (Packet.t -> bool) -> Packet.t list

val intercept : t -> (Packet.t -> Net.decision) -> unit
(** Install an in-flight rewriter (drop / modify / replace). *)

val stop_intercepting : t -> unit

val spoof :
  t -> src:Addr.t -> sport:int -> dst:Addr.t -> dport:int -> bytes -> unit
(** Inject a forged packet with an arbitrary source. *)

val replay : t -> Packet.t -> unit
(** Re-inject a previously captured packet verbatim. *)

val replay_to : t -> Packet.t -> dst:Addr.t -> dport:int -> unit
(** Re-inject a captured packet, redirected to a different destination. *)
