(** Deterministic discrete-event engine. Time is in seconds. Events
    scheduled at equal times fire in scheduling order. *)

type t

val create : unit -> t
val now : t -> float
val schedule : t -> at:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
val run : t -> unit
(** Drain the queue. *)

val run_until : t -> float -> unit
(** Fire everything scheduled at or before the given time, then set the
    clock to it. *)

val pending : t -> int
