(* The key lives only inside this record; no accessor exposes it. *)
type t = { schedule : Crypto.Des.key; mutable uses : int }

let of_key key =
  { schedule = Crypto.Des.schedule (Crypto.Des.fix_parity key); uses = 0 }

let enroll ~password = of_key (Crypto.Str2key.derive password)

let respond t r =
  if Bytes.length r <> 8 then invalid_arg "Handheld.respond: challenge must be 8 bytes";
  t.uses <- t.uses + 1;
  Crypto.Des.encrypt_block t.schedule r

let responses_issued t = t.uses
