lib/hardened/handheld.mli:
