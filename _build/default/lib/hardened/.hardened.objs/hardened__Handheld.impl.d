lib/hardened/handheld.ml: Bytes Crypto
