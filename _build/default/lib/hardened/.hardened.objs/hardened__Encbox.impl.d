lib/hardened/encbox.ml: Bytes Crypto Hashtbl Kerberos List Messages Printf Profile Util Wire
