lib/hardened/keystore.mli: Kerberos Sim
