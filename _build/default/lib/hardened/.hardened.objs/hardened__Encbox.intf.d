lib/hardened/encbox.mli: Kerberos
