lib/hardened/keystore.ml: Bytes Crypto Hashtbl Kerberos Printf String Util
