(** The host encryption unit of the paper's hardware-design section.

    Design criteria implemented here, each with a test in the suite:
    - "perform cryptographic operations without exposing any keys":
      keys enter via {!install_key} or are born inside via
      {!generate_key}; no operation returns key material, only opaque
      handles — the type system enforces what the paper's hardware would;
    - "the encryption box itself must understand the Kerberos protocols":
      {!absorb_rep_body} opens an AS/TGS reply {e inside the box}, captures
      the embedded session key as a new handle, and hands the host a copy
      with the key field zeroed;
    - "keys should be tagged with their purpose. A login key should be used
      only to decrypt the ticket-granting ticket": every handle carries a
      {!purpose}, every operation names the purpose it requires, and
      mismatches raise {!Purpose_violation} and are recorded in the audit
      log ("using a separate unit allows us to create untamperable logs");
    - "a hardware random number generator on-board": {!generate_key}. *)

type t

type purpose = Login | Tgs_session | Service_session | Service_key | Master

val purpose_to_string : purpose -> string

type handle
(** An opaque in-box key reference. The constructor is not exported;
    handles cannot be minted or dereferenced outside the box. *)

exception Purpose_violation of string

val create : ?seed:int64 -> unit -> t

val install_key : t -> purpose -> bytes -> handle
(** One-way: key material goes in, a handle comes out. *)

val generate_key : t -> purpose -> handle
(** Fresh random key from the on-board generator. *)

val absorb_rep_body :
  t ->
  profile:Kerberos.Profile.t ->
  with_key:handle ->
  new_purpose:purpose ->
  tag:int ->
  bytes ->
  (handle * Kerberos.Messages.rep_body, string) result
(** Open a sealed AS/TGS reply body under [with_key] (which must be a
    [Login] or [Tgs_session] handle as appropriate for [tag]), register the
    embedded session key under [new_purpose], and return the body with
    [b_session_key] replaced by zeros. The real key never reaches host
    memory.
    @raise Purpose_violation if [with_key] has the wrong purpose. *)

val seal_authenticator :
  t -> profile:Kerberos.Profile.t -> with_key:handle ->
  Kerberos.Messages.authenticator -> bytes
(** Requires a [Tgs_session] or [Service_session] handle. *)

val absorb_sealed_key :
  t ->
  profile:Kerberos.Profile.t ->
  with_key:handle ->
  new_purpose:purpose ->
  bytes ->
  (handle, string) result
(** The keystore-download path: "keys be kept in volatile memory, and
    downloaded from a secure keystore on request, via an
    encryption-protected channel". The blob is a {!Kerberos.Seal}-sealed
    8-byte key; the box opens it under an in-box session key and registers
    the content as a new key — host memory never sees it. Requires a
    [Service_session] handle. *)

val encrypt_block : t -> with_key:handle -> require:purpose -> bytes -> bytes
(** Generic single-block operation for session-purpose handles only:
    [Login] and [Master] handles refuse generic use.
    @raise Purpose_violation *)

val audit : t -> string list
(** Chronological log of refused operations — the untamperable log. *)

val handles_live : t -> int
