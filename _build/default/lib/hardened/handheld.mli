(** A hand-held authenticator: a device in the user's possession holding the
    login key and exposing only challenge → response.

    "Both the server and the user (with the aid of the device) encrypt this
    number using the secret key; the result is transmitted back." The
    module boundary models the hardware boundary: nothing in this interface
    returns key material, so a trojaned login program that is given the
    device can steal at most one challenge's response — not the password,
    and not the key. *)

type t

val enroll : password:string -> t
(** Burn the password-derived key into the device (done once, offline). *)

val of_key : bytes -> t

val respond : t -> bytes -> bytes
(** [respond device r] is [{R}Kc] for the 8-byte challenge [r]. *)

val responses_issued : t -> int
(** Usage counter (the device's own audit trail). *)
