(** The keystore: "a secure, reliable repository for a limited amount of
    information. A client of the keystore could package arbitrary data to
    be retained by the keystore, and retrieved at a later date. ...
    Storage and retrieval requests would be authenticated by Kerberos
    tickets, of course. Only encrypted transfer (KRB_PRIV) should be
    employed."

    Server side: a Kerberos service whose namespace is partitioned by the
    requesting principal — one client cannot see another's blobs. Client
    side: [put]/[get] helpers over an authenticated channel.

    A random-key service is included: "the best alternative is to provide a
    (secure) random number service on the network" for creating additional
    client-instance keys. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val stored_count : t -> int
(** Blobs currently held, across all principals. *)

val put :
  Kerberos.Client.t -> Kerberos.Client.channel -> label:string -> bytes ->
  k:((unit, string) result -> unit) -> unit

val get :
  Kerberos.Client.t -> Kerberos.Client.channel -> label:string ->
  k:((bytes, string) result -> unit) -> unit

val fresh_key :
  Kerberos.Client.t -> Kerberos.Client.channel ->
  k:((bytes, string) result -> unit) -> unit
(** Ask the keystore's random number service for a new DES key. *)
