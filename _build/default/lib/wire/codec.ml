exception Decode_error of string

let fail msg = raise (Decode_error msg)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let i64 t v = Buffer.add_int64_be t v
  let raw t b = Buffer.add_bytes t b

  let lbytes t b =
    u32 t (Bytes.length b);
    raw t b

  let lstring t s = lbytes t (Bytes.of_string s)
  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let need t n =
    if t.pos + n > Bytes.length t.data then fail "truncated message"

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let i64 t =
    need t 8;
    let v = Bytes.get_int64_be t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let raw t n =
    need t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let lbytes t =
    let n = u32 t in
    if n > Bytes.length t.data - t.pos then fail "length field exceeds input";
    raw t n

  let lstring t = Bytes.to_string (lbytes t)
  let remaining t = Bytes.length t.data - t.pos
  let at_end t = remaining t = 0
  let expect_end t = if not (at_end t) then fail "trailing bytes"
end
