(** A Distinguished Encoding Rules (ASN.1 BER/DER subset) codec.

    Version 5 adopted ASN.1 "for other reasons"; the paper reinforces "that
    there are design principles other than standards compatibility that
    motivate such a change": self-describing types inside the encryption
    kill cross-context confusion, and the definite-length framing means "it
    is no longer possible for an attacker to truncate a message, and
    present the shortened form as a valid encrypted message".

    Supported universal types: BOOLEAN, INTEGER (64-bit, two's-complement
    minimal octets), OCTET STRING, UTF8String, SEQUENCE; plus constructed
    context-specific tags [0]..[30], which carry the protocol's
    message-type labels.

    [decode] enforces DER strictness: minimal length octets, minimal
    integer octets, no trailing garbage. *)

type t =
  | Boolean of bool
  | Integer of int64
  | Octets of bytes
  | Utf8 of string
  | Sequence of t list
  | Context of int * t  (** constructed context-specific tag [n], n <= 30 *)

val encode : t -> bytes

val decode : bytes -> t
(** @raise Codec.Decode_error on malformed, non-minimal, or trailing input. *)

val decode_prefix : bytes -> t * int
(** Decode one element, returning it and the number of bytes consumed —
    for callers that frame several elements themselves. *)
