lib/wire/codec.ml: Buffer Bytes Char
