lib/wire/der.mli:
