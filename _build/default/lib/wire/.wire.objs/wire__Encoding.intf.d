lib/wire/encoding.mli:
