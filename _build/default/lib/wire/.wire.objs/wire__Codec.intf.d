lib/wire/codec.mli:
