lib/wire/der.ml: Buffer Bytes Char Codec Int64 List Printf String
