lib/wire/encoding.ml: Codec Der List Printf
