(** Network time service, RFC 868-shaped.

    The paper: "authenticators rely on machines' clocks being roughly
    synchronized. If a host can be misled about the correct time, a stale
    authenticator can be replayed without any trouble at all. Since some
    time synchronization protocols are unauthenticated ... such attacks are
    not difficult."

    [install_server]/[sync] implement the unauthenticated protocol — any
    adversary reply is believed. The [authenticated] variants append a
    keyed MD4 MAC under a key the two parties must already share, which is
    precisely the bootstrapping problem the paper points out ("it may not
    make sense to build an authentication system assuming an
    already-authenticated underlying system"). *)

val default_port : int

val install_server : Sim.Net.t -> Sim.Host.t -> ?port:int -> unit -> unit
(** Serve this host's own clock reading (hosts trust their time source's
    clock, drift and all). *)

val sync :
  Sim.Net.t ->
  Sim.Host.t ->
  ?port:int ->
  server:Sim.Addr.t ->
  on_done:(unit -> unit) ->
  unit ->
  unit
(** Ask the server for the time and slam this host's clock to the answer.
    No authentication: the first reply wins. *)

val install_authenticated_server :
  Sim.Net.t -> Sim.Host.t -> ?port:int -> key:bytes -> unit -> unit

val sync_authenticated :
  Sim.Net.t ->
  Sim.Host.t ->
  ?port:int ->
  key:bytes ->
  server:Sim.Addr.t ->
  on_done:(bool -> unit) ->
  unit ->
  unit
(** As [sync] but the reply must carry a valid MAC over (nonce, reading);
    [on_done false] means a forgery was detected and the clock left alone. *)
