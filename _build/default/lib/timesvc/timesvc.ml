let default_port = 37 (* the RFC 868 time port *)

let encode_time reading =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.i64 w (Int64.bits_of_float reading);
  Wire.Codec.Writer.contents w

let decode_time b =
  let r = Wire.Codec.Reader.of_bytes b in
  let v = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
  Wire.Codec.Reader.expect_end r;
  v

let install_server net host ?(port = default_port) () =
  Sim.Net.listen net host ~port (fun pkt ->
      let reading = Sim.Net.local_time net host in
      Sim.Net.send net ~sport:port ~dst:pkt.Sim.Packet.src ~dport:pkt.Sim.Packet.sport
        host (encode_time reading))

let sync net host ?(port = default_port) ~server ~on_done () =
  Sim.Rpc.call net host ~dst:server ~dport:port (Bytes.of_string "time?")
    ~on_reply:(fun pkt ->
      match decode_time pkt.Sim.Packet.payload with
      | reading ->
          Sim.Host.set_clock host ~real:(Sim.Net.now net) ~reading;
          on_done ()
      | exception Wire.Codec.Decode_error _ ->
          Sim.Net.note net "timesvc: malformed reply ignored")
    ~on_timeout:(fun () -> Sim.Net.note net "timesvc: sync timed out")

let mac ~key nonce reading =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.lbytes w key;
  Wire.Codec.Writer.i64 w nonce;
  Wire.Codec.Writer.i64 w (Int64.bits_of_float reading);
  Crypto.Md4.digest (Wire.Codec.Writer.contents w)

let install_authenticated_server net host ?(port = default_port) ~key () =
  Sim.Net.listen net host ~port (fun pkt ->
      match
        let r = Wire.Codec.Reader.of_bytes pkt.Sim.Packet.payload in
        Wire.Codec.Reader.i64 r
      with
      | nonce ->
          let reading = Sim.Net.local_time net host in
          let w = Wire.Codec.Writer.create () in
          Wire.Codec.Writer.i64 w (Int64.bits_of_float reading);
          Wire.Codec.Writer.lbytes w (mac ~key nonce reading);
          Sim.Net.send net ~sport:port ~dst:pkt.Sim.Packet.src
            ~dport:pkt.Sim.Packet.sport host (Wire.Codec.Writer.contents w)
      | exception Wire.Codec.Decode_error _ -> ())

let sync_authenticated net host ?(port = default_port) ~key ~server ~on_done () =
  let nonce = Util.Rng.next_int64 (Sim.Net.rng net) in
  let req = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.i64 req nonce;
  Sim.Rpc.call net host ~dst:server ~dport:port (Wire.Codec.Writer.contents req)
    ~on_reply:(fun pkt ->
      match
        let r = Wire.Codec.Reader.of_bytes pkt.Sim.Packet.payload in
        let reading = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
        let tag = Wire.Codec.Reader.lbytes r in
        Wire.Codec.Reader.expect_end r;
        (reading, tag)
      with
      | reading, tag ->
          if Util.Bytesutil.equal tag (mac ~key nonce reading) then begin
            Sim.Host.set_clock host ~real:(Sim.Net.now net) ~reading;
            on_done true
          end
          else begin
            Sim.Net.note net "timesvc: BAD MAC on time reply — forgery detected";
            on_done false
          end
      | exception Wire.Codec.Decode_error _ -> on_done false)
    ~on_timeout:(fun () -> Sim.Net.note net "timesvc: sync timed out")
