(** Quantitative sweeps backing the experiment report (E1, E3, E13, E14). *)

val replay_window_sweep :
  unit -> (float * float * bool) list
(** E1: (server skew window, replay delay, accepted?) on stock V4 — how the
    5-minute window "contributes considerably to this attack". *)

val crack_sweep : unit -> (string * int * int * int * int) list
(** E3: (profile, population, weak users, recorded replies, cracked) for a
    growing population on V4, plus the DH-protected contrast. *)

val dlog_sweep :
  ?bits:int list -> unit -> (int * string * float * bool) list
(** E13a: (modulus bits, algorithm, cpu seconds, recovered?) — LaMacchia &
    Odlyzko's point that small exponential-exchange moduli fall to generic
    attacks in trivial time. *)

val modexp_cost : unit -> (int * float) list
(** E13b: (modulus bits, cpu seconds per login-side exponentiation) — and
    the other side of the trade-off: "using large ones is expensive". *)

val overhead : unit -> (string * int * int * int * bool) list
(** E14: per profile, (name, messages in a full session, messages in the AP
    exchange alone, server replay-cache entries after 25 authentications,
    authenticated datagram possible?). The challenge/response option "rules
    out the possibility of authenticated datagrams" and "all servers must
    then retain state". *)
