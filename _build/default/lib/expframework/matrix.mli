(** The headline result: every attack from the paper run against the three
    protocol profiles. This is the reproduction's "Table 1". *)

type row = {
  id : string;
  attack : string;
  section : string;  (** where in the paper the attack lives *)
  outcomes : (string * Attacks.Outcome.t) list;  (** profile name -> outcome *)
}

val profiles : Kerberos.Profile.t list
(** v4, v5-draft3, hardened. *)

val run_row : string -> row list -> row option

val run_all : unit -> row list
(** Runs every attack against every profile. Deterministic (seeded). *)

val expected_shape : (string * bool list) list
(** For each experiment id, the expected broken/defended pattern across
    [profiles] — the assertion the test suite and EXPERIMENTS.md share. *)

val to_cells : row list -> string list list
val header : string list
