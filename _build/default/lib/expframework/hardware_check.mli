(** E15 — the encryption-box design criteria, checked as executable
    invariants. Each pair is (criterion, holds?); the report prints them
    and the test suite asserts them all. *)

val run : unit -> (string * bool) list
