open Attacks

type row = {
  id : string;
  attack : string;
  section : string;
  outcomes : (string * Outcome.t) list;
}

let profiles = Kerberos.Profile.all

let against f =
  List.map (fun p -> (p.Kerberos.Profile.name, f p)) profiles

let run_all () =
  [ { id = "E1"; attack = "live authenticator replay (mail-check session)";
      section = "Replay Attacks";
      outcomes = against (fun p -> Replay_auth.outcome (Replay_auth.run ~profile:p ())) };
    { id = "E2"; attack = "time-service spoof + stale authenticator";
      section = "Secure Time Services";
      outcomes = against (fun p -> Clock_spoof.outcome (Clock_spoof.run ~profile:p ())) };
    { id = "E2b"; attack = "time/auth bootstrap circularity (skewed host wedged)";
      section = "Secure Time Services";
      outcomes =
        against (fun p -> Time_bootstrap.outcome (Time_bootstrap.run ~profile:p ())) };
    { id = "E3"; attack = "offline password guessing (eavesdropped logins)";
      section = "Password-Guessing Attacks";
      outcomes =
        against (fun p ->
            Password_guess.outcome
              (Password_guess.run ~n_users:10 ~dictionary_head:250 ~profile:p ())) };
    { id = "E4"; attack = "active AS_REP harvesting (no eavesdropping)";
      section = "Password-Guessing Attacks";
      outcomes =
        against (fun p ->
            Ticket_harvest.outcome
              (Ticket_harvest.run ~n_users:10 ~dictionary_head:250 ~profile:p ())) };
    { id = "E5"; attack = "trojaned login program";
      section = "Spoofing Login";
      outcomes = against (fun p -> Login_trojan.outcome (Login_trojan.run ~profile:p ())) };
    { id = "E6"; attack = "chosen-plaintext CBC prefix on KRB_PRIV";
      section = "Inter-Session Chosen Plaintext Attacks";
      outcomes = against (fun p -> Cpa_prefix.outcome (Cpa_prefix.run ~profile:p ())) };
    { id = "E6b"; attack = "PCBC block-swap message-stream modification";
      section = "The Encryption Layer";
      outcomes = against (fun p -> Pcbc_swap.outcome (Pcbc_swap.run ~profile:p ())) };
    { id = "E7"; attack = "cross-session replay under the multi-session key";
      section = "Exposure of Session Keys";
      outcomes = against (fun p -> Cross_session.outcome (Cross_session.run ~profile:p ())) };
    { id = "E8a"; attack = "connection hijack after authentication (rsh)";
      section = "The Scope of Tickets";
      outcomes = against (fun p -> Hijack.outcome (Hijack.run ~profile:p ())) };
    { id = "E8b"; attack = "Morris ISN spoof + stolen live authenticator";
      section = "Replay Attacks";
      outcomes =
        against (fun p ->
            Morris_isn.outcome
              (Morris_isn.run ~isn:Sim.Tcpish.Predictable ~profile:p ())) };
    { id = "E9"; attack = "transit-realm forgery / forwarding without origin";
      section = "The Scope of Tickets / Inter-Realm";
      outcomes = against (fun p -> Realm_spoof.outcome (Realm_spoof.run ~profile:p ())) };
    { id = "E10"; attack = "CRC-32 cut-and-paste via ENC-TKT-IN-SKEY";
      section = "Appendix: Weak Checksums";
      outcomes = against (fun p -> Cut_paste.outcome (Cut_paste.run ~profile:p ())) };
    { id = "E10b"; attack = "ticket substitution in KDC replies (DoS)";
      section = "Appendix: Weak Checksums";
      outcomes = against (fun p -> Ticket_sub.outcome (Ticket_sub.run ~profile:p ())) };
    { id = "E11"; attack = "REUSE-SKEY redirect (file -> backup server)";
      section = "Appendix: Weak Checksums";
      outcomes = against (fun p -> Reuse_skey.outcome (Reuse_skey.run ~profile:p ())) };
    { id = "E12b"; attack = "KRB_SAFE data swap under sealed CRC-32";
      section = "Appendix: Checksum Layer";
      outcomes = against (fun p -> Safe_forge.outcome (Safe_forge.run ~profile:p ())) };
    { id = "E16"; attack = "credential-cache theft on a multi-user host";
      section = "The Kerberos Environment";
      outcomes =
        against (fun p -> Cache_theft.outcome (Cache_theft.run ~multi_user:true ~profile:p ())) };
    { id = "E17"; attack = "host srvtab key theft -> impersonate every local user";
      section = "The Kerberos Environment / Hardware";
      outcomes =
        against (fun p ->
            (* The hardened deployment includes the encryption box, the
               paper's hardware answer to plaintext host keys. *)
            let use_encbox = p.Kerberos.Profile.name = "hardened" in
            Host_key_theft.outcome (Host_key_theft.run ~use_encbox ~profile:p ())) };
    { id = "E18"; attack = "diskless workstation pages its keys over the wire";
      section = "The Kerberos Environment";
      outcomes =
        against (fun p ->
            (* Pinned (in-box) key memory ships with the hardened deployment. *)
            let pinned_memory = p.Kerberos.Profile.name = "hardened" in
            Paging_leak.outcome (Paging_leak.run ~pinned_memory ~profile:p ())) } ]

let run_row id rows = List.find_opt (fun r -> r.id = id) rows

(* true = expected Broken, in profile order v4, v5-draft3, hardened. *)
let expected_shape =
  [ ("E1", [ true; true; false ]);
    ("E2", [ true; true; false ]);
    ("E2b", [ true; true; false ]);
    ("E3", [ true; true; false ]);
    ("E4", [ true; true; false ]);
    ("E5", [ true; true; false ]);
    ("E6", [ false; true; false ]);
    ("E6b", [ true; false; false ]);
    ("E7", [ true; true; false ]);
    ("E8a", [ true; true; true ]);  (* the fix is session encryption, not the AP exchange *)
    ("E8b", [ true; true; false ]);
    ("E9", [ true; true; true ]);  (* no protocol fix offered; key-based transit check shown separately *)
    ("E10", [ false; true; false ]);  (* option absent in v4 *)
    ("E10b", [ true; true; false ]);
    ("E11", [ false; true; false ]);
    ("E12b", [ true; true; false ]);
    ("E16", [ true; true; true ]); (* an environment problem, not a protocol one *)
    ("E17", [ true; true; false ]); (* the encryption box is deployed with hardened *)
    ("E18", [ true; true; false ]) (* pinned key memory ships with hardened *) ]

let header = "id" :: "attack" :: List.map (fun p -> p.Kerberos.Profile.name) profiles

let to_cells rows =
  List.map
    (fun r -> r.id :: r.attack :: List.map (fun (_, o) -> Outcome.label o) r.outcomes)
    rows
