open Kerberos

let violation f =
  match f () with
  | exception Hardened.Encbox.Purpose_violation _ -> true
  | _ -> false

let run () =
  let profile = Profile.hardened in
  let rng = Util.Rng.create 0xE15L in
  let box = Hardened.Encbox.create () in
  let login_key = Crypto.Str2key.derive "user.passwd" in
  let login = Hardened.Encbox.install_key box Hardened.Encbox.Login login_key in
  (* A KDC-side sealed AS reply body for the box to absorb. *)
  let tgt_session_key = Crypto.Des.random_key rng in
  let body =
    { Messages.b_session_key = tgt_session_key; b_nonce = 42L;
      b_server = Principal.tgs ~realm:"ATHENA"; b_issued_at = 0.0; b_lifetime = 3600.0;
      b_ticket = Bytes.make 24 't' }
  in
  let sealed =
    Messages.seal_msg profile rng ~key:login_key ~tag:Messages.tag_as_rep_body
      (Messages.rep_body_to_value ~tag:Messages.tag_as_rep_body body)
  in
  let absorb_result =
    Hardened.Encbox.absorb_rep_body box ~profile ~with_key:login
      ~new_purpose:Hardened.Encbox.Tgs_session ~tag:Messages.tag_as_rep_body sealed
  in
  let tgs_handle, redacted =
    match absorb_result with
    | Ok (h, b) -> (Some h, Some b)
    | Error _ -> (None, None)
  in
  (* Evaluation order matters: the audit check must run after the
     violations, and OCaml evaluates list elements right-to-left — so each
     check is let-bound in order. *)
  let c1 =
    ( "keys enter the box but never leave (absorbed reply has key zeroed)",
      match redacted with
      | Some b -> Util.Bytesutil.equal b.Messages.b_session_key (Bytes.make 8 '\000')
      | None -> false )
  in
  let c2 = ("the box opens protocol messages itself (AS reply absorbed)", Result.is_ok absorb_result) in
  let c3 =
    ( "login keys refuse generic encryption (purpose tags enforced)",
      violation (fun () ->
          Hardened.Encbox.encrypt_block box ~with_key:login
            ~require:Hardened.Encbox.Login (Bytes.make 8 'x')) )
  in
  let c4 =
    ( "a TGS-session handle cannot open an AS reply (wrong purpose)",
      match tgs_handle with
      | Some h ->
          violation (fun () ->
              Hardened.Encbox.absorb_rep_body box ~profile ~with_key:h
                ~new_purpose:Hardened.Encbox.Service_session
                ~tag:Messages.tag_as_rep_body sealed)
      | None -> false )
  in
  let blank_auth =
    { Messages.a_client = Principal.user ~realm:"ATHENA" "pat"; a_addr = 1;
      a_timestamp = 0.0; a_req_cksum = None; a_ticket_cksum = None;
      a_service = None; a_seq_init = None; a_subkey_part = None }
  in
  let c5 =
    ( "login keys cannot seal authenticators",
      violation (fun () ->
          Hardened.Encbox.seal_authenticator box ~profile ~with_key:login blank_auth) )
  in
  let c6 =
    ( "a session handle does seal authenticators",
      match tgs_handle with
      | Some h -> (
          match Hardened.Encbox.seal_authenticator box ~profile ~with_key:h blank_auth with
          | _sealed -> true
          | exception Hardened.Encbox.Purpose_violation _ -> false)
      | None -> false )
  in
  let c7 =
    ( "refused operations land in the untamperable audit log",
      List.length (Hardened.Encbox.audit box) >= 3 )
  in
  let c8 =
    ( "on-board generator mints keys without exposing them",
      let h = Hardened.Encbox.generate_key box Hardened.Encbox.Service_session in
      match
        Hardened.Encbox.encrypt_block box ~with_key:h
          ~require:Hardened.Encbox.Service_session (Bytes.make 8 'y')
      with
      | _ -> true
      | exception Hardened.Encbox.Purpose_violation _ -> false )
  in
  [ c1; c2; c3; c4; c5; c6; c7; c8 ]
