lib/expframework/hardware_check.mli:
