lib/expframework/matrix.mli: Attacks Kerberos
