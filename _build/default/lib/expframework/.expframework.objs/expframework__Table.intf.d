lib/expframework/table.mli:
