lib/expframework/sweeps.mli:
