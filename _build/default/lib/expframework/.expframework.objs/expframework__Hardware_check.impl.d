lib/expframework/hardware_check.ml: Bytes Crypto Hardened Kerberos List Messages Principal Profile Result Util
