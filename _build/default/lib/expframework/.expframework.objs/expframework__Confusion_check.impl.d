lib/expframework/confusion_check.ml: Format Kerberos List Messages Principal Printf Util Wire
