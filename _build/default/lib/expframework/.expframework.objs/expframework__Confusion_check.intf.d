lib/expframework/confusion_check.mli: Format Wire
