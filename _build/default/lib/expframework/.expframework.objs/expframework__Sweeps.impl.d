lib/expframework/sweeps.ml: Apserver Attacks Bytes Client Crypto Int64 Kerberos List Principal Printf Profile Services Sim Sys Util
