lib/expframework/table.ml: Buffer List Option String
