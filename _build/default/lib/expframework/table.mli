(** Plain-text table rendering for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Column-aligned, with a rule under the header. Cells are truncated to a
    sane width rather than wrapped. *)

val print : header:string list -> string list list -> unit
