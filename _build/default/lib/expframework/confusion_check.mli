(** Executable protocol validation, after the paper's SECURITY VALIDATION
    section: "the most simple analysis of the security of the Kerberos
    protocols should check that there is no possibility of ambiguity
    between messages sent in different contexts. That is, a ticket should
    never be interpretable as an authenticator, or vice versa. ...
    This repetitive and often intricate analysis would be unnecessary if
    standard encodings (such as ASN.1) were used."

    We run that analysis mechanically: generate random instances of every
    protocol record, encode them under each wire encoding, and attempt to
    parse the bytes as every {e other} message type. A cell is
    "confusable" when any instance cross-parses. Under the typed (ASN.1)
    encoding the matrix must be diagonal; under the V4 ad-hoc encoding it
    is not — and every off-diagonal hit is an analysis obligation V4
    imposes on a human reviewer at every protocol change. *)

type matrix = {
  encoding : Wire.Encoding.kind;
  kinds : string list;
  confusable : (string * string) list;
      (** (encoded-as, also-parses-as) pairs, excluding the diagonal *)
}

val run : ?trials:int -> Wire.Encoding.kind -> matrix

val pp_matrix : Format.formatter -> matrix -> unit
