let max_cell = 72

let clip s = if String.length s <= max_cell then s else String.sub s 0 (max_cell - 2) ^ ".."

let render ~header rows =
  let rows = List.map (List.map clip) rows in
  let header = List.map clip header in
  let ncols = List.length header in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth_opt row i |> Option.value ~default:"")))
      (String.length (List.nth header i))
      rows
  in
  let widths = List.init ncols width in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let w = List.nth widths i in
           c ^ String.make (max 0 (w - String.length c)) ' ')
         cells)
  in
  let pad row = row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "") in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (List.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line (pad row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)
