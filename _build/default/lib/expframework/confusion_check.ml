open Kerberos

type matrix = {
  encoding : Wire.Encoding.kind;
  kinds : string list;
  confusable : (string * string) list;
}

(* Random instance generators for every protocol record, driven by one
   deterministic stream. *)

let principal rng =
  if Util.Rng.bool rng then
    Principal.user ~realm:"R" (Printf.sprintf "u%d" (Util.Rng.int rng 1000))
  else
    Principal.service ~realm:"R" (Printf.sprintf "s%d" (Util.Rng.int rng 1000))
      ~host:(Printf.sprintf "h%d" (Util.Rng.int rng 100))

let opt rng f = if Util.Rng.bool rng then Some (f rng) else None
let bytes8 rng = Util.Rng.bytes rng 8
let small_bytes rng = Util.Rng.bytes rng (1 + Util.Rng.int rng 40)

let gen_ticket rng =
  Messages.ticket_to_value
    { Messages.server = principal rng; client = principal rng;
      addr = opt rng (fun r -> Util.Rng.int r 0xFFFF);
      issued_at = Util.Rng.float rng 1e6; lifetime = Util.Rng.float rng 1e5;
      session_key = bytes8 rng; forwarded = Util.Rng.bool rng;
      dup_skey = Util.Rng.bool rng;
      transited = List.init (Util.Rng.int rng 3) (fun i -> Printf.sprintf "T%d" i) }

let gen_authenticator rng =
  Messages.authenticator_to_value
    { Messages.a_client = principal rng; a_addr = Util.Rng.int rng 0xFFFF;
      a_timestamp = Util.Rng.float rng 1e6; a_req_cksum = opt rng small_bytes;
      a_ticket_cksum = opt rng small_bytes; a_service = opt rng principal;
      a_seq_init = opt rng (fun r -> Util.Rng.int r 100000);
      a_subkey_part = opt rng bytes8 }

let gen_as_req rng =
  Messages.as_req_to_value
    { Messages.q_client = principal rng; q_server = principal rng;
      q_nonce = Util.Rng.next_int64 rng; q_addr = Util.Rng.int rng 0xFFFF;
      q_padata = (if Util.Rng.bool rng then [ Messages.Pa_handheld ] else []) }

let gen_as_rep rng =
  Messages.as_rep_to_value
    { Messages.p_challenge = opt rng bytes8; p_dh_public = opt rng small_bytes;
      p_ticket = opt rng small_bytes; p_sealed = small_bytes rng }

let gen_rep_body rng =
  Messages.rep_body_to_value ~tag:Messages.tag_rep_body
    { Messages.b_session_key = bytes8 rng; b_nonce = Util.Rng.next_int64 rng;
      b_server = principal rng; b_issued_at = Util.Rng.float rng 1e6;
      b_lifetime = Util.Rng.float rng 1e5; b_ticket = small_bytes rng }

let gen_ap_req rng =
  Messages.ap_req_to_value
    { Messages.r_ticket = small_bytes rng; r_authenticator = small_bytes rng;
      r_mutual = Util.Rng.bool rng }

let gen_tgs_req rng =
  Messages.tgs_req_to_value
    { Messages.t_ap =
        { r_ticket = small_bytes rng; r_authenticator = small_bytes rng;
          r_mutual = Util.Rng.bool rng };
      t_server = principal rng; t_nonce = Util.Rng.next_int64 rng;
      t_options = Messages.no_options; t_additional_ticket = opt rng small_bytes;
      t_authz_data = small_bytes rng }

let gen_ap_rep_body rng =
  Messages.ap_rep_body_to_value
    { Messages.ar_timestamp = Util.Rng.float rng 1e6;
      ar_subkey_part = opt rng bytes8;
      ar_seq_init = opt rng (fun r -> Util.Rng.int r 100000) }

let gen_challenge rng =
  Messages.challenge_to_value
    { Messages.c_nonce = Util.Rng.next_int64 rng; c_server_part = opt rng bytes8;
      c_seq_init = opt rng (fun r -> Util.Rng.int r 100000) }

let gen_challenge_resp rng =
  Messages.challenge_resp_to_value
    { Messages.cr_nonce_f = Util.Rng.next_int64 rng; cr_client_part = opt rng bytes8;
      cr_seq_init = opt rng (fun r -> Util.Rng.int r 100000) }

let gen_err rng =
  Messages.err_to_value
    { Messages.e_code = Util.Rng.int rng 12; e_text = "some diagnostic text" }

let generators =
  [ ("ticket", gen_ticket); ("authenticator", gen_authenticator);
    ("as_req", gen_as_req); ("as_rep", gen_as_rep); ("rep_body", gen_rep_body);
    ("ap_req", gen_ap_req); ("tgs_req", gen_tgs_req);
    ("ap_rep_body", gen_ap_rep_body); ("challenge", gen_challenge);
    ("challenge_resp", gen_challenge_resp); ("err", gen_err) ]

let parsers kind : (string * (Wire.Encoding.value -> unit)) list =
  [ ("ticket", fun v -> ignore (Messages.ticket_of_value v));
    ("authenticator", fun v -> ignore (Messages.authenticator_of_value v));
    ("as_req", fun v -> ignore (Messages.as_req_of_value v));
    ("as_rep", fun v -> ignore (Messages.as_rep_of_value v));
    ( "rep_body",
      fun v -> ignore (Messages.rep_body_of_value ~tag:Messages.tag_rep_body kind v) );
    ("ap_req", fun v -> ignore (Messages.ap_req_of_value v));
    ("tgs_req", fun v -> ignore (Messages.tgs_req_of_value v));
    ("ap_rep_body", fun v -> ignore (Messages.ap_rep_body_of_value v));
    ("challenge", fun v -> ignore (Messages.challenge_of_value v));
    ("challenge_resp", fun v -> ignore (Messages.challenge_resp_of_value v));
    ("err", fun v -> ignore (Messages.err_of_value v)) ]

(* Under Der, of_value functions accept a correctly-tagged value; parsing
   bytes of type A as type B must go through the wire decode plus the
   receiving context's expectations. A context expecting B accepts iff the
   decode produces a value its of_value digests without error AND (under
   Der) the tag matches — which the Tagged pattern-match inside each
   of_value enforces. *)
let cross_parses kind ~encoded ~parser_fn =
  match Wire.Encoding.decode kind encoded with
  | exception Wire.Codec.Decode_error _ -> false
  | v -> (
      match parser_fn v with
      | () -> true
      | exception Wire.Codec.Decode_error _ -> false
      | exception _ -> false)

let run ?(trials = 40) kind =
  let rng = Util.Rng.create 0xC0FE5EL in
  let confusable = ref [] in
  let parsers = parsers kind in
  List.iter
    (fun (gname, gen) ->
      let samples = List.init trials (fun _ -> Wire.Encoding.encode kind (gen rng)) in
      List.iter
        (fun (pname, parser_fn) ->
          if pname <> gname then begin
            let hit =
              List.exists (fun encoded -> cross_parses kind ~encoded ~parser_fn) samples
            in
            if hit then confusable := (gname, pname) :: !confusable
          end)
        parsers)
    generators;
  { encoding = kind; kinds = List.map fst generators; confusable = List.rev !confusable }

let pp_matrix ppf m =
  Format.fprintf ppf "encoding %s: %d message kinds, %d confusable pairs@."
    (Wire.Encoding.show_kind m.encoding)
    (List.length m.kinds)
    (List.length m.confusable);
  List.iter
    (fun (a, b) -> Format.fprintf ppf "  %s bytes also parse as %s@." a b)
    m.confusable
