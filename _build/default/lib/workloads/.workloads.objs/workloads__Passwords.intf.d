lib/workloads/passwords.mli: Util
