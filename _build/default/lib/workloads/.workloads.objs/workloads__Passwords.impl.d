lib/workloads/passwords.ml: List Printf String Util
