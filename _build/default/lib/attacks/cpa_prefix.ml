open Kerberos

type result = {
  planted_bytes : int;
  prefix_cut : bool;
  executed_as_victim : bool;
}

(* Build the complete KRB_PRIV plaintext (V5-draft layout) for [data] as it
   would appear coming from the victim: data, the format's own checksum
   (computed by the attacker — an unkeyed CRC-32 or MD4 protects nothing
   against the party who chose the data), stamp, direction 0
   (client->server), the victim's address, then padding. This is what the
   attacker wants the server's encryption oracle to process verbatim. *)
let embedded_plaintext ~(profile : Profile.t) ~data ~stamp ~victim_addr =
  let data = Bytes.of_string data in
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.raw w data;
  Wire.Codec.Writer.raw w
    (Crypto.Checksum.compute profile.Profile.checksum ~key:Bytes.empty data);
  Wire.Codec.Writer.i64 w (Int64.bits_of_float stamp);
  Wire.Codec.Writer.u8 w 0;
  Wire.Codec.Writer.u32 w victim_addr;
  Crypto.Mode.pad (Wire.Codec.Writer.contents w)

let run ?(seed = 0xE6L) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* The attacker plans to fire the forgery about a minute from now and
     stamps the embedded message accordingly. *)
  let fire_at = Sim.Engine.now bed.eng +. 60.0 in
  let embedded =
    embedded_plaintext ~profile ~data:"DELE 0" ~stamp:fire_at
      ~victim_addr:(Testbed.victim_addr bed)
  in
  (* Plant: ordinary mail delivery, no authentication needed to SEND. *)
  Services.Mailserver.deliver bed.mail ~user:"pat" embedded;
  (* The victim checks mail (COUNT, then RETR 0 — the planted message). *)
  Testbed.victim_mail_session bed ();
  Testbed.run bed;
  (* Find the largest priv frame the server sent to the victim: the RETR
     response carrying the encryption of the planted bytes. *)
  let responses =
    Sim.Adversary.capture_matching bed.adv (fun p ->
        p.Sim.Packet.src = Sim.Host.primary_ip bed.mail_host
        && p.Sim.Packet.sport = bed.mail_port
        &&
        match Frames.unwrap p.Sim.Packet.payload with
        | Some (k, body) -> k = Frames.priv && Bytes.length body > Bytes.length embedded
        | None -> false)
  in
  let best =
    List.fold_left
      (fun acc p ->
        match acc with
        | None -> Some p
        | Some q ->
            if Bytes.length p.Sim.Packet.payload > Bytes.length q.Sim.Packet.payload
            then Some p
            else acc)
      None responses
  in
  match best with
  | None -> { planted_bytes = Bytes.length embedded; prefix_cut = false; executed_as_victim = false }
  | Some pkt ->
      (* Cut the ciphertext prefix covering exactly the embedded blocks. *)
      let body =
        match Frames.unwrap pkt.Sim.Packet.payload with
        | Some (_, b) -> b
        | None -> assert false
      in
      let prefix = Bytes.sub body 0 (Bytes.length embedded) in
      (* The victim's channel port is where the server sent the response. *)
      let victim_port = pkt.Sim.Packet.dport in
      let before = Services.Mailserver.deleted_count bed.mail ~user:"pat" in
      Sim.Engine.schedule bed.eng ~at:fire_at (fun () ->
          Sim.Adversary.spoof bed.adv ~src:(Testbed.victim_addr bed) ~sport:victim_port
            ~dst:(Sim.Host.primary_ip bed.mail_host) ~dport:bed.mail_port
            (Frames.wrap Frames.priv prefix));
      Testbed.run bed;
      let after = Services.Mailserver.deleted_count bed.mail ~user:"pat" in
      { planted_bytes = Bytes.length embedded; prefix_cut = true;
        executed_as_victim = after > before }

let outcome r =
  if r.executed_as_victim then
    Outcome.broken
      "ciphertext prefix of %d planted bytes accepted as a fresh KRB_PRIV from the victim"
      r.planted_bytes
  else if r.prefix_cut then
    Outcome.defended "prefix cut but rejected (format or IV chaining resists)"
  else Outcome.defended "no usable encryption-oracle output observed"
