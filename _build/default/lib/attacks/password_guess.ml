open Kerberos

type result = {
  population : int;
  weak_users : int;
  replies_recorded : int;
  cracked : (string * string) list;
  guesses_tried : int;
}

let candidates ~head =
  let words =
    Array.to_list (Array.sub Workloads.Passwords.dictionary 0
                     (min head (Array.length Workloads.Passwords.dictionary)))
  in
  List.concat_map
    (fun w ->
      (w :: String.capitalize_ascii w :: List.init 10 (fun d -> w ^ string_of_int d)))
    words

let try_crack ~profile ~candidates ?challenge ?dh_key ~sealed () =
  (* A guess is confirmed when the derived key opens the recorded reply:
     valid padding, valid checksum (Der), parseable body. *)
  List.find_opt
    (fun pw ->
      let base = Crypto.Str2key.derive pw in
      let respond r =
        Crypto.Des.fix_parity
          (Crypto.Des.encrypt_block
             (Crypto.Des.schedule (Crypto.Des.fix_parity base))
             r)
      in
      let key =
        match (challenge, dh_key) with
        | Some r, None -> respond r
        | Some r, Some kdh ->
            (* Active attacker against the composed scheme: it computed the
               challenge response from the guess and knows its own DH
               contribution. *)
            Crypto.Prf.tag_key ~tag:"dh-login" (Util.Bytesutil.xor (respond r) kdh)
        | None, Some kdh ->
            (* Active attacker who supplied its own exponential: it knows
               the DH contribution and can still test password guesses. *)
            Crypto.Prf.tag_key ~tag:"dh-login" (Util.Bytesutil.xor base kdh)
        | None, None -> base
      in
      match Messages.open_msg profile ~key ~tag:Messages.tag_as_rep_body sealed with
      | Ok v -> (
          match
            Messages.rep_body_of_value ~tag:Messages.tag_as_rep_body
              profile.Profile.encoding v
          with
          | _ -> true
          | exception Wire.Codec.Decode_error _ -> false)
      | Error _ -> false)
    candidates

let run ?(seed = 0xE3L) ?(n_users = 25) ?(weak_fraction = 0.5) ?(dictionary_head = 80)
    ~profile () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"lab-ws" ~ips:[ Sim.Addr.of_quad 10 0 0 30 ] () in
  Sim.Net.attach net kdc_host;
  Sim.Net.attach net ws;
  let db = Kdb.create () in
  let rng = Util.Rng.create seed in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  let users = Workloads.Passwords.population rng ~n:n_users ~weak_fraction in
  List.iter
    (fun u ->
      Kdb.add_user db (Principal.user ~realm:"ATHENA" u.Workloads.Passwords.name)
        ~password:u.Workloads.Passwords.password)
    users;
  let kdc = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  let adv = Sim.Adversary.attach net in
  Sim.Adversary.start_tap adv;
  (* The whole population logs in over two weeks ("half of all logins at
     MIT are used within a two-week period"); the wiretapper records. *)
  List.iteri
    (fun i u ->
      Sim.Engine.schedule eng ~at:(float_of_int i *. 37.0) (fun () ->
          let client =
            Client.create ~seed:(Int64.of_int (i + 100)) net ws ~profile
              ~kdcs:[ ("ATHENA", Sim.Host.primary_ip kdc_host) ]
              (Principal.user ~realm:"ATHENA" u.Workloads.Passwords.name)
          in
          Client.login client ~password:u.Workloads.Passwords.password (fun r ->
              ignore (Testbed.expect "population login" r))))
    users;
  Sim.Engine.run eng;
  (* Offline phase: pair each AS_REQ (cleartext, names the user) with the
     reply that came back to the same port, then run the dictionary. *)
  let packets = Sim.Adversary.captured adv in
  let requests =
    List.filter_map
      (fun p ->
        if p.Sim.Packet.dport = Kdc.default_port then
          match
            Messages.as_req_of_value
              (Wire.Encoding.decode profile.Profile.encoding p.Sim.Packet.payload)
          with
          | q -> Some (p.Sim.Packet.sport, q.Messages.q_client.Principal.name)
          | exception Wire.Codec.Decode_error _ -> None
        else None)
      packets
  in
  let replies =
    List.filter_map
      (fun p ->
        if p.Sim.Packet.sport = Kdc.default_port then
          match
            Messages.as_rep_of_value
              (Wire.Encoding.decode profile.Profile.encoding p.Sim.Packet.payload)
          with
          | rep -> Some (p.Sim.Packet.dport, (rep.Messages.p_sealed, rep.p_challenge))
          | exception Wire.Codec.Decode_error _ -> None
        else None)
      packets
  in
  let cands = candidates ~head:dictionary_head in
  let tried = ref 0 in
  let cracked =
    List.filter_map
      (fun (port, (sealed, challenge)) ->
        match List.assoc_opt port requests with
        | None -> None
        | Some user ->
            tried := !tried + List.length cands;
            Option.map
              (fun pw -> (user, pw))
              (try_crack ~profile ~candidates:cands ?challenge ~sealed ()))
      replies
  in
  { population = n_users;
    weak_users = List.length (List.filter (fun u -> u.Workloads.Passwords.is_weak) users);
    replies_recorded = List.length replies;
    cracked;
    guesses_tried = !tried }

let outcome r =
  if r.cracked <> [] then
    Outcome.broken "%d/%d passwords recovered from %d recorded logins"
      (List.length r.cracked) r.population r.replies_recorded
  else if r.replies_recorded = 0 then
    Outcome.defended "no useful login traffic recorded"
  else
    Outcome.defended
      "%d recorded logins, 0 cracked (reply not testable without the DH secret)"
      r.replies_recorded
