(** E1 — replay of a live authenticator inside the clock-skew window.

    "An intruder may simply watch for a mail-checking session, wherein a
    user logs in briefly, reads a few messages, and logs out. A number of
    valuable tickets would be exposed by such a session ... the lifetime of
    the authenticators — 5 minutes — contributes considerably to this
    attack."

    The victim runs one mail check; the adversary captures the AP_REQ and,
    [delay] seconds later, replays it from its own machine. Success =
    the server establishes a second session attributed to the victim. *)

type result = {
  replay_delay : float;
  skew : float;
  accepted : bool;  (** the server attributed a session to the victim *)
  honest_sessions : int;
  total_sessions : int;
}

val run :
  ?seed:int64 ->
  ?delay:float ->
  ?skew:float ->
  profile:Kerberos.Profile.t ->
  unit ->
  result
(** [skew] tightens the server's acceptance window below the profile's
    default (the knob the E1 sweep turns). *)

val outcome : result -> Outcome.t
