(** E10b — ticket substitution in KDC replies.

    "A last attack of this sort can occur if the attacker substitutes a
    different ticket for the legitimate one in key distribution replies
    from Kerberos. The encrypted part of such a message does not contain
    any checksum to validate that the message was not tampered with in
    transit. While this appears to be more a denial-of-service attack than
    a penetration, it would be useful for the client to know this
    immediately."

    The adversary swaps the cleartext ticket riding beside the sealed
    reply. A V4/draft client accepts the credentials cheerfully and only
    discovers the damage when the service rejects the mangled ticket —
    late, ambiguous, unattributable. The hardened profile carries the
    ticket inside the sealed body (appendix recommendation c): there is
    nothing outside the seal to substitute, and any tampering surfaces as
    an immediate, attributable login failure. *)

type result = {
  substitution_possible : bool;  (** a cleartext ticket existed to swap *)
  client_fooled : bool;  (** credentials accepted with the swapped ticket *)
  failure_surfaced_at : string;  (** "login" | "service use" | "nowhere" *)
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
