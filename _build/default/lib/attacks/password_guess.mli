(** E3 — offline password-guessing from recorded login dialogs.

    "When a user requests [the TGT], the answer is returned encrypted with
    Kc, a key derived by a publicly-known algorithm from the user's
    password. A guess at the user's password can be confirmed by
    calculating Kc and using it to decrypt the recorded answer."

    A passive wiretapper records the AS exchanges of a user population and
    then runs a dictionary over the recordings — "the network equivalent of
    /etc/passwd". Against a DH-protected login (recommendation h) the same
    recordings are useless to a passive attacker: confirming a guess would
    require the discrete log of the exchange. *)

type result = {
  population : int;
  weak_users : int;
  replies_recorded : int;
  cracked : (string * string) list;  (** (user, recovered password) *)
  guesses_tried : int;
}

val run :
  ?seed:int64 ->
  ?n_users:int ->
  ?weak_fraction:float ->
  ?dictionary_head:int ->
  profile:Kerberos.Profile.t ->
  unit ->
  result
(** [dictionary_head] bounds the attacker's dictionary (default 80 words,
    each expanded with the usual decorations). *)

val outcome : result -> Outcome.t
val candidates : head:int -> string list
(** The attacker's expanded guess list, shared with E4. *)

val try_crack :
  profile:Kerberos.Profile.t ->
  candidates:string list ->
  ?challenge:bytes ->
  ?dh_key:bytes ->
  sealed:bytes ->
  unit ->
  string option
(** Offline confirmation of a guess against one recorded sealed AS_REP
    body. When the reply used the handheld [{R}Kc] wrapping, [challenge]
    is the cleartext [R] also captured off the wire — the handheld scheme
    defeats login trojans, {e not} eavesdropping guessers. *)
