open Kerberos

type result = {
  age_at_replay : float;
  clock_rewound : bool;
  accepted : bool;
  authenticated_time : bool;
}

let run ?(seed = 0xE2L) ?(age = 3600.0) ?(authenticated_time = false) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  let time_key = Bytes.of_string "mail+time shared" in
  if authenticated_time then
    Timesvc.install_authenticated_server bed.net bed.time_host ~port:38 ~key:time_key ();
  (* Victim authenticates to the mail server once; the AP_REQ is captured. *)
  Testbed.victim_mail_session bed ();
  Testbed.run bed;
  let honest = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  let ap_req =
    match
      Sim.Adversary.capture_matching bed.adv (fun p ->
          p.Sim.Packet.dport = bed.mail_port
          &&
          match Frames.unwrap p.Sim.Packet.payload with
          | Some (k, _) -> k = Frames.ap_req
          | None -> false)
    with
    | pkt :: _ -> pkt
    | [] -> failwith "clock_spoof: nothing captured"
  in
  let capture_time = Sim.Engine.now bed.eng in
  (* An hour passes; the authenticator is now thoroughly stale. *)
  Testbed.run_for bed age;
  (* The adversary rewinds whatever time reply the server receives to the
     capture instant. *)
  Sim.Adversary.intercept bed.adv (fun p ->
      if p.Sim.Packet.sport = Timesvc.default_port || p.Sim.Packet.sport = 38 then begin
        let fake = Bytes.copy p.Sim.Packet.payload in
        Bytes.set_int64_be fake 0 (Int64.bits_of_float capture_time);
        Sim.Net.Replace [ { p with Sim.Packet.payload = fake } ]
      end
      else Sim.Net.Deliver);
  let sync_done = ref false in
  if authenticated_time then
    Timesvc.sync_authenticated bed.net bed.mail_host ~port:38 ~key:time_key
      ~server:(Sim.Host.primary_ip bed.time_host)
      ~on_done:(fun _ -> sync_done := true)
      ()
  else
    Timesvc.sync bed.net bed.mail_host ~server:(Sim.Host.primary_ip bed.time_host)
      ~on_done:(fun () -> sync_done := true)
      ();
  Testbed.run bed;
  Sim.Adversary.stop_intercepting bed.adv;
  let real = Sim.Engine.now bed.eng in
  let clock_rewound =
    Sim.Host.local_time bed.mail_host ~real < real -. (age /. 2.0)
  in
  (* Replay the stale authenticator. *)
  Sim.Adversary.spoof bed.adv ~src:(Testbed.victim_addr bed) ~sport:45001
    ~dst:(Sim.Host.primary_ip bed.mail_host) ~dport:bed.mail_port
    ap_req.Sim.Packet.payload;
  Testbed.run bed;
  let total = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  { age_at_replay = age; clock_rewound; accepted = total > honest; authenticated_time }

let outcome r =
  if r.accepted then
    Outcome.broken "server clock rewound by time-service spoof; %.0fs-old authenticator accepted"
      r.age_at_replay
  else if r.authenticated_time && not r.clock_rewound then
    Outcome.defended "time forgery detected by MAC; stale authenticator rejected"
  else
    Outcome.defended "stale authenticator rejected"
