(** E6b — message-stream modification via PCBC's "poor propagation".

    "This mode was observed to have poor propagation properties that permit
    message-stream modification: specifically, if two blocks of ciphertext
    are interchanged, only the corresponding blocks are garbled on
    decryption."

    V4's KRB_PRIV has no integrity check beyond what its parser happens to
    notice: swapping two interior ciphertext blocks garbles only the swapped
    data bytes, the length field and trailer still parse, and the server
    executes a command the victim never sent. The V5 draft's internal
    checksum catches the garbling (this attack — unlike the prefix attack —
    modifies data the attacker cannot predict, so the attacker cannot fix
    the checksum up). *)

type result = {
  sent_command : string;
  server_saw : string option;  (** what the server actually executed, if anything *)
  modification_undetected : bool;
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
