open Kerberos

type result = {
  sent_command : string;
  server_saw : string option;
  modification_undetected : bool;
}

let sent_command =
  "WRITE /u/pat/report quarterly numbers: revenue 1842k, costs 1211k, margin 34pc"

let run ?(seed = 0xE6BL) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* In-flight block swap on the first sufficiently long priv request. *)
  let swapped = ref false in
  Sim.Adversary.intercept bed.adv (fun pkt ->
      if !swapped || pkt.Sim.Packet.dport <> bed.file_port then Sim.Net.Deliver
      else
        match Frames.unwrap pkt.Sim.Packet.payload with
        | Some (k, body) when k = Frames.priv && Bytes.length body >= 64 ->
            swapped := true;
            (* Swap ciphertext blocks 3 and 4 — interior data bytes, away
               from the V4 length prefix and from the trailer. *)
            let body = Bytes.copy body in
            let tmp = Bytes.sub body 24 8 in
            Bytes.blit body 32 body 24 8;
            Bytes.blit tmp 0 body 32 8;
            Sim.Net.Replace
              [ { pkt with Sim.Packet.payload = Frames.wrap Frames.priv body } ]
        | _ -> Sim.Net.Deliver);
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
          let creds = Testbed.expect "ticket" r in
          Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip bed.file_host)
            ~dport:bed.file_port (fun r ->
              let chan = Testbed.expect "ap" r in
              Client.call_priv bed.victim chan (Bytes.of_string sent_command)
                ~k:(fun _ -> ()))));
  Testbed.run bed;
  let server_saw =
    List.find_map
      (fun (cmd, who) -> if who = "pat@ATHENA" then Some cmd else None)
      (Services.Fileserver.request_log bed.file)
  in
  { sent_command; server_saw;
    modification_undetected =
      (match server_saw with Some cmd -> cmd <> sent_command | None -> false) }

let outcome r =
  if r.modification_undetected then
    Outcome.broken "swapped ciphertext blocks accepted: server executed a garbled %S"
      (match r.server_saw with Some s -> String.sub s 0 (min 24 (String.length s)) | None -> "")
  else if r.server_saw = None then
    Outcome.defended "modified message rejected outright"
  else Outcome.defended "message arrived intact (swap had no effect?)"
