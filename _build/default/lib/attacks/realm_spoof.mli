(** E9 — cascading trust and inter-realm path forgery.

    Two demonstrations:

    {b Forwarding loses the origin.} "Host A may be willing to trust
    credentials from host B, and B may be willing to trust host C, but A
    may not be willing to accept tickets originally created on host C.
    Kerberos has a flag bit to indicate that a ticket was forwarded, but
    does not include the original source." We forward the victim's
    credentials once from a trusted host and once from a compromised one:
    the resulting tickets are indistinguishable to the server, whose policy
    collapses to all-or-nothing.

    {b A transit realm can erase itself.} The paper doubts the Draft 3
    transited-path scheme: "to assess the validity of a request, a server
    needs global knowledge of the trustworthiness of all possible transit
    realms". Worse, the path is written by the realms themselves: our
    compromised intermediate (ENG) mints a cross-realm TGT whose transited
    list omits ENG, and the destination realm — trusting the field — issues
    a service ticket that passes an "ATHENA-only transit" policy. With
    [verify_transit] on, the destination KDC appends the realm whose key
    actually vouched for the ticket, and the forgery is exposed. *)

type result = {
  forwarded_indistinguishable : bool option;
      (** [None] when the profile forbids forwarding *)
  transit_forgery_accepted : bool;
  transit_forgery_with_verification : bool;
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
