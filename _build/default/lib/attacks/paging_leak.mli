(** E18 — key capture from a diskless workstation's paging traffic.

    "The original code used /tmp. But this is highly insecure on diskless
    workstations, where /tmp exists on a file server; accordingly, a
    modification was made to store keys in shared memory. However, there is
    no guarantee that shared memory is not paged; if this entails network
    traffic, an intruder can capture these keys."

    The victim's diskless workstation pages its credential cache to a swap
    server in the clear; the wiretapper reassembles the TGT and session key
    from the page-outs and impersonates the victim from its own machine.
    With [pinned_memory] (the deployment fix: wired pages / the encryption
    box), nothing crosses the wire. *)

type result = {
  pages_captured : int;
  tgt_recovered : bool;
  impersonation_worked : bool;
}

val run :
  ?seed:int64 -> ?pinned_memory:bool -> profile:Kerberos.Profile.t -> unit -> result

val outcome : result -> Outcome.t
