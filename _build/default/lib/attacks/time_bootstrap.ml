open Kerberos

type result = {
  initial_skew : float;
  could_reach_time_service : bool;
  clock_recovered : bool;
  honest_clients_locked_out : bool;
}

let run ?(seed = 0xE2BL) ?(skew_amount = 2000.0) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* The mail host doubles as the skewed machine needing recovery. *)
  let skewed = bed.mail_host in
  skewed.Sim.Host.clock_offset <- skew_amount;
  (* A kerberized time service on the (well-synchronized) time host. *)
  let ts_principal = Principal.service ~realm:"ATHENA" "timeserv" ~host:"timehost" in
  let ts_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db ts_principal ~key:ts_key;
  let _ts =
    Services.Timeservice.install bed.net bed.time_host ~profile
      ~principal:ts_principal ~key:ts_key ~port:4444
  in
  (* The skewed machine has a host account for exactly this purpose. *)
  Kdb.add_user bed.db (Principal.user ~realm:"ATHENA" "timesync") ~password:"host.key.po10";
  (* First: while skewed, does the machine lock out honest clients? Its
     mail service judges authenticator freshness by its own clock. (The
     attempt is allowed to fail — that failure is the measurement.) *)
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      match r with
      | Error _ -> ()
      | Ok _ ->
          Client.get_ticket bed.victim ~service:bed.mail_principal (fun r ->
              match r with
              | Error _ -> ()
              | Ok creds ->
                  Client.ap_exchange bed.victim creds
                    ~dst:(Sim.Host.primary_ip bed.mail_host) ~dport:bed.mail_port
                    (fun _ -> ())));
  Testbed.run bed;
  let honest_locked_out =
    (match profile.Profile.ap_auth with
    | Profile.Timestamp _ ->
        Apserver.sessions_established (Services.Mailserver.apserver bed.mail) = 0
    | Profile.Challenge_response -> false)
  in
  (* Now the recovery attempt, from the skewed machine itself. *)
  let sync_client =
    Client.create ~seed:55L bed.net skewed ~profile
      ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
      (Principal.user ~realm:"ATHENA" "timesync")
  in
  let reached = ref false and synced = ref false in
  let attempt_via_creds creds =
    Client.ap_exchange sync_client creds ~dst:(Sim.Host.primary_ip bed.time_host)
      ~dport:4444 (fun r ->
        match r with
        | Error _ -> ()
        | Ok chan ->
            reached := true;
            Services.Timeservice.sync sync_client chan ~k:(fun r ->
                if Result.is_ok r then synced := true))
  in
  (match profile.Profile.ap_auth with
  | Profile.Timestamp _ ->
      (* The classic path: TGT, then a TGS exchange whose authenticator
         carries the broken clock's time. *)
      Client.login sync_client ~password:"host.key.po10" (fun r ->
          match r with
          | Error _ -> ()
          | Ok _ ->
              Client.get_ticket sync_client ~service:ts_principal (fun r ->
                  match r with Error _ -> () | Ok creds -> attempt_via_creds creds))
  | Profile.Challenge_response ->
      (* The paper's option: a clock-free path — service ticket directly
         from the (nonce-based) AS exchange, then challenge/response. *)
      Client.login sync_client ~service:ts_principal ~password:"host.key.po10"
        (fun r ->
          match r with Error _ -> () | Ok creds -> attempt_via_creds creds));
  Testbed.run bed;
  let real = Sim.Engine.now bed.eng in
  let residual = Float.abs (Sim.Host.local_time skewed ~real -. real) in
  { initial_skew = skew_amount;
    could_reach_time_service = !reached;
    clock_recovered = residual < 5.0;
    honest_clients_locked_out = honest_locked_out }

let outcome r =
  if r.clock_recovered then
    Outcome.defended
      "clock-free path (nonce AS + challenge/response) reached the time service; clock fixed"
  else
    Outcome.broken
      "%.0fs skew: machine cannot authenticate to fix its own clock (TGS refuses)%s"
      r.initial_skew
      (if r.honest_clients_locked_out then "; honest clients locked out meanwhile" else "")
