open Kerberos

type result = {
  replay_delay : float;
  skew : float;
  accepted : bool;
  honest_sessions : int;
  total_sessions : int;
}

let run ?(seed = 0xE1L) ?(delay = 30.0) ?(skew = 300.0) ~profile () =
  (* The skew knob overrides the profile's own window as well as the
     server's, so the sweep measures exactly one acceptance window. *)
  let profile =
    match profile.Profile.ap_auth with
    | Profile.Timestamp { replay_cache; _ } ->
        { profile with Profile.ap_auth = Profile.Timestamp { skew; replay_cache } }
    | Profile.Challenge_response -> profile
  in
  let bed =
    Testbed.make ~seed
      ~server_config:{ Apserver.default_config with skew }
      ~profile ()
  in
  (* Victim does a quick mail check; adversary is already tapping. *)
  Testbed.victim_mail_session bed ();
  Testbed.run bed;
  let honest = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  (* Hunt the capture for the AP_REQ to the mail port. *)
  let ap_reqs =
    Sim.Adversary.capture_matching bed.adv (fun p ->
        p.Sim.Packet.dport = bed.mail_port
        &&
        match Frames.unwrap p.Sim.Packet.payload with
        | Some (k, _) -> k = Frames.ap_req
        | None -> false)
  in
  (match ap_reqs with
  | [] -> failwith "replay_auth: nothing captured"
  | pkt :: _ ->
      Sim.Engine.schedule_after bed.eng delay (fun () ->
          (* Replayed from the attacker's machine and port; only the
             payload is the victim's. (Under V4 the ticket binds the
             victim's address, so the source address is spoofed too —
             trivial for datagrams.) *)
          Sim.Adversary.spoof bed.adv ~src:(Testbed.victim_addr bed) ~sport:45000
            ~dst:(Sim.Host.primary_ip bed.mail_host) ~dport:bed.mail_port
            pkt.Sim.Packet.payload));
  Testbed.run bed;
  let total = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  { replay_delay = delay; skew; accepted = total > honest; honest_sessions = honest;
    total_sessions = total }

let outcome r =
  if r.accepted then
    Outcome.broken
      "authenticator replayed %.0fs later accepted (skew window %.0fs, no cache)"
      r.replay_delay r.skew
  else
    Outcome.defended "replay %.0fs later rejected (window %.0fs)" r.replay_delay r.skew
