(** E8b — Morris's 1985 sequence-number attack, Kerberos edition.

    "He demonstrated that it was possible, under certain circumstances, to
    spoof one half of a preauthenticated TCP connection without ever seeing
    any responses from the targeted host. In a Kerberos environment, his
    attack would still work if accompanied by a stolen live authenticator,
    but not if a challenge/response protocol was used."

    The attacker never sees a single byte from the server: it predicts the
    server's initial sequence number (old-BSD clock-derived ISNs), completes
    the handshake blind with the victim's spoofed address, presents a live
    authenticator captured moments earlier, and issues a command.

    Three outcomes, exactly as the paper argues:
    - predictable ISN + timestamp authenticator: {b broken};
    - random ISN: the blind ACK misses — defended by the transport;
    - challenge/response: the server's challenge goes to the victim's
      address where the attacker cannot see it — defended by the protocol
      no matter how weak the ISN. *)

type result = {
  isn_predictable : bool;
  handshake_completed : bool;
  executed_as_victim : bool;
}

val run :
  ?seed:int64 ->
  ?isn:Sim.Tcpish.isn_mode ->
  profile:Kerberos.Profile.t ->
  unit ->
  result

val outcome : result -> Outcome.t
