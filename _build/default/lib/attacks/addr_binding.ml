open Kerberos

type result = {
  legit_multihomed_works : bool;
  spoofed_source_accepted : bool;
  addr_in_ticket : bool;
}

let run ?(seed = 0xE8CL) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* A router-ish machine with two interfaces. *)
  let gw =
    Sim.Host.create ~name:"gateway"
      ~ips:[ Sim.Addr.of_quad 10 0 0 60; Sim.Addr.of_quad 10 1 0 60 ] ()
  in
  Sim.Net.attach bed.net gw;
  Kdb.add_user bed.db (Principal.user ~realm:"ATHENA" "gwadmin") ~password:"gw.pw";
  let gw_client =
    Client.create ~seed:21L bed.net gw ~profile
      ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
      (Principal.user ~realm:"ATHENA" "gwadmin")
  in
  (* Log in and fetch the service ticket from interface 1 (the primary),
     then force the AP exchange out of interface 2 by rewriting the source
     in flight (a routing change, not an attack). *)
  let legit_ok = ref false in
  Client.login gw_client ~password:"gw.pw" (fun r ->
      ignore (Testbed.expect "gw login" r);
      Client.get_ticket gw_client ~service:bed.file_principal (fun r ->
          let creds = Testbed.expect "gw ticket" r in
          Sim.Adversary.intercept bed.adv (fun p ->
              (* benign interceptor standing in for an internal route flap *)
              if
                p.Sim.Packet.src = Sim.Addr.of_quad 10 0 0 60
                && p.Sim.Packet.dport = bed.file_port
              then
                Sim.Net.Replace
                  [ { p with Sim.Packet.src = Sim.Addr.of_quad 10 1 0 60 } ]
              else Sim.Net.Deliver);
          Client.ap_exchange gw_client creds ~dst:(Sim.Host.primary_ip bed.file_host)
            ~dport:bed.file_port (fun r -> legit_ok := Result.is_ok r)));
  Testbed.run bed;
  Sim.Adversary.stop_intercepting bed.adv;
  (* Now the attacker side: replay the victim's AP_REQ with a spoofed
     source equal to the bound address. The check costs the attacker one
     header field. *)
  Testbed.victim_mail_session bed ();
  Testbed.run bed;
  let before = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  (match
     Sim.Adversary.capture_matching bed.adv (fun p ->
         p.Sim.Packet.dport = bed.mail_port
         &&
         match Frames.unwrap p.Sim.Packet.payload with
         | Some (k, _) -> k = Frames.ap_req
         | None -> false)
   with
  | pkt :: _ ->
      Sim.Adversary.spoof bed.adv ~src:(Testbed.victim_addr bed) ~sport:46000
        ~dst:(Sim.Host.primary_ip bed.mail_host) ~dport:bed.mail_port
        pkt.Sim.Packet.payload
  | [] -> failwith "addr_binding: no AP_REQ captured");
  Testbed.run bed;
  let after = Apserver.sessions_established (Services.Mailserver.apserver bed.mail) in
  { legit_multihomed_works = !legit_ok;
    spoofed_source_accepted = after > before;
    addr_in_ticket = profile.Profile.addr_in_ticket }

let outcome r =
  match (r.addr_in_ticket, r.legit_multihomed_works, r.spoofed_source_accepted) with
  | true, false, true ->
      Outcome.broken
        "address binding broke the multi-homed host yet cost the attacker one forged header"
  | true, false, false ->
      Outcome.defended
        "address binding broke legitimate multi-homed use (and the replay died on other checks)"
  | _, true, true ->
      Outcome.broken "no address check, replayed authenticator accepted (other defenses off)"
  | _, true, false -> Outcome.defended "multi-homed use works; replay stopped elsewhere"
  | false, false, _ -> Outcome.defended "multi-homed use failed for non-address reasons"
