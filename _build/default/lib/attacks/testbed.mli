(** The shared scenario every attack runs in: one realm, a KDC, a victim
    workstation (user [pat]), an attacker machine with a legitimate insider
    account ([robin] — the paper's adversary "may also be in league with
    some subset of servers, clients"), a mail server, a file server, a
    backup server, an rsh host, a time server, and a Dolev-Yao adversary
    already tapping the wire. *)

open Kerberos

type t = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  profile : Profile.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  db : Kdb.t;
  victim_ws : Sim.Host.t;
  victim : Client.t;
  victim_password : string;
  attacker_host : Sim.Host.t;
  attacker : Client.t;  (** robin's legitimate client, used for insider moves *)
  attacker_password : string;
  mail_host : Sim.Host.t;
  mail : Services.Mailserver.t;
  mail_principal : Principal.t;
  mail_port : int;
  file_host : Sim.Host.t;
  file : Services.Fileserver.t;
  file_principal : Principal.t;
  file_key : bytes;
  file_port : int;
  backup_host : Sim.Host.t;
  backup : Services.Backupserver.t;
  backup_principal : Principal.t;
  backup_port : int;
  time_host : Sim.Host.t;
  adv : Sim.Adversary.t;
  rng : Util.Rng.t;  (** the attacker's own randomness *)
}

val make :
  ?seed:int64 ->
  ?enc_tkt_cname_check:bool ->
  ?server_config:Apserver.config ->
  profile:Profile.t ->
  unit ->
  t

val run : t -> unit
val run_for : t -> float -> unit
(** Advance the simulation by the given number of seconds. *)

val kdc_addr : t -> Sim.Addr.t
val victim_addr : t -> Sim.Addr.t
val attacker_addr : t -> Sim.Addr.t

val login_victim : t -> unit
(** Log pat in and fail loudly if that does not work. *)

val victim_mail_session : t -> unit -> unit
(** One complete mail-check session: ticket, AP exchange, COUNT, RETR 0 if
    present. The workload of the replay experiments. *)

val expect : string -> ('a, string) result -> 'a
(** Assert-ok helper for scripted honest traffic inside attacks. *)
