(** E16 — credential-cache theft on a multi-user host.

    "The cached keys are accessible to attackers logged in at the same
    time. In a workstation environment, only the current user has access
    to system resources ... Kerberos attempts to wipe out old keys at
    logoff time."

    The victim logs in on a host; a co-resident attacker reads the
    credential cache. On a multi-user machine the theft yields the TGT and
    its session key, with which the attacker (from its own machine —
    unless tickets carry addresses) obtains service tickets and reads the
    victim's files. On a workstation there is nothing to read. *)

type result = {
  host_kind : string;
  stolen_entries : int;
  impersonation_worked : bool;
  files_read : string list;
}

val run :
  ?seed:int64 ->
  ?multi_user:bool ->
  profile:Kerberos.Profile.t ->
  unit ->
  result

val outcome : result -> Outcome.t
