open Kerberos

let realm = "ATHENA"

type t = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  profile : Profile.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  db : Kdb.t;
  victim_ws : Sim.Host.t;
  victim : Client.t;
  victim_password : string;
  attacker_host : Sim.Host.t;
  attacker : Client.t;
  attacker_password : string;
  mail_host : Sim.Host.t;
  mail : Services.Mailserver.t;
  mail_principal : Principal.t;
  mail_port : int;
  file_host : Sim.Host.t;
  file : Services.Fileserver.t;
  file_principal : Principal.t;
  file_key : bytes;
  file_port : int;
  backup_host : Sim.Host.t;
  backup : Services.Backupserver.t;
  backup_principal : Principal.t;
  backup_port : int;
  time_host : Sim.Host.t;
  adv : Sim.Adversary.t;
  rng : Util.Rng.t;
}

let expect what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "testbed: %s failed: %s" what e)

let make ?(seed = 0xBEDL) ?(enc_tkt_cname_check = false) ?server_config ~profile () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ quad 10 0 0 1 ] () in
  let time_host = Sim.Host.create ~name:"timehost" ~ips:[ quad 10 0 0 2 ] () in
  let victim_ws = Sim.Host.create ~name:"ws-pat" ~ips:[ quad 10 0 0 10 ] () in
  let attacker_host = Sim.Host.create ~name:"darkstar" ~ips:[ quad 10 0 0 66 ] () in
  let mail_host = Sim.Host.create ~name:"po10" ~ips:[ quad 10 0 0 20 ] () in
  let file_host = Sim.Host.create ~name:"fs1" ~ips:[ quad 10 0 0 21 ] () in
  let backup_host = Sim.Host.create ~name:"vault" ~ips:[ quad 10 0 0 22 ] () in
  List.iter (Sim.Net.attach net)
    [ kdc_host; time_host; victim_ws; attacker_host; mail_host; file_host; backup_host ];
  let db = Kdb.create () in
  let key_rng = Util.Rng.create (Int64.add seed 1L) in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key key_rng);
  let victim_password = "quietly9.flows" and attacker_password = "robin.owns.this" in
  Kdb.add_user db (Principal.user ~realm "pat") ~password:victim_password;
  Kdb.add_user db (Principal.user ~realm "robin") ~password:attacker_password;
  let mail_principal = Principal.service ~realm "pop" ~host:"po10" in
  let file_principal = Principal.service ~realm "fileserv" ~host:"fs1" in
  let backup_principal = Principal.service ~realm "backup" ~host:"vault" in
  let mail_key = Crypto.Des.random_key key_rng in
  let file_key = Crypto.Des.random_key key_rng in
  let backup_key = Crypto.Des.random_key key_rng in
  Kdb.add_service db mail_principal ~key:mail_key;
  Kdb.add_service db file_principal ~key:file_key;
  Kdb.add_service db backup_principal ~key:backup_key;
  let kdc = Kdc.create ~enc_tkt_cname_check ~realm ~profile ~lifetime:(8.0 *. 3600.0) db in
  Kdc.install net kdc_host kdc ();
  Timesvc.install_server net time_host ();
  let mail_port = 110 and file_port = 600 and backup_port = 601 in
  let mail =
    Services.Mailserver.install ?config:server_config net mail_host ~profile
      ~principal:mail_principal ~key:mail_key ~port:mail_port
  in
  let file =
    Services.Fileserver.install ?config:server_config net file_host ~profile
      ~principal:file_principal ~key:file_key ~port:file_port
  in
  let backup =
    Services.Backupserver.install ?config:server_config net backup_host ~profile
      ~principal:backup_principal ~key:backup_key ~port:backup_port
  in
  let kdcs = [ (realm, Sim.Host.primary_ip kdc_host) ] in
  let victim =
    Client.create ~seed:(Int64.add seed 2L) net victim_ws ~profile ~kdcs
      (Principal.user ~realm "pat")
  in
  let attacker =
    Client.create ~seed:(Int64.add seed 3L) net attacker_host ~profile ~kdcs
      (Principal.user ~realm "robin")
  in
  let adv = Sim.Adversary.attach net in
  Sim.Adversary.start_tap adv;
  { eng; net; profile; kdc; kdc_host; db; victim_ws; victim; victim_password;
    attacker_host; attacker; attacker_password; mail_host; mail; mail_principal;
    mail_port; file_host; file; file_principal; file_key; file_port; backup_host;
    backup; backup_principal; backup_port; time_host; adv;
    rng = Util.Rng.create (Int64.add seed 4L) }

let run t = Sim.Engine.run t.eng
let run_for t dt = Sim.Engine.run_until t.eng (Sim.Engine.now t.eng +. dt)

let kdc_addr t = Sim.Host.primary_ip t.kdc_host
let victim_addr t = Sim.Host.primary_ip t.victim_ws
let attacker_addr t = Sim.Host.primary_ip t.attacker_host

let login_victim t =
  let done_ = ref false in
  Client.login t.victim ~password:t.victim_password (fun r ->
      ignore (expect "victim login" r);
      done_ := true);
  run t;
  if not !done_ then failwith "testbed: victim login stalled"

let victim_mail_session t () =
  Client.login t.victim ~password:t.victim_password (fun r ->
      ignore (expect "login" r);
      Client.get_ticket t.victim ~service:t.mail_principal (fun r ->
          let creds = expect "mail ticket" r in
          Client.ap_exchange t.victim creds ~dst:(Sim.Host.primary_ip t.mail_host)
            ~dport:t.mail_port (fun r ->
              let chan = expect "mail ap" r in
              Client.call_priv t.victim chan (Bytes.of_string "COUNT") ~k:(fun r ->
                  let n = int_of_string (Bytes.to_string (expect "COUNT" r)) in
                  if n > 0 then
                    Client.call_priv t.victim chan (Bytes.of_string "RETR 0")
                      ~k:(fun r -> ignore (expect "RETR" r))))))
