(** The result of mounting an attack against a protocol profile. *)

type t =
  | Broken of string  (** the attack achieved its goal; evidence attached *)
  | Defended of string  (** the attack was stopped; by what *)
  | Not_applicable of string
      (** the profile does not expose the surface (e.g. an option is
          disabled, so the request to abuse never exists) *)

val broken : ('a, unit, string, t) format4 -> 'a
val defended : ('a, unit, string, t) format4 -> 'a
val not_applicable : ('a, unit, string, t) format4 -> 'a

val is_broken : t -> bool
val label : t -> string
val detail : t -> string
val pp : Format.formatter -> t -> unit
