open Kerberos

type result = {
  key_on_disk : bool;
  key_stolen : bool;
  victims_files_read : string list;
}

let run ?(seed = 0xE17L) ?(use_encbox = false) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* The shared departmental machine, trusted by the file server. *)
  let shared =
    Sim.Host.create ~security:Sim.Host.Multi_user ~name:"timeshare"
      ~ips:[ Sim.Addr.of_quad 10 0 0 40 ] ()
  in
  Sim.Net.attach bed.net shared;
  let host_principal = Principal.service ~realm:"ATHENA" "rcmd" ~host:"timeshare" in
  let host_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db host_principal ~key:host_key;
  (* An NFS-style file server that trusts the shared host's assertions. *)
  let nfs_principal = Principal.service ~realm:"ATHENA" "nfs" ~host:"fs1" in
  let nfs_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db nfs_principal ~key:nfs_key;
  let nfs =
    Services.Fileserver.install ~trusted_hosts:[ host_principal ] bed.net
      bed.file_host ~profile ~principal:nfs_principal ~key:nfs_key ~port:2049
  in
  Services.Fileserver.write_file nfs ~owner:"pat@ATHENA" ~path:"/u/pat/grades"
    (Bytes.of_string "all the grades");
  (* Where does the host keep its key? *)
  if not use_encbox then
    (* The srvtab: a plaintext key on disk, world-readable to root. *)
    Sim.Host.cache_put shared "srvtab:rcmd" host_key
  else begin
    (* The encryption box holds it; disk holds nothing. *)
    let box = Hardened.Encbox.create () in
    let (_ : Hardened.Encbox.handle) =
      Hardened.Encbox.install_key box Hardened.Encbox.Service_key host_key
    in
    ()
  end;
  (* The one-time root compromise: read whatever the disk holds, leave. *)
  let loot = Sim.Host.steal_cache shared in
  let stolen_key =
    match loot with
    | Some entries -> List.assoc_opt "srvtab:rcmd" entries
    | None -> None
  in
  let files_read = ref [] in
  (match stolen_key with
  | None -> ()
  | Some key ->
      (* Weeks later, from the attacker's own machine: be the host. *)
      let masquerade =
        Client.create ~seed:91L bed.net bed.attacker_host ~profile
          ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
          host_principal
      in
      Client.login masquerade ~key ~password:"(none)" (fun r ->
          match r with
          | Error _ -> ()
          | Ok _ ->
              Client.get_ticket masquerade ~service:nfs_principal (fun r ->
                  match r with
                  | Error _ -> ()
                  | Ok creds ->
                      Client.ap_exchange masquerade creds
                        ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:2049
                        (fun r ->
                          match r with
                          | Error _ -> ()
                          | Ok chan ->
                              (* "impersonating requests vouched for by that
                                 machine": mount pat's files as the host. *)
                              Client.call_priv masquerade chan
                                (Bytes.of_string "SUDO pat READ /u/pat/grades")
                                ~k:(fun r ->
                                  match r with
                                  | Ok data ->
                                      files_read :=
                                        Bytes.to_string data :: !files_read
                                  | Error _ -> ())))));
  Testbed.run bed;
  { key_on_disk = not use_encbox;
    key_stolen = stolen_key <> None;
    victims_files_read = !files_read }

let outcome r =
  if r.victims_files_read <> [] then
    Outcome.broken
      "srvtab key stolen once; attacker impersonates the host's users at will (read %d file(s))"
      (List.length r.victims_files_read)
  else if not r.key_on_disk then
    Outcome.defended
      "host key lives in the encryption box; the burglar's haul from disk was empty"
  else Outcome.defended "key on disk but the impersonation failed"
