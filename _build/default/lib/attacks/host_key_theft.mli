(** E17 — theft of a multi-user host's own key.

    "Typical computer systems do not have a secure key storage area ...
    storing plaintext keys in a machine is generally felt to be a bad
    idea; if a Kerberos key that a machine uses for itself is compromised,
    the intruder can likely impersonate any user on that computer, by
    impersonating requests vouched for by that machine (i.e., file mounts
    or cron jobs)."

    The shared host [timeshare] keeps its service key in an on-disk srvtab
    and is trusted by the file server to speak for its local users (the
    NFS-mount verb [SUDO]). The attacker roots the host once, copies the
    key, leaves — and from then on, from its own machine, is every user of
    that host at once.

    The encryption box is the paper's answer: the key enters the box and
    never exists on disk. A root compromise can misuse the box {e while
    resident} ("such temporary breaches of security [are] far less serious
    than the compromise of a key"), but the burglar leaves empty-handed:
    after cleanup nothing persists. *)

type result = {
  key_on_disk : bool;
  key_stolen : bool;
  victims_files_read : string list;  (** via forged host-vouched requests *)
}

val run : ?seed:int64 -> ?use_encbox:bool -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
