open Kerberos

type stolen_tgt = {
  s_client : Principal.t;
  s_ticket : bytes;
  s_session_key : bytes;
}

(* Wait for a reply to surface on the tap, then hand it over. The reply was
   delivered (or dropped) at the spoofed host; we only ever see the copy in
   flight. *)
let await_tap (bed : Testbed.t) ~sport ~from_port ~k =
  let seen = List.length (Sim.Adversary.captured bed.adv) in
  let rec poll tries =
    Sim.Engine.schedule_after bed.eng 0.02 (fun () ->
        let fresh =
          Sim.Adversary.captured bed.adv
          |> List.filteri (fun i _ -> i >= seen)
          |> List.filter (fun p ->
                 p.Sim.Packet.dport = sport && p.Sim.Packet.sport = from_port)
        in
        match fresh with
        | pkt :: _ -> k (Some pkt)
        | [] -> if tries > 0 then poll (tries - 1) else k None)
  in
  poll 10

let mk_authenticator (bed : Testbed.t) ~spoof_addr ~client ?req_cksum () =
  { Messages.a_client = client; a_addr = spoof_addr;
    (* The attacker stamps the authenticator with true network time — it is
       impersonating a host whose clock it knows to be sane. *)
    a_timestamp = Sim.Net.now bed.net;
    a_req_cksum = req_cksum; a_ticket_cksum = None; a_service = None;
    a_seq_init = None; a_subkey_part = None }

let get_service_ticket (bed : Testbed.t) ~spoof_addr ~tgt ~service ~k =
  let profile = bed.profile in
  let nonce = Util.Rng.next_int64 bed.rng in
  let skeleton =
    { Messages.t_ap =
        { r_ticket = tgt.s_ticket; r_authenticator = Bytes.empty; r_mutual = false };
      t_server = service; t_nonce = nonce; t_options = Messages.no_options;
      t_additional_ticket = None; t_authz_data = Bytes.empty }
  in
  let req_cksum =
    match profile.Profile.encoding with
    | Wire.Encoding.V4_adhoc -> None
    | Wire.Encoding.Der_typed ->
        Some
          (Crypto.Checksum.compute profile.Profile.checksum ~key:tgt.s_session_key
             (Messages.tgs_req_cleartext_fields skeleton))
  in
  let auth = mk_authenticator bed ~spoof_addr ~client:tgt.s_client ?req_cksum () in
  let sealed_auth =
    Messages.seal_msg profile bed.rng ~key:tgt.s_session_key
      ~tag:Messages.tag_authenticator (Messages.authenticator_to_value auth)
  in
  let req =
    { skeleton with
      t_ap = { r_ticket = tgt.s_ticket; r_authenticator = sealed_auth; r_mutual = false } }
  in
  let sport = 48000 + Util.Rng.int bed.rng 1000 in
  Sim.Adversary.spoof bed.adv ~src:spoof_addr ~sport ~dst:(Testbed.kdc_addr bed)
    ~dport:Kdc.default_port
    (Wire.Encoding.encode profile.Profile.encoding (Messages.tgs_req_to_value req));
  await_tap bed ~sport ~from_port:Kdc.default_port ~k:(fun pkt ->
      match pkt with
      | None -> k (Error "no TGS reply observed on the tap")
      | Some pkt -> (
          match
            Messages.as_rep_of_value
              (Wire.Encoding.decode profile.Profile.encoding pkt.Sim.Packet.payload)
          with
          | exception Wire.Codec.Decode_error e -> k (Error ("TGS said: " ^ e))
          | rep -> (
              match
                Messages.open_msg profile ~key:tgt.s_session_key
                  ~tag:Messages.tag_rep_body rep.p_sealed
              with
              | Error e -> k (Error e)
              | Ok bv ->
                  let body =
                    Messages.rep_body_of_value ~tag:Messages.tag_rep_body
                      profile.Profile.encoding bv
                  in
                  let ticket =
                    if Bytes.length body.b_ticket > 0 then Some body.b_ticket
                    else rep.p_ticket
                  in
                  (match ticket with
                  | None -> k (Error "no ticket in reply")
                  | Some ticket ->
                      k
                        (Ok
                           { Client.service = body.b_server; ticket;
                             session_key = body.b_session_key;
                             issued_at = body.b_issued_at; lifetime = body.b_lifetime })))))

let call_priv_as (bed : Testbed.t) ~spoof_addr ~client ~(creds : Client.credentials)
    ~dst ~dport data ~k =
  let profile = bed.profile in
  match profile.Profile.ap_auth with
  | Profile.Challenge_response -> k (Error "spoofed client implements timestamp AP only")
  | Profile.Timestamp _ ->
      let auth = mk_authenticator bed ~spoof_addr ~client () in
      let sealed_auth =
        Messages.seal_msg profile bed.rng ~key:creds.session_key
          ~tag:Messages.tag_authenticator (Messages.authenticator_to_value auth)
      in
      let ap =
        { Messages.r_ticket = creds.ticket; r_authenticator = sealed_auth;
          r_mutual = false }
      in
      let sport = 49000 + Util.Rng.int bed.rng 1000 in
      Sim.Adversary.spoof bed.adv ~src:spoof_addr ~sport ~dst ~dport
        (Frames.wrap Frames.ap_req
           (Messages.encode_msg profile ~tag:Messages.tag_ap_req
              (Messages.ap_req_to_value ap)));
      (* The ap_ok goes to the spoofed host; we only need the session state
         we already know. Send the sealed request next. *)
      let session =
        Session.make ~profile ~rng:(Util.Rng.split bed.rng) ~role:Session.Client_side
          ~key:creds.session_key ~own_addr:spoof_addr ~peer_addr:dst ~send_seq:0
          ~recv_seq:0
      in
      Sim.Engine.schedule_after bed.eng 0.05 (fun () ->
          Sim.Adversary.spoof bed.adv ~src:spoof_addr ~sport ~dst ~dport
            (Frames.wrap Frames.priv
               (Krb_priv.seal session ~now:(Sim.Net.now bed.net) data));
          await_tap bed ~sport ~from_port:dport ~k:(fun pkt ->
              match pkt with
              | None -> k (Error "no sealed reply observed")
              | Some pkt -> (
                  match Frames.unwrap pkt.Sim.Packet.payload with
                  | Some (kind, body) when kind = Frames.priv -> (
                      match Krb_priv.open_ session ~now:(Sim.Net.now bed.net) body with
                      | Ok plain -> k (Ok plain)
                      | Error e -> k (Error (Krb_priv.error_to_string e)))
                  | Some (kind, _) -> k (Error (Printf.sprintf "frame %d instead" kind))
                  | None -> k (Error "unframed reply"))))
