(** A Kerberos client that never sends a single honest packet: every request
    is injected with a forged source address, and every reply is read off
    the wiretap (the replies go to the impersonated host, which ignores
    them — but the attacker sees them in flight and holds the session key
    needed to open them).

    This is the constructive form of the paper's verdict on address-bound
    tickets: "given our assumption that the network is under full control
    of the attacker, no extra security is gained by relying on the network
    address." Used by the paging-leak experiment (E18) to cash a stolen,
    address-bound V4 TGT from the wrong machine. Timestamp-authenticator
    profiles only (the challenge round-trip would work the same way, but
    no experiment needs it). *)

type stolen_tgt = {
  s_client : Kerberos.Principal.t;
  s_ticket : bytes;
  s_session_key : bytes;
}

val get_service_ticket :
  Testbed.t ->
  spoof_addr:Sim.Addr.t ->
  tgt:stolen_tgt ->
  service:Kerberos.Principal.t ->
  k:((Kerberos.Client.credentials, string) result -> unit) ->
  unit

val call_priv_as :
  Testbed.t ->
  spoof_addr:Sim.Addr.t ->
  client:Kerberos.Principal.t ->
  creds:Kerberos.Client.credentials ->
  dst:Sim.Addr.t ->
  dport:int ->
  bytes ->
  k:((bytes, string) result -> unit) ->
  unit
(** Spoofed AP exchange followed by one sealed request; the sealed response
    is plucked off the tap and decrypted. *)
