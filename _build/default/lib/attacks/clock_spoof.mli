(** E2 — spoof the (unauthenticated) time service, then replay a stale
    authenticator.

    "If a host can be misled about the correct time, a stale authenticator
    can be replayed without any trouble at all." The file server here
    periodically synchronizes its clock from the network time service; the
    adversary rewrites the reply to rewind the server's clock to the moment
    a captured authenticator was fresh, then replays it — long after any
    skew window has closed in real time.

    With the MAC-authenticated time service the forgery is detected, the
    clock stands, and the replay is stale. *)

type result = {
  age_at_replay : float;  (** real seconds between capture and replay *)
  clock_rewound : bool;
  accepted : bool;
  authenticated_time : bool;
}

val run :
  ?seed:int64 ->
  ?age:float ->
  ?authenticated_time:bool ->
  profile:Kerberos.Profile.t ->
  unit ->
  result

val outcome : result -> Outcome.t
