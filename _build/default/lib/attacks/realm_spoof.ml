open Kerberos

type result = {
  forwarded_indistinguishable : bool option;
  transit_forgery_accepted : bool;
  transit_forgery_with_verification : bool;
}

(* --- Part 1: forwarded tickets carry no origin ---------------------- *)

let forwarding_demo ~seed ~profile =
  if not profile.Profile.allow_forwarding then None
  else begin
    let bed = Testbed.make ~seed ~server_config:{ Apserver.default_config with accept_forwarded = true } ~profile () in
    let trusted_host = Sim.Host.create ~name:"devbox" ~ips:[ Sim.Addr.of_quad 10 0 0 50 ] () in
    let rogue_host = Sim.Host.create ~name:"dorm-pc" ~ips:[ Sim.Addr.of_quad 10 0 0 51 ] () in
    Sim.Net.attach bed.net trusted_host;
    Sim.Net.attach bed.net rogue_host;
    let forwarded = ref None in
    Client.login bed.victim ~password:bed.victim_password (fun r ->
        ignore (Testbed.expect "login" r);
        (* Ask the TGS for a forwardable copy of the TGT (no address). *)
        Client.get_ticket bed.victim
          ~options:{ Messages.no_options with forward = true }
          ~service:(Principal.tgs ~realm:"ATHENA") (fun r ->
            forwarded := Some (Testbed.expect "forwarded tgt" r)));
    Testbed.run bed;
    let fwd = Option.get !forwarded in
    (* Use the forwarded credentials from both hosts; count acceptances. *)
    let use_from host seed' =
      let c =
        Client.create ~seed:seed' bed.net host ~profile
          ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
          (Principal.user ~realm:"ATHENA" "pat")
      in
      Client.adopt_tgt c fwd;
      let ok = ref false in
      Client.get_ticket c ~service:bed.file_principal (fun r ->
          match r with
          | Error _ -> ()
          | Ok svc ->
              Client.ap_exchange c svc ~dst:(Sim.Host.primary_ip bed.file_host)
                ~dport:bed.file_port (fun r -> ok := Result.is_ok r));
      Testbed.run bed;
      !ok
    in
    let from_trusted = use_from trusted_host 31L in
    let from_rogue = use_from rogue_host 32L in
    (* Indistinguishable: the server accepted both (or refused both); it
       had no origin information to do otherwise. *)
    Some (from_trusted = from_rogue && from_trusted)
  end

(* --- Part 2: a compromised transit realm erases itself --------------- *)

let transit_demo ~seed ~profile ~verify_transit =
  let eng_ = Sim.Engine.create () in
  let net = Sim.Net.create eng_ in
  let quad = Sim.Addr.of_quad in
  let kdc_leaf_host = Sim.Host.create ~name:"kdc-leaf" ~ips:[ quad 10 2 0 1 ] () in
  let srv_host = Sim.Host.create ~name:"leafdb" ~ips:[ quad 10 2 0 20 ] () in
  let dark = Sim.Host.create ~name:"darkstar" ~ips:[ quad 10 0 0 66 ] () in
  List.iter (Sim.Net.attach net) [ kdc_leaf_host; srv_host; dark ];
  let rng = Util.Rng.create seed in
  let db_leaf = Kdb.create () in
  Kdb.add_service db_leaf (Principal.tgs ~realm:"LEAF") ~key:(Crypto.Des.random_key rng);
  (* The ENG<->LEAF cross-realm key. ENG is compromised: the attacker has it. *)
  let cross = Crypto.Des.random_key rng in
  Kdb.add_cross_realm db_leaf (Principal.cross_realm_tgs ~local:"ENG" ~remote:"LEAF")
    ~key:cross;
  let svc = Principal.service ~realm:"LEAF" "db" ~host:"leafdb" in
  let svc_key = Crypto.Des.random_key rng in
  Kdb.add_service db_leaf svc ~key:svc_key;
  let kdc_leaf = Kdc.create ~verify_transit ~realm:"LEAF" ~profile ~lifetime:3600.0 db_leaf in
  Kdc.install net kdc_leaf_host kdc_leaf ();
  (* The LEAF server's policy: transit through ATHENA only — it does not
     trust ENG. *)
  let ap =
    Apserver.install net srv_host ~profile
      ~config:{ Apserver.default_config with trusted_transit = [ "ATHENA" ] }
      ~principal:svc ~key:svc_key ~port:700
      ~handler:(fun _ ~client:_ _ -> Some (Bytes.of_string "classified row")) ()
  in
  (* Forge, as ENG, a cross-realm TGT for pat@ATHENA whose transited list
     pretends the request never passed through ENG. *)
  let forged_session_key = Crypto.Des.random_key rng in
  let forged_ticket =
    { Messages.server = Principal.tgs ~realm:"LEAF";
      client = Principal.user ~realm:"ATHENA" "pat"; addr = None; issued_at = 0.0;
      lifetime = 3600.0; session_key = forged_session_key; forwarded = false;
      dup_skey = false; transited = [ "ATHENA" ] }
  in
  let forged_blob =
    Messages.seal_msg profile rng ~key:cross ~tag:Messages.tag_ticket
      (Messages.ticket_to_value forged_ticket)
  in
  let masquerade =
    Client.create ~seed:41L net dark ~profile
      ~kdcs:[ ("LEAF", Sim.Host.primary_ip kdc_leaf_host) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Client.adopt_tgt masquerade
    { Client.service = Principal.tgs ~realm:"LEAF"; ticket = forged_blob;
      session_key = forged_session_key; issued_at = 0.0; lifetime = 3600.0 };
  let accepted = ref false in
  Client.get_ticket masquerade ~service:svc (fun r ->
      match r with
      | Error _ -> ()
      | Ok creds ->
          Client.ap_exchange masquerade creds ~dst:(Sim.Host.primary_ip srv_host)
            ~dport:700 (fun r -> accepted := Result.is_ok r));
  Sim.Engine.run eng_;
  ignore ap;
  !accepted

let run ?(seed = 0xE9L) ~profile () =
  let forwarded_indistinguishable = forwarding_demo ~seed ~profile in
  let transit_forgery_accepted = transit_demo ~seed ~profile ~verify_transit:false in
  let transit_forgery_with_verification =
    transit_demo ~seed:(Int64.add seed 1L) ~profile ~verify_transit:true
  in
  { forwarded_indistinguishable; transit_forgery_accepted;
    transit_forgery_with_verification }

let outcome r =
  if r.transit_forgery_accepted then
    Outcome.broken
      "compromised realm erased itself from the transit path%s%s"
      (if r.forwarded_indistinguishable = Some true then
         "; forwarded tickets from trusted and rogue hosts indistinguishable"
       else "")
      (if not r.transit_forgery_with_verification then
         " (key-based transit verification stops it)"
       else "")
  else Outcome.defended "transit forgery rejected"
