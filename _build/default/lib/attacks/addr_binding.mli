(** The ticket/address-binding probe (part of E8's argument and of the
    environment section's multi-homed-host limitation).

    Two measurements:
    - {b limitation}: a multi-homed host obtains a ticket while speaking
      from one interface and presents it from the other. V4's
      address-bound tickets break this {e legitimate} use ("multi-user
      hosts often do have multiple addresses, and cannot live with this
      limitation; fixed in Version 5");
    - {b no security}: the same address check does not stop an attacker,
      who forges the source address on a datagram network at will. *)

type result = {
  legit_multihomed_works : bool;
  spoofed_source_accepted : bool;
  addr_in_ticket : bool;
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
