type t = Broken of string | Defended of string | Not_applicable of string

let broken fmt = Printf.ksprintf (fun s -> Broken s) fmt
let defended fmt = Printf.ksprintf (fun s -> Defended s) fmt
let not_applicable fmt = Printf.ksprintf (fun s -> Not_applicable s) fmt

let is_broken = function Broken _ -> true | Defended _ | Not_applicable _ -> false

let label = function
  | Broken _ -> "BROKEN"
  | Defended _ -> "defended"
  | Not_applicable _ -> "n/a"

let detail = function Broken s | Defended s | Not_applicable s -> s

let pp ppf t = Format.fprintf ppf "%s (%s)" (label t) (detail t)
