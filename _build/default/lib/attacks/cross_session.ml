open Kerberos

type result = { command : string; executions : int }

let command = "DELETE /u/pat/backup.1"

let run ?(seed = 0xE7L) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/backup.1"
    (Bytes.of_string "v1");
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/backup.2"
    (Bytes.of_string "v2");
  let chan_b = ref None in
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
          let creds = Testbed.expect "ticket" r in
          (* Two concurrent sessions under the same ticket. *)
          Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip bed.file_host)
            ~dport:bed.file_port (fun r ->
              let a = Testbed.expect "ap A" r in
              Client.ap_exchange bed.victim creds
                ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                (fun r ->
                  let b = Testbed.expect "ap B" r in
                  chan_b := Some b;
                  (* The destructive command goes out on session A. *)
                  Client.call_priv bed.victim a (Bytes.of_string command)
                    ~k:(fun r -> ignore (Testbed.expect "delete" r))))));
  Testbed.run bed;
  (* The adversary picks session A's priv request off the wire and replays
     it into session B by rewriting only the (cleartext) source port. *)
  let priv_reqs =
    Sim.Adversary.capture_matching bed.adv (fun p ->
        p.Sim.Packet.dport = bed.file_port
        &&
        match Frames.unwrap p.Sim.Packet.payload with
        | Some (k, _) -> k = Frames.priv
        | None -> false)
  in
  (match (priv_reqs, !chan_b) with
  | pkt :: _, Some _ ->
      (* Session B's client-side port: the adversary read it off the AP
         exchange for session B (the second ap_req source port). *)
      let ap_ports =
        Sim.Adversary.capture_matching bed.adv (fun p ->
            p.Sim.Packet.dport = bed.file_port
            &&
            match Frames.unwrap p.Sim.Packet.payload with
            | Some (k, _) -> k = Frames.ap_req
            | None -> false)
        |> List.map (fun p -> p.Sim.Packet.sport)
      in
      let b_port = List.nth ap_ports 1 in
      Sim.Adversary.spoof bed.adv ~src:pkt.Sim.Packet.src ~sport:b_port
        ~dst:pkt.Sim.Packet.dst ~dport:bed.file_port pkt.Sim.Packet.payload
  | _ -> failwith "cross_session: capture failed");
  Testbed.run bed;
  let executions =
    List.length
      (List.filter (fun (c, _) -> c = command) (Services.Fileserver.request_log bed.file))
  in
  { command; executions }

let outcome r =
  if r.executions > 1 then
    Outcome.broken "command executed %d times: session-A ciphertext accepted in session B"
      r.executions
  else
    Outcome.defended
      "replayed ciphertext rejected in the second session (distinct key or sequence state)"
