open Kerberos

type result = {
  requested : int;
  replies_obtained : int;
  preauth_refusals : int;
  cracked : (string * string) list;
}

let run ?(seed = 0xE4L) ?(n_users = 25) ?(weak_fraction = 0.5) ?(dictionary_head = 80)
    ?rate_limit ~profile () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let dark = Sim.Host.create ~name:"darkstar" ~ips:[ Sim.Addr.of_quad 10 0 0 66 ] () in
  Sim.Net.attach net kdc_host;
  Sim.Net.attach net dark;
  let db = Kdb.create () in
  let rng = Util.Rng.create seed in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  let users = Workloads.Passwords.population rng ~n:n_users ~weak_fraction in
  List.iter
    (fun u ->
      Kdb.add_user db (Principal.user ~realm:"ATHENA" u.Workloads.Passwords.name)
        ~password:u.Workloads.Passwords.password)
    users;
  let kdc = Kdc.create ?rate_limit ~realm:"ATHENA" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  (* The attacker fires bare AS_REQs for every known user from its own
     machine — it never needs to see anyone else's traffic. If the realm
     runs DH-protected logins, the attacker simply supplies its own
     exponential: it then knows the DH contribution to the wrapping key and
     guesses remain testable. Only preauthentication stops this. *)
  let dh =
    match profile.Profile.login with
    | Profile.Dh_protected | Profile.Handheld_dh ->
        let grp = Crypto.Dh.group ~bits:profile.Profile.dh_group_bits in
        let kp = Crypto.Dh.generate rng grp in
        Some (grp, kp)
    | Profile.Password | Profile.Handheld_challenge -> None
  in
  let padata =
    match dh with
    | None -> []
    | Some (grp, kp) ->
        [ Messages.Pa_dh
            (Crypto.Bignum.to_bytes_be
               ~size:((Crypto.Bignum.num_bits grp.Crypto.Dh.p + 7) / 8)
               kp.Crypto.Dh.public) ]
  in
  let harvested = ref [] in
  let refusals = ref 0 in
  List.iteri
    (fun i u ->
      let name = u.Workloads.Passwords.name in
      let req =
        { Messages.q_client = Principal.user ~realm:"ATHENA" name;
          q_server = Principal.tgs ~realm:"ATHENA";
          q_nonce = Int64.of_int (7000 + i);
          q_addr = Sim.Host.primary_ip dark;
          q_padata = padata }
      in
      Sim.Rpc.call net dark ~dst:(Sim.Host.primary_ip kdc_host) ~dport:Kdc.default_port
        (Wire.Encoding.encode profile.Profile.encoding (Messages.as_req_to_value req))
        ~on_timeout:ignore
        ~on_reply:(fun pkt ->
          match
            Wire.Encoding.decode profile.Profile.encoding pkt.Sim.Packet.payload
          with
          | exception Wire.Codec.Decode_error _ -> ()
          | v -> (
              match Messages.as_rep_of_value v with
              | rep ->
                  let dh_key =
                    match (dh, rep.Messages.p_dh_public) with
                    | Some (grp, kp), Some server_pub ->
                        Some
                          (Crypto.Dh.secret_to_key grp
                             (Crypto.Dh.shared_secret grp kp
                                (Crypto.Bignum.of_bytes_be server_pub)))
                    | _ -> None
                  in
                  harvested :=
                    (name, rep.Messages.p_sealed, dh_key, rep.Messages.p_challenge)
                    :: !harvested
              | exception Wire.Codec.Decode_error _ -> incr refusals)))
    users;
  Sim.Engine.run eng;
  let cands = Password_guess.candidates ~head:dictionary_head in
  let cracked =
    List.filter_map
      (fun (user, sealed, dh_key, challenge) ->
        Option.map
          (fun pw -> (user, pw))
          (Password_guess.try_crack ~profile ~candidates:cands ?challenge ?dh_key
             ~sealed ()))
      !harvested
  in
  { requested = n_users; replies_obtained = List.length !harvested;
    preauth_refusals = !refusals; cracked }

let outcome r =
  if r.cracked <> [] then
    Outcome.broken "harvested %d/%d AS replies by asking; %d passwords recovered"
      r.replies_obtained r.requested (List.length r.cracked)
  else if r.replies_obtained = 0 then
    Outcome.defended "KDC refused all %d unauthenticated requests (preauthentication)"
      r.preauth_refusals
  else
    Outcome.defended "replies obtained but none crackable offline"
