(** E4 — active ticket harvesting, no eavesdropping required.

    "Requests for tickets are not themselves encrypted; an attacker could
    simply request ticket-granting tickets for many different users."
    The attacker enumerates user names (they are public — mail aliases,
    finger) and asks the KDC directly, then cracks the replies offline.

    Recommendation (g) — preauthentication of the user to the KDC — makes
    the KDC refuse to hand out the crackable material. *)

type result = {
  requested : int;
  replies_obtained : int;
  preauth_refusals : int;
  cracked : (string * string) list;
}

val run :
  ?seed:int64 ->
  ?n_users:int ->
  ?weak_fraction:float ->
  ?dictionary_head:int ->
  ?rate_limit:int ->
  profile:Kerberos.Profile.t ->
  unit ->
  result
(** [rate_limit] configures the KDC's per-source request cap — the paper's
    suggested partial mitigation; the harvest then yields at most that many
    replies per minute per attacking host. *)

val outcome : result -> Outcome.t
