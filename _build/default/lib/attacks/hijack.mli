(** E8a — post-authentication connection hijacking.

    "An attacker can always wait until the connection is set up and
    authenticated, and then take it over, thus obviating any security
    provided by the presence of the address [in the ticket]."

    The victim authenticates an rsh connection (Kerberos checks pass — any
    profile) and runs a command. The adversary, having watched the
    sequence numbers go by, injects the next in-sequence segment with a
    spoofed source. The server attributes the injected command to the
    victim. No AP-exchange hardening helps; the fix is to protect the
    {e session} (KRB_PRIV with chained IVs), not the handshake. *)

type result = {
  victim_command : string;
  injected_command : string;
  executed_as_victim : bool;
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
