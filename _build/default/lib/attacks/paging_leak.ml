open Kerberos

type result = {
  pages_captured : int;
  tgt_recovered : bool;
  impersonation_worked : bool;
}

let swap_port = 2050

let run ?(seed = 0xE18L) ?(pinned_memory = false) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* The victim's workstation is diskless: it pages to the file host. A
     page-out is an ordinary cleartext datagram with the page contents. *)
  let swap_sport = Sim.Net.ephemeral_port bed.net in
  if not pinned_memory then
    bed.victim_ws.Sim.Host.on_cache_write <-
      Some
        (fun label blob ->
          let w = Wire.Codec.Writer.create () in
          Wire.Codec.Writer.lstring w label;
          Wire.Codec.Writer.lbytes w blob;
          Sim.Net.send bed.net ~sport:swap_sport
            ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:swap_port bed.victim_ws
            (Wire.Codec.Writer.contents w));
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/mail"
    (Bytes.of_string "private correspondence");
  Testbed.login_victim bed;
  (* The wiretapper sifts the page-outs for credential-cache pages. *)
  let pages =
    Sim.Adversary.capture_matching bed.adv (fun p -> p.Sim.Packet.dport = swap_port)
  in
  let tgt_blob =
    List.find_map
      (fun p ->
        match
          let r = Wire.Codec.Reader.of_bytes p.Sim.Packet.payload in
          let label = Wire.Codec.Reader.lstring r in
          let blob = Wire.Codec.Reader.lbytes r in
          (label, blob)
        with
        | "tgt", blob -> Some blob
        | _ -> None
        | exception Wire.Codec.Decode_error _ -> None)
      pages
  in
  let worked = ref false in
  (match tgt_blob with
  | None -> ()
  | Some blob -> (
      let creds = Client.creds_of_bytes blob in
      match (profile.Profile.addr_in_ticket, profile.Profile.ap_auth) with
      | false, _ ->
          (* No address in the ticket: just use it from the attacker's
             machine like any client would. *)
          let masquerade =
            Client.create ~seed:93L bed.net bed.attacker_host ~profile
              ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
              (Principal.user ~realm:"ATHENA" "pat")
          in
          Client.adopt_tgt masquerade creds;
          Client.get_ticket masquerade ~service:bed.file_principal (fun r ->
              match r with
              | Error _ -> ()
              | Ok svc ->
                  Client.ap_exchange masquerade svc
                    ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                    (fun r ->
                      match r with
                      | Error _ -> ()
                      | Ok chan ->
                          Client.call_priv masquerade chan
                            (Bytes.of_string "READ /u/pat/mail") ~k:(fun r ->
                              worked := Result.is_ok r)))
      | true, Profile.Timestamp _ ->
          (* V4's address binding: forge the victim's source address and
             read every reply off the tap — "no extra security is gained by
             relying on the network address". *)
          let stolen =
            { Spoofed_client.s_client = Principal.user ~realm:"ATHENA" "pat";
              s_ticket = creds.Client.ticket; s_session_key = creds.Client.session_key }
          in
          Spoofed_client.get_service_ticket bed ~spoof_addr:(Testbed.victim_addr bed)
            ~tgt:stolen ~service:bed.file_principal ~k:(fun r ->
              match r with
              | Error _ -> ()
              | Ok svc ->
                  Spoofed_client.call_priv_as bed
                    ~spoof_addr:(Testbed.victim_addr bed)
                    ~client:(Principal.user ~realm:"ATHENA" "pat") ~creds:svc
                    ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                    (Bytes.of_string "READ /u/pat/mail")
                    ~k:(fun r -> worked := Result.is_ok r))
      | true, Profile.Challenge_response -> ()));
  Testbed.run bed;
  { pages_captured = List.length pages;
    tgt_recovered = tgt_blob <> None;
    impersonation_worked = !worked }

let outcome r =
  if r.impersonation_worked then
    Outcome.broken "TGT reassembled from %d cleartext page-out(s); victim impersonated"
      r.pages_captured
  else if r.pages_captured = 0 then
    Outcome.defended "keys pinned in local memory; nothing paged over the wire"
  else if r.tgt_recovered then
    Outcome.defended "TGT captured but unusable (address binding from another host)"
  else Outcome.defended "no credential pages observed"
