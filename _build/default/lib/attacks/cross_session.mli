(** E7 — replaying messages between two concurrent sessions that share a
    multi-session key.

    "The term session key is a misnomer ... it is used for all contacts
    with that server during the life of the ticket. [True session keys]
    would preclude attacks which substitute messages from one session in
    another" — and: "if two authenticated or encrypted sessions run
    concurrently, the cache must be shared between them, or messages from
    one session can be replayed into the other."

    The victim opens two sessions to the file server with the same ticket
    and issues a destructive command in session A; the adversary replays
    the ciphertext into session B, doubling its effect. Negotiated true
    session keys (or per-session sequence numbers) stop it. *)

type result = {
  command : string;
  executions : int;  (** how many times the server executed it *)
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
