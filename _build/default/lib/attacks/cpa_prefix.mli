(** E6 — the inter-session chosen-plaintext attack on the V5 KRB_PRIV
    format.

    "Since cipher-block chaining has the property that prefixes of
    encryptions are encryptions of prefixes, if DATA has the form
    (AUTHENTICATOR, CHECKSUM, REMAINDER) then a prefix of the encryption of
    X with the session key is the encryption of (AUTHENTICATOR, CHECKSUM),
    and can be used to spoof an entire session with the server. ... Mail
    and file servers are examples of servers susceptible to such attacks."

    Concretely: the attacker mails the victim a message whose first bytes
    are a complete, valid KRB_PRIV {e plaintext} for the command
    [DELE 0] — trailer, direction byte, padding and all. When the victim
    retrieves the mail, the server encrypts those attacker-chosen bytes
    under the victim's session key with the fixed IV; the attacker cuts
    the matching ciphertext prefix off the wire and sends it back to the
    server as a message {e from} the victim.

    V4's leading length field "disrupts the prefix-based attack"; the
    hardened profile's evolving IV plus internal MD4 breaks it too. *)

type result = {
  planted_bytes : int;
  prefix_cut : bool;  (** the oracle produced a usable ciphertext *)
  executed_as_victim : bool;
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
