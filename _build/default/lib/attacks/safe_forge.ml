open Kerberos

type result = {
  victim_sent : string;
  forged_to : string;
  forgery_accepted : bool;
  file_planted : bool;
}

let victim_sent = "WRITE /u/pat/plan today: review chapter three and send comments"
let forged_payload = "WRITE /u/pat/.rhosts darkstar.mit.edu robin"

(* Compute a replacement for the KRB_SAFE data such that the CRC register,
   after processing [u32 len'][data'], equals its state after
   [u32 len][data] — the untouched (stamp, addr) suffix and the sealed
   checksum then verify unchanged. Returns None when the checksum is
   collision-proof. *)
let forge_data (profile : Profile.t) ~original_data =
  match profile.Profile.checksum with
  | Crypto.Checksum.Md4 | Crypto.Checksum.Md4_des -> None
  | Crypto.Checksum.Crc32 ->
      let covered_prefix data =
        let w = Wire.Codec.Writer.create () in
        Wire.Codec.Writer.lbytes w data;
        Wire.Codec.Writer.contents w
      in
      let target_state =
        Crypto.Crc32.update Crypto.Crc32.init (covered_prefix original_data)
      in
      let body = Bytes.of_string forged_payload in
      (* The forged data is the payload plus 4 patch bytes. *)
      let forged_len = Bytes.length body + 4 in
      let prefix =
        let w = Wire.Codec.Writer.create () in
        Wire.Codec.Writer.u32 w forged_len;
        Wire.Codec.Writer.raw w body;
        Wire.Codec.Writer.contents w
      in
      let from_state = Crypto.Crc32.update Crypto.Crc32.init prefix in
      let patch = Crypto.Crc32.forge_state ~from_state ~to_state:target_state in
      Some (Bytes.cat body patch)

let run ?(seed = 0xE12L) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  let forged = ref false in
  Sim.Adversary.intercept bed.adv (fun pkt ->
      if !forged || pkt.Sim.Packet.dport <> bed.file_port then Sim.Net.Deliver
      else
        match Frames.unwrap pkt.Sim.Packet.payload with
        | Some (k, body) when k = Frames.safe -> (
            (* KRB_SAFE is cleartext: parse it, swap the data, keep the
               stamp and the sealed checksum verbatim. *)
            match
              let r = Wire.Codec.Reader.of_bytes body in
              let data = Wire.Codec.Reader.lbytes r in
              let stamp = Wire.Codec.Reader.i64 r in
              let sealed = Wire.Codec.Reader.lbytes r in
              (data, stamp, sealed)
            with
            | exception Wire.Codec.Decode_error _ -> Sim.Net.Deliver
            | data, stamp, sealed -> (
                match forge_data profile ~original_data:data with
                | None -> Sim.Net.Deliver (* collision-proof: nothing to do *)
                | Some data' ->
                    forged := true;
                    let w = Wire.Codec.Writer.create () in
                    Wire.Codec.Writer.lbytes w data';
                    Wire.Codec.Writer.i64 w stamp;
                    Wire.Codec.Writer.lbytes w sealed;
                    Sim.Net.Replace
                      [ { pkt with
                          Sim.Packet.payload =
                            Frames.wrap Frames.safe (Wire.Codec.Writer.contents w) } ]))
        | _ -> Sim.Net.Deliver);
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
          let creds = Testbed.expect "ticket" r in
          Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip bed.file_host)
            ~dport:bed.file_port (fun r ->
              let chan = Testbed.expect "ap" r in
              Client.call_safe bed.victim chan (Bytes.of_string victim_sent)
                ~k:(fun _ -> ()))));
  Testbed.run bed;
  let planted =
    match Services.Fileserver.read_file bed.file "/u/pat/.rhosts" with
    | Some content ->
        Astring.String.is_prefix ~affix:"darkstar.mit.edu robin"
          (Bytes.to_string content)
    | None -> false
  in
  let accepted =
    List.exists
      (fun (cmd, who) ->
        who = "pat@ATHENA" && Astring.String.is_prefix ~affix:"WRITE /u/pat/.rhosts" cmd)
      (Services.Fileserver.request_log bed.file)
  in
  { victim_sent; forged_to = forged_payload; forgery_accepted = accepted;
    file_planted = planted }

let outcome r =
  if r.forgery_accepted then
    Outcome.broken "KRB_SAFE data swapped, sealed CRC-32 still verified; %s"
      (if r.file_planted then ".rhosts planted as the victim" else "forged command ran")
  else Outcome.defended "no same-checksum substitute exists (collision-proof checksum)"
