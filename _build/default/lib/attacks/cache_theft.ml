open Kerberos

type result = {
  host_kind : string;
  stolen_entries : int;
  impersonation_worked : bool;
  files_read : string list;
}

let run ?(seed = 0xE16L) ?(multi_user = true) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* The victim works on a shared departmental machine (or a private
     workstation, for the contrast case). *)
  let shared =
    Sim.Host.create
      ~security:(if multi_user then Sim.Host.Multi_user else Sim.Host.Workstation)
      ~name:"timeshare" ~ips:[ Sim.Addr.of_quad 10 0 0 40 ] ()
  in
  Sim.Net.attach bed.net shared;
  let victim =
    Client.create ~seed:11L bed.net shared ~profile
      ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/u/pat/thesis"
    (Bytes.of_string "draft chapter 3");
  Client.login victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "victim login" r));
  Testbed.run bed;
  (* The co-resident attacker reads whatever the host lets it read. *)
  let stolen = Sim.Host.steal_cache shared in
  let stolen_entries = match stolen with None -> 0 | Some l -> List.length l in
  let files_read = ref [] in
  let worked = ref false in
  (match stolen with
  | None | Some [] -> ()
  | Some entries -> (
      match List.assoc_opt "tgt" entries with
      | None -> ()
      | Some blob ->
          let creds = Client.creds_of_bytes blob in
          (* Impersonation runs from the same machine (same address), so
             even address-bound tickets pass. *)
          let masquerade =
            Client.create ~seed:12L bed.net shared ~profile
              ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
              (Principal.user ~realm:"ATHENA" "pat")
          in
          Client.adopt_tgt masquerade creds;
          Client.get_ticket masquerade ~service:bed.file_principal (fun r ->
              match r with
              | Error _ -> ()
              | Ok svc ->
                  Client.ap_exchange masquerade svc
                    ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                    (fun r ->
                      match r with
                      | Error _ -> ()
                      | Ok chan ->
                          Client.call_priv masquerade chan
                            (Bytes.of_string "READ /u/pat/thesis") ~k:(fun r ->
                              match r with
                              | Ok data ->
                                  worked := true;
                                  files_read := Bytes.to_string data :: !files_read
                              | Error _ -> ())))));
  Testbed.run bed;
  { host_kind = (if multi_user then "multi-user host" else "workstation");
    stolen_entries; impersonation_worked = !worked; files_read = !files_read }

let outcome r =
  if r.impersonation_worked then
    Outcome.broken "%s: %d cache entries stolen; victim's files read via stolen TGT"
      r.host_kind r.stolen_entries
  else if r.stolen_entries = 0 then
    Outcome.defended "%s: nothing readable in the credential cache" r.host_kind
  else Outcome.defended "%s: cache read but credentials unusable" r.host_kind
