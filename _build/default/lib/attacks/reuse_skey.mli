(** E11 — the REUSE-SKEY redirect.

    "If two tickets T1 and T2 share the same key, the attacker can
    intercept a request for one service, and redirect it to the other.
    ... If, say, a file server and a backup server were invoked this way,
    an attacker might redirect some requests to destroy archival copies of
    files being edited."

    The victim holds a file-server ticket and a backup-server ticket
    sharing one session key (the multicast-style REUSE-SKEY issuance),
    with live sessions to both. A housekeeping [DELETE] meant for the file
    server is copied in flight and re-aimed at the backup server, where
    the same verb destroys the archive. *)

type result = {
  applicable : bool;
  archive_destroyed : bool;
  believed_principal : string option;
}

val run :
  ?seed:int64 ->
  ?server_config:Kerberos.Apserver.config ->
  profile:Kerberos.Profile.t ->
  unit ->
  result
(** Pass a [server_config] with [refuse_dup_skey = true] to model servers
    that obey Draft 3's warning — "servers that obey this restriction are
    not vulnerable". *)

val outcome : result -> Outcome.t
