open Kerberos

type result = { loot : string; attacker_login_as_victim : bool }

let run ?(seed = 0xE5L) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  (* What the trojan sees depends on the login method. *)
  let recorded_password = ref None in
  let recorded_response = ref None in
  let device = Hardened.Handheld.enroll ~password:bed.victim_password in
  (match profile.Profile.login with
  | Profile.Handheld_challenge | Profile.Handheld_dh ->
      (* The victim types no password; the trojan can only watch the
         device's challenge/response crossing the keyboard path. *)
      let trojaned_device r =
        let resp = Hardened.Handheld.respond device r in
        recorded_response := Some (r, resp);
        resp
      in
      Client.login bed.victim ~handheld:trojaned_device ~password:bed.victim_password
        (fun r -> ignore (Testbed.expect "victim login" r))
  | Profile.Password | Profile.Dh_protected ->
      (* The trojan records the typed password before forwarding it. *)
      recorded_password := Some bed.victim_password;
      Client.login bed.victim ~password:bed.victim_password (fun r ->
          ignore (Testbed.expect "victim login" r)));
  Testbed.run bed;
  (* Later, from the attacker's machine: try to become the victim. *)
  let masquerade =
    Client.create ~seed:77L bed.net bed.attacker_host ~profile
      ~kdcs:[ ("ATHENA", Testbed.kdc_addr bed) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  let succeeded = ref false in
  (match (profile.Profile.login, !recorded_password, !recorded_response) with
  | (Profile.Password | Profile.Dh_protected), Some pw, _ ->
      Client.login masquerade ~password:pw (fun r ->
          succeeded := Result.is_ok r)
  | (Profile.Handheld_challenge | Profile.Handheld_dh), _, Some (_r, resp) ->
      (* The attacker has one recorded response but no device and no
         password; it can only try replaying the response as if the KDC
         would issue the same challenge again. *)
      let replay_device _fresh_r = resp in
      Client.login masquerade ~handheld:replay_device ~password:"(unknown)" (fun r ->
          succeeded := Result.is_ok r)
  | _ -> ());
  Testbed.run bed;
  let loot =
    match (!recorded_password, !recorded_response) with
    | Some pw, _ -> Printf.sprintf "the password %S" pw
    | None, Some _ -> "one challenge response {R}Kc"
    | None, None -> "nothing"
  in
  { loot; attacker_login_as_victim = !succeeded }

let outcome r =
  if r.attacker_login_as_victim then
    Outcome.broken "trojan recorded %s; attacker logged in as the victim" r.loot
  else
    Outcome.defended "trojan recorded %s; useless for a later login (fresh challenge)"
      r.loot
