(** E2b — the time/authentication bootstrap circularity.

    "The design philosophy of building an authentication service on top of
    a secure time service is itself questionable ... if they access the
    time service as a client, they must somehow obtain and store a ticket
    and key to authenticate it."

    A file server's clock has drifted far beyond the skew window. The
    realm's time service is Kerberos-authenticated (so E2's spoofing is
    closed). To fix its clock the server must authenticate — but under the
    timestamp protocol its authenticators are exactly what its broken
    clock ruins: the TGS refuses them, and the machine is wedged (and
    meanwhile refuses its own honest clients). Under the paper's
    challenge/response option the path to the time service is clock-free
    — AS exchange (nonce), direct service ticket, challenge/response AP —
    and the machine recovers. *)

type result = {
  initial_skew : float;
  could_reach_time_service : bool;
  clock_recovered : bool;
  honest_clients_locked_out : bool;
      (** while skewed, did the server refuse an honest AP attempt? *)
}

val run : ?seed:int64 -> ?skew_amount:float -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
(** [Broken] = the machine stayed wedged (the circularity bit);
    [Defended] = it recovered via a clock-free path. *)
