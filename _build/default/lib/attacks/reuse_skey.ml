open Kerberos

type result = {
  applicable : bool;
  archive_destroyed : bool;
  believed_principal : string option;
}

let path = "/u/pat/draft"

let run ?(seed = 0xE11L) ?server_config ~profile () =
  if not profile.Profile.allow_reuse_skey then
    { applicable = false; archive_destroyed = false; believed_principal = None }
  else begin
    let bed = Testbed.make ~seed ?server_config ~profile () in
    let backup_refused = ref false in
    Services.Backupserver.archive bed.backup ~path (Bytes.of_string "precious archive");
    Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path
      (Bytes.of_string "scratch copy");
    Client.login bed.victim ~password:bed.victim_password (fun r ->
        ignore (Testbed.expect "login" r);
        Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
            let t1 = Testbed.expect "file ticket" r in
            (* Multicast-style: the backup ticket reuses T1's session key. *)
            Client.get_ticket bed.victim
              ~options:{ Messages.no_options with reuse_skey = true }
              ~additional_ticket:t1.Client.ticket ~service:bed.backup_principal
              (fun r ->
                let t2 = Testbed.expect "backup ticket (reuse-skey)" r in
                Client.ap_exchange bed.victim t1
                  ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                  (fun r ->
                    let file_chan = Testbed.expect "file ap" r in
                    Client.ap_exchange bed.victim t2
                      ~dst:(Sim.Host.primary_ip bed.backup_host)
                      ~dport:bed.backup_port (fun r ->
                        (match r with
                        | Error _ ->
                            (* A server obeying Draft 3's DUPLICATE-SKEY
                               warning refuses the shared-key ticket; the
                               redirect has no session to land in. *)
                            backup_refused := true
                        | Ok _backup_chan -> ());
                        (* Victim tidies up its scratch copy on the FILE server. *)
                        Client.call_priv bed.victim file_chan
                          (Bytes.of_string ("DELETE " ^ path)) ~k:(fun r ->
                            ignore (Testbed.expect "file delete" r)))))));
    Testbed.run bed;
    (* Adversary: find the backup session's client port (second AP_REQ),
       then re-aim the captured file-server DELETE at the backup server. *)
    let ap_ports =
      Sim.Adversary.capture_matching bed.adv (fun p ->
          (p.Sim.Packet.dport = bed.backup_port)
          &&
          match Frames.unwrap p.Sim.Packet.payload with
          | Some (k, _) -> k = Frames.ap_req
          | None -> false)
      |> List.map (fun p -> p.Sim.Packet.sport)
    in
    (match ap_ports with
    | [] -> failwith "reuse_skey: no backup AP attempt observed"
    | bport :: _ ->
        let deletes =
          Sim.Adversary.capture_matching bed.adv (fun p ->
              p.Sim.Packet.dport = bed.file_port
              &&
              match Frames.unwrap p.Sim.Packet.payload with
              | Some (k, body) -> k = Frames.priv && Bytes.length body > 24
              | None -> false)
        in
        (match deletes with
        | pkt :: _ ->
            Sim.Adversary.spoof bed.adv ~src:pkt.Sim.Packet.src ~sport:bport
              ~dst:(Sim.Host.primary_ip bed.backup_host) ~dport:bed.backup_port
              pkt.Sim.Packet.payload
        | [] -> failwith "reuse_skey: no priv request captured"));
    Testbed.run bed;
    match Services.Backupserver.destroyed bed.backup with
    | (p, who) :: _ when p = path ->
        { applicable = true; archive_destroyed = true; believed_principal = Some who }
    | _ ->
        { applicable = true; archive_destroyed = false;
          believed_principal = (if !backup_refused then Some "(no session: DUPLICATE-SKEY refused)" else None) }
  end

let outcome r =
  if not r.applicable then Outcome.not_applicable "REUSE-SKEY option disabled"
  else if r.archive_destroyed then
    Outcome.broken "file-server DELETE redirected; archive destroyed as %s"
      (Option.value r.believed_principal ~default:"?")
  else Outcome.defended "redirected request rejected by the backup server"
