open Kerberos

type result = {
  applicable : bool;
  checksum_forged : bool;
  kdc_issued_misencrypted_ticket : bool;
  mutual_auth_spoofed : bool;
  stolen_plaintext : string option;
}

let no_result ~applicable =
  { applicable; checksum_forged = false; kdc_issued_misencrypted_ticket = false;
    mutual_auth_spoofed = false; stolen_plaintext = None }

let secret_request = "WRITE /u/pat/dossier the committee's confidential notes"

let run ?(seed = 0xE10L) ?(enc_tkt_cname_check = false) ~profile () =
  if not profile.Profile.allow_enc_tkt_in_skey then no_result ~applicable:false
  else begin
    let bed = Testbed.make ~seed ~enc_tkt_cname_check ~profile () in
    (* The insider attacker logs in first: its own TGT and session key are
       the tools of the trade. *)
    let robin_creds = ref None in
    Client.login bed.attacker ~password:bed.attacker_password (fun r ->
        robin_creds := Some (Testbed.expect "robin login" r));
    Testbed.run bed;
    let robin = Option.get !robin_creds in
    let forged = ref false in
    let misencrypted = ref false in
    let spoofed_mutual = ref false in
    let stolen = ref None in
    let stolen_key = ref None in
    (* In-flight rewriting: first the victim's TGS_REQ, later its AP_REQ. *)
    Sim.Adversary.intercept bed.adv (fun pkt ->
        if pkt.Sim.Packet.dport = Kdc.default_port then begin
          match
            Messages.tgs_req_of_value
              (Wire.Encoding.decode profile.Profile.encoding pkt.Sim.Packet.payload)
          with
          | exception Wire.Codec.Decode_error _ -> Sim.Net.Deliver
          | req when Principal.equal req.t_server bed.file_principal -> (
              (* Step 1: flip the option, enclose robin's TGT. *)
              let modified =
                { req with
                  t_options = { req.t_options with enc_tkt_in_skey = true };
                  t_additional_ticket = Some robin.Client.ticket }
              in
              (* Step 2: stuff authorization data until the CRC matches the
                 value sealed in the victim's authenticator. *)
              match
                Crypto.Checksum.forge_to_match profile.Profile.checksum
                  ~original:(Messages.tgs_req_cleartext_fields req)
                  ~tampered_prefix:(Messages.tgs_req_cleartext_fields modified)
              with
              | None -> Sim.Net.Deliver (* collision-proof checksum: no forgery *)
              | Some filler ->
                  forged := true;
                  let modified =
                    { modified with
                      t_authz_data = Bytes.cat modified.t_authz_data filler }
                  in
                  Sim.Net.Replace
                    [ { pkt with
                        Sim.Packet.payload =
                          Wire.Encoding.encode profile.Profile.encoding
                            (Messages.tgs_req_to_value modified) } ])
          | _ -> Sim.Net.Deliver
        end
        else if pkt.Sim.Packet.dport = bed.file_port then begin
          match Frames.unwrap pkt.Sim.Packet.payload with
          | Some (k, payload) when k = Frames.ap_req -> (
              match
                Messages.ap_req_of_value
                  (Wire.Encoding.decode profile.Profile.encoding payload)
              with
              | exception Wire.Codec.Decode_error _ -> Sim.Net.Deliver
              | ap -> (
                  (* Step 3: the ticket is encrypted in robin's session key,
                     not the file server's. Unseal it. *)
                  match
                    Messages.open_msg profile ~key:robin.Client.session_key
                      ~tag:Messages.tag_ticket ap.r_ticket
                  with
                  | Error _ -> Sim.Net.Deliver
                  | Ok tv -> (
                      let ticket = Messages.ticket_of_value tv in
                      misencrypted := true;
                      let skey = ticket.Messages.session_key in
                      stolen_key := Some skey;
                      (* Step 4: spoof the mutual-authentication reply. *)
                      match
                        Messages.open_msg profile ~key:skey
                          ~tag:Messages.tag_authenticator ap.r_authenticator
                      with
                      | Error _ -> Sim.Net.Drop
                      | Ok av ->
                          let auth = Messages.authenticator_of_value av in
                          let rep =
                            Messages.seal_msg profile bed.rng ~key:skey
                              ~tag:Messages.tag_ap_rep_body
                              (Messages.ap_rep_body_to_value
                                 { Messages.ar_timestamp =
                                     auth.a_timestamp +. 1.0;
                                   ar_subkey_part = None; ar_seq_init = None })
                          in
                          spoofed_mutual := true;
                          Sim.Net.Replace
                            [ { Sim.Packet.src = Sim.Host.primary_ip bed.file_host;
                                sport = bed.file_port; dst = pkt.Sim.Packet.src;
                                dport = pkt.Sim.Packet.sport;
                                payload = Frames.wrap Frames.ap_ok rep;
                                uid = 0 } ])))
          | Some (k, payload) when k = Frames.priv -> (
              (* Step 5: the victim, convinced it reached the file server,
                 sends its sealed request; the enemy reads it. *)
              match !stolen_key with
              | None -> Sim.Net.Drop
              | Some skey ->
                  let session =
                    Session.make ~profile ~rng:(Util.Rng.split bed.rng)
                      ~role:Session.Server_side ~key:skey
                      ~own_addr:(Sim.Host.primary_ip bed.file_host)
                      ~peer_addr:pkt.Sim.Packet.src ~send_seq:0 ~recv_seq:0
                  in
                  (match Krb_priv.open_ session ~now:(Sim.Net.now bed.net) payload with
                  | Ok data -> stolen := Some (Bytes.to_string data)
                  | Error _ -> ());
                  Sim.Net.Drop)
          | _ -> Sim.Net.Deliver
        end
        else Sim.Net.Deliver);
    (* The oblivious victim: log in, get a file-server ticket, authenticate
       with mutual auth, send a confidential write. *)
    Client.login bed.victim ~password:bed.victim_password (fun r ->
        ignore (Testbed.expect "victim login" r);
        Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
            match r with
            | Error _ -> () (* the KDC balked at the tampered request *)
            | Ok creds ->
                Client.ap_exchange bed.victim creds ~mutual:true
                  ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                  (fun r ->
                    match r with
                    | Error _ -> ()
                    | Ok chan ->
                        Client.call_priv bed.victim chan
                          (Bytes.of_string secret_request) ~k:(fun _ -> ()))));
    Testbed.run bed;
    { applicable = true; checksum_forged = !forged;
      kdc_issued_misencrypted_ticket = !misencrypted;
      mutual_auth_spoofed = !spoofed_mutual; stolen_plaintext = !stolen }
  end

let outcome r =
  if not r.applicable then Outcome.not_applicable "ENC-TKT-IN-SKEY option disabled"
  else
    match r.stolen_plaintext with
    | Some text ->
        Outcome.broken
          "CRC forged, ticket re-keyed to the enemy, mutual auth spoofed; read: %S" text
    | None ->
        if not r.checksum_forged then
          Outcome.defended "collision-proof checksum: request could not be tampered"
        else if not r.kdc_issued_misencrypted_ticket then
          Outcome.defended "KDC refused the tampered request (cname check)"
        else Outcome.defended "attack fizzled after ticket issuance"
