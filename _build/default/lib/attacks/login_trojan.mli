(** E5 — login spoofing.

    "It is quite simple for an intruder to replace the login command with a
    version that records users' passwords before employing them in the
    Kerberos dialog."

    The trojan here wraps the victim's login and records whatever crosses
    it. Under password login that is the password itself: the attacker can
    log in as the victim from anywhere, forever (until a password change).
    Under the handheld [{R}Kc] scheme the trojan records only one
    challenge's response; when the attacker later tries to log in, the KDC
    issues a fresh [R'] and the loot is useless. *)

type result = {
  loot : string;  (** what the trojan recorded *)
  attacker_login_as_victim : bool;  (** could the attacker use the loot later? *)
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
