open Kerberos

type result = {
  substitution_possible : bool;
  client_fooled : bool;
  failure_surfaced_at : string;
}

let run ?(seed = 0xE10BL) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  let substituted = ref false in
  let kdc_replies_seen = ref 0 in
  (* Swap the cleartext ticket in the TGS reply (the second KDC reply the
     victim receives): a swapped TGT would already surface at the TGS, but
     a swapped service ticket travels all the way to the service before
     anything complains. *)
  Sim.Adversary.intercept bed.adv (fun pkt ->
      if pkt.Sim.Packet.sport <> Kdc.default_port then Sim.Net.Deliver
      else if
        (incr kdc_replies_seen;
         !kdc_replies_seen < 2)
      then Sim.Net.Deliver
      else
        match
          Messages.as_rep_of_value
            (Wire.Encoding.decode profile.Profile.encoding pkt.Sim.Packet.payload)
        with
        | exception Wire.Codec.Decode_error _ -> Sim.Net.Deliver
        | rep -> (
            match rep.p_ticket with
            | None -> Sim.Net.Deliver (* nothing outside the seal to touch *)
            | Some ticket ->
                substituted := true;
                let bogus = Bytes.make (Bytes.length ticket) '\x5a' in
                Sim.Net.Replace
                  [ { pkt with
                      Sim.Packet.payload =
                        Wire.Encoding.encode profile.Profile.encoding
                          (Messages.as_rep_to_value
                             { rep with Messages.p_ticket = Some bogus }) } ]));
  let login_ok = ref false and ticket_ok = ref false and use_ok = ref false in
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      match r with
      | Error _ -> ()
      | Ok _ ->
          login_ok := true;
          Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
              match r with
              | Error _ -> ()
              | Ok creds ->
                  ticket_ok := true;
                  Client.ap_exchange bed.victim creds
                    ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                    (fun r -> use_ok := Result.is_ok r)));
  Testbed.run bed;
  let failure_surfaced_at =
    if not !login_ok then "login"
    else if not !ticket_ok then "ticket acquisition"
    else if not !use_ok then "service use"
    else "nowhere"
  in
  { substitution_possible = !substituted;
    client_fooled = !ticket_ok && not !use_ok;
    failure_surfaced_at }

let outcome r =
  if r.client_fooled then
    Outcome.broken
      "cleartext ticket swapped undetected; the failure only surfaced at %s"
      r.failure_surfaced_at
  else if not r.substitution_possible then
    Outcome.defended
      "ticket rides inside the sealed reply: nothing to substitute, tampering fails at login"
  else Outcome.defended "substitution detected at %s" r.failure_surfaced_at
