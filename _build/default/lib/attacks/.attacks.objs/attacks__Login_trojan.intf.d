lib/attacks/login_trojan.mli: Kerberos Outcome
