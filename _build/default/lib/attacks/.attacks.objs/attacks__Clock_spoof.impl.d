lib/attacks/clock_spoof.ml: Apserver Bytes Frames Int64 Kerberos Outcome Services Sim Testbed Timesvc
