lib/attacks/replay_auth.ml: Apserver Frames Kerberos Outcome Profile Services Sim Testbed
