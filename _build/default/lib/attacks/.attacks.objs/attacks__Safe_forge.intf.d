lib/attacks/safe_forge.mli: Kerberos Outcome
