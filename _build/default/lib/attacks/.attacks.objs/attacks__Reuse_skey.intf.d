lib/attacks/reuse_skey.mli: Kerberos Outcome
