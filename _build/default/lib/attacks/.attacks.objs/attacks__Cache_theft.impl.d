lib/attacks/cache_theft.ml: Bytes Client Kerberos List Outcome Principal Services Sim Testbed
