lib/attacks/outcome.mli: Format
