lib/attacks/outcome.ml: Format Printf
