lib/attacks/login_trojan.ml: Client Hardened Kerberos Outcome Principal Printf Profile Result Testbed
