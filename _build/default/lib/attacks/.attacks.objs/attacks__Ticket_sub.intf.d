lib/attacks/ticket_sub.mli: Kerberos Outcome
