lib/attacks/hijack.ml: Bytes Client Crypto Kdb Kerberos List Outcome Principal Services Sim Testbed
