lib/attacks/cut_paste.ml: Bytes Client Crypto Frames Kdc Kerberos Krb_priv Messages Option Outcome Principal Profile Session Sim Testbed Util Wire
