lib/attacks/replay_auth.mli: Kerberos Outcome
