lib/attacks/morris_isn.ml: Bytes Client Crypto Frames Kdb Kerberos List Outcome Principal Services Sim Testbed
