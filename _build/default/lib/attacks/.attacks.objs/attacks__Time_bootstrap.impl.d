lib/attacks/time_bootstrap.ml: Apserver Client Crypto Float Kdb Kerberos Outcome Principal Profile Result Services Sim Testbed
