lib/attacks/hijack.mli: Kerberos Outcome
