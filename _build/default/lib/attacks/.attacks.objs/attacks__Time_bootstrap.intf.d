lib/attacks/time_bootstrap.mli: Kerberos Outcome
