lib/attacks/paging_leak.mli: Kerberos Outcome
