lib/attacks/pcbc_swap.ml: Bytes Client Frames Kerberos List Outcome Services Sim String Testbed
