lib/attacks/cpa_prefix.ml: Bytes Crypto Frames Int64 Kerberos List Outcome Profile Services Sim Testbed Wire
