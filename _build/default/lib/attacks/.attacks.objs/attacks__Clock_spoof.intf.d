lib/attacks/clock_spoof.mli: Kerberos Outcome
