lib/attacks/addr_binding.ml: Apserver Client Frames Kdb Kerberos Outcome Principal Profile Result Services Sim Testbed
