lib/attacks/ticket_harvest.ml: Crypto Int64 Kdb Kdc Kerberos List Messages Option Outcome Password_guess Principal Profile Sim Util Wire Workloads
