lib/attacks/reuse_skey.ml: Bytes Client Frames Kerberos List Messages Option Outcome Profile Services Sim Testbed
