lib/attacks/realm_spoof.ml: Apserver Bytes Client Crypto Int64 Kdb Kdc Kerberos List Messages Option Outcome Principal Profile Result Sim Testbed Util
