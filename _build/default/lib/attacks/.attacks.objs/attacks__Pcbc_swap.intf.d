lib/attacks/pcbc_swap.mli: Kerberos Outcome
