lib/attacks/testbed.mli: Apserver Client Kdb Kdc Kerberos Principal Profile Services Sim Util
