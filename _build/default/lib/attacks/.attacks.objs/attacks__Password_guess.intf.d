lib/attacks/password_guess.mli: Kerberos Outcome
