lib/attacks/testbed.ml: Bytes Client Crypto Int64 Kdb Kdc Kerberos List Principal Printf Profile Services Sim Timesvc Util
