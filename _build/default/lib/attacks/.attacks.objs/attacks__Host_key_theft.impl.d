lib/attacks/host_key_theft.ml: Bytes Client Crypto Hardened Kdb Kerberos List Outcome Principal Services Sim Testbed
