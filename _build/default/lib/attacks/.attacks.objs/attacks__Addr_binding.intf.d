lib/attacks/addr_binding.mli: Kerberos Outcome
