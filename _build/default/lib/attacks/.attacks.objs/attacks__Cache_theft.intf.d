lib/attacks/cache_theft.mli: Kerberos Outcome
