lib/attacks/cross_session.ml: Bytes Client Frames Kerberos List Outcome Services Sim Testbed
