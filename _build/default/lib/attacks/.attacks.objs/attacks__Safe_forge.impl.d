lib/attacks/safe_forge.ml: Astring Bytes Client Crypto Frames Kerberos List Outcome Profile Services Sim Testbed Wire
