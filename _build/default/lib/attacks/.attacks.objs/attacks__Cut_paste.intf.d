lib/attacks/cut_paste.mli: Kerberos Outcome
