lib/attacks/password_guess.ml: Array Client Crypto Int64 Kdb Kdc Kerberos List Messages Option Outcome Principal Profile Sim String Testbed Util Wire Workloads
