lib/attacks/spoofed_client.mli: Kerberos Sim Testbed
