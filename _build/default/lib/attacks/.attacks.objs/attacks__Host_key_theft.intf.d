lib/attacks/host_key_theft.mli: Kerberos Outcome
