lib/attacks/cross_session.mli: Kerberos Outcome
