lib/attacks/ticket_harvest.mli: Kerberos Outcome
