lib/attacks/morris_isn.mli: Kerberos Outcome Sim
