lib/attacks/cpa_prefix.mli: Kerberos Outcome
