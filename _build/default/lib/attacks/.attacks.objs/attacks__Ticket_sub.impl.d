lib/attacks/ticket_sub.ml: Bytes Client Kdc Kerberos Messages Outcome Profile Result Sim Testbed Wire
