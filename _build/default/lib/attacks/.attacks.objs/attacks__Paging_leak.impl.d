lib/attacks/paging_leak.ml: Bytes Client Kerberos List Outcome Principal Profile Result Services Sim Spoofed_client Testbed Wire
