lib/attacks/realm_spoof.mli: Kerberos Outcome
