lib/attacks/spoofed_client.ml: Bytes Client Crypto Frames Kdc Kerberos Krb_priv List Messages Principal Printf Profile Session Sim Testbed Util Wire
