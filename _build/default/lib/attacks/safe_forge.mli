(** E12b — forging KRB_SAFE messages under a weak checksum.

    "Note that encrypting a checksum provides very little protection; if
    the checksum is not collision-proof and the data is public, an
    adversary can compute the value and replace the data with another
    message with the same checksum."

    KRB_SAFE data is public (integrity-only). With CRC-32, the adversary
    swaps the victim's message for its own plus a 4-byte patch that steers
    the CRC register to the original state — the {e encrypted} checksum
    still verifies, untouched. With MD4 no patch exists. *)

type result = {
  victim_sent : string;
  forged_to : string;
  forgery_accepted : bool;
  file_planted : bool;  (** the attacker's .rhosts content stored as the victim *)
}

val run : ?seed:int64 -> profile:Kerberos.Profile.t -> unit -> result
val outcome : result -> Outcome.t
