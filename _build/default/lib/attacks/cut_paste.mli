(** E10 — the appendix's cut-and-paste attack: weak checksums plus
    ENC-TKT-IN-SKEY defeat bidirectional authentication.

    "The enemy intercepts this request and modifies it. First, the
    ENC-TKT-IN-SKEY bit is set ... Second, the attacker's own
    ticket-granting ticket is enclosed. Obviously, the attacker knows its
    session key. Finally, the additional authorization data field is
    filled in with whatever information is needed to make the CRC match
    the original version. ... The client may request bidirectional
    authentication; however, since the attacker has decrypted the ticket,
    the session key for that service request is available. Consequently,
    the bidirectional authentication dialog may be spoofed without
    trouble."

    The forgery is a real CRC-32 preimage computation
    ({!Crypto.Crc32.forge}); with MD4 checksums, or with the
    intended-but-omitted cname check at the KDC, the attack dies. *)

type result = {
  applicable : bool;
  checksum_forged : bool;
  kdc_issued_misencrypted_ticket : bool;
  mutual_auth_spoofed : bool;
  stolen_plaintext : string option;  (** the victim's sealed request, read by the enemy *)
}

val run :
  ?seed:int64 ->
  ?enc_tkt_cname_check:bool ->
  profile:Kerberos.Profile.t ->
  unit ->
  result

val outcome : result -> Outcome.t
