(** Byte-string helpers shared by the crypto and wire layers.

    All functions are pure; [bytes] arguments are never mutated unless the
    function name says so ([xor_into]). *)

val to_hex : bytes -> string
(** [to_hex b] is the lowercase hexadecimal rendering of [b]. *)

val of_hex : string -> bytes
(** [of_hex s] parses a hex string (even length, case-insensitive).
    @raise Invalid_argument on malformed input. *)

val xor : bytes -> bytes -> bytes
(** [xor a b] is the bytewise exclusive-or of two equal-length strings.
    @raise Invalid_argument if lengths differ. *)

val xor_into : src:bytes -> dst:bytes -> unit
(** [xor_into ~src ~dst] xors [src] into [dst] in place (equal lengths). *)

val concat : bytes list -> bytes
(** [concat bs] joins the chunks in order. *)

val sub : bytes -> int -> int -> bytes
(** [sub b pos len] copies a slice. Alias for [Bytes.sub]. *)

val chunks : int -> bytes -> bytes list
(** [chunks n b] splits [b] into [n]-byte chunks; the last chunk may be
    short. [n] must be positive. *)

val equal : bytes -> bytes -> bool
(** Constant-time-shaped equality (always scans the full length). *)

val u32_be : bytes -> int -> int
(** [u32_be b pos] reads a big-endian 32-bit unsigned value. *)

val put_u32_be : bytes -> int -> int -> unit
(** [put_u32_be b pos v] writes the low 32 bits of [v] big-endian. *)

val u64_be : bytes -> int -> int64
(** [u64_be b pos] reads a big-endian 64-bit value. *)

val put_u64_be : bytes -> int -> int64 -> unit
(** [put_u64_be b pos v] writes [v] big-endian. *)

val pp : Format.formatter -> bytes -> unit
(** Prints as hex, for test diagnostics. *)
