let to_hex b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytesutil.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytesutil.of_hex: bad digit"
  in
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let xor a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Bytesutil.xor: length mismatch";
  Bytes.init n (fun i ->
      Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

let xor_into ~src ~dst =
  let n = Bytes.length dst in
  if Bytes.length src <> n then invalid_arg "Bytesutil.xor_into: length mismatch";
  for i = 0 to n - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let concat bs = Bytes.concat Bytes.empty bs

let sub = Bytes.sub

let chunks n b =
  if n <= 0 then invalid_arg "Bytesutil.chunks: non-positive size";
  let len = Bytes.length b in
  let rec loop pos acc =
    if pos >= len then List.rev acc
    else
      let take = min n (len - pos) in
      loop (pos + take) (Bytes.sub b pos take :: acc)
  in
  loop 0 []

let equal a b =
  let na = Bytes.length a and nb = Bytes.length b in
  if na <> nb then false
  else begin
    let diff = ref 0 in
    for i = 0 to na - 1 do
      diff := !diff lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !diff = 0
  end

let u32_be b pos =
  let g i = Char.code (Bytes.get b (pos + i)) in
  (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3

let put_u32_be b pos v =
  Bytes.set b pos (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (pos + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (pos + 3) (Char.chr (v land 0xff))

let u64_be b pos = Bytes.get_int64_be b pos

let put_u64_be b pos v = Bytes.set_int64_be b pos v

let pp ppf b = Format.pp_print_string ppf (to_hex b)
