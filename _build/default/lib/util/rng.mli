(** Deterministic pseudo-random generator (splitmix64).

    Every experiment in this repository is seeded so runs are reproducible;
    nothing uses [Random.self_init]. The generator is {e not}
    cryptographically strong — which is itself one of the paper's themes
    (predictable randomness, e.g. TCP initial sequence numbers). The
    [Strong] submodule hashes the stream through MD4-free mixing for key
    generation in the simulated KDC, which suffices inside the simulation. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val split : t -> t
(** [split t] derives a new independent generator (advances [t]). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
