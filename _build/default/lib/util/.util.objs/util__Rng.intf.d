lib/util/rng.mli:
