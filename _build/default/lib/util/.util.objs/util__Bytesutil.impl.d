lib/util/bytesutil.ml: Buffer Bytes Char Format List Printf String
