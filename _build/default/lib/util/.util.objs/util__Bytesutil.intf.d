lib/util/bytesutil.mli: Format
