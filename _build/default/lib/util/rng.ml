type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* splitmix64 finalizer: shift-xor-multiply avalanche. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Mask to 62 bits so the value fits OCaml's native int without wrapping. *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (next_int64 t) in
    let take = min 8 (n - !i) in
    for j = 0 to take - 1 do
      Bytes.set out (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xffL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + take
  done;
  out

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
