(** A Kerberos-authenticated file server — the "file mounts" workload whose
    tickets the paper's intruder watches for. Line-oriented protocol inside
    KRB_PRIV:

    {v
    READ <path>            -> contents | ERR ...
    WRITE <path> <bytes>   -> OK
    DELETE <path>          -> OK | ERR not found
    LIST                   -> space-separated paths
    v}

    Files are recorded with the principal that wrote them, so experiments
    can check exactly who the server {e believed} it was talking to.

    [trusted_hosts] enables the NFS-era proxy verb
    [SUDO <user> <command>]: a listed host principal may speak on behalf
    of any of its local users — the trust relationship whose key the
    paper's host-key-compromise discussion is about. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  ?trusted_hosts:Kerberos.Principal.t list ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val apserver : t -> Kerberos.Apserver.t
(** The underlying AP server, for session statistics. *)

val write_file : t -> owner:string -> path:string -> bytes -> unit
(** Local (non-network) seeding of content. *)

val read_file : t -> string -> bytes option
val files : t -> (string * string) list
(** (path, owner principal) pairs. *)

val deletions : t -> (string * string) list
(** Reverse-chronological (path, principal the server believed requested the
    deletion). *)

val request_log : t -> (string * string) list
(** Every command the server processed, reverse-chronological, with the
    principal it attributed the command to. *)
