(** A remote-shell service over the connection-oriented transport — the
    stage for the Morris sequence-number attack and for post-authentication
    hijacking.

    The connection is authenticated once, Kerberos-style, at setup: the
    first segment carries an AP_REQ. Subsequent segments are commands in
    the clear (faithful to a 1990 kerberized rlogin, where encryption of
    the session was optional and rarely on). The server therefore trusts
    {e the connection} after one authentication — which is exactly the
    property the paper says an attacker can wait out and take over. *)

type t

val install :
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  ?isn:Sim.Tcpish.isn_mode ->
  ?config:Kerberos.Apserver.config ->
  unit ->
  t

val executed : t -> (string * string) list
(** Reverse-chronological (command, principal the server believed). *)

val run_command :
  Kerberos.Client.t ->
  Kerberos.Client.credentials ->
  dst:Sim.Addr.t ->
  dport:int ->
  cmd:string ->
  k:((string, string) result -> unit) ->
  unit
(** Honest client: connect, authenticate, run one command. *)
