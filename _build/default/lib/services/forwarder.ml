open Kerberos

type t = { host : Sim.Host.t; mutable received : int }

let handle t _session ~client data =
  let s = Bytes.to_string data in
  if String.length s > 8 && String.sub s 0 8 = "INSTALL " then begin
    let blob = Bytes.sub data 8 (Bytes.length data - 8) in
    (* Validate the serialization before caching. *)
    match Client.creds_of_bytes blob with
    | _creds ->
        Sim.Host.cache_put t.host ("fwd:" ^ Principal.to_string client) blob;
        t.host.Sim.Host.logged_in <- true;
        t.received <- t.received + 1;
        Some (Bytes.of_string "OK")
    | exception Wire.Codec.Decode_error e -> Some (Bytes.of_string ("ERR " ^ e))
  end
  else Some (Bytes.of_string "ERR bad command")

let install ?config net host ~profile ~principal ~key ~port =
  let t = { host; received = 0 } in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(handle t) ()
  in
  t

let received_count t = t.received

let forward_credentials client chan creds ~k =
  let msg = Bytes.cat (Bytes.of_string "INSTALL ") (Client.creds_to_bytes creds) in
  Client.call_priv client chan msg ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.to_string data = "OK" then k (Ok ())
          else k (Error (Bytes.to_string data)))

let pick_up host ~principal =
  match Sim.Host.cache_get host ("fwd:" ^ Principal.to_string principal) with
  | None -> None
  | Some blob -> (
      match Client.creds_of_bytes blob with
      | creds -> Some creds
      | exception Wire.Codec.Decode_error _ -> None)
