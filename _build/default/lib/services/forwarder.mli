(** The credential forwarder — the paper's argument made executable.

    Version 4 needed "a special-purpose ticket-forwarder ... the
    implementation was of necessity awkward, and required participating
    hosts to run an additional server". And for Version 5: "If the address
    is omitted ... a ticket may be used from any host, without any further
    modifications to the protocol. All that is necessary to employ such a
    ticket is a secure mechanism for copying the multi-session key to the
    new host. But that can be accomplished by an encrypted file transfer
    mechanism layered on top of existing facilities; it does not require
    flag bits in the Kerberos header."

    This daemon is that mechanism: an ordinary Kerberos service that
    receives serialized credentials over KRB_PRIV and drops them into the
    destination host's credential cache. With address-free tickets the
    forwarded credentials simply work; with V4's address-bound tickets
    they are dead on arrival at the next TGS — no flag bits involved
    either way. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val received_count : t -> int

val forward_credentials :
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  Kerberos.Client.credentials ->
  k:((unit, string) result -> unit) ->
  unit
(** Ship [credentials] over an authenticated channel to the forwarder at
    the other end; it installs them in its host's cache under
    ["fwd:<principal>"]. *)

val pick_up :
  Sim.Host.t -> principal:Kerberos.Principal.t -> Kerberos.Client.credentials option
(** What a process on the destination host does: read the forwarded
    credentials out of the local cache. *)
