open Kerberos

type t = { net : Sim.Net.t; host : Sim.Host.t; mutable served : int }

let handle t _session ~client:_ data =
  if Bytes.to_string data = "TIME?" then begin
    t.served <- t.served + 1;
    let reading = Sim.Net.local_time t.net t.host in
    let out = Bytes.create 8 in
    Bytes.set_int64_be out 0 (Int64.bits_of_float reading);
    Some out
  end
  else Some (Bytes.of_string "ERR")

let install ?config net host ~profile ~principal ~key ~port =
  let t = { net; host; served = 0 } in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(handle t) ()
  in
  t

let queries_served t = t.served

let sync client chan ~k =
  Client.call_priv client chan (Bytes.of_string "TIME?") ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.length data <> 8 then k (Error "malformed time reply")
          else begin
            let reading = Int64.float_of_bits (Bytes.get_int64_be data 0) in
            let host = Client.host client in
            Sim.Host.set_clock host ~real:(Sim.Net.now (Client.net client)) ~reading;
            k (Ok reading)
          end)
