(** Password changing, kpasswd-style.

    The paper's password-guessing sections end in administration:
    "passwords must be chosen and administered with password-guessing
    attacks in mind". This service lets a user change their key over an
    authenticated, sealed channel — and can enforce a quality policy
    (refusing dictionary words), the "unless forced to" of "users do not
    pick good passwords unless forced to".

    Protocol inside KRB_PRIV: [CHANGE <newpassword>]. The principal is
    taken from the authenticated session, never from the message. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  ?enforce_quality:bool ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  db:Kerberos.Kdb.t ->
  t

val changes_applied : t -> int
(** Successful key changes. *)

val changes_refused : t -> int
(** Changes the quality policy refused. *)

val change_password :
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  new_password:string ->
  k:((unit, string) result -> unit) ->
  unit
