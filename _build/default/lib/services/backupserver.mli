(** The backup/archive server of the paper's REUSE-SKEY example: "if, say, a
    file server and a backup server were invoked this way, an attacker might
    redirect some requests to destroy archival copies of files being
    edited."

    It deliberately speaks the same command verbs as {!Fileserver}
    ([DELETE <path>] destroys the archival copy) so a file-server request
    redirected here parses and does damage. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val apserver : t -> Kerberos.Apserver.t
(** The underlying AP server, for session statistics. *)

val archive : t -> path:string -> bytes -> unit
val archived : t -> string -> bytes option
val destroyed : t -> (string * string) list
(** Archival copies destroyed, with the principal the server believed asked. *)
