(** A Kerberos-authenticated time service: replies travel inside an
    authenticated session, so they cannot be spoofed by a wire adversary —
    closing the hole of E2. But it creates the bootstrap problem the paper
    points out ("it may not make sense to build an authentication system
    assuming an already-authenticated underlying system"): reaching this
    service requires Kerberos, and parts of Kerberos require a good clock.

    With timestamp-authenticator profiles a badly skewed host can never
    authenticate to fix its own clock (the TGS refuses its authenticators).
    With the paper's challenge/response option — usable "to authenticate
    the user in the initial ticket-granting ticket exchange and to access
    a time service" — the path is clock-free: AS exchange (nonce-based),
    direct service ticket, challenge/response AP, sealed time reply. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val queries_served : t -> int
(** How many time queries this service answered. *)

val sync :
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  k:((float, string) result -> unit) ->
  unit
(** Ask for the time over the authenticated channel and slam the client
    host's clock to the answer. Returns the reading. *)
