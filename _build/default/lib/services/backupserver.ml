type t = {
  archives : (string, bytes) Hashtbl.t;
  mutable destroyed : (string * string) list;
  mutable ap : Kerberos.Apserver.t option;
}

let apserver t = match t.ap with Some a -> a | None -> assert false
let archive t ~path data = Hashtbl.replace t.archives path data
let archived t path = Hashtbl.find_opt t.archives path
let destroyed t = t.destroyed

let split_cmd s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let handle t _session ~client data =
  let who = Kerberos.Principal.to_string client in
  let cmd, rest = split_cmd (Bytes.to_string data) in
  let reply s = Some (Bytes.of_string s) in
  match cmd with
  | "ARCHIVE" ->
      let path, contents = split_cmd rest in
      archive t ~path (Bytes.of_string contents);
      reply "OK"
  | "RESTORE" -> (
      match archived t rest with
      | Some data -> Some data
      | None -> reply "ERR no archive")
  | "DELETE" ->
      (* Same verb as the file server: the redirect attack's target. *)
      if Hashtbl.mem t.archives rest then begin
        Hashtbl.remove t.archives rest;
        t.destroyed <- (rest, who) :: t.destroyed;
        reply "OK"
      end
      else reply "ERR no archive"
  | _ -> reply "ERR bad command"

let install ?config net host ~profile ~principal ~key ~port =
  let t = { archives = Hashtbl.create 16; destroyed = []; ap = None } in
  let ap =
    Kerberos.Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(handle t) ()
  in
  t.ap <- Some ap;
  t
