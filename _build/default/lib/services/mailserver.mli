(** A mail server: the paper's two uses of mail —

    - brief "mail-check" login sessions that expose valuable tickets to a
      watching intruder (E1's workload), and
    - a server that will store attacker-chosen bytes and later {e encrypt
      them under the victim's session key} when the victim retrieves mail:
      the encryption oracle of the inter-session chosen-plaintext attack
      (E6).

    Protocol inside KRB_PRIV: [SEND <user> <bytes>], [COUNT], [RETR <n>]
    (returns the raw stored bytes, nothing prepended — faithful to a
    delivery agent), [DELE <n>]. *)

type t

val install :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  t

val apserver : t -> Kerberos.Apserver.t
(** The underlying AP server, for session statistics. *)

val deliver : t -> user:string -> bytes -> unit
(** Out-of-band delivery (e.g. from an unauthenticated SMTP-world sender —
    exactly how the attacker plants chosen plaintext). *)

val mailbox_count : t -> user:string -> int
val deleted_count : t -> user:string -> int
