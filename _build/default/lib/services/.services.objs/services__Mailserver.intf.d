lib/services/mailserver.mli: Kerberos Sim
