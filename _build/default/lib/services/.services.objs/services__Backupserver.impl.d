lib/services/backupserver.ml: Bytes Hashtbl Kerberos String
