lib/services/mailserver.ml: Bytes Hashtbl Kerberos List Option String
