lib/services/rsh.ml: Ap_check Apserver Bytes Client Frames Int64 Kerberos Messages Principal Profile Sim Util Wire
