lib/services/kpasswd.ml: Apserver Array Bytes Client Kdb Kerberos String Workloads
