lib/services/forwarder.mli: Kerberos Sim
