lib/services/kpasswd.mli: Kerberos Sim
