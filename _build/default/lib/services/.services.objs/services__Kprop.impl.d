lib/services/kprop.ml: Apserver Bytes Client Kdb Kerberos Principal Wire
