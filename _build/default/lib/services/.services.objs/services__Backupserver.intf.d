lib/services/backupserver.mli: Kerberos Sim
