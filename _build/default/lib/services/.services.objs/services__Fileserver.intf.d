lib/services/fileserver.mli: Kerberos Sim
