lib/services/rsh.mli: Kerberos Sim
