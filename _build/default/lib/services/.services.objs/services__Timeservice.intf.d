lib/services/timeservice.mli: Kerberos Sim
