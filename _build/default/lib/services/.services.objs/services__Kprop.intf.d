lib/services/kprop.mli: Kerberos Sim
