lib/services/fileserver.ml: Bytes Hashtbl Kerberos List Option String
