lib/services/timeservice.ml: Apserver Bytes Client Int64 Kerberos Sim
