lib/services/forwarder.ml: Apserver Bytes Client Kerberos Principal Sim String Wire
