(* The experiment framework's own guarantees: the matrix matches the
   paper's expected shape, the sweeps have the shapes the paper argues,
   and the table renderer behaves. *)

let matrix_matches_paper () =
  let rows = Expframework.Matrix.run_all () in
  List.iter
    (fun (id, shape) ->
      match Expframework.Matrix.run_row id rows with
      | None -> Alcotest.failf "%s missing from the matrix" id
      | Some r ->
          List.iter2
            (fun (pname, o) expected ->
              Alcotest.(check bool)
                (Printf.sprintf "%s vs %s (%s)" id pname (Attacks.Outcome.detail o))
                expected
                (Attacks.Outcome.is_broken o))
            r.Expframework.Matrix.outcomes shape)
    Expframework.Matrix.expected_shape;
  (* Every row present in the expected shape and vice versa. *)
  Alcotest.(check int) "row count"
    (List.length Expframework.Matrix.expected_shape)
    (List.length rows)

let replay_sweep_shape () =
  List.iter
    (fun (skew, delay, accepted) ->
      Alcotest.(check bool)
        (Printf.sprintf "window %.0f delay %.0f" skew delay)
        (delay < skew) accepted)
    (Expframework.Sweeps.replay_window_sweep ())

let crack_sweep_shape () =
  List.iter
    (fun (profile, _n, weak, recorded, cracked) ->
      if profile = "v4" then begin
        Alcotest.(check int) "v4 cracks exactly the weak users" weak cracked;
        Alcotest.(check bool) "recorded everyone" true (recorded > 0)
      end
      else Alcotest.(check int) "dh cracks nobody" 0 cracked)
    (Expframework.Sweeps.crack_sweep ())

let dlog_sweep_shape () =
  let rows = Expframework.Sweeps.dlog_sweep ~bits:[ 16; 20; 24 ] () in
  List.iter
    (fun (bits, alg, _t, recovered) ->
      Alcotest.(check bool) (Printf.sprintf "%s at %d bits" alg bits) true recovered)
    rows;
  (* BSGS cost grows with the modulus. *)
  let bsgs = List.filter (fun (_, a, _, _) -> a = "baby-step/giant-step") rows in
  let times = List.map (fun (_, _, t, _) -> t) bsgs in
  Alcotest.(check bool) "bsgs cost grows" true
    (match times with [ a; _b; c ] -> c >= a | _ -> false)

let overhead_shape () =
  let rows = Expframework.Sweeps.overhead () in
  let find name =
    match List.find_opt (fun (n, _, _, _, _) -> n = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "%s missing" name
  in
  let _, _, ap_v4, cache_v4, dg_v4 = find "v4" in
  let _, _, ap_h, cache_h, dg_h = find "hardened" in
  let _, _, _, cache_c, _ = find "v4+cache" in
  Alcotest.(check int) "challenge/response adds one message pair" (ap_v4 + 2) ap_h;
  Alcotest.(check bool) "v4 supports authenticated datagrams" true dg_v4;
  Alcotest.(check bool) "challenge/response rules them out" false dg_h;
  Alcotest.(check int) "no cache state on stock v4" 0 cache_v4;
  Alcotest.(check int) "cache holds one entry per live authenticator" 25 cache_c;
  Alcotest.(check int) "challenge/response needs no authenticator cache" 0 cache_h

let hardware_all_hold () =
  List.iter
    (fun (c, ok) -> Alcotest.(check bool) c true ok)
    (Expframework.Hardware_check.run ())

let confusion_matrices () =
  let v4 = Expframework.Confusion_check.run Wire.Encoding.V4_adhoc in
  let der = Expframework.Confusion_check.run Wire.Encoding.Der_typed in
  Alcotest.(check (list (pair string string))) "typed encoding: no confusion" []
    der.Expframework.Confusion_check.confusable;
  Alcotest.(check bool) "v4 has confusable pairs" true
    (List.length v4.Expframework.Confusion_check.confusable > 0);
  (* The specific hazard class: the AP reply, the challenge, and the
     challenge response all share a shape under V4. *)
  Alcotest.(check bool) "challenge/challenge_resp confusable under v4" true
    (List.mem ("challenge", "challenge_resp") v4.Expframework.Confusion_check.confusable)

let table_renders () =
  let s =
    Expframework.Table.render ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.contains s '-');
  Alcotest.(check bool) "pads columns" true
    (Astring.String.is_infix ~affix:"333  4" s)

let () =
  Alcotest.run "expframework"
    [ ( "matrix",
        [ Alcotest.test_case "matches the paper's shape" `Slow matrix_matches_paper ] );
      ( "sweeps",
        [ Alcotest.test_case "replay window" `Slow replay_sweep_shape;
          Alcotest.test_case "crack yield" `Slow crack_sweep_shape;
          Alcotest.test_case "dlog growth" `Slow dlog_sweep_shape;
          Alcotest.test_case "overheads" `Slow overhead_shape ] );
      ("hardware", [ Alcotest.test_case "E15 invariants" `Quick hardware_all_hold ]);
      ("validation", [ Alcotest.test_case "confusion matrices" `Quick confusion_matrices ]);
      ("table", [ Alcotest.test_case "renderer" `Quick table_renders ]) ]
