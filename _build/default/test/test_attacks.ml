(* The heart of the reproduction: every attack from the paper, run against
   the profile it targets (expected to succeed) and against the profiles
   carrying the paper's fixes (expected to fail). *)

open Kerberos
open Attacks

let v4 = Profile.v4
let v5 = Profile.v5_draft3
let hardened = Profile.hardened

let check_broken name o = Alcotest.(check bool) (name ^ ": " ^ Outcome.detail o) true (Outcome.is_broken o)
let check_defended name o =
  Alcotest.(check bool) (name ^ ": " ^ Outcome.detail o) false (Outcome.is_broken o)

(* E1: authenticator replay *)

let e1 () =
  check_broken "v4 replay inside window" (Replay_auth.outcome (Replay_auth.run ~profile:v4 ()));
  check_broken "v5 replay inside window" (Replay_auth.outcome (Replay_auth.run ~profile:v5 ()));
  let v4_cache =
    { v4 with Profile.name = "v4+cache";
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  check_defended "v4+cache" (Replay_auth.outcome (Replay_auth.run ~profile:v4_cache ()));
  check_defended "hardened (challenge/response)"
    (Replay_auth.outcome (Replay_auth.run ~profile:hardened ()));
  (* Outside the window the replay dies even on stock V4. *)
  check_defended "v4 replay after window"
    (Replay_auth.outcome (Replay_auth.run ~delay:400.0 ~profile:v4 ()))

(* E2: time-service spoofing *)

let e2 () =
  check_broken "v4, unauthenticated time"
    (Clock_spoof.outcome (Clock_spoof.run ~profile:v4 ()));
  check_defended "v4, MAC-authenticated time"
    (Clock_spoof.outcome (Clock_spoof.run ~authenticated_time:true ~profile:v4 ()));
  check_defended "hardened (challenge/response, no clock dependence)"
    (Clock_spoof.outcome (Clock_spoof.run ~profile:hardened ()))

(* E3: passive password guessing *)

let e3 () =
  let r4 = Password_guess.run ~n_users:10 ~dictionary_head:250 ~profile:v4 () in
  check_broken "v4 eavesdrop" (Password_guess.outcome r4);
  Alcotest.(check bool) "only weak users crackable" true
    (List.length r4.cracked <= r4.weak_users);
  let r5 = Password_guess.run ~n_users:10 ~dictionary_head:250 ~profile:v5 () in
  check_broken "v5 eavesdrop (preauth does not help here)" (Password_guess.outcome r5);
  let rh = Password_guess.run ~n_users:6 ~dictionary_head:60 ~profile:hardened () in
  check_defended "hardened (DH layer)" (Password_guess.outcome rh);
  Alcotest.(check int) "zero cracked" 0 (List.length rh.cracked);
  Alcotest.(check bool) "recordings existed" true (rh.replies_recorded > 0)

(* E4: active harvesting *)

let e4 () =
  let r4 = Ticket_harvest.run ~n_users:10 ~dictionary_head:250 ~profile:v4 () in
  check_broken "v4 harvest" (Ticket_harvest.outcome r4);
  Alcotest.(check int) "all replies handed out" 10 r4.replies_obtained;
  (* DH alone does NOT stop an active harvester. *)
  let dh_only =
    { v4 with Profile.name = "v4+dh"; login = Profile.Dh_protected; dh_group_bits = 61 }
  in
  let rdh = Ticket_harvest.run ~n_users:8 ~dictionary_head:250 ~profile:dh_only () in
  check_broken "dh without preauth still harvestable" (Ticket_harvest.outcome rdh);
  let rh = Ticket_harvest.run ~n_users:12 ~dictionary_head:40 ~profile:hardened () in
  check_defended "hardened (preauth)" (Ticket_harvest.outcome rh);
  Alcotest.(check int) "no replies" 0 rh.replies_obtained

(* E5: login trojan *)

let e5 () =
  check_broken "v4 trojan records password"
    (Login_trojan.outcome (Login_trojan.run ~profile:v4 ()));
  check_defended "hardened (handheld): loot useless"
    (Login_trojan.outcome (Login_trojan.run ~profile:hardened ()));
  let handheld_only =
    { v4 with Profile.name = "v4+handheld"; login = Profile.Handheld_challenge }
  in
  check_defended "v4+handheld: loot useless"
    (Login_trojan.outcome (Login_trojan.run ~profile:handheld_only ()))

(* E6: chosen-plaintext prefix *)

let e6 () =
  let r5 = Cpa_prefix.run ~profile:v5 () in
  check_broken "v5 CBC prefix" (Cpa_prefix.outcome r5);
  Alcotest.(check bool) "oracle produced ciphertext" true r5.prefix_cut;
  check_defended "v4 length field disrupts it" (Cpa_prefix.outcome (Cpa_prefix.run ~profile:v4 ()));
  check_defended "hardened IV chain resists" (Cpa_prefix.outcome (Cpa_prefix.run ~profile:hardened ()))

(* E6b: PCBC block-swap message-stream modification *)

let e6b () =
  let r = Pcbc_swap.run ~profile:v4 () in
  check_broken "v4 pcbc swap undetected" (Pcbc_swap.outcome r);
  Alcotest.(check bool) "server executed something else" true
    (r.server_saw <> None && r.server_saw <> Some r.sent_command);
  check_defended "v5 inner checksum catches garbling"
    (Pcbc_swap.outcome (Pcbc_swap.run ~profile:v5 ()));
  check_defended "hardened md4+iv-chain catches garbling"
    (Pcbc_swap.outcome (Pcbc_swap.run ~profile:hardened ()))

(* E12b: KRB_SAFE substitution under a weak checksum *)

let e12b () =
  let r = Safe_forge.run ~profile:v4 () in
  check_broken "v4 crc32 KRB_SAFE forgery" (Safe_forge.outcome r);
  Alcotest.(check bool) ".rhosts planted" true r.file_planted;
  check_broken "v5 crc32 KRB_SAFE forgery" (Safe_forge.outcome (Safe_forge.run ~profile:v5 ()));
  check_defended "hardened md4" (Safe_forge.outcome (Safe_forge.run ~profile:hardened ()))

(* E7: cross-session replay *)

let e7 () =
  let r4 = Cross_session.run ~profile:v4 () in
  check_broken "v4 multi-session key" (Cross_session.outcome r4);
  Alcotest.(check int) "executed twice" 2 r4.executions;
  check_broken "v5 multi-session key" (Cross_session.outcome (Cross_session.run ~profile:v5 ()));
  let rh = Cross_session.run ~profile:hardened () in
  check_defended "hardened negotiated keys" (Cross_session.outcome rh);
  Alcotest.(check int) "executed once" 1 rh.executions

(* E8: hijack and Morris *)

let e8 () =
  check_broken "hijack after auth (v4)" (Hijack.outcome (Hijack.run ~profile:v4 ()));
  check_broken "hijack after auth (hardened AP, cleartext session)"
    (Hijack.outcome (Hijack.run ~profile:hardened ()));
  check_broken "morris predictable isn + stolen authenticator (v4)"
    (Morris_isn.outcome (Morris_isn.run ~isn:Sim.Tcpish.Predictable ~profile:v4 ()));
  check_defended "random isn stops the blind handshake"
    (Morris_isn.outcome (Morris_isn.run ~isn:Sim.Tcpish.Random_isn ~profile:v4 ()));
  check_defended "challenge/response stops it even with predictable isn"
    (Morris_isn.outcome (Morris_isn.run ~isn:Sim.Tcpish.Predictable ~profile:hardened ()))

(* E9: realms *)

let e9 () =
  let r = Realm_spoof.run ~profile:v5 () in
  check_broken "v5 transit forgery" (Realm_spoof.outcome r);
  Alcotest.(check (option bool)) "forwarded tickets indistinguishable" (Some true)
    r.forwarded_indistinguishable;
  Alcotest.(check bool) "key-based verification stops the forgery" false
    r.transit_forgery_with_verification

(* E10: cut and paste *)

let e10 () =
  let r = Cut_paste.run ~profile:v5 () in
  check_broken "v5-draft3 crc32 + enc-tkt-in-skey" (Cut_paste.outcome r);
  Alcotest.(check bool) "crc forged" true r.checksum_forged;
  Alcotest.(check bool) "mutual auth spoofed" true r.mutual_auth_spoofed;
  Alcotest.(check bool) "victim's secret read" true (r.stolen_plaintext <> None);
  let v5_md4 = { v5 with Profile.name = "v5+md4"; checksum = Crypto.Checksum.Md4 } in
  check_defended "md4 checksum" (Cut_paste.outcome (Cut_paste.run ~profile:v5_md4 ()));
  check_defended "cname check"
    (Cut_paste.outcome (Cut_paste.run ~enc_tkt_cname_check:true ~profile:v5 ()));
  (match Cut_paste.run ~profile:v4 () with
  | { applicable = false; _ } -> ()
  | _ -> Alcotest.fail "v4 should not expose the option")

(* E10b: ticket substitution in KDC replies *)

let e10b () =
  let r4 = Ticket_sub.run ~profile:v4 () in
  check_broken "v4 substitution undetected until use" (Ticket_sub.outcome r4);
  Alcotest.(check string) "failure surfaced late" "service use" r4.failure_surfaced_at;
  check_broken "v5 same" (Ticket_sub.outcome (Ticket_sub.run ~profile:v5 ()));
  let rh = Ticket_sub.run ~profile:hardened () in
  check_defended "hardened: nothing to substitute" (Ticket_sub.outcome rh);
  Alcotest.(check bool) "no cleartext ticket existed" false rh.substitution_possible

(* E11: reuse-skey redirect *)

let e11 () =
  let r = Reuse_skey.run ~profile:v5 () in
  check_broken "v5-draft3 redirect" (Reuse_skey.outcome r);
  Alcotest.(check (option string)) "server believed the victim asked"
    (Some "pat@ATHENA") r.believed_principal;
  (* Negotiated true session keys break the redirect even with REUSE-SKEY on. *)
  let v5_neg =
    { v5 with Profile.name = "v5+negotiated"; negotiate_session_key = true }
  in
  check_defended "negotiated session keys" (Reuse_skey.outcome (Reuse_skey.run ~profile:v5_neg ()));
  (* "Servers that obey this restriction are not vulnerable": the backup
     server refuses DUPLICATE-SKEY tickets outright. *)
  check_defended "server obeys the DUPLICATE-SKEY warning"
    (Reuse_skey.outcome
       (Reuse_skey.run
          ~server_config:{ Apserver.default_config with refuse_dup_skey = true }
          ~profile:v5 ()));
  (match Reuse_skey.run ~profile:hardened () with
  | { applicable = false; _ } -> ()
  | _ -> Alcotest.fail "hardened should not expose the option")

(* E16: cache theft *)

let e16 () =
  let rm = Cache_theft.run ~multi_user:true ~profile:v4 () in
  check_broken "multi-user host" (Cache_theft.outcome rm);
  Alcotest.(check bool) "thesis read" true
    (List.mem "draft chapter 3" rm.files_read);
  check_defended "workstation"
    (Cache_theft.outcome (Cache_theft.run ~multi_user:false ~profile:v4 ()));
  (* The theft works against the hardened profile too: this is an
     environment problem, not a protocol one — the paper's point. *)
  check_broken "multi-user host, hardened profile"
    (Cache_theft.outcome (Cache_theft.run ~multi_user:true ~profile:hardened ()))

(* E17: host key theft *)

let e17 () =
  let r = Host_key_theft.run ~profile:v4 () in
  check_broken "srvtab on disk" (Host_key_theft.outcome r);
  Alcotest.(check bool) "grades read via forged mount" true
    (List.mem "all the grades" r.victims_files_read);
  let rb = Host_key_theft.run ~use_encbox:true ~profile:v4 () in
  check_defended "encbox keeps the key off disk" (Host_key_theft.outcome rb);
  Alcotest.(check bool) "nothing stolen" false rb.key_stolen

(* E18: paging leak *)

let e18 () =
  let r4 = Paging_leak.run ~profile:v4 () in
  check_broken "v4: paged TGT cashed via spoofed source" (Paging_leak.outcome r4);
  Alcotest.(check bool) "pages captured" true (r4.pages_captured > 0);
  check_broken "v5: paged TGT used directly (no address binding)"
    (Paging_leak.outcome (Paging_leak.run ~profile:v5 ()));
  let rp = Paging_leak.run ~pinned_memory:true ~profile:v4 () in
  check_defended "pinned memory pages nothing" (Paging_leak.outcome rp);
  Alcotest.(check int) "zero pages" 0 rp.pages_captured

(* Address binding probe *)

let e_addr () =
  let r4 = Addr_binding.run ~profile:v4 () in
  Alcotest.(check bool) "v4 breaks multi-homed hosts" false r4.legit_multihomed_works;
  Alcotest.(check bool) "v4 spoofed source accepted anyway" true r4.spoofed_source_accepted;
  let r5 = Addr_binding.run ~profile:v5 () in
  Alcotest.(check bool) "v5 multi-homed works" true r5.legit_multihomed_works;
  let rh = Addr_binding.run ~profile:hardened () in
  Alcotest.(check bool) "hardened multi-homed works" true rh.legit_multihomed_works;
  Alcotest.(check bool) "hardened replay dies at the challenge" false
    rh.spoofed_source_accepted

let () =
  Alcotest.run "attacks"
    [ ("e1-replay", [ Alcotest.test_case "replay matrix" `Slow e1 ]);
      ("e2-clock", [ Alcotest.test_case "clock spoof" `Quick e2 ]);
      ("e3-guess", [ Alcotest.test_case "eavesdrop guessing" `Slow e3 ]);
      ("e4-harvest", [ Alcotest.test_case "active harvesting" `Slow e4 ]);
      ("e5-trojan", [ Alcotest.test_case "login trojan" `Quick e5 ]);
      ("e6-cpa", [ Alcotest.test_case "cbc prefix" `Quick e6 ]);
      ("e6b-pcbc-swap", [ Alcotest.test_case "block swap" `Quick e6b ]);
      ("e12b-safe-forge", [ Alcotest.test_case "KRB_SAFE substitution" `Quick e12b ]);
      ("e7-cross-session", [ Alcotest.test_case "cross-session replay" `Quick e7 ]);
      ("e8-hijack-morris", [ Alcotest.test_case "hijack and morris" `Quick e8 ]);
      ("e9-realms", [ Alcotest.test_case "transit forgery" `Quick e9 ]);
      ("e10-cut-paste", [ Alcotest.test_case "crc32 cut and paste" `Quick e10 ]);
      ("e10b-ticket-sub", [ Alcotest.test_case "reply substitution" `Quick e10b ]);
      ("e11-reuse-skey", [ Alcotest.test_case "redirect" `Quick e11 ]);
      ("e16-cache-theft", [ Alcotest.test_case "cache theft" `Quick e16 ]);
      ("e17-host-key", [ Alcotest.test_case "srvtab theft" `Quick e17 ]);
      ("e18-paging", [ Alcotest.test_case "paging leak" `Quick e18 ]);
      ("addr-binding", [ Alcotest.test_case "address binding probe" `Quick e_addr ]) ]
