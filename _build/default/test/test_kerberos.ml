(* End-to-end tests of the Kerberos core: AS, TGS, AP, KRB_PRIV/SAFE under
   each profile; replay caches; cross-realm paths. *)

open Kerberos

let realm = "ATHENA"

type bed = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  ws : Sim.Host.t;  (* user workstation *)
  server_host : Sim.Host.t;
  file_port : int;
  file_principal : Principal.t;
  file_key : bytes;
  apserver : Apserver.t;
  client : Client.t;
}

let echo_handler _session ~client:_ data = Some (Bytes.cat (Bytes.of_string "echo:") data)

let make_bed ?(profile = Profile.v4) ?(handler = echo_handler) ?config () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws1" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let server_host =
    Sim.Host.create ~name:"fileserver" ~ips:[ Sim.Addr.of_quad 10 0 0 20 ] ()
  in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; server_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 99L in
  let tgs_key = Crypto.Des.random_key rng in
  Kdb.add_service db (Principal.tgs ~realm) ~key:tgs_key;
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"correct.horse";
  Kdb.add_user db (Principal.user ~realm "robin") ~password:"tr0ub4dor";
  let file_principal = Principal.service ~realm "fileserv" ~host:"fileserver" in
  let file_key = Crypto.Des.random_key rng in
  Kdb.add_service db file_principal ~key:file_key;
  let kdc = Kdc.create ~realm ~profile ~lifetime:(8.0 *. 3600.0) db in
  Kdc.install net kdc_host kdc ();
  let file_port = 600 in
  let apserver =
    Apserver.install ?config net server_host ~profile ~principal:file_principal
      ~key:file_key ~port:file_port ~handler ()
  in
  let client =
    Client.create net ws ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  { eng; net; kdc; kdc_host; ws; server_host; file_port; file_principal; file_key;
    apserver; client }

let run bed = Sim.Engine.run bed.eng

let expect_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* Full happy path: login, service ticket, AP exchange, priv roundtrip. *)
let happy_path profile () =
  let bed = make_bed ~profile () in
  let result = ref None in
  Client.login bed.client ~password:"correct.horse" (fun r ->
      let _creds = expect_ok "login" r in
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          let creds = expect_ok "get_ticket" r in
          Client.ap_exchange bed.client creds ~dst:(Sim.Host.primary_ip bed.server_host)
            ~dport:bed.file_port (fun r ->
              let chan = expect_ok "ap_exchange" r in
              Client.call_priv bed.client chan (Bytes.of_string "read /etc/motd")
                ~k:(fun r -> result := Some r))));
  run bed;
  match !result with
  | Some (Ok data) ->
      Alcotest.(check string) "priv echo" "echo:read /etc/motd" (Bytes.to_string data)
  | Some (Error e) -> Alcotest.failf "priv failed: %s" e
  | None -> Alcotest.fail "no result (simulation stalled)"

let wrong_password profile () =
  let bed = make_bed ~profile () in
  let result = ref None in
  Client.login bed.client ~password:"wrong" (fun r -> result := Some r);
  run bed;
  match !result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "login with wrong password succeeded"
  | None -> Alcotest.fail "no result"

let multiple_priv_messages profile () =
  let bed = make_bed ~profile () in
  let replies = ref [] in
  Client.login bed.client ~password:"correct.horse" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          let creds = expect_ok "get_ticket" r in
          Client.ap_exchange bed.client creds ~dst:(Sim.Host.primary_ip bed.server_host)
            ~dport:bed.file_port (fun r ->
              let chan = expect_ok "ap" r in
              let rec go i =
                if i <= 3 then
                  Client.call_priv bed.client chan
                    (Bytes.of_string (Printf.sprintf "req%d" i)) ~k:(fun r ->
                      replies := Bytes.to_string (expect_ok "priv" r) :: !replies;
                      go (i + 1))
              in
              go 1)));
  run bed;
  Alcotest.(check (list string)) "all replies"
    [ "echo:req1"; "echo:req2"; "echo:req3" ]
    (List.rev !replies)

let expired_ticket profile () =
  let bed = make_bed ~profile () in
  let outcome = ref None in
  Client.login bed.client ~password:"correct.horse" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          let creds = expect_ok "get_ticket" r in
          (* Sit on the ticket for 9 hours, then try to use it. *)
          Sim.Engine.schedule_after bed.eng (9.0 *. 3600.0) (fun () ->
              Client.ap_exchange bed.client creds
                ~dst:(Sim.Host.primary_ip bed.server_host) ~dport:bed.file_port
                (fun r -> outcome := Some r))));
  run bed;
  match !outcome with
  | Some (Error e) ->
      Alcotest.(check bool) ("mentions expiry: " ^ e) true
        (Astring.String.is_infix ~affix:"expired" e
         || Astring.String.is_infix ~affix:"integrity" e)
  | Some (Ok _) -> Alcotest.fail "expired ticket accepted"
  | None -> Alcotest.fail "no outcome"

let tickets_cached profile () =
  let bed = make_bed ~profile () in
  Client.login bed.client ~password:"correct.horse" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          ignore (expect_ok "get_ticket" r)));
  run bed;
  Alcotest.(check bool) "tgt cached" true (Sim.Host.cache_get bed.ws "tgt" <> None);
  let svc = "svc:" ^ Principal.to_string bed.file_principal in
  Alcotest.(check bool) "service ticket cached" true (Sim.Host.cache_get bed.ws svc <> None);
  Client.logout bed.client;
  Alcotest.(check bool) "wiped at logout" true (Sim.Host.cache_get bed.ws "tgt" = None)

let profile_cases name profile =
  [ Alcotest.test_case (name ^ ": happy path") `Quick (happy_path profile);
    Alcotest.test_case (name ^ ": wrong password") `Quick (wrong_password profile);
    Alcotest.test_case (name ^ ": several priv messages") `Quick
      (multiple_priv_messages profile);
    Alcotest.test_case (name ^ ": expired ticket") `Quick (expired_ticket profile);
    Alcotest.test_case (name ^ ": ticket caching") `Quick (tickets_cached profile) ]

(* ------------------------------------------------------------------ *)
(* Replay cache behaviour at the AP server                             *)
(* ------------------------------------------------------------------ *)

let replayed_ap profile ~expect_accepted () =
  let bed = make_bed ~profile () in
  let adv = Sim.Adversary.attach bed.net in
  Sim.Adversary.start_tap adv;
  Client.login bed.client ~password:"correct.horse" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          let creds = expect_ok "get_ticket" r in
          Client.ap_exchange bed.client creds ~dst:(Sim.Host.primary_ip bed.server_host)
            ~dport:bed.file_port (fun r -> ignore (expect_ok "ap" r))));
  run bed;
  let before = Apserver.sessions_established bed.apserver in
  Alcotest.(check int) "one honest session" 1 before;
  (* Replay the captured AP_REQ verbatim from a different port. *)
  let ap_reqs =
    Sim.Adversary.capture_matching adv (fun p ->
        p.Sim.Packet.dport = bed.file_port
        &&
        match Frames.unwrap p.Sim.Packet.payload with
        | Some (k, _) -> k = Frames.ap_req
        | None -> None <> None)
  in
  (match ap_reqs with
  | pkt :: _ ->
      Sim.Net.inject bed.net { pkt with Sim.Packet.sport = 40999 }
  | [] -> Alcotest.fail "no AP_REQ captured");
  run bed;
  let after = Apserver.sessions_established bed.apserver in
  if expect_accepted then Alcotest.(check int) "replay accepted (v4 behaviour)" 2 after
  else Alcotest.(check int) "replay rejected" 1 after

let v4_with_cache =
  { Profile.v4 with
    Profile.name = "v4+cache";
    ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let suite_replay =
  [ Alcotest.test_case "v4 (no cache): replayed AP_REQ accepted" `Quick
      (replayed_ap Profile.v4 ~expect_accepted:true);
    Alcotest.test_case "v4 + replay cache: replayed AP_REQ rejected" `Quick
      (replayed_ap v4_with_cache ~expect_accepted:false);
    Alcotest.test_case "hardened (challenge/response): replayed AP_REQ useless" `Quick
      (fun () ->
        (* With challenge/response, replaying the AP_REQ gets the attacker a
           fresh challenge it cannot answer; no session is established. *)
        replayed_ap Profile.hardened ~expect_accepted:false ()) ]

(* ------------------------------------------------------------------ *)
(* Cross-realm                                                         *)
(* ------------------------------------------------------------------ *)

let cross_realm_path () =
  (* Two realms, ATHENA and ENG, sharing a cross-realm key. A user of
     ATHENA reaches a service in ENG through both TGSs. *)
  let profile = Profile.v5_draft3 in
  let eng_ = Sim.Engine.create () in
  let net = Sim.Net.create eng_ in
  let kdc_a_host = Sim.Host.create ~name:"kdcA" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let kdc_b_host = Sim.Host.create ~name:"kdcB" ~ips:[ Sim.Addr.of_quad 10 0 1 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let srv = Sim.Host.create ~name:"srvB" ~ips:[ Sim.Addr.of_quad 10 0 1 20 ] () in
  List.iter (Sim.Net.attach net) [ kdc_a_host; kdc_b_host; ws; srv ];
  let rng = Util.Rng.create 7L in
  let db_a = Kdb.create () and db_b = Kdb.create () in
  Kdb.add_service db_a (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  Kdb.add_service db_b (Principal.tgs ~realm:"ENG") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db_a (Principal.user ~realm:"ATHENA" "pat") ~password:"pw";
  (* Shared cross-realm key: ATHENA's TGS signs tickets for ENG's TGS. *)
  let xkey = Crypto.Des.random_key rng in
  Kdb.add_cross_realm db_a (Principal.cross_realm_tgs ~local:"ATHENA" ~remote:"ENG") ~key:xkey;
  Kdb.add_cross_realm db_b (Principal.cross_realm_tgs ~local:"ATHENA" ~remote:"ENG") ~key:xkey;
  let svc = Principal.service ~realm:"ENG" "db" ~host:"srvB" in
  let svc_key = Crypto.Des.random_key rng in
  Kdb.add_service db_b svc ~key:svc_key;
  let kdc_a = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:3600.0 db_a in
  let kdc_b = Kdc.create ~realm:"ENG" ~profile ~lifetime:3600.0 db_b in
  Kdc.add_realm_route kdc_a ~remote:"ENG" ~next_hop:"ENG";
  Kdc.install net kdc_a_host kdc_a ();
  Kdc.install net kdc_b_host kdc_b ();
  let _ap =
    Apserver.install net srv ~profile
      ~config:{ Apserver.default_config with trusted_transit = [ "ATHENA" ] }
      ~principal:svc ~key:svc_key ~port:700 ~handler:echo_handler ()
  in
  let client =
    Client.create net ws ~profile
      ~kdcs:
        [ ("ATHENA", Sim.Host.primary_ip kdc_a_host);
          ("ENG", Sim.Host.primary_ip kdc_b_host) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  let result = ref None in
  Client.login client ~password:"pw" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket client ~service:svc (fun r ->
          let creds = expect_ok "cross-realm ticket" r in
          Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip srv) ~dport:700
            (fun r ->
              let chan = expect_ok "ap" r in
              Client.call_priv client chan (Bytes.of_string "query") ~k:(fun r ->
                  result := Some r))));
  Sim.Engine.run eng_;
  (match !result with
  | Some (Ok data) -> Alcotest.(check string) "reply" "echo:query" (Bytes.to_string data)
  | Some (Error e) -> Alcotest.failf "cross-realm failed: %s" e
  | None -> Alcotest.fail "stalled");
  (* An identical server that does NOT trust ATHENA must refuse. *)
  let srv2 = Sim.Host.create ~name:"srvB2" ~ips:[ Sim.Addr.of_quad 10 0 1 21 ] () in
  Sim.Net.attach net srv2;
  let svc2 = Principal.service ~realm:"ENG" "db2" ~host:"srvB2" in
  let svc2_key = Crypto.Des.random_key rng in
  Kdb.add_service db_b svc2 ~key:svc2_key;
  let ap2 =
    Apserver.install net srv2 ~profile
      ~config:{ Apserver.default_config with trusted_transit = [] }
      ~principal:svc2 ~key:svc2_key ~port:700 ~handler:echo_handler ()
  in
  let refused = ref None in
  Client.get_ticket client ~service:svc2 (fun r ->
      let creds = expect_ok "ticket for svc2" r in
      Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip srv2) ~dport:700
        (fun r -> refused := Some r));
  Sim.Engine.run eng_;
  (match !refused with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "untrusted transit accepted"
  | None -> Alcotest.fail "stalled");
  Alcotest.(check int) "no session on distrusting server" 0
    (Apserver.sessions_established ap2)

let suite_cross_realm = [ Alcotest.test_case "two-realm path and transit policy" `Quick cross_realm_path ]

(* ------------------------------------------------------------------ *)
(* Encoding/seal units                                                 *)
(* ------------------------------------------------------------------ *)

let seal_roundtrip () =
  let rng = Util.Rng.create 3L in
  let key = Crypto.Des.random_key rng in
  List.iter
    (fun scheme ->
      let data = Bytes.of_string "some protocol plaintext" in
      let ct = Seal.seal scheme rng ~key data in
      match Seal.open_ scheme ~key ct with
      | Ok back -> Alcotest.(check string) "roundtrip" "some protocol plaintext" (Bytes.to_string back)
      | Error e -> Alcotest.fail e)
    [ Seal.Pcbc_raw; Seal.Cbc_confounder Crypto.Checksum.Crc32;
      Seal.Cbc_confounder Crypto.Checksum.Md4 ]

let seal_tamper_detected () =
  let rng = Util.Rng.create 4L in
  let key = Crypto.Des.random_key rng in
  let data = Bytes.of_string "tamper with me please!" in
  let ct = Seal.seal (Seal.Cbc_confounder Crypto.Checksum.Md4) rng ~key data in
  Bytes.set ct 9 (Char.chr (Char.code (Bytes.get ct 9) lxor 1));
  (match Seal.open_ (Seal.Cbc_confounder Crypto.Checksum.Md4) ~key ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampering not detected")

let ticket_roundtrip () =
  let t =
    { Messages.server = Principal.service ~realm "rlogin" ~host:"myhost";
      client = Principal.user ~realm "pat"; addr = Some (Sim.Addr.of_quad 10 0 0 10);
      issued_at = 1000.0; lifetime = 3600.0; session_key = Bytes.make 8 'k';
      forwarded = false; dup_skey = false; transited = [ "A"; "B" ] }
  in
  List.iter
    (fun kind ->
      let b = Wire.Encoding.encode kind (Messages.ticket_to_value t) in
      let t' = Messages.ticket_of_value (Wire.Encoding.decode kind b) in
      Alcotest.(check bool) "roundtrip" true (t = t'))
    [ Wire.Encoding.V4_adhoc; Wire.Encoding.Der_typed ]

let suite_units =
  [ Alcotest.test_case "seal roundtrip" `Quick seal_roundtrip;
    Alcotest.test_case "seal tamper detection" `Quick seal_tamper_detected;
    Alcotest.test_case "ticket roundtrip" `Quick ticket_roundtrip ]

(* Ablation profiles: every optional mechanism exercised on the full happy
   path, not just in its targeted experiment. *)
let v5_md4des =
  { Profile.v5_draft3 with Profile.name = "v5+md4des"; checksum = Crypto.Checksum.Md4_des }

let v5_seq =
  { Profile.v5_draft3 with Profile.name = "v5+seq"; priv_replay = Profile.Priv_sequence }

let v4_handheld =
  { Profile.v4 with Profile.name = "v4+handheld"; login = Profile.Handheld_challenge }

let v4_dh61 =
  { Profile.v4 with Profile.name = "v4+dh61"; login = Profile.Dh_protected; dh_group_bits = 61 }

let challenge_state_bounded () =
  (* Half-open challenge flood: an attacker with a valid ticket opens
     challenges it never answers. The server's state stays bounded. *)
  let profile = Profile.hardened in
  let bed =
    make_bed ~profile ~config:{ Apserver.default_config with max_peers = 10 } ()
  in
  let creds = ref None in
  Client.login bed.client ~password:"correct.horse" (fun r ->
      ignore (expect_ok "login" r);
      Client.get_ticket bed.client ~service:bed.file_principal (fun r ->
          creds := Some (expect_ok "ticket" r)));
  run bed;
  let creds = Option.get !creds in
  (* Fire 50 AP_REQs from distinct ports; answer none of the challenges. *)
  let ap_bytes =
    Messages.encode_msg profile ~tag:Messages.tag_ap_req
      (Messages.ap_req_to_value
         { Messages.r_ticket = creds.Client.ticket; r_authenticator = Bytes.empty;
           r_mutual = false })
  in
  for i = 0 to 49 do
    Sim.Net.send bed.net ~sport:(50000 + i) ~dst:(Sim.Host.primary_ip bed.server_host)
      ~dport:bed.file_port bed.ws (Frames.wrap Frames.ap_req ap_bytes)
  done;
  run bed;
  Alcotest.(check bool) "state bounded" true
    (Apserver.peer_state_size bed.apserver <= 10);
  (* And the server still works for an honest client afterwards. *)
  let ok = ref false in
  Client.ap_exchange bed.client creds ~dst:(Sim.Host.primary_ip bed.server_host)
    ~dport:bed.file_port (fun r -> ok := Result.is_ok r);
  run bed;
  Alcotest.(check bool) "honest client still served" true !ok

let kdc_timeout () =
  (* A client with no KDC on the network reports a timeout, not a hang. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  Sim.Net.attach net ws;
  let c =
    Client.create net ws ~profile:Profile.v4
      ~kdcs:[ (realm, Sim.Addr.of_quad 10 0 0 250) ]
      (Principal.user ~realm "pat")
  in
  let r = ref None in
  Client.login c ~password:"pw" (fun x -> r := Some x);
  Sim.Engine.run eng;
  match !r with
  | Some (Error e) -> Alcotest.(check string) "timeout" "KDC timeout" e
  | Some (Ok _) -> Alcotest.fail "login succeeded with no KDC"
  | None -> Alcotest.fail "no answer"

let () =
  Alcotest.run "kerberos"
    [ ("v4", profile_cases "v4" Profile.v4);
      ("v5-draft3", profile_cases "v5" Profile.v5_draft3);
      ("hardened", profile_cases "hardened" Profile.hardened);
      ("v5+md4des", profile_cases "v5+md4des" v5_md4des);
      ("v5+seq", profile_cases "v5+seq" v5_seq);
      ("v4+handheld", profile_cases "v4+handheld" v4_handheld);
      ("v4+dh61", profile_cases "v4+dh61" v4_dh61);
      ("timeout", [ Alcotest.test_case "kdc unreachable" `Quick kdc_timeout ]);
      ( "server-state",
        [ Alcotest.test_case "challenge flood bounded" `Quick challenge_state_bounded ] );
      ("replay", suite_replay);
      ("cross-realm", suite_cross_realm);
      ("units", suite_units) ]
