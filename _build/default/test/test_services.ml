(* Honest-path tests for the application services: file server protocol,
   mail flows, backup archive, the rsh daemon, and server policy knobs
   (forwarded tickets, transit lists). *)

open Kerberos

let realm = "ATHENA"

type world = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  db : Kdb.t;
  kdc_host : Sim.Host.t;
  ws : Sim.Host.t;
  svc_host : Sim.Host.t;
  kdcs : (string * Sim.Addr.t) list;
  rng : Util.Rng.t;
}

let mk_world ?(profile = Profile.v4) () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let svc_host = Sim.Host.create ~name:"svc" ~ips:[ Sim.Addr.of_quad 10 0 0 20 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; svc_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 5150L in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pw";
  let kdc = Kdc.create ~realm ~profile ~lifetime:3600.0 db in
  Kdc.install net kdc_host kdc ();
  { eng; net; db; kdc_host; ws; svc_host; kdcs = [ (realm, Sim.Host.primary_ip kdc_host) ]; rng }

let with_channel w ~profile ~principal ~port k =
  let client = Client.create w.net w.ws ~profile ~kdcs:w.kdcs (Principal.user ~realm "pat") in
  Client.login client ~password:"pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket client ~service:principal (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip w.svc_host)
            ~dport:port (fun r -> k client (Result.get_ok r))));
  Sim.Engine.run w.eng

let fileserver_protocol () =
  let profile = Profile.v4 in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "fileserv" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let fs = Services.Fileserver.install w.net w.svc_host ~profile ~principal:p ~key ~port:600 in
  let results = ref [] in
  with_channel w ~profile ~principal:p ~port:600 (fun client chan ->
      let send cmd k =
        Client.call_priv client chan (Bytes.of_string cmd) ~k:(fun r ->
            results := (cmd, Result.map Bytes.to_string r) :: !results;
            k ())
      in
      send "WRITE /a hello" (fun () ->
          send "WRITE /b world" (fun () ->
              send "READ /a" (fun () ->
                  send "LIST" (fun () ->
                      send "DELETE /a" (fun () ->
                          send "READ /a" (fun () -> send "BOGUS x" (fun () -> ()))))))));
  let expect cmd v =
    match List.assoc_opt cmd (List.rev !results) with
    | Some (Ok got) -> Alcotest.(check string) cmd v got
    | Some (Error e) -> Alcotest.failf "%s: %s" cmd e
    | None -> Alcotest.failf "%s: no result" cmd
  in
  expect "WRITE /a hello" "OK";
  expect "READ /a" "hello";
  expect "LIST" "/a /b";
  expect "DELETE /a" "OK";
  expect "BOGUS x" "ERR bad command";
  (* the second READ /a after deletion *)
  (match List.filter (fun (c, _) -> c = "READ /a") (List.rev !results) with
  | [ _; (_, Ok second) ] -> Alcotest.(check string) "deleted" "ERR not found" second
  | _ -> Alcotest.fail "missing second READ");
  Alcotest.(check (list (pair string string))) "deletion log"
    [ ("/a", "pat@ATHENA") ]
    (Services.Fileserver.deletions fs)

let mailserver_protocol () =
  let profile = Profile.v5_draft3 in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "pop" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let ms = Services.Mailserver.install w.net w.svc_host ~profile ~principal:p ~key ~port:110 in
  Services.Mailserver.deliver ms ~user:"pat" (Bytes.of_string "hi pat");
  let counted = ref "" and retrieved = ref "" and after_delete = ref "" in
  with_channel w ~profile ~principal:p ~port:110 (fun client chan ->
      Client.call_priv client chan (Bytes.of_string "COUNT") ~k:(fun r ->
          counted := Bytes.to_string (Result.get_ok r);
          Client.call_priv client chan (Bytes.of_string "RETR 0") ~k:(fun r ->
              retrieved := Bytes.to_string (Result.get_ok r);
              Client.call_priv client chan (Bytes.of_string "DELE 0") ~k:(fun r ->
                  ignore (Result.get_ok r);
                  Client.call_priv client chan (Bytes.of_string "COUNT") ~k:(fun r ->
                      after_delete := Bytes.to_string (Result.get_ok r))))));
  Alcotest.(check string) "count" "1" !counted;
  Alcotest.(check string) "retr" "hi pat" !retrieved;
  Alcotest.(check string) "after delete" "0" !after_delete;
  Alcotest.(check int) "deletion counted" 1 (Services.Mailserver.deleted_count ms ~user:"pat")

let backup_protocol () =
  let profile = Profile.v4 in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "backup" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let b = Services.Backupserver.install w.net w.svc_host ~profile ~principal:p ~key ~port:601 in
  let restored = ref "" in
  with_channel w ~profile ~principal:p ~port:601 (fun client chan ->
      Client.call_priv client chan (Bytes.of_string "ARCHIVE /th v1") ~k:(fun r ->
          ignore (Result.get_ok r);
          Client.call_priv client chan (Bytes.of_string "RESTORE /th") ~k:(fun r ->
              restored := Bytes.to_string (Result.get_ok r))));
  Alcotest.(check string) "restore" "v1" !restored;
  Alcotest.(check bool) "archived" true (Services.Backupserver.archived b "/th" <> None);
  Alcotest.(check (list (pair string string))) "nothing destroyed" []
    (Services.Backupserver.destroyed b)

let rsh_honest collect_profile () =
  let profile = collect_profile in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "rsh" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let daemon =
    Services.Rsh.install w.net w.svc_host ~profile ~principal:p ~key ~port:514 ()
  in
  let output = ref "" in
  let client = Client.create w.net w.ws ~profile ~kdcs:w.kdcs (Principal.user ~realm "pat") in
  Client.login client ~password:"pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket client ~service:p (fun r ->
          let creds = Result.get_ok r in
          Services.Rsh.run_command client creds ~dst:(Sim.Host.primary_ip w.svc_host)
            ~dport:514 ~cmd:"uname -a"
            ~k:(fun r -> output := Result.get_ok r)));
  Sim.Engine.run w.eng;
  Alcotest.(check string) "output" "ran: uname -a" !output;
  Alcotest.(check (list (pair string string))) "audit"
    [ ("uname -a", "pat@ATHENA") ]
    (Services.Rsh.executed daemon)

let kpasswd_policy () =
  let profile = Profile.v4 in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "kpasswd" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let kpw =
    Services.Kpasswd.install w.net w.svc_host ~profile ~principal:p ~key ~port:464
      ~db:w.db
  in
  let refused = ref None and accepted = ref None in
  with_channel w ~profile ~principal:p ~port:464 (fun client chan ->
      (* A dictionary word with a digit tacked on: the policy sees through
         the decoration. *)
      Services.Kpasswd.change_password client chan ~new_password:"dragon7" ~k:(fun r ->
          refused := Some r;
          Services.Kpasswd.change_password client chan
            ~new_password:"orthogonal.sunrise" ~k:(fun r -> accepted := Some r)));
  (match !refused with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "weak password accepted");
  (match !accepted with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "strong password refused");
  Alcotest.(check int) "counters" 1 (Services.Kpasswd.changes_applied kpw);
  Alcotest.(check int) "refusals" 1 (Services.Kpasswd.changes_refused kpw);
  (* The stored key now matches the new password. *)
  match Kdb.lookup w.db (Principal.user ~realm "pat") with
  | Some e ->
      Alcotest.(check bool) "key updated" true
        (Bytes.equal e.Kdb.key (Crypto.Str2key.derive "orthogonal.sunrise"))
  | None -> Alcotest.fail "pat vanished"

let forwarded_policy () =
  (* accept_forwarded=false refuses a forwarded ticket even from a friend —
     the all-or-nothing bind of an origin-less flag. *)
  let profile = Profile.v5_draft3 in
  let w = mk_world ~profile () in
  let p = Principal.service ~realm "fileserv" ~host:"svc" in
  let key = Crypto.Des.random_key w.rng in
  Kdb.add_service w.db p ~key;
  let fs =
    Services.Fileserver.install w.net w.svc_host
      ~config:{ Apserver.default_config with accept_forwarded = false } ~profile
      ~principal:p ~key ~port:600
  in
  let refused = ref None in
  let client = Client.create w.net w.ws ~profile ~kdcs:w.kdcs (Principal.user ~realm "pat") in
  Client.login client ~password:"pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket client
        ~options:{ Messages.no_options with forward = true }
        ~service:p (fun r ->
          let creds = Result.get_ok r in
          Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip w.svc_host)
            ~dport:600 (fun r -> refused := Some r)));
  Sim.Engine.run w.eng;
  (match !refused with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "forwarded ticket accepted against policy"
  | None -> Alcotest.fail "stalled");
  Alcotest.(check int) "no session" 0
    (Apserver.sessions_established (Services.Fileserver.apserver fs))

let () =
  Alcotest.run "services"
    [ ("fileserver", [ Alcotest.test_case "protocol" `Quick fileserver_protocol ]);
      ("mailserver", [ Alcotest.test_case "protocol" `Quick mailserver_protocol ]);
      ("backupserver", [ Alcotest.test_case "protocol" `Quick backup_protocol ]);
      ( "rsh",
        [ Alcotest.test_case "honest v4" `Quick (rsh_honest Profile.v4);
          Alcotest.test_case "honest hardened" `Quick (rsh_honest Profile.hardened) ] );
      ("kpasswd", [ Alcotest.test_case "policy and key change" `Quick kpasswd_policy ]);
      ("policy", [ Alcotest.test_case "forwarded refused" `Quick forwarded_policy ]) ]
