(* Tests for the util substrate: byte helpers and the deterministic PRNG. *)

let hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 100))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Util.Bytesutil.of_hex (Util.Bytesutil.to_hex b)))

let hex_case_insensitive () =
  Alcotest.(check bytes) "upper == lower"
    (Util.Bytesutil.of_hex "deadBEEF")
    (Util.Bytesutil.of_hex "DEADbeef")

let hex_rejects () =
  List.iter
    (fun s ->
      match Util.Bytesutil.of_hex s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%S accepted" s)
    [ "a"; "0g"; "zz"; "123" ]

let xor_involution =
  QCheck.Test.make ~name:"xor involution" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.return 24)) (string_of_size (QCheck.Gen.return 24)))
    (fun (a, b) ->
      let a = Bytes.of_string a and b = Bytes.of_string b in
      Bytes.equal a Util.Bytesutil.(xor (xor a b) b))

let xor_into_matches_xor =
  QCheck.Test.make ~name:"xor_into agrees with xor" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
    (fun (a, b) ->
      let a = Bytes.of_string a and b = Bytes.of_string b in
      let dst = Bytes.copy a in
      Util.Bytesutil.xor_into ~src:b ~dst;
      Bytes.equal dst (Util.Bytesutil.xor a b))

let chunks_partition =
  QCheck.Test.make ~name:"chunks concatenate back" ~count:300
    QCheck.(pair (int_range 1 16) (string_of_size (QCheck.Gen.int_range 0 100)))
    (fun (n, s) ->
      let b = Bytes.of_string s in
      let cs = Util.Bytesutil.chunks n b in
      Bytes.equal b (Util.Bytesutil.concat cs)
      && List.for_all (fun c -> Bytes.length c <= n && Bytes.length c > 0) cs)

let u32_u64_roundtrip =
  QCheck.Test.make ~name:"u32/u64 big-endian roundtrip" ~count:300
    QCheck.(pair (int_bound 0xFFFFFFFF) int)
    (fun (v32, v64) ->
      let b = Bytes.create 12 in
      Util.Bytesutil.put_u32_be b 0 v32;
      Util.Bytesutil.put_u64_be b 4 (Int64.of_int v64);
      Util.Bytesutil.u32_be b 0 = v32
      && Util.Bytesutil.u64_be b 4 = Int64.of_int v64)

let equal_constant_shape () =
  Alcotest.(check bool) "equal" true
    (Util.Bytesutil.equal (Bytes.of_string "abc") (Bytes.of_string "abc"));
  Alcotest.(check bool) "unequal" false
    (Util.Bytesutil.equal (Bytes.of_string "abc") (Bytes.of_string "abd"));
  Alcotest.(check bool) "length mismatch" false
    (Util.Bytesutil.equal (Bytes.of_string "abc") (Bytes.of_string "abcd"))

let suite_bytes =
  [ QCheck_alcotest.to_alcotest hex_roundtrip;
    Alcotest.test_case "hex case" `Quick hex_case_insensitive;
    Alcotest.test_case "hex rejects garbage" `Quick hex_rejects;
    QCheck_alcotest.to_alcotest xor_involution;
    QCheck_alcotest.to_alcotest xor_into_matches_xor;
    QCheck_alcotest.to_alcotest chunks_partition;
    QCheck_alcotest.to_alcotest u32_u64_roundtrip;
    Alcotest.test_case "equality" `Quick equal_constant_shape ]

(* --- RNG --- *)

let rng_deterministic () =
  let a = Util.Rng.create 42L and b = Util.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next_int64 a) (Util.Rng.next_int64 b)
  done

let rng_seed_sensitivity () =
  let a = Util.Rng.create 42L and b = Util.Rng.create 43L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Util.Rng.next_int64 a <> Util.Rng.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let rng_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_nat)
    (fun (bound, seed) ->
      let rng = Util.Rng.create (Int64.of_int (seed + 1)) in
      let v = Util.Rng.int rng bound in
      v >= 0 && v < bound)

let rng_bytes_length =
  QCheck.Test.make ~name:"Rng.bytes length" ~count:200 (QCheck.int_bound 100)
    (fun n ->
      let rng = Util.Rng.create 7L in
      Bytes.length (Util.Rng.bytes rng n) = n)

let rng_split_independent () =
  (* A split generator's stream does not mirror its parent's. *)
  let parent = Util.Rng.create 99L in
  let child = Util.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Util.Rng.next_int64 parent = Util.Rng.next_int64 child then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200 (QCheck.int_range 0 50)
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int (n + 13)) in
      let arr = Array.init n (fun i -> i) in
      Util.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.init n (fun i -> i))

let suite_rng =
  [ Alcotest.test_case "deterministic" `Quick rng_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
    QCheck_alcotest.to_alcotest rng_bounds;
    QCheck_alcotest.to_alcotest rng_bytes_length;
    Alcotest.test_case "split independence" `Quick rng_split_independent;
    QCheck_alcotest.to_alcotest rng_shuffle_permutes ]

let () = Alcotest.run "util" [ ("bytes", suite_bytes); ("rng", suite_rng) ]
