(* Tests for the hardware-section modules: the handheld authenticator, the
   encryption box, and the networked keystore. *)

open Kerberos

(* ------------------------------------------------------------------ *)
(* Handheld authenticator                                              *)
(* ------------------------------------------------------------------ *)

let handheld_matches_kdc () =
  (* The device and the KDC compute the same {R}Kc. *)
  let device = Hardened.Handheld.enroll ~password:"pw.of.pat" in
  let kc = Crypto.Str2key.derive "pw.of.pat" in
  let r = Util.Bytesutil.of_hex "0123456789abcdef" in
  let expected =
    Crypto.Des.encrypt_block (Crypto.Des.schedule (Crypto.Des.fix_parity kc)) r
  in
  Alcotest.(check bool) "same result" true
    (Bytes.equal expected (Hardened.Handheld.respond device r));
  Alcotest.(check int) "usage counted" 1 (Hardened.Handheld.responses_issued device)

let handheld_challenge_dependent =
  QCheck.Test.make ~name:"distinct challenges give distinct responses" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let device = Hardened.Handheld.enroll ~password:"pw" in
      let mk i =
        let r = Bytes.make 8 '\000' in
        Util.Bytesutil.put_u32_be r 0 i;
        r
      in
      not (Bytes.equal (Hardened.Handheld.respond device (mk a))
             (Hardened.Handheld.respond device (mk b))))

let suite_handheld =
  [ Alcotest.test_case "matches the KDC's computation" `Quick handheld_matches_kdc;
    QCheck_alcotest.to_alcotest handheld_challenge_dependent ]

(* ------------------------------------------------------------------ *)
(* Encryption box: E15 invariants plus a full client-side flow          *)
(* ------------------------------------------------------------------ *)

let e15_invariants () =
  List.iter
    (fun (criterion, ok) -> Alcotest.(check bool) criterion true ok)
    (Expframework.Hardware_check.run ())

let box_absorb_chain () =
  (* Login key opens the AS reply; the captured TGS-session handle then
     opens a TGS reply; each absorbed body has its key redacted. *)
  let profile = Profile.hardened in
  let rng = Util.Rng.create 0xB0C5L in
  let box = Hardened.Encbox.create () in
  let kc = Crypto.Str2key.derive "pw" in
  let login = Hardened.Encbox.install_key box Hardened.Encbox.Login kc in
  let tgt_key = Crypto.Des.random_key rng in
  let as_body =
    { Messages.b_session_key = tgt_key; b_nonce = 1L;
      b_server = Principal.tgs ~realm:"ATHENA"; b_issued_at = 0.0; b_lifetime = 1.0;
      b_ticket = Bytes.make 16 'T' }
  in
  let sealed_as =
    Messages.seal_msg profile rng ~key:kc ~tag:Messages.tag_as_rep_body
      (Messages.rep_body_to_value ~tag:Messages.tag_as_rep_body as_body)
  in
  let tgs_handle, body1 =
    match
      Hardened.Encbox.absorb_rep_body box ~profile ~with_key:login
        ~new_purpose:Hardened.Encbox.Tgs_session ~tag:Messages.tag_as_rep_body sealed_as
    with
    | Ok (h, b) -> (h, b)
    | Error e -> Alcotest.failf "absorb as: %s" e
  in
  Alcotest.(check bool) "key redacted" true
    (Util.Bytesutil.equal body1.Messages.b_session_key (Bytes.make 8 '\000'));
  (* Now a TGS reply sealed under the TGT session key the host never saw. *)
  let svc_key = Crypto.Des.random_key rng in
  let tgs_body =
    { Messages.b_session_key = svc_key; b_nonce = 2L;
      b_server = Principal.service ~realm:"ATHENA" "fs" ~host:"h"; b_issued_at = 0.0;
      b_lifetime = 1.0; b_ticket = Bytes.make 16 'S' }
  in
  let sealed_tgs =
    Messages.seal_msg profile rng ~key:tgt_key ~tag:Messages.tag_rep_body
      (Messages.rep_body_to_value ~tag:Messages.tag_rep_body tgs_body)
  in
  (match
     Hardened.Encbox.absorb_rep_body box ~profile ~with_key:tgs_handle
       ~new_purpose:Hardened.Encbox.Service_session ~tag:Messages.tag_rep_body sealed_tgs
   with
  | Ok (_, body2) ->
      Alcotest.(check bool) "service key redacted too" true
        (Util.Bytesutil.equal body2.Messages.b_session_key (Bytes.make 8 '\000'))
  | Error e -> Alcotest.failf "absorb tgs: %s" e);
  Alcotest.(check int) "three keys live in the box" 3 (Hardened.Encbox.handles_live box)

let box_authenticator_verifiable () =
  (* An authenticator sealed by the box verifies under the real key. *)
  let profile = Profile.hardened in
  let rng = Util.Rng.create 0xB0C6L in
  let box = Hardened.Encbox.create () in
  let skey = Crypto.Des.random_key rng in
  let h = Hardened.Encbox.install_key box Hardened.Encbox.Service_session skey in
  let auth =
    { Messages.a_client = Principal.user ~realm:"ATHENA" "pat"; a_addr = 7;
      a_timestamp = 123.0; a_req_cksum = None; a_ticket_cksum = None; a_service = None;
      a_seq_init = Some 5; a_subkey_part = None }
  in
  let sealed = Hardened.Encbox.seal_authenticator box ~profile ~with_key:h auth in
  match Messages.open_msg profile ~key:skey ~tag:Messages.tag_authenticator sealed with
  | Ok v ->
      Alcotest.(check bool) "roundtrip" true (Messages.authenticator_of_value v = auth)
  | Error e -> Alcotest.fail e

let box_keystore_download () =
  (* The keystore-download path: a sealed key enters the box without ever
     existing in host memory in the clear. *)
  let profile = Profile.hardened in
  let rng = Util.Rng.create 0xB0C7L in
  let box = Hardened.Encbox.create () in
  let session_key = Crypto.Des.random_key rng in
  let session = Hardened.Encbox.install_key box Hardened.Encbox.Service_session session_key in
  let downloaded = Crypto.Des.random_key rng in
  let blob = Seal.seal (Seal.of_profile profile) rng ~key:session_key downloaded in
  (match
     Hardened.Encbox.absorb_sealed_key box ~profile ~with_key:session
       ~new_purpose:Hardened.Encbox.Service_key blob
   with
  | Error e -> Alcotest.fail e
  | Ok _h -> ());
  (* A login handle must not be usable for the download. *)
  let login = Hardened.Encbox.install_key box Hardened.Encbox.Login (Crypto.Str2key.derive "x") in
  match
    Hardened.Encbox.absorb_sealed_key box ~profile ~with_key:login
      ~new_purpose:Hardened.Encbox.Service_key blob
  with
  | exception Hardened.Encbox.Purpose_violation _ -> ()
  | Ok _ -> Alcotest.fail "login handle downloaded a key"
  | Error _ -> Alcotest.fail "wrong failure mode"

let suite_encbox =
  [ Alcotest.test_case "E15 invariants" `Quick e15_invariants;
    Alcotest.test_case "absorb chain with redaction" `Quick box_absorb_chain;
    Alcotest.test_case "box-sealed authenticator verifies" `Quick box_authenticator_verifiable;
    Alcotest.test_case "keystore download path" `Quick box_keystore_download ]

(* ------------------------------------------------------------------ *)
(* Keystore service                                                    *)
(* ------------------------------------------------------------------ *)

let keystore_flow () =
  let profile = Profile.hardened in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  let ks_host = Sim.Host.create ~name:"keysafe" ~ips:[ Sim.Addr.of_quad 10 0 0 30 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws; ks_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 77L in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm:"ATHENA" "pat") ~password:"pw";
  Kdb.add_user db (Principal.user ~realm:"ATHENA" "eve") ~password:"evepw";
  let ksp = Principal.service ~realm:"ATHENA" "keystore" ~host:"keysafe" in
  let ksk = Crypto.Des.random_key rng in
  Kdb.add_service db ksp ~key:ksk;
  let kdc = Kdc.create ~realm:"ATHENA" ~profile ~lifetime:3600.0 db in
  Kdc.install net kdc_host kdc ();
  let store = Hardened.Keystore.install net ks_host ~profile ~principal:ksp ~key:ksk ~port:751 in
  let kdcs = [ ("ATHENA", Sim.Host.primary_ip kdc_host) ] in
  let connect user password k =
    let c = Client.create ~seed:(Int64.of_int (Hashtbl.hash user)) net ws ~profile ~kdcs
        (Principal.user ~realm:"ATHENA" user)
    in
    Client.login c ~password (fun r ->
        ignore (Result.get_ok r);
        Client.get_ticket c ~service:ksp (fun r ->
            let creds = Result.get_ok r in
            Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip ks_host) ~dport:751
              (fun r -> k c (Result.get_ok r))))
  in
  let fetched = ref None and cross = ref None and fresh = ref None in
  connect "pat" "pw" (fun pat chan ->
      Hardened.Keystore.put pat chan ~label:"mailkey" (Bytes.of_string "s3cr3t!!")
        ~k:(fun r ->
          ignore (Result.get_ok r);
          Hardened.Keystore.get pat chan ~label:"mailkey" ~k:(fun r ->
              fetched := Some r;
              Hardened.Keystore.fresh_key pat chan ~k:(fun r -> fresh := Some r);
              (* Another principal must not see pat's blob. *)
              connect "eve" "evepw" (fun eve echan ->
                  Hardened.Keystore.get eve echan ~label:"mailkey" ~k:(fun r ->
                      cross := Some r)))));
  Sim.Engine.run eng;
  (match !fetched with
  | Some (Ok b) -> Alcotest.(check string) "fetched" "s3cr3t!!" (Bytes.to_string b)
  | _ -> Alcotest.fail "fetch failed");
  (match !fresh with
  | Some (Ok k) ->
      Alcotest.(check int) "key size" 8 (Bytes.length k);
      Alcotest.(check bool) "parity-fixed" true (Bytes.equal k (Crypto.Des.fix_parity k))
  | _ -> Alcotest.fail "fresh key failed");
  (match !cross with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "namespace leak between principals"
  | None -> Alcotest.fail "cross check did not run");
  Alcotest.(check int) "one blob stored" 1 (Hardened.Keystore.stored_count store)

let suite_keystore = [ Alcotest.test_case "put/get/newkey + isolation" `Quick keystore_flow ]

let () =
  Alcotest.run "hardened"
    [ ("handheld", suite_handheld); ("encbox", suite_encbox);
      ("keystore", suite_keystore) ]
