(* Negative-path unit tests for the KDC, plus whole-protocol liveness
   properties under random user populations. *)

open Kerberos

let realm = "ATHENA"

type bed = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  db : Kdb.t;
  kdc : Kdc.t;
  kdc_host : Sim.Host.t;
  ws : Sim.Host.t;
  file_principal : Principal.t;
  file_key : bytes;
}

let mk ?(profile = Profile.v4) ?(lifetime = 3600.0) () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  Sim.Net.attach net kdc_host;
  Sim.Net.attach net ws;
  let db = Kdb.create () in
  let rng = Util.Rng.create 9L in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"pw";
  let file_principal = Principal.service ~realm "fs" ~host:"h" in
  let file_key = Crypto.Des.random_key rng in
  Kdb.add_service db file_principal ~key:file_key;
  let kdc = Kdc.create ~realm ~profile ~lifetime db in
  Kdc.install net kdc_host kdc ();
  { eng; net; db; kdc; kdc_host; ws; file_principal; file_key }

let client ?(name = "pat") ?(seed = 1L) b profile =
  Client.create ~seed b.net b.ws ~profile
    ~kdcs:[ (realm, Sim.Host.primary_ip b.kdc_host) ]
    (Principal.user ~realm name)

let run b = Sim.Engine.run b.eng

let expect_error_containing what fragment = function
  | Some (Error e) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" what e fragment)
        true
        (Astring.String.is_infix ~affix:fragment e)
  | Some (Ok _) -> Alcotest.failf "%s: unexpectedly succeeded" what
  | None -> Alcotest.failf "%s: stalled" what

let unknown_client () =
  let b = mk () in
  let c = client ~name:"mallory" b Profile.v4 in
  let r = ref None in
  Client.login c ~password:"whatever" (fun x -> r := Some x);
  run b;
  expect_error_containing "unknown client" "mallory" !r

let unknown_service () =
  let b = mk () in
  let c = client b Profile.v4 in
  let r = ref None in
  Client.login c ~password:"pw" (fun x ->
      ignore (Result.get_ok x);
      Client.get_ticket c ~service:(Principal.service ~realm "nosuch" ~host:"h")
        (fun x -> r := Some x));
  run b;
  expect_error_containing "unknown service" "unknown" !r

let wrong_password_rejected_with_preauth () =
  (* With preauth the KDC can tell a bad password apart up front. *)
  let profile = { Profile.v4 with Profile.name = "v4p"; preauth = true } in
  let b = mk ~profile () in
  let c = client b profile in
  let r = ref None in
  Client.login c ~password:"not-pw" (fun x -> r := Some x);
  run b;
  expect_error_containing "bad preauth" "preauth" !r;
  Alcotest.(check int) "counted" 1 (Kdc.preauth_rejections b.kdc)

let expired_tgt_at_tgs () =
  let b = mk ~lifetime:60.0 () in
  let c = client b Profile.v4 in
  let r = ref None in
  Client.login c ~password:"pw" (fun x ->
      ignore (Result.get_ok x);
      (* Wait out the TGT's lifetime before asking for a service ticket. *)
      Sim.Engine.schedule_after b.eng 120.0 (fun () ->
          Client.get_ticket c ~service:b.file_principal (fun x -> r := Some x)));
  run b;
  expect_error_containing "expired tgt" "expired" !r

let skewed_client_at_tgs () =
  let b = mk () in
  b.ws.Sim.Host.clock_offset <- 1000.0;
  let c = client b Profile.v4 in
  let r = ref None in
  Client.login c ~password:"pw" (fun x ->
      ignore (Result.get_ok x);
      Client.get_ticket c ~service:b.file_principal (fun x -> r := Some x));
  run b;
  expect_error_containing "skewed authenticator" "skew" !r

let forbidden_options () =
  (* V4 exposes no Draft 3 options; requesting one is refused. *)
  let b = mk () in
  let c = client b Profile.v4 in
  let results = ref [] in
  Client.login c ~password:"pw" (fun x ->
      let tgt = Result.get_ok x in
      List.iter
        (fun opts ->
          Client.get_ticket c ~options:opts ~additional_ticket:tgt.Client.ticket
            ~service:b.file_principal (fun x -> results := x :: !results))
        [ { Messages.no_options with enc_tkt_in_skey = true };
          { Messages.no_options with reuse_skey = true };
          { Messages.no_options with forward = true } ]);
  run b;
  Alcotest.(check int) "three answers" 3 (List.length !results);
  List.iter
    (fun r ->
      match r with
      | Error e ->
          Alcotest.(check bool) ("refused: " ^ e) true
            (Astring.String.is_infix ~affix:"not allowed" e)
      | Ok _ -> Alcotest.fail "forbidden option honoured")
    !results

let tgs_replay_cache () =
  (* With the cache on, a verbatim replay of a TGS request is refused. *)
  let profile =
    { Profile.v4 with
      Profile.name = "v4c";
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  let b = mk ~profile () in
  let adv = Sim.Adversary.attach b.net in
  Sim.Adversary.start_tap adv;
  let c = client b profile in
  Client.login c ~password:"pw" (fun x ->
      ignore (Result.get_ok x);
      Client.get_ticket c ~service:b.file_principal (fun x -> ignore (Result.get_ok x)));
  run b;
  (* Find the TGS request (the bigger of the two KDC-bound packets). *)
  let tgs_req =
    Sim.Adversary.capture_matching adv (fun p ->
        p.Sim.Packet.dport = Kdc.default_port && Bytes.length p.Sim.Packet.payload > 200)
    |> (fun l -> List.nth l (List.length l - 1))
  in
  let got = ref None in
  Sim.Net.listen b.net b.ws ~port:45999 (fun pkt -> got := Some pkt.Sim.Packet.payload);
  Sim.Net.inject b.net { tgs_req with Sim.Packet.sport = 45999 };
  run b;
  match !got with
  | None -> Alcotest.fail "no answer to the replay"
  | Some payload -> (
      match
        Messages.err_of_value (Wire.Encoding.decode profile.Profile.encoding payload)
      with
      | { e_text; _ } ->
          Alcotest.(check bool) ("replay refused: " ^ e_text) true
            (Astring.String.is_infix ~affix:"replay" e_text)
      | exception Wire.Codec.Decode_error _ -> Alcotest.fail "replayed TGS request honoured")

let stats_counters () =
  let b = mk () in
  let c = client b Profile.v4 in
  Client.login c ~password:"pw" (fun _ -> ());
  run b;
  Alcotest.(check int) "one AS request served" 1 (Kdc.as_requests_served b.kdc)

let suite_negative =
  [ Alcotest.test_case "unknown client" `Quick unknown_client;
    Alcotest.test_case "unknown service" `Quick unknown_service;
    Alcotest.test_case "preauth rejects bad password" `Quick wrong_password_rejected_with_preauth;
    Alcotest.test_case "expired TGT at TGS" `Quick expired_tgt_at_tgs;
    Alcotest.test_case "skewed client at TGS" `Quick skewed_client_at_tgs;
    Alcotest.test_case "forbidden options" `Quick forbidden_options;
    Alcotest.test_case "TGS replay cache" `Quick tgs_replay_cache;
    Alcotest.test_case "stats counters" `Quick stats_counters ]

(* ------------------------------------------------------------------ *)
(* Liveness: random populations succeed end to end                     *)
(* ------------------------------------------------------------------ *)

let liveness_prop =
  QCheck.Test.make ~name:"honest runs succeed for random populations" ~count:20
    QCheck.(triple (int_bound 2) (int_range 1 5) (int_bound 1000))
    (fun (pidx, n_users, seed) ->
      let profile = List.nth [ Profile.v4; Profile.v5_draft3; Profile.hardened ] pidx in
      let b = mk ~profile () in
      let rng = Util.Rng.create (Int64.of_int (seed + 77)) in
      let users = Workloads.Passwords.population rng ~n:n_users ~weak_fraction:0.5 in
      List.iter
        (fun u ->
          Kdb.add_user b.db (Principal.user ~realm u.Workloads.Passwords.name)
            ~password:u.Workloads.Passwords.password)
        users;
      let successes = ref 0 in
      List.iteri
        (fun i u ->
          let c =
            client ~name:u.Workloads.Passwords.name ~seed:(Int64.of_int (i + 5)) b
              profile
          in
          Client.login c ~password:u.Workloads.Passwords.password (fun r ->
              ignore (Result.get_ok r);
              Client.get_ticket c ~service:b.file_principal (fun r ->
                  if Result.is_ok r then incr successes)))
        users;
      run b;
      !successes = n_users)

let suite_liveness = [ QCheck_alcotest.to_alcotest liveness_prop ]

let () =
  Alcotest.run "kdc"
    [ ("negative-paths", suite_negative); ("liveness", suite_liveness) ]
