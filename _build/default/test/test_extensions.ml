(* Tests for the extension features: the credential forwarder (footnote 9 /
   "Scope of Tickets"), hierarchical realm routing, KDC rate limiting, and
   the time/authentication bootstrap circularity. *)

open Kerberos

(* ------------------------------------------------------------------ *)
(* Credential forwarder                                                *)
(* ------------------------------------------------------------------ *)

let forwarder_moves_addressless_tickets () =
  (* V5 (no addresses in tickets): the forwarder daemon plus KRB_PRIV is a
     complete forwarding mechanism; no flag bits involved. *)
  let profile = { Profile.v5_draft3 with Profile.allow_forwarding = false } in
  let bed = Attacks.Testbed.make ~profile () in
  let dest = Sim.Host.create ~name:"remote" ~ips:[ Sim.Addr.of_quad 10 0 0 70 ] () in
  Sim.Net.attach bed.net dest;
  let fwd_principal = Principal.service ~realm:"ATHENA" "fwd" ~host:"remote" in
  let fwd_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db fwd_principal ~key:fwd_key;
  let daemon =
    Services.Forwarder.install bed.net dest ~profile ~principal:fwd_principal
      ~key:fwd_key ~port:754
  in
  (* pat logs in on the workstation and ships the TGT to the remote host. *)
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      let tgt = Attacks.Testbed.expect "login" r in
      Client.get_ticket bed.victim ~service:fwd_principal (fun r ->
          let creds = Attacks.Testbed.expect "fwd ticket" r in
          Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip dest)
            ~dport:754 (fun r ->
              let chan = Attacks.Testbed.expect "fwd ap" r in
              Services.Forwarder.forward_credentials bed.victim chan tgt
                ~k:(fun r -> ignore (Attacks.Testbed.expect "forward" r)))));
  Attacks.Testbed.run bed;
  Alcotest.(check int) "daemon received" 1 (Services.Forwarder.received_count daemon);
  (* A process on the remote host picks the credentials up and uses them. *)
  let pat_principal = Principal.user ~realm:"ATHENA" "pat" in
  let moved =
    match Services.Forwarder.pick_up dest ~principal:pat_principal with
    | Some c -> c
    | None -> Alcotest.fail "nothing in the destination cache"
  in
  let remote_client =
    Client.create ~seed:71L bed.net dest ~profile
      ~kdcs:[ ("ATHENA", Attacks.Testbed.kdc_addr bed) ]
      pat_principal
  in
  Client.adopt_tgt remote_client moved;
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/f"
    (Bytes.of_string "x");
  let worked = ref false in
  Client.get_ticket remote_client ~service:bed.file_principal (fun r ->
      let creds = Attacks.Testbed.expect "remote ticket" r in
      Client.ap_exchange remote_client creds ~dst:(Sim.Host.primary_ip bed.file_host)
        ~dport:bed.file_port (fun r ->
          let chan = Attacks.Testbed.expect "remote ap" r in
          Client.call_priv remote_client chan (Bytes.of_string "READ /f") ~k:(fun r ->
              worked := Result.is_ok r)));
  Attacks.Testbed.run bed;
  Alcotest.(check bool) "forwarded creds work from the new host" true !worked

let forwarder_useless_for_v4_tickets () =
  (* V4's address-bound TGT dies at the remote TGS: "hosts with more than
     one IP address ... cannot live with this limitation" — and neither can
     forwarding. *)
  let profile = Profile.v4 in
  let bed = Attacks.Testbed.make ~profile () in
  let dest = Sim.Host.create ~name:"remote" ~ips:[ Sim.Addr.of_quad 10 0 0 70 ] () in
  Sim.Net.attach bed.net dest;
  Attacks.Testbed.login_victim bed;
  let tgt = Option.get (Client.tgt bed.victim) in
  (* Skip the transfer (it would work; the failure is at use time). *)
  let remote_client =
    Client.create ~seed:72L bed.net dest ~profile
      ~kdcs:[ ("ATHENA", Attacks.Testbed.kdc_addr bed) ]
      (Principal.user ~realm:"ATHENA" "pat")
  in
  Client.adopt_tgt remote_client tgt;
  let refused = ref None in
  Client.get_ticket remote_client ~service:bed.file_principal (fun r -> refused := Some r);
  Attacks.Testbed.run bed;
  match !refused with
  | Some (Error e) ->
      Alcotest.(check bool) ("address bound: " ^ e) true
        (Astring.String.is_infix ~affix:"address" e)
  | Some (Ok _) -> Alcotest.fail "v4 ticket worked from the wrong address"
  | None -> Alcotest.fail "stalled"

let suite_forwarder =
  [ Alcotest.test_case "moves address-free tickets" `Quick forwarder_moves_addressless_tickets;
    Alcotest.test_case "v4 tickets bound to the old host" `Quick forwarder_useless_for_v4_tickets ]

(* ------------------------------------------------------------------ *)
(* Realm routing                                                       *)
(* ------------------------------------------------------------------ *)

let routing_basics () =
  let known = [ "MIT"; "CS.MIT"; "EE.MIT"; "THEORY.CS.MIT" ] in
  Alcotest.(check (option string)) "parent" (Some "CS.MIT")
    (Realm_routing.parent "THEORY.CS.MIT");
  Alcotest.(check (list string)) "ancestors" [ "CS.MIT"; "MIT" ]
    (Realm_routing.ancestors "THEORY.CS.MIT");
  Alcotest.(check bool) "descendant" true
    (Realm_routing.is_descendant "THEORY.CS.MIT" ~of_:"MIT");
  (* Leaf to leaf: up first. *)
  Alcotest.(check (option string)) "up" (Some "MIT")
    (Realm_routing.next_hop ~local:"EE.MIT" ~target:"THEORY.CS.MIT" ~known);
  (* Root down: needs to know the child on the path. *)
  Alcotest.(check (option string)) "down" (Some "CS.MIT")
    (Realm_routing.next_hop ~local:"MIT" ~target:"THEORY.CS.MIT" ~known);
  (* The paper's point: a parent ignorant of a grandchild cannot route. *)
  Alcotest.(check (option string)) "unknown grandchild unroutable" None
    (Realm_routing.next_hop ~local:"MIT" ~target:"THEORY.CS.MIT" ~known:[ "MIT"; "EE.MIT" ])

let routing_prop =
  (* In a random full hierarchy, following next_hop always terminates at
     the target. *)
  QCheck.Test.make ~name:"next_hop chains reach the target" ~count:200
    QCheck.(pair (int_bound 25) (int_bound 25))
    (fun (a, b) ->
      (* A fixed two-level tree: ROOT, C0..C4, G<i>.C<j>. *)
      let children = List.init 5 (fun i -> Printf.sprintf "C%d.ROOT" i) in
      let grands =
        List.concat_map
          (fun c -> List.init 5 (fun i -> Printf.sprintf "G%d.%s" i c))
          children
      in
      let known = ("ROOT" :: children) @ grands in
      let all = Array.of_list known in
      let src = all.(a mod Array.length all) and dst = all.(b mod Array.length all) in
      let rec walk cur fuel =
        if cur = dst then true
        else if fuel = 0 then false
        else
          match Realm_routing.next_hop ~local:cur ~target:dst ~known with
          | None -> false
          | Some hop -> walk hop (fuel - 1)
      in
      walk src 8)

let hierarchical_end_to_end () =
  (* Three live realms in a tree: ROOT with children CS.ROOT and EE.ROOT.
     A CS user reaches an EE service: up to ROOT, down to EE — the routes
     computed by Realm_routing, the keys pairwise parent/child. *)
  let profile = Kerberos.Profile.v5_draft3 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let realms = [ "ROOT"; "CS.ROOT"; "EE.ROOT" ] in
  let rng = Util.Rng.create 0x7EE3L in
  let hosts =
    List.mapi
      (fun i r ->
        let h = Sim.Host.create ~name:("kdc-" ^ r) ~ips:[ quad 10 (3 + i) 0 1 ] () in
        Sim.Net.attach net h;
        (r, h))
      realms
  in
  let dbs = List.map (fun r -> (r, Kdb.create ())) realms in
  let db r = List.assoc r dbs in
  List.iter
    (fun r -> Kdb.add_service (db r) (Principal.tgs ~realm:r) ~key:(Crypto.Des.random_key rng))
    realms;
  (* Parent/child cross keys, installed on both sides. *)
  List.iter
    (fun child ->
      match Realm_routing.parent child with
      | None -> ()
      | Some parent ->
          let k_down = Crypto.Des.random_key rng in
          let k_up = Crypto.Des.random_key rng in
          (* parent -> child and child -> parent referral keys *)
          Kdb.add_cross_realm (db parent)
            (Principal.cross_realm_tgs ~local:parent ~remote:child)
            ~key:k_down;
          Kdb.add_cross_realm (db child)
            (Principal.cross_realm_tgs ~local:parent ~remote:child)
            ~key:k_down;
          Kdb.add_cross_realm (db child)
            (Principal.cross_realm_tgs ~local:child ~remote:parent)
            ~key:k_up;
          Kdb.add_cross_realm (db parent)
            (Principal.cross_realm_tgs ~local:child ~remote:parent)
            ~key:k_up)
    realms;
  Kdb.add_user (db "CS.ROOT") (Principal.user ~realm:"CS.ROOT" "pat") ~password:"pw";
  let svc = Principal.service ~realm:"EE.ROOT" "scope" ~host:"lab" in
  let svc_key = Crypto.Des.random_key rng in
  Kdb.add_service (db "EE.ROOT") svc ~key:svc_key;
  let kdcs =
    List.map
      (fun r ->
        let kdc = Kdc.create ~realm:r ~profile ~lifetime:3600.0 (db r) in
        Realm_routing.configure kdc ~known:realms ~targets:realms;
        Kdc.install net (List.assoc r hosts) kdc ();
        (r, Sim.Host.primary_ip (List.assoc r hosts)))
      realms
  in
  let lab = Sim.Host.create ~name:"lab" ~ips:[ quad 10 9 0 20 ] () in
  let ws = Sim.Host.create ~name:"ws-cs" ~ips:[ quad 10 9 0 10 ] () in
  Sim.Net.attach net lab;
  Sim.Net.attach net ws;
  let _ap =
    Apserver.install net lab ~profile
      ~config:
        { Apserver.default_config with trusted_transit = [ "CS.ROOT"; "ROOT" ] }
      ~principal:svc ~key:svc_key ~port:700
      ~handler:(fun _ ~client:_ _ -> Some (Bytes.of_string "trace data")) ()
  in
  let client =
    Client.create net ws ~profile ~kdcs (Principal.user ~realm:"CS.ROOT" "pat")
  in
  let got = ref None in
  Client.login client ~password:"pw" (fun r ->
      ignore (Result.get_ok r);
      Client.get_ticket client ~service:svc (fun r ->
          match r with
          | Error e -> got := Some (Error e)
          | Ok creds ->
              Client.ap_exchange client creds ~dst:(Sim.Host.primary_ip lab) ~dport:700
                (fun r ->
                  match r with
                  | Error e -> got := Some (Error e)
                  | Ok chan ->
                      Client.call_priv client chan (Bytes.of_string "PULL") ~k:(fun r ->
                          got := Some r))));
  Sim.Engine.run eng;
  match !got with
  | Some (Ok data) ->
      Alcotest.(check string) "three-realm path served" "trace data" (Bytes.to_string data)
  | Some (Error e) -> Alcotest.failf "hierarchical path failed: %s" e
  | None -> Alcotest.fail "stalled"

let suite_routing =
  [ Alcotest.test_case "basics" `Quick routing_basics;
    QCheck_alcotest.to_alcotest routing_prop;
    Alcotest.test_case "three-realm hierarchy end to end" `Quick hierarchical_end_to_end ]

(* ------------------------------------------------------------------ *)
(* KDC rate limiting                                                   *)
(* ------------------------------------------------------------------ *)

let rate_limit_caps_harvest () =
  let r =
    Attacks.Ticket_harvest.run ~n_users:20 ~dictionary_head:40 ~rate_limit:5
      ~profile:Profile.v4 ()
  in
  Alcotest.(check int) "only the cap's worth of replies" 5 r.replies_obtained;
  (* Partial mitigation only: what leaks is still crackable. *)
  Alcotest.(check bool) "still a breach in slow motion" true (r.replies_obtained > 0)

let rate_limit_spares_honest_users () =
  (* Distinct hosts are not collateral damage of one attacker's burst. *)
  let profile = Profile.v4 in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ Sim.Addr.of_quad 10 0 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ Sim.Addr.of_quad 10 0 0 10 ] () in
  Sim.Net.attach net kdc_host;
  Sim.Net.attach net ws;
  let db = Kdb.create () in
  let rng = Util.Rng.create 3L in
  Kdb.add_service db (Principal.tgs ~realm:"ATHENA") ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm:"ATHENA" "pat") ~password:"pw";
  let kdc = Kdc.create ~rate_limit:3 ~realm:"ATHENA" ~profile ~lifetime:3600.0 db in
  Kdc.install net kdc_host kdc ();
  let ok = ref 0 in
  (* pat logs in twice from the workstation, under the limit. *)
  for i = 0 to 1 do
    let c =
      Client.create ~seed:(Int64.of_int i) net ws ~profile
        ~kdcs:[ ("ATHENA", Sim.Host.primary_ip kdc_host) ]
        (Principal.user ~realm:"ATHENA" "pat")
    in
    Client.login c ~password:"pw" (fun r -> if Result.is_ok r then incr ok)
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "both logins fine" 2 !ok;
  Alcotest.(check int) "nothing rate limited" 0 (Kdc.rate_limited_requests kdc)

let suite_rate =
  [ Alcotest.test_case "caps harvesting" `Quick rate_limit_caps_harvest;
    Alcotest.test_case "spares honest users" `Quick rate_limit_spares_honest_users ]

(* ------------------------------------------------------------------ *)
(* Time bootstrap circularity                                          *)
(* ------------------------------------------------------------------ *)

let bootstrap_matrix () =
  let r4 = Attacks.Time_bootstrap.run ~profile:Profile.v4 () in
  Alcotest.(check bool) "v4 wedged" false r4.clock_recovered;
  Alcotest.(check bool) "v4 honest clients locked out" true r4.honest_clients_locked_out;
  Alcotest.(check bool) "v4 never reached the time service" false
    r4.could_reach_time_service;
  let rh = Attacks.Time_bootstrap.run ~profile:Profile.hardened () in
  Alcotest.(check bool) "hardened recovered" true rh.clock_recovered;
  Alcotest.(check bool) "hardened reached the service clock-free" true
    rh.could_reach_time_service

let suite_bootstrap = [ Alcotest.test_case "wedged vs clock-free recovery" `Quick bootstrap_matrix ]

(* ------------------------------------------------------------------ *)
(* AS-issued service tickets                                           *)
(* ------------------------------------------------------------------ *)

let direct_service_ticket () =
  let profile = Profile.v4 in
  let bed = Attacks.Testbed.make ~profile () in
  Services.Fileserver.write_file bed.file ~owner:"pat@ATHENA" ~path:"/x"
    (Bytes.of_string "direct");
  let got = ref None in
  Client.login bed.victim ~service:bed.file_principal ~password:bed.victim_password
    (fun r ->
      let creds = Attacks.Testbed.expect "direct ticket" r in
      Client.ap_exchange bed.victim creds ~dst:(Sim.Host.primary_ip bed.file_host)
        ~dport:bed.file_port (fun r ->
          let chan = Attacks.Testbed.expect "ap" r in
          Client.call_priv bed.victim chan (Bytes.of_string "READ /x") ~k:(fun r ->
              got := Some r)));
  Attacks.Testbed.run bed;
  (match !got with
  | Some (Ok data) -> Alcotest.(check string) "read" "direct" (Bytes.to_string data)
  | _ -> Alcotest.fail "direct service ticket flow failed");
  Alcotest.(check bool) "no TGT installed" true (Client.tgt bed.victim = None)

let suite_direct = [ Alcotest.test_case "AS issues service tickets" `Quick direct_service_ticket ]

let () =
  Alcotest.run "extensions"
    [ ("forwarder", suite_forwarder); ("realm-routing", suite_routing);
      ("rate-limit", suite_rate); ("time-bootstrap", suite_bootstrap);
      ("direct-tickets", suite_direct) ]
