(* Unit and property tests for the crypto substrate. *)

let hex = Util.Bytesutil.of_hex
let to_hex = Util.Bytesutil.to_hex

let check_hex msg expected actual = Alcotest.(check string) msg expected (to_hex actual)

(* ------------------------------------------------------------------ *)
(* DES known-answer tests                                              *)
(* ------------------------------------------------------------------ *)

let des_classic () =
  (* The walk-through vector from every DES tutorial. *)
  let k = Crypto.Des.schedule (hex "133457799bbcdff1") in
  let ct = Crypto.Des.encrypt_block k (hex "0123456789abcdef") in
  check_hex "classic encrypt" "85e813540f0ab405" ct;
  check_hex "classic decrypt" "0123456789abcdef" (Crypto.Des.decrypt_block k ct)

let des_nbs_variable_plaintext () =
  (* First entries of the NBS variable-plaintext known-answer test. *)
  let k = Crypto.Des.schedule (hex "0101010101010101") in
  check_hex "pt 80.." "95f8a5e5dd31d900"
    (Crypto.Des.encrypt_block k (hex "8000000000000000"));
  check_hex "pt 40.." "dd7f121ca5015619"
    (Crypto.Des.encrypt_block k (hex "4000000000000000"));
  check_hex "pt 20.." "2e8653104f3834ea"
    (Crypto.Des.encrypt_block k (hex "2000000000000000"));
  check_hex "pt 00.." "8ca64de9c1b123a7"
    (Crypto.Des.encrypt_block k (hex "0000000000000000"))

let des_roundtrip_prop =
  QCheck.Test.make ~name:"des roundtrip" ~count:200
    QCheck.(pair (bytes_of_size (QCheck.Gen.return 8)) (bytes_of_size (QCheck.Gen.return 8)))
    (fun (key, block) ->
      let k = Crypto.Des.schedule key in
      Bytes.equal (Crypto.Des.decrypt_block k (Crypto.Des.encrypt_block k block)) block)

let des_parity () =
  let k = Crypto.Des.fix_parity (hex "0000000000000000") in
  check_hex "parity of zero key" "0101010101010101" k;
  Alcotest.(check bool) "weak" true (Crypto.Des.is_weak (hex "0101010101010101"));
  Alcotest.(check bool) "not weak" false (Crypto.Des.is_weak (hex "133457799bbcdff1"))

let des_nbs_variable_key () =
  (* First entries of the NBS variable-key known-answer test: key has one
     non-parity bit set, plaintext all-zero. *)
  let zero = hex "0000000000000000" in
  List.iter
    (fun (k, expect) ->
      check_hex ("key " ^ k) expect
        (Crypto.Des.encrypt_block (Crypto.Des.schedule (hex k)) zero);
      check_hex ("key " ^ k ^ " decrypt") "0000000000000000"
        (Crypto.Des.decrypt_block (Crypto.Des.schedule (hex k)) (hex expect)))
    [ ("8001010101010101", "95a8d72813daa94d");
      ("4001010101010101", "0eec1487dd8c26d5");
      ("2001010101010101", "7ad16ffb79c45926");
      ("1001010101010101", "d3746294ca6a6cf3") ]

let des_nbs_substitution () =
  (* First entries of the NBS substitution-table known-answer test. *)
  List.iter
    (fun (k, p, c) ->
      let sched = Crypto.Des.schedule (hex k) in
      check_hex ("encrypt " ^ p) c (Crypto.Des.encrypt_block sched (hex p));
      check_hex ("decrypt " ^ c) p (Crypto.Des.decrypt_block sched (hex c)))
    [ ("7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b");
      ("0131d9619dc1376e", "5cd54ca83def57da", "7a389d10354bd271");
      ("07a1133e4a0b2686", "0248d43806f67172", "868ebb51cab4599a");
      ("3849674c2602319e", "51454b582ddf440a", "7178876e01f19b2a") ]

let des_parity_ignored_prop =
  (* The schedule must ignore parity bits (the low bit of each byte), so a
     key and its parity-fixed form — and the weak-key variants thereof —
     encipher identically. *)
  QCheck.Test.make ~name:"schedule ignores parity bits" ~count:200
    QCheck.(pair (bytes_of_size (QCheck.Gen.return 8)) (bytes_of_size (QCheck.Gen.return 8)))
    (fun (key, block) ->
      let k1 = Crypto.Des.schedule key in
      let k2 = Crypto.Des.schedule (Crypto.Des.fix_parity key) in
      Bytes.equal (Crypto.Des.encrypt_block k1 block) (Crypto.Des.encrypt_block k2 block))

let suite_des =
  [ Alcotest.test_case "classic vector" `Quick des_classic;
    Alcotest.test_case "nbs variable plaintext" `Quick des_nbs_variable_plaintext;
    Alcotest.test_case "nbs variable key" `Quick des_nbs_variable_key;
    Alcotest.test_case "nbs substitution table" `Quick des_nbs_substitution;
    Alcotest.test_case "parity and weak keys" `Quick des_parity;
    QCheck_alcotest.to_alcotest des_parity_ignored_prop;
    QCheck_alcotest.to_alcotest des_roundtrip_prop ]

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)
(* ------------------------------------------------------------------ *)

let key8 = hex "133457799bbcdff1"
let sched = Crypto.Des.schedule key8

let gen_payload = QCheck.Gen.(map Bytes.of_string (string_size ~gen:printable (int_range 0 200)))

let mode_roundtrip name enc dec =
  QCheck.Test.make ~name ~count:200 (QCheck.make gen_payload) (fun payload ->
      let padded = Crypto.Mode.pad payload in
      let ct = enc padded in
      match Crypto.Mode.unpad (dec ct) with
      | Some back -> Bytes.equal back payload
      | None -> false)

let iv = hex "0f1571c947d9e859"

let cbc_prefix_property =
  (* The property the V5 KRB_PRIV chosen-plaintext attack exploits: with a
     fixed IV, the encryption of a block-aligned prefix is a prefix of the
     encryption. *)
  QCheck.Test.make ~name:"cbc prefix property (the attack's lever)" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (a, b) ->
      let rng = Util.Rng.create 42L in
      let part1 = Util.Rng.bytes rng (8 * a) and part2 = Util.Rng.bytes rng (8 * b) in
      let whole = Bytes.cat part1 part2 in
      let ct_whole = Crypto.Mode.cbc_encrypt sched ~iv whole in
      let ct_prefix = Crypto.Mode.cbc_encrypt sched ~iv part1 in
      Bytes.equal ct_prefix (Bytes.sub ct_whole 0 (Bytes.length part1)))

let pcbc_blockswap () =
  (* PCBC's documented flaw: swapping two interior ciphertext blocks garbles
     only those blocks; later blocks decrypt correctly (the xor of garbles
     cancels). This is why V4 swapped PCBC out in V5. *)
  let rng = Util.Rng.create 7L in
  let pt = Util.Rng.bytes rng 48 in
  let ct = Crypto.Mode.pcbc_encrypt sched ~iv pt in
  let swapped = Bytes.copy ct in
  Bytes.blit ct 8 swapped 16 8;
  Bytes.blit ct 16 swapped 8 8;
  let dec = Crypto.Mode.pcbc_decrypt sched ~iv swapped in
  Alcotest.(check bool) "blocks 1,2 garbled"
    false
    (Bytes.equal (Bytes.sub dec 8 16) (Bytes.sub pt 8 16));
  Alcotest.(check bool) "tail blocks survive the swap"
    true
    (Bytes.equal (Bytes.sub dec 32 16) (Bytes.sub pt 32 16))

let cbc_blockswap_propagates () =
  (* Contrast: in CBC a swap garbles the swapped blocks and their successors
     only locally too, but the *xor-cancellation* of PCBC (tail fully intact
     including block 3) does not hold for CBC block 3. *)
  let rng = Util.Rng.create 8L in
  let pt = Util.Rng.bytes rng 48 in
  let ct = Crypto.Mode.cbc_encrypt sched ~iv pt in
  let swapped = Bytes.copy ct in
  Bytes.blit ct 8 swapped 16 8;
  Bytes.blit ct 16 swapped 8 8;
  let dec = Crypto.Mode.cbc_decrypt sched ~iv swapped in
  Alcotest.(check bool) "block 3 garbled under cbc"
    false
    (Bytes.equal (Bytes.sub dec 24 8) (Bytes.sub pt 24 8))

let pad_unpad_prop =
  QCheck.Test.make ~name:"pad/unpad roundtrip" ~count:500 (QCheck.make gen_payload)
    (fun payload ->
      match Crypto.Mode.unpad (Crypto.Mode.pad payload) with
      | Some b -> Bytes.equal b payload
      | None -> false)

let suite_modes =
  [ QCheck_alcotest.to_alcotest
      (mode_roundtrip "ecb roundtrip" (Crypto.Mode.ecb_encrypt sched) (Crypto.Mode.ecb_decrypt sched));
    QCheck_alcotest.to_alcotest
      (mode_roundtrip "cbc roundtrip" (Crypto.Mode.cbc_encrypt sched ~iv) (Crypto.Mode.cbc_decrypt sched ~iv));
    QCheck_alcotest.to_alcotest
      (mode_roundtrip "pcbc roundtrip" (Crypto.Mode.pcbc_encrypt sched ~iv) (Crypto.Mode.pcbc_decrypt sched ~iv));
    QCheck_alcotest.to_alcotest cbc_prefix_property;
    Alcotest.test_case "pcbc block swap locality" `Quick pcbc_blockswap;
    Alcotest.test_case "cbc block swap propagates" `Quick cbc_blockswap_propagates;
    QCheck_alcotest.to_alcotest pad_unpad_prop ]

(* ------------------------------------------------------------------ *)
(* Equivalence: the table-driven core and the streaming modes must     *)
(* compute exactly what the original permute-per-round code computed.  *)
(* ------------------------------------------------------------------ *)

let block_equiv_prop =
  QCheck.Test.make ~name:"table-driven DES matches reference" ~count:300
    QCheck.(pair (bytes_of_size (Gen.return 8)) (bytes_of_size (Gen.return 8)))
    (fun (key, block) ->
      let k = Crypto.Des.schedule key in
      let ct = Crypto.Des.encrypt_block k block in
      Bytes.equal ct (Crypto.Des.Reference.encrypt_block k block)
      && Bytes.equal block (Crypto.Des.Reference.decrypt_block k ct)
      && Bytes.equal block (Crypto.Des.decrypt_block k ct))

let i64_entry_points () =
  let rng = Util.Rng.create 99L in
  for _ = 1 to 100 do
    let k = Crypto.Des.schedule (Util.Rng.bytes rng 8) in
    let block = Util.Rng.bytes rng 8 in
    let v = Bytes.get_int64_be block 0 in
    let ct = Crypto.Des.encrypt_block k block in
    Alcotest.(check int64) "encrypt_block_i64 agrees with bytes entry point"
      (Bytes.get_int64_be ct 0)
      (Crypto.Des.encrypt_block_i64 k v);
    Alcotest.(check int64) "decrypt_block_i64 inverts" v
      (Crypto.Des.decrypt_block_i64 k (Bytes.get_int64_be ct 0))
  done

(* Reference implementations of the three modes, composed block-by-block
   from [Des.Reference] exactly as the original allocating code did. *)

let xor8 a b =
  let out = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set out i
      (Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))
  done;
  out

let ref_ecb_encrypt k pt =
  let out = Bytes.create (Bytes.length pt) in
  for i = 0 to (Bytes.length pt / 8) - 1 do
    let c = Crypto.Des.Reference.encrypt_block k (Bytes.sub pt (i * 8) 8) in
    Bytes.blit c 0 out (i * 8) 8
  done;
  out

let ref_cbc_encrypt k ~iv pt =
  let out = Bytes.create (Bytes.length pt) in
  let chain = ref iv in
  for i = 0 to (Bytes.length pt / 8) - 1 do
    let p = Bytes.sub pt (i * 8) 8 in
    let c = Crypto.Des.Reference.encrypt_block k (xor8 p !chain) in
    Bytes.blit c 0 out (i * 8) 8;
    chain := c
  done;
  out

let ref_pcbc_encrypt k ~iv pt =
  let out = Bytes.create (Bytes.length pt) in
  let chain = ref iv in
  for i = 0 to (Bytes.length pt / 8) - 1 do
    let p = Bytes.sub pt (i * 8) 8 in
    let c = Crypto.Des.Reference.encrypt_block k (xor8 p !chain) in
    Bytes.blit c 0 out (i * 8) 8;
    chain := xor8 p c
  done;
  out

let check_buf name expect got =
  Alcotest.(check bool) name true (Bytes.equal expect got)

let modes_equiv_all_lengths () =
  (* Every block-aligned length from 8 to 1024: the streaming modes agree
     with the reference composition, decryption inverts, and the in-place
     [_into] form (dst == src) computes the same bytes. *)
  let rng = Util.Rng.create 4242L in
  let k = Crypto.Des.schedule (Crypto.Des.random_key rng) in
  let iv = Util.Rng.bytes rng 8 in
  let len = ref 8 in
  while !len <= 1024 do
    let pt = Util.Rng.bytes rng !len in
    let tag mode = Printf.sprintf "%s len=%d" mode !len in
    let ct_ecb = Crypto.Mode.ecb_encrypt k pt in
    check_buf (tag "ecb equiv") (ref_ecb_encrypt k pt) ct_ecb;
    check_buf (tag "ecb roundtrip") pt (Crypto.Mode.ecb_decrypt k ct_ecb);
    let buf = Bytes.copy pt in
    Crypto.Mode.ecb_encrypt_into k ~src:buf ~dst:buf;
    check_buf (tag "ecb in-place encrypt") ct_ecb buf;
    Crypto.Mode.ecb_decrypt_into k ~src:buf ~dst:buf;
    check_buf (tag "ecb in-place decrypt") pt buf;
    let ct_cbc = Crypto.Mode.cbc_encrypt k ~iv pt in
    check_buf (tag "cbc equiv") (ref_cbc_encrypt k ~iv pt) ct_cbc;
    check_buf (tag "cbc roundtrip") pt (Crypto.Mode.cbc_decrypt k ~iv ct_cbc);
    let buf = Bytes.copy pt in
    Crypto.Mode.cbc_encrypt_into k ~iv ~src:buf ~dst:buf;
    check_buf (tag "cbc in-place encrypt") ct_cbc buf;
    Crypto.Mode.cbc_decrypt_into k ~iv ~src:buf ~dst:buf;
    check_buf (tag "cbc in-place decrypt") pt buf;
    let ct_pcbc = Crypto.Mode.pcbc_encrypt k ~iv pt in
    check_buf (tag "pcbc equiv") (ref_pcbc_encrypt k ~iv pt) ct_pcbc;
    check_buf (tag "pcbc roundtrip") pt (Crypto.Mode.pcbc_decrypt k ~iv ct_pcbc);
    let buf = Bytes.copy pt in
    Crypto.Mode.pcbc_encrypt_into k ~iv ~src:buf ~dst:buf;
    check_buf (tag "pcbc in-place encrypt") ct_pcbc buf;
    Crypto.Mode.pcbc_decrypt_into k ~iv ~src:buf ~dst:buf;
    check_buf (tag "pcbc in-place decrypt") pt buf;
    len := !len + 8
  done

let into_rejects_bad_lengths () =
  let k = sched in
  let raises f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "non-multiple of 8" true
    (raises (fun () ->
         Crypto.Mode.ecb_encrypt_into k ~src:(Bytes.create 12) ~dst:(Bytes.create 12)));
  Alcotest.(check bool) "length mismatch" true
    (raises (fun () ->
         Crypto.Mode.cbc_encrypt_into k ~iv ~src:(Bytes.create 16) ~dst:(Bytes.create 8)))

let suite_equiv =
  [ QCheck_alcotest.to_alcotest block_equiv_prop;
    Alcotest.test_case "i64 entry points" `Quick i64_entry_points;
    Alcotest.test_case "modes equiv + roundtrip, lengths 8..1024" `Quick
      modes_equiv_all_lengths;
    Alcotest.test_case "_into rejects bad lengths" `Quick into_rejects_bad_lengths ]

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc_known () =
  (* Standard check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int) "check value" 0xCBF43926
    (Crypto.Crc32.bytes_digest (Bytes.of_string "123456789"));
  Alcotest.(check int) "empty" 0 (Crypto.Crc32.bytes_digest Bytes.empty)

let crc_linearity =
  (* crc(a xor b xor c) = crc(a) xor crc(b) xor crc(c) for equal lengths:
     the linearity the paper's cut-and-paste forging rests on. *)
  QCheck.Test.make ~name:"crc32 linearity" ~count:200 (QCheck.int_range 1 64)
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int n) in
      let a = Util.Rng.bytes rng n and b = Util.Rng.bytes rng n and c = Util.Rng.bytes rng n in
      let ( ^^ ) = Util.Bytesutil.xor in
      Crypto.Crc32.bytes_digest (a ^^ b ^^ c)
      = Crypto.Crc32.bytes_digest a lxor Crypto.Crc32.bytes_digest b
        lxor Crypto.Crc32.bytes_digest c)

let crc_forge_prop =
  QCheck.Test.make ~name:"crc32 forgery hits any target" ~count:300
    QCheck.(pair (make gen_payload) (int_bound 0xFFFFFF))
    (fun (prefix, seed) ->
      let target = (seed * 2654435761) land 0xFFFFFFFF in
      let patch = Crypto.Crc32.forge ~prefix ~target in
      Crypto.Crc32.bytes_digest (Bytes.cat prefix patch) = target)

let suite_crc =
  [ Alcotest.test_case "known vectors" `Quick crc_known;
    QCheck_alcotest.to_alcotest crc_linearity;
    QCheck_alcotest.to_alcotest crc_forge_prop ]

(* ------------------------------------------------------------------ *)
(* MD4                                                                 *)
(* ------------------------------------------------------------------ *)

let md4_rfc () =
  let check s expected =
    Alcotest.(check string) s expected (Crypto.Md4.hex_digest (Bytes.of_string s))
  in
  check "" "31d6cfe0d16ae931b73c59d7e0c089c0";
  check "a" "bde52cb31de33e46245e05fbdbd6fb24";
  check "abc" "a448017aaf21d8525fc10ae87aa6729d";
  check "message digest" "d9130a8164549fe818874806e1c7014b";
  check "abcdefghijklmnopqrstuvwxyz" "d79e1c308aa5bbcdeea8ed63df412da9";
  check "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    "043f8582f241db351ce627e153e7f0e4";
  check
    "12345678901234567890123456789012345678901234567890123456789012345678901234567890"
    "e33b4ddc9c38f2199c3e7b164fcc0536"

let suite_md4 = [ Alcotest.test_case "rfc 1320 vectors" `Quick md4_rfc ]

(* ------------------------------------------------------------------ *)
(* string_to_key                                                       *)
(* ------------------------------------------------------------------ *)

let s2k_shape () =
  let k = Crypto.Str2key.derive "CHANGEME" in
  Alcotest.(check int) "8 bytes" 8 (Bytes.length k);
  Alcotest.(check bool) "parity fixed" true (Bytes.equal k (Crypto.Des.fix_parity k));
  Alcotest.(check bool) "not weak" false (Crypto.Des.is_weak k);
  Alcotest.(check bool) "deterministic" true
    (Bytes.equal k (Crypto.Str2key.derive "CHANGEME"));
  Alcotest.(check bool) "distinct passwords differ" false
    (Bytes.equal k (Crypto.Str2key.derive "changeme"))

let s2k_never_weak =
  QCheck.Test.make ~name:"derived keys never weak" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 24))
    (fun pw ->
      let k = Crypto.Str2key.derive pw in
      (not (Crypto.Des.is_weak k)) && Bytes.equal k (Crypto.Des.fix_parity k))

let suite_s2k =
  [ Alcotest.test_case "shape" `Quick s2k_shape; QCheck_alcotest.to_alcotest s2k_never_weak ]

(* ------------------------------------------------------------------ *)
(* Checksum dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let checksum_classification () =
  Alcotest.(check bool) "crc32 weak" false (Crypto.Checksum.collision_proof Crc32);
  Alcotest.(check bool) "md4 strong" true (Crypto.Checksum.collision_proof Md4);
  Alcotest.(check bool) "md4-des strong" true (Crypto.Checksum.collision_proof Md4_des)

let checksum_forge () =
  let original = Bytes.of_string "legitimate TGS request body" in
  let tampered = Bytes.of_string "tampered! TGS request body with ENC-TKT-IN-SKEY" in
  (match Crypto.Checksum.forge_to_match Crc32 ~original ~tampered_prefix:tampered with
  | None -> Alcotest.fail "crc32 should be forgeable"
  | Some filler ->
      let forged = Bytes.cat tampered filler in
      Alcotest.(check bool) "forged crc matches" true
        (Util.Bytesutil.equal
           (Crypto.Checksum.compute Crc32 ~key:Bytes.empty original)
           (Crypto.Checksum.compute Crc32 ~key:Bytes.empty forged)));
  Alcotest.(check bool) "md4 not forgeable" true
    (Crypto.Checksum.forge_to_match Md4 ~original ~tampered_prefix:tampered = None)

let suite_checksum =
  [ Alcotest.test_case "classification" `Quick checksum_classification;
    Alcotest.test_case "forgery" `Quick checksum_forge ]

(* ------------------------------------------------------------------ *)
(* Bignum                                                              *)
(* ------------------------------------------------------------------ *)

let bn = Crypto.Bignum.of_int
let gen_small = QCheck.int_bound 1_000_000_000

let bignum_int_oracle =
  QCheck.Test.make ~name:"bignum agrees with int arithmetic" ~count:1000
    QCheck.(pair gen_small gen_small)
    (fun (a, b) ->
      let open Crypto.Bignum in
      let ( = ) = equal in
      add (bn a) (bn b) = bn (a + b)
      && mul (bn a) (bn b) = bn (a * b)
      && (b == 0
          || let q, r = divmod (bn a) (bn b) in
             q = bn (a / b) && r = bn (a mod b))
      && (a < b || sub (bn a) (bn b) = bn (a - b)))

let bignum_ring_axioms =
  QCheck.Test.make ~name:"bignum ring axioms at width" ~count:200
    QCheck.(triple (int_range 1 120) small_nat small_nat)
    (fun (bits, s1, s2) ->
      let rng = Util.Rng.create (Int64.of_int ((s1 * 65537) + s2)) in
      let open Crypto.Bignum in
      let a = random rng ~bits and b = random rng ~bits and c = random rng ~bits in
      equal (add a b) (add b a)
      && equal (mul a b) (mul b a)
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (sub (add a b) b) a)

let bignum_divmod_prop =
  QCheck.Test.make ~name:"divmod identity" ~count:200
    QCheck.(triple (int_range 1 200) small_nat small_nat)
    (fun (bits, s1, s2) ->
      let rng = Util.Rng.create (Int64.of_int ((s1 * 31337) + s2 + 1)) in
      let open Crypto.Bignum in
      let a = random rng ~bits in
      let b = add (random rng ~bits:(max 1 (bits / 2))) one in
      let q, r = divmod a b in
      equal a (add (mul q b) r) && compare r b < 0)

let bignum_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 (QCheck.int_range 0 300) (fun bits ->
      let rng = Util.Rng.create (Int64.of_int (bits + 99)) in
      let open Crypto.Bignum in
      let a = random rng ~bits:(max 1 bits) in
      equal a (of_hex (to_hex a)) && equal a (of_bytes_be (to_bytes_be a)))

let bignum_modpow () =
  let open Crypto.Bignum in
  (* 2^10 mod 1000 = 24 *)
  Alcotest.(check bool) "2^10 mod 1000" true
    (equal (mod_pow ~base:(bn 2) ~exp:(bn 10) ~modulus:(bn 1000)) (bn 24));
  (* Fermat: 7^(p-1) = 1 mod p for p = 1000003 *)
  Alcotest.(check bool) "fermat" true
    (equal (mod_pow ~base:(bn 7) ~exp:(bn 1_000_002) ~modulus:(bn 1_000_003)) one)

let bignum_primality () =
  let rng = Util.Rng.create 1234L in
  let open Crypto.Bignum in
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p ^ " prime") true
        (is_probable_prime rng (bn p)))
    [ 2; 3; 5; 65521; 1048573; 16777213; 0xFFFFFC7; 1_000_003 ];
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c ^ " composite") false
        (is_probable_prime rng (bn c)))
    [ 1; 4; 9; 65519 * 3; 1048573 * 7 ];
  (* Mersenne primes used by the DH groups. *)
  List.iter
    (fun e ->
      let p = sub (shift_left one e) one in
      Alcotest.(check bool) (Printf.sprintf "2^%d-1 prime" e) true
        (is_probable_prime rng p))
    [ 61; 89; 107; 127 ]

let suite_bignum =
  [ QCheck_alcotest.to_alcotest bignum_int_oracle;
    QCheck_alcotest.to_alcotest bignum_ring_axioms;
    QCheck_alcotest.to_alcotest bignum_divmod_prop;
    QCheck_alcotest.to_alcotest bignum_hex_roundtrip;
    Alcotest.test_case "modpow" `Quick bignum_modpow;
    Alcotest.test_case "primality" `Quick bignum_primality ]

(* ------------------------------------------------------------------ *)
(* DH and discrete log                                                 *)
(* ------------------------------------------------------------------ *)

let dh_agreement () =
  let rng = Util.Rng.create 5L in
  List.iter
    (fun grp ->
      let alice = Crypto.Dh.generate rng grp and bob = Crypto.Dh.generate rng grp in
      let s1 = Crypto.Dh.shared_secret grp alice bob.public in
      let s2 = Crypto.Dh.shared_secret grp bob alice.public in
      Alcotest.(check bool) (grp.name ^ " agreement") true (Crypto.Bignum.equal s1 s2);
      let k = Crypto.Dh.secret_to_key grp s1 in
      Alcotest.(check int) (grp.name ^ " key size") 8 (Bytes.length k))
    [ Crypto.Dh.toy_group ~bits:16; Crypto.Dh.toy_group ~bits:24;
      Crypto.Dh.toy_group ~bits:31; Crypto.Dh.mersenne_group ~exponent:61;
      Crypto.Dh.mersenne_group ~exponent:127 ]

let dh_toy_primes_are_prime () =
  let rng = Util.Rng.create 6L in
  List.iter
    (fun bits ->
      let grp = Crypto.Dh.toy_group ~bits in
      Alcotest.(check bool) (grp.name ^ " prime") true
        (Crypto.Bignum.is_probable_prime rng grp.p))
    [ 16; 20; 24; 28; 31; 36; 40 ]

let bsgs_cracks_toy () =
  let rng = Util.Rng.create 77L in
  List.iter
    (fun bits ->
      let grp = Crypto.Dh.toy_group ~bits in
      let kp = Crypto.Dh.generate rng grp in
      match Crypto.Dlog.baby_step_giant_step grp ~target:kp.public with
      | None -> Alcotest.fail (grp.name ^ ": bsgs failed")
      | Some x ->
          Alcotest.(check bool)
            (grp.name ^ " recovered exponent reproduces public value") true
            (Crypto.Bignum.equal
               (Crypto.Bignum.mod_pow ~base:grp.g ~exp:x ~modulus:grp.p)
               kp.public))
    [ 16; 20; 24 ]

let rho_cracks_toy () =
  let rng = Util.Rng.create 99L in
  let grp = Crypto.Dh.toy_group ~bits:24 in
  let kp = Crypto.Dh.generate rng grp in
  let rec attempt n =
    if n = 0 then Alcotest.fail "pollard rho kept failing"
    else
      match Crypto.Dlog.pollard_rho rng grp ~target:kp.public with
      | Some x ->
          Alcotest.(check bool) "rho exponent reproduces public value" true
            (Crypto.Bignum.equal
               (Crypto.Bignum.mod_pow ~base:grp.g ~exp:x ~modulus:grp.p)
               kp.public)
      | None -> attempt (n - 1)
  in
  attempt 5

let kangaroo_cracks_short_exponents () =
  (* A 127-bit modulus is no shelter for a 20-bit secret exponent. *)
  let grp = Crypto.Dh.mersenne_group ~exponent:127 in
  let rng = Util.Rng.create 0x6a6aL in
  let rec attempt n =
    if n = 0 then Alcotest.fail "kangaroo kept missing"
    else begin
      let x = 1 + Util.Rng.int rng ((1 lsl 20) - 1) in
      let target =
        Crypto.Bignum.mod_pow ~base:grp.g ~exp:(Crypto.Bignum.of_int x) ~modulus:grp.p
      in
      match Crypto.Dlog.kangaroo grp ~target ~max_exp:(1 lsl 20) with
      | Some found ->
          Alcotest.(check bool) "exponent recovered" true
            (Crypto.Bignum.equal found (Crypto.Bignum.of_int x))
      | None -> attempt (n - 1)
    end
  in
  attempt 6

let suite_dh =
  [ Alcotest.test_case "agreement" `Quick dh_agreement;
    Alcotest.test_case "kangaroo cracks short exponents" `Slow
      kangaroo_cracks_short_exponents;
    Alcotest.test_case "toy primes are prime" `Quick dh_toy_primes_are_prime;
    Alcotest.test_case "bsgs cracks toy groups" `Quick bsgs_cracks_toy;
    Alcotest.test_case "pollard rho cracks toy group" `Slow rho_cracks_toy ]

(* ------------------------------------------------------------------ *)
(* PRF / key derivation                                                *)
(* ------------------------------------------------------------------ *)

let prf_tests () =
  let rng = Util.Rng.create 11L in
  let multi = Crypto.Des.random_key rng in
  let c = Util.Rng.bytes rng 8 and s = Util.Rng.bytes rng 8 in
  let k1 = Crypto.Prf.negotiate_session_key ~multi ~client_part:c ~server_part:s in
  let k2 = Crypto.Prf.negotiate_session_key ~multi ~client_part:c ~server_part:s in
  Alcotest.(check bool) "deterministic" true (Bytes.equal k1 k2);
  let k3 = Crypto.Prf.negotiate_session_key ~multi ~client_part:s ~server_part:c in
  Alcotest.(check bool) "xor symmetric in parts" true (Bytes.equal k1 k3);
  let t1 = Crypto.Prf.tag_key ~tag:"login" multi and t2 = Crypto.Prf.tag_key ~tag:"tgs" multi in
  Alcotest.(check bool) "tags separate keys" false (Bytes.equal t1 t2);
  Alcotest.(check bool) "tagged differs from base" false (Bytes.equal t1 multi)

let suite_prf = [ Alcotest.test_case "negotiation and tagging" `Quick prf_tests ]

(* ------------------------------------------------------------------ *)
(* Deeper algorithm properties                                         *)
(* ------------------------------------------------------------------ *)

let complement b = Bytes.map (fun c -> Char.chr (lnot (Char.code c) land 0xff)) b

let des_complementation =
  (* The classic DES complementation property: E_~k(~p) = ~E_k(p). A strong
     correctness check — it only holds if the whole Feistel/key-schedule
     pipeline is right. *)
  QCheck.Test.make ~name:"des complementation property" ~count:200
    QCheck.(pair (bytes_of_size (QCheck.Gen.return 8)) (bytes_of_size (QCheck.Gen.return 8)))
    (fun (key, pt) ->
      let c1 = Crypto.Des.encrypt_block (Crypto.Des.schedule key) pt in
      let c2 =
        Crypto.Des.encrypt_block (Crypto.Des.schedule (complement key)) (complement pt)
      in
      Bytes.equal (complement c1) c2)

let des_avalanche =
  (* Flipping one plaintext bit flips a lot of ciphertext bits (on average
     half; we assert a sane lower bound). *)
  QCheck.Test.make ~name:"des avalanche" ~count:100
    QCheck.(pair (bytes_of_size (QCheck.Gen.return 8)) (int_bound 63))
    (fun (pt, bit) ->
      let k = Crypto.Des.schedule (hex "8f3b2ac51d9e6074") in
      let pt' = Bytes.copy pt in
      let byte = bit / 8 and off = bit mod 8 in
      Bytes.set pt' byte (Char.chr (Char.code (Bytes.get pt' byte) lxor (1 lsl off)));
      let c1 = Crypto.Des.encrypt_block k pt and c2 = Crypto.Des.encrypt_block k pt' in
      let diff = ref 0 in
      for i = 0 to 7 do
        let x = Char.code (Bytes.get c1 i) lxor Char.code (Bytes.get c2 i) in
        for j = 0 to 7 do
          if (x lsr j) land 1 = 1 then incr diff
        done
      done;
      !diff >= 10 (* far above chance for a broken implementation *))

let md4_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries are the classic
     place paddings go wrong; check self-consistency and distinctness. *)
  let digests =
    List.map
      (fun n -> Crypto.Md4.hex_digest (Bytes.make n 'a'))
      [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 121 ]
  in
  let uniq = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length uniq);
  (* And a known vector straddling one boundary: 56 a's. *)
  Alcotest.(check string) "56 a's stable"
    (Crypto.Md4.hex_digest (Bytes.make 56 'a'))
    (Crypto.Md4.hex_digest (Bytes.cat (Bytes.make 28 'a') (Bytes.make 28 'a')))

let crc_forge_state_prop =
  (* The register-steering primitive behind the KRB_SAFE substitution:
     advancing from any state over the patch lands exactly on the target
     state. *)
  QCheck.Test.make ~name:"crc32 forge_state" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 40)) (string_of_size (QCheck.Gen.int_range 0 40)))
    (fun (a, b) ->
      let sa = Crypto.Crc32.update Crypto.Crc32.init (Bytes.of_string a) in
      let sb = Crypto.Crc32.update Crypto.Crc32.init (Bytes.of_string b) in
      let patch = Crypto.Crc32.forge_state ~from_state:sa ~to_state:sb in
      Crypto.Crc32.update sa patch = sb)

let bignum_shift_props =
  QCheck.Test.make ~name:"bignum shifts" ~count:300
    QCheck.(pair (int_range 0 120) (int_range 0 90))
    (fun (bits, sh) ->
      let rng = Util.Rng.create (Int64.of_int ((bits * 1000) + sh)) in
      let open Crypto.Bignum in
      let a = random rng ~bits:(max 1 bits) in
      equal (shift_right (shift_left a sh) sh) a
      && equal (shift_left a sh) (mul a (mod_pow ~base:two ~exp:(of_int sh) ~modulus:(shift_left one 400))))

let bignum_gcd_props =
  QCheck.Test.make ~name:"bignum gcd divides both" ~count:200
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let open Crypto.Bignum in
      let g = gcd (of_int a) (of_int b) in
      match to_int_opt g with
      | Some gi -> gi > 0 && a mod gi = 0 && b mod gi = 0
      | None -> false)

let dh_public_in_range =
  QCheck.Test.make ~name:"dh public values lie in (1, p)" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Util.Rng.create (Int64.of_int (seed + 3)) in
      let grp = Crypto.Dh.toy_group ~bits:31 in
      let kp = Crypto.Dh.generate rng grp in
      Crypto.Bignum.compare kp.public grp.p < 0
      && Crypto.Bignum.compare kp.public Crypto.Bignum.one > 0)

let suite_deep =
  [ QCheck_alcotest.to_alcotest des_complementation;
    QCheck_alcotest.to_alcotest des_avalanche;
    Alcotest.test_case "md4 padding boundaries" `Quick md4_padding_boundaries;
    QCheck_alcotest.to_alcotest crc_forge_state_prop;
    QCheck_alcotest.to_alcotest bignum_shift_props;
    QCheck_alcotest.to_alcotest bignum_gcd_props;
    QCheck_alcotest.to_alcotest dh_public_in_range ]

let () =
  Alcotest.run "crypto"
    [ ("des", suite_des); ("modes", suite_modes); ("equiv", suite_equiv);
      ("crc32", suite_crc);
      ("md4", suite_md4); ("str2key", suite_s2k); ("checksum", suite_checksum);
      ("bignum", suite_bignum); ("dh", suite_dh); ("prf", suite_prf);
      ("deep", suite_deep) ]
