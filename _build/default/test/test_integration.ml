(* A day at Athena: one simulation carrying many users, several services,
   background time synchronization, password changes, forwarding — and an
   adversary mounting attacks in the middle of the honest traffic. The
   assertions check that honest work succeeded, the attacks landed exactly
   where the profile says they should, and nothing interfered with anything
   else. *)

open Kerberos

let realm = "ATHENA"

type world = {
  eng : Sim.Engine.t;
  net : Sim.Net.t;
  db : Kdb.t;
  kdc_host : Sim.Host.t;
  kdcs : (string * Sim.Addr.t) list;
  rng : Util.Rng.t;
  mutable errors : string list;
}

let fail_soft w what = function
  | Ok v -> Some v
  | Error e ->
      w.errors <- (what ^ ": " ^ e) :: w.errors;
      None

let day_at_athena (profile : Profile.t) () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng in
  let quad = Sim.Addr.of_quad in
  let kdc_host = Sim.Host.create ~name:"kerberos" ~ips:[ quad 10 0 0 1 ] () in
  let time_host = Sim.Host.create ~name:"timehost" ~ips:[ quad 10 0 0 2 ] () in
  let mail_host = Sim.Host.create ~name:"po10" ~ips:[ quad 10 0 0 20 ] () in
  let file_host = Sim.Host.create ~name:"fs1" ~ips:[ quad 10 0 0 21 ] () in
  let adm_host = Sim.Host.create ~name:"adm" ~ips:[ quad 10 0 0 23 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; time_host; mail_host; file_host; adm_host ];
  let db = Kdb.create () in
  let rng = Util.Rng.create 0xDA7L in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  let users = Workloads.Passwords.population rng ~n:8 ~weak_fraction:0.4 in
  List.iter
    (fun u ->
      Kdb.add_user db (Principal.user ~realm u.Workloads.Passwords.name)
        ~password:u.Workloads.Passwords.password)
    users;
  let mail_p = Principal.service ~realm "pop" ~host:"po10" in
  let file_p = Principal.service ~realm "fileserv" ~host:"fs1" in
  let kpw_p = Principal.service ~realm "kpasswd" ~host:"adm" in
  let mail_k = Crypto.Des.random_key rng in
  let file_k = Crypto.Des.random_key rng in
  let kpw_k = Crypto.Des.random_key rng in
  Kdb.add_service db mail_p ~key:mail_k;
  Kdb.add_service db file_p ~key:file_k;
  Kdb.add_service db kpw_p ~key:kpw_k;
  let kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  Timesvc.install_server net time_host ();
  let mail = Services.Mailserver.install net mail_host ~profile ~principal:mail_p ~key:mail_k ~port:110 in
  let file = Services.Fileserver.install net file_host ~profile ~principal:file_p ~key:file_k ~port:600 in
  let kpw =
    Services.Kpasswd.install net adm_host ~profile ~principal:kpw_p ~key:kpw_k
      ~port:464 ~db
  in
  let kdcs = [ (realm, Sim.Host.primary_ip kdc_host) ] in
  let w = { eng; net; db; kdc_host; kdcs; rng; errors = [] } in
  let completed = ref 0 in
  (* Every user gets a workstation and runs a morning routine: sync the
     clock, log in, file work, mail check. *)
  List.iteri
    (fun i u ->
      let name = u.Workloads.Passwords.name in
      let ws =
        Sim.Host.create
          ~clock_offset:(Util.Rng.float rng 4.0 -. 2.0)
          ~name:("ws-" ^ name)
          ~ips:[ quad 10 0 1 (10 + i) ]
          ()
      in
      Sim.Net.attach net ws;
      Services.Mailserver.deliver mail ~user:name (Bytes.of_string ("note for " ^ name));
      (* The routine, flattened into named steps to keep the CPS readable. *)
      let step what r k = match fail_soft w (name ^ " " ^ what) r with None -> () | Some v -> k v in
      let check_mail c chan =
        Client.call_priv c chan (Bytes.of_string "COUNT") ~k:(fun r ->
            step "count" r (fun _ -> incr completed))
      in
      let mail_session c =
        Client.get_ticket c ~service:mail_p (fun r ->
            step "mail ticket" r (fun mc ->
                Client.ap_exchange c mc ~dst:(Sim.Host.primary_ip mail_host) ~dport:110
                  (fun r -> step "mail ap" r (fun mchan -> check_mail c mchan))))
      in
      let file_work c =
        Client.get_ticket c ~service:file_p (fun r ->
            step "file ticket" r (fun creds ->
                Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip file_host)
                  ~dport:600 (fun r ->
                    step "file ap" r (fun chan ->
                        Client.call_priv c chan
                          (Bytes.of_string (Printf.sprintf "WRITE /u/%s/diary kept" name))
                          ~k:(fun r -> step "write" r (fun _ -> mail_session c))))))
      in
      Sim.Engine.schedule eng ~at:(float_of_int i *. 13.0) (fun () ->
          Timesvc.sync net ws ~server:(Sim.Host.primary_ip time_host)
            ~on_done:(fun () ->
              let c =
                Client.create ~seed:(Int64.of_int (400 + i)) net ws ~profile ~kdcs
                  (Principal.user ~realm name)
              in
              Client.login c ~password:u.Workloads.Passwords.password (fun r ->
                  step "login" r (fun _ -> file_work c)))
            ()))
    users;
  (* One user changes a weak password mid-morning; policy rejects a
     dictionary word first, accepts a decent one after. *)
  let u0 = List.hd users in
  Sim.Engine.schedule eng ~at:200.0 (fun () ->
      let ws0 = Sim.Host.create ~name:"ws-chg" ~ips:[ quad 10 0 2 9 ] () in
      Sim.Net.attach net ws0;
      let c =
        Client.create ~seed:777L net ws0 ~profile ~kdcs
          (Principal.user ~realm u0.Workloads.Passwords.name)
      in
      Client.login c ~password:u0.Workloads.Passwords.password (fun r ->
          match fail_soft w "chg login" r with
          | None -> ()
          | Some _ ->
              Client.get_ticket c ~service:kpw_p (fun r ->
                  match fail_soft w "chg ticket" r with
                  | None -> ()
                  | Some creds ->
                      Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip adm_host)
                        ~dport:464 (fun r ->
                          match fail_soft w "chg ap" r with
                          | None -> ()
                          | Some chan ->
                              Services.Kpasswd.change_password c chan
                                ~new_password:"dragon" ~k:(fun r ->
                                  (match r with
                                  | Error _ -> () (* policy refusal expected *)
                                  | Ok () ->
                                      w.errors <- "weak password accepted" :: w.errors);
                                  Services.Kpasswd.change_password c chan
                                    ~new_password:"ample.turbine.42" ~k:(fun r ->
                                      ignore (fail_soft w "good change" r)))))));
  (* The adversary taps everything and replays a captured mail AP_REQ late
     in the morning. *)
  let adv = Sim.Adversary.attach net in
  Sim.Adversary.start_tap adv;
  Sim.Engine.schedule eng ~at:150.0 (fun () ->
      match
        Sim.Adversary.capture_matching adv (fun p ->
            p.Sim.Packet.dport = 110
            &&
            match Frames.unwrap p.Sim.Packet.payload with
            | Some (k, _) -> k = Frames.ap_req
            | None -> false)
      with
      | pkt :: _ ->
          Sim.Adversary.spoof adv ~src:pkt.Sim.Packet.src ~sport:47001
            ~dst:(Sim.Host.primary_ip mail_host) ~dport:110 pkt.Sim.Packet.payload
      | [] -> w.errors <- "adversary found nothing to replay" :: w.errors);
  Sim.Engine.run eng;
  (* --- assertions --- *)
  Alcotest.(check (list string)) "no honest failures" [] w.errors;
  Alcotest.(check int) "all users completed the routine" (List.length users) !completed;
  Alcotest.(check int) "one policy refusal" 1 (Services.Kpasswd.changes_refused kpw);
  Alcotest.(check int) "one change applied" 1 (Services.Kpasswd.changes_applied kpw);
  (* The old password no longer works; the new one does. *)
  let ws9 = Sim.Host.create ~name:"ws9" ~ips:[ quad 10 0 2 50 ] () in
  Sim.Net.attach net ws9;
  let c9 =
    Client.create ~seed:901L net ws9 ~profile ~kdcs
      (Principal.user ~realm (List.hd users).Workloads.Passwords.name)
  in
  let old_ok = ref None and new_ok = ref None in
  Client.login c9 ~password:(List.hd users).Workloads.Passwords.password (fun r ->
      old_ok := Some (Result.is_ok r);
      Client.login c9 ~password:"ample.turbine.42" (fun r ->
          new_ok := Some (Result.is_ok r)));
  Sim.Engine.run eng;
  Alcotest.(check (option bool)) "old password dead" (Some false) !old_ok;
  Alcotest.(check (option bool)) "new password live" (Some true) !new_ok;
  (* The mid-morning replay: accepted only where the profile is weak. *)
  let mail_sessions = Apserver.sessions_established (Services.Mailserver.apserver mail) in
  let expected_sessions =
    match profile.Profile.ap_auth with
    | Profile.Timestamp _ -> List.length users + 1 (* honest + the replay *)
    | Profile.Challenge_response -> List.length users
  in
  Alcotest.(check int) "replay landed exactly as the profile predicts"
    expected_sessions mail_sessions;
  (* Files were written by their owners, not by the adversary. *)
  List.iter
    (fun u ->
      let name = u.Workloads.Passwords.name in
      match Services.Fileserver.read_file file (Printf.sprintf "/u/%s/diary" name) with
      | Some _ -> ()
      | None -> Alcotest.failf "%s's diary missing" name)
    users

let () =
  Alcotest.run "integration"
    [ ( "day-at-athena",
        [ Alcotest.test_case "v4" `Slow (day_at_athena Profile.v4);
          Alcotest.test_case "v5-draft3" `Slow (day_at_athena Profile.v5_draft3);
          Alcotest.test_case "hardened" `Slow (day_at_athena Profile.hardened) ] ) ]
