(* Benchmark harness: one Bechamel test per performance-relevant row of
   EXPERIMENTS.md — cipher and checksum throughput, string-to-key cost (the
   unit of password-guessing work), modular exponentiation at the modulus
   sizes of E13, protocol exchange costs per profile, CRC forgery cost, and
   replay-cache operations. Results are printed as one table (nanoseconds
   per run, from an OLS fit) and persisted to BENCH_crypto.json so the perf
   trajectory is comparable across PRs.

   With --smoke, every benchmark runs for one iteration on a tiny quota and
   no JSON is written: a compile-and-run guard wired into `dune runtest` so
   bench bit-rot is caught by tier-1. *)

open Bechamel
open Toolkit
open Kerberos

let rng = Util.Rng.create 0xBE4CL

(* --- crypto primitives --- *)

let des_key = Crypto.Des.random_key rng
let sched = Crypto.Des.schedule des_key
let block8 = Util.Rng.bytes rng 8
let buf1k = Util.Rng.bytes rng 1024
let iv = Util.Rng.bytes rng 8

let t_des_block =
  Test.make ~name:"des/encrypt-block" (Staged.stage (fun () -> Crypto.Des.encrypt_block sched block8))

let t_ecb_1k =
  Test.make ~name:"des/ecb-1KiB" (Staged.stage (fun () -> Crypto.Mode.ecb_encrypt sched buf1k))

let t_cbc_1k =
  Test.make ~name:"des/cbc-1KiB" (Staged.stage (fun () -> Crypto.Mode.cbc_encrypt sched ~iv buf1k))

let t_pcbc_1k =
  Test.make ~name:"des/pcbc-1KiB" (Staged.stage (fun () -> Crypto.Mode.pcbc_encrypt sched ~iv buf1k))

let t_md4_1k =
  Test.make ~name:"checksum/md4-1KiB" (Staged.stage (fun () -> Crypto.Md4.digest buf1k))

let t_crc_1k =
  Test.make ~name:"checksum/crc32-1KiB" (Staged.stage (fun () -> Crypto.Crc32.bytes_digest buf1k))

let t_crc_forge =
  Test.make ~name:"checksum/crc32-forge"
    (Staged.stage (fun () -> Crypto.Crc32.forge ~prefix:buf1k ~target:0xDEADBEEF))

let t_str2key =
  Test.make ~name:"password/string-to-key"
    (Staged.stage (fun () -> Crypto.Str2key.derive "candidate.password7"))

(* The attacker's unit of work: derive a key and test it against a recorded
   AS_REP (one dictionary entry). *)
let guess_target =
  let key = Crypto.Str2key.derive "the.real.password" in
  let body =
    { Messages.b_session_key = Crypto.Des.random_key rng; b_nonce = 7L;
      b_server = Principal.tgs ~realm:"ATHENA"; b_issued_at = 0.0;
      b_lifetime = 3600.0; b_ticket = Bytes.make 48 't' }
  in
  Messages.seal_msg Profile.v4 rng ~key ~tag:Messages.tag_as_rep_body
    (Messages.rep_body_to_value ~tag:Messages.tag_as_rep_body body)

let t_guess =
  Test.make ~name:"password/test-one-guess"
    (Staged.stage (fun () ->
         Attacks.Password_guess.try_crack ~profile:Profile.v4
           ~candidates:[ "wrong.guess" ] ~sealed:guess_target ()))

(* --- modular exponentiation (E13b) --- *)

let modexp_test bits =
  let grp = Crypto.Dh.group ~bits in
  let e = Crypto.Bignum.random_below rng grp.Crypto.Dh.p in
  Test.make ~name:(Printf.sprintf "dh/modexp-%db" bits)
    (Staged.stage (fun () ->
         Crypto.Bignum.mod_pow ~base:grp.Crypto.Dh.g ~exp:e ~modulus:grp.Crypto.Dh.p))

let t_modexp_31 = modexp_test 31
let t_modexp_127 = modexp_test 127
let t_modexp_521 = modexp_test 521

(* --- replay cache --- *)

let t_cache =
  let cache = Replay_cache.create ~horizon:600.0 () in
  let n = ref 0 in
  Test.make ~name:"server/replay-cache-insert"
    (Staged.stage (fun () ->
         incr n;
         Replay_cache.check_and_insert cache ~now:(float_of_int !n *. 0.001)
           (Bytes.of_string (string_of_int !n))))

(* --- durability: what the WAL costs on the mutation path --- *)

(* add_service with a fixed key isolates the write path (shard, version
   bump, log append) from string-to-key derivation, which would otherwise
   dominate both rows equally. *)
let kdb_add_test name ~wal =
  let db = Kdb.create ~shards:16 () in
  if wal then Kdb.enable_durability db;
  let key = Crypto.Des.random_key rng in
  let n = ref 0 in
  Test.make ~name:("kdb/" ^ name)
    (Staged.stage (fun () ->
         incr n;
         Kdb.add_service db
           (Principal.service ~realm:"BENCH" (string_of_int !n) ~host:"h")
           ~key))

let t_kdb_add = kdb_add_test "add-no-wal" ~wal:false
let t_kdb_add_wal = kdb_add_test "add-wal" ~wal:true

(* --- whole protocol exchanges per profile (simulated end-to-end) --- *)

let full_session ?(prepare = fun (_ : Attacks.Testbed.t) -> ())
    (profile : Profile.t) =
  let bed = Attacks.Testbed.make ~profile () in
  prepare bed;
  let ok = ref false in
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Attacks.Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
          let creds = Attacks.Testbed.expect "ticket" r in
          Client.ap_exchange bed.victim creds
            ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
            (fun r ->
              let chan = Attacks.Testbed.expect "ap" r in
              Client.call_priv bed.victim chan (Bytes.of_string "LIST")
                ~k:(fun r ->
                  ignore (Attacks.Testbed.expect "priv" r);
                  ok := true))));
  Attacks.Testbed.run bed;
  assert !ok

let session_test (profile : Profile.t) =
  Test.make ~name:("protocol/full-session-" ^ profile.Profile.name)
    (Staged.stage (fun () -> full_session profile))

let t_session_v4 = session_test Profile.v4
let t_session_v5 = session_test Profile.v5_draft3
let t_session_hardened = session_test Profile.hardened

(* --- fault plane: the disabled plane must be free --- *)

let t_faults_none =
  Test.make ~name:"fault-plane/session-no-plane"
    (Staged.stage (fun () -> full_session Profile.v4))

let t_faults_inert =
  Test.make ~name:"fault-plane/session-inert-plane"
    (Staged.stage (fun () ->
         full_session Profile.v4 ~prepare:(fun bed ->
             Sim.Net.attach_faults bed.Attacks.Testbed.net (Sim.Faults.create ()))))

let t_faults_jitter =
  Test.make ~name:"fault-plane/session-jitter-plane"
    (Staged.stage (fun () ->
         full_session Profile.v4 ~prepare:(fun bed ->
             let plane = Sim.Faults.create () in
             Sim.Faults.add_jitter plane ~max_delay:0.002 ();
             Sim.Net.attach_faults bed.Attacks.Testbed.net plane)))

(* --- ablations: the cost of each recommended login mechanism, and of the
   two AP-exchange styles, measured as one whole simulated exchange --- *)

let login_test name (profile : Profile.t) =
  Test.make ~name:("login/" ^ name)
    (Staged.stage (fun () ->
         let bed = Attacks.Testbed.make ~profile () in
         let ok = ref false in
         Client.login bed.victim ~password:bed.victim_password (fun r ->
             ok := Result.is_ok r);
         Attacks.Testbed.run bed;
         assert !ok))

let t_login_password = login_test "password" Profile.v4

let t_login_preauth =
  login_test "password+preauth" { Profile.v4 with Profile.name = "v4p"; preauth = true }

let t_login_handheld =
  login_test "handheld"
    { Profile.v4 with Profile.name = "v4h"; login = Profile.Handheld_challenge }

let t_login_dh61 =
  login_test "dh-61bit"
    { Profile.v4 with Profile.name = "v4d61"; login = Profile.Dh_protected; dh_group_bits = 61 }

let t_login_dh127 =
  login_test "dh-127bit"
    { Profile.v4 with Profile.name = "v4d127"; login = Profile.Dh_protected; dh_group_bits = 127 }

let t_login_full_hardened = login_test "handheld+dh+preauth" Profile.hardened

let ap_test name (profile : Profile.t) =
  Test.make ~name:("ap-exchange/" ^ name)
    (Staged.stage (fun () ->
         (* Login + ticket once per run is unavoidable in a fresh bed; the
            relative difference between the two rows is the AP cost. *)
         let bed = Attacks.Testbed.make ~profile () in
         let ok = ref false in
         Client.login bed.victim ~password:bed.victim_password (fun r ->
             ignore (Attacks.Testbed.expect "login" r);
             Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
                 let creds = Attacks.Testbed.expect "ticket" r in
                 Client.ap_exchange bed.victim creds
                   ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                   (fun r -> ok := Result.is_ok r)));
         Attacks.Testbed.run bed;
         assert !ok))

let t_ap_timestamp = ap_test "timestamp" Profile.v4

let t_ap_cache =
  ap_test "timestamp+cache"
    { Profile.v4 with
      Profile.name = "v4c";
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let t_ap_challenge =
  ap_test "challenge-response"
    { Profile.v4 with Profile.name = "v4cr"; ap_auth = Profile.Challenge_response }

(* --- load smoke: BENCH_load.json schema guard --- *)

(* With --load-smoke, run the loadgen ablation suite at reduced traffic
   (1k users, but far fewer requests than `experiments load`) and assert
   the serialized suite still carries every field EXPERIMENTS.md tells
   operators to read. A schema drift in Loadgen then fails `dune runtest`
   instead of silently breaking downstream consumers of BENCH_load.json. *)
let load_smoke () =
  let cfg =
    { Workloads.Loadgen.default with
      Workloads.Loadgen.active_clients = 50;
      requests_per_client = 20 }
  in
  let suite = Workloads.Loadgen.run_suite cfg in
  let s = Telemetry.Json.to_string (Workloads.Loadgen.suite_to_json suite) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  let required =
    [ "\"main\""; "\"cache_off\""; "\"shard_ablation\"";
      "\"tgs_reduction_factor\""; "\"config\""; "\"sim_seconds\"";
      "\"completed\""; "\"errors\""; "\"as_requests\""; "\"tgs_requests\"";
      "\"ap_exchanges\""; "\"ccache_hits\""; "\"ccache_misses\"";
      "\"as_latency\""; "\"tgs_latency\""; "\"ap_latency\""; "\"p50\"";
      "\"p90\""; "\"p99\""; "\"shard_lookups\""; "\"shard_entries\"";
      "\"shard_balance\""; "\"lookup_balance\"";
      "\"throughput_per_sim_second\""; "\"span_breakdown\"";
      "\"main_timing\""; "\"setup_seconds\""; "\"run_seconds\"";
      "\"sim_events\""; "\"sim_events_per_wall_second\"";
      "\"perf_ablation\""; "\"schedule_cache\""; "\"lightweight\"";
      "\"lazy_users\""; "\"fast_path_speedup\"" ]
  in
  List.iter
    (fun key ->
      if not (contains key) then (
        Printf.eprintf "load smoke: BENCH_load.json schema lost %s\n" key;
        exit 1))
    required;
  let r = suite.Workloads.Loadgen.main in
  assert (r.Workloads.Loadgen.completed > 0);
  assert (r.Workloads.Loadgen.errors = 0);
  assert (Workloads.Loadgen.tgs_reduction suite > 1.0);
  assert (suite.Workloads.Loadgen.main_timing.Workloads.Loadgen.events > 0);
  (* Lightweight telemetry must change nothing the report sees — same
     simulated world, same counts, same histograms — and must not cost
     more than the full collector it strips down. The wall budget is
     generous (25% + 20 ms of jitter allowance over the best of two runs)
     because the claim is "inert", not "faster on every tiny run". *)
  let timed_min cfg =
    let _, t1 = Workloads.Loadgen.run_timed cfg in
    let r, t2 = Workloads.Loadgen.run_timed cfg in
    ( r,
      Float.min t1.Workloads.Loadgen.run_seconds
        t2.Workloads.Loadgen.run_seconds )
  in
  let full_r, full_s = timed_min { cfg with Workloads.Loadgen.lightweight = false } in
  let light_r, light_s = timed_min { cfg with Workloads.Loadgen.lightweight = true } in
  let masked =
    { light_r with Workloads.Loadgen.r_config = full_r.Workloads.Loadgen.r_config }
  in
  if
    not
      (String.equal
         (Telemetry.Json.to_string (Workloads.Loadgen.report_to_json full_r))
         (Telemetry.Json.to_string (Workloads.Loadgen.report_to_json masked)))
  then (
    Printf.eprintf
      "load smoke: lightweight telemetry changed the report — it must be \
       observationally inert\n";
    exit 1);
  let budget = (full_s *. 1.25) +. 0.02 in
  if light_s > budget then (
    Printf.eprintf
      "load smoke: lightweight run took %.3fs vs full %.3fs — exceeds the \
       inert-telemetry budget (%.3fs)\n"
      light_s full_s budget;
    exit 1);
  Printf.printf
    "load smoke: suite ran (%d completed, tgs reduction %.1fx, fast-path \
     speedup %.2fx), schema has all %d keys; lightweight run %.3fs vs full \
     %.3fs (budget %.3fs), reports identical\n"
    r.Workloads.Loadgen.completed
    (Workloads.Loadgen.tgs_reduction suite)
    (Workloads.Loadgen.fast_path_speedup suite)
    (List.length required) light_s full_s budget

(* --- recovery smoke: BENCH_recovery.json schema guard --- *)

(* With --recovery-smoke, measure what durability costs where it matters:
   the per-mutation WAL overhead against a WAL-less twin, and the
   checkpoint + WAL-replay recovery time as the log grows. The results
   are persisted to BENCH_recovery.json and the schema checked here, so
   a drift fails `dune runtest` instead of breaking downstream readers. *)
let recovery_json_path = "BENCH_recovery.json"
let num v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let recovery_smoke () =
  let key = Util.Rng.bytes (Util.Rng.create 0x52454342L) 8 in
  let adds = 2000 in
  let time_adds ~wal =
    let db = Kdb.create ~shards:16 () in
    if wal then Kdb.enable_durability db;
    let t0 = Sys.time () in
    for i = 0 to adds - 1 do
      Kdb.add_service db
        (Kerberos.Principal.service ~realm:"BENCH" (string_of_int i) ~host:"h")
        ~key
    done;
    (Sys.time () -. t0) /. float_of_int adds *. 1e9
  in
  let no_wal_ns = time_adds ~wal:false in
  let wal_ns = time_adds ~wal:true in
  let overhead_pct = (wal_ns -. no_wal_ns) /. no_wal_ns *. 100.0 in
  let recovery_row records =
    let db = Kdb.create ~shards:16 () in
    Kdb.enable_durability db;
    for i = 0 to records - 1 do
      Kdb.add_service db
        (Kerberos.Principal.service ~realm:"BENCH" (string_of_int i) ~host:"h")
        ~key
    done;
    let checkpoint, wal = Option.get (Kdb.disk_image db) in
    let best = ref infinity and applied = ref 0 in
    for _ = 1 to 3 do
      let t0 = Sys.time () in
      let r = Kdb.recover ~checkpoint ~wal in
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt;
      applied := r.Kdb.applied;
      assert (r.Kdb.discarded_bytes = 0)
    done;
    (records, !applied, !best *. 1e3)
  in
  let rows = List.map recovery_row [ 100; 1000; 5000 ] in
  List.iter
    (fun (records, applied, _) ->
      if applied <> records then (
        Printf.eprintf "recovery smoke: %d WAL records but %d applied\n" records
          applied;
        exit 1))
    rows;
  let oc = open_out recovery_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"wal_overhead\": { \"add_ns_no_wal\": %s, \"add_ns_wal\": %s, \
     \"overhead_pct\": %s },\n\
    \  \"recovery_time\": [\n%s\n\
    \  ]\n\
     }\n"
    (num no_wal_ns) (num wal_ns) (num overhead_pct)
    (String.concat ",\n"
       (List.map
          (fun (records, applied, ms) ->
            Printf.sprintf
              "    { \"wal_records\": %d, \"applied\": %d, \"replay_ms\": %s }"
              records applied (num ms))
          rows));
  close_out oc;
  (* Schema guard over what was actually written. *)
  let ic = open_in recovery_json_path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      if not (contains k) then (
        Printf.eprintf "recovery smoke: BENCH_recovery.json schema lost %s\n" k;
        exit 1))
    [ "\"wal_overhead\""; "\"add_ns_no_wal\""; "\"add_ns_wal\"";
      "\"overhead_pct\""; "\"recovery_time\""; "\"wal_records\"";
      "\"applied\""; "\"replay_ms\"" ];
  Printf.printf
    "recovery smoke: add %.0f -> %.0f ns/mutation with WAL (%+.1f%%), replay \
     of %d-record log %.2f ms; schema intact\n"
    no_wal_ns wal_ns overhead_pct
    (match List.rev rows with (r, _, _) :: _ -> r | [] -> 0)
    (match List.rev rows with (_, _, ms) :: _ -> ms | [] -> 0.0)

(* --- detect smoke: BENCH_detect.json schema guard --- *)

(* With --detect-smoke, run a runtest-sized blended attack campaign twice
   (same seed — the serialized JSON must be byte-identical), persist it to
   BENCH_detect.json, check the schema, and hold the detection floor: at
   least three attack classes at detection rate >= 0.9 with false-positive
   rate <= 0.01. A detector regression then fails `dune runtest`. *)
let detect_json_path = "BENCH_detect.json"

let detect_smoke () =
  let profile =
    { Profile.v4 with
      Profile.name = "v4+preauth+cache";
      preauth = true;
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  let cfg =
    { Workloads.Loadgen.default with
      Workloads.Loadgen.users = 2_000; shards = 4; kdcs = 2;
      active_clients = 300; requests_per_client = 30; think_time = 1.0;
      ramp = 10.0; seed = 0xdefec7L; profile; lightweight = true;
      lazy_users = true }
  in
  let mix =
    { Workloads.Attack_mix.default_mix with
      Workloads.Attack_mix.start = 25.0; stagger = 1.0; guess_tries = 20 }
  in
  let policy =
    { Telemetry.Detect.default_policy with
      Telemetry.Detect.warmup = 20.0; epoch = 10.0;
      max_lifetime = cfg.Workloads.Loadgen.lifetime }
  in
  let run () = snd (Workloads.Loadgen.run_campaign ~policy ~mix cfg) in
  let c1 = run () in
  let c2 = run () in
  let j1 = Telemetry.Json.to_string (Workloads.Loadgen.campaign_to_json c1) in
  let j2 = Telemetry.Json.to_string (Workloads.Loadgen.campaign_to_json c2) in
  if not (String.equal j1 j2) then (
    Printf.eprintf
      "detect smoke: two campaigns at the same seed serialized differently\n";
    exit 1);
  let oc = open_out detect_json_path in
  output_string oc j1;
  output_char oc '\n';
  close_out oc;
  let contains needle =
    let nl = String.length needle and sl = String.length j1 in
    let rec go i = i + nl <= sl && (String.sub j1 i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      if not (contains k) then (
        Printf.eprintf "detect smoke: BENCH_detect.json schema lost %s\n" k;
        exit 1))
    [ "\"config\""; "\"mix\""; "\"policy\""; "\"report\"";
      "\"detector_events\""; "\"labels\""; "\"alerts\""; "\"score\"";
      "\"classes\""; "\"password_guess\""; "\"ticket_harvest\"";
      "\"replay_auth\""; "\"forged_ticket\""; "\"attackers\"";
      "\"detected\""; "\"detection_rate\""; "\"false_positive_rate\"";
      "\"mean_ttd\""; "\"max_ttd\""; "\"benign_subjects\"";
      "\"benign_flagged\""; "\"warmup\""; "\"burst_factor\""; "\"rule\"";
      "\"subject\""; "\"evidence\"" ];
  let score = c1.Workloads.Loadgen.ca_score in
  let good =
    List.filter
      (fun (c : Telemetry.Detect.class_score) ->
        c.Telemetry.Detect.cs_detection_rate >= 0.9
        && c.Telemetry.Detect.cs_false_positive_rate <= 0.01)
      score.Telemetry.Detect.sc_classes
  in
  if List.length good < 3 then (
    Printf.eprintf
      "detect smoke: only %d/%d attack classes at detection rate >= 0.9 with \
       FPR <= 0.01 (need >= 3)\n"
      (List.length good)
      (List.length score.Telemetry.Detect.sc_classes);
    exit 1);
  Printf.printf
    "detect smoke: %d/%d classes over the floor (overall FPR %.4f, %d \
     alerts, %d detector events), campaign JSON deterministic (%d bytes), \
     schema intact\n"
    (List.length good)
    (List.length score.Telemetry.Detect.sc_classes)
    score.Telemetry.Detect.sc_false_positive_rate
    score.Telemetry.Detect.sc_alerts c1.Workloads.Loadgen.ca_events
    (String.length j1)

(* --- transport smoke: UDP vs TCP-fallback latency, BENCH_transport.json --- *)

(* With --transport-smoke, run a fixed login->TGS->AP->sealed-read
   workload twice over: once with no MTU (every exchange rides a single
   datagram) and once with the path MTU pinned below the largest AS/TGS
   reply (every exchange is forced through the RESPONSE-TOO-BIG -> framed
   TCP fallback). Both runs must complete every exchange; the sim-time
   latency rows quantify what the fallback costs. The constrained run is
   repeated at the same seed and its serialized row must be
   byte-identical. Finally the armed-but-never-firing MTU check must cost
   <= 1% wall time over the unconfigured network (plus a small absolute
   jitter allowance), so the MTU model stays free when unused. *)
let transport_json_path = "BENCH_transport.json"

type transport_row = {
  tw_reads : int;
  tw_completed : int;
  tw_p50_ms : float;  (** sim milliseconds per full pipeline *)
  tw_max_ms : float;
  tw_udp_calls : int;
  tw_tcp_calls : int;
  tw_fallbacks : int;
  tw_rtb : int;  (** of which RESPONSE-TOO-BIG refusals *)
  tw_truncated : int;
  tw_packets : int;
  tw_wall_s : float;
}

let transport_workload ?mtu ~clients ~reads () =
  let wall0 = Sys.time () in
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x7E57L ~telemetry:tel eng in
  Sim.Net.set_mtu net mtu;
  let quad = Sim.Addr.of_quad in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 9 0 1 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 9 0 2 ] () in
  let ws =
    List.init clients (fun i ->
        Sim.Host.create ~name:(Printf.sprintf "tws%d" i)
          ~ips:[ quad 10 9 1 (1 + i) ] ())
  in
  List.iter (Sim.Net.attach net) (kdc_host :: fs_host :: ws);
  let profile = Profile.v5_draft3 in
  let rng = Util.Rng.create 0x7BE7CL in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm:"BENCHT") ~key:(Crypto.Des.random_key rng);
  let users =
    List.init clients (fun i ->
        ( Principal.user ~realm:"BENCHT" (Printf.sprintf "u%d" i),
          Printf.sprintf "pw.%d" i ))
  in
  List.iter (fun (p, pw) -> Kdb.add_user db p ~password:pw) users;
  let fileserv = Principal.service ~realm:"BENCHT" "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  let kdc = Kdc.create ~realm:"BENCHT" ~profile ~lifetime:28800.0 db in
  Kdc.install net kdc_host kdc ();
  let fsrv =
    Services.Fileserver.install net fs_host ~profile ~principal:fileserv
      ~key:fs_key ~port:600
  in
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:"/blob"
    (Bytes.make 1200 'x');
  let kdcs = [ ("BENCHT", Sim.Host.primary_ip kdc_host) ] in
  let lats = ref [] in
  let completed = ref 0 in
  List.iteri
    (fun i host ->
      let who, pw = List.nth users i in
      let c =
        Client.create ~seed:(Int64.of_int (0xB0B + i)) ~password:pw net host
          ~profile ~kdcs who
      in
      let rec pipeline n =
        if n < reads then begin
          let t0 = Sim.Engine.now eng in
          Client.login c ~password:pw (function
            | Error _ -> ()
            | Ok _ ->
                Client.get_ticket c ~service:fileserv (function
                  | Error _ -> ()
                  | Ok creds ->
                      Client.ap_exchange c creds ~deadline:5.0
                        ~dst:(Sim.Host.primary_ip fs_host) ~dport:600 (function
                        | Error _ -> ()
                        | Ok chan ->
                            Client.call_priv c chan ~deadline:5.0
                              (Bytes.of_string "READ /blob") ~k:(function
                              | Error _ -> ()
                              | Ok _ ->
                                  incr completed;
                                  lats := (Sim.Engine.now eng -. t0) :: !lats;
                                  pipeline (n + 1)))))
        end
      in
      Sim.Engine.schedule eng ~at:(0.01 *. float_of_int i) (fun () ->
          pipeline 0))
    ws;
  Sim.Engine.run eng;
  let counter name =
    Telemetry.Metrics.value
      (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel) name)
  in
  let sorted = List.sort compare !lats in
  let nth_ms q =
    match sorted with
    | [] -> nan
    | l ->
        let n = List.length l in
        1000.0 *. List.nth l (min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  { tw_reads = clients * reads;
    tw_completed = !completed;
    tw_p50_ms = nth_ms 0.5;
    tw_max_ms = (match List.rev sorted with [] -> nan | m :: _ -> 1000.0 *. m);
    tw_udp_calls = counter "transport.udp.calls";
    tw_tcp_calls = counter "transport.tcp.calls";
    tw_fallbacks =
      counter "transport.fallback.response_too_big"
      + counter "transport.fallback.request_too_big"
      + counter "transport.fallback.truncation";
    tw_rtb = counter "transport.fallback.response_too_big";
    tw_truncated = counter "net.packets.truncated";
    tw_packets = counter "net.packets.sent";
    tw_wall_s = Sys.time () -. wall0 }

(* The wall clock stays out of the serialized row so the determinism
   comparison is over sim-side bytes only. *)
let transport_row_json r =
  Printf.sprintf
    "{ \"reads\": %d, \"completed\": %d, \"p50_sim_ms\": %s, \"max_sim_ms\": \
     %s, \"udp_calls\": %d, \"tcp_calls\": %d, \"fallbacks\": %d, \
     \"response_too_big\": %d, \"truncated\": %d, \"packets\": %d }"
    r.tw_reads r.tw_completed (num r.tw_p50_ms) (num r.tw_max_ms) r.tw_udp_calls
    r.tw_tcp_calls r.tw_fallbacks r.tw_rtb r.tw_truncated r.tw_packets

let transport_smoke () =
  let clients = 12 and reads = 6 in
  (* 200 sits below the largest AS/TGS reply (between 200 and 230 encoded
     bytes under v5_draft3), so the KDC plane itself must refuse over UDP
     and the client must retry the exchange over the stream — not just the
     AP channel upgrading for the oversized sealed read. *)
  let constrained_mtu = 200 in
  let udp = transport_workload ~clients ~reads () in
  let tcp = transport_workload ~mtu:constrained_mtu ~clients ~reads () in
  let tcp2 = transport_workload ~mtu:constrained_mtu ~clients ~reads () in
  if not (String.equal (transport_row_json tcp) (transport_row_json tcp2)) then begin
    Printf.eprintf
      "transport smoke: two constrained runs at the same seed serialized \
       differently\n";
    exit 1
  end;
  List.iter
    (fun (label, r) ->
      if r.tw_completed <> r.tw_reads then begin
        Printf.eprintf "transport smoke: %s row completed %d/%d exchanges\n"
          label r.tw_completed r.tw_reads;
        exit 1
      end)
    [ ("udp", udp); ("tcp_fallback", tcp) ];
  if tcp.tw_rtb = 0 || tcp.tw_tcp_calls = 0 then begin
    Printf.eprintf
      "transport smoke: MTU %d forced no RESPONSE-TOO-BIG fallbacks \
       (fallbacks=%d, response_too_big=%d, tcp_calls=%d)\n"
      constrained_mtu tcp.tw_fallbacks tcp.tw_rtb tcp.tw_tcp_calls;
    exit 1
  end;
  if udp.tw_fallbacks <> 0 || udp.tw_truncated <> 0 then begin
    Printf.eprintf
      "transport smoke: unconfigured run fell back (%d) or truncated (%d)\n"
      udp.tw_fallbacks udp.tw_truncated;
    exit 1
  end;
  (* Inert-MTU gate: armed but never firing must cost <= 1% wall over the
     unconfigured network (best of 3, plus 20 ms jitter allowance). *)
  let best_of_3 f =
    let a = (f ()).tw_wall_s and b = (f ()).tw_wall_s and c = (f ()).tw_wall_s in
    Float.min a (Float.min b c)
  in
  let base_s = best_of_3 (fun () -> transport_workload ~clients ~reads ()) in
  let armed_s =
    best_of_3 (fun () ->
        transport_workload ~mtu:1_000_000 ~clients ~reads ())
  in
  let budget = (base_s *. 1.01) +. 0.02 in
  if armed_s > budget then begin
    Printf.eprintf
      "transport smoke: armed-but-inert MTU run took %.4fs vs %.4fs \
       unconfigured — exceeds the 1%% budget (%.4fs)\n"
      armed_s base_s budget;
    exit 1
  end;
  let json =
    Printf.sprintf
      "{\n  \"udp\": %s,\n  \"tcp_fallback\": %s,\n  \"mtu\": %d,\n  \
       \"inert_overhead\": { \"baseline_s\": %s, \"armed_s\": %s }\n}\n"
      (transport_row_json udp) (transport_row_json tcp) constrained_mtu
      (num base_s) (num armed_s)
  in
  let oc = open_out transport_json_path in
  output_string oc json;
  close_out oc;
  let contains needle =
    let nl = String.length needle and sl = String.length json in
    let rec go i = i + nl <= sl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      if not (contains k) then begin
        Printf.eprintf "transport smoke: BENCH_transport.json schema lost %s\n" k;
        exit 1
      end)
    [ "\"udp\""; "\"tcp_fallback\""; "\"mtu\""; "\"inert_overhead\"";
      "\"reads\""; "\"completed\""; "\"p50_sim_ms\""; "\"max_sim_ms\"";
      "\"udp_calls\""; "\"tcp_calls\""; "\"fallbacks\"";
      "\"response_too_big\""; "\"truncated\"";
      "\"packets\""; "\"baseline_s\""; "\"armed_s\"" ];
  Printf.printf
    "transport smoke: %d/%d udp exchanges (p50 %.1f sim-ms), %d/%d forced \
     through TCP fallback (p50 %.1f sim-ms, %d fallbacks), constrained row \
     deterministic, inert-MTU %.4fs vs %.4fs (budget %.4fs), schema intact\n"
    udp.tw_completed udp.tw_reads udp.tw_p50_ms tcp.tw_completed tcp.tw_reads
    tcp.tw_p50_ms tcp.tw_fallbacks armed_s base_s budget

(* --- replication smoke (--replication-smoke) ---

   The viral-service campaign at its committed seed, run twice: the
   suite JSON must be byte-identical across runs, keep its schema, and
   the replication floors must hold — primary-only melts (p99 >= 2x
   calm), the replica pool keeps p99 flat (<= 1.2x) and balanced
   (max/mean <= 1.5), and a crashed replica rejoins converged. *)
let replication_smoke () =
  let open Workloads.Loadgen in
  let v = default_viral in
  let s = run_viral v in
  let json = Telemetry.Json.to_string (viral_suite_to_json s) in
  let json2 =
    Telemetry.Json.to_string (viral_suite_to_json (run_viral v))
  in
  if not (String.equal json json2) then begin
    prerr_endline
      "replication smoke: re-run diverged (campaign determinism lost)";
    exit 1
  end;
  let contains needle =
    let nl = String.length needle and sl = String.length json in
    let rec go i = i + nl <= sl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      if not (contains k) then begin
        Printf.eprintf
          "replication smoke: BENCH_replication.json schema lost %s\n" k;
        exit 1
      end)
    [ "\"config\""; "\"calm\""; "\"unreplicated\""; "\"replicated\"";
      "\"overload_p99_ratio\""; "\"replicated_p99_ratio\"";
      "\"floor_failures\""; "\"tgs_latency\""; "\"shard_lookup_balance\"";
      "\"unit_reads\""; "\"unit_balance\""; "\"fresh_fallbacks\"";
      "\"shipped_records\""; "\"catchups\""; "\"max_lag_seen\"";
      "\"replica_crashes\""; "\"converged\"" ];
  let fails = viral_floor_failures s in
  List.iter (fun f -> Printf.eprintf "replication smoke: floor: %s\n" f) fails;
  if fails <> [] then exit 1;
  Printf.printf
    "replication smoke: spike p99 %.2fx calm unreplicated vs %.2fx with %d \
     replicas (pool balance %.2f, %d records shipped, %d crash(es) rejoined \
     converged), suite JSON deterministic (%d bytes), schema intact\n"
    (viral_overload_ratio s) (viral_p99_ratio s) v.v_replicas
    s.vs_replicated.vr_unit_balance s.vs_replicated.vr_shipped_records
    s.vs_replicated.vr_replica_crashes (String.length json)

(* --- overload smoke (--overload-smoke) ---

   The metastable-failure campaign at its committed seed, run twice:
   byte-identical suite JSON across runs, schema intact, and the
   overload floors must hold — the naive retry storm collapses goodput
   past the spike (< 50% of calm) and never recovers within the
   horizon, the budgeted/breaker/hint-honoring row recovers to >= 90%
   of baseline within 8 sim-seconds and ends the horizon at >= 90% of
   the calm row's final goodput, the controlled KDCs visibly shed
   (busy + brownout > 0), and no row drops a request silently. *)
let overload_smoke () =
  let open Workloads.Loadgen in
  let o = default_overload in
  let s = run_overload o in
  let json = Telemetry.Json.to_string (overload_suite_to_json s) in
  let json2 =
    Telemetry.Json.to_string (overload_suite_to_json (run_overload o))
  in
  if not (String.equal json json2) then begin
    prerr_endline "overload smoke: re-run diverged (campaign determinism lost)";
    exit 1
  end;
  let contains needle =
    let nl = String.length needle and sl = String.length json in
    let rec go i = i + nl <= sl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k ->
      if not (contains k) then begin
        Printf.eprintf "overload smoke: BENCH_overload.json schema lost %s\n" k;
        exit 1
      end)
    [ "\"config\""; "\"calm\""; "\"naive\""; "\"controlled\"";
      "\"floor_failures\""; "\"goodput_baseline\""; "\"goodput_post\"";
      "\"goodput_final\""; "\"recovery_s\""; "\"windows\"";
      "\"busy_received\""; "\"breaker_trips\""; "\"budget_exhausted\"";
      "\"arrived\""; "\"processed\""; "\"busy_rejections\"";
      "\"brownout_sheds\""; "\"deadline_sheds\""; "\"residual_queue\"";
      "\"silent_drops\"" ];
  let fails = overload_floor_failures s in
  List.iter (fun f -> Printf.eprintf "overload smoke: floor: %s\n" f) fails;
  if fails <> [] then exit 1;
  Printf.printf
    "overload smoke: naive post-spike goodput %.1f/s vs calm %.1f/s \
     (collapsed, never recovered); controlled recovered in %.1fs, %d busy + \
     %d brownout sheds, 0 silent drops; suite JSON deterministic (%d bytes), \
     schema intact\n"
    s.os_naive.or_goodput_post s.os_calm.or_goodput_baseline
    (match s.os_controlled.or_recovery_s with Some r -> r | None -> nan)
    s.os_controlled.or_busy_rejections s.os_controlled.or_brownout_sheds
    (String.length json)

(* --- docs check (--docs-check) ---

   Lint the documentation plane against Expframework.Catalog: every
   experiments subcommand must be named in EXPERIMENTS.md (as
   `experiments <name>`), every committed BENCH_*.json must be listed in
   the catalog AND carry a `### `<file>`` section in BENCH.md, and every
   catalog bench entry must exist on disk. Run from the repo root or as
   a dune rule (where the sources sit one directory up). *)
let docs_check () =
  let root = if Sys.file_exists "EXPERIMENTS.md" then "." else ".." in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let contains hay needle =
    let nl = String.length needle and sl = String.length hay in
    let rec go i = i + nl <= sl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let experiments_md =
    let p = Filename.concat root "EXPERIMENTS.md" in
    if Sys.file_exists p then read_file p
    else (problem "EXPERIMENTS.md missing"; "")
  in
  let bench_md =
    let p = Filename.concat root "BENCH.md" in
    if Sys.file_exists p then read_file p
    else (problem "BENCH.md missing"; "")
  in
  List.iter
    (fun (name, _) ->
      if not (contains experiments_md (Printf.sprintf "`experiments %s`" name))
      then
        problem "EXPERIMENTS.md has no section for `experiments %s`" name)
    Expframework.Catalog.experiments_subcommands;
  List.iter
    (fun (file, _) ->
      if not (Sys.file_exists (Filename.concat root file)) then
        problem "catalog lists %s but it is not committed" file;
      if not (contains bench_md (Printf.sprintf "### `%s`" file)) then
        problem "BENCH.md has no ### `%s` section" file)
    Expframework.Catalog.bench_files;
  Array.iter
    (fun f ->
      if
        String.length f > 6
        && String.sub f 0 6 = "BENCH_"
        && Filename.check_suffix f ".json"
        && not (List.mem_assoc f Expframework.Catalog.bench_files)
      then
        problem "%s is committed but absent from Expframework.Catalog" f)
    (Sys.readdir root);
  match List.rev !problems with
  | [] ->
      Printf.printf
        "docs check: %d experiments subcommands and %d bench files all \
         documented (EXPERIMENTS.md, BENCH.md)\n"
        (List.length Expframework.Catalog.experiments_subcommands)
        (List.length Expframework.Catalog.bench_files)
  | ps ->
      List.iter (fun p -> Printf.eprintf "docs check: %s\n" p) ps;
      exit 1

(* --- harness --- *)

let tests =
  Test.make_grouped ~name:"kerblim"
    [ t_des_block; t_ecb_1k; t_cbc_1k; t_pcbc_1k; t_md4_1k; t_crc_1k; t_crc_forge;
      t_str2key; t_guess; t_modexp_31; t_modexp_127; t_modexp_521; t_cache;
      t_kdb_add; t_kdb_add_wal; t_session_v4; t_session_v5; t_session_hardened; t_faults_none;
      t_faults_inert; t_faults_jitter; t_login_password;
      t_login_preauth; t_login_handheld; t_login_dh61; t_login_dh127;
      t_login_full_hardened; t_ap_timestamp; t_ap_cache; t_ap_challenge ]

let json_path = "BENCH_crypto.json"
let telemetry_json_path = "BENCH_telemetry.json"
let faults_json_path = "BENCH_faults.json"

(* Hand-rolled serialization: the sealed environment has no JSON library,
   and the schema is one flat object. NaNs (an OLS fit that never
   converged) are encoded as null. *)
let write_json rows =
  let oc = open_out json_path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc "  %S: { \"ns_per_run\": %s, \"r_square\": %s }%s\n" name
        (num ns) (num r2)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

let () =
  if Array.exists (( = ) "--load-smoke") Sys.argv then (load_smoke (); exit 0);
  if Array.exists (( = ) "--recovery-smoke") Sys.argv then
    (recovery_smoke (); exit 0);
  if Array.exists (( = ) "--detect-smoke") Sys.argv then
    (detect_smoke (); exit 0);
  if Array.exists (( = ) "--transport-smoke") Sys.argv then
    (transport_smoke (); exit 0);
  if Array.exists (( = ) "--replication-smoke") Sys.argv then
    (replication_smoke (); exit 0);
  if Array.exists (( = ) "--overload-smoke") Sys.argv then
    (overload_smoke (); exit 0);
  if Array.exists (( = ) "--docs-check") Sys.argv then (docs_check (); exit 0);
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  if smoke then
    Printf.printf "bench smoke: %d benchmarks ran (timings not meaningful)\n"
      (List.length rows)
  else begin
    print_endline "Benchmark results (OLS fit of monotonic clock vs. runs):";
    Expframework.Table.print ~header:[ "benchmark"; "time/run"; "r^2" ]
      (List.map
         (fun (name, ns, r2) ->
           let time =
             if Float.is_nan ns then "n/a"
             else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
             else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
             else Printf.sprintf "%.1f ns" ns
           in
           [ name; time; Printf.sprintf "%.4f" r2 ])
         rows);
    write_json rows;
    Printf.printf "machine-readable results: %s\n"
      (Filename.concat (Sys.getcwd ()) json_path);
    (* Fault-plane overhead check: an attached-but-empty plane should cost
       nothing measurable on a full session (budget: 1%). The jitter row
       shows what a plane that actually fires costs, for scale. *)
    let ns_of name =
      match List.find_opt (fun (n, _, _) -> String.equal n name) rows with
      | Some (_, ns, _) -> ns
      | None -> nan
    in
    let base = ns_of "kerblim/fault-plane/session-no-plane" in
    let inert = ns_of "kerblim/fault-plane/session-inert-plane" in
    let jitter = ns_of "kerblim/fault-plane/session-jitter-plane" in
    let disabled_pct = (inert -. base) /. base *. 100.0 in
    let oc = open_out faults_json_path in
    Printf.fprintf oc
      "{\n\
      \  \"session_no_plane_ns\": %s,\n\
      \  \"session_inert_plane_ns\": %s,\n\
      \  \"session_jitter_plane_ns\": %s,\n\
      \  \"overhead_disabled_pct\": %s,\n\
      \  \"overhead_budget_pct\": 1.0\n\
       }\n"
      (num base) (num inert) (num jitter) (num disabled_pct);
    close_out oc;
    Printf.printf "fault-plane overhead:     %s (disabled plane: %+.2f%%)\n"
      (Filename.concat (Sys.getcwd ()) faults_json_path) disabled_pct;
    (* Telemetry companion: one traced session per profile, each on its
       own fresh collector, exported as {profile: metrics}. Sharing one
       collector across the three sessions used to re-register every
       KDC/AP metric and export "name#2"/"name#3" duplicates — per-profile
       collectors give each metric exactly one stable key, which the '#'
       guard below enforces. *)
    let profile_metrics =
      List.map
        (fun (p : Profile.t) ->
          let tel = Telemetry.Collector.fresh_default () in
          full_session p;
          (p.Profile.name, Telemetry.Collector.metrics_json tel))
        [ Profile.v4; Profile.v5_draft3; Profile.hardened ]
    in
    ignore (Telemetry.Collector.fresh_default ());
    let telemetry_json =
      Telemetry.Json.to_string (Telemetry.Json.Obj profile_metrics)
    in
    if String.contains telemetry_json '#' then begin
      Printf.eprintf
        "telemetry companion: duplicate metric keys leaked into %s\n"
        telemetry_json_path;
      exit 1
    end;
    let oc = open_out telemetry_json_path in
    output_string oc telemetry_json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "telemetry histograms:     %s\n"
      (Filename.concat (Sys.getcwd ()) telemetry_json_path)
  end
