exception Decode_error of string

let fail msg = raise (Decode_error msg)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let i64 t v = Buffer.add_int64_be t v
  let raw t b = Buffer.add_bytes t b

  let lbytes t b =
    u32 t (Bytes.length b);
    raw t b

  let lstring t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let contents t = Buffer.to_bytes t

  (* A small free list of writers for the per-packet encode path: encoding a
     message allocates only its final [contents] bytes, not a fresh growing
     Buffer each time. Buffers that ballooned on an unusually large message
     are reset so the pool never pins big storage. *)
  let max_pool = 8
  let max_retained = 1 lsl 16
  let pool : Buffer.t list ref = ref []
  let pool_size = ref 0

  let pooled f =
    let b =
      match !pool with
      | b :: rest ->
          pool := rest;
          decr pool_size;
          b
      | [] -> Buffer.create 256
    in
    Fun.protect
      ~finally:(fun () ->
        if !pool_size < max_pool then begin
          if Buffer.length b > max_retained then Buffer.reset b else Buffer.clear b;
          pool := b :: !pool;
          incr pool_size
        end)
      (fun () -> f b)
end

module Reader = struct
  type t = { data : bytes; mutable pos : int; lim : int }

  let of_bytes data = { data; pos = 0; lim = Bytes.length data }

  (* A cursor over a window of [data]: decoding a field of a larger frame
     (a sealed trailer, a nested record) no longer needs the window copied
     out with [Bytes.sub] first. *)
  let of_sub data ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length data then
      invalid_arg "Codec.Reader.of_sub";
    { data; pos; lim = pos + len }

  let need t n = if t.pos + n > t.lim then fail "truncated message"

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let i64 t =
    need t 8;
    let v = Bytes.get_int64_be t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let raw t n =
    need t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let remaining t = t.lim - t.pos

  let lbytes t =
    let n = u32 t in
    if n > remaining t then fail "length field exceeds input";
    raw t n

  (* Straight to a string: one copy, not bytes-then-to_string. *)
  let lstring t =
    let n = u32 t in
    if n > remaining t then fail "length field exceeds input";
    let s = Bytes.sub_string t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let at_end t = remaining t = 0
  let expect_end t = if not (at_end t) then fail "trailing bytes"
end
