type value =
  | Str of string
  | Raw of bytes
  | Int of int64
  | List of value list
  | Tagged of int * value

type kind = V4_adhoc | Der_typed

let show_kind = function V4_adhoc -> "v4-adhoc" | Der_typed -> "der-typed"

let fail = Codec.fail

(* V4 wire kind bytes. [Tagged] has no byte under V4: it is simply erased. *)
let k_str = 0
let k_raw = 1
let k_int = 2
let k_list = 3

let encode_v4 v =
  Codec.Writer.pooled (fun w ->
      let rec go v =
        match v with
        | Str s ->
            Codec.Writer.u8 w k_str;
            Codec.Writer.lstring w s
        | Raw b ->
            Codec.Writer.u8 w k_raw;
            Codec.Writer.lbytes w b
        | Int i ->
            Codec.Writer.u8 w k_int;
            Codec.Writer.i64 w i
        | List vs ->
            Codec.Writer.u8 w k_list;
            Codec.Writer.u32 w (List.length vs);
            List.iter go vs
        | Tagged (_, inner) -> go inner (* the V4 deficiency: the label vanishes *)
      in
      go v;
      Codec.Writer.contents w)

(* Same bound as {!Der.max_depth}: nested list headers cost one byte
   each, so without it a short crafted input recurses thousands deep. *)
let max_depth = 64

let decode_v4 b =
  let r = Codec.Reader.of_bytes b in
  let rec go depth =
    if depth > max_depth then fail "nesting too deep";
    match Codec.Reader.u8 r with
    | k when k = k_str -> Str (Codec.Reader.lstring r)
    | k when k = k_raw -> Raw (Codec.Reader.lbytes r)
    | k when k = k_int -> Int (Codec.Reader.i64 r)
    | k when k = k_list ->
        let n = Codec.Reader.u32 r in
        if n > Codec.Reader.remaining r then fail "implausible list length";
        List (List.init n (fun _ -> go (depth + 1)))
    | k -> fail (Printf.sprintf "unknown value kind %d" k)
  in
  let v = go 0 in
  Codec.Reader.expect_end r;
  v

(* Der_typed rides on the real ASN.1 codec; message-type labels become
   constructed context-specific tags. *)
let rec to_der = function
  | Str s -> Der.Utf8 s
  | Raw b -> Der.Octets b
  | Int i -> Der.Integer i
  | List vs -> Der.Sequence (List.map to_der vs)
  | Tagged (t, v) -> Der.Context (t, to_der v)

let rec of_der = function
  | Der.Utf8 s -> Str s
  | Der.Octets b -> Raw b
  | Der.Integer i -> Int i
  | Der.Sequence vs -> List (List.map of_der vs)
  | Der.Context (t, v) -> Tagged (t, of_der v)
  | Der.Boolean _ -> fail "unexpected BOOLEAN in protocol message"

let encode kind v =
  match kind with V4_adhoc -> encode_v4 v | Der_typed -> Der.encode (to_der v)

let decode kind b =
  match kind with V4_adhoc -> decode_v4 b | Der_typed -> of_der (Der.decode b)

(* No protocol message comes anywhere near this; anything larger is an
   attack or a corrupted length field, and rejecting it up front bounds
   what a decoder can be made to allocate. *)
let max_message = 1 lsl 20

let decode_result kind b =
  if Bytes.length b > max_message then Error "oversized message"
  else
    match decode kind b with
    | v -> Ok v
    | exception Codec.Decode_error e -> Error e

let expect_tag kind tag v =
  match kind with
  | V4_adhoc -> ( match v with Tagged (_, inner) -> inner | v -> v)
  | Der_typed -> (
      match v with
      | Tagged (t, inner) when t = tag -> inner
      | Tagged (t, _) -> fail (Printf.sprintf "message type %d where %d expected" t tag)
      | _ -> fail "untyped message where typed expected")

let get_str = function Str s -> s | _ -> fail "expected string"
let get_raw = function Raw b -> b | _ -> fail "expected raw bytes"
let get_int = function Int i -> i | _ -> fail "expected integer"
let get_list = function List l -> l | _ -> fail "expected list"

let nth v i =
  match v with
  | List l -> ( match List.nth_opt l i with Some x -> x | None -> fail "index out of range")
  | _ -> fail "expected list"
