type t =
  | Boolean of bool
  | Integer of int64
  | Octets of bytes
  | Utf8 of string
  | Sequence of t list
  | Context of int * t

let fail = Codec.fail

let tag_boolean = 0x01
let tag_integer = 0x02
let tag_octets = 0x04
let tag_utf8 = 0x0C
let tag_sequence = 0x30 (* constructed *)

let context_tag n =
  if n < 0 || n > 30 then invalid_arg "Der: context tag out of range";
  0xA0 lor n

(* --- length octets --- *)

let encode_length buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    let rec octets n = if n = 0 then [] else (n land 0xff) :: octets (n lsr 8) in
    let os = List.rev (octets n) in
    Buffer.add_char buf (Char.chr (0x80 lor List.length os));
    List.iter (fun o -> Buffer.add_char buf (Char.chr o)) os
  end

(* --- integer content: minimal two's-complement big-endian --- *)

let integer_octets (v : int64) =
  let bytes = Bytes.create 8 in
  Bytes.set_int64_be bytes 0 v;
  (* Strip redundant leading octets. *)
  let rec start i =
    if i >= 7 then i
    else
      let b0 = Char.code (Bytes.get bytes i) and b1 = Char.code (Bytes.get bytes (i + 1)) in
      if (b0 = 0x00 && b1 < 0x80) || (b0 = 0xFF && b1 >= 0x80) then start (i + 1) else i
  in
  let s = start 0 in
  Bytes.sub bytes s (8 - s)

let decode_integer content =
  let n = Bytes.length content in
  if n = 0 then fail "der: empty INTEGER";
  if n > 8 then fail "der: INTEGER too wide";
  if n >= 2 then begin
    let b0 = Char.code (Bytes.get content 0) and b1 = Char.code (Bytes.get content 1) in
    if (b0 = 0x00 && b1 < 0x80) || (b0 = 0xFF && b1 >= 0x80) then
      fail "der: non-minimal INTEGER"
  end;
  let v = ref (if Char.code (Bytes.get content 0) >= 0x80 then -1L else 0L) in
  Bytes.iter
    (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c)))
    content;
  !v

(* --- encoding --- *)

let rec encode_into buf v =
  match v with
  | Boolean b ->
      Buffer.add_char buf (Char.chr tag_boolean);
      encode_length buf 1;
      Buffer.add_char buf (if b then '\xff' else '\x00')
  | Integer i ->
      let content = integer_octets i in
      Buffer.add_char buf (Char.chr tag_integer);
      encode_length buf (Bytes.length content);
      Buffer.add_bytes buf content
  | Octets b ->
      Buffer.add_char buf (Char.chr tag_octets);
      encode_length buf (Bytes.length b);
      Buffer.add_bytes buf b
  | Utf8 s ->
      Buffer.add_char buf (Char.chr tag_utf8);
      encode_length buf (String.length s);
      Buffer.add_string buf s
  | Sequence vs ->
      let inner = Buffer.create 64 in
      List.iter (encode_into inner) vs;
      Buffer.add_char buf (Char.chr tag_sequence);
      encode_length buf (Buffer.length inner);
      Buffer.add_buffer buf inner
  | Context (n, inner_v) ->
      let inner = Buffer.create 64 in
      encode_into inner inner_v;
      Buffer.add_char buf (Char.chr (context_tag n));
      encode_length buf (Buffer.length inner);
      Buffer.add_buffer buf inner

let encode v =
  let buf = Buffer.create 128 in
  encode_into buf v;
  Buffer.to_bytes buf

(* --- decoding --- *)

let decode_length data pos =
  if pos >= Bytes.length data then fail "der: missing length";
  let first = Char.code (Bytes.get data pos) in
  if first < 0x80 then (first, pos + 1)
  else begin
    let n = first land 0x7f in
    if n = 0 then fail "der: indefinite length forbidden in DER";
    if n > 4 then fail "der: length too wide";
    if pos + 1 + n > Bytes.length data then fail "der: truncated length";
    let v = ref 0 in
    for i = 1 to n do
      v := (!v lsl 8) lor Char.code (Bytes.get data (pos + i))
    done;
    if !v < 0x80 then fail "der: non-minimal length";
    if n > 1 && Char.code (Bytes.get data (pos + 1)) = 0 then
      fail "der: non-minimal length octets";
    (!v, pos + 1 + n)
  end

(* Nesting bound: no legitimate protocol message nests more than a
   handful of levels, but a crafted (or bit-flipped) input can encode
   thousands of nested SEQUENCE/context headers in a few bytes and drive
   the recursive decoder into the native stack. Past [max_depth] the
   input is rejected as a decode error, not a crash. *)
let max_depth = 64

let rec decode_at ?(depth = 0) data pos =
  if depth > max_depth then fail "der: nesting too deep";
  if pos >= Bytes.length data then fail "der: truncated";
  let tag = Char.code (Bytes.get data pos) in
  let len, content_pos = decode_length data (pos + 1) in
  if content_pos + len > Bytes.length data then fail "der: content overruns input";
  let content () = Bytes.sub data content_pos len in
  let after = content_pos + len in
  if tag = tag_boolean then begin
    if len <> 1 then fail "der: BOOLEAN length";
    match Char.code (Bytes.get data content_pos) with
    | 0x00 -> (Boolean false, after)
    | 0xFF -> (Boolean true, after)
    | _ -> fail "der: BOOLEAN value not canonical"
  end
  else if tag = tag_integer then (Integer (decode_integer (content ())), after)
  else if tag = tag_octets then (Octets (content ()), after)
  else if tag = tag_utf8 then (Utf8 (Bytes.to_string (content ())), after)
  else if tag = tag_sequence then begin
    let rec elems pos acc =
      if pos = after then List.rev acc
      else if pos > after then fail "der: SEQUENCE element overruns"
      else
        let v, next = decode_at ~depth:(depth + 1) data pos in
        elems next (v :: acc)
    in
    (Sequence (elems content_pos []), after)
  end
  else if tag land 0xE0 = 0xA0 then begin
    let n = tag land 0x1f in
    if n > 30 then fail "der: high-tag-number form unsupported";
    let v, next = decode_at ~depth:(depth + 1) data content_pos in
    if next <> after then fail "der: context tag content length mismatch";
    (Context (n, v), after)
  end
  else fail (Printf.sprintf "der: unsupported tag 0x%02x" tag)

let decode_prefix data =
  let v, consumed = decode_at data 0 in
  (v, consumed)

let decode data =
  let v, consumed = decode_at data 0 in
  if consumed <> Bytes.length data then fail "der: trailing garbage";
  v
