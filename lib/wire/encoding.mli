(** The two pre-encryption message encodings the paper contrasts.

    - {!V4_adhoc} mirrors Kerberos V4's ad-hoc packing: fields are written
      in order with no indication, inside the encrypted data, of what kind
      of message the bytes are. Two messages of coincident field shapes are
      indistinguishable once decrypted, so "a ticket should never be
      interpretable as an authenticator, or vice versa" must be re-argued by
      hand after every protocol change.
    - {!Der_typed} mirrors the ASN.1 move of Version 5: every encoded value
      carries its message type ("all encrypted data is labeled with the
      message type prior to encryption"), so cross-context confusion fails
      structurally. This is the paper's recommended change (b).

    Both encodings share a small structural value type; the difference is
    whether {!constructor:Tagged} wrappers survive on the wire. *)

type value =
  | Str of string
  | Raw of bytes
  | Int of int64
  | List of value list
  | Tagged of int * value
      (** [Tagged (msg_type, v)]: the message-type label. Erased by
          {!V4_adhoc}; preserved (and checked) by {!Der_typed}, where it
          becomes an ASN.1 context-specific tag — so [msg_type] must lie in
          [0..30]. *)

type kind = V4_adhoc | Der_typed

val show_kind : kind -> string

val encode : kind -> value -> bytes

val decode : kind -> bytes -> value
(** Structural inverse of [encode]. Under [V4_adhoc], any [Tagged] wrappers
    present at encode time are gone. Nesting is bounded (64 levels), so a
    crafted input cannot drive the decoder into the native stack.
    @raise Codec.Decode_error *)

val decode_result : kind -> bytes -> (value, string) result
(** The hardened entry point for bytes straight off the wire: rejects
    oversized input (> 1 MiB) before allocating, and returns [Error]
    where {!decode} would raise — truncated, corrupt, over-nested and
    oversized input all land in [Error], never an exception. *)

val expect_tag : kind -> int -> value -> value
(** [expect_tag kind t v] enforces the message-type discipline: under
    [Der_typed] it requires [v = Tagged (t, inner)] and returns [inner];
    under [V4_adhoc] there is nothing to check (the V4 weakness) and [v] is
    returned as-is. @raise Codec.Decode_error on a [Der_typed] mismatch. *)

(** Accessors with decode errors rather than pattern-match failures. *)

val get_str : value -> string
val get_raw : value -> bytes
val get_int : value -> int64
val get_list : value -> value list
val nth : value -> int -> value
