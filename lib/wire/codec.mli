(** Low-level byte readers and writers used by both message encodings. *)

exception Decode_error of string

val fail : string -> 'a
(** @raise Decode_error always. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val raw : t -> bytes -> unit
  val lstring : t -> string -> unit
  (** 32-bit length followed by the bytes. *)

  val lbytes : t -> bytes -> unit
  val contents : t -> bytes

  val pooled : (t -> 'a) -> 'a
  (** [pooled f] hands [f] a writer drawn from a small free list and
      returns it afterwards: the per-message encode path allocates only
      the final [contents], not a fresh buffer per message. The writer
      must not escape [f]. *)
end

module Reader : sig
  type t

  val of_bytes : bytes -> t

  val of_sub : bytes -> pos:int -> len:int -> t
  (** A cursor over the window [pos, pos+len) of the buffer — decode a
      nested region in place instead of copying it out first.
      @raise Invalid_argument if the window is out of bounds. *)

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val raw : t -> int -> bytes
  val lstring : t -> string
  val lbytes : t -> bytes
  val remaining : t -> int
  val at_end : t -> bool
  val expect_end : t -> unit
  (** @raise Decode_error if bytes remain. *)
end
