(* The attack-mix scheduler. See the interface for the model; the code
   below is four small attacker implementations over the raw protocol
   APIs (Messages/Frames/Sim) — deliberately not the benign Client, so an
   attacker costs nothing it wouldn't really pay and leaves no
   client-side telemetry. *)

open Kerberos

type world = {
  w_net : Sim.Net.t;
  w_engine : Sim.Engine.t;
  w_rng : Util.Rng.t;
  w_profile : Profile.t;
  w_realm : string;
  w_kdcs : Sim.Addr.t list;
  w_services : (Principal.t * bytes * Sim.Addr.t) array;
  w_client_addrs : Sim.Addr.t array;
  w_user : int -> Passwords.user;
  w_users : int;
  w_active : int;
}

type mix = {
  guessers : int;
  guess_targets : int;
  guess_tries : int;
  harvesters : int;
  harvest_targets : int;
  replayers : int;
  replay_count : int;
  replay_delay : float;
  forgers : int;
  forged_lifetime : float;
  presents : int;
  start : float;
  stagger : float;
  gap : float;
}

let default_mix =
  { guessers = 4; guess_targets = 3; guess_tries = 40; harvesters = 4;
    harvest_targets = 30; replayers = 4; replay_count = 3; replay_delay = 5.0;
    forgers = 4; forged_lifetime = 30.0 *. 86400.0; presents = 2; start = 60.0;
    stagger = 2.0; gap = 0.5 }

let mix_to_json m =
  let open Telemetry.Json in
  Obj
    [ ("guessers", Int m.guessers); ("guess_targets", Int m.guess_targets);
      ("guess_tries", Int m.guess_tries); ("harvesters", Int m.harvesters);
      ("harvest_targets", Int m.harvest_targets); ("replayers", Int m.replayers);
      ("replay_count", Int m.replay_count); ("replay_delay", Float m.replay_delay);
      ("forgers", Int m.forgers); ("forged_lifetime", Float m.forged_lifetime);
      ("presents", Int m.presents); ("start", Float m.start);
      ("stagger", Float m.stagger); ("gap", Float m.gap) ]

let attacker_port = 4000

(* Attacker hosts live in 10.200.x.y — benign clients stop at
   10.(2+active/250).*, far below. Each host swallows replies on its one
   port; attackers never parse what comes back (the harvester "keeps" its
   AS_REPs conceptually, but cracking is offline and out of scope here). *)
let attacker_host w ~name ~ip =
  let host = Sim.Host.create ~name ~ips:[ ip ] () in
  Sim.Net.attach w.w_net host;
  Sim.Net.listen w.w_net host ~port:attacker_port (fun _ -> ());
  host

(* A principal the benign plane doesn't drive: indices past the active
   range when the population allows it. Targets are excluded from the
   benign scoring set either way. *)
let target_index w k =
  if w.w_users > w.w_active then w.w_active + (k mod (w.w_users - w.w_active))
  else k mod w.w_users

let encode w v = Wire.Encoding.encode w.w_profile.Profile.encoding v

let send_as_req w host ~kdc (q : Messages.as_req) =
  Sim.Net.send w.w_net ~sport:attacker_port ~dst:kdc ~dport:Kdc.default_port host
    (encode w (Messages.as_req_to_value q))

let subject_of_addr a = "src:" ^ Sim.Addr.to_string a

(* --- password_guess ------------------------------------------------- *)

(* Wrong-key preauthenticators: each try seals a correct-looking blob
   under a key derived from a candidate that is (by construction) never
   the target's password, so every try is a clean preauth failure — the
   dictionary mill as the KDC sees it. *)
let inject_guessers w m ~labels ~excluded =
  let kdcs = Array.of_list w.w_kdcs in
  for i = 0 to m.guessers - 1 do
    let rng = Util.Rng.split w.w_rng in
    let host =
      attacker_host w
        ~name:(Printf.sprintf "atk-guess%02d" i)
        ~ip:(Sim.Addr.of_quad 10 200 0 (i + 1))
    in
    let addr = Sim.Host.primary_ip host in
    let kdc = kdcs.(i mod Array.length kdcs) in
    let targets =
      Array.init (max 1 m.guess_targets) (fun j ->
          let u = w.w_user (target_index w ((i * 37) + j)) in
          excluded := ("principal:" ^ u.Passwords.name) :: !excluded;
          u.Passwords.name)
    in
    let start = m.start +. (float_of_int i *. m.stagger) in
    labels :=
      { Telemetry.Detect.lb_class = "password_guess";
        lb_subject = subject_of_addr addr; lb_start = start }
      :: !labels;
    for j = 0 to m.guess_tries - 1 do
      Sim.Engine.schedule w.w_engine
        ~at:(start +. (float_of_int j *. m.gap))
        (fun () ->
          let nonce = Util.Rng.next_int64 rng in
          let wrong_key =
            Crypto.Str2key.derive (Printf.sprintf "not-the-password-%02d-%03d" i j)
          in
          let blob =
            Messages.seal_msg w.w_profile rng ~key:wrong_key
              ~tag:Messages.tag_preauth
              (Wire.Encoding.Tagged
                 (Messages.tag_preauth, Wire.Encoding.List [ Wire.Encoding.Int nonce ]))
          in
          send_as_req w host ~kdc
            { Messages.q_client =
                Principal.user ~realm:w.w_realm targets.(j mod Array.length targets);
              q_server = Principal.tgs ~realm:w.w_realm; q_nonce = nonce;
              q_addr = addr; q_padata = [ Messages.Pa_preauth blob ] })
    done
  done

(* --- ticket_harvest ------------------------------------------------- *)

(* Bare AS_REQs over many distinct principals, never following up: under
   preauthentication every request is refused, without it every reply is
   a crackable AS_REP — either way the signature is the same, which is
   what the harvest rule keys on. *)
let inject_harvesters w m ~labels ~excluded =
  let kdcs = Array.of_list w.w_kdcs in
  for i = 0 to m.harvesters - 1 do
    let rng = Util.Rng.split w.w_rng in
    let host =
      attacker_host w
        ~name:(Printf.sprintf "atk-harvest%02d" i)
        ~ip:(Sim.Addr.of_quad 10 200 1 (i + 1))
    in
    let addr = Sim.Host.primary_ip host in
    let kdc = kdcs.(i mod Array.length kdcs) in
    let start = m.start +. (float_of_int i *. m.stagger) in
    labels :=
      { Telemetry.Detect.lb_class = "ticket_harvest";
        lb_subject = subject_of_addr addr; lb_start = start }
      :: !labels;
    for j = 0 to m.harvest_targets - 1 do
      let u = w.w_user (target_index w ((i * m.harvest_targets) + j)) in
      excluded := ("principal:" ^ u.Passwords.name) :: !excluded;
      Sim.Engine.schedule w.w_engine
        ~at:(start +. (float_of_int j *. m.gap))
        (fun () ->
          send_as_req w host ~kdc
            { Messages.q_client = Principal.user ~realm:w.w_realm u.Passwords.name;
              q_server = Principal.tgs ~realm:w.w_realm;
              q_nonce = Util.Rng.next_int64 rng; q_addr = addr; q_padata = [] })
    done
  done

(* --- replay_auth ---------------------------------------------------- *)

(* One tap watches for each victim's next AP_REQ after the campaign
   starts, then re-injects the captured datagram byte-for-byte with the
   victim's spoofed source — [Sim.Net.inject] is the adversary's
   transmitter, outside the fault plane. The replay lands inside the skew
   window, so only the replay cache can tell; the detectable subject is
   the victim's own address. *)
let inject_replayers w m ~labels ~excluded =
  let n = Array.length w.w_client_addrs in
  if m.replayers > 0 && n > 0 then begin
    let used = Hashtbl.create 8 in
    let victims =
      Array.init m.replayers (fun i ->
          let rec pick v =
            if Hashtbl.mem used (v mod n) then pick (v + 1) else v mod n
          in
          let v = pick (((i * 97) + 11) mod n) in
          Hashtbl.replace used v ();
          w.w_client_addrs.(v))
    in
    Array.iter
      (fun victim ->
        excluded := subject_of_addr victim :: !excluded;
        let captured = ref false in
        Sim.Net.add_tap w.w_net (fun pkt ->
            if
              (not !captured)
              && Sim.Addr.equal pkt.Sim.Packet.src victim
              && pkt.Sim.Packet.dport = 600
              && Sim.Engine.now w.w_engine >= m.start
              && (match Frames.unwrap pkt.Sim.Packet.payload with
                 | Some (k, _) -> k = Frames.ap_req
                 | None -> false)
            then begin
              captured := true;
              let t0 = Sim.Engine.now w.w_engine +. m.replay_delay in
              labels :=
                { Telemetry.Detect.lb_class = "replay_auth";
                  lb_subject = subject_of_addr victim; lb_start = t0 }
                :: !labels;
              for r = 0 to m.replay_count - 1 do
                Sim.Engine.schedule w.w_engine
                  ~at:(t0 +. (float_of_int r *. m.gap))
                  (fun () -> Sim.Net.inject w.w_net pkt)
              done
            end))
      victims
  end

(* --- forged_ticket -------------------------------------------------- *)

(* The golden ticket: with a stolen service key the attacker seals a
   ticket of its own making — month-long lifetime, and every other forger
   also drops the address binding — plus a matching authenticator under a
   session key it chose itself. V4 validation accepts all of it; only the
   reported ticket shape gives it away. *)
let inject_forgers w m ~labels ~excluded =
  let n_svc = Array.length w.w_services in
  if m.forgers > 0 && n_svc > 0 then
    for i = 0 to m.forgers - 1 do
      let rng = Util.Rng.split w.w_rng in
      let host =
        attacker_host w
          ~name:(Printf.sprintf "atk-forge%02d" i)
          ~ip:(Sim.Addr.of_quad 10 200 3 (i + 1))
      in
      let addr = Sim.Host.primary_ip host in
      let svc_principal, svc_key, svc_addr = w.w_services.(i mod n_svc) in
      let victim = w.w_user (target_index w ((i * 53) + 7)) in
      excluded := ("principal:" ^ victim.Passwords.name) :: !excluded;
      let start = m.start +. (float_of_int i *. m.stagger) in
      labels :=
        { Telemetry.Detect.lb_class = "forged_ticket";
          lb_subject = subject_of_addr addr; lb_start = start }
        :: !labels;
      for j = 0 to m.presents - 1 do
        Sim.Engine.schedule w.w_engine
          ~at:(start +. (float_of_int j *. m.gap))
          (fun () ->
            let now = Sim.Net.local_time w.w_net host in
            let session_key = Crypto.Des.random_key rng in
            let ticket =
              { Messages.server = svc_principal;
                client = Principal.user ~realm:w.w_realm victim.Passwords.name;
                addr = (if i mod 2 = 0 then Some addr else None); issued_at = now;
                lifetime = m.forged_lifetime; session_key; forwarded = false;
                dup_skey = false; transited = [] }
            in
            let sealed_ticket =
              Messages.seal_msg w.w_profile rng ~key:svc_key
                ~tag:Messages.tag_ticket (Messages.ticket_to_value ticket)
            in
            let auth =
              { Messages.a_client = ticket.Messages.client; a_addr = addr;
                a_timestamp = now; a_req_cksum = None; a_ticket_cksum = None;
                a_service = None; a_seq_init = None; a_subkey_part = None }
            in
            let sealed_auth =
              Messages.seal_msg w.w_profile rng ~key:session_key
                ~tag:Messages.tag_authenticator
                (Messages.authenticator_to_value auth)
            in
            let payload =
              Frames.wrap Frames.ap_req
                (encode w
                   (Messages.ap_req_to_value
                      { Messages.r_ticket = sealed_ticket;
                        r_authenticator = sealed_auth; r_mutual = false }))
            in
            Sim.Net.send w.w_net ~sport:attacker_port ~dst:svc_addr ~dport:600 host
              payload)
      done
    done

let inject w m =
  let labels = ref [] and excluded = ref [] in
  inject_guessers w m ~labels ~excluded;
  inject_harvesters w m ~labels ~excluded;
  inject_replayers w m ~labels ~excluded;
  inject_forgers w m ~labels ~excluded;
  fun () -> (List.rev !labels, List.rev !excluded)
