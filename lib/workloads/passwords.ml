let dictionary =
  [| "password"; "secret"; "love"; "sex"; "god"; "wizard"; "dragon"; "qwerty";
     "abc123"; "letmein"; "monkey"; "shadow"; "master"; "sunshine"; "princess";
     "football"; "baseball"; "welcome"; "ninja"; "mustang"; "access"; "batman";
     "trustno1"; "superman"; "iloveyou"; "starwars"; "computer"; "michelle";
     "jessica"; "pepper"; "daniel"; "ashley"; "hunter"; "killer"; "george";
     "charlie"; "andrew"; "michael"; "thomas"; "jordan"; "harley"; "ranger";
     "buster"; "soccer"; "hockey"; "tigger"; "summer"; "orange"; "purple";
     "silver"; "golden"; "banana"; "cookie"; "flower"; "ginger"; "hammer";
     "maggie"; "marina"; "maxwell"; "merlin"; "morgan"; "nicole"; "patrick";
     "phoenix"; "rabbit"; "sparky"; "taylor"; "winter"; "zxcvbn"; "asdfgh";
     "athena"; "kerberos"; "project"; "system"; "student"; "history"; "physics";
     "biology"; "chemistry"; "library"; "coffee"; "pizza"; "guitar"; "piano";
     "violin"; "tennis"; "runner"; "swimmer"; "sailing"; "skiing"; "boston";
     "chicago"; "dallas"; "denver"; "austin"; "camden"; "oxford"; "berlin";
     "dublin"; "geneva"; "madrid"; "monday"; "friday"; "sunday"; "january";
     "october"; "spring"; "autumn"; "meadow"; "forest"; "canyon"; "desert";
     "island"; "harbor"; "bridge"; "castle"; "temple"; "garden"; "window";
     "mirror"; "candle"; "pencil"; "marker"; "folder"; "laptop"; "modem";
     "router"; "server"; "kernel"; "buffer"; "socket"; "packet"; "cursor";
     "editor"; "version"; "release"; "upgrade"; "install"; "delete"; "backup";
     "archive"; "printer"; "scanner"; "monitor"; "speaker"; "engine"; "rocket";
     "planet"; "saturn"; "jupiter"; "mercury"; "neptune"; "gemini"; "taurus";
     "dakota"; "cheyenne"; "apache"; "mohawk"; "falcon"; "eagle"; "condor";
     "osprey"; "pelican"; "dolphin"; "whale"; "salmon"; "marlin"; "barracuda";
     "panther"; "cougar"; "jaguar"; "leopard"; "cheetah"; "gazelle"; "buffalo";
     "bronco"; "stallion"; "pony"; "colt"; "filly"; "derby"; "ascot"; "epsom";
     "velvet"; "cotton"; "linen"; "denim"; "flannel"; "tweed"; "paisley";
     "magnet"; "crystal"; "quartz"; "garnet"; "topaz"; "amber"; "coral";
     "pearl"; "ivory"; "ebony"; "maple"; "willow"; "cedar"; "aspen"; "birch" |]

let weak rng =
  let word = Util.Rng.pick rng dictionary in
  match Util.Rng.int rng 4 with
  | 0 -> word
  | 1 -> word ^ string_of_int (Util.Rng.int rng 10)
  | 2 -> String.capitalize_ascii word
  | _ -> word ^ "1"

let strong_alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%"

let strong rng =
  String.init 12 (fun _ ->
      strong_alphabet.[Util.Rng.int rng (String.length strong_alphabet)])

type user = { name : string; password : string; is_weak : bool }

let population rng ~n ~weak_fraction =
  List.init n (fun i ->
      let is_weak = Util.Rng.float rng 1.0 < weak_fraction in
      { name = Printf.sprintf "u%03d" i;
        password = (if is_weak then weak rng else strong rng);
        is_weak })

(* One user, derivable from (seed, index) alone: each index gets its own
   generator, so user [i] costs O(1) whether materialized up front, lazily
   at first authentication, or independently by the client driving it —
   all three derivations agree byte-for-byte. *)
let user_at ~seed ~weak_fraction i =
  if i < 0 then invalid_arg "Passwords.user_at: negative index";
  let rng =
    Util.Rng.create
      (Int64.add seed (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (i + 1))))
  in
  let is_weak = Util.Rng.float rng 1.0 < weak_fraction in
  { name = Printf.sprintf "u%03d" i;
    password = (if is_weak then weak rng else strong rng);
    is_weak }
