(** Password populations for the guessing experiments.

    "Empirically, users do not pick good passwords unless forced to"
    [Morris & Thompson 1979; Grampp & Morris 1984; Stoll 1988]. A
    population mixes dictionary-chosen passwords (crackable) with random
    ones (not), at a configurable ratio. *)

val dictionary : string array
(** The attacker's dictionary, in guessing order. A couple of hundred
    entries in the spirit of the era's cracking lists. *)

val weak : Util.Rng.t -> string
(** A password a careless user would pick: a dictionary word, sometimes
    decorated with a digit the way users imagine helps. *)

val strong : Util.Rng.t -> string
(** A random 12-character password outside any dictionary. *)

type user = { name : string; password : string; is_weak : bool }
(** One member of the population; [is_weak] records whether the password
    came from the dictionary (i.e. whether the guessing mill can win). *)

val population : Util.Rng.t -> n:int -> weak_fraction:float -> user list
(** [n] users named [u000..], each with a password; approximately
    [weak_fraction] of them weak. Deterministic for a given generator. *)

val user_at : seed:int64 -> weak_fraction:float -> int -> user
(** User [i] of the population keyed by [seed], derived from [(seed, i)]
    alone — no shared generator stream. The load generator and the KDB's
    lazy provider call this independently and get the same user, which is
    what lets a million-principal realm exist without a million up-front
    key derivations. @raise Invalid_argument on a negative index. *)
