(** The attack-mix scheduler: hide the paper's attacks inside a load
    campaign's benign traffic, with ground-truth labels for the scorer.

    Four attacker behaviours, each run from its own dedicated hosts in an
    address block no benign client uses (the {e label} is the source
    address — what the detection plane must find):

    - [password_guess] — rapid AS_REQs with wrong-key preauthenticators
      against a few target principals: the online dictionary mill.
    - [ticket_harvest] — bare AS_REQs naming many distinct principals and
      never following up: collecting sealed AS_REPs for offline cracking.
    - [replay_auth] — a network tap captures a benign client's AP_REQ and
      re-injects it with the victim's (spoofed) source address; the
      detectable subject is the victim's address suddenly tripping replay
      caches.
    - [forged_ticket] — with a stolen service key, seal a self-made ticket
      with an over-policy lifetime (every other forger also strips the
      address binding) and present it straight to the AP server: the
      golden-ticket shape, accepted by V4 validation, visible only by its
      field anomalies.

    Everything is scheduled deterministically on the campaign's engine;
    attackers reuse no benign-client state. *)

open Kerberos

(** What the scheduler needs from the load generator's world. *)
type world = {
  w_net : Sim.Net.t;
  w_engine : Sim.Engine.t;
  w_rng : Util.Rng.t;  (** attack-plane generator (pre-split from the run's) *)
  w_profile : Profile.t;
  w_realm : string;
  w_kdcs : Sim.Addr.t list;
  w_services : (Principal.t * bytes * Sim.Addr.t) array;
      (** principal, service key (what a forger steals), address *)
  w_client_addrs : Sim.Addr.t array;  (** benign clients' source addresses *)
  w_user : int -> Passwords.user;  (** user [i] of the population *)
  w_users : int;
  w_active : int;  (** how many of them drive benign traffic *)
}

type mix = {
  guessers : int;
  guess_targets : int;  (** principals each guesser cycles through *)
  guess_tries : int;  (** AS_REQs per guesser *)
  harvesters : int;
  harvest_targets : int;  (** distinct principals each harvester asks about *)
  replayers : int;  (** victims whose AP_REQ is captured and replayed *)
  replay_count : int;  (** spoofed re-sends per victim *)
  replay_delay : float;  (** capture-to-first-replay, within the skew window *)
  forgers : int;
  forged_lifetime : float;  (** far above any realm policy *)
  presents : int;  (** AP_REQs per forger *)
  start : float;  (** campaign start, simulated seconds (after warm-up) *)
  stagger : float;  (** launch spacing between attackers of one class *)
  gap : float;  (** spacing between one attacker's own requests *)
}

val default_mix : mix
(** 4 of each class starting at t=60 s: 40 guesses over 3 targets,
    30 harvested principals, 3 replays per victim, 30-day forged
    lifetimes presented twice. *)

val mix_to_json : mix -> Telemetry.Json.t

val inject : world -> mix -> unit -> Telemetry.Detect.label list * string list
(** Schedule the whole mix onto the world's engine. Returns a thunk to
    call {e after} the engine drains: ground-truth labels (one per
    attacker actually launched — a replayer whose victim never spoke
    again yields no label) and the subjects to exclude from the benign
    set (replay victims' addresses, attacker-touched principals). *)
