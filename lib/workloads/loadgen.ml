open Kerberos

type config = {
  users : int;
  shards : int;
  kdcs : int;
  services : int;
  active_clients : int;
  requests_per_client : int;
  think_time : float;
  ramp : float;
  ccache : bool;
  zipf_exponent : float;
  seed : int64;
  profile : Profile.t;
  lifetime : float;
  lightweight : bool;
  lazy_users : bool;
}

let default =
  { users = 1000; shards = 2; kdcs = 2; services = 10; active_clients = 200;
    requests_per_client = 150; think_time = 0.2; ramp = 20.0; ccache = true;
    zipf_exponent = 1.3; seed = 0x10adL; profile = Profile.v4;
    lifetime = 28800.0; lightweight = false; lazy_users = false }

type percentiles = { p50 : float; p90 : float; p99 : float }

type report = {
  r_config : config;
  sim_seconds : float;
  completed : int;
  errors : int;
  as_requests : int;
  tgs_requests : int;
  ap_exchanges : int;
  ccache_hits : int;
  ccache_misses : int;
  as_latency : percentiles;
  tgs_latency : percentiles;
  ap_latency : percentiles;
  shard_lookups : int array;
  shard_entries : int array;
  throughput : float;
  span_breakdown : (string * int * float) list;
}

type timing = {
  setup_seconds : float;
  run_seconds : float;
  events : int;
  events_per_second : float;
}

let realm = "LOAD"
let weak_fraction = 0.4

(* Quantiles straight from the telemetry histograms — interpolated inside
   the bucket the rank falls in and clamped to the observed min/max (see
   {!Telemetry.Metrics.quantile}), so the report's percentiles are the
   same numbers the registry's text/JSON export prints. *)
let percentiles_of_hist h =
  { p50 = Telemetry.Metrics.quantile h 0.50;
    p90 = Telemetry.Metrics.quantile h 0.90;
    p99 = Telemetry.Metrics.quantile h 0.99 }

(* Service popularity: zipf-ish weights 1/rank^s, sampled by inverse CDF.
   A couple of services carry most of the traffic — which is exactly what
   makes the credential cache pay off at steady state. *)
let zipf_sampler cfg =
  let w =
    Array.init cfg.services (fun i ->
        1.0 /. Float.pow (float_of_int (i + 1)) cfg.zipf_exponent)
  in
  let cum = Array.make cfg.services 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i x ->
      total := !total +. x;
      cum.(i) <- !total)
    w;
  fun rng ->
    let u = Util.Rng.float rng !total in
    let rec find i = if i >= cfg.services - 1 || u < cum.(i) then i else find (i + 1) in
    find 0

let validate cfg =
  if cfg.users < 1 then invalid_arg "Loadgen: users must be >= 1";
  if cfg.kdcs < 1 || cfg.kdcs > 200 then invalid_arg "Loadgen: kdcs out of range";
  if cfg.services < 1 || cfg.services > 200 then
    invalid_arg "Loadgen: services out of range";
  if cfg.active_clients < 1 || cfg.active_clients > 30_000 then
    invalid_arg "Loadgen: active_clients out of range";
  if cfg.active_clients > cfg.users then
    invalid_arg "Loadgen: more active clients than users";
  if cfg.requests_per_client < 1 then
    invalid_arg "Loadgen: requests_per_client must be >= 1";
  if cfg.shards < 1 then invalid_arg "Loadgen: shards must be >= 1"

(* User [i] of this run's population — derived from (seed, i) alone, so
   the registration path, the lazy provider and the client all agree
   without sharing a generator (see {!Passwords.user_at}). *)
let user_of cfg i = Passwords.user_at ~seed:cfg.seed ~weak_fraction i

(* The per-span breakdown: every "span.<name>.seconds" histogram's count
   and summed simulated time, largest first. Sim-time sums are
   deterministic, so this lives inside the report (unlike wall time). *)
let breakdown_of tel =
  let m = Telemetry.Collector.metrics tel in
  List.filter_map
    (fun (name, h) ->
      let n = String.length name in
      if n > 13 && String.sub name 0 5 = "span." && String.sub name (n - 8) 8 = ".seconds"
      then
        Some (String.sub name 5 (n - 13), Telemetry.Metrics.hist_count h,
              Telemetry.Metrics.hist_sum h)
      else None)
    (Telemetry.Metrics.histograms m)
  |> List.filter (fun (_, c, _) -> c > 0)
  |> List.sort (fun (na, _, sa) (nb, _, sb) -> compare (sb, na) (sa, nb))

(* Benign client [i]'s one source address — shared by the traffic loop,
   the attack world (replay victims) and the benign scoring set. *)
let client_addr i = Sim.Addr.of_quad 10 (2 + (i / 250)) (i mod 250) 1

let run_timed ?on_world cfg =
  validate cfg;
  let t0 = Sys.time () in
  (* A private collector: latency histograms and KDC counters for this run
     only, clocked on this run's engine. Lightweight mode keeps exactly
     the metrics the report below reads and skips the trace machinery. *)
  let tel = Telemetry.Collector.create ~lightweight:cfg.lightweight () in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create ~telemetry:tel engine in
  let rng = Util.Rng.create cfg.seed in
  let db = Kdb.create ~shards:cfg.shards () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  (* The KDC pool: every member serves the same sharded database. *)
  let kdc_addrs =
    List.init cfg.kdcs (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "kdc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 0 0 (i + 1) ] ()
        in
        Sim.Net.attach net host;
        let kdc =
          Kdc.create ~seed:(Util.Rng.next_int64 rng) ~telemetry:tel ~realm
            ~profile:cfg.profile ~lifetime:cfg.lifetime db
        in
        Kdc.install net host kdc ();
        (realm, Sim.Host.primary_ip host))
  in
  (* Application services, one host each, echo handlers. *)
  let services =
    Array.init cfg.services (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "svc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 1 (i / 200) ((i mod 200) + 1) ] ()
        in
        Sim.Net.attach net host;
        let principal =
          Principal.service ~realm (Printf.sprintf "app%02d" i)
            ~host:host.Sim.Host.name
        in
        let key = Crypto.Des.random_key rng in
        Kdb.add_service db principal ~key;
        let (_ : Apserver.t) =
          Apserver.install ~seed:(Util.Rng.next_int64 rng) net host
            ~profile:cfg.profile ~principal ~key ~port:600
            ~handler:(fun _session ~client:_ data -> Some data)
            ()
        in
        (principal, key, Sim.Host.primary_ip host))
  in
  (* The population. Eager mode registers every principal up front —
     deriving each key from its password, exactly the work a realm-sized
     user community costs. Lazy mode registers nobody: a principal's
     entry is derived at its first AS request, so a million-user realm
     costs only its authenticating fraction. *)
  if cfg.lazy_users then
    Kdb.set_lazy_provider db (fun name ->
        match Principal.of_string name with
        | { Principal.name = n; instance = ""; realm = r }
          when r = realm && String.length n > 1 && n.[0] = 'u' -> (
            match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
            | Some i when i >= 0 && i < cfg.users ->
                let u = user_of cfg i in
                if String.equal u.Passwords.name n then
                  Some { Kdb.key = Crypto.Str2key.derive u.Passwords.password;
                         kind = Kdb.User }
                else None
            | _ -> None)
        | _ -> None
        | exception Invalid_argument _ -> None)
  else
    for i = 0 to cfg.users - 1 do
      let u = user_of cfg i in
      Kdb.add_user db (Principal.user ~realm u.Passwords.name)
        ~password:u.Passwords.password
    done;
  (* Active clients: open-loop traffic. Each client's requests fire on a
     fixed absolute schedule regardless of completions — arrival is not
     gated on service, as in any open-loop load test. Request [j]
     schedules request [j+1] when it fires (same instants as scheduling
     the whole chain up front, without holding clients*requests closures
     in the heap at once), and the ramp of start events goes in as one
     bulk {!Sim.Engine.schedule_batch}. *)
  let completed = ref 0 and errors = ref 0 in
  let pick_service = zipf_sampler cfg in
  let starts = ref [] in
  let clients =
    Array.init cfg.active_clients (fun i ->
        let u = user_of cfg i in
        let host =
          Sim.Host.create ~name:(Printf.sprintf "c%05d" i) ~ips:[ client_addr i ] ()
        in
        Sim.Net.attach net host;
        let client =
          Client.create ~seed:(Util.Rng.next_int64 rng)
            ~password:u.Passwords.password ~ccache:cfg.ccache
            ~kdc_rotation:true net host ~profile:cfg.profile ~kdcs:kdc_addrs
            (Principal.user ~realm u.Passwords.name)
        in
        let crng = Util.Rng.create (Util.Rng.next_int64 rng) in
        let start = Util.Rng.float rng cfg.ramp in
        let rec fire j () =
          let svc_principal, _, svc_addr = services.(pick_service crng) in
          Client.get_ticket client ~service:svc_principal (function
            | Error _ -> incr errors
            | Ok creds ->
                Client.ap_exchange client creds ~dst:svc_addr ~dport:600
                  (function
                  | Error _ -> incr errors
                  | Ok chan ->
                      Client.call_priv client chan (Bytes.of_string "PING")
                        ~k:(function
                        | Error _ -> incr errors
                        | Ok _ -> incr completed)));
          if j + 1 < cfg.requests_per_client then
            Sim.Engine.schedule engine
              ~at:(start +. 1.0 +. (float_of_int (j + 1) *. cfg.think_time))
              (fire (j + 1))
        in
        starts :=
          ( start,
            fun () ->
              Client.login client ~password:u.Passwords.password (function
                | Ok _ -> ()
                | Error _ -> incr errors);
              Sim.Engine.schedule engine ~at:(start +. 1.0) (fire 0) )
          :: !starts;
        client)
  in
  Sim.Engine.schedule_batch engine (List.rev !starts);
  (* The attack plane, if any, schedules itself into the same engine now —
     after the benign world is fully built (splitting the generator here
     perturbs nothing: the benign run draws no more from [rng]). *)
  (match on_world with
  | None -> ()
  | Some f ->
      f
        { Attack_mix.w_net = net; w_engine = engine; w_rng = Util.Rng.split rng;
          w_profile = cfg.profile; w_realm = realm;
          w_kdcs = List.map snd kdc_addrs; w_services = services;
          w_client_addrs = Array.init cfg.active_clients client_addr;
          w_user = user_of cfg; w_users = cfg.users; w_active = cfg.active_clients }
        tel);
  let setup_seconds = Sys.time () -. t0 in
  let t1 = Sys.time () in
  Sim.Engine.run engine;
  let run_seconds = Sys.time () -. t1 in
  let m = Telemetry.Collector.metrics tel in
  let hist name = Telemetry.Metrics.histogram m name in
  let count name = Telemetry.Metrics.hist_count (hist name) in
  let hits = Array.fold_left (fun a c -> a + Client.ccache_hits c) 0 clients in
  let misses = Array.fold_left (fun a c -> a + Client.ccache_misses c) 0 clients in
  let sim_seconds = Sim.Engine.now engine in
  let events = Sim.Engine.executed engine in
  ( { r_config = cfg; sim_seconds; completed = !completed; errors = !errors;
      as_requests = count "span.kdc.as_req.seconds";
      tgs_requests = count "span.kdc.tgs_req.seconds";
      ap_exchanges = count "span.client.ap_exchange.seconds";
      ccache_hits = hits; ccache_misses = misses;
      as_latency = percentiles_of_hist (hist "span.kdc.as_req.seconds");
      tgs_latency = percentiles_of_hist (hist "span.client.tgs_exchange.seconds");
      ap_latency = percentiles_of_hist (hist "span.client.ap_exchange.seconds");
      shard_lookups = Kdb.shard_lookups db;
      shard_entries = Kdb.shard_sizes db;
      throughput =
        (if sim_seconds > 0.0 then float_of_int !completed /. sim_seconds else 0.0);
      span_breakdown = breakdown_of tel },
    { setup_seconds; run_seconds; events;
      events_per_second =
        (if run_seconds > 0.0 then float_of_int events /. run_seconds else 0.0) } )

let run cfg = fst (run_timed cfg)

let max_over_mean a =
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left ( + ) 0 a in
    if total = 0 then 1.0
    else
      let mean = float_of_int total /. float_of_int n in
      let mx = Array.fold_left max 0 a in
      float_of_int mx /. mean
  end

let shard_balance r = max_over_mean r.shard_entries
let lookup_balance r = max_over_mean r.shard_lookups

let json_percentiles p =
  Telemetry.Json.Obj
    [ ("p50", Telemetry.Json.Float p.p50); ("p90", Telemetry.Json.Float p.p90);
      ("p99", Telemetry.Json.Float p.p99) ]

let json_config (c : config) =
  let open Telemetry.Json in
  Obj
    [ ("users", Int c.users); ("shards", Int c.shards); ("kdcs", Int c.kdcs);
      ("services", Int c.services); ("active_clients", Int c.active_clients);
      ("requests_per_client", Int c.requests_per_client);
      ("think_time", Float c.think_time); ("ramp", Float c.ramp);
      ("ccache", Bool c.ccache); ("zipf_exponent", Float c.zipf_exponent);
      ("seed", Str (Int64.to_string c.seed));
      ("profile", Str c.profile.Profile.name); ("lifetime", Float c.lifetime);
      ("lightweight", Bool c.lightweight); ("lazy_users", Bool c.lazy_users) ]

let timing_to_json t =
  let open Telemetry.Json in
  Obj
    [ ("setup_seconds", Float t.setup_seconds);
      ("run_seconds", Float t.run_seconds); ("sim_events", Int t.events);
      ("sim_events_per_wall_second", Float t.events_per_second) ]

let report_to_json r =
  let open Telemetry.Json in
  Obj
    [ ("config", json_config r.r_config);
      ("sim_seconds", Float r.sim_seconds); ("completed", Int r.completed);
      ("errors", Int r.errors); ("as_requests", Int r.as_requests);
      ("tgs_requests", Int r.tgs_requests); ("ap_exchanges", Int r.ap_exchanges);
      ("ccache_hits", Int r.ccache_hits); ("ccache_misses", Int r.ccache_misses);
      ("as_latency", json_percentiles r.as_latency);
      ("tgs_latency", json_percentiles r.tgs_latency);
      ("ap_latency", json_percentiles r.ap_latency);
      ("shard_lookups",
       List (Array.to_list (Array.map (fun n -> Int n) r.shard_lookups)));
      ("shard_entries",
       List (Array.to_list (Array.map (fun n -> Int n) r.shard_entries)));
      ("shard_balance", Float (shard_balance r));
      ("lookup_balance", Float (lookup_balance r));
      ("throughput_per_sim_second", Float r.throughput);
      ("span_breakdown",
       List
         (List.map
            (fun (name, count, sum) ->
              Obj
                [ ("span", Str name); ("count", Int count);
                  ("sim_seconds", Float sum) ])
            r.span_breakdown)) ]

(* --- blended attack campaign ----------------------------------------- *)

type campaign = {
  ca_report : report;
  ca_timing : timing;
  ca_mix : Attack_mix.mix;
  ca_policy : Telemetry.Detect.policy;
  ca_events : int;
  ca_alerts : Telemetry.Detect.alert list;
  ca_labels : Telemetry.Detect.label list;
  ca_score : Telemetry.Detect.score;
}

(* The benign scoring population: every active client's source address and
   principal, minus whatever the mix touched (replay victims, targeted
   principals) — a subject the attack borrowed is neither benign nor an
   attacker, so it scores as neither. *)
let benign_subjects cfg ~excluded =
  let ex = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ex s ()) excluded;
  let acc = ref [] in
  for i = cfg.active_clients - 1 downto 0 do
    let pr = "principal:" ^ (user_of cfg i).Passwords.name in
    if not (Hashtbl.mem ex pr) then acc := pr :: !acc;
    let src = "src:" ^ Sim.Addr.to_string (client_addr i) in
    if not (Hashtbl.mem ex src) then acc := src :: !acc
  done;
  !acc

let run_campaign ?policy ?(mix = Attack_mix.default_mix) cfg =
  let policy =
    match policy with
    | Some p -> p
    | None ->
        (* Realm policy is what the run actually enforces: the configured
           ticket lifetime and the profile's address binding. *)
        { Telemetry.Detect.default_policy with
          Telemetry.Detect.max_lifetime = cfg.lifetime;
          expect_addr = cfg.profile.Profile.addr_in_ticket }
  in
  let det = Telemetry.Detect.create ~policy () in
  let ground = ref (fun () -> ([], [])) in
  let report, timing =
    run_timed cfg ~on_world:(fun w tel ->
        Telemetry.Detect.attach det tel;
        ground := Attack_mix.inject w mix)
  in
  let labels, excluded = !ground () in
  let score =
    Telemetry.Detect.score det ~labels ~benign:(benign_subjects cfg ~excluded)
  in
  ( det,
    { ca_report = report; ca_timing = timing; ca_mix = mix; ca_policy = policy;
      ca_events = Telemetry.Detect.observed det;
      ca_alerts = Telemetry.Detect.alerts det; ca_labels = labels;
      ca_score = score } )

(* Everything in this object is a function of (config, mix, policy, seed):
   no wall-clock numbers, so two runs at the same seed serialize to the
   same bytes — the determinism the smoke test byte-compares. *)
let campaign_to_json c =
  let open Telemetry.Json in
  Obj
    [ ("config", json_config c.ca_report.r_config);
      ("mix", Attack_mix.mix_to_json c.ca_mix);
      ("policy", Telemetry.Detect.policy_to_json c.ca_policy);
      ("report", report_to_json c.ca_report);
      ("detector_events", Int c.ca_events);
      ("labels",
       List
         (List.map
            (fun (l : Telemetry.Detect.label) ->
              Obj
                [ ("class", Str l.Telemetry.Detect.lb_class);
                  ("subject", Str l.lb_subject); ("start", Float l.lb_start) ])
            c.ca_labels));
      ("alerts", Telemetry.Detect.alerts_to_json c.ca_alerts);
      ("score", Telemetry.Detect.score_to_json c.ca_score) ]

type perf_row = {
  p_label : string;
  p_schedule_cache : bool;
  p_lightweight : bool;
  p_timing : timing;
}

type suite = {
  main : report;
  main_timing : timing;
  cache_off : report;
  shard_ablation : report list;
  perf : perf_row list;
}

(* Shard counts for the sweep: powers of two up to the configured count,
   always ending at the configured count itself. *)
let ablation_shards cfg =
  let rec go acc s = if s >= cfg.shards then List.rev (cfg.shards :: acc) else go (s :: acc) (2 * s) in
  go [] 1

(* The fast-path ablation measures engine cost, so it must be honest
   about the baseline: eager population and full telemetry, exactly the
   pre-fast-path configuration, at traffic every cell can afford. *)
let perf_config cfg =
  { cfg with
    users = min cfg.users 10_000;
    active_clients = min cfg.active_clients 1_000;
    requests_per_client = min cfg.requests_per_client 40;
    lazy_users = false }

let perf_ablation cfg =
  let base = perf_config cfg in
  let row p_label ~cache ~lightweight =
    Crypto.Des.set_schedule_cache cache;
    Fun.protect
      ~finally:(fun () -> Crypto.Des.set_schedule_cache true)
      (fun () ->
        (* Best of two, behind a major collection: a cell timed right
           after a realm-sized main run would otherwise inherit its heap
           and read as slower than an identical cell timed cold. *)
        let timed () =
          Gc.full_major ();
          snd (run_timed { base with lightweight })
        in
        let t1 = timed () in
        let t2 = timed () in
        let t = if t2.run_seconds < t1.run_seconds then t2 else t1 in
        { p_label; p_schedule_cache = cache; p_lightweight = lightweight;
          p_timing = t })
  in
  [ row "baseline" ~cache:false ~lightweight:false;
    row "schedule-cache" ~cache:true ~lightweight:false;
    row "lightweight-telemetry" ~cache:false ~lightweight:true;
    row "fast-path" ~cache:true ~lightweight:true ]

let run_suite cfg =
  let main, main_timing = run_timed cfg in
  let cache_off = run { cfg with ccache = false } in
  (* The sweep runs reduced traffic: it measures partition balance and
     scaling shape, not absolute throughput. *)
  let small =
    { cfg with
      active_clients = max 10 (cfg.active_clients / 4);
      requests_per_client = max 5 (cfg.requests_per_client / 5) }
  in
  let shard_ablation =
    List.map (fun s -> run { small with shards = s }) (ablation_shards cfg)
  in
  { main; main_timing; cache_off; shard_ablation; perf = perf_ablation cfg }

let tgs_reduction s =
  if s.main.tgs_requests = 0 then Float.of_int s.cache_off.tgs_requests
  else float_of_int s.cache_off.tgs_requests /. float_of_int s.main.tgs_requests

let fast_path_speedup s =
  let find f = List.find_opt f s.perf in
  match
    ( find (fun r -> r.p_schedule_cache && r.p_lightweight),
      find (fun r -> (not r.p_schedule_cache) && not r.p_lightweight) )
  with
  | Some fast, Some base when base.p_timing.events_per_second > 0.0 ->
      fast.p_timing.events_per_second /. base.p_timing.events_per_second
  | _ -> 1.0

(* --- "one service goes viral" replication campaign -------------------- *)

(* The rebalancing experiment behind BENCH_replication.json. Three runs at
   one seed: [calm] (no spike — the latency baseline), [unreplicated]
   (a second open-loop wave of cache-less clients hammers one service
   through the primary alone — the overload), and [replicated] (the same
   spike against a primary + replica pool with WAL shipping, bounded-lag
   routing, background password churn, and a replica crash + rejoin in
   the middle of the storm). Every run routes reads through a
   {!Replication.t} with the same per-lookup service time, so the three
   rows differ only in pool size and traffic — the comparison is fair. *)

type viral_config = {
  v_base : config;          (* the calm world: population, shards, KDCs *)
  v_replicas : int;         (* pool size in the replicated run *)
  v_service_time : float;   (* simulated cost of one lookup at a unit *)
  v_max_lag : int;          (* bounded-lag eligibility, in WAL records *)
  v_ship_every : float;     (* WAL shipping cadence (seconds) *)
  v_spike_at : float;       (* when the service goes viral *)
  v_spike_clients : int;    (* size of the viral wave *)
  v_spike_requests : int;   (* requests per viral client *)
  v_spike_think : float;    (* viral wave think time *)
  v_spike_service : int;    (* which service goes viral *)
  v_churn_every : float;    (* password-change cadence; 0 = no churn *)
  v_crash_replica : bool;   (* crash + rejoin replica 0 mid-spike *)
}

let default_viral =
  { v_base =
      { default with
        users = 400; shards = 8; kdcs = 2; services = 10; active_clients = 60;
        requests_per_client = 15; think_time = 0.3; ramp = 5.0;
        seed = 0x7e91caL; lightweight = true };
    v_replicas = 3; v_service_time = 0.0005; v_max_lag = 8;
    v_ship_every = 0.1; v_spike_at = 8.0; v_spike_clients = 80;
    v_spike_requests = 40; v_spike_think = 0.05; v_spike_service = 0;
    v_churn_every = 0.4; v_crash_replica = true }

type viral_row = {
  vr_label : string;
  vr_completed : int;
  vr_errors : int;
  vr_as_requests : int;
  vr_tgs_requests : int;
  vr_tgs_latency : percentiles;
  vr_shard_lookup_balance : float;  (* per-shard skew seen by the primary *)
  vr_unit_reads : (string * int) list;
  vr_unit_balance : float;          (* max/mean over serving units *)
  vr_fresh_fallbacks : int;
  vr_stale_fallbacks : int;
  vr_shipped_records : int;
  vr_catchups : int;
  vr_max_lag_seen : int;
  vr_replica_crashes : int;
  vr_converged : bool;  (* digests + version vectors equal at quiesce *)
  vr_sim_seconds : float;
}

let validate_viral v =
  validate v.v_base;
  if v.v_replicas < 0 || v.v_replicas > 16 then
    invalid_arg "Loadgen: v_replicas out of range";
  if v.v_service_time < 0.0 then invalid_arg "Loadgen: negative service time";
  if v.v_ship_every <= 0.0 then invalid_arg "Loadgen: ship cadence must be > 0";
  if v.v_spike_service < 0 || v.v_spike_service >= v.v_base.services then
    invalid_arg "Loadgen: v_spike_service out of range";
  if v.v_spike_clients < 1 || v.v_spike_requests < 1 then
    invalid_arg "Loadgen: spike size out of range";
  (* Base actives, the viral wave and the churn pool draw on disjoint
     user index ranges. *)
  if v.v_base.active_clients + v.v_spike_clients + 50 > v.v_base.users then
    invalid_arg "Loadgen: users must cover actives + spike wave + churn pool"

let run_viral_one v ~label ~replicas ~spike =
  let cfg = v.v_base in
  let tel = Telemetry.Collector.create ~lightweight:cfg.lightweight () in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create ~telemetry:tel engine in
  let rng = Util.Rng.create cfg.seed in
  let db = Kdb.create ~shards:cfg.shards () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  (* Population first, durability second: the initial checkpoint then
     covers the whole registered realm and replicas bootstrap from it
     instead of replaying one Put per principal. *)
  let services =
    Array.init cfg.services (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "svc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 1 (i / 200) ((i mod 200) + 1) ] ()
        in
        Sim.Net.attach net host;
        let principal =
          Principal.service ~realm (Printf.sprintf "app%02d" i)
            ~host:host.Sim.Host.name
        in
        let key = Crypto.Des.random_key rng in
        Kdb.add_service db principal ~key;
        let (_ : Apserver.t) =
          Apserver.install ~seed:(Util.Rng.next_int64 rng) net host
            ~profile:cfg.profile ~principal ~key ~port:600
            ~handler:(fun _session ~client:_ data -> Some data)
            ()
        in
        (principal, key, Sim.Host.primary_ip host))
  in
  for i = 0 to cfg.users - 1 do
    let u = user_of cfg i in
    Kdb.add_user db (Principal.user ~realm u.Passwords.name)
      ~password:u.Passwords.password
  done;
  Kdb.enable_durability ~checkpoint_every:500 db;
  let router =
    Replication.create ~service_time:v.v_service_time ~max_lag:v.v_max_lag
      ~telemetry:tel db
  in
  let pool_replicas =
    List.init replicas (fun i ->
        let r =
          Kdb.attach_replica ~telemetry:tel db
            ~name:(Printf.sprintf "replica%d" i)
        in
        Replication.add_replica router r;
        r)
  in
  let kdc_addrs =
    List.init cfg.kdcs (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "kdc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 0 0 (i + 1) ] ()
        in
        Sim.Net.attach net host;
        let kdc =
          Kdc.create ~seed:(Util.Rng.next_int64 rng) ~telemetry:tel
            ~reads:router ~realm ~profile:cfg.profile ~lifetime:cfg.lifetime db
        in
        Kdc.install net host kdc ();
        (realm, Sim.Host.primary_ip host))
  in
  let completed = ref 0 and errors = ref 0 in
  let pick_service = zipf_sampler cfg in
  let starts = ref [] in
  (* The calm background: the same open-loop clients as {!run_timed}. *)
  Array.iteri
    (fun i () ->
      let u = user_of cfg i in
      let host =
        Sim.Host.create ~name:(Printf.sprintf "c%05d" i)
          ~ips:[ client_addr i ] ()
      in
      Sim.Net.attach net host;
      let client =
        Client.create ~seed:(Util.Rng.next_int64 rng)
          ~password:u.Passwords.password ~ccache:cfg.ccache ~kdc_rotation:true
          net host ~profile:cfg.profile ~kdcs:kdc_addrs
          (Principal.user ~realm u.Passwords.name)
      in
      let crng = Util.Rng.create (Util.Rng.next_int64 rng) in
      let start = Util.Rng.float rng cfg.ramp in
      let rec fire j () =
        let svc_principal, _, svc_addr = services.(pick_service crng) in
        Client.get_ticket client ~service:svc_principal (function
          | Error _ -> incr errors
          | Ok creds ->
              Client.ap_exchange client creds ~dst:svc_addr ~dport:600
                (function
                | Error _ -> incr errors
                | Ok chan ->
                    Client.call_priv client chan (Bytes.of_string "PING")
                      ~k:(function
                      | Error _ -> incr errors
                      | Ok _ -> incr completed)));
        if j + 1 < cfg.requests_per_client then
          Sim.Engine.schedule engine
            ~at:(start +. 1.0 +. (float_of_int (j + 1) *. cfg.think_time))
            (fire (j + 1))
      in
      starts :=
        ( start,
          fun () ->
            Client.login client ~password:u.Passwords.password (function
              | Ok _ -> ()
              | Error _ -> incr errors);
            Sim.Engine.schedule engine ~at:(start +. 1.0) (fire 0) )
        :: !starts)
    (Array.make cfg.active_clients ());
  (* The viral wave: cache-less clients, all aimed at one service, open
     loop at a much hotter think time. Cache-less is the realistic shape —
     a service suddenly popular is popular with *new* clients, who all
     need tickets. *)
  if spike then
    Array.iteri
      (fun j () ->
        let i = cfg.active_clients + j in
        let u = user_of cfg i in
        let host =
          Sim.Host.create ~name:(Printf.sprintf "v%05d" j)
            ~ips:[ client_addr i ] ()
        in
        Sim.Net.attach net host;
        let client =
          Client.create ~seed:(Util.Rng.next_int64 rng)
            ~password:u.Passwords.password ~ccache:false ~kdc_rotation:true
            net host ~profile:cfg.profile ~kdcs:kdc_addrs
            (Principal.user ~realm u.Passwords.name)
        in
        let svc_principal, _, svc_addr = services.(v.v_spike_service) in
        let start = v.v_spike_at +. Util.Rng.float rng 1.0 in
        let rec fire j () =
          Client.get_ticket client ~service:svc_principal (function
            | Error _ -> incr errors
            | Ok creds ->
                Client.ap_exchange client creds ~dst:svc_addr ~dport:600
                  (function
                  | Error _ -> incr errors
                  | Ok chan ->
                      Client.call_priv client chan (Bytes.of_string "VIRAL")
                        ~k:(function
                        | Error _ -> incr errors
                        | Ok _ -> incr completed)));
          if j + 1 < v.v_spike_requests then
            Sim.Engine.schedule engine
              ~at:(start +. 1.0 +. (float_of_int (j + 1) *. v.v_spike_think))
              (fire (j + 1))
        in
        starts :=
          ( start,
            fun () ->
              Client.login client ~password:u.Passwords.password (function
                | Ok _ -> ()
                | Error _ -> incr errors);
              Sim.Engine.schedule engine ~at:(start +. 1.0) (fire 0) )
          :: !starts)
      (Array.make v.v_spike_clients ());
  let base_end =
    cfg.ramp +. 1.0
    +. (float_of_int cfg.requests_per_client *. cfg.think_time)
  in
  let spike_end =
    if spike then
      v.v_spike_at +. 2.0
      +. (float_of_int v.v_spike_requests *. v.v_spike_think)
    else 0.0
  in
  let horizon = Float.max base_end spike_end +. 3.0 in
  (* The replication daemon, self-tuning: check lag on the (cheap)
     cadence but ship only once some live replica has fallen behind by
     half the staleness bound ({!Replication.ship_if_lagged}). The check
     cadence is fast relative to the write rate, so lag stays strictly
     inside [max_lag] and bounded-staleness routing never observes a
     replica at the bound — asserted by test_replication's bursty-write
     case — while idle stretches ship nothing. *)
  let max_lag_seen = ref 0 in
  let shipped = ref 0 in
  if replicas > 0 then begin
    let rec ship_tick at () =
      let lag = Replication.max_lag_live router in
      if lag > !max_lag_seen then max_lag_seen := lag;
      shipped := !shipped + Replication.ship_if_lagged ~fraction:0.5 router;
      if at < horizon then
        Sim.Engine.schedule engine ~at:(at +. v.v_ship_every)
          (ship_tick (at +. v.v_ship_every))
    in
    Sim.Engine.schedule engine ~at:v.v_ship_every (ship_tick v.v_ship_every)
  end;
  (* Background password churn on a user pool nobody logs in as: write
     traffic for the WAL to ship, and the reason the freshness floor
     exists. *)
  if v.v_churn_every > 0.0 then begin
    let churn_base = cfg.active_clients + (if spike then v.v_spike_clients else 0) in
    let rec churn_tick n at () =
      let i = churn_base + (n mod 50) in
      let u = user_of cfg i in
      Kdb.add_user db (Principal.user ~realm u.Passwords.name)
        ~password:(Printf.sprintf "%s#%d" u.Passwords.password n);
      if at < horizon then
        Sim.Engine.schedule engine ~at:(at +. v.v_churn_every)
          (churn_tick (n + 1) (at +. v.v_churn_every))
    in
    Sim.Engine.schedule engine ~at:1.0 (churn_tick 0 1.0)
  end;
  (* A replica dies in the middle of the storm and rejoins through the
     reconcile machinery while writes keep flowing. *)
  let crashes = ref 0 in
  (match (v.v_crash_replica && spike, pool_replicas) with
  | true, r0 :: _ ->
      let mid = v.v_spike_at +. 1.0 in
      Sim.Engine.schedule engine ~at:mid (fun () ->
          incr crashes;
          Kdb.replica_crash r0);
      Sim.Engine.schedule engine ~at:(mid +. 0.6) (fun () ->
          ignore (Kdb.replica_rejoin r0 : int))
  | _ -> ());
  Sim.Engine.schedule_batch engine (List.rev !starts);
  Sim.Engine.run engine;
  (* Quiesce: one final shipping round, then convergence is digest +
     version-vector equality on every subscribed shard. *)
  shipped := !shipped + Replication.ship_all router;
  let converged =
    List.for_all
      (fun r ->
        let rdb = Kdb.replica_db r in
        Kdb.version_vector rdb = Kdb.version_vector db
        && Kdb.digests rdb = Kdb.digests db)
      pool_replicas
  in
  let m = Telemetry.Collector.metrics tel in
  let hist name = Telemetry.Metrics.histogram m name in
  let unit_reads = Replication.unit_reads router in
  { vr_label = label;
    vr_completed = !completed;
    vr_errors = !errors;
    vr_as_requests = Telemetry.Metrics.hist_count (hist "span.kdc.as_req.seconds");
    vr_tgs_requests = Telemetry.Metrics.hist_count (hist "span.kdc.tgs_req.seconds");
    vr_tgs_latency = percentiles_of_hist (hist "span.client.tgs_exchange.seconds");
    vr_shard_lookup_balance = max_over_mean (Kdb.shard_lookups db);
    vr_unit_reads = unit_reads;
    vr_unit_balance =
      max_over_mean (Array.of_list (List.map snd unit_reads));
    vr_fresh_fallbacks = Replication.fresh_fallbacks router;
    vr_stale_fallbacks = Replication.stale_fallbacks router;
    vr_shipped_records = !shipped;
    vr_catchups =
      List.fold_left (fun a r -> a + Kdb.replica_catchups r) 0 pool_replicas;
    vr_max_lag_seen = !max_lag_seen;
    vr_replica_crashes = !crashes;
    vr_converged = converged;
    vr_sim_seconds = Sim.Engine.now engine }

type viral_suite = {
  vs_config : viral_config;
  vs_calm : viral_row;
  vs_unreplicated : viral_row;
  vs_replicated : viral_row;
}

let run_viral v =
  validate_viral v;
  { vs_config = v;
    vs_calm = run_viral_one v ~label:"calm" ~replicas:0 ~spike:false;
    vs_unreplicated =
      run_viral_one v ~label:"viral-unreplicated" ~replicas:0 ~spike:true;
    vs_replicated =
      run_viral_one v ~label:"viral-replicated" ~replicas:v.v_replicas
        ~spike:true }

let viral_p99_ratio s =
  if s.vs_calm.vr_tgs_latency.p99 > 0.0 then
    s.vs_replicated.vr_tgs_latency.p99 /. s.vs_calm.vr_tgs_latency.p99
  else 1.0

let viral_overload_ratio s =
  if s.vs_calm.vr_tgs_latency.p99 > 0.0 then
    s.vs_unreplicated.vr_tgs_latency.p99 /. s.vs_calm.vr_tgs_latency.p99
  else 1.0

(* The gates BENCH_replication.json and the smoke rule enforce. Returns
   human-readable violations; [] is a pass. *)
let viral_floor_failures s =
  let fails = ref [] in
  let check cond msg = if not cond then fails := msg :: !fails in
  check
    (viral_overload_ratio s >= 2.0)
    (Printf.sprintf
       "unreplicated spike shows no overload (p99 ratio %.2f < 2.0)"
       (viral_overload_ratio s));
  check
    (viral_p99_ratio s <= 1.2)
    (Printf.sprintf "replicated p99 not flat (ratio %.2f > 1.2)"
       (viral_p99_ratio s));
  check
    (s.vs_unreplicated.vr_shard_lookup_balance >= 2.0)
    (Printf.sprintf "expected hot-shard skew missing (balance %.2f < 2.0)"
       s.vs_unreplicated.vr_shard_lookup_balance);
  check
    (s.vs_replicated.vr_unit_balance <= 1.5)
    (Printf.sprintf "replicated pool unbalanced (max/mean %.2f > 1.5)"
       s.vs_replicated.vr_unit_balance);
  check s.vs_replicated.vr_converged
    "replica state did not converge to the primary at quiesce";
  check
    ((not s.vs_config.v_crash_replica)
    || s.vs_replicated.vr_replica_crashes >= 1)
    "replica crash was configured but never injected";
  List.rev !fails

let json_viral_config (v : viral_config) =
  let open Telemetry.Json in
  Obj
    [ ("base", json_config v.v_base); ("replicas", Int v.v_replicas);
      ("service_time", Float v.v_service_time); ("max_lag", Int v.v_max_lag);
      ("ship_every", Float v.v_ship_every); ("spike_at", Float v.v_spike_at);
      ("spike_clients", Int v.v_spike_clients);
      ("spike_requests", Int v.v_spike_requests);
      ("spike_think", Float v.v_spike_think);
      ("spike_service", Int v.v_spike_service);
      ("churn_every", Float v.v_churn_every);
      ("crash_replica", Bool v.v_crash_replica) ]

let json_viral_row r =
  let open Telemetry.Json in
  Obj
    [ ("label", Str r.vr_label); ("completed", Int r.vr_completed);
      ("errors", Int r.vr_errors); ("as_requests", Int r.vr_as_requests);
      ("tgs_requests", Int r.vr_tgs_requests);
      ("tgs_latency", json_percentiles r.vr_tgs_latency);
      ("shard_lookup_balance", Float r.vr_shard_lookup_balance);
      ("unit_reads",
       Obj (List.map (fun (n, c) -> (n, Int c)) r.vr_unit_reads));
      ("unit_balance", Float r.vr_unit_balance);
      ("fresh_fallbacks", Int r.vr_fresh_fallbacks);
      ("stale_fallbacks", Int r.vr_stale_fallbacks);
      ("shipped_records", Int r.vr_shipped_records);
      ("catchups", Int r.vr_catchups);
      ("max_lag_seen", Int r.vr_max_lag_seen);
      ("replica_crashes", Int r.vr_replica_crashes);
      ("converged", Bool r.vr_converged);
      ("sim_seconds", Float r.vr_sim_seconds) ]

(* Deterministic: every field is a function of (viral_config, seed) in
   simulated time — two runs at one seed serialize byte-identically. *)
let viral_suite_to_json s =
  let open Telemetry.Json in
  Obj
    [ ("config", json_viral_config s.vs_config);
      ("calm", json_viral_row s.vs_calm);
      ("unreplicated", json_viral_row s.vs_unreplicated);
      ("replicated", json_viral_row s.vs_replicated);
      ("overload_p99_ratio", Float (viral_overload_ratio s));
      ("replicated_p99_ratio", Float (viral_p99_ratio s));
      ("floor_failures",
       List (List.map (fun f -> Str f) (viral_floor_failures s))) ]

(* --- metastable-failure overload campaign ----------------------------- *)

(* The overload plane's proof: one world, three rows at one seed.

   [calm] never spikes — the goodput baseline. [naive] aims a login storm
   at the KDC pool while every client retransmits on a fixed schedule,
   never honors retry-after, and has neither budget nor breaker: the
   classic metastable failure. Once queueing delay crosses the client
   timeout, every logical request turns into its full retransmit fan
   (per-address retries, then failover to the other KDC), the offered
   packet rate times the amplification exceeds the pool's service rate,
   and the queues stay saturated long after the spike ends — goodput
   collapses and *stays* collapsed, pinned near zero by work whose
   callers gave up listening. [controlled] runs the same spike against
   the deployed overload plane: bounded admission queues with priority
   classes and brownout at the KDCs, and budgeted, breaker-guarded,
   hint-honoring, deadline-stamping clients. Goodput dips during the
   spike and recovers within a bounded number of sim-seconds.

   The naive KDCs still run the admission queue/service-time model —
   with an effectively unbounded single-FIFO queue ([classes = false])
   and brownout off — so the two spike rows share one capacity model and
   differ only in policy: what the bound, the classes, the hints and the
   client hygiene buy. *)

type overload_config = {
  o_base : config;          (* population, KDC pool, calm open-loop load *)
  o_service_time : float;   (* KDC work per request (the admission clock) *)
  o_queue_limit : int;      (* controlled rows: admission queue bound *)
  o_brownout_at : int;      (* controlled rows: expensive-work shed depth *)
  o_suspect_rate : int;     (* controlled rows: per-source demotion rate *)
  o_spike_at : float;       (* when the login storm starts *)
  o_spike_clients : int;
  o_spike_requests : int;   (* logins per spike client *)
  o_spike_think : float;
  o_retries : int;          (* per-address UDP retransmits, every row *)
  o_retry_budget : int;     (* controlled clients: token-bucket capacity *)
  o_breaker_threshold : int;
  o_breaker_cooldown : float;
  o_deadline : float;       (* controlled clients: per-exchange deadline *)
  o_window : float;         (* goodput bucketing (seconds) *)
  o_horizon : float;        (* measurement end (sim-seconds) *)
}

(* Preauth makes the spike's AS requests carry Pa_preauth — the
   "expensive work" shape brownout sheds first, without the hardened
   profile's per-login DH exponentiation inflating the run. *)
let overload_profile =
  { Profile.v5_draft3 with Profile.name = "v5-draft3+preauth"; preauth = true }

let default_overload =
  { o_base =
      { default with
        users = 400; shards = 4; kdcs = 2; services = 8; active_clients = 60;
        requests_per_client = 300; think_time = 0.1; ramp = 4.0;
        ccache = false; seed = 0x6f10adL; profile = overload_profile;
        lightweight = true };
    o_service_time = 0.002; o_queue_limit = 300; o_brownout_at = 150;
    o_suspect_rate = 600; o_spike_at = 12.0; o_spike_clients = 200;
    o_spike_requests = 50; o_spike_think = 0.02; o_retries = 3;
    o_retry_budget = 5; o_breaker_threshold = 4; o_breaker_cooldown = 2.0;
    o_deadline = 3.0; o_window = 1.0; o_horizon = 30.0 }

(* When the last spike login can have fired (starts are jittered over
   half a second) — recovery time is measured from here. *)
let overload_spike_end o =
  o.o_spike_at +. 0.5 +. (float_of_int o.o_spike_requests *. o.o_spike_think)

let validate_overload o =
  validate o.o_base;
  if o.o_service_time < 0.0 then invalid_arg "Loadgen: negative service time";
  if o.o_queue_limit < 1 then invalid_arg "Loadgen: queue limit out of range";
  if o.o_spike_clients < 1 || o.o_spike_requests < 1 then
    invalid_arg "Loadgen: spike size out of range";
  if o.o_window <= 0.0 then invalid_arg "Loadgen: window must be > 0";
  if o.o_base.active_clients + o.o_spike_clients > o.o_base.users then
    invalid_arg "Loadgen: users must cover actives + spike wave";
  if o.o_spike_at <= o.o_base.ramp +. 3.0 then
    invalid_arg "Loadgen: spike must start after the calm baseline window";
  if overload_spike_end o >= o.o_horizon then
    invalid_arg "Loadgen: horizon must extend past the spike";
  (* Every calm client's schedule must outlive the horizon — including
     the one starting at ramp offset 0 — or offered load decays in the
     last windows and post-spike goodput measures the schedule, not the
     KDCs. *)
  if
    1.0 +. (float_of_int o.o_base.requests_per_client *. o.o_base.think_time)
    < o.o_horizon
  then invalid_arg "Loadgen: calm schedule ends before the horizon"

type overload_row = {
  or_label : string;
  or_completed : int;       (* calm requests a KDC answered (goodput) *)
  or_errors : int;
  or_degraded : int;        (* calm requests served from the wallet *)
  or_goodput_baseline : float;  (* calm completions/s before the spike *)
  or_goodput_post : float;      (* mean completions/s after spike end *)
  or_goodput_final : float;     (* mean over the last 5 windows *)
  or_recovery_s : float option;
      (* sim-seconds from spike end to the first window back at >= 90%
         of this row's own baseline; [None] = never within the horizon *)
  or_windows : int list;    (* calm completions per window, in order *)
  or_busy_received : int;   (* summed over every client in the row *)
  or_breaker_trips : int;
  or_budget_exhausted : int;
  or_arrived : int;         (* summed over the KDC pool *)
  or_processed : int;
  or_busy_rejections : int;
  or_brownout_sheds : int;
  or_deadline_sheds : int;
  or_residual_queue : int;  (* still queued at quiesce (0 once drained) *)
  or_silent_drops : int;    (* arrived minus every accounted outcome *)
  or_sim_seconds : float;
}

let run_overload_one o ~label ~spike ~hygiene =
  let cfg = o.o_base in
  let tel = Telemetry.Collector.create ~lightweight:cfg.lightweight () in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create ~telemetry:tel engine in
  let rng = Util.Rng.create cfg.seed in
  let db = Kdb.create ~shards:cfg.shards () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  (* Service principals only — the campaign measures ticket goodput, so
     nobody runs an AP exchange and the services need no hosts. *)
  let services =
    Array.init cfg.services (fun i ->
        let principal =
          Principal.service ~realm (Printf.sprintf "app%02d" i)
            ~host:(Printf.sprintf "svc%02d" i)
        in
        Kdb.add_service db principal ~key:(Crypto.Des.random_key rng);
        principal)
  in
  for i = 0 to cfg.users - 1 do
    let u = user_of cfg i in
    Kdb.add_user db (Principal.user ~realm u.Passwords.name)
      ~password:u.Passwords.password
  done;
  let admission =
    if hygiene then
      { Kdc.queue_limit = o.o_queue_limit;
        base_service_time = o.o_service_time;
        brownout_at = o.o_brownout_at;
        suspect_rate = o.o_suspect_rate;
        classes = true }
    else
      (* The naive pool: same service clock, no policy. One FIFO class
         (a login storm queues ahead of calm renewals, as V4 did), the
         queue bound set far above any reachable backlog so nothing is
         ever shed — overload expresses itself purely as queueing
         delay. *)
      { Kdc.queue_limit = 1_000_000;
        base_service_time = o.o_service_time;
        brownout_at = 0;
        suspect_rate = max_int;
        classes = false }
  in
  let kdc_pool = ref [] in
  let kdc_addrs =
    List.init cfg.kdcs (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "kdc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 0 0 (i + 1) ] ()
        in
        Sim.Net.attach net host;
        let kdc =
          Kdc.create ~seed:(Util.Rng.next_int64 rng) ~telemetry:tel ~admission
            ~realm ~profile:cfg.profile ~lifetime:cfg.lifetime db
        in
        kdc_pool := kdc :: !kdc_pool;
        Kdc.install net host kdc ();
        (realm, Sim.Host.primary_ip host))
  in
  let mk_client ~seed ~password host principal =
    if hygiene then
      Client.create ~seed ~password ~ccache:false ~kdc_rotation:true
        ~kdc_retries:o.o_retries ~retry_budget:o.o_retry_budget
        ~breaker_threshold:o.o_breaker_threshold
        ~breaker_cooldown:o.o_breaker_cooldown ~honor_retry_after:true
        ~kdc_deadline:o.o_deadline net host ~profile:cfg.profile
        ~kdcs:kdc_addrs principal
    else
      Client.create ~seed ~password ~ccache:false ~kdc_rotation:true
        ~kdc_retries:o.o_retries net host ~profile:cfg.profile
        ~kdcs:kdc_addrs principal
  in
  let nwin = int_of_float (o.o_horizon /. o.o_window) in
  let windows = Array.make (max nwin 1) 0 in
  let completed = ref 0 and errors = ref 0 and degraded = ref 0 in
  let all_clients = ref [] in
  let record_completion () =
    incr completed;
    let w = int_of_float (Sim.Engine.now engine /. o.o_window) in
    if w >= 0 && w < nwin then windows.(w) <- windows.(w) + 1
  in
  let pick_service = zipf_sampler cfg in
  let starts = ref [] in
  (* The calm population: open-loop TGS traffic, the goodput being
     defended. Only [From_kdc] answers count — wallet fallbacks keep the
     client alive but are not KDC goodput. *)
  Array.iteri
    (fun i () ->
      let u = user_of cfg i in
      let host =
        Sim.Host.create ~name:(Printf.sprintf "c%05d" i)
          ~ips:[ client_addr i ] ()
      in
      Sim.Net.attach net host;
      let client =
        mk_client ~seed:(Util.Rng.next_int64 rng) ~password:u.Passwords.password
          host
          (Principal.user ~realm u.Passwords.name)
      in
      all_clients := client :: !all_clients;
      let crng = Util.Rng.create (Util.Rng.next_int64 rng) in
      let start = Util.Rng.float rng cfg.ramp in
      let rec fire j () =
        Client.get_ticket_ex client ~service:services.(pick_service crng)
          (function
          | Ok (_, Client.From_kdc) -> record_completion ()
          | Ok (_, Client.From_cache) -> ()
          | Ok (_, Client.Degraded) -> incr degraded
          | Error _ -> incr errors);
        if j + 1 < cfg.requests_per_client then
          Sim.Engine.schedule engine
            ~at:(start +. 1.0 +. (float_of_int (j + 1) *. cfg.think_time))
            (fire (j + 1))
      in
      starts :=
        ( start,
          fun () ->
            Client.login client ~password:u.Passwords.password (function
              | Ok _ -> ()
              | Error _ -> incr errors);
            Sim.Engine.schedule engine ~at:(start +. 1.0) (fire 0) )
        :: !starts)
    (Array.make cfg.active_clients ());
  (* The spike: a wave of fresh clients all logging in at once — the
     morning-rush AS storm, open loop. Their padata makes each request
     expensive in the brownout sense. *)
  if spike then
    Array.iteri
      (fun j () ->
        let i = cfg.active_clients + j in
        let u = user_of cfg i in
        let host =
          Sim.Host.create ~name:(Printf.sprintf "s%05d" j)
            ~ips:[ client_addr i ] ()
        in
        Sim.Net.attach net host;
        let client =
          mk_client ~seed:(Util.Rng.next_int64 rng)
            ~password:u.Passwords.password host
            (Principal.user ~realm u.Passwords.name)
        in
        all_clients := client :: !all_clients;
        let start = o.o_spike_at +. Util.Rng.float rng 0.5 in
        let rec fire j () =
          Client.login client ~password:u.Passwords.password (function
            | Ok _ -> ()
            | Error _ -> incr errors);
          if j + 1 < o.o_spike_requests then
            Sim.Engine.schedule engine
              ~at:(start +. (float_of_int (j + 1) *. o.o_spike_think))
              (fire (j + 1))
        in
        starts := (start, fire 0) :: !starts)
      (Array.make o.o_spike_clients ());
  Sim.Engine.schedule_batch engine (List.rev !starts);
  Sim.Engine.run engine;
  let ksum f = List.fold_left (fun a k -> a + f k) 0 !kdc_pool in
  let csum f = List.fold_left (fun a c -> a + f c) 0 !all_clients in
  let arrived = ksum Kdc.admission_arrived in
  let processed = ksum Kdc.admission_processed in
  let busy_rejections = ksum Kdc.busy_rejections in
  let brownout_sheds = ksum Kdc.brownout_sheds in
  let deadline_sheds = ksum Kdc.deadline_sheds in
  let residual = ksum Kdc.admission_queue_depth in
  let mean_rate lo hi =
    if hi <= lo then 0.0
    else begin
      let s = ref 0 in
      for w = lo to hi - 1 do s := !s + windows.(w) done;
      float_of_int !s /. (float_of_int (hi - lo) *. o.o_window)
    end
  in
  let spike_end = overload_spike_end o in
  (* Baseline: full windows between the end of the ramp (plus margin for
     the logins) and the spike. The same interval in every row. *)
  let baseline_lo = int_of_float (Float.ceil ((cfg.ramp +. 2.0) /. o.o_window)) in
  let baseline_hi = int_of_float (o.o_spike_at /. o.o_window) in
  let post_lo = int_of_float (Float.ceil (spike_end /. o.o_window)) in
  let baseline = mean_rate baseline_lo baseline_hi in
  let post = mean_rate post_lo nwin in
  let final = mean_rate (max post_lo (nwin - 5)) nwin in
  let recovery =
    if not spike then Some 0.0
    else begin
      let rec find w =
        if w >= nwin then None
        else if
          float_of_int windows.(w) /. o.o_window >= 0.9 *. baseline
        then Some ((float_of_int w *. o.o_window) -. spike_end)
        else find (w + 1)
      in
      find post_lo
    end
  in
  { or_label = label;
    or_completed = !completed;
    or_errors = !errors;
    or_degraded = !degraded;
    or_goodput_baseline = baseline;
    or_goodput_post = post;
    or_goodput_final = final;
    or_recovery_s = recovery;
    or_windows = Array.to_list windows;
    or_busy_received = csum Client.busy_received;
    or_breaker_trips = csum Client.breaker_trips;
    or_budget_exhausted = csum Client.budget_exhausted;
    or_arrived = arrived;
    or_processed = processed;
    or_busy_rejections = busy_rejections;
    or_brownout_sheds = brownout_sheds;
    or_deadline_sheds = deadline_sheds;
    or_residual_queue = residual;
    or_silent_drops =
      arrived
      - (processed + busy_rejections + brownout_sheds + deadline_sheds
       + residual);
    or_sim_seconds = Sim.Engine.now engine }

type overload_suite = {
  os_config : overload_config;
  os_calm : overload_row;
  os_naive : overload_row;
  os_controlled : overload_row;
}

let run_overload o =
  validate_overload o;
  { os_config = o;
    os_calm = run_overload_one o ~label:"calm" ~spike:false ~hygiene:true;
    os_naive = run_overload_one o ~label:"spike-naive" ~spike:true ~hygiene:false;
    os_controlled =
      run_overload_one o ~label:"spike-controlled" ~spike:true ~hygiene:true }

(* The gates BENCH_overload.json and the smoke rule enforce. *)
let overload_floor_failures s =
  let fails = ref [] in
  let check cond msg = if not cond then fails := msg :: !fails in
  let base = s.os_calm.or_goodput_baseline in
  check (base > 0.0) "calm baseline goodput is zero";
  check
    (s.os_naive.or_goodput_post < 0.5 *. base)
    (Printf.sprintf
       "naive run did not collapse (post-spike %.1f/s >= 50%% of calm %.1f/s)"
       s.os_naive.or_goodput_post base);
  check
    (s.os_naive.or_recovery_s = None)
    "naive run recovered within the horizon (expected metastable collapse)";
  check
    (match s.os_controlled.or_recovery_s with
    | Some r -> r <= 8.0
    | None -> false)
    (Printf.sprintf
       "controlled run did not recover to >=90%% of baseline within 8s (%s)"
       (match s.os_controlled.or_recovery_s with
       | Some r -> Printf.sprintf "took %.1fs" r
       | None -> "never"));
  (* Final-window goodput is compared row-to-row over the same windows:
     the calm row shares the controlled row's client schedule, so it is
     the exact no-spike counterfactual. *)
  check
    (s.os_controlled.or_goodput_final >= 0.9 *. s.os_calm.or_goodput_final)
    (Printf.sprintf
       "controlled final goodput %.1f/s < 90%% of calm %.1f/s"
       s.os_controlled.or_goodput_final s.os_calm.or_goodput_final);
  check
    (s.os_controlled.or_busy_rejections + s.os_controlled.or_brownout_sheds > 0)
    "controlled KDCs never shed (busy + brownout = 0)";
  List.iter
    (fun r ->
      check (r.or_silent_drops = 0)
        (Printf.sprintf "%s: %d requests unaccounted for (silent drops)"
           r.or_label r.or_silent_drops))
    [ s.os_calm; s.os_naive; s.os_controlled ];
  List.rev !fails

let json_overload_config (o : overload_config) =
  let open Telemetry.Json in
  Obj
    [ ("base", json_config o.o_base);
      ("service_time", Float o.o_service_time);
      ("queue_limit", Int o.o_queue_limit);
      ("brownout_at", Int o.o_brownout_at);
      ("suspect_rate", Int o.o_suspect_rate);
      ("spike_at", Float o.o_spike_at);
      ("spike_clients", Int o.o_spike_clients);
      ("spike_requests", Int o.o_spike_requests);
      ("spike_think", Float o.o_spike_think);
      ("retries", Int o.o_retries);
      ("retry_budget", Int o.o_retry_budget);
      ("breaker_threshold", Int o.o_breaker_threshold);
      ("breaker_cooldown", Float o.o_breaker_cooldown);
      ("deadline", Float o.o_deadline);
      ("window", Float o.o_window);
      ("horizon", Float o.o_horizon) ]

let json_overload_row r =
  let open Telemetry.Json in
  Obj
    [ ("label", Str r.or_label);
      ("completed", Int r.or_completed);
      ("errors", Int r.or_errors);
      ("degraded", Int r.or_degraded);
      ("goodput_baseline", Float r.or_goodput_baseline);
      ("goodput_post", Float r.or_goodput_post);
      ("goodput_final", Float r.or_goodput_final);
      ("recovery_s",
       match r.or_recovery_s with Some x -> Float x | None -> Null);
      ("windows", List (List.map (fun c -> Int c) r.or_windows));
      ("busy_received", Int r.or_busy_received);
      ("breaker_trips", Int r.or_breaker_trips);
      ("budget_exhausted", Int r.or_budget_exhausted);
      ("arrived", Int r.or_arrived);
      ("processed", Int r.or_processed);
      ("busy_rejections", Int r.or_busy_rejections);
      ("brownout_sheds", Int r.or_brownout_sheds);
      ("deadline_sheds", Int r.or_deadline_sheds);
      ("residual_queue", Int r.or_residual_queue);
      ("silent_drops", Int r.or_silent_drops);
      ("sim_seconds", Float r.or_sim_seconds) ]

(* Deterministic: every field is a function of (overload_config, seed) in
   simulated time — two runs at one seed serialize byte-identically. *)
let overload_suite_to_json s =
  let open Telemetry.Json in
  Obj
    [ ("config", json_overload_config s.os_config);
      ("calm", json_overload_row s.os_calm);
      ("naive", json_overload_row s.os_naive);
      ("controlled", json_overload_row s.os_controlled);
      ("floor_failures",
       List (List.map (fun f -> Str f) (overload_floor_failures s))) ]

let suite_to_json s =
  let open Telemetry.Json in
  Obj
    [ ("main", report_to_json s.main);
      ("main_timing", timing_to_json s.main_timing);
      ("cache_off", report_to_json s.cache_off);
      ("tgs_reduction_factor", Float (tgs_reduction s));
      ("shard_ablation", List (List.map report_to_json s.shard_ablation));
      ("perf_ablation",
       List
         (List.map
            (fun r ->
              Obj
                [ ("label", Str r.p_label);
                  ("schedule_cache", Bool r.p_schedule_cache);
                  ("lightweight", Bool r.p_lightweight);
                  ("timing", timing_to_json r.p_timing) ])
            s.perf));
      ("fast_path_speedup", Float (fast_path_speedup s)) ]
