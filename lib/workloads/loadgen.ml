open Kerberos

type config = {
  users : int;
  shards : int;
  kdcs : int;
  services : int;
  active_clients : int;
  requests_per_client : int;
  think_time : float;
  ramp : float;
  ccache : bool;
  zipf_exponent : float;
  seed : int64;
  profile : Profile.t;
  lifetime : float;
}

let default =
  { users = 1000; shards = 2; kdcs = 2; services = 10; active_clients = 200;
    requests_per_client = 150; think_time = 0.2; ramp = 20.0; ccache = true;
    zipf_exponent = 1.3; seed = 0x10adL; profile = Profile.v4;
    lifetime = 28800.0 }

type percentiles = { p50 : float; p90 : float; p99 : float }

type report = {
  r_config : config;
  sim_seconds : float;
  completed : int;
  errors : int;
  as_requests : int;
  tgs_requests : int;
  ap_exchanges : int;
  ccache_hits : int;
  ccache_misses : int;
  as_latency : percentiles;
  tgs_latency : percentiles;
  ap_latency : percentiles;
  shard_lookups : int array;
  shard_entries : int array;
  throughput : float;
}

let realm = "LOAD"

(* Quantiles from a fixed-bucket histogram: the upper bound of the bucket
   the quantile lands in, clamped to the last finite bound. Coarse, but
   deterministic and cheap — the operator cares about the order of
   magnitude and the trend across ablations. *)
let percentile_of ~buckets ~counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let last = buckets.(Array.length buckets - 1) in
    let res = ref last in
    let cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= target then begin
             res := (if i < Array.length buckets then buckets.(i) else last);
             raise Exit
           end)
         counts
     with Exit -> ());
    !res
  end

let percentiles_of_hist h =
  let buckets = Telemetry.Metrics.default_latency_buckets in
  let counts = Telemetry.Metrics.bucket_counts h in
  { p50 = percentile_of ~buckets ~counts 0.50;
    p90 = percentile_of ~buckets ~counts 0.90;
    p99 = percentile_of ~buckets ~counts 0.99 }

(* Service popularity: zipf-ish weights 1/rank^s, sampled by inverse CDF.
   A couple of services carry most of the traffic — which is exactly what
   makes the credential cache pay off at steady state. *)
let zipf_sampler cfg =
  let w =
    Array.init cfg.services (fun i ->
        1.0 /. Float.pow (float_of_int (i + 1)) cfg.zipf_exponent)
  in
  let cum = Array.make cfg.services 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i x ->
      total := !total +. x;
      cum.(i) <- !total)
    w;
  fun rng ->
    let u = Util.Rng.float rng !total in
    let rec find i = if i >= cfg.services - 1 || u < cum.(i) then i else find (i + 1) in
    find 0

let validate cfg =
  if cfg.users < 1 then invalid_arg "Loadgen: users must be >= 1";
  if cfg.kdcs < 1 || cfg.kdcs > 200 then invalid_arg "Loadgen: kdcs out of range";
  if cfg.services < 1 || cfg.services > 200 then
    invalid_arg "Loadgen: services out of range";
  if cfg.active_clients < 1 || cfg.active_clients > 30_000 then
    invalid_arg "Loadgen: active_clients out of range";
  if cfg.active_clients > cfg.users then
    invalid_arg "Loadgen: more active clients than users";
  if cfg.requests_per_client < 1 then
    invalid_arg "Loadgen: requests_per_client must be >= 1";
  if cfg.shards < 1 then invalid_arg "Loadgen: shards must be >= 1"

let run cfg =
  validate cfg;
  (* A private collector: latency histograms and KDC counters for this run
     only, clocked on this run's engine. *)
  let tel = Telemetry.Collector.create () in
  let engine = Sim.Engine.create () in
  let net = Sim.Net.create ~telemetry:tel engine in
  let rng = Util.Rng.create cfg.seed in
  let db = Kdb.create ~shards:cfg.shards () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  (* The KDC pool: every member serves the same sharded database. *)
  let kdc_addrs =
    List.init cfg.kdcs (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "kdc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 0 0 (i + 1) ] ()
        in
        Sim.Net.attach net host;
        let kdc =
          Kdc.create ~seed:(Util.Rng.next_int64 rng) ~telemetry:tel ~realm
            ~profile:cfg.profile ~lifetime:cfg.lifetime db
        in
        Kdc.install net host kdc ();
        (realm, Sim.Host.primary_ip host))
  in
  (* Application services, one host each, echo handlers. *)
  let services =
    Array.init cfg.services (fun i ->
        let host =
          Sim.Host.create ~name:(Printf.sprintf "svc%02d" i)
            ~ips:[ Sim.Addr.of_quad 10 1 (i / 200) ((i mod 200) + 1) ] ()
        in
        Sim.Net.attach net host;
        let principal =
          Principal.service ~realm (Printf.sprintf "app%02d" i)
            ~host:host.Sim.Host.name
        in
        let key = Crypto.Des.random_key rng in
        Kdb.add_service db principal ~key;
        let (_ : Apserver.t) =
          Apserver.install ~seed:(Util.Rng.next_int64 rng) net host
            ~profile:cfg.profile ~principal ~key ~port:600
            ~handler:(fun _session ~client:_ data -> Some data)
            ()
        in
        (principal, Sim.Host.primary_ip host))
  in
  (* The population. Registering a principal derives its key from the
     password, exactly the work a realm-sized user community costs. *)
  let population =
    Array.of_list (Passwords.population rng ~n:cfg.users ~weak_fraction:0.4)
  in
  Array.iter
    (fun u ->
      Kdb.add_user db (Principal.user ~realm u.Passwords.name)
        ~password:u.Passwords.password)
    population;
  (* Active clients: open-loop traffic. Each client's requests fire on a
     fixed schedule regardless of completions — arrival is not gated on
     service, as in any open-loop load test. *)
  let completed = ref 0 and errors = ref 0 in
  let pick_service = zipf_sampler cfg in
  let clients =
    Array.init cfg.active_clients (fun i ->
        let u = population.(i) in
        let host =
          Sim.Host.create ~name:(Printf.sprintf "c%05d" i)
            ~ips:[ Sim.Addr.of_quad 10 (2 + (i / 250)) (i mod 250) 1 ] ()
        in
        Sim.Net.attach net host;
        let client =
          Client.create ~seed:(Util.Rng.next_int64 rng)
            ~password:u.Passwords.password ~ccache:cfg.ccache
            ~kdc_rotation:true net host ~profile:cfg.profile ~kdcs:kdc_addrs
            (Principal.user ~realm u.Passwords.name)
        in
        let crng = Util.Rng.create (Util.Rng.next_int64 rng) in
        let start = Util.Rng.float rng cfg.ramp in
        Sim.Engine.schedule engine ~at:start (fun () ->
            Client.login client ~password:u.Passwords.password (function
              | Ok _ -> ()
              | Error _ -> incr errors));
        for j = 0 to cfg.requests_per_client - 1 do
          let at = start +. 1.0 +. (float_of_int j *. cfg.think_time) in
          Sim.Engine.schedule engine ~at (fun () ->
              let svc_principal, svc_addr = services.(pick_service crng) in
              Client.get_ticket client ~service:svc_principal (function
                | Error _ -> incr errors
                | Ok creds ->
                    Client.ap_exchange client creds ~dst:svc_addr ~dport:600
                      (function
                      | Error _ -> incr errors
                      | Ok chan ->
                          Client.call_priv client chan (Bytes.of_string "PING")
                            ~k:(function
                            | Error _ -> incr errors
                            | Ok _ -> incr completed))))
        done;
        client)
  in
  Sim.Engine.run engine;
  let m = Telemetry.Collector.metrics tel in
  let hist name = Telemetry.Metrics.histogram m name in
  let count name = Telemetry.Metrics.hist_count (hist name) in
  let hits = Array.fold_left (fun a c -> a + Client.ccache_hits c) 0 clients in
  let misses = Array.fold_left (fun a c -> a + Client.ccache_misses c) 0 clients in
  let sim_seconds = Sim.Engine.now engine in
  { r_config = cfg; sim_seconds; completed = !completed; errors = !errors;
    as_requests = count "span.kdc.as_req.seconds";
    tgs_requests = count "span.kdc.tgs_req.seconds";
    ap_exchanges = count "span.client.ap_exchange.seconds";
    ccache_hits = hits; ccache_misses = misses;
    as_latency = percentiles_of_hist (hist "span.kdc.as_req.seconds");
    tgs_latency = percentiles_of_hist (hist "span.client.tgs_exchange.seconds");
    ap_latency = percentiles_of_hist (hist "span.client.ap_exchange.seconds");
    shard_lookups = Kdb.shard_lookups db;
    shard_entries = Kdb.shard_sizes db;
    throughput =
      (if sim_seconds > 0.0 then float_of_int !completed /. sim_seconds else 0.0) }

let max_over_mean a =
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left ( + ) 0 a in
    if total = 0 then 1.0
    else
      let mean = float_of_int total /. float_of_int n in
      let mx = Array.fold_left max 0 a in
      float_of_int mx /. mean
  end

let shard_balance r = max_over_mean r.shard_entries
let lookup_balance r = max_over_mean r.shard_lookups

let json_percentiles p =
  Telemetry.Json.Obj
    [ ("p50", Telemetry.Json.Float p.p50); ("p90", Telemetry.Json.Float p.p90);
      ("p99", Telemetry.Json.Float p.p99) ]

let json_config (c : config) =
  let open Telemetry.Json in
  Obj
    [ ("users", Int c.users); ("shards", Int c.shards); ("kdcs", Int c.kdcs);
      ("services", Int c.services); ("active_clients", Int c.active_clients);
      ("requests_per_client", Int c.requests_per_client);
      ("think_time", Float c.think_time); ("ramp", Float c.ramp);
      ("ccache", Bool c.ccache); ("zipf_exponent", Float c.zipf_exponent);
      ("seed", Str (Int64.to_string c.seed));
      ("profile", Str c.profile.Profile.name); ("lifetime", Float c.lifetime) ]

let report_to_json r =
  let open Telemetry.Json in
  Obj
    [ ("config", json_config r.r_config);
      ("sim_seconds", Float r.sim_seconds); ("completed", Int r.completed);
      ("errors", Int r.errors); ("as_requests", Int r.as_requests);
      ("tgs_requests", Int r.tgs_requests); ("ap_exchanges", Int r.ap_exchanges);
      ("ccache_hits", Int r.ccache_hits); ("ccache_misses", Int r.ccache_misses);
      ("as_latency", json_percentiles r.as_latency);
      ("tgs_latency", json_percentiles r.tgs_latency);
      ("ap_latency", json_percentiles r.ap_latency);
      ("shard_lookups",
       List (Array.to_list (Array.map (fun n -> Int n) r.shard_lookups)));
      ("shard_entries",
       List (Array.to_list (Array.map (fun n -> Int n) r.shard_entries)));
      ("shard_balance", Float (shard_balance r));
      ("lookup_balance", Float (lookup_balance r));
      ("throughput_per_sim_second", Float r.throughput) ]

type suite = { main : report; cache_off : report; shard_ablation : report list }

(* Shard counts for the sweep: powers of two up to the configured count,
   always ending at the configured count itself. *)
let ablation_shards cfg =
  let rec go acc s = if s >= cfg.shards then List.rev (cfg.shards :: acc) else go (s :: acc) (2 * s) in
  go [] 1

let run_suite cfg =
  let main = run cfg in
  let cache_off = run { cfg with ccache = false } in
  (* The sweep runs reduced traffic: it measures partition balance and
     scaling shape, not absolute throughput. *)
  let small =
    { cfg with
      active_clients = max 10 (cfg.active_clients / 4);
      requests_per_client = max 5 (cfg.requests_per_client / 5) }
  in
  let shard_ablation =
    List.map (fun s -> run { small with shards = s }) (ablation_shards cfg)
  in
  { main; cache_off; shard_ablation }

let tgs_reduction s =
  if s.main.tgs_requests = 0 then Float.of_int s.cache_off.tgs_requests
  else float_of_int s.cache_off.tgs_requests /. float_of_int s.main.tgs_requests

let suite_to_json s =
  let open Telemetry.Json in
  Obj
    [ ("main", report_to_json s.main);
      ("cache_off", report_to_json s.cache_off);
      ("tgs_reduction_factor", Float (tgs_reduction s));
      ("shard_ablation", List (List.map report_to_json s.shard_ablation)) ]
