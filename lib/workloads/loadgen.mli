(** The load generator: stand up a realm of [n] principals behind a pool
    of KDCs over a sharded database, then drive open-loop AS/TGS/AP
    traffic through the simulator and report throughput and latency from
    the telemetry histograms.

    This is the scale harness the paper's closing sections ask for: a KDC
    must survive "a fairly large user community" whose every login is
    "grist for password-guessing mills", so realm-sized populations have
    to be cheap to stand up and realistic to drive. Everything is seeded;
    the same configuration produces a byte-identical {!report_to_json}.

    The million-user fast path: [lazy_users] materializes principals at
    their first authentication instead of registering the whole realm up
    front (every user is derived from [(seed, index)] alone, so lazy and
    eager populations are byte-identical — see {!Passwords.user_at}), and
    [lightweight] swaps the run's collector into counters-and-histograms
    mode ({!Telemetry.Collector.set_lightweight}). Neither changes a
    single simulated byte; both change what the wall clock sees. *)

type config = {
  users : int;  (** principals in the realm (registered or derivable) *)
  shards : int;  (** {!Kerberos.Kdb} partition count *)
  kdcs : int;  (** pool size: KDCs sharing the one database *)
  services : int;  (** distinct application services *)
  active_clients : int;  (** how many users actually drive traffic *)
  requests_per_client : int;
  think_time : float;  (** simulated seconds between a client's requests *)
  ramp : float;  (** client start times are spread over this window *)
  ccache : bool;  (** clients reuse unexpired service tickets *)
  zipf_exponent : float;  (** service-popularity skew (1.0 = classic Zipf) *)
  seed : int64;
  profile : Kerberos.Profile.t;
  lifetime : float;  (** ticket lifetime the KDCs issue *)
  lightweight : bool;  (** counters/histograms only — no trace machinery *)
  lazy_users : bool;  (** materialize principals at first authentication *)
}

val default : config
(** 1000 users, 2 shards, a pool of 2 KDCs, 10 services, 200 active
    clients sending 150 requests each, credential cache on, eager
    population, full telemetry. *)

(** Latency percentiles, estimated from the fixed-bucket telemetry
    histograms by linear interpolation inside the quantile's bucket and
    clamped to the observed min/max ({!Telemetry.Metrics.quantile}), in
    simulated seconds. *)
type percentiles = { p50 : float; p90 : float; p99 : float }

type report = {
  r_config : config;
  sim_seconds : float;  (** simulated time when the event queue drained *)
  completed : int;  (** requests that finished the full TGS→AP→priv chain *)
  errors : int;
  as_requests : int;  (** AS exchanges served by the pool *)
  tgs_requests : int;  (** TGS exchanges served by the pool *)
  ap_exchanges : int;
  ccache_hits : int;
  ccache_misses : int;
  as_latency : percentiles;
  tgs_latency : percentiles;
  ap_latency : percentiles;
  shard_lookups : int array;  (** per-shard database accesses *)
  shard_entries : int array;  (** per-shard registered principals *)
  throughput : float;  (** completed requests per simulated second *)
  span_breakdown : (string * int * float) list;
      (** Per-span (name, count, total simulated seconds), largest first —
          where the run's simulated time went. Deterministic: durations
          are sim-time, not wall time. *)
}

(** Where the run's {e wall-clock} time went — the non-deterministic
    companion to the report. [events] is {!Sim.Engine.executed};
    [events_per_second] is the load plane's headline
    [sim_events_per_wall_second]. *)
type timing = {
  setup_seconds : float;  (** world building: hosts, database, clients *)
  run_seconds : float;  (** draining the event queue *)
  events : int;
  events_per_second : float;
}

val run : config -> report
(** Build the world, drive the traffic, drain the engine. Uses a private
    telemetry collector, so concurrent harnesses do not pollute each
    other. @raise Invalid_argument on a non-positive population or pool. *)

val run_timed :
  ?on_world:(Attack_mix.world -> Telemetry.Collector.t -> unit) ->
  config ->
  report * timing
(** {!run}, plus where the wall-clock went. The report half is exactly
    {!run}'s (byte-identical for a fixed config); the timing half is
    whatever this machine did this time. [on_world] is called once, after
    the benign world is fully built and scheduled but before the engine
    runs — the campaign runner uses it to attach a detector to the run's
    collector and let {!Attack_mix.inject} schedule the attack plane. *)

val report_to_json : report -> Telemetry.Json.t
(** Deterministic: same [config] ⇒ byte-identical
    [Telemetry.Json.to_string]. Wall-clock timings deliberately live
    outside this object ({!timing_to_json} / the suite's timing rows). *)

val timing_to_json : timing -> Telemetry.Json.t

(** {2 The blended attack campaign}

    What [experiments detect] runs and [BENCH_detect.json] records: the
    benign load with an {!Attack_mix.mix} hidden inside it, a
    {!Telemetry.Detect} detector attached to the run's collector, and the
    detector's alerts scored against the mix's ground-truth labels. *)

type campaign = {
  ca_report : report;  (** the benign-plane report, as {!run} would give *)
  ca_timing : timing;
  ca_mix : Attack_mix.mix;
  ca_policy : Telemetry.Detect.policy;
  ca_events : int;  (** hook events the detector consumed *)
  ca_alerts : Telemetry.Detect.alert list;
  ca_labels : Telemetry.Detect.label list;  (** ground truth *)
  ca_score : Telemetry.Detect.score;
}

val run_campaign :
  ?policy:Telemetry.Detect.policy ->
  ?mix:Attack_mix.mix ->
  config ->
  Telemetry.Detect.t * campaign
(** One campaign: build the benign world, hide the mix in it, run, score.
    The default detection policy is {!Telemetry.Detect.default_policy}
    with [max_lifetime]/[expect_addr] taken from what this realm actually
    enforces ([cfg.lifetime], the profile's address binding). The benign
    scoring set is every active client's address and principal, minus
    subjects the mix touched (replay victims, targeted principals). The
    detector is returned alongside for {!Telemetry.Detect.report}. *)

val campaign_to_json : campaign -> Telemetry.Json.t
(** The [BENCH_detect.json] payload: config, mix, policy, benign report,
    labels, alerts, score. No wall-clock numbers — two runs at the same
    seed serialize byte-identically. *)

(** {2 The ablation suite}

    What [experiments load] runs and [BENCH_load.json] records: the
    configured run, the same run with the credential cache off (the
    steady-state TGS-reduction claim), a shard-count sweep at reduced
    traffic (the balance/scaling claim), and the fast-path ablation
    ({!perf_row}): the same reduced configuration timed under the four
    combinations of DES schedule cache × lightweight telemetry. *)

(** One fast-path ablation cell. The reports of all four cells are
    byte-identical by construction (neither knob touches simulated
    state); only the wall-clock {!timing} differs, which is the point. *)
type perf_row = {
  p_label : string;  (** ["baseline"], ["schedule-cache"],
                         ["lightweight-telemetry"], ["fast-path"] *)
  p_schedule_cache : bool;
  p_lightweight : bool;
  p_timing : timing;
}

type suite = {
  main : report;
  main_timing : timing;
  cache_off : report;
  shard_ablation : report list;  (** shard counts 1, 2, 4, … up to [shards] *)
  perf : perf_row list;  (** the fast-path ablation, reduced traffic *)
}

val run_suite : config -> suite

val tgs_reduction : suite -> float
(** TGS requests with the cache off divided by TGS requests with it on —
    the headline ≥10x claim. *)

val fast_path_speedup : suite -> float
(** [events_per_second] of the fast-path cell over the baseline cell —
    the engine-cost claim, measured at identical traffic. 1.0 if either
    cell is missing or degenerate. *)

val shard_balance : report -> float
(** Max over mean of {!report.shard_entries}: 1.0 means FNV-1a spread the
    registered population perfectly evenly; large values mean one shard
    holds the realm. *)

val lookup_balance : report -> float
(** Max over mean of {!report.shard_lookups} — the {e traffic} skew. This
    is legitimately worse than {!shard_balance}: lookups concentrate on a
    handful of hot principals (the TGS's own entry on every presented TGT,
    the most popular services), which hash partitioning cannot spread. *)

val suite_to_json : suite -> Telemetry.Json.t
(** The [BENCH_load.json] payload. The report sections are deterministic
    for a fixed configuration; the [main_timing] and [perf_ablation]
    sections carry wall-clock measurements and are not. *)

(** {2 The "one service goes viral" replication campaign}

    Three runs at one seed against the same world: [calm] (no spike,
    primary-only — the latency baseline), [unreplicated] (a second wave
    of cache-less open-loop clients hammers one service through the
    primary alone) and [replicated] (the same spike against a primary +
    WAL-shipped replica pool with bounded-lag routing, background
    password churn, and a replica crash + rejoin mid-storm). Every run
    routes reads through a {!Replication.t} with the same per-lookup
    service time, so the rows differ only in pool size and traffic. *)

type viral_config = {
  v_base : config;          (** the calm world: population, shards, KDCs *)
  v_replicas : int;         (** pool size in the replicated run *)
  v_service_time : float;   (** simulated cost of one lookup at a unit *)
  v_max_lag : int;          (** bounded-lag eligibility, in WAL records *)
  v_ship_every : float;     (** WAL shipping cadence (seconds) *)
  v_spike_at : float;       (** when the service goes viral *)
  v_spike_clients : int;    (** size of the viral wave *)
  v_spike_requests : int;   (** requests per viral client *)
  v_spike_think : float;    (** viral wave think time *)
  v_spike_service : int;    (** which service goes viral *)
  v_churn_every : float;    (** password-change cadence; 0 = no churn *)
  v_crash_replica : bool;   (** crash + rejoin replica 0 mid-spike *)
}

val default_viral : viral_config
(** Runtest-sized: the committed-seed configuration the replication
    smoke runs (and [experiments replicate --quick] byte-compares). *)

type viral_row = {
  vr_label : string;
  vr_completed : int;
  vr_errors : int;
  vr_as_requests : int;
  vr_tgs_requests : int;
  vr_tgs_latency : percentiles;   (** client-observed, queueing included *)
  vr_shard_lookup_balance : float;(** per-shard skew seen by the primary *)
  vr_unit_reads : (string * int) list; (** reads per serving unit *)
  vr_unit_balance : float;        (** max/mean over serving units *)
  vr_fresh_fallbacks : int;
  vr_stale_fallbacks : int;
  vr_shipped_records : int;
  vr_catchups : int;
  vr_max_lag_seen : int;          (** worst pre-ship lag, WAL records *)
  vr_replica_crashes : int;
  vr_converged : bool;  (** digests + version vectors equal at quiesce *)
  vr_sim_seconds : float;
}

type viral_suite = {
  vs_config : viral_config;
  vs_calm : viral_row;
  vs_unreplicated : viral_row;
  vs_replicated : viral_row;
}

val run_viral : viral_config -> viral_suite
(** @raise Invalid_argument on out-of-range configuration (the user
    population must cover actives + the spike wave + the churn pool). *)

val viral_overload_ratio : viral_suite -> float
(** Unreplicated-spike p99 TGS latency over calm p99 — how badly the
    viral service melts a primary-only pool. *)

val viral_p99_ratio : viral_suite -> float
(** Replicated-spike p99 over calm p99 — the headline "stays flat"
    number (the floor gates it at <= 1.2). *)

val viral_floor_failures : viral_suite -> string list
(** The gates BENCH_replication.json and [bench --replication-smoke]
    enforce: overload visible unreplicated, flat p99 replicated, unit
    balance <= 1.5, convergence after crash/rejoin. [[]] is a pass. *)

val viral_suite_to_json : viral_suite -> Telemetry.Json.t
(** The [BENCH_replication.json] payload. Fully deterministic at a fixed
    seed — no wall-clock fields — so two runs byte-compare equal. *)

(** {2 The metastable-failure overload campaign}

    Three runs at one seed: [calm] (no spike — the goodput baseline),
    [naive] (a login storm against fixed-retry clients and an unbounded
    KDC queue: goodput collapses and stays collapsed after the spike —
    the metastable failure) and [controlled] (the same storm against the
    full overload plane: KDC admission control with priority classes and
    brownout, client retry budgets, circuit breakers, honored
    retry-after hints and propagated deadlines — goodput dips and
    recovers within bounded sim-seconds). Goodput is calm-client ticket
    completions answered by a live KDC, bucketed into fixed windows. *)

type overload_config = {
  o_base : config;          (** population, KDC pool, calm open-loop load *)
  o_service_time : float;   (** KDC work per request (the admission clock) *)
  o_queue_limit : int;      (** controlled rows: admission queue bound *)
  o_brownout_at : int;      (** controlled rows: expensive-work shed depth *)
  o_suspect_rate : int;     (** controlled rows: per-source demotion rate *)
  o_spike_at : float;       (** when the login storm starts *)
  o_spike_clients : int;
  o_spike_requests : int;   (** logins per spike client *)
  o_spike_think : float;
  o_retries : int;          (** per-address UDP retransmits, every row *)
  o_retry_budget : int;     (** controlled clients: token-bucket capacity *)
  o_breaker_threshold : int;
  o_breaker_cooldown : float;
  o_deadline : float;       (** controlled clients: per-exchange deadline *)
  o_window : float;         (** goodput bucketing (seconds) *)
  o_horizon : float;        (** measurement end (sim-seconds) *)
}

val overload_profile : Kerberos.Profile.t
(** [v5_draft3] with preauth on, so the spike's AS requests carry the
    expensive-work shape brownout sheds first. *)

val default_overload : overload_config
(** Runtest-sized: the committed-seed configuration the overload smoke
    runs (and [experiments overload] byte-compares). *)

val overload_spike_end : overload_config -> float
(** When the last spike login can have fired — recovery time is measured
    from here. *)

type overload_row = {
  or_label : string;
  or_completed : int;       (** calm requests a KDC answered (goodput) *)
  or_errors : int;
  or_degraded : int;        (** calm requests served from the wallet *)
  or_goodput_baseline : float;  (** calm completions/s before the spike *)
  or_goodput_post : float;      (** mean completions/s after spike end *)
  or_goodput_final : float;     (** mean over the last 5 windows *)
  or_recovery_s : float option;
      (** sim-seconds from spike end to the first window back at >= 90%
          of this row's own baseline; [None] = never within the horizon *)
  or_windows : int list;    (** calm completions per window, in order *)
  or_busy_received : int;   (** summed over every client in the row *)
  or_breaker_trips : int;
  or_budget_exhausted : int;
  or_arrived : int;         (** summed over the KDC pool *)
  or_processed : int;
  or_busy_rejections : int;
  or_brownout_sheds : int;
  or_deadline_sheds : int;
  or_residual_queue : int;  (** still queued at quiesce (0 once drained) *)
  or_silent_drops : int;    (** arrived minus every accounted outcome *)
  or_sim_seconds : float;
}

type overload_suite = {
  os_config : overload_config;
  os_calm : overload_row;
  os_naive : overload_row;
  os_controlled : overload_row;
}

val run_overload : overload_config -> overload_suite
(** @raise Invalid_argument on out-of-range configuration (the spike
    must start after the baseline window, the horizon must extend past
    the spike, and the calm schedule must outlive the horizon). *)

val overload_floor_failures : overload_suite -> string list
(** The gates BENCH_overload.json and [bench --overload-smoke] enforce:
    naive post-spike goodput under half the calm baseline with no
    recovery, controlled recovery within 8 sim-seconds and final goodput
    back at >= 90%, visible shedding, and zero silent drops on every
    row. [[]] is a pass. *)

val overload_suite_to_json : overload_suite -> Telemetry.Json.t
(** The [BENCH_overload.json] payload. Fully deterministic at a fixed
    seed — no wall-clock fields — so two runs byte-compare equal. *)
