(** The experiment/benchmark inventory, as data — the source of truth
    [bench --docs-check] lints the documentation against, and that
    [bin/experiments.ml] asserts its subcommand group matches at
    startup. Adding a subcommand or a committed [BENCH_*.json] without
    updating this module (and the docs it is checked against) turns the
    build red. *)

val experiments_subcommands : (string * string) list
(** [(name, one-line purpose)] for every [experiments] subcommand.
    EXPERIMENTS.md must mention each as [`experiments <name>`]. *)

val bench_files : (string * string) list
(** [(filename, regeneration command)] for every committed
    [BENCH_*.json]. BENCH.md must carry a [### `<filename>`] section for
    each, and every [BENCH_*.json] present in the repo root must be
    listed here. *)
