(* The experiment/benchmark inventory, as data. `bench --docs-check`
   walks this to fail the build when the docs drift: every experiments
   subcommand must be named in EXPERIMENTS.md (as `experiments <name>`)
   and every committed BENCH_*.json must have a BENCH.md section (headed
   `### `<file>``). bin/experiments.ml asserts its cmdliner group matches
   [experiments_subcommands] at startup, so a subcommand cannot be added
   without landing here — and therefore not without landing in the
   docs. *)

let experiments_subcommands =
  [ ("matrix", "attack x profile matrix");
    ("e1", "replay window sweep");
    ("e3", "password crack sweep");
    ("e13", "discrete log sweep");
    ("e14", "protocol overheads");
    ("e15", "encryption box invariants");
    ("validation", "message-confusion matrices");
    ("opsview", "operator view of the attacks");
    ("chaos", "seeded fault-plane drills");
    ("session-fuzz", "property-based session fuzzing");
    ("recovery", "crash/restart/replay drills");
    ("load", "capacity planning suite (BENCH_load.json)");
    ("detect", "blended attack campaign (BENCH_detect.json)");
    ("replicate", "viral-service replication campaign (BENCH_replication.json)");
    ("overload", "metastable-failure overload campaign (BENCH_overload.json)");
    ("all", "run everything") ]

let bench_files =
  [ ("BENCH_crypto.json", "dune exec bench/main.exe");
    ("BENCH_faults.json", "dune exec bench/main.exe");
    ("BENCH_telemetry.json", "dune exec bench/main.exe");
    ("BENCH_load.json", "dune exec bin/experiments.exe -- load");
    ("BENCH_recovery.json", "dune exec bench/main.exe -- --recovery-smoke");
    ("BENCH_detect.json", "dune exec bin/experiments.exe -- detect");
    ("BENCH_transport.json", "dune exec bench/main.exe -- --transport-smoke");
    ("BENCH_replication.json", "dune exec bin/experiments.exe -- replicate");
    ("BENCH_overload.json", "dune exec bin/experiments.exe -- overload") ]
