(** The disaster-recovery drill: every durability mechanism of the
    recovery plane exercised under one seed, with the invariants checked
    machine-readably.

    Four scenarios per run:
    - {e crash-equivalence}: two fully deterministic twin worlds, one of
      whose KDC crashes mid-run and recovers from checkpoint + WAL. The
      recovered KDC must be indistinguishable on the wire — every AS/TGS
      reply byte-identical to the twin that never crashed, and the shard
      digests equal afterwards.
    - {e torn/corrupt tails}: a WAL cut mid-frame loses exactly the last
      record and nothing else; a bit-flipped frame is CRC-detected and
      the log truncated there — recovery never throws, never applies
      garbage.
    - {e anti-entropy reconciliation}: two replicas diverged as if behind
      a partition exchange per-shard version/digest vectors and transfer
      only the losers; afterwards digests and version vectors are equal
      and every install moved a [kprop.reconciled.<shard>] counter.
    - {e graceful degradation}: with every KDC dark, a client's ticket
      request settles [Degraded] from its wallet instead of surfacing the
      timeout; after the KDC recovers the next request is served live. *)

type world_report = {
  w_outcomes : (string * (string, string) result option) list;
  w_replies : string list;  (** every KDC reply payload, in delivery order *)
  w_digests : int array;
  w_recovery : Kerberos.Kdc.recovery_info option;
  w_checkpoints : int;
  w_recoveries : int;
  w_pending : int;
}

type report = {
  seed : int64;
  crashed : world_report;  (** the world whose KDC crashed and recovered *)
  golden : world_report;  (** the identical world that never crashed *)
  torn_discarded : int;
  torn_applied : int;
  torn_full_applied : int;
  torn_digests_ok : bool;  (** torn recovery = the clean prefix, exactly *)
  bitflip_ok : bool;
  rec_result : (Services.Kprop.reconcile_report, string) result option;
  rec_digests_equal : bool;
  rec_versions_equal : bool;
  rec_installs : int;  (** total [kprop.reconciled.<shard>] increments *)
  degraded_outcome : string;
  degraded_count : int;
  post_restart_outcome : string;
}

val run : seed:int64 -> report
(** One full drill. Deterministic in [seed]. *)

val violations : report -> string list
(** Empty iff every recovery invariant held. *)

val summary : report -> string
(** Multi-line human-readable transcript block for one run. *)
