open Kerberos

let replay_window_sweep () =
  let skews = [ 60.0; 300.0; 900.0 ] in
  let delays = [ 30.0; 240.0; 600.0 ] in
  List.concat_map
    (fun skew ->
      List.map
        (fun delay ->
          let r = Attacks.Replay_auth.run ~skew ~delay ~profile:Profile.v4 () in
          (skew, delay, r.Attacks.Replay_auth.accepted))
        delays)
    skews

let crack_sweep () =
  let pop_sizes = [ 10; 20; 40 ] in
  let v4_rows =
    List.map
      (fun n ->
        let r =
          Attacks.Password_guess.run ~seed:(Int64.of_int (7000 + n)) ~n_users:n
            ~dictionary_head:250 ~profile:Profile.v4 ()
        in
        ( "v4", n, r.Attacks.Password_guess.weak_users, r.replies_recorded,
          List.length r.cracked ))
      pop_sizes
  in
  let hardened_row =
    let r =
      Attacks.Password_guess.run ~n_users:10 ~dictionary_head:250
        ~profile:Profile.hardened ()
    in
    [ ( "hardened (DH)", 10, r.Attacks.Password_guess.weak_users, r.replies_recorded,
        List.length r.cracked ) ]
  in
  v4_rows @ hardened_row

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let dlog_sweep ?(bits = [ 16; 20; 24; 28 ]) () =
  let rng = Util.Rng.create 0xD106L in
  List.concat_map
    (fun b ->
      let grp = Crypto.Dh.toy_group ~bits:b in
      let kp = Crypto.Dh.generate rng grp in
      let check = function
        | Some x ->
            Crypto.Bignum.equal
              (Crypto.Bignum.mod_pow ~base:grp.g ~exp:x ~modulus:grp.p)
              kp.public
        | None -> false
      in
      let bsgs, t_bsgs =
        timed (fun () -> Crypto.Dlog.baby_step_giant_step grp ~target:kp.public)
      in
      let rho, t_rho =
        timed (fun () ->
            let rec attempt n =
              if n = 0 then None
              else
                match Crypto.Dlog.pollard_rho rng grp ~target:kp.public with
                | Some x -> Some x
                | None -> attempt (n - 1)
            in
            attempt 5)
      in
      [ (b, "baby-step/giant-step", t_bsgs, check bsgs);
        (b, "pollard-rho", t_rho, check rho) ])
    bits

let modexp_cost () =
  let cases = [ (31, 100); (61, 100); (127, 50); (521, 5); (607, 3) ] in
  let rng = Util.Rng.create 0xD107L in
  List.map
    (fun (b, iters) ->
      let grp = Crypto.Dh.group ~bits:b in
      let exps = List.init iters (fun _ -> Crypto.Bignum.random_below rng grp.Crypto.Dh.p) in
      let (), t =
        timed (fun () ->
            List.iter
              (fun e ->
                ignore (Crypto.Bignum.mod_pow ~base:grp.Crypto.Dh.g ~exp:e ~modulus:grp.Crypto.Dh.p))
              exps)
      in
      (b, t /. float_of_int iters))
    cases

(* E14: message and state costs per profile. *)

let overhead () =
  let v4_cache =
    { Profile.v4 with
      Profile.name = "v4+cache";
      ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }
  in
  let profiles = [ Profile.v4; v4_cache; Profile.v5_draft3; Profile.hardened ] in
  List.map
    (fun profile ->
      let bed = Attacks.Testbed.make ~profile () in
      let start_events = Sim.Net.event_count bed.net in
      (* One canonical session: login, ticket, AP, three priv calls. *)
      let ap_start = ref 0 and ap_end = ref 0 in
      Client.login bed.victim ~password:bed.victim_password (fun r ->
          ignore (Attacks.Testbed.expect "login" r);
          Client.get_ticket bed.victim ~service:bed.file_principal (fun r ->
              let creds = Attacks.Testbed.expect "ticket" r in
              ap_start := Sim.Net.event_count bed.net;
              Client.ap_exchange bed.victim creds
                ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:bed.file_port
                (fun r ->
                  let chan = Attacks.Testbed.expect "ap" r in
                  ap_end := Sim.Net.event_count bed.net;
                  let rec go i =
                    if i < 3 then
                      Client.call_priv bed.victim chan
                        (Bytes.of_string (Printf.sprintf "READ /f%d" i))
                        ~k:(fun _ -> go (i + 1))
                  in
                  go 0)));
      Attacks.Testbed.run bed;
      let sent_between a b =
        Sim.Net.events bed.net
        |> List.filteri (fun i _ -> i >= a && i < b)
        |> List.filter (function Sim.Net.Sent _ -> true | _ -> false)
        |> List.length
      in
      let total_msgs =
        Sim.Net.events bed.net
        |> List.filteri (fun i _ -> i >= start_events)
        |> List.filter (function Sim.Net.Sent _ -> true | _ -> false)
        |> List.length
      in
      let ap_msgs = sent_between !ap_start !ap_end in
      (* Cache growth: 25 distinct authentications against one server. *)
      let cache_entries =
        let bed2 = Attacks.Testbed.make ~seed:0xCAFEL ~profile () in
        for i = 0 to 24 do
          let c =
            Client.create ~seed:(Int64.of_int (900 + i)) bed2.net bed2.victim_ws
              ~profile
              ~kdcs:[ ("ATHENA", Attacks.Testbed.kdc_addr bed2) ]
              (Principal.user ~realm:"ATHENA" "pat")
          in
          Client.login c ~password:bed2.victim_password (fun r ->
              ignore (Attacks.Testbed.expect "login" r);
              Client.get_ticket c ~service:bed2.file_principal (fun r ->
                  let creds = Attacks.Testbed.expect "ticket" r in
                  Client.ap_exchange c creds ~dst:(Sim.Host.primary_ip bed2.file_host)
                    ~dport:bed2.file_port (fun r ->
                      ignore (Attacks.Testbed.expect "ap" r))));
          Attacks.Testbed.run bed2
        done;
        Apserver.replay_cache_size (Services.Fileserver.apserver bed2.file)
      in
      let datagram_ok =
        match profile.Profile.ap_auth with
        | Profile.Timestamp _ -> true
        | Profile.Challenge_response -> false
      in
      (profile.Profile.name, total_msgs, ap_msgs, cache_entries, datagram_ok))
    profiles
