(** The chaos workload: the quickstart realm (clients logging in, fetching
    tickets, and making sealed file-server calls) run under a seeded
    random fault schedule — loss, duplication, reordering, corruption,
    jitter, a partition or crash of the master KDC, a clock step, and a
    mid-run application-server crash/restart with a persistent replay
    cache.

    Everything is deterministic in [fault_seed]: running the same seed
    twice produces byte-identical telemetry traces. The safety invariants
    ({!safety_violations}) are the ones the paper's operational sections
    promise: no forged or replayed authenticator ever mints a session, a
    sealed read never returns wrong bytes, every client continuation
    settles (success or typed error), the engine drains, and no telemetry
    span leaks. *)

type client_report = {
  cr_name : string;
  cr_outcome : (string, string) result option;
      (** [Ok data] — the sealed read's plaintext; [Error e] — the typed
          failure; [None] — the continuation never fired (a liveness
          violation). *)
}

type report = {
  fault_seed : int64;
  clients : client_report list;
  ap_attempts : int;  (** honest AP exchanges started *)
  sessions_established : int;
  replay_hits : int;
  replay_cache_size : int;
  kdc_failovers : int;  (** client-side failover notes observed *)
  fault_counts : (string * int) list;
  packets_sent : int;
  packets_dropped : int;
  pending_after : int;
  open_spans_after : int;
  sim_seconds : float;
  trace : string;  (** full JSONL trace dump — the determinism witness *)
}

val profile : Kerberos.Profile.t
(** v5-draft3 with a replay cache — the configuration the paper says the
    design required but V4 never shipped. *)

val expected_read : string
(** The file contents every successful client must have read. *)

val run :
  ?clients:int -> ?crash_appserver:bool -> fault_seed:int64 -> unit -> report
(** One full chaos run on a fresh engine, network and collector.
    [clients] (default 4) workstations start staggered; the master KDC is
    the fault schedule's designated victim (the slave keeps the realm
    reachable); with [crash_appserver] (default true) the file server
    crashes at t=6s and restarts at t=8s with its replay cache restored
    from disk. *)

val safety_violations : report -> string list
(** Empty iff every safety and liveness invariant held. *)

val summary : report -> string
(** Multi-line human-readable transcript block for one run. *)
