open Kerberos

(* Property-based session fuzzing: generate whole operation schedules —
   logins, sealed reads (small and deliberately over-MTU), KDC and
   application-server crash/heal pairs, partitions, clock steps — run
   them against the quickstart realm at a randomized path MTU, and check
   the transport-plane invariants on every run. The op-scheme pattern
   (generate a *program*, not a value; shrink by deleting ops) is the
   standard way to fuzz stateful systems. *)

(* --- Schemes -------------------------------------------------------- *)

type op =
  | Read of { who : int; at : float; big : bool }
      (** full pipeline: login -> ticket -> AP exchange -> sealed READ *)
  | Crash_kdc of { at : float; back : float }  (** master KDC crash/heal *)
  | Crash_ap of { at : float; back : float }
  | Partition of { at : float; dur : float }  (** master cut off *)
  | Clock_step of { who : int; at : float; delta : float }
  | Mtu_change of { at : float; mtu : int option }
      (** mid-run global path-MTU change: shrink under an open channel
          (truncating replies already in flight), or lift the constraint
          so later exchanges can ride datagrams again *)

type scheme = {
  sc_seed : int64;  (** seeds the run's net / faults / client rngs *)
  sc_mtu : int option;  (** path MTU for the whole run; [None] = unlimited *)
  sc_reply_mtu : int option;
      (** asymmetric link MTU on the {e reply} direction only
          (server -> workstation). Deliberately low-banded: small enough
          to clip even a RESPONSE-TOO-BIG refusal, so the client sees
          garbage rather than a typed refusal and must take the
          Garbled-retry arm of the transport fallback. *)
  sc_noise : bool;  (** background loss / duplication / reordering *)
  sc_ops : op list;
}

let n_clients = 3

let op_to_string = function
  | Read { who; at; big } ->
      Printf.sprintf "read(who=%d at=%.2f %s)" who at
        (if big then "big" else "small")
  | Crash_kdc { at; back } -> Printf.sprintf "crash_kdc(at=%.2f back=%.2f)" at back
  | Crash_ap { at; back } -> Printf.sprintf "crash_ap(at=%.2f back=%.2f)" at back
  | Partition { at; dur } -> Printf.sprintf "partition(at=%.2f dur=%.2f)" at dur
  | Clock_step { who; at; delta } ->
      Printf.sprintf "clock_step(who=%d at=%.2f delta=%+.1f)" who at delta
  | Mtu_change { at; mtu } ->
      Printf.sprintf "mtu_change(at=%.2f mtu=%s)" at
        (match mtu with None -> "none" | Some m -> string_of_int m)

let scheme_to_string sc =
  Printf.sprintf "seed=%Ld mtu=%s reply_mtu=%s noise=%b ops=[%s]" sc.sc_seed
    (match sc.sc_mtu with None -> "none" | Some m -> string_of_int m)
    (match sc.sc_reply_mtu with None -> "none" | Some m -> string_of_int m)
    sc.sc_noise
    (String.concat "; " (List.map op_to_string sc.sc_ops))

let gen_op rng =
  let at = 0.5 +. Util.Rng.float rng 15.0 in
  match Util.Rng.int rng 12 with
  | 0 -> Crash_kdc { at; back = at +. 1.0 +. Util.Rng.float rng 4.0 }
  | 1 -> Crash_ap { at; back = at +. 1.0 +. Util.Rng.float rng 4.0 }
  | 2 -> Partition { at; dur = 1.0 +. Util.Rng.float rng 4.0 }
  | 3 ->
      Clock_step
        { who = Util.Rng.int rng n_clients; at;
          delta = Util.Rng.float rng 120.0 -. 60.0 }
  | 4 ->
      Mtu_change
        { at;
          mtu =
            (if Util.Rng.int rng 4 = 0 then None
             else Some (64 + Util.Rng.int rng 1437)) }
  | _ ->
      Read
        { who = Util.Rng.int rng n_clients; at;
          big = Util.Rng.int rng 3 = 0 }

let gen_scheme rng =
  let n = 5 + Util.Rng.int rng 21 in
  { sc_seed = Util.Rng.next_int64 rng;
    (* A third of runs have no MTU at all (the pre-transport-plane
       world); the rest land anywhere from "everything falls back to
       TCP" to "nothing ever does". *)
    sc_mtu =
      (if Util.Rng.int rng 3 = 0 then None
       else Some (96 + Util.Rng.int rng 1405));
    (* A quarter of runs squeeze the reply direction only, banded 16-63
       bytes to straddle the ~33-byte encoded RESPONSE-TOO-BIG refusal:
       below it even the refusal gets clipped, the client classifies the
       reply as Garbled, and two in a row force the truncation-reason
       TCP fallback — the arm a symmetric MTU can never reach, because
       there the refusal always fits; above it the same squeeze
       exercises the typed-refusal arm. *)
    sc_reply_mtu =
      (if Util.Rng.int rng 4 = 0 then Some (16 + Util.Rng.int rng 48)
       else None);
    sc_noise = Util.Rng.int rng 3 = 0;
    sc_ops = List.init n (fun _ -> gen_op rng) }

(* --- Running one scheme --------------------------------------------- *)

let base_profile =
  { Profile.v5_draft3 with
    Profile.name = "v5d3+fuzz";
    ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let small_path = "/readme"
let small_content = "fuzz payload"
let big_path = "/blob"

(* Big enough to overflow any generated MTU (max 1500): the sealed READ
   reply for it cannot ride a datagram on a constrained path. *)
let big_content =
  String.init 1800 (fun i -> Char.chr (Char.code 'a' + (i mod 26)))

type read_report = {
  rr_op : int;  (** index into [sc_ops] *)
  rr_big : bool;
  rr_outcome : (string, string) result option;  (** [None] = never settled *)
}

type report = {
  r_scheme : scheme;
  r_reads : read_report list;
  r_ap_attempts : int;
  r_sessions : int;
  r_replay_hits : int;
  r_fallbacks : int;  (** all [transport.fallback.*] counters summed *)
  r_trunc_fallbacks : int;
      (** the [transport.fallback.truncation] counter alone: TCP upgrades
          forced by repeated Garbled replies, not by a typed refusal *)
  r_truncated : int;  (** datagrams clipped by the MTU model *)
  r_packets : int;
  r_pending_after : int;
  r_open_spans : int;
  r_sim_seconds : float;
  r_trace : string;
}

let quad = Sim.Addr.of_quad

let run_scheme ?(mutate = false) sc =
  (* [mutate] plants the paper's own bug — no server replay cache — and
     duplicates every datagram to the application server, so a replayed
     authenticator mints a second session. The invariant checker must
     catch it; see {!mutation_caught}. *)
  let profile =
    if mutate then
      { base_profile with
        Profile.ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = false } }
    else base_profile
  in
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:sc.sc_seed ~telemetry:tel eng in
  Sim.Net.set_mtu net sc.sc_mtu;
  let master_host = Sim.Host.create ~name:"kdc-master" ~ips:[ quad 10 1 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kdc-slave" ~ips:[ quad 10 1 0 2 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 1 0 20 ] () in
  let ws =
    List.init n_clients (fun i ->
        Sim.Host.create ~name:(Printf.sprintf "ws%d" i)
          ~ips:[ quad 10 1 0 (30 + i) ] ())
  in
  List.iter (Sim.Net.attach net) (master_host :: slave_host :: fs_host :: ws);
  (match sc.sc_reply_mtu with
  | None -> ()
  | Some m ->
      List.iter
        (fun srv ->
          List.iter
            (fun w ->
              Sim.Net.set_link_mtu net ~src:(Sim.Host.primary_ip srv)
                ~dst:(Sim.Host.primary_ip w) (Some m))
            ws)
        [ master_host; slave_host; fs_host ]);
  let rng = Util.Rng.create sc.sc_seed in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm:"FUZZ") ~key:(Crypto.Des.random_key rng);
  let users =
    List.init n_clients (fun i ->
        ( Principal.user ~realm:"FUZZ" (Printf.sprintf "user%d" i),
          Printf.sprintf "fuzz.pw.%d" i ))
  in
  List.iter (fun (p, pw) -> Kdb.add_user db p ~password:pw) users;
  let fileserv = Principal.service ~realm:"FUZZ" "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  let master = Kdc.create ~realm:"FUZZ" ~profile ~lifetime:28800.0 db in
  Kdc.install net master_host master ();
  let slave =
    Kdc.create ~realm:"FUZZ" ~profile ~lifetime:28800.0
      (Kdb.of_bytes (Kdb.to_bytes db))
  in
  Kdc.install net slave_host slave ();
  let fsrv =
    Services.Fileserver.install net fs_host
      ~config:{ Apserver.default_config with persist_replay_cache = true }
      ~profile ~principal:fileserv ~key:fs_key ~port:600
  in
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:small_path
    (Bytes.of_string small_content);
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:big_path
    (Bytes.of_string big_content);
  let apsrv = Services.Fileserver.apserver fsrv in
  let plane = Sim.Faults.create ~seed:sc.sc_seed () in
  if sc.sc_noise then begin
    Sim.Faults.add_loss plane ~p:0.03 ();
    Sim.Faults.add_duplicate plane ~p:0.03 ();
    Sim.Faults.add_reorder plane ~p:0.03 ()
  end;
  if mutate then
    Sim.Faults.add_duplicate plane ~dst:(Sim.Host.primary_ip fs_host) ~p:1.0 ();
  let others =
    Sim.Host.primary_ip slave_host :: Sim.Host.primary_ip fs_host
    :: List.map Sim.Host.primary_ip ws
  in
  let kdcs =
    [ ("FUZZ", Sim.Host.primary_ip master_host);
      ("FUZZ", Sim.Host.primary_ip slave_host) ]
  in
  let clients =
    List.mapi
      (fun i host ->
        let _, pw = List.nth users i in
        Client.create
          ~seed:(Int64.add sc.sc_seed (Int64.of_int (0x5E55 + i)))
          ~password:pw ~kdc_timeout:0.8 ~kdc_retries:1 net host ~profile ~kdcs
          (fst (List.nth users i)))
      ws
  in
  let reads = ref [] in
  List.iteri
    (fun op_idx op ->
      match op with
      | Crash_kdc { at; back } ->
          Sim.Engine.schedule eng ~at (fun () -> Kdc.crash master);
          Sim.Engine.schedule eng ~at:back (fun () -> Kdc.restart master)
      | Crash_ap { at; back } ->
          Sim.Engine.schedule eng ~at (fun () -> Apserver.crash apsrv);
          Sim.Engine.schedule eng ~at:back (fun () -> Apserver.restart apsrv)
      | Partition { at; dur } ->
          Sim.Faults.partition plane
            ~a:[ Sim.Host.primary_ip master_host ]
            ~b:others ~from:at ~until:(at +. dur) ()
      | Clock_step { who; at; delta } ->
          Sim.Faults.clock_step plane eng (List.nth ws who) ~at ~delta
      | Mtu_change { at; mtu } ->
          Sim.Engine.schedule eng ~at (fun () -> Sim.Net.set_mtu net mtu)
      | Read { who; at; big } ->
          let c = List.nth clients who in
          let _, pw = List.nth users who in
          let outcome = ref None in
          reads := (op_idx, big, outcome) :: !reads;
          let finish r = if !outcome = None then outcome := Some r in
          let retrying label attempts f k =
            let rec go n =
              f (fun r ->
                  match r with
                  | Ok v -> k v
                  | Error e ->
                      if n + 1 < attempts then
                        Sim.Engine.schedule_after eng 1.0 (fun () -> go (n + 1))
                      else finish (Error (label ^ ": " ^ e)))
            in
            go 0
          in
          Sim.Engine.schedule eng ~at (fun () ->
              retrying "login" 2 (fun k -> Client.login c ~password:pw k)
                (fun _ ->
                  retrying "ticket" 2
                    (fun k -> Client.get_ticket c ~service:fileserv k)
                    (fun creds ->
                      retrying "ap" 2
                        (fun k ->
                          Client.ap_exchange c creds ~deadline:3.0
                            ~dst:(Sim.Host.primary_ip fs_host) ~dport:600 k)
                        (fun chan ->
                          retrying "read" 2
                            (fun k ->
                              Client.call_priv c chan ~deadline:3.0
                                (Bytes.of_string
                                   ("READ " ^ if big then big_path else small_path))
                                ~k)
                            (fun data -> finish (Ok (Bytes.to_string data))))))))
    sc.sc_ops;
  Sim.Net.attach_faults net plane;
  Sim.Engine.run eng;
  let counter name =
    Telemetry.Metrics.value
      (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel) name)
  in
  { r_scheme = sc;
    r_reads =
      List.rev_map
        (fun (op_idx, big, outcome) ->
          { rr_op = op_idx; rr_big = big; rr_outcome = !outcome })
        !reads;
    (* The library-level counter, not the workload's: a channel's
       transparent TCP upgrade starts an honest second exchange the
       workload cannot see. Replay-minted sessions bump neither. *)
    r_ap_attempts = counter "client.ap_exchange.started";
    r_sessions = Apserver.sessions_established apsrv;
    r_replay_hits = Apserver.replay_hits apsrv;
    r_fallbacks =
      counter "transport.fallback.response_too_big"
      + counter "transport.fallback.request_too_big"
      + counter "transport.fallback.truncation";
    r_trunc_fallbacks = counter "transport.fallback.truncation";
    r_truncated = counter "net.packets.truncated";
    r_packets = counter "net.packets.sent";
    r_pending_after = Sim.Engine.pending eng;
    r_open_spans = Telemetry.Collector.open_span_count tel;
    r_sim_seconds = Sim.Engine.now eng;
    r_trace = Telemetry.Collector.trace_jsonl tel }

(* --- Invariants ----------------------------------------------------- *)

let violations r =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  (* No authenticator is ever accepted twice, and no forged one at all:
     the server can never hold more sessions than honest AP exchanges
     were started. (A session minted under a mismatched key cannot
     complete a sealed read, which the byte-exactness check below
     covers.) *)
  if r.r_sessions > r.r_ap_attempts then
    add "replayed/forged authenticator accepted: %d sessions from %d AP attempts"
      r.r_sessions r.r_ap_attempts;
  (* Every client call terminates — reply, typed error, or timeout — and
     a successful sealed read is byte-exact, whichever transport carried
     it. *)
  List.iter
    (fun rr ->
      let expected = if rr.rr_big then big_content else small_content in
      match rr.rr_outcome with
      | Some (Ok data) when data <> expected ->
          add "op %d: sealed read returned wrong bytes (%d bytes, wanted %d)"
            rr.rr_op (String.length data) (String.length expected)
      | Some _ -> ()
      | None -> add "op %d: continuation never settled (stalled client)" rr.rr_op)
    r.r_reads;
  if r.r_pending_after <> 0 then
    add "engine failed to drain: %d events pending" r.r_pending_after;
  if r.r_open_spans <> 0 then add "%d telemetry spans left open" r.r_open_spans;
  List.rev !v

let deterministic sc =
  let a = run_scheme sc in
  let b = run_scheme sc in
  String.equal a.r_trace b.r_trace

(* --- Shrinking ------------------------------------------------------ *)

(* Greedy op deletion: drop each op in turn and keep the deletion
   whenever the scheme still fails. Linear, deterministic, and in
   practice reduces a 20-op failure to the 1-3 ops that matter. *)
let shrink sc =
  let fails s = violations (run_scheme s) <> [] in
  if not (fails sc) then sc
  else begin
    let rec go sc i =
      if i >= List.length sc.sc_ops then sc
      else
        let candidate =
          { sc with sc_ops = List.filteri (fun j _ -> j <> i) sc.sc_ops }
        in
        if fails candidate then go candidate i else go sc (i + 1)
    in
    go sc 0
  end

let mutation_caught () =
  (* The planted bug needs at least one read to replay; a fixed scheme
     with a few reads and no other weather keeps the check fast. *)
  let sc =
    { sc_seed = 0xB16B00B5L; sc_mtu = None; sc_reply_mtu = None;
      sc_noise = false;
      sc_ops =
        [ Read { who = 0; at = 1.0; big = false };
          Read { who = 1; at = 2.0; big = false } ] }
  in
  violations (run_scheme ~mutate:true sc) <> []

(* --- Campaigns ------------------------------------------------------ *)

type campaign = {
  c_seed : int64;
  c_schedules : int;
  c_reads : int;
  c_read_oks : int;
  c_fallbacks : int;
  c_trunc_fallbacks : int;
  c_truncated : int;
  c_det_checks : int;
  c_det_failures : int;
  c_failures : (scheme * string list) list;  (** shrunk counterexamples *)
}

let campaign ?(schedules = 100) ?(det_every = 25) ~seed () =
  let rng = Util.Rng.create seed in
  let reads = ref 0 and oks = ref 0 and fallbacks = ref 0 and trunc = ref 0 in
  let trunc_fb = ref 0 in
  let det_checks = ref 0 and det_failures = ref 0 in
  let failures = ref [] in
  for i = 1 to schedules do
    let sc = gen_scheme rng in
    let r = run_scheme sc in
    reads := !reads + List.length r.r_reads;
    oks :=
      !oks
      + List.length
          (List.filter
             (fun rr -> match rr.rr_outcome with Some (Ok _) -> true | _ -> false)
             r.r_reads);
    fallbacks := !fallbacks + r.r_fallbacks;
    trunc_fb := !trunc_fb + r.r_trunc_fallbacks;
    trunc := !trunc + r.r_truncated;
    (match violations r with
    | [] -> ()
    | _ ->
        let small = shrink sc in
        failures := (small, violations (run_scheme small)) :: !failures);
    if i mod det_every = 0 then begin
      incr det_checks;
      if not (deterministic sc) then incr det_failures
    end
  done;
  { c_seed = seed; c_schedules = schedules; c_reads = !reads; c_read_oks = !oks;
    c_fallbacks = !fallbacks; c_trunc_fallbacks = !trunc_fb;
    c_truncated = !trunc; c_det_checks = !det_checks;
    c_det_failures = !det_failures; c_failures = List.rev !failures }

let campaign_summary c =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "seed %Ld: %d schedules, %d reads (%d ok), %d transport fallbacks (%d via Garbled-retry), %d truncated datagrams"
    c.c_seed c.c_schedules c.c_reads c.c_read_oks c.c_fallbacks
    c.c_trunc_fallbacks c.c_truncated;
  line "  determinism double-runs: %d (%d mismatches)" c.c_det_checks
    c.c_det_failures;
  (match c.c_failures with
  | [] -> line "  invariants: OK (0 violations)"
  | fs ->
      line "  invariants: %d FAILING SCHEMES (shrunk)" (List.length fs);
      List.iter
        (fun (sc, vs) ->
          line "    - %s" (scheme_to_string sc);
          List.iter (fun v -> line "      %s" v) vs)
        fs);
  Buffer.contents b

let ok c = c.c_failures = [] && c.c_det_failures = 0
