open Kerberos

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type world_report = {
  w_outcomes : (string * (string, string) result option) list;
  w_replies : string list;  (** every KDC reply payload, in delivery order *)
  w_digests : int array;
  w_recovery : Kdc.recovery_info option;
  w_checkpoints : int;
  w_recoveries : int;
  w_pending : int;
}

type report = {
  seed : int64;
  crashed : world_report;
  golden : world_report;
  torn_discarded : int;
  torn_applied : int;
  torn_full_applied : int;
  torn_digests_ok : bool;
  bitflip_ok : bool;
  rec_result : (Services.Kprop.reconcile_report, string) result option;
  rec_digests_equal : bool;
  rec_versions_equal : bool;
  rec_installs : int;
  degraded_outcome : string;
  degraded_count : int;
  post_restart_outcome : string;
}

let realm = "REC"

let profile = Profile.v5_draft3

let quad = Sim.Addr.of_quad

(* ------------------------------------------------------------------ *)
(* Scenario A: crash-equivalence against a golden twin world.          *)
(*                                                                     *)
(* Two fully deterministic worlds share every seed; the only           *)
(* difference is that one KDC crashes at t=6 and recovers at t=7,      *)
(* inside a quiet window. If checkpoint + WAL replay reconstruct the   *)
(* database exactly, the two worlds' KDC reply transcripts — every     *)
(* encrypted AS/TGS reply byte — are identical, and so are the         *)
(* post-run shard digests.                                             *)
(* ------------------------------------------------------------------ *)

let world ~seed ~crash () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x52454356L ~telemetry:tel eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 1 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 1 0 10 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws ];
  let replies = ref [] in
  Sim.Net.add_tap net (fun pkt ->
      if pkt.Sim.Packet.sport = Kdc.default_port then
        replies := Bytes.to_string pkt.Sim.Packet.payload :: !replies);
  let rng = Util.Rng.create (Int64.add 0x4b455953L seed) in
  let db = Kdb.create ~shards:4 () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  Kdb.add_service db fileserv ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"rec.pw.1";
  let kdc = Kdc.create ~seed:(Int64.add 0x4b4443L seed) ~realm ~profile
      ~lifetime:28800.0 db
  in
  Kdc.enable_durability ~checkpoint_every:2 kdc;
  Kdc.install net kdc_host kdc ();
  let kdcs = [ (realm, Sim.Host.primary_ip kdc_host) ] in
  let outcomes = ref [] in
  let flow name c ~password ~service =
    let settled = ref None in
    outcomes := (name, settled) :: !outcomes;
    Client.login c ~password (function
      | Error e -> settled := Some (Error ("login: " ^ e))
      | Ok _ ->
          Client.get_ticket c ~service (function
            | Error e -> settled := Some (Error ("ticket: " ^ e))
            | Ok _ -> settled := Some (Ok "ok")))
  in
  (* Phase 1: pat works against the pristine database. *)
  Sim.Engine.schedule eng ~at:0.5 (fun () ->
      let c = Client.create ~seed:(Int64.add 0x1001L seed) net ws ~profile ~kdcs
          (Principal.user ~realm "pat")
      in
      flow "pat/phase1" c ~password:"rec.pw.1" ~service:fileserv);
  (* Admin mutations, each WAL-logged; the second triggers the auto
     checkpoint, the third stays in the log and must survive the crash. *)
  let printer = Principal.service ~realm "printer" ~host:"pr" in
  let printer_key = Crypto.Des.random_key rng in
  Sim.Engine.schedule eng ~at:2.0 (fun () ->
      Kdb.add_user db (Principal.user ~realm "newbie") ~password:"rec.pw.n");
  Sim.Engine.schedule eng ~at:3.0 (fun () ->
      Kdb.add_service db printer ~key:printer_key);
  Sim.Engine.schedule eng ~at:4.0 (fun () ->
      Kdb.add_user db (Principal.user ~realm "pat") ~password:"rec.pw.2");
  if crash then begin
    Sim.Engine.schedule eng ~at:6.0 (fun () -> Kdc.crash kdc);
    Sim.Engine.schedule eng ~at:7.0 (fun () -> Kdc.restart kdc)
  end;
  (* Phase 2: both the checkpointed and the WAL-only mutations serve. *)
  Sim.Engine.schedule eng ~at:8.0 (fun () ->
      let c = Client.create ~seed:(Int64.add 0x1002L seed) net ws ~profile ~kdcs
          (Principal.user ~realm "newbie")
      in
      flow "newbie/phase2" c ~password:"rec.pw.n" ~service:printer);
  Sim.Engine.schedule eng ~at:8.2 (fun () ->
      let c = Client.create ~seed:(Int64.add 0x1003L seed) net ws ~profile ~kdcs
          (Principal.user ~realm "pat")
      in
      flow "pat/phase2" c ~password:"rec.pw.2" ~service:fileserv);
  Sim.Engine.run eng;
  { w_outcomes =
      List.rev_map (fun (name, settled) -> (name, !settled)) !outcomes;
    w_replies = List.rev !replies;
    w_digests = Kdb.digests db;
    w_recovery = Kdc.last_recovery kdc;
    w_checkpoints = Kdb.checkpoints_taken db;
    w_recoveries = Kdc.recoveries kdc;
    w_pending = Sim.Engine.pending eng }

(* ------------------------------------------------------------------ *)
(* Scenario B: torn and bit-flipped WAL tails truncate cleanly.        *)
(* ------------------------------------------------------------------ *)

let torn_tail ~seed =
  let mk () =
    let rng = Util.Rng.create (Int64.add 0x544f524eL seed) in
    let db = Kdb.create ~shards:4 () in
    Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
    (db, rng)
  in
  let mutate db rng n =
    for i = 0 to n - 1 do
      if i mod 3 = 2 then
        Kdb.add_service db
          (Principal.service ~realm (Printf.sprintf "svc%d" i) ~host:"h")
          ~key:(Crypto.Des.random_key rng)
      else
        Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
          ~password:(Printf.sprintf "pw%d" i)
    done
  in
  let n = 7 in
  let db, rng = mk () in
  Kdb.enable_durability db;
  mutate db rng n;
  let checkpoint, wal = Option.get (Kdb.disk_image db) in
  let full = Kdb.recover ~checkpoint ~wal in
  (* Tear 3 bytes off the tail: the last frame is incomplete and must be
     discarded, leaving exactly the first [n - 1] mutations. *)
  let torn_wal = Bytes.sub wal 0 (Bytes.length wal - 3) in
  let torn = Kdb.recover ~checkpoint ~wal:torn_wal in
  let twin, twin_rng = mk () in
  mutate twin twin_rng (n - 1);
  let torn_digests_ok = Kdb.digests torn.Kdb.recovered = Kdb.digests twin in
  (* Flip one bit mid-log: CRC catches it and replay stops before the
     damaged frame — never garbage, never an exception. *)
  let flipped = Bytes.copy wal in
  let pos = Bytes.length flipped / 2 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x10));
  let bf = Kdb.recover ~checkpoint ~wal:flipped in
  let bitflip_ok =
    bf.Kdb.discarded_bytes > 0 && bf.Kdb.applied < full.Kdb.applied
  in
  ( torn.Kdb.discarded_bytes,
    torn.Kdb.applied,
    full.Kdb.applied,
    torn_digests_ok,
    bitflip_ok )

(* ------------------------------------------------------------------ *)
(* Scenario C: anti-entropy reconciliation of diverged replicas.       *)
(* ------------------------------------------------------------------ *)

let reconcile_run ~seed =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x52454341L ~telemetry:tel eng in
  let a_host = Sim.Host.create ~name:"kdc-a" ~ips:[ quad 10 2 0 1 ] () in
  let b_host = Sim.Host.create ~name:"kdc-b" ~ips:[ quad 10 2 0 2 ] () in
  List.iter (Sim.Net.attach net) [ a_host; b_host ];
  (* Two replicas built identically — same seeds, same insertion order —
     then diverged as if a partition let each keep taking writes. *)
  let build () =
    let rng = Util.Rng.create (Int64.add 0x444956L seed) in
    let db = Kdb.create ~shards:4 () in
    Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
    Kdb.add_user db (Principal.user ~realm "kadmin") ~password:"master.pw";
    let kpropd_principal = Principal.service ~realm "kprop" ~host:"kdc-b" in
    let kpropd_key = Crypto.Des.random_key rng in
    Kdb.add_service db kpropd_principal ~key:kpropd_key;
    for i = 0 to 7 do
      Kdb.add_user db (Principal.user ~realm (Printf.sprintf "u%d" i))
        ~password:(Printf.sprintf "pw%d" i)
    done;
    (db, kpropd_principal, kpropd_key)
  in
  let db_a, kpropd_principal, kpropd_key = build () in
  let db_b, _, _ = build () in
  (* Divergence: A gained a user; B gained two and re-keyed u0 twice, so
     u0's shard has a strictly higher version on B. *)
  Kdb.add_user db_a (Principal.user ~realm "alice") ~password:"alice.pw";
  Kdb.add_user db_b (Principal.user ~realm "bob") ~password:"bob.pw";
  Kdb.add_user db_b (Principal.user ~realm "u0") ~password:"pw0.second";
  Kdb.add_user db_b (Principal.user ~realm "u0") ~password:"pw0.third";
  let kdc_a = Kdc.create ~realm ~profile ~lifetime:28800.0 db_a in
  Kdc.install net a_host kdc_a ();
  let _kpropd =
    Services.Kprop.install_slave net b_host ~profile ~principal:kpropd_principal
      ~key:kpropd_key ~port:754 ~master:(Principal.user ~realm "kadmin")
      ~slave_db:db_b
  in
  let admin =
    Client.create ~seed:(Int64.add 0x41444dL seed) net a_host ~profile
      ~kdcs:[ (realm, Sim.Host.primary_ip a_host) ]
      (Principal.user ~realm "kadmin")
  in
  let result = ref None in
  Client.login admin ~password:"master.pw" (function
    | Error e -> result := Some (Error ("login: " ^ e))
    | Ok _ ->
        Client.get_ticket admin ~service:kpropd_principal (function
          | Error e -> result := Some (Error ("ticket: " ^ e))
          | Ok creds ->
              Client.ap_exchange admin creds
                ~dst:(Sim.Host.primary_ip b_host) ~dport:754 (function
                | Error e -> result := Some (Error ("ap: " ^ e))
                | Ok chan ->
                    Services.Kprop.reconcile ~deadline:5.0 admin chan ~db:db_a
                      ~k:(fun r -> result := Some r))));
  Sim.Engine.run eng;
  let installs =
    let m = Telemetry.Collector.metrics tel in
    let total = ref 0 in
    for i = 0 to Kdb.shard_count db_a - 1 do
      total :=
        !total
        + Telemetry.Metrics.value
            (Telemetry.Metrics.counter m (Printf.sprintf "kprop.reconciled.%d" i))
    done;
    !total
  in
  ( !result,
    Kdb.digests db_a = Kdb.digests db_b,
    Kdb.version_vector db_a = Kdb.version_vector db_b,
    installs )

(* ------------------------------------------------------------------ *)
(* Scenario D: graceful degradation when every KDC is dark.            *)
(* ------------------------------------------------------------------ *)

let degraded_run ~seed =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x44454744L ~telemetry:tel eng in
  let kdc_host = Sim.Host.create ~name:"kdc" ~ips:[ quad 10 3 0 1 ] () in
  let ws = Sim.Host.create ~name:"ws" ~ips:[ quad 10 3 0 10 ] () in
  List.iter (Sim.Net.attach net) [ kdc_host; ws ];
  let rng = Util.Rng.create (Int64.add 0x444747L seed) in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm) ~key:(Crypto.Des.random_key rng);
  let fileserv = Principal.service ~realm "fileserv" ~host:"fs" in
  Kdb.add_service db fileserv ~key:(Crypto.Des.random_key rng);
  Kdb.add_user db (Principal.user ~realm "pat") ~password:"deg.pw";
  let kdc = Kdc.create ~realm ~profile ~lifetime:28800.0 db in
  Kdc.enable_durability kdc;
  Kdc.install net kdc_host kdc ();
  let c =
    Client.create ~seed:(Int64.add 0x2001L seed) ~kdc_timeout:0.4 net ws
      ~profile ~kdcs:[ (realm, Sim.Host.primary_ip kdc_host) ]
      (Principal.user ~realm "pat")
  in
  let show = function
    | None -> "stalled"
    | Some (Error e) -> "error: " ^ e
    | Some (Ok (_, Client.From_kdc)) -> "from-kdc"
    | Some (Ok (_, Client.From_cache)) -> "from-cache"
    | Some (Ok (_, Client.Degraded)) -> "degraded"
  in
  let dark = ref None and relit = ref None in
  Sim.Engine.schedule eng ~at:0.5 (fun () ->
      Client.login c ~password:"deg.pw" (fun r ->
          ignore (Result.get_ok r);
          Client.get_ticket c ~service:fileserv (fun r -> ignore (Result.get_ok r))));
  Sim.Engine.schedule eng ~at:2.0 (fun () -> Kdc.crash kdc);
  Sim.Engine.schedule eng ~at:3.0 (fun () ->
      Client.get_ticket_ex c ~service:fileserv (fun r -> dark := Some r));
  Sim.Engine.schedule eng ~at:10.0 (fun () -> Kdc.restart kdc);
  Sim.Engine.schedule eng ~at:11.0 (fun () ->
      Client.get_ticket_ex c ~service:fileserv (fun r -> relit := Some r));
  Sim.Engine.run eng;
  (show !dark, Client.degraded_fallbacks c, show !relit)

(* ------------------------------------------------------------------ *)

let run ~seed =
  let crashed = world ~seed ~crash:true () in
  let golden = world ~seed ~crash:false () in
  let torn_discarded, torn_applied, torn_full_applied, torn_digests_ok, bitflip_ok
      =
    torn_tail ~seed
  in
  let rec_result, rec_digests_equal, rec_versions_equal, rec_installs =
    reconcile_run ~seed
  in
  let degraded_outcome, degraded_count, post_restart_outcome =
    degraded_run ~seed
  in
  { seed; crashed; golden; torn_discarded; torn_applied; torn_full_applied;
    torn_digests_ok; bitflip_ok; rec_result; rec_digests_equal;
    rec_versions_equal; rec_installs; degraded_outcome; degraded_count;
    post_restart_outcome }

let violations r =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  (* Crash-equivalence: the recovered KDC is indistinguishable on the
     wire from the twin that never crashed. *)
  if r.crashed.w_replies <> r.golden.w_replies then
    add "recovered KDC reply transcript diverged from uncrashed twin (%d vs %d replies)"
      (List.length r.crashed.w_replies) (List.length r.golden.w_replies);
  if r.crashed.w_digests <> r.golden.w_digests then
    add "recovered database digests diverge from uncrashed twin";
  List.iter
    (fun (name, o) ->
      match o with
      | Some (Ok _) -> ()
      | Some (Error e) -> add "crashed world: %s failed (%s)" name e
      | None -> add "crashed world: %s never settled" name)
    r.crashed.w_outcomes;
  (match r.crashed.w_recovery with
  | None -> add "KDC restart recorded no recovery"
  | Some ri ->
      if ri.Kdc.wal_applied = 0 then
        add "recovery applied no WAL records (scenario under-exercised)";
      if ri.Kdc.wal_discarded_bytes <> 0 then
        add "clean crash discarded %d WAL bytes" ri.Kdc.wal_discarded_bytes);
  if r.crashed.w_recoveries <> 1 then
    add "expected exactly 1 recovery, counted %d" r.crashed.w_recoveries;
  if r.crashed.w_pending <> 0 || r.golden.w_pending <> 0 then
    add "engine failed to drain (%d/%d events pending)" r.crashed.w_pending
      r.golden.w_pending;
  (* Torn / corrupt tails. *)
  if r.torn_discarded = 0 then add "torn WAL tail was not detected";
  if r.torn_applied <> r.torn_full_applied - 1 then
    add "torn tail should cost exactly the last record (%d vs %d applied)"
      r.torn_applied r.torn_full_applied;
  if not r.torn_digests_ok then
    add "torn-tail recovery does not match the clean prefix";
  if not r.bitflip_ok then add "bit-flipped WAL frame not CRC-truncated";
  (* Reconciliation. *)
  (match r.rec_result with
  | Some (Ok rr) ->
      if rr.Services.Kprop.pulled + rr.Services.Kprop.pushed = 0 then
        add "reconcile moved no shards despite divergence";
      if rr.Services.Kprop.pulled = 0 then
        add "reconcile pulled nothing: the peer won at least one shard";
      if rr.Services.Kprop.pushed = 0 then
        add "reconcile pushed nothing: we won at least one shard"
  | Some (Error e) -> add "reconcile failed: %s" e
  | None -> add "reconcile never settled");
  if not r.rec_digests_equal then
    add "replicas hold different shard digests after reconciliation";
  if not r.rec_versions_equal then
    add "replicas hold different version vectors after reconciliation";
  if r.rec_installs = 0 then add "no kprop.reconciled.<shard> counter moved";
  (* Degradation. *)
  if r.degraded_outcome <> "degraded" then
    add "dark-KDC ticket request was %S, expected degraded fallback"
      r.degraded_outcome;
  if r.degraded_count <> 1 then
    add "expected 1 degraded fallback, counted %d" r.degraded_count;
  if r.post_restart_outcome <> "from-kdc" then
    add "post-restart ticket request was %S, expected from-kdc"
      r.post_restart_outcome;
  List.rev !v

let summary r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "seed %Ld:" r.seed;
  (match r.crashed.w_recovery with
  | Some ri ->
      line
        "  crash/recover: %d checkpoints, replayed %d WAL record(s) (%d skipped, %d bytes discarded), %d replay-cache entries restored"
        r.crashed.w_checkpoints ri.Kdc.wal_applied ri.Kdc.wal_skipped
        ri.Kdc.wal_discarded_bytes ri.Kdc.replay_entries
  | None -> line "  crash/recover: NO RECOVERY RECORDED");
  line "  twin equivalence: %d KDC replies, transcripts %s, digests %s"
    (List.length r.crashed.w_replies)
    (if r.crashed.w_replies = r.golden.w_replies then "identical" else "DIVERGED")
    (if r.crashed.w_digests = r.golden.w_digests then "identical" else "DIVERGED");
  List.iter
    (fun (name, o) ->
      line "    %-14s %s" name
        (match o with
        | Some (Ok _) -> "ok"
        | Some (Error e) -> "error (" ^ e ^ ")"
        | None -> "STALLED"))
    r.crashed.w_outcomes;
  line "  torn tail: %d byte(s) discarded, %d/%d records survive, prefix %s; bit-flip %s"
    r.torn_discarded r.torn_applied r.torn_full_applied
    (if r.torn_digests_ok then "exact" else "WRONG")
    (if r.bitflip_ok then "truncated" else "NOT CAUGHT");
  (match r.rec_result with
  | Some (Ok rr) ->
      line "  reconcile: %d shards examined, %d pulled, %d pushed, %d installs counted; digests %s, versions %s"
        rr.Services.Kprop.examined rr.Services.Kprop.pulled
        rr.Services.Kprop.pushed r.rec_installs
        (if r.rec_digests_equal then "equal" else "UNEQUAL")
        (if r.rec_versions_equal then "equal" else "UNEQUAL")
  | Some (Error e) -> line "  reconcile: FAILED (%s)" e
  | None -> line "  reconcile: STALLED");
  line "  degradation: dark-KDC request -> %s (%d fallback), after restart -> %s"
    r.degraded_outcome r.degraded_count r.post_restart_outcome;
  (match violations r with
  | [] -> line "  invariants: OK (0 violations)"
  | vs ->
      line "  invariants: %d VIOLATIONS" (List.length vs);
      List.iter (fun s -> line "    - %s" s) vs);
  Buffer.contents b
