open Kerberos

type client_report = {
  cr_name : string;
  cr_outcome : (string, string) result option;
}

type report = {
  fault_seed : int64;
  clients : client_report list;
  ap_attempts : int;
  sessions_established : int;
  replay_hits : int;
  replay_cache_size : int;
  kdc_failovers : int;
  fault_counts : (string * int) list;
  packets_sent : int;
  packets_dropped : int;
  pending_after : int;
  open_spans_after : int;
  sim_seconds : float;
  trace : string;
}

let profile =
  { Profile.v5_draft3 with
    Profile.name = "v5d3+cache";
    ap_auth = Profile.Timestamp { skew = 300.0; replay_cache = true } }

let expected_read = "chaos payload"

let quad = Sim.Addr.of_quad

let run ?(clients = 4) ?(crash_appserver = true) ~fault_seed () =
  let tel = Telemetry.Collector.fresh_default () in
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~seed:0x4e4554L ~telemetry:tel eng in
  (* The realm: a master KDC (the chaos schedule's victim), a slave fed
     from the same database, one file server, [clients] workstations. *)
  let master_host = Sim.Host.create ~name:"kdc-master" ~ips:[ quad 10 0 0 1 ] () in
  let slave_host = Sim.Host.create ~name:"kdc-slave" ~ips:[ quad 10 0 0 2 ] () in
  let fs_host = Sim.Host.create ~name:"fs" ~ips:[ quad 10 0 0 20 ] () in
  let ws =
    List.init clients (fun i ->
        Sim.Host.create ~name:(Printf.sprintf "ws%d" i)
          ~ips:[ quad 10 0 0 (30 + i) ] ())
  in
  List.iter (Sim.Net.attach net) (master_host :: slave_host :: fs_host :: ws);
  let rng = Util.Rng.create 0xC4A05L in
  let db = Kdb.create () in
  Kdb.add_service db (Principal.tgs ~realm:"CHAOS") ~key:(Crypto.Des.random_key rng);
  let users =
    List.init clients (fun i ->
        ( Principal.user ~realm:"CHAOS" (Printf.sprintf "user%d" i),
          Printf.sprintf "chaos.pw.%d" i ))
  in
  List.iter (fun (p, pw) -> Kdb.add_user db p ~password:pw) users;
  let fileserv = Principal.service ~realm:"CHAOS" "fileserv" ~host:"fs" in
  let fs_key = Crypto.Des.random_key rng in
  Kdb.add_service db fileserv ~key:fs_key;
  let master = Kdc.create ~realm:"CHAOS" ~profile ~lifetime:28800.0 db in
  Kdc.install net master_host master ();
  (* The slave serves a replica of the same database (in production kprop
     keeps it fresh — test_faults exercises that path explicitly). *)
  let slave = Kdc.create ~realm:"CHAOS" ~profile ~lifetime:28800.0
      (Kdb.of_bytes (Kdb.to_bytes db))
  in
  Kdc.install net slave_host slave ();
  let fsrv =
    Services.Fileserver.install net fs_host
      ~config:{ Apserver.default_config with persist_replay_cache = true }
      ~profile ~principal:fileserv ~key:fs_key ~port:600
  in
  Services.Fileserver.write_file fsrv ~owner:"seed" ~path:"/readme"
    (Bytes.of_string expected_read);
  let apsrv = Services.Fileserver.apserver fsrv in
  (* The weather: a schedule derived entirely from [fault_seed]. Only the
     master KDC may crash or be cut off — the slave keeps the realm
     reachable, which is exactly why Athena ran slaves. *)
  let plane = Sim.Faults.create ~seed:fault_seed () in
  let frng = Util.Rng.create fault_seed in
  Sim.Faults.random_schedule plane ~rng:frng
    ~addrs:(List.map Sim.Host.primary_ip (master_host :: slave_host :: fs_host :: ws))
    ~crashable:[ Sim.Host.primary_ip master_host ]
    ~horizon:40.0 ();
  (* One workstation's clock steps mid-run, inside the skew window. *)
  (match ws with
  | w0 :: _ ->
      let delta = Util.Rng.float frng 120.0 -. 60.0 in
      Sim.Faults.clock_step plane eng w0 ~at:(2.0 +. Util.Rng.float frng 10.0)
        ~delta
  | [] -> ());
  Sim.Net.attach_faults net plane;
  if crash_appserver then begin
    Sim.Engine.schedule eng ~at:6.0 (fun () -> Apserver.crash apsrv);
    Sim.Engine.schedule eng ~at:8.0 (fun () -> Apserver.restart apsrv)
  end;
  (* The workload: login -> service ticket -> AP exchange -> sealed READ,
     each stage retried a bounded number of times with a deadline, so the
     client either succeeds or reports a typed error — never hangs. *)
  let ap_attempts = ref 0 in
  let outcomes = Array.make clients None in
  let kdcs =
    [ ("CHAOS", Sim.Host.primary_ip master_host);
      ("CHAOS", Sim.Host.primary_ip slave_host) ]
  in
  List.iteri
    (fun i host ->
      let who, pw = List.nth users i in
      let c =
        Client.create ~seed:(Int64.of_int (0x10C0 + i)) ~password:pw
          ~kdc_timeout:0.8 ~kdc_retries:2 net host ~profile ~kdcs who
      in
      let finish r = if outcomes.(i) = None then outcomes.(i) <- Some r in
      let retrying label attempts f k =
        let rec go n =
          f (fun r ->
              match r with
              | Ok v -> k v
              | Error e ->
                  if n + 1 < attempts then
                    Sim.Engine.schedule_after eng 1.0 (fun () -> go (n + 1))
                  else finish (Error (label ^ ": " ^ e)))
        in
        go 0
      in
      Sim.Engine.schedule eng ~at:(0.3 *. float_of_int i) (fun () ->
          retrying "login" 3 (fun k -> Client.login c ~password:pw k) (fun _ ->
              retrying "ticket" 3 (fun k -> Client.get_ticket c ~service:fileserv k)
                (fun creds ->
                  retrying "ap" 3
                    (fun k ->
                      incr ap_attempts;
                      Client.ap_exchange c creds ~deadline:3.0
                        ~dst:(Sim.Host.primary_ip fs_host) ~dport:600 k)
                    (fun chan ->
                      retrying "read" 3
                        (fun k ->
                          Client.call_priv c chan ~deadline:3.0
                            (Bytes.of_string "READ /readme") ~k)
                        (fun data -> finish (Ok (Bytes.to_string data))))))))
    ws;
  Sim.Engine.run eng;
  let trace = Telemetry.Collector.trace_jsonl tel in
  let counter name =
    Telemetry.Metrics.value (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel) name)
  in
  let failovers =
    List.length
      (List.filter
         (function
           | Sim.Net.Note (_, msg) ->
               (* "<ws>: KDC <addr> unreachable, failing over to <addr>" *)
               let sub = "failing over" in
               let n = String.length sub and m = String.length msg in
               let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
               n <= m && go 0
           | _ -> false)
         (Sim.Net.events net))
  in
  { fault_seed;
    clients =
      List.mapi
        (fun i (who, _) ->
          { cr_name = Principal.to_string who; cr_outcome = outcomes.(i) })
        users;
    ap_attempts = !ap_attempts;
    sessions_established = Apserver.sessions_established apsrv;
    replay_hits = Apserver.replay_hits apsrv;
    replay_cache_size = Apserver.replay_cache_size apsrv;
    kdc_failovers = failovers;
    fault_counts = Sim.Faults.counts plane;
    packets_sent = counter "net.packets.sent";
    packets_dropped = counter "net.packets.dropped";
    pending_after = Sim.Engine.pending eng;
    open_spans_after = Telemetry.Collector.open_span_count tel;
    sim_seconds = Sim.Engine.now eng;
    trace }

let safety_violations r =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  (* No forged or replayed authenticator ever mints a session: the server
     can never hold more sessions than honest AP exchanges were started. *)
  if r.sessions_established > r.ap_attempts then
    add "forged/replayed authenticator accepted: %d sessions from %d honest AP attempts"
      r.sessions_established r.ap_attempts;
  (* Sealed reads are authenticated end-to-end: corruption may deny
     service but can never change what a successful read returns. *)
  List.iter
    (fun c ->
      match c.cr_outcome with
      | Some (Ok data) when data <> expected_read ->
          add "%s: sealed read returned wrong bytes %S" c.cr_name data
      | Some _ -> ()
      | None -> add "%s: continuation never settled (stalled client)" c.cr_name)
    r.clients;
  if r.pending_after <> 0 then
    add "engine failed to drain: %d events pending" r.pending_after;
  if r.open_spans_after <> 0 then
    add "%d telemetry spans left open" r.open_spans_after;
  List.rev !v

let summary r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "fault seed %Ld: %.1f simulated seconds, %d packets sent, %d dropped"
    r.fault_seed r.sim_seconds r.packets_sent r.packets_dropped;
  line "  faults injected: %s"
    (if r.fault_counts = [] then "(none)"
     else
       String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) r.fault_counts));
  line "  fileserver: %d sessions from %d honest AP attempts, %d replay hits, cache %d entries"
    r.sessions_established r.ap_attempts r.replay_hits r.replay_cache_size;
  line "  KDC failovers: %d" r.kdc_failovers;
  List.iter
    (fun c ->
      line "  %-16s %s" c.cr_name
        (match c.cr_outcome with
        | Some (Ok data) -> Printf.sprintf "ok (read %S)" data
        | Some (Error e) -> Printf.sprintf "error (%s)" e
        | None -> "STALLED"))
    r.clients;
  (match safety_violations r with
  | [] -> line "  safety: OK (0 violations)"
  | vs ->
      line "  safety: %d VIOLATIONS" (List.length vs);
      List.iter (fun v -> line "    - %s" v) vs);
  Buffer.contents b
