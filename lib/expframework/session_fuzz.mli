(** Property-based session fuzzing for the transport plane.

    A {e scheme} is a generated program: a randomized path MTU, an
    optional {e asymmetric} reply-direction link MTU (server ->
    workstation only, banded low enough to clip even the
    RESPONSE-TOO-BIG refusal, so the Garbled-retry arm of the transport
    fallback gets real coverage), optional background fault noise, and
    5-25 operations — sealed reads (small, and deliberately larger than
    any MTU), KDC and application-server crash/heal pairs, partitions of
    the master KDC, workstation clock steps, and mid-run global MTU
    changes (shrink under an open channel, or lift the constraint so
    later exchanges re-upgrade to datagrams). {!run_scheme} executes one scheme against the
    quickstart realm on a fresh engine and reports everything the
    invariants need; {!violations} checks them:

    - no authenticator is accepted twice and no forged one ever — the
      server never holds more sessions than honest AP exchanges started;
    - a session established under a mismatched key never completes — a
      successful sealed read is byte-exact, whichever transport
      (datagram or stream fallback) carried it;
    - every client call terminates in a reply, a typed error, or a
      timeout — no continuation is left unsettled;
    - the engine drains and no telemetry span leaks.

    {!deterministic} re-runs a scheme and compares full telemetry traces
    byte-for-byte. {!shrink} minimizes a failing scheme by greedy op
    deletion. {!mutation_caught} plants a real bug (no replay cache +
    every datagram to the server duplicated) and confirms the invariant
    checker flags it — the test of the tester. *)

type op =
  | Read of { who : int; at : float; big : bool }
  | Crash_kdc of { at : float; back : float }
  | Crash_ap of { at : float; back : float }
  | Partition of { at : float; dur : float }
  | Clock_step of { who : int; at : float; delta : float }
  | Mtu_change of { at : float; mtu : int option }

type scheme = {
  sc_seed : int64;
  sc_mtu : int option;
  sc_reply_mtu : int option;
  sc_noise : bool;
  sc_ops : op list;
}

val gen_scheme : Util.Rng.t -> scheme
val scheme_to_string : scheme -> string

type read_report = {
  rr_op : int;
  rr_big : bool;
  rr_outcome : (string, string) result option;
}

type report = {
  r_scheme : scheme;
  r_reads : read_report list;
  r_ap_attempts : int;
  r_sessions : int;
  r_replay_hits : int;
  r_fallbacks : int;
  r_trunc_fallbacks : int;
  r_truncated : int;
  r_packets : int;
  r_pending_after : int;
  r_open_spans : int;
  r_sim_seconds : float;
  r_trace : string;
}

val run_scheme : ?mutate:bool -> scheme -> report
(** [mutate] plants the replay-cache bug for {!mutation_caught}. *)

val violations : report -> string list
(** Empty iff every invariant held. *)

val deterministic : scheme -> bool
val shrink : scheme -> scheme
val mutation_caught : unit -> bool

type campaign = {
  c_seed : int64;
  c_schedules : int;
  c_reads : int;
  c_read_oks : int;
  c_fallbacks : int;
  c_trunc_fallbacks : int;
  c_truncated : int;
  c_det_checks : int;
  c_det_failures : int;
  c_failures : (scheme * string list) list;
}

val campaign : ?schedules:int -> ?det_every:int -> seed:int64 -> unit -> campaign
val campaign_summary : campaign -> string
val ok : campaign -> bool
(** No invariant violations and no determinism mismatches. *)
